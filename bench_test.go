// Benchmarks regenerating every table and figure of the paper's
// evaluation (one Benchmark per experiment id in DESIGN.md §4) plus
// microbenchmarks of the performance-critical substrates and the ablation
// studies of DESIGN.md §5.
//
// The figure benchmarks run the experiment harness at TinyScale per
// iteration so `go test -bench .` completes quickly; run
// `go run ./cmd/siriussim -scale small` (or `-scale paper`) for the
// full-size tables.
package sirius

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"sirius/internal/core"
	"sirius/internal/dc"
	"sirius/internal/exp"
	"sirius/internal/fluid"
	"sirius/internal/laser"
	"sirius/internal/optics"
	"sirius/internal/phy"
	"sirius/internal/rng"
	"sirius/internal/sched"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/sweep"
	"sirius/internal/wire"
	"sirius/internal/workload"
)

// ---- E1-E3: power and cost analysis (Fig. 2a, 6a, 6b) ----

func BenchmarkFig2aScaleTax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := exp.Fig2a(); len(tab.Rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig6aPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := exp.Fig6a(); len(tab.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig6bCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := exp.Fig6b(); len(tab.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

// ---- E4-E8: optical substrate (tuning stats, Fig. 8a-8d) ----

func BenchmarkTuningPairs(b *testing.B) {
	l := laser.NewDampedDSDBR()
	for i := 0; i < b.N; i++ {
		s := laser.MeasurePairs(l)
		if s.Pairs != 12432 {
			b.Fatal("bad pair count")
		}
	}
}

func BenchmarkFig8aSOACDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := exp.Fig8a(); len(tab.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig8bWaveforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := exp.Fig8b(); len(tab.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig8cBurst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := exp.Fig8c(); len(tab.Rows) == 0 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig8dBER(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := exp.Fig8d(); len(tab.Rows) != 9 {
			b.Fatal("bad table")
		}
	}
}

// ---- E9: time synchronization ----

func BenchmarkTimesync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := exp.Timesync(5_000); len(tab.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// ---- E10-E14: network simulation sweeps (Fig. 9-13) ----

func BenchmarkFig9Load(b *testing.B) {
	s := exp.TinyScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9(context.Background(), nil, s, []float64{0.25, 0.75}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Q(b *testing.B) {
	s := exp.TinyScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig10(context.Background(), nil, s, []int{2, 4, 8, 16}, []float64{0.75}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Guardband(b *testing.B) {
	s := exp.TinyScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig11(context.Background(), nil, s, []float64{1, 5, 10, 20, 40}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Uplinks(b *testing.B) {
	s := exp.TinyScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig12(context.Background(), nil, s, []float64{1, 1.5, 2}, []float64{0.75}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13FlowSize(b *testing.B) {
	s := exp.TinyScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig13(context.Background(), nil, s, []float64{512, 4096, 65536}, 0.6); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E15-E17: burstiness analysis, prototype, link budget ----

func BenchmarkPacketMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := exp.Burst(); len(tab.Rows) == 0 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkWirePrototype(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Prototype(4, 25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinkBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := exp.LinkBudget(); len(tab.Rows) == 0 {
			b.Fatal("bad table")
		}
	}
}

// ---- Ablations (DESIGN.md §5) ----

// ablationRun runs the tiny-scale workload through the core simulator
// with the given tweaks and reports goodput and p99 as bench metrics.
func ablationRun(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	sched, err := schedule.NewGrouped(16, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	wcfg := workload.DefaultConfig(16, 200*simtime.Gbps, 0.75, 400)
	flows, err := workload.Generate(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Schedule:      sched,
		Slot:          phy.DefaultSlot(),
		Q:             4,
		NormalizeRate: 200 * simtime.Gbps,
		Seed:          1,
	}
	mutate(&cfg)
	var last *core.Results
	for i := 0; i < b.N; i++ {
		res, err := core.Run(cfg, flows)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.GoodputNorm, "goodput")
		b.ReportMetric(last.FCTShort.Percentile(99)*1000, "p99short-us")
	}
}

func BenchmarkAblationBaseline(b *testing.B) {
	ablationRun(b, func(c *core.Config) {})
}

func BenchmarkAblationDirectOff(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.NoDirect = true })
}

func BenchmarkAblationControlLatency(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.InstantControl = true })
}

func BenchmarkAblationIdealBackpressure(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.Mode = core.ModeIdeal })
}

// ---- Microbenchmarks of the hot substrates ----

func BenchmarkAWGRRoute(b *testing.B) {
	a := optics.NewAWGR(100, 6)
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += a.Route(i%100, optics.Wavelength(i%100))
	}
	_ = sum
}

func BenchmarkScheduleDst(b *testing.B) {
	g, err := schedule.NewGrouped(128, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += g.Dst(i%128, i%8, i%16)
	}
	_ = sum
}

func BenchmarkLaserTune(b *testing.B) {
	l := laser.NewDampedDSDBR()
	var total simtime.Duration
	for i := 0; i < b.N; i++ {
		total += l.TuneTime(optics.Wavelength(i%112), optics.Wavelength((i*7+3)%112))
	}
	_ = total
}

// coreBenchCases is the cells/sec grid: topology sizes n ∈ {64 .. 4096}
// across the three operating modes, serial and sharded. The first case
// (n64/rg) is the historical BenchmarkCoreCellsPerSecond configuration and
// the PR-to-PR comparison anchor; see BENCH_core.json for the recorded
// trajectory. The shards4 rows only demonstrate real speedup when
// GOMAXPROCS > 1 — each recorded row carries the GOMAXPROCS it was
// measured under, and a sharded row measured at GOMAXPROCS=1 reports the
// engine's coordination overhead, not its scaling.
var coreBenchCases = []struct {
	name   string
	n      int
	ports  int
	flows  int
	mode   core.Mode
	shards int
}{
	{"n64/rg", 64, 8, 2000, core.ModeRequestGrant, 1},
	{"n64/ideal", 64, 8, 2000, core.ModeIdeal, 1},
	{"n64/direct", 64, 8, 2000, core.ModeDirect, 1},
	{"n256/rg", 256, 16, 2000, core.ModeRequestGrant, 1},
	{"n256/ideal", 256, 16, 2000, core.ModeIdeal, 1},
	{"n256/direct", 256, 16, 2000, core.ModeDirect, 1},
	{"n1024/rg", 1024, 32, 4000, core.ModeRequestGrant, 1},
	{"n1024/ideal", 1024, 32, 4000, core.ModeIdeal, 1},
	{"n1024/direct", 1024, 32, 4000, core.ModeDirect, 1},
	{"n1024/rg/shards4", 1024, 32, 4000, core.ModeRequestGrant, 4},
	{"n1024/ideal/shards4", 1024, 32, 4000, core.ModeIdeal, 4},
	{"n1024/direct/shards4", 1024, 32, 4000, core.ModeDirect, 4},
	{"n4096/rg", 4096, 64, 8000, core.ModeRequestGrant, 1},
	{"n4096/ideal", 4096, 64, 8000, core.ModeIdeal, 1},
	{"n4096/direct", 4096, 64, 8000, core.ModeDirect, 1},
	{"n4096/rg/shards4", 4096, 64, 8000, core.ModeRequestGrant, 4},
	{"n4096/ideal/shards4", 4096, 64, 8000, core.ModeIdeal, 4},
	{"n4096/direct/shards4", 4096, 64, 8000, core.ModeDirect, 4},
}

// coreBenchRecord is one measured row of BENCH_core.json. Shards and
// GOMAXPROCS are part of the record because a sharded number without the
// parallelism it ran under is not interpretable.
type coreBenchRecord struct {
	NsPerOp    float64 `json:"ns_per_op"`
	CellsSec   float64 `json:"cells_per_sec"`
	Shards     int     `json:"shards"`
	GOMAXPROCS int     `json:"gomaxprocs"`
}

// writeBenchCore merges freshly measured rows into BENCH_core.json,
// preserving rows from earlier (possibly partial) runs and the
// baseline_pre_optimization block. Before this existed, running a subset
// of the grid (`-bench .../n64`) silently dropped every other row from
// the artifact.
func writeBenchCore(b *testing.B, after map[string]coreBenchRecord) {
	b.Helper()
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile("BENCH_core.json"); err == nil {
		_ = json.Unmarshal(data, &doc) // corrupt artifact: rebuild from scratch
	}
	rows := map[string]json.RawMessage{}
	if prev, ok := doc["after"]; ok {
		_ = json.Unmarshal(prev, &rows)
	}
	for name, rec := range after {
		raw, err := json.Marshal(rec)
		if err != nil {
			b.Fatal(err)
		}
		rows[name] = raw
	}
	set := func(key string, v interface{}) {
		raw, err := json.Marshal(v)
		if err != nil {
			b.Fatal(err)
		}
		doc[key] = raw
	}
	set("benchmark", "BenchmarkCoreCellsPerSecond")
	set("config", map[string]interface{}{
		"load": 0.9, "q": 4, "rate_gbps": 400, "seed": 1,
		"note": "grouped(n, ports, 1) schedule; flows per coreBenchCases; " +
			"shards4 rows need gomaxprocs > 1 to show scaling",
	})
	set("baseline_pre_optimization", coreBenchBaseline)
	set("after", rows)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_core.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("BENCH_core.json not written: %v", err)
	}
}

func BenchmarkCoreCellsPerSecond(b *testing.B) {
	// End-to-end simulator throughput: cells simulated per wall second,
	// across topology sizes, operating modes and shard counts. Running any
	// subset of the grid updates the matching rows of BENCH_core.json in
	// place (writeBenchCore).
	after := make(map[string]coreBenchRecord)
	for _, tc := range coreBenchCases {
		b.Run(tc.name, func(b *testing.B) {
			if tc.n >= 4096 && os.Getenv("SIRIUS_N4096") == "" {
				// A single n4096 iteration is tens of seconds; the CI
				// n4096-smoke job opts in explicitly, everything else
				// (and `-bench . -benchtime 1x` smoke runs) skips.
				b.Skip("set SIRIUS_N4096=1 to run the n4096 rows")
			}
			sched, err := schedule.NewGrouped(tc.n, tc.ports, 1)
			if err != nil {
				b.Fatal(err)
			}
			wcfg := workload.DefaultConfig(tc.n, 400*simtime.Gbps, 0.9, tc.flows)
			flows, err := workload.Generate(wcfg)
			if err != nil {
				b.Fatal(err)
			}
			var cells int64
			for _, f := range flows {
				cells += int64((f.Bytes + 541) / 542)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := core.Run(core.Config{
					Schedule:      sched,
					Slot:          phy.DefaultSlot(),
					Q:             4,
					Mode:          tc.mode,
					NormalizeRate: 400 * simtime.Gbps,
					Seed:          1,
					Shards:        tc.shards,
				}, flows)
				if err != nil {
					b.Fatal(err)
				}
			}
			cellsSec := float64(cells*int64(b.N)) / b.Elapsed().Seconds()
			b.ReportMetric(cellsSec, "cells/s")
			after[tc.name] = coreBenchRecord{
				NsPerOp:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				CellsSec:   cellsSec,
				Shards:     tc.shards,
				GOMAXPROCS: runtime.GOMAXPROCS(0),
			}
		})
	}
	if len(after) == 0 {
		return
	}
	writeBenchCore(b, after)
}

// coreBenchBaseline records the grid measured at the pre-optimization
// commit (the parent of this PR) on the same machine the "after" numbers
// in BENCH_core.json were taken on. Kept in code so regenerating the
// artifact preserves the before/after comparison.
var coreBenchBaseline = map[string]map[string]float64{
	"n64/rg":       {"ns_per_op": 56275626, "cells_per_sec": 2843552},
	"n64/ideal":    {"ns_per_op": 25413214, "cells_per_sec": 6296928},
	"n64/direct":   {"ns_per_op": 45517868, "cells_per_sec": 3515627},
	"n256/rg":      {"ns_per_op": 183285843, "cells_per_sec": 873062},
	"n256/ideal":   {"ns_per_op": 99525653, "cells_per_sec": 1607838},
	"n256/direct":  {"ns_per_op": 262773536, "cells_per_sec": 608962},
	"n1024/rg":     {"ns_per_op": 1630050682, "cells_per_sec": 190906},
	"n1024/ideal":  {"ns_per_op": 824097422, "cells_per_sec": 377609},
	"n1024/direct": {"ns_per_op": 3661755202, "cells_per_sec": 84983},
}

// ---- The flow-level layer: fluid solver and dc composition ----

// fluidBenchCases is the flows/sec grid for the max-min fluid solver:
// fabric sizes n ∈ {32, 128, 512} across the non-blocking and 3:1
// oversubscribed variants. The last case (n512/ideal) is the largest and
// the PR-to-PR comparison anchor; see BENCH_fluid.json for the recorded
// trajectory.
var fluidBenchCases = []struct {
	name    string
	n       int
	epr     int // endpoints per rack (0 disables the rack tier)
	oversub int
	flows   int
	load    float64
}{
	{"n32/ideal", 32, 0, 1, 2000, 0.8},
	{"n32/osub3", 32, 8, 3, 2000, 0.8},
	{"n128/ideal", 128, 0, 1, 4000, 0.8},
	{"n128/osub3", 128, 16, 3, 4000, 0.8},
	{"n512/ideal", 512, 0, 1, 8000, 0.8},
}

// benchRecord is one measured grid cell of a BENCH_*.json artifact.
type benchRecord struct {
	NsPerOp  float64 `json:"ns_per_op"`
	FlowsSec float64 `json:"flows_per_sec"`
}

// writeBenchFluid merges the given sections into BENCH_fluid.json,
// preserving sections written by the other flow-level benchmarks (the
// fluid grid and the dc serial/parallel comparison both live in the one
// artifact).
func writeBenchFluid(b *testing.B, section string, payload interface{}) {
	b.Helper()
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile("BENCH_fluid.json"); err == nil {
		_ = json.Unmarshal(data, &doc) // corrupt artifact: rebuild from scratch
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		b.Fatal(err)
	}
	doc[section] = raw
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fluid.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("BENCH_fluid.json not written: %v", err)
	}
}

func BenchmarkFluidFlowsPerSecond(b *testing.B) {
	// End-to-end solver throughput: flows simulated per wall second across
	// fabric sizes and variants. Running the full grid also rewrites the
	// "fluid" section of BENCH_fluid.json (only the cases that ran).
	after := make(map[string]benchRecord)
	for _, tc := range fluidBenchCases {
		b.Run(tc.name, func(b *testing.B) {
			wcfg := workload.DefaultConfig(tc.n, 400*simtime.Gbps, tc.load, tc.flows)
			wcfg.Seed = 11
			flows, err := workload.Generate(wcfg)
			if err != nil {
				b.Fatal(err)
			}
			cfg := fluid.Config{Endpoints: tc.n, EndpointRate: 400 * simtime.Gbps,
				EndpointsPerRack: tc.epr, Oversub: tc.oversub,
				BaseRTT: simtime.Microsecond}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := fluid.Run(cfg, flows)
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != tc.flows {
					b.Fatal("incomplete run")
				}
			}
			flowsSec := float64(int64(tc.flows)*int64(b.N)) / b.Elapsed().Seconds()
			b.ReportMetric(flowsSec, "flows/s")
			after[tc.name] = benchRecord{
				NsPerOp:  float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				FlowsSec: flowsSec,
			}
		})
	}
	if len(after) == 0 {
		return
	}
	writeBenchFluid(b, "fluid", map[string]interface{}{
		"benchmark": "BenchmarkFluidFlowsPerSecond",
		"config": map[string]interface{}{
			"load": 0.8, "rate_gbps": 400, "workload_seed": 11,
			"note": "uniform Poisson/Pareto workload per fluidBenchCases; base RTT 1us",
		},
		"baseline_pre_optimization": fluidBenchBaseline,
		"after":                     after,
	})
}

// dcBenchWorkload builds the rack-heavy server-level workload used by the
// dc composition benchmarks: most traffic stays inside its rack so the
// per-rack fluid fan-out dominates the run.
func dcBenchWorkload(b *testing.B) (dc.Config, []workload.Flow) {
	b.Helper()
	cfg := dc.DefaultConfig(16)
	cfg.ServersPerRack = 8
	cfg.ServerRate = 25 * simtime.Gbps
	r := rng.New(5)
	servers := cfg.Servers()
	flows := make([]workload.Flow, 6000)
	var at simtime.Time
	for i := range flows {
		at = at.Add(simtime.Duration(r.Intn(1500)) * simtime.Nanosecond)
		src := r.Intn(servers)
		var dst int
		if r.Intn(16) == 0 { // 1-in-16 crosses the fabric
			dst = r.Intn(servers - 1)
			if dst >= src {
				dst++
			}
		} else { // intra-rack
			rack := src / cfg.ServersPerRack
			dst = rack*cfg.ServersPerRack + r.Intn(cfg.ServersPerRack-1)
			if dst >= src {
				dst++
			}
		}
		flows[i] = workload.Flow{ID: i, Src: src, Dst: dst,
			Bytes: 2000 + r.Intn(80_000), Arrival: at}
	}
	return cfg, flows
}

// BenchmarkDCSerial is the 1-worker reference for BenchmarkDCParallel.
func BenchmarkDCSerial(b *testing.B) {
	cfg, flows := dcBenchWorkload(b)
	cfg.Parallel = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dc.Run(cfg, flows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCParallel measures the rack-parallel dc composition against
// its own serial reference and records the comparison in the "dc" section
// of BENCH_fluid.json.
//
// Honesty rule (as BenchmarkSweepParallel): a speedup is only claimed
// when the host actually grants more than one worker. On a single-CPU
// machine serial and "parallel" differ only by scheduling noise, so the
// artifact records speedup 1.0 and says why.
func BenchmarkDCParallel(b *testing.B) {
	cfg, flows := dcBenchWorkload(b)
	workers := runtime.GOMAXPROCS(0)
	measure := func(parallel int) time.Duration {
		pcfg := cfg
		pcfg.Parallel = parallel
		start := time.Now()
		if _, err := dc.Run(pcfg, flows); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}

	// One serial/parallel pair outside the timed loop for the JSON record.
	serial := measure(1)
	parallel := measure(workers)
	rec := map[string]interface{}{
		"benchmark":          "BenchmarkDCParallel",
		"workload":           "16 racks x 8 servers, 6000 flows, 1-in-16 inter-rack, rng seed 5",
		"workers":            workers,
		"serial_ns":          serial.Nanoseconds(),
		"parallel_ns":        parallel.Nanoseconds(),
		"baseline_serial_ns": dcBenchBaselineSerialNs,
		"baseline_note":      "serial composition at the pre-rewrite commit (old fluid solver, serial rack loop), same machine",
	}
	if workers > 1 {
		speedup := float64(serial) / float64(parallel)
		rec["speedup"] = speedup
		b.ReportMetric(speedup, "speedup")
	} else {
		rec["speedup"] = 1.0
		rec["note"] = "GOMAXPROCS=1: serial and parallel runs are the same schedule; no speedup claimed"
	}
	writeBenchFluid(b, "dc", rec)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		measure(workers)
	}
}

// dcBenchBaselineSerialNs is the wall time of one dcBenchWorkload run at
// the pre-rewrite commit (serial rack loop over the map-based fluid
// solver), measured on the same machine as the BENCH_fluid.json numbers.
const dcBenchBaselineSerialNs = 14568572

// fluidBenchBaseline records the grid measured at the pre-rewrite commit
// (the parent of this PR) on the same machine the "after" numbers in
// BENCH_fluid.json were taken on: the map[int]*flowState event loop with
// per-event full progressive-filling rebuilds. Kept in code so
// regenerating the artifact preserves the before/after comparison.
var fluidBenchBaseline = map[string]map[string]float64{
	"n32/ideal":  {"ns_per_op": 50693941, "flows_per_sec": 39453},
	"n32/osub3":  {"ns_per_op": 63304249, "flows_per_sec": 31594},
	"n128/ideal": {"ns_per_op": 128991709, "flows_per_sec": 31010},
	"n128/osub3": {"ns_per_op": 140473420, "flows_per_sec": 28475},
	"n512/ideal": {"ns_per_op": 4755979879, "flows_per_sec": 1682},
}

// ---- The live wire fabric (internal/wire) ----

// wireBenchCases is the frames/s grid for the live TCP fabric: node
// counts n ∈ {4, 64, 256} × payload sizes {64, 562} bytes, loopback,
// default output batching — plus one 64-node row with batching disabled
// (batch=1, the pre-batching per-frame write behavior) so the artifact
// itself carries the with/without comparison. Epoch counts shrink as n
// grows to keep one iteration at a comparable frame count (n^2 frames
// per epoch).
var wireBenchCases = []struct {
	name    string
	nodes   int
	epochs  int
	payload int
	batch   int // 0 = default policy, 1 = disabled
}{
	{"n4/p64", 4, 200, 64, 0},
	{"n4/p562", 4, 200, 562, 0},
	{"n64/p64", 64, 8, 64, 0},
	{"n64/p562", 64, 8, 562, 0},
	{"n64/p562/batch1", 64, 8, 562, 1},
	{"n256/p64", 256, 2, 64, 0},
	{"n256/p562", 256, 2, 562, 0},
}

// wireBenchRecord is one measured row of the BENCH_wire.json frames/s
// grid. Batch and GOMAXPROCS are part of the record: a throughput number
// without its coalescing policy and parallelism is not interpretable.
type wireBenchRecord struct {
	NsPerOp    float64 `json:"ns_per_op"`
	FramesSec  float64 `json:"frames_per_sec"`
	Batch      int     `json:"batch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
}

// writeBenchWire merges the freshly measured frames/s rows into the
// "frames_per_second" section of BENCH_wire.json, preserving the
// corruption-path baselines (baseline_global_lock_bernoulli /
// after_per_port_substreams_geometric_skip) recorded by earlier PRs and
// any grid rows from previous partial runs.
func writeBenchWire(b *testing.B, after map[string]wireBenchRecord) {
	b.Helper()
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile("BENCH_wire.json"); err == nil {
		_ = json.Unmarshal(data, &doc) // corrupt artifact: rebuild from scratch
	}
	section := map[string]json.RawMessage{}
	if prev, ok := doc["frames_per_second"]; ok {
		_ = json.Unmarshal(prev, &section)
	}
	rows := map[string]json.RawMessage{}
	if prev, ok := section["after_zero_copy_batched_writers"]; ok {
		_ = json.Unmarshal(prev, &rows)
	}
	for name, rec := range after {
		raw, err := json.Marshal(rec)
		if err != nil {
			b.Fatal(err)
		}
		rows[name] = raw
	}
	set := func(key string, v interface{}) {
		raw, err := json.Marshal(v)
		if err != nil {
			b.Fatal(err)
		}
		section[key] = raw
	}
	set("benchmark", "BenchmarkWireFramesPerSecond")
	set("config", map[string]interface{}{
		"fabric": "loopback TCP AWGR emulator, one process, wireBenchCases grid",
		"note": "routed frames per wall second, whole fabric (emulator + n nodes); " +
			"batch 0 = default policy (16 frames / 32KiB / 500us idle), batch 1 = per-frame writes; " +
			"n256 has no pre-change baseline (the fabric was capped at 255 nodes before this grid)",
	})
	set("baseline_pre_batching", wireBenchBaseline)
	set("after_zero_copy_batched_writers", rows)
	set("summary", "The overhaul replaces per-frame allocation with reusable "+
		"read buffers (ReadFrameInto), rewrites the 5-byte header in place "+
		"instead of rebuilding frames, coalesces deliveries into per-output-"+
		"port batch writes, moves the PRBS generator to a byte-at-a-time "+
		"step, and alias-decodes received cells. On one vCPU the 64-node "+
		"562B row goes from 38.7k to ~155k frames/s (4.0x) and the fabric "+
		"now scales to the 256-port wire-format limit.")
	raw, err := json.Marshal(section)
	if err != nil {
		b.Fatal(err)
	}
	doc["frames_per_second"] = raw
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_wire.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("BENCH_wire.json not written: %v", err)
	}
}

// BenchmarkWireFramesPerSecond measures end-to-end fabric throughput:
// frames routed through the emulator per wall second, with every node
// transmitting, receiving and PRBS-verifying concurrently on loopback.
// Running any subset of the grid updates the matching rows of
// BENCH_wire.json in place (writeBenchWire).
func BenchmarkWireFramesPerSecond(b *testing.B) {
	after := make(map[string]wireBenchRecord)
	for _, tc := range wireBenchCases {
		b.Run(tc.name, func(b *testing.B) {
			var routed int64
			for i := 0; i < b.N; i++ {
				fs, err := wire.RunPrototypeCfg(wire.PrototypeConfig{
					Nodes:        tc.nodes,
					Epochs:       tc.epochs,
					PayloadBytes: tc.payload,
					BatchFrames:  tc.batch,
				})
				if err != nil {
					b.Fatal(err)
				}
				if fs.BER != 0 {
					b.Fatalf("clean loopback fabric saw BER %v", fs.BER)
				}
				routed += fs.Routed
			}
			framesSec := float64(routed) / b.Elapsed().Seconds()
			b.ReportMetric(framesSec, "frames/s")
			batch := tc.batch
			if batch == 0 {
				batch = wire.DefaultBatchFrames
			}
			after[tc.name] = wireBenchRecord{
				NsPerOp:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				FramesSec:  framesSec,
				Batch:      batch,
				GOMAXPROCS: runtime.GOMAXPROCS(0),
			}
		})
	}
	if len(after) == 0 {
		return
	}
	writeBenchWire(b, after)
}

// wireBenchBaseline records the grid measured at the pre-overhaul commit
// (per-frame ReadFrame allocation, frame rebuild + copy in routeFrom,
// one locked conn.Write per delivered frame, bit-at-a-time PRBS) on the
// same machine as the "after" rows. n256 rows have no baseline: the
// fabric rejected more than 255 nodes before this change. Kept in code
// so regenerating the artifact preserves the before/after comparison.
var wireBenchBaseline = map[string]map[string]float64{
	"n4/p64":   {"ns_per_op": 22435256, "frames_per_sec": 142639, "gomaxprocs": 1},
	"n4/p562":  {"ns_per_op": 81519476, "frames_per_sec": 39255, "gomaxprocs": 1},
	"n64/p64":  {"ns_per_op": 201220276, "frames_per_sec": 162847, "gomaxprocs": 1},
	"n64/p562": {"ns_per_op": 847404769, "frames_per_sec": 38669, "gomaxprocs": 1},
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	cfg := workload.DefaultConfig(128, 400*simtime.Gbps, 0.8, 10_000)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := workload.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPRBSFill(b *testing.B) {
	p := phy.NewPRBS(1)
	buf := make([]byte, 562)
	b.SetBytes(562)
	for i := 0; i < b.N; i++ {
		p.Fill(buf)
	}
}

func BenchmarkPublicAPIEndToEnd(b *testing.B) {
	cfg := DefaultConfig(16)
	flows := Workload(cfg, 0.5, 200, 1)
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Run(flows); err != nil {
			b.Fatal(err)
		}
	}
}

// E18: §4.5 failures — degraded vs compacted schedules plus detection.
func BenchmarkFailureRecovery(b *testing.B) {
	s := exp.TinyScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Failure(context.Background(), nil, s, []int{0, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDirectOnly(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.Mode = core.ModeDirect })
}

// §7 deployment at server granularity (package dc).
func BenchmarkServerLevel(b *testing.B) {
	s := exp.TinyScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.ServerLevel(context.Background(), nil, s, 4, []float64{0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- The sweep engine (internal/sweep) ----

// BenchmarkSweepParallel measures the fig9 sweep on the parallel engine
// (GOMAXPROCS workers, no cache) and, once per run, times a serial
// reference sweep — both as benchmark metrics and as BENCH_sweep.json,
// seeding the repo's performance trajectory.
//
// Honesty rule: a speedup is only claimed when the host actually grants
// more than one worker. On a single-CPU machine serial and "parallel"
// differ only by scheduling noise, so the artifact records speedup 1.0
// and says why, rather than laundering noise into a ratio.
func BenchmarkSweepParallel(b *testing.B) {
	s := exp.TinyScale()
	loads := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
	workers := runtime.GOMAXPROCS(0)
	measure := func(parallel int) time.Duration {
		start := time.Now()
		rn := &sweep.Runner{Parallel: parallel, RootSeed: s.Seed}
		if _, err := exp.Fig9(context.Background(), rn, s, loads); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}

	// One serial/parallel pair outside the timed loop for the JSON record.
	serial := measure(1)
	parallel := measure(workers)
	rec := map[string]interface{}{
		"benchmark":   "BenchmarkSweepParallel",
		"sweep":       "fig9/tiny",
		"points":      len(loads),
		"workers":     workers,
		"serial_ns":   serial.Nanoseconds(),
		"parallel_ns": parallel.Nanoseconds(),
	}
	if workers > 1 {
		speedup := float64(serial) / float64(parallel)
		rec["speedup"] = speedup
		b.ReportMetric(speedup, "speedup")
	} else {
		rec["speedup"] = 1.0
		rec["note"] = "GOMAXPROCS=1: serial and parallel runs are the same schedule; no speedup claimed"
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sweep.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("BENCH_sweep.json not written: %v", err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		measure(workers)
	}
}

// BenchmarkSweepSerial is the 1-worker reference for BenchmarkSweepParallel.
func BenchmarkSweepSerial(b *testing.B) {
	s := exp.TinyScale()
	loads := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
	for i := 0; i < b.N; i++ {
		rn := &sweep.Runner{Parallel: 1, RootSeed: s.Seed}
		if _, err := exp.Fig9(context.Background(), rn, s, loads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepCacheWarm measures replaying a fully memoized sweep —
// the steady-state cost of `-exp all` after the first run.
func BenchmarkSweepCacheWarm(b *testing.B) {
	s := exp.TinyScale()
	loads := []float64{0.25, 0.75}
	cache, err := sweep.OpenCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	rn := &sweep.Runner{Parallel: 1, RootSeed: s.Seed, Cache: cache}
	if _, err := exp.Fig9(context.Background(), rn, s, loads); err != nil {
		b.Fatal(err) // cold fill
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9(context.Background(), rn, s, loads); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- The scheduler subsystem: per-epoch planning throughput ----

// schedBenchCases is the matchings/s grid for the pluggable planners
// (DESIGN.md §10): every family at three fabric sizes, geometry matched
// to the grouped core grid (uplinks = n/ports, epoch = ports slots).
// The demand-aware families (pulse, negotiator) do real per-epoch work
// proportional to live traffic; the static adapter and the round-robin
// rotor bound the cost of the interface itself.
var schedBenchCases = []struct {
	family string
	n      int
	ports  int
}{
	{"static", 64, 8}, {"static", 256, 16}, {"static", 1024, 32},
	{"rotorrr", 64, 8}, {"rotorrr", 256, 16}, {"rotorrr", 1024, 32},
	{"pulse", 64, 8}, {"pulse", 256, 16}, {"pulse", 1024, 32},
	{"negotiator", 64, 8}, {"negotiator", 256, 16}, {"negotiator", 1024, 32},
}

// schedBenchRecord is one measured row of BENCH_sched.json. A matching
// is one fabric-wide slot assignment, so matchings/s = plans/s × epoch
// slots; reconfig_slots_per_epoch is the dark link-slots the family
// charged per Plan on this workload (static is 0 by construction).
type schedBenchRecord struct {
	NsPerPlan             float64 `json:"ns_per_plan"`
	MatchingsSec          float64 `json:"matchings_per_sec"`
	ReconfigSlotsPerEpoch float64 `json:"reconfig_slots_per_epoch"`
	GOMAXPROCS            int     `json:"gomaxprocs"`
}

// writeBenchSched merges freshly measured rows into BENCH_sched.json,
// preserving rows from earlier (possibly partial) runs — the same
// discipline as writeBenchCore.
func writeBenchSched(b *testing.B, after map[string]schedBenchRecord) {
	b.Helper()
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile("BENCH_sched.json"); err == nil {
		_ = json.Unmarshal(data, &doc) // corrupt artifact: rebuild from scratch
	}
	rows := map[string]json.RawMessage{}
	if prev, ok := doc["after"]; ok {
		_ = json.Unmarshal(prev, &rows)
	}
	for name, rec := range after {
		raw, err := json.Marshal(rec)
		if err != nil {
			b.Fatal(err)
		}
		rows[name] = raw
	}
	set := func(key string, v interface{}) {
		raw, err := json.Marshal(v)
		if err != nil {
			b.Fatal(err)
		}
		doc[key] = raw
	}
	set("benchmark", "BenchmarkSchedulerPlans")
	set("config", map[string]interface{}{
		"seed": 1, "reconfig_slots": 1, "demand": "uniform random 0..7 cells per pair",
		"note": "uplinks = n/ports, epoch = ports slots; matchings/s = plans/s x epoch slots",
	})
	set("after", rows)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sched.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("BENCH_sched.json not written: %v", err)
	}
}

// benchPlanner builds a fresh planner for one schedBenchCases row.
func benchPlanner(b *testing.B, family string, n, ports int) core.Planner {
	b.Helper()
	uplinks, slots := n/ports, ports
	switch family {
	case "static":
		g, err := schedule.NewGrouped(n, ports, 1)
		if err != nil {
			b.Fatal(err)
		}
		return sched.NewStatic(g)
	case "rotorrr":
		p, err := sched.NewRotorRR(n, uplinks, slots, 1)
		if err != nil {
			b.Fatal(err)
		}
		return p
	case "pulse":
		p, err := sched.NewPULSE(n, uplinks, slots, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		return p
	case "negotiator":
		p, err := sched.NewNegotiaToR(n, uplinks, slots, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	b.Fatalf("unknown family %q", family)
	return nil
}

func BenchmarkSchedulerPlans(b *testing.B) {
	// Pure planning throughput: epochs planned per wall second for each
	// scheduler family, outside the simulator. Running any subset of the
	// grid updates the matching rows of BENCH_sched.json in place.
	after := make(map[string]schedBenchRecord)
	for _, tc := range schedBenchCases {
		name := fmt.Sprintf("%s/n%d", tc.family, tc.n)
		b.Run(name, func(b *testing.B) {
			p := benchPlanner(b, tc.family, tc.n, tc.ports)
			r := rng.New(1)
			demand := make([]int32, tc.n*tc.n)
			for i := range demand {
				demand[i] = int32(r.Intn(8))
			}
			dst := make([]int32, p.SlotsPerEpoch()*tc.n*p.Uplinks())
			var reconfig int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reconfig += int64(p.Plan(int64(i), demand, dst))
			}
			b.StopTimer()
			plansSec := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(plansSec*float64(p.SlotsPerEpoch()), "matchings/s")
			after[name] = schedBenchRecord{
				NsPerPlan:             float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				MatchingsSec:          plansSec * float64(p.SlotsPerEpoch()),
				ReconfigSlotsPerEpoch: float64(reconfig) / float64(b.N),
				GOMAXPROCS:            runtime.GOMAXPROCS(0),
			}
		})
	}
	if len(after) == 0 {
		return
	}
	writeBenchSched(b, after)
}
