// KV store: the bursty, high-fanout workload of §2.2 — small RPCs with
// most packets at or under 576 bytes, the regime that demands nanosecond
// reconfiguration. Clients scatter small GET requests across many servers
// and tail latency is the metric that matters.
package main

import (
	"fmt"
	"log"
	"time"

	"sirius"
)

func main() {
	const (
		nodes    = 32
		clients  = 8   // racks hosting clients
		batches  = 400 // scatter batches per client
		fanout   = 16  // servers contacted per batch
		reqBytes = 576 // the §2.2 dominant packet size
	)
	cfg := sirius.DefaultConfig(nodes)
	cfg.Seed = 11

	// Each client rack issues a burst of `fanout` small requests every
	// batch interval — the high-fanout pattern of in-memory caches.
	interval := 2 * time.Microsecond
	var flows []sirius.Flow
	for b := 0; b < batches; b++ {
		at := time.Duration(b) * interval
		for cl := 0; cl < clients; cl++ {
			src := cl
			for f := 0; f < fanout; f++ {
				dst := clients + (b*fanout+f+cl)%(nodes-clients)
				flows = append(flows, sirius.Flow{
					Src: src, Dst: dst, Bytes: reqBytes, Arrival: at,
				})
			}
		}
	}
	fmt.Printf("kv scatter: %d clients x %d batches x %d-way fanout, %dB requests\n\n",
		clients, batches, fanout, reqBytes)

	rep, err := cfg.Run(flows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Printf("  request latency: p50 %v  p99 %v\n\n", rep.FCTP50, rep.FCTP99)

	// The same traffic on a fabric with a 40 ns guardband (a slower
	// optical switch) — the §2.2 argument for sub-10 ns reconfiguration.
	slow := cfg
	slow.Guardband = 40 * time.Nanosecond
	slow.CellBytes = 2250 // keep the guardband at 10% of the slot
	slowRep, err := slow.Run(flows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with a 40ns-guardband switch (400ns slots):\n")
	fmt.Printf("  request latency: p50 %v  p99 %v\n\n", slowRep.FCTP50, slowRep.FCTP99)
	fmt.Printf("Fast switching cuts p99 request latency by %.0f%%.\n",
		100*(1-float64(rep.FCTP99)/float64(slowRep.FCTP99)))
}
