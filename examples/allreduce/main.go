// Allreduce: the hardware-driven workload that motivates Sirius (§1-2) —
// distributed DNN training. A ring allreduce over a Sirius cluster moves
// 2(N-1) chunks of S/N bytes per node; this example schedules the ring
// steps and reports per-step and total completion alongside the ideal
// electrically-switched fabric.
package main

import (
	"fmt"
	"log"
	"time"

	"sirius"
)

func main() {
	const (
		nodes      = 32
		gradBytes  = 64 << 20 // 64 MiB gradient per node
		chunkBytes = gradBytes / nodes
	)
	cfg := sirius.DefaultConfig(nodes)
	cfg.Seed = 7

	// Ring allreduce: 2(N-1) steps; in each step every node sends one
	// chunk to its right neighbour. Steps are pipelined back-to-back: a
	// step's flows start at the previous step's estimated finish (the
	// chunk time at full node bandwidth).
	stepTime := time.Duration(float64(chunkBytes*8) /
		float64(cfg.NodeBandwidth()) * float64(time.Second))
	var flows []sirius.Flow
	steps := 2 * (nodes - 1)
	for step := 0; step < steps; step++ {
		at := time.Duration(step) * stepTime
		for n := 0; n < nodes; n++ {
			flows = append(flows, sirius.Flow{
				Src:     n,
				Dst:     (n + 1) % nodes,
				Bytes:   chunkBytes,
				Arrival: at,
			})
		}
	}

	fmt.Printf("ring allreduce: %d nodes, %d MiB gradients, %d steps of %d KiB chunks\n",
		nodes, gradBytes>>20, steps, chunkBytes>>10)
	fmt.Printf("ideal step time at %v Gbps: %v\n\n", cfg.NodeBandwidth().Gbit(), stepTime)

	rep, err := cfg.Run(flows)
	if err != nil {
		log.Fatal(err)
	}
	esn, err := cfg.RunESN(flows, 1, 0)
	if err != nil {
		log.Fatal(err)
	}

	algBW := func(total time.Duration) float64 {
		// Standard allreduce algorithmic bandwidth: 2S(N-1)/N over time.
		bytes := 2.0 * float64(gradBytes) * float64(nodes-1) / float64(nodes)
		return bytes * 8 / total.Seconds() / 1e9
	}
	fmt.Println(rep)
	fmt.Printf("  allreduce completion: %v (%.0f Gbps algorithmic bandwidth)\n\n",
		rep.SimTime, algBW(rep.SimTime))
	fmt.Println(esn)
	fmt.Printf("  allreduce completion: %v (%.0f Gbps algorithmic bandwidth)\n\n",
		esn.SimTime, algBW(esn.SimTime))
	fmt.Printf("Sirius finishes the allreduce at %.0f%% of the ideal ESN's speed.\n",
		100*esn.SimTime.Seconds()/rep.SimTime.Seconds())
}
