// Failover: §4.5 fault tolerance. A node fails; its schedule slots go
// dark, survivors detour around it, and every node loses a proportional
// 1/N of bandwidth — no blackholing, no reconfiguration storm. The
// example measures goodput before and after, and after failing several
// nodes at once.
package main

import (
	"fmt"
	"log"

	"sirius"
)

func main() {
	const nodes = 32
	cfg := sirius.DefaultConfig(nodes)
	cfg.Seed = 3

	// Traffic among the nodes that stay alive throughout, so the same
	// flow set is valid in every scenario.
	all := sirius.Workload(cfg, 0.8, 3000, 9)
	var flows []sirius.Flow
	failSet := map[int]bool{7: true, 19: true, 23: true}
	for _, f := range all {
		if !failSet[f.Src] && !failSet[f.Dst] {
			flows = append(flows, f)
		}
	}
	fmt.Printf("fabric: %d nodes; workload: %d flows among the %d always-live nodes\n\n",
		nodes, len(flows), nodes-len(failSet))

	run := func(label string, failed []int) float64 {
		c := cfg
		c.FailedNodes = failed
		rep, err := c.Run(flows)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s goodput %.3f   short-flow p99 %v\n",
			label, rep.Goodput, rep.ShortFCTP99)
		return rep.Goodput
	}

	healthy := run("healthy fabric:", nil)
	one := run("1 node failed:", []int{7})
	three := run("3 nodes failed:", []int{7, 19, 23})

	fmt.Printf("\ngoodput retained: %.1f%% with one failure (ideal: %.1f%%),\n",
		100*one/healthy, 100*float64(nodes-1)/nodes)
	fmt.Printf("                  %.1f%% with three (ideal: %.1f%%).\n",
		100*three/healthy, 100*float64(nodes-3)/nodes)
	fmt.Println("\nFailures cost bandwidth proportionally; traffic keeps flowing")
	fmt.Println("through the remaining intermediates without any rewiring.")
}
