// Quickstart: build a 64-rack Sirius fabric, offer the paper's synthetic
// workload at 50% load, and compare it against the idealized
// electrically-switched baselines — a miniature Fig. 9 in thirty lines.
package main

import (
	"fmt"
	"log"

	"sirius"
)

func main() {
	cfg := sirius.DefaultConfig(64) // 64 racks, 8x50G base uplinks, 1.5x provisioned
	flows := sirius.Workload(cfg, 0.5, 4000, 1)

	fmt.Printf("fabric: %d nodes, %d-port gratings, %d uplinks (%.1fx), %v Gbps/node\n",
		cfg.Nodes, cfg.GratingPorts, cfg.Uplinks(),
		cfg.UplinkMultiplier, cfg.NodeBandwidth().Gbit())
	fmt.Printf("workload: %d flows, Pareto(1.05) sizes, Poisson arrivals\n\n", len(flows))

	rep, err := cfg.Run(flows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	idealCfg := cfg
	idealCfg.Ideal = true
	ideal, err := idealCfg.Run(flows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ideal)

	esn, err := cfg.RunESN(flows, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(esn)

	osub, err := cfg.RunESN(flows, 3, cfg.GratingPorts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(osub)

	fmt.Printf("\nSirius goodput is %.0f%% of the non-blocking ESN at half load,\n",
		100*rep.Goodput/esn.Goodput)
	fmt.Printf("with %.1f%% of cells taking the direct (no-detour) path.\n",
		100*rep.DirectFraction)
}
