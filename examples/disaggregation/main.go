// Disaggregation: the second hardware-driven workload motivating Sirius
// (§1-2) — memory disaggregated across the fabric. Compute racks page in
// 4 KB blocks from memory racks while background traffic loads the
// network; what matters is the tail of the page-read completion time,
// since it sits directly on the application's critical path.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"sirius"
)

func main() {
	const (
		nodes    = 32
		memNodes = 8 // racks 24..31 serve remote memory
		pages    = 4000
		pageSize = 4096
	)
	cfg := sirius.DefaultConfig(nodes)
	cfg.Seed = 5

	// Background: the usual heavy-tailed datacenter mix at 40% load.
	background := sirius.Workload(cfg, 0.4, 2000, 21)

	// Foreground: page reads from compute racks to memory racks, paced
	// uniformly through the background's time span.
	span := background[len(background)-1].Arrival
	var flows []sirius.Flow
	flows = append(flows, background...)
	var pageIdx []int // indices of page flows within `flows`
	for p := 0; p < pages; p++ {
		at := time.Duration(float64(span) * float64(p) / pages)
		src := nodes - memNodes + p%memNodes // memory rack sends the page
		dst := p % (nodes - memNodes)        // compute rack receives it
		pageIdx = append(pageIdx, len(flows))
		flows = append(flows, sirius.Flow{Src: src, Dst: dst, Bytes: pageSize, Arrival: at})
	}
	// Run() requires arrival order.
	sort.SliceStable(flows, func(i, j int) bool { return flows[i].Arrival < flows[j].Arrival })

	fmt.Printf("disaggregated memory: %d compute racks paging 4 KB blocks from %d memory racks\n",
		nodes-memNodes, memNodes)
	fmt.Printf("%d page reads over %v, against %d background flows at 40%% load\n\n",
		pages, span.Round(time.Microsecond), len(background))

	rep, err := cfg.Run(flows)
	if err != nil {
		log.Fatal(err)
	}
	// ShortFCT covers everything under 100 KB — dominated by the 4 KB
	// pages plus small background flows; report it as the paging tail.
	fmt.Println(rep)
	fmt.Printf("  page-read latency: p50 %v  p99 %v\n\n", rep.ShortFCTP50, rep.ShortFCTP99)

	// The same exercise on the slow-switching fabric (40 ns guardband).
	slow := cfg
	slow.Guardband = 40 * time.Nanosecond
	slow.CellBytes = 2250
	slowRep, err := slow.Run(flows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with 400ns slots (40ns guardband): p50 %v  p99 %v\n\n",
		slowRep.ShortFCTP50, slowRep.ShortFCTP99)

	fmt.Printf("Nanosecond switching keeps the paging tail %.1fx shorter —\n",
		float64(slowRep.ShortFCTP99)/float64(rep.ShortFCTP99))
	fmt.Println("the difference between remote memory that feels like memory")
	fmt.Println("and remote memory that feels like storage.")
}
