package sirius

// Cross-module integration tests: properties that only hold when the
// schedule, the optics, the lasers and the timing budgets agree with
// each other.

import (
	"testing"

	"sirius/internal/laser"
	"sirius/internal/optics"
	"sirius/internal/phy"
	"sirius/internal/rack"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/timesync"
)

// TestScheduleTuningFitsGuardband walks the grouped schedule's actual
// per-slot wavelength transitions and checks each laser design against
// the guardband that the paper pairs it with: the SOA bank fits the
// 10 ns (and even the 3.84 ns) guardband; the damped DSDBR needs v1's
// 100 ns; the stock DSDBR fits neither.
func TestScheduleTuningFitsGuardband(t *testing.T) {
	worstTransition := func(gratingPorts int, l laser.Tuner) simtime.Duration {
		g, err := schedule.NewGrouped(2*gratingPorts, gratingPorts, 1)
		if err != nil {
			t.Fatal(err)
		}
		var worst simtime.Duration
		for node := 0; node < 2; node++ { // transitions repeat per group
			for u := 0; u < g.Uplinks(); u++ {
				prev := g.Wavelength(node, u, g.SlotsPerEpoch()-1)
				for s := 0; s < g.SlotsPerEpoch(); s++ {
					w := g.Wavelength(node, u, s)
					if d := l.TuneTime(prev, w); d > worst {
						worst = d
					}
					prev = w
				}
			}
		}
		return worst
	}

	// The SOA bank covers a 19-port grating within even the v2 budget.
	soa := worstTransition(19, laser.NewFixedBank(19, 1))
	if v2 := phy.SiriusV2Budget(); soa > v2.LaserTuning {
		t.Errorf("SOA bank worst transition %v exceeds the v2 tuning budget %v", soa, v2.LaserTuning)
	}
	// A full 112-port grating sweeps the laser across its whole range;
	// the cyclic sequence is mostly ±1-channel hops but the epoch wrap
	// jumps the entire band — that transition is what sizes the
	// guardband. The damped DSDBR needs v1's 100 ns; it cannot meet the
	// 10 ns target (the reason the custom chip exists).
	damped := worstTransition(112, laser.NewDampedDSDBR())
	if damped > 100*simtime.Nanosecond {
		t.Errorf("damped DSDBR worst transition %v exceeds the v1 guardband", damped)
	}
	if damped <= 10*simtime.Nanosecond {
		t.Errorf("damped DSDBR (%v) should not fit the 10 ns guardband across the full band", damped)
	}
	stock := worstTransition(112, laser.NewDSDBR())
	if stock <= 100*simtime.Nanosecond {
		t.Error("stock DSDBR should not fit any slot-scale guardband")
	}
}

// TestLaserSharingFeasible ties §4.5's laser sharing to the schedule and
// the link budget: all of a node's transceivers use one wavelength per
// slot (schedule property), and the optical budget lets one laser feed
// at least that many transceivers.
func TestLaserSharingFeasible(t *testing.T) {
	g, err := schedule.NewGrouped(64, 8, 1) // 8 uplinks per node
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.SlotsPerEpoch(); s++ {
		w0 := g.Wavelength(0, 0, s)
		for u := 1; u < g.Uplinks(); u++ {
			if g.Wavelength(0, u, s) != w0 {
				t.Fatalf("slot %d: uplinks disagree on wavelength; sharing impossible", s)
			}
		}
	}
	b := optics.DefaultLinkBudget()
	if b.MaxSplit() < g.Uplinks() {
		t.Errorf("budget shares a laser %d ways, topology needs %d", b.MaxSplit(), g.Uplinks())
	}
}

// TestEndToEndReconfigurationBudget assembles the full v2 guardband from
// the live component models — laser bank, phase-cached CDR, cached AGC,
// measured sync spread — and checks it against the 10 ns target.
func TestEndToEndReconfigurationBudget(t *testing.T) {
	bank := laser.NewFixedBank(19, 1)
	tuning := bank.WorstCase()

	nw, err := timesync.NewNetwork(timesync.DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	sync := nw.Run(50_000, 1_000)
	syncErr := simtime.Duration(sync.MaxSpreadPS * float64(simtime.Picosecond))

	cdr := phy.NewCDR()
	cdr.LockTime(1, 0) // warm the cache
	relock := cdr.LockTime(1, simtime.Time(1600*simtime.Nanosecond))

	agc := phy.NewAGC()
	agc.Settle(1, -6)
	gain := agc.Settle(1, -6)

	preamble := phy.SiriusV2Budget().Preamble
	total := tuning + syncErr + relock + gain + preamble
	if total > 10*simtime.Nanosecond {
		t.Errorf("assembled reconfiguration budget %v misses the 10 ns target "+
			"(tuning %v, sync %v, cdr %v, agc %v, preamble %v)",
			total, tuning, syncErr, relock, gain, preamble)
	}
}

// TestRackFeedsFabric couples the intra-rack tier to the fabric shape:
// a rack with the paper's 24 servers and 8 uplinks drains its LOCAL at
// exactly the rate the cyclic schedule gives the node, and the credit
// loop keeps LOCAL bounded while doing so.
func TestRackFeedsFabric(t *testing.T) {
	g, err := schedule.NewGrouped(128, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	uplinks := g.Uplinks() // 8
	sw, err := rack.New(rack.Config{
		Servers:              24,
		DownlinkCellsPerSlot: 2, // 100G server links vs 50G cells
		LocalCells:           uplinks * 24,
		UplinkCellsPerSlot:   uplinks,
	})
	if err != nil {
		t.Fatal(err)
	}
	for sv := 0; sv < 24; sv++ {
		sw.Offer(sv, 400, 0)
	}
	const slots = 2000
	drained := 0
	for i := 0; i < slots; i++ {
		drained += sw.Step()
	}
	if drained != 24*400 {
		t.Fatalf("drained %d of %d cells", drained, 24*400)
	}
	// The drain must have run at (close to) the fabric rate while
	// backlogged: 9600 cells at 8/slot needs 1200 slots.
	if sw.PeakLocal() > uplinks*24 {
		t.Errorf("LOCAL exceeded its bound: %d", sw.PeakLocal())
	}
}
