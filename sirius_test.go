package sirius

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultConfigShape(t *testing.T) {
	c := DefaultConfig(64)
	if c.Nodes != 64 || c.GratingPorts != 8 {
		t.Fatalf("config = %+v", c)
	}
	if c.BaseUplinks() != 8 {
		t.Errorf("base uplinks = %d, want 8", c.BaseUplinks())
	}
	if c.Uplinks() != 12 {
		t.Errorf("uplinks at 1.5x = %d, want 12", c.Uplinks())
	}
	if c.NodeBandwidth().Gbit() != 400 {
		t.Errorf("node bandwidth = %v Gbps, want 400", c.NodeBandwidth().Gbit())
	}
}

func TestDefaultConfigSmallAndOdd(t *testing.T) {
	// Node counts that don't divide nicely still produce valid configs.
	for _, n := range []int{4, 6, 10, 12, 30, 100} {
		c := DefaultConfig(n)
		if c.Nodes%c.GratingPorts != 0 {
			t.Errorf("nodes %d: grating ports %d do not divide", n, c.GratingPorts)
		}
		if _, err := c.buildSchedule(); err != nil {
			t.Errorf("nodes %d: %v", n, err)
		}
	}
}

func TestEndToEndSmall(t *testing.T) {
	c := DefaultConfig(16)
	c.Seed = 3
	flows := Workload(c, 0.4, 300, 5)
	rep, err := c.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(flows) {
		t.Fatalf("completed %d of %d", rep.Completed, len(flows))
	}
	if rep.System != "SIRIUS" {
		t.Errorf("system = %q", rep.System)
	}
	if rep.ShortFCTP99 <= 0 {
		t.Error("no short-flow FCT reported")
	}
	if !strings.Contains(rep.String(), "SIRIUS") {
		t.Error("String() missing system name")
	}
}

func TestIdealVariant(t *testing.T) {
	c := DefaultConfig(16)
	c.Ideal = true
	rep, err := c.Run(Workload(c, 0.3, 150, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.System != "SIRIUS (IDEAL)" {
		t.Errorf("system = %q", rep.System)
	}
	if rep.Completed != 150 {
		t.Errorf("completed = %d", rep.Completed)
	}
}

func TestESNBaselines(t *testing.T) {
	c := DefaultConfig(16)
	flows := Workload(c, 0.5, 400, 9)
	ideal, err := c.RunESN(flows, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	osub, err := c.RunESN(flows, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ideal.System != "ESN (Ideal)" || !strings.Contains(osub.System, "OSUB") {
		t.Errorf("names: %q / %q", ideal.System, osub.System)
	}
	if osub.Goodput >= ideal.Goodput {
		t.Errorf("oversubscribed goodput %v should be below ideal %v",
			osub.Goodput, ideal.Goodput)
	}
	if osub.ShortFCTP99 <= ideal.ShortFCTP99 {
		t.Error("oversubscribed tail FCT should be worse")
	}
}

func TestSiriusTracksESNIdeal(t *testing.T) {
	// The paper's central claim at a small scale: Sirius with 1.5x
	// uplinks achieves goodput comparable to the non-blocking ESN.
	c := DefaultConfig(32)
	flows := Workload(c, 0.6, 1500, 4)
	sir, err := c.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	esn, err := c.RunESN(flows, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sir.Goodput < esn.Goodput*0.7 {
		t.Errorf("Sirius goodput %v too far below ESN %v", sir.Goodput, esn.Goodput)
	}
}

func TestFractionalMultiplierUsesRotor(t *testing.T) {
	c := DefaultConfig(64)
	c.UplinkMultiplier = 1.5 // 12 uplinks, 8 groups: not an integer plane count
	sched, err := c.buildSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if sched.Uplinks() != 12 {
		t.Errorf("uplinks = %d, want 12", sched.Uplinks())
	}
	c.UplinkMultiplier = 2
	sched, err = c.buildSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if sched.Uplinks() != 16 {
		t.Errorf("uplinks = %d, want 16", sched.Uplinks())
	}
}

func TestConfigErrors(t *testing.T) {
	c := DefaultConfig(16)
	c.GratingPorts = 3
	if _, err := c.Run(nil); err == nil {
		t.Error("non-dividing grating ports accepted")
	}
	c = DefaultConfig(16)
	c.UplinkMultiplier = 0.5
	if _, err := c.Run(nil); err == nil {
		t.Error("sub-1 multiplier accepted")
	}
}

func TestWorkloadProperties(t *testing.T) {
	c := DefaultConfig(16)
	flows := Workload(c, 0.5, 500, 7)
	if len(flows) != 500 {
		t.Fatalf("got %d flows", len(flows))
	}
	var prev time.Duration
	for _, f := range flows {
		if f.Src == f.Dst || f.Src < 0 || f.Src >= 16 || f.Dst < 0 || f.Dst >= 16 {
			t.Fatalf("bad endpoints %d->%d", f.Src, f.Dst)
		}
		if f.Arrival < prev {
			t.Fatal("arrivals unsorted")
		}
		prev = f.Arrival
	}
}

func TestRackTierSlowsIngress(t *testing.T) {
	c := DefaultConfig(16)
	flows := Workload(c, 0.6, 400, 3)
	fast, err := c.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	// 24 servers at 10G each: 240G aggregate < 400G node bandwidth, so
	// the rack tier becomes the bottleneck and stretches completion.
	c.Rack = &RackTier{Servers: 24, ServerRate: 10e9}
	slow, err := c.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Completed != len(flows) {
		t.Fatalf("completed %d of %d", slow.Completed, len(flows))
	}
	if slow.SimTime <= fast.SimTime {
		t.Errorf("rack tier (%v) did not slow ingress vs %v", slow.SimTime, fast.SimTime)
	}
}

func TestRackTierValidation(t *testing.T) {
	c := DefaultConfig(16)
	c.Rack = &RackTier{Servers: 0, ServerRate: 1e9}
	if _, err := c.Run(nil); err == nil {
		t.Error("bad rack tier accepted")
	}
}

func TestParallelPlanesRelieveOverload(t *testing.T) {
	// Offered load sized for one fabric at 100%: striping it over two
	// planes halves each plane's load, so tail FCT drops and the
	// aggregate-normalized goodput roughly halves.
	c := DefaultConfig(16)
	flows := Workload(c, 1.0, 800, 13)
	single, err := c.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	dual, err := c.RunParallel(flows, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dual.Completed != len(flows) {
		t.Fatalf("completed %d of %d", dual.Completed, len(flows))
	}
	if dual.ShortFCTP99 >= single.ShortFCTP99 {
		t.Errorf("two planes p99 %v not below one plane %v",
			dual.ShortFCTP99, single.ShortFCTP99)
	}
	if dual.Goodput >= single.Goodput {
		t.Errorf("aggregate-normalized goodput %v should drop vs %v (same load, double capacity)",
			dual.Goodput, single.Goodput)
	}
	if dual.System != "SIRIUS x2 planes" {
		t.Errorf("system = %q", dual.System)
	}
}

func TestParallelPlanesValidation(t *testing.T) {
	c := DefaultConfig(16)
	if _, err := c.RunParallel(nil, 0); err == nil {
		t.Error("0 planes accepted")
	}
	if _, err := c.RunParallel([]Flow{{Src: 99, Dst: 1, Bytes: 1}}, 2); err == nil {
		t.Error("bad source accepted")
	}
	// planes=1 falls through to Run.
	rep, err := c.RunParallel(Workload(c, 0.3, 50, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.System != "SIRIUS" {
		t.Errorf("system = %q", rep.System)
	}
}

func TestReportSlowdown(t *testing.T) {
	c := DefaultConfig(16)
	rep, err := c.Run(Workload(c, 0.4, 200, 6))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SlowdownP50 < 1 {
		t.Errorf("p50 slowdown = %v < 1", rep.SlowdownP50)
	}
	if rep.SlowdownP99 < rep.SlowdownP50 {
		t.Error("p99 slowdown below p50")
	}
}

func TestAllToAllAndBroadcastWorkloads(t *testing.T) {
	c := DefaultConfig(8)
	a2a, err := AllToAllWorkload(c, 5000, 2, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(a2a) != 2*8*7 {
		t.Fatalf("all-to-all flows = %d", len(a2a))
	}
	rep, err := c.Run(a2a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(a2a) {
		t.Fatalf("completed %d of %d", rep.Completed, len(a2a))
	}
	bc, err := BroadcastWorkload(c, 3, 2000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bc) != 7 {
		t.Fatalf("broadcast flows = %d", len(bc))
	}
	if _, err := BroadcastWorkload(c, 99, 1, 0); err == nil {
		t.Error("bad broadcast source accepted")
	}
}

func TestRateAlias(t *testing.T) {
	c := DefaultConfig(16)
	c.LineRate = 100 * Gbps
	if c.NodeBandwidth() != 800*Gbps {
		t.Errorf("node bandwidth = %v", c.NodeBandwidth())
	}
	var r Rate = 1.6 * Tbps
	if r.Gbit() != 1600 {
		t.Errorf("Gbit = %v", r.Gbit())
	}
}
