package sirius_test

import (
	"fmt"

	"sirius"
)

// The most basic use: build a fabric, offer traffic, read the report.
func ExampleConfig_Run() {
	cfg := sirius.DefaultConfig(16)
	flows := []sirius.Flow{
		{Src: 0, Dst: 5, Bytes: 50_000},
		{Src: 3, Dst: 9, Bytes: 2_000},
	}
	rep, err := cfg.Run(flows)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s delivered %d/%d flows, %d bytes\n",
		rep.System, rep.Completed, rep.Flows, rep.DeliveredBytes)
	// Output:
	// SIRIUS delivered 2/2 flows, 52000 bytes
}

// Comparing against the idealized electrically-switched baseline.
func ExampleConfig_RunESN() {
	cfg := sirius.DefaultConfig(16)
	flows := sirius.Workload(cfg, 0.5, 200, 1)
	sir, err := cfg.Run(flows)
	if err != nil {
		panic(err)
	}
	esn, err := cfg.RunESN(flows, 1, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("both completed: %v\n", sir.Completed == esn.Completed)
	// Output:
	// both completed: true
}

// Scaling with parallel fabric planes (§4.5).
func ExampleConfig_RunParallel() {
	cfg := sirius.DefaultConfig(16)
	flows := sirius.Workload(cfg, 0.8, 100, 2)
	rep, err := cfg.RunParallel(flows, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.System)
	// Output:
	// SIRIUS x2 planes
}
