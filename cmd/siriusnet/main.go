// Command siriusnet runs the §6 prototype emulation over real TCP
// sockets: an AWGR emulator process routes wavelength-tagged frames
// between node loops that follow the static cyclic schedule and exchange
// PRBS test patterns, measuring the bit error rate end to end.
//
// Single-process (all roles in one process):
//
//	siriusnet [-nodes 4] [-epochs 1000] [-payload 64] [-flip 0]
//
// Multi-process (each role its own process, possibly on other hosts):
//
//	siriusnet -role awgr -nodes 4 -listen :9000 [-flip 0]
//	siriusnet -role node -id 0 -nodes 4 -connect host:9000 [-epochs 1000]
//	... one node process per id 0..nodes-1 ...
//
// -flip injects per-bit corruption (emulating operation below receiver
// sensitivity); the PRBS checkers must detect exactly that rate.
package main

import (
	"flag"
	"fmt"
	"os"

	"sirius/internal/wire"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 4, "number of nodes (the paper's prototype uses 4)")
		epochs  = flag.Int("epochs", 1000, "epochs to run")
		payload = flag.Int("payload", 64, "PRBS payload bytes per cell")
		flip    = flag.Float64("flip", 0, "per-bit corruption probability")
		role    = flag.String("role", "", `"" = all-in-one, "awgr" = grating emulator, "node" = one node`)
		id      = flag.Int("id", 0, "node id for -role node")
		listen  = flag.String("listen", ":9000", "listen address for -role awgr")
		connect = flag.String("connect", "127.0.0.1:9000", "emulator address for -role node")
	)
	flag.Parse()

	switch *role {
	case "awgr":
		em, err := wire.NewEmulatorAddr(*listen, *nodes, *flip, 42)
		if err != nil {
			fmt.Fprintf(os.Stderr, "siriusnet: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("AWGR emulator: %d ports on %s (flip %g)\n", *nodes, em.Addr(), *flip)
		if err := em.Serve(); err != nil {
			fmt.Fprintf(os.Stderr, "siriusnet: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("done: routed %d frames\n", em.Routed())
		return
	case "node":
		st, err := wire.RunNode(wire.NodeConfig{
			ID:           *id,
			Addr:         *connect,
			Nodes:        *nodes,
			Epochs:       *epochs,
			PayloadBytes: *payload,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "siriusnet: node %d: %v\n", *id, err)
			os.Exit(1)
		}
		fmt.Printf("node %d: sent %d received %d misrouted %d BER %.3g\n",
			st.Node, st.Sent, st.Received, st.Misrouted, st.BER())
		return
	case "":
		// All-in-one below.
	default:
		fmt.Fprintf(os.Stderr, "siriusnet: unknown role %q\n", *role)
		os.Exit(2)
	}

	st, err := wire.RunPrototype(*nodes, *epochs, *payload, *flip)
	if err != nil {
		fmt.Fprintf(os.Stderr, "siriusnet: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%-6s %10s %10s %10s %12s %12s\n",
		"node", "sent", "received", "misrouted", "bit_errors", "BER")
	for _, n := range st.Nodes {
		fmt.Printf("%-6d %10d %10d %10d %12d %12.3g\n",
			n.Node, n.Sent, n.Received, n.Misrouted, n.BitErrors, n.BER())
	}
	fmt.Printf("\nframes routed through AWGR emulator: %d\n", st.Routed)
	fmt.Printf("aggregate BER: %.3g\n", st.BER)
	if st.ErrFree {
		fmt.Println("post-FEC: error-free (BER within the FEC budget)")
	} else {
		fmt.Println("post-FEC: NOT error-free")
	}
}
