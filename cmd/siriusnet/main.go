// Command siriusnet runs the §6 prototype emulation over real TCP
// sockets: an AWGR emulator process routes wavelength-tagged frames
// between node loops that follow the static cyclic schedule and exchange
// PRBS test patterns, measuring the bit error rate end to end.
//
// Single-process (all roles in one process):
//
//	siriusnet [-nodes 4] [-epochs 1000] [-payload 64] [-flip 0]
//
// Multi-process (each role its own process, possibly on other hosts):
//
//	siriusnet -role awgr -nodes 4 -listen :9000 [-flip 0]
//	siriusnet -role node -id 0 -nodes 4 -connect host:9000 [-epochs 1000]
//	... one node process per id 0..nodes-1 ...
//
// -flip injects per-bit corruption (emulating operation below receiver
// sensitivity); the PRBS checkers must detect exactly that rate.
//
// Output batching: the emulator coalesces routed frames into one write
// per output port (-batch frames, -batch-bytes budget, -flush-interval
// idle deadline; zeros keep the defaults, -batch 1 restores per-frame
// writes). Coalescing only changes syscall boundaries — every counter,
// corruption decision and failure timeline is identical either way.
//
// Observability: -telemetry ADDR serves live /metrics (Prometheus text),
// /healthz (degraded while a failure is suspected, healthy once the
// fabric compacts) and /debug/vars for the duration of the run;
// -telemetry-hold keeps the endpoints up after the run completes until
// SIGINT, so external scrapers and smoke tests can poll a finished
// fabric. -trace-events FILE writes a Chrome trace_event JSON timeline
// (per-epoch spans, suspect/schedule-switch instants) loadable in
// Perfetto or chrome://tracing.
//
// Fault injection (§4.5): -faultplan loads a scripted, seeded plan of
// crashes, restarts, grey blackholes, BER degradations, and stalls
// (internal/fault JSON); -kill-node/-kill-epoch is shorthand for the
// common fail-stop case. All roles accept the same flags, so a
// multi-process run injects the same chaos as a single-process one, and
// the plan's content hash is printed so chaos runs can be named and
// replayed byte-identically (-seed fixes every random choice).
//
// Lifecycle operations: -drain-node/-drain-epoch script a cooperative
// zero-loss drain, -readd-epoch re-admits the drained node later, and
// -expand "node@epoch[,node@epoch...]" grows the fabric live (the
// joiner ids must be < -nodes; founders are the rest). These are
// shorthands for the corresponding plan events, so the same rule
// applies: in a multi-process run EVERY process — the emulator and all
// nodes, including the joiners and the drain victim — must receive the
// identical lifecycle flags, or the fabric's membership views diverge.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"sirius/internal/fault"
	"sirius/internal/telemetry"
	"sirius/internal/wire"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 4, "number of nodes (the paper's prototype uses 4)")
		epochs  = flag.Int("epochs", 1000, "epochs to run")
		payload = flag.Int("payload", 64, "PRBS payload bytes per cell")
		flip    = flag.Float64("flip", 0, "per-bit corruption probability")
		role    = flag.String("role", "", `"" = all-in-one, "awgr" = grating emulator, "node" = one node`)
		id      = flag.Int("id", 0, "node id for -role node")
		listen  = flag.String("listen", ":9000", "listen address for -role awgr")
		connect = flag.String("connect", "127.0.0.1:9000", "emulator address for -role node")

		batch         = flag.Int("batch", 0, "emulator output batching: frames to coalesce per write (0 = default policy, 1 = per-frame writes)")
		batchBytes    = flag.Int("batch-bytes", 0, "emulator output batching: byte budget per coalesced write (0 = default)")
		flushInterval = flag.Duration("flush-interval", 0, "emulator output batching: idle flush interval (0 = default)")

		planPath  = flag.String("faultplan", "", "JSON fault plan to inject (internal/fault format)")
		killNode  = flag.Int("kill-node", -1, "shorthand: fail-stop this node...")
		killEpoch = flag.Int("kill-epoch", 0, "...at this fabric epoch")
		drainNode  = flag.Int("drain-node", -1, "shorthand: cooperatively drain this node...")
		drainEpoch = flag.Int("drain-epoch", 0, "...announcing at this fabric epoch (detaches at epoch+2, zero loss)")
		readdEpoch = flag.Int("readd-epoch", -1, "re-admit the drained node at this epoch (requires -drain-node)")
		expand     = flag.String("expand", "", `grow the fabric live: comma list of "node@epoch" joiners (ids < -nodes)`)
		seed      = flag.Uint64("seed", 42, "seed for every random choice (corruption substreams)")

		telAddr     = flag.String("telemetry", "", "serve live /metrics, /healthz and /debug/vars on this address (e.g. 127.0.0.1:9090)")
		telHold     = flag.Bool("telemetry-hold", false, "keep serving telemetry after the run completes, until SIGINT")
		traceEvents = flag.String("trace-events", "", "write a Chrome trace_event JSON timeline to this file")
	)
	flag.Parse()

	// Observability plane: one registry, health tracker and tracer for
	// whatever roles run in this process. The registry is the process
	// Default so role-specific code paths that fall back to it (and any
	// future expvar-style probes) land in the same place the HTTP server
	// scrapes.
	reg := telemetry.Default
	health := telemetry.NewHealth(256)
	var tracer *telemetry.Tracer // nil disables tracing (nil-safe everywhere)
	if *traceEvents != "" {
		tracer = telemetry.NewTracer(0)
	}
	var srv *telemetry.Server
	if *telAddr != "" {
		s, err := telemetry.NewServer(*telAddr, reg, health)
		if err != nil {
			fmt.Fprintf(os.Stderr, "siriusnet: telemetry: %v\n", err)
			os.Exit(2)
		}
		srv = s
		defer srv.Close()
		fmt.Printf("telemetry: serving /metrics and /healthz on http://%s\n", srv.Addr())
	}
	// flushObs writes the trace file and optionally holds the HTTP
	// endpoints open; call it right before a successful exit.
	flushObs := func() {
		if tracer != nil {
			if err := tracer.WriteJSONFile(*traceEvents); err != nil {
				fmt.Fprintf(os.Stderr, "siriusnet: trace-events: %v\n", err)
			} else {
				fmt.Printf("trace events written to %s (%d dropped)\n", *traceEvents, tracer.Dropped())
			}
		}
		if srv != nil && *telHold {
			fmt.Printf("telemetry: holding http://%s until SIGINT\n", srv.Addr())
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
			<-ch
		}
	}

	plan, err := loadPlan(*planPath, *killNode, *killEpoch,
		*drainNode, *drainEpoch, *readdEpoch, *expand, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "siriusnet: %v\n", err)
		os.Exit(2)
	}
	if !plan.Empty() {
		fmt.Printf("fault plan %s: %d event(s), seed %d\n", plan.Hash(), len(plan.Events), plan.Seed)
	}

	switch *role {
	case "awgr":
		em, err := wire.NewEmulatorFault(*listen, *nodes, *flip, *seed, plan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "siriusnet: %v\n", err)
			os.Exit(1)
		}
		if *batch != 0 || *batchBytes != 0 || *flushInterval != 0 {
			em.SetBatching(*batch, *batchBytes, *flushInterval)
		}
		em.Instrument(reg, health)
		fmt.Printf("AWGR emulator: %d ports on %s (flip %g)\n", *nodes, em.Addr(), *flip)
		if err := em.Serve(); err != nil {
			fmt.Fprintf(os.Stderr, "siriusnet: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("done: routed %d frames", em.Routed())
		if d, g := em.Dropped(), em.GreyDropped(); d+g > 0 {
			fmt.Printf(" (dropped %d, grey-dropped %d)", d, g)
		}
		if r := em.Rejected(); r > 0 {
			fmt.Printf(", rejected %d connection(s)", r)
		}
		fmt.Println()
		flushObs()
		return
	case "node":
		st, err := wire.RunNode(wire.NodeConfig{
			ID:           *id,
			Addr:         *connect,
			Nodes:        *nodes,
			Epochs:       *epochs,
			PayloadBytes: *payload,
			Plan:         plan,
			Telemetry:    reg,
			Health:       health,
			Tracer:       tracer,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "siriusnet: node %d: %v\n", *id, err)
			os.Exit(1)
		}
		printNode(*st)
		flushObs()
		return
	case "":
		// All-in-one below.
	default:
		fmt.Fprintf(os.Stderr, "siriusnet: unknown role %q\n", *role)
		os.Exit(2)
	}

	fs, err := wire.RunPrototypeCfg(wire.PrototypeConfig{
		Nodes:         *nodes,
		Epochs:        *epochs,
		PayloadBytes:  *payload,
		FlipProb:      *flip,
		Seed:          *seed,
		Plan:          plan,
		BatchFrames:   *batch,
		BatchBytes:    *batchBytes,
		FlushInterval: *flushInterval,
		Telemetry:     reg,
		Health:        health,
		Tracer:        tracer,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "siriusnet: %v\n", err)
		os.Exit(1)
	}
	st := fs.Stats
	fmt.Printf("%-6s %10s %10s %10s %12s %12s  %s\n",
		"node", "sent", "received", "misrouted", "bit_errors", "BER", "fate")
	for _, n := range st.Nodes {
		fate := "ok"
		switch {
		case n.Crashed && n.Rejoins > 0:
			fate = "crashed, rejoined"
		case n.Crashed:
			fate = "crashed"
		case n.Ejected:
			fate = "ejected"
		case n.Drained && n.Rejoins > 0:
			fate = "drained, re-added"
		case n.Drained:
			fate = "drained (zero loss)"
		case n.JoinedAt > 0:
			fate = fmt.Sprintf("joined @%d", n.JoinedAt)
		case n.Reconnects > 0:
			fate = fmt.Sprintf("reconnected x%d", n.Reconnects)
		}
		fmt.Printf("%-6d %10d %10d %10d %12d %12.3g  %s\n",
			n.Node, n.Sent, n.Received, n.Misrouted, n.BitErrors, n.BER(), fate)
	}
	fmt.Printf("\nframes routed through AWGR emulator: %d\n", st.Routed)
	for _, f := range fs.Failures {
		fmt.Printf("failure of node %d: suspected @%d, confirmed @%d, schedule switch @%d\n",
			f.Peer, f.SuspectEpoch, f.ConfirmEpoch, f.SwitchEpoch)
	}
	if fs.SwitchEpoch >= 0 {
		fmt.Printf("slot utilization: degraded %.3f -> compacted %.3f\n",
			fs.DegradedGoodput, fs.CompactedGoodput)
	}
	fmt.Printf("aggregate BER (survivors): %.3g\n", st.BER)
	if st.ErrFree {
		fmt.Println("post-FEC: error-free (BER within the FEC budget)")
	} else {
		fmt.Println("post-FEC: NOT error-free")
	}
	flushObs()
}

// loadPlan assembles the fault plan from -faultplan and/or the
// -kill-node / -drain-node / -expand shorthands.
func loadPlan(path string, killNode, killEpoch, drainNode, drainEpoch, readdEpoch int,
	expand string, seed uint64) (*fault.Plan, error) {
	var plan *fault.Plan
	if path != "" {
		p, err := fault.Load(path)
		if err != nil {
			return nil, err
		}
		plan = p
	}
	add := func(e fault.Event) {
		if plan == nil {
			plan = &fault.Plan{Seed: seed}
		}
		plan.Events = append(plan.Events, e)
	}
	if killNode >= 0 {
		add(fault.Event{Kind: fault.Crash, Node: killNode, Epoch: killEpoch})
	}
	if drainNode >= 0 {
		add(fault.Event{Kind: fault.Drain, Node: drainNode, Epoch: drainEpoch})
		if readdEpoch >= 0 {
			add(fault.Event{Kind: fault.Readd, Node: drainNode, Epoch: readdEpoch})
		}
	} else if readdEpoch >= 0 {
		return nil, fmt.Errorf("-readd-epoch requires -drain-node")
	}
	if expand != "" {
		for _, spec := range strings.Split(expand, ",") {
			var node, epoch int
			if _, err := fmt.Sscanf(strings.TrimSpace(spec), "%d@%d", &node, &epoch); err != nil {
				return nil, fmt.Errorf("-expand: bad joiner %q (want \"node@epoch\"): %v", spec, err)
			}
			add(fault.Event{Kind: fault.Expand, Node: node, Epoch: epoch})
		}
	}
	if plan != nil && plan.Seed == 0 {
		plan.Seed = seed
	}
	return plan, nil
}

func printNode(st wire.NodeStats) {
	fmt.Printf("node %d: sent %d received %d misrouted %d BER %.3g reconnects %d\n",
		st.Node, st.Sent, st.Received, st.Misrouted, st.BER(), st.Reconnects)
	for _, f := range st.Failures {
		fmt.Printf("  observed failure of node %d: suspect @%d confirm @%d switch @%d\n",
			f.Peer, f.SuspectEpoch, f.ConfirmEpoch, f.SwitchEpoch)
	}
	if st.Crashed {
		fmt.Println("  executed scripted crash")
	}
	if st.Ejected {
		fmt.Println("  ejected by the fabric (confirmed failed)")
	}
	if st.Drained {
		fmt.Println("  completed planned drain (zero loss)")
	}
	if st.Rejoins > 0 {
		fmt.Printf("  re-admitted %d time(s)\n", st.Rejoins)
	}
	if st.JoinedAt > 0 {
		fmt.Printf("  joined the running fabric at epoch %d\n", st.JoinedAt)
	}
}
