// Command siriuspower runs the §5 power and cost analysis with
// user-adjustable component assumptions.
//
// Usage:
//
//	siriuspower [-laser-power 3] [-laser-cost 3] [-grating-frac 0.25]
//	            [-overprovision 2] [-layers 4] [-bisection-pbps 100]
package main

import (
	"flag"
	"fmt"
	"os"

	"sirius/internal/power"
)

func main() {
	p := power.DefaultParams()
	flag.Float64Var(&p.TunablePowerRatio, "laser-power", p.TunablePowerRatio,
		"tunable/fixed laser power ratio")
	flag.Float64Var(&p.TunableCostRatio, "laser-cost", p.TunableCostRatio,
		"tunable/fixed laser cost ratio")
	flag.Float64Var(&p.GratingCostFrac, "grating-frac", p.GratingCostFrac,
		"grating cost as a fraction of an equal-radix electrical switch")
	flag.Float64Var(&p.Overprovision, "overprovision", p.Overprovision,
		"uplink multiplier compensating load-balanced routing")
	flag.IntVar(&p.ESNLayers, "layers", p.ESNLayers, "ESN switch layers")
	bisection := flag.Float64("bisection-pbps", 100,
		"datacenter bisection bandwidth in Pbps for the absolute power figure")
	flag.Parse()

	if p.Overprovision < 1 || p.GratingCostFrac <= 0 || p.TunablePowerRatio < 1 ||
		p.TunableCostRatio < 1 || p.ESNLayers < 1 {
		fmt.Fprintln(os.Stderr, "siriuspower: parameters out of range")
		os.Exit(2)
	}

	w := os.Stdout
	fmt.Fprintf(w, "ESN (non-blocking, %d layers): %8.1f W/Tbps  %10.0f $/Tbps\n",
		p.ESNLayers, p.ESNPowerPerTbps(p.ESNLayers), p.ESNCostPerTbps(p.ESNLayers, 1))
	fmt.Fprintf(w, "ESN (3:1 oversubscribed):      %8s         %10.0f $/Tbps\n",
		"-", p.ESNCostPerTbps(p.ESNLayers, p.Oversub))
	fmt.Fprintf(w, "Sirius:                        %8.1f W/Tbps  %10.0f $/Tbps\n",
		p.SiriusPowerPerTbps(), p.SiriusCostPerTbps())
	fmt.Fprintf(w, "Electrically-switched Sirius:  %8s         %10.0f $/Tbps\n",
		"-", p.ElectricalSiriusCostPerTbps())
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Sirius/ESN power ratio:        %6.1f%%  (paper: 23-26%% at 3-5x lasers)\n",
		100*p.PowerRatio())
	fmt.Fprintf(w, "Sirius/ESN cost ratio:         %6.1f%%  (paper: ~28%%)\n",
		100*p.CostRatio())
	fmt.Fprintf(w, "Sirius/ESN-OSUB cost ratio:    %6.1f%%  (paper: ~53%%)\n",
		100*p.CostRatioOversub())
	fmt.Fprintf(w, "Sirius/electrical-variant:     %6.1f%%  (paper: ~55%%)\n",
		100*p.SiriusCostPerTbps()/p.ElectricalSiriusCostPerTbps())
	fmt.Fprintln(w)
	fmt.Fprintf(w, "A %.0f Pbps non-blocking ESN would draw %.1f MW (paper: 48.7 MW at 100 Pbps).\n",
		*bisection, p.DatacenterPowerMW(*bisection))
}
