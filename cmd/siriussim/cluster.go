// Distributed-sweep roles: -serve turns this process into a sweep
// coordinator that leases grid points to workers; -worker turns it into
// a worker that dials a coordinator, expands the same point set locally
// (from the spec the coordinator sends) and executes leased points.
// Both sides run identical experiment code at the same root seed, so
// the coordinator's output is byte-identical to a serial run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"sirius/internal/cluster"
	"sirius/internal/exp"
	"sirius/internal/fault"
	"sirius/internal/sweep"
	"sirius/internal/telemetry"
)

// Worker exit codes beyond the usual 0/1/2: the cluster-smoke CI job
// waits for a fault-planned worker to die with exitCrashed before
// starting the survivors.
const exitCrashed = 3

// clusterSpec is the opaque Welcome payload cmd/siriussim exchanges: it
// names the experiment and the knobs that shape its point grid, so a
// worker can re-expand exactly the coordinator's point set. HashPoints
// on both sides guards against any drift this spec fails to capture.
type clusterSpec struct {
	Exp    string    `json:"exp"`
	Scale  string    `json:"scale"`
	Seed   uint64    `json:"seed"`
	Loads  []float64 `json:"loads"`
	Epochs int       `json:"epochs,omitempty"`
}

// sweepExps are the experiments that run on the sweep engine — the only
// ones the cluster roles can distribute. Values are the one-line
// descriptions -exp list prints.
var sweepExps = map[string]string{
	"fig9":        "Fig 9: short-flow p99 FCT and goodput vs load (Sirius vs ESN)",
	"fig10":       "Fig 10: queue bound Q sweep — FCT, goodput, peak queue/reorder",
	"fig11":       "Fig 11: FCT vs guardband at high load (slot scaled with it)",
	"fig12":       "Fig 12: goodput vs load for 1x/1.5x/2x uplink provisioning",
	"fig13":       "Fig 13: FCT and goodput vs mean flow size (cell-padding tax)",
	"failure":     "§4.5: node failures — degraded vs compacted schedule",
	"servers":     "§7: server-level metrics on the rack-based deployment",
	"ablation":    "ablations: pricing the design choices one knob at a time",
	"archcompare": "scheduler families (static/rotorrr/pulse/negotiator) vs ESN on one flow sample",
}

// runSweepExp dispatches one sweep-shaped experiment onto rn with the
// canonical grid parameters (the same values the runners table in run()
// uses — both go through here so coordinator, worker and serial runs
// can never disagree on the grid).
func runSweepExp(ctx context.Context, rn *sweep.Runner, name string, sc exp.Scale, loads []float64) (*exp.Table, error) {
	switch name {
	case "fig9":
		return exp.Fig9(ctx, rn, sc, loads)
	case "fig10":
		return exp.Fig10(ctx, rn, sc, []int{2, 4, 8, 16}, loads)
	case "fig11":
		return exp.Fig11(ctx, rn, sc, []float64{1, 5, 10, 20, 40})
	case "fig12":
		return exp.Fig12(ctx, rn, sc, []float64{1, 1.5, 2}, loads)
	case "fig13":
		return exp.Fig13(ctx, rn, sc, []float64{512, 1024, 2048, 4096, 16384, 32768, 65536, 100_000}, 0.75)
	case "failure":
		return exp.Failure(ctx, rn, sc, []int{0, 1, 4, 8})
	case "servers":
		return exp.ServerLevel(ctx, rn, sc, 8, loads)
	case "ablation":
		return exp.Ablation(ctx, rn, sc, 0.75)
	case "archcompare":
		return exp.ArchCompare(ctx, rn, sc, loads,
			[]float64{4096, 100e3}, []float64{0, 0.5})
	}
	return nil, fmt.Errorf("%q is not a sweep experiment (cluster roles take one of fig9 fig10 fig11 fig12 fig13 failure servers ablation archcompare)", name)
}

// expandSweep expands the named experiment's point set without executing
// anything, via the sweep runner's capture mode.
func expandSweep(ctx context.Context, name string, sc exp.Scale, loads []float64) (map[string][]sweep.Point, error) {
	points := make(map[string][]sweep.Point)
	capture := &sweep.Runner{RootSeed: sc.Seed, Capture: func(n string, pts []sweep.Point) {
		points[n] = pts
	}}
	if _, err := runSweepExp(ctx, capture, name, sc, loads); err != nil && !errors.Is(err, sweep.ErrCaptureOnly) {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("experiment %q produced no sweep points", name)
	}
	return points, nil
}

// scaleByName resolves a clusterSpec scale name.
func scaleByName(name string) (exp.Scale, error) {
	switch name {
	case "tiny":
		return exp.TinyScale(), nil
	case "small":
		return exp.SmallScale(), nil
	case "paper":
		return exp.PaperScale(), nil
	}
	return exp.Scale{}, fmt.Errorf("unknown scale %q", name)
}

// workerOpts carries the flag subset the worker role consumes.
type workerOpts struct {
	addr      string // coordinator address
	name      string
	id        int
	planPath  string // fault plan scripting this worker's chaos
	useCache  bool
	cacheDir  string
	perfJSON  string
	telOut    string
	pprof     bool
	dialRetry time.Duration
}

// runWorkerRole is the -worker main: dial (with retry, so workers can
// start before the coordinator listens), expand the spec's point set,
// serve leases until Done. Exit codes: 0 done, 1 runtime error, 2 setup
// error, exitCrashed when a fault plan scripted this worker's death.
func runWorkerRole(ctx context.Context, o workerOpts) int {
	var plan *fault.Plan
	if o.planPath != "" {
		var err error
		if plan, err = fault.Load(o.planPath); err != nil {
			fmt.Fprintf(os.Stderr, "faultplan: %v\n", err)
			return 2
		}
	}
	rn := &sweep.Runner{Parallel: 1, PprofLabels: o.pprof}
	if o.useCache {
		if cache, err := sweep.OpenCache(o.cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "cache disabled: %v\n", err)
		} else {
			rn.Cache = cache
		}
	}
	cfg := cluster.WorkerConfig{
		Name:     o.name,
		ID:       o.id,
		Runner:   rn,
		Plan:     plan,
		Registry: telemetry.Default,
		Log:      os.Stderr,
	}

	var w *cluster.Worker
	deadline := time.Now().Add(o.dialRetry)
	for {
		var err error
		w, err = cluster.Dial(o.addr, cfg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "worker: %v\n", err)
			return 2
		}
		time.Sleep(200 * time.Millisecond)
	}

	var spec clusterSpec
	if err := json.Unmarshal(w.Spec(), &spec); err != nil {
		fmt.Fprintf(os.Stderr, "worker: bad spec from coordinator: %v\n", err)
		w.Close()
		return 2
	}
	sc, err := scaleByName(spec.Scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		w.Close()
		return 2
	}
	sc.Seed = w.RootSeed()
	points, err := expandSweep(ctx, spec.Exp, sc, spec.Loads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: expanding %s: %v\n", spec.Exp, err)
		w.Close()
		return 2
	}

	started := time.Now()
	runErr := w.Run(ctx, points)
	wall := time.Since(started)

	if o.perfJSON != "" {
		rec := struct {
			Exp          string  `json:"exp"`
			Role         string  `json:"role"`
			WallNS       int64   `json:"wall_ns"`
			Points       int64   `json:"points"`
			PointsPerSec float64 `json:"points_per_second"`
			Err          string  `json:"error,omitempty"`
		}{Exp: spec.Exp, Role: "worker", WallNS: wall.Nanoseconds(), Points: int64(w.Completed)}
		if wall > 0 {
			rec.PointsPerSec = float64(w.Completed) / wall.Seconds()
		}
		if runErr != nil {
			rec.Err = runErr.Error()
		}
		if err := writeJSONFile(o.perfJSON, []any{rec}); err != nil {
			fmt.Fprintf(os.Stderr, "perfjson: %v\n", err)
		}
	}
	if o.telOut != "" {
		if err := telemetry.Default.Snapshot().WriteJSONFile(o.telOut); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry-out: %v\n", err)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", runErr)
		if errors.Is(runErr, cluster.ErrCrashed) {
			return exitCrashed
		}
		return 1
	}
	return 0
}
