package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"testing"
)

// freePort reserves an ephemeral TCP address and releases it for the
// coordinator to claim. (A small window exists between Close and the
// coordinator's Listen; acceptable in a test on one machine.)
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestClusterCLIEndToEnd drives the full distributed story through the
// real CLI entry point: a coordinator serving fig9, one worker scripted
// by a fault plan to crash on its first lease, then two survivors. The
// coordinator's stdout must be byte-identical to a serial -parallel 1
// run, the crash must surface as a reclaimed lease in the telemetry
// snapshot, and the run manifest must carry per-worker provenance.
func TestClusterCLIEndToEnd(t *testing.T) {
	dir := t.TempDir()

	serialOut, code := captureRun(t, "-exp", "fig9", "-scale", "tiny",
		"-parallel", "1", "-cache=false", "-manifest", "", "-perf=false")
	if code != 0 {
		t.Fatalf("serial run exit = %d", code)
	}

	plan := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(plan, []byte(`{"seed":1,"events":[{"kind":"crash","epoch":0,"node":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	telOut := filepath.Join(dir, "telemetry.json")
	perfOut := filepath.Join(dir, "perf.json")
	manifestOut := filepath.Join(dir, "manifest.json")
	addr := freePort(t)

	// One stdout capture around the whole scenario: only the coordinator
	// prints the table; workers write to stderr alone.
	oldStdout := os.Stdout
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = pw

	coordDone := make(chan int, 1)
	go func() {
		coordDone <- run([]string{"-exp", "fig9", "-scale", "tiny",
			"-serve", addr, "-lease-ttl", "2s", "-cache=false",
			"-manifest", manifestOut, "-perfjson", perfOut,
			"-telemetry-out", telOut, "-perf=false"})
	}()

	// The doomed worker runs synchronously: it must take the first lease
	// and die with the crash exit code before any survivor exists, which
	// guarantees the coordinator reclaims at least one lease.
	doomedCode := run([]string{"-worker", addr, "-worker-name", "doomed",
		"-worker-id", "1", "-faultplan", plan, "-cache=false"})

	w2 := make(chan int, 1)
	w3 := make(chan int, 1)
	go func() {
		w2 <- run([]string{"-worker", addr, "-worker-name", "w2", "-worker-id", "2", "-cache=false"})
	}()
	go func() {
		w3 <- run([]string{"-worker", addr, "-worker-name", "w3", "-worker-id", "3", "-cache=false"})
	}()

	coordCode := <-coordDone
	w2Code, w3Code := <-w2, <-w3

	pw.Close()
	os.Stdout = oldStdout
	var clusterOut []byte
	tmp := make([]byte, 4096)
	for {
		n, rerr := pr.Read(tmp)
		clusterOut = append(clusterOut, tmp[:n]...)
		if rerr != nil {
			break
		}
	}

	if doomedCode != exitCrashed {
		t.Errorf("doomed worker exit = %d, want %d", doomedCode, exitCrashed)
	}
	if coordCode != 0 || w2Code != 0 || w3Code != 0 {
		t.Fatalf("exits: coordinator=%d w2=%d w3=%d, want all 0", coordCode, w2Code, w3Code)
	}
	if string(clusterOut) != serialOut {
		t.Errorf("cluster output diverges from serial output\ncluster:\n%s\nserial:\n%s", clusterOut, serialOut)
	}

	// The crash is observable: the telemetry snapshot counts >= 1
	// reclaimed lease and every point completed.
	var tel struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	raw, err := os.ReadFile(telOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &tel); err != nil {
		t.Fatal(err)
	}
	counters := map[string]int64{}
	for _, c := range tel.Counters {
		counters[c.Name] += c.Value
	}
	if counters["sirius_cluster_leases_reclaimed_total"] < 1 {
		t.Errorf("reclaimed = %d, want >= 1 (crashed worker held a lease)", counters["sirius_cluster_leases_reclaimed_total"])
	}
	if counters["sirius_cluster_workers_registered_total"] < 3 {
		t.Errorf("registered = %d, want >= 3", counters["sirius_cluster_workers_registered_total"])
	}

	// Manifest: the fig9 sweep carries per-worker provenance whose point
	// counts add up to the full grid (the doomed worker completed none).
	var man struct {
		Sweeps []struct {
			Name    string `json:"name"`
			Points  []any  `json:"points"`
			Workers []struct {
				Worker string `json:"worker"`
				Points int    `json:"points"`
			} `json:"workers"`
		} `json:"sweeps"`
	}
	raw, err = os.ReadFile(manifestOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	if len(man.Sweeps) != 1 || man.Sweeps[0].Name != "fig9" {
		t.Fatalf("manifest sweeps: %+v", man.Sweeps)
	}
	total := 0
	for _, w := range man.Sweeps[0].Workers {
		if w.Worker == "doomed" && w.Points > 0 {
			t.Errorf("doomed worker credited with %d point(s)", w.Points)
		}
		total += w.Points
	}
	if total != len(man.Sweeps[0].Points) {
		t.Errorf("worker provenance accounts for %d/%d points", total, len(man.Sweeps[0].Points))
	}
	if counters["sirius_cluster_points_completed_total"] != int64(len(man.Sweeps[0].Points)) {
		t.Errorf("completed counter = %d, want %d", counters["sirius_cluster_points_completed_total"], len(man.Sweeps[0].Points))
	}

	// -perfjson: the coordinator role reports distributed throughput.
	var perf []struct {
		Exp          string  `json:"exp"`
		Role         string  `json:"role"`
		Points       int64   `json:"points"`
		PointsPerSec float64 `json:"points_per_second"`
	}
	raw, err = os.ReadFile(perfOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &perf); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range perf {
		if p.Role == "coordinator" {
			found = true
			if p.Exp != "fig9" || p.Points != int64(len(man.Sweeps[0].Points)) || p.PointsPerSec <= 0 {
				t.Errorf("coordinator perf record %+v", p)
			}
		}
	}
	if !found {
		t.Error("no coordinator record in -perfjson output")
	}
}

// TestClusterRoleValidation pins the role flags' guard rails: -serve
// refuses non-sweep experiments and -serve/-worker are exclusive.
func TestClusterRoleValidation(t *testing.T) {
	if _, code := captureRun(t, "-exp", "fig2a", "-serve", "127.0.0.1:0", "-manifest", ""); code != 2 {
		t.Errorf("-serve with non-sweep experiment exit = %d, want 2", code)
	}
	if _, code := captureRun(t, "-exp", "all", "-serve", "127.0.0.1:0", "-manifest", ""); code != 2 {
		t.Errorf("-serve with -exp all exit = %d, want 2", code)
	}
	if _, code := captureRun(t, "-serve", "127.0.0.1:0", "-worker", "127.0.0.1:1", "-exp", "fig9", "-manifest", ""); code != 2 {
		t.Errorf("-serve + -worker exit = %d, want 2", code)
	}
}
