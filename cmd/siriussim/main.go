// Command siriussim regenerates the paper's tables and figures.
//
// Usage:
//
//	siriussim -exp fig9 [-scale small|paper|tiny] [-loads 0.1,0.5,1.0]
//	siriussim -exp all
//
// Experiments: fig2a fig6a fig6b tuning lasers fig8a fig8b fig8c fig8d
// timesync budget burst proto fig9 fig10 fig11 fig12 fig13 failure
// servers ablation custom (with -trace).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sirius/internal/exp"
)

func main() {
	var (
		name   = flag.String("exp", "all", "experiment id (see package doc; \"all\" runs everything)")
		scale  = flag.String("scale", "small", "network-simulation scale: tiny, small, paper")
		loads  = flag.String("loads", "0.10,0.25,0.50,0.75,1.00", "comma-separated load points")
		epochs = flag.Int("epochs", 50_000, "epochs for the timesync experiment")
		format = flag.String("format", "text", "output format: text, csv, json")
		trace  = flag.String("trace", "", "flow-trace CSV for -exp custom (arrival_ns,src,dst,bytes)")
		ports  = flag.Int("ports", 8, "grating ports for -exp custom")
	)
	flag.Parse()

	var sc exp.Scale
	switch *scale {
	case "tiny":
		sc = exp.TinyScale()
	case "small":
		sc = exp.SmallScale()
	case "paper":
		sc = exp.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	loadList, err := parseFloats(*loads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -loads: %v\n", err)
		os.Exit(2)
	}

	runners := map[string]func() (*exp.Table, error){
		"fig2a":    func() (*exp.Table, error) { return exp.Fig2a(), nil },
		"fig6a":    func() (*exp.Table, error) { return exp.Fig6a(), nil },
		"fig6b":    func() (*exp.Table, error) { return exp.Fig6b(), nil },
		"tuning":   func() (*exp.Table, error) { return exp.Tuning(), nil },
		"lasers":   func() (*exp.Table, error) { return exp.LaserDesigns(), nil },
		"fig8a":    func() (*exp.Table, error) { return exp.Fig8a(), nil },
		"fig8b":    func() (*exp.Table, error) { return exp.Fig8b(), nil },
		"fig8c":    func() (*exp.Table, error) { return exp.Fig8c(), nil },
		"fig8d":    func() (*exp.Table, error) { return exp.Fig8d(), nil },
		"timesync": func() (*exp.Table, error) { return exp.Timesync(*epochs), nil },
		"budget":   func() (*exp.Table, error) { return exp.LinkBudget(), nil },
		"burst":    func() (*exp.Table, error) { return exp.Burst(), nil },
		"proto":    func() (*exp.Table, error) { return exp.Prototype(4, 200) },
		"fig9":     func() (*exp.Table, error) { return exp.Fig9(sc, loadList) },
		"fig10": func() (*exp.Table, error) {
			return exp.Fig10(sc, []int{2, 4, 8, 16}, loadList)
		},
		"fig11": func() (*exp.Table, error) {
			return exp.Fig11(sc, []float64{1, 5, 10, 20, 40})
		},
		"fig12": func() (*exp.Table, error) {
			return exp.Fig12(sc, []float64{1, 1.5, 2}, loadList)
		},
		"fig13": func() (*exp.Table, error) {
			return exp.Fig13(sc, []float64{512, 1024, 2048, 4096, 16384, 32768, 65536, 100_000}, 0.75)
		},
		"failure": func() (*exp.Table, error) {
			return exp.Failure(sc, []int{0, 1, 4, 8})
		},
		"servers": func() (*exp.Table, error) {
			return exp.ServerLevel(sc, 8, loadList)
		},
		"ablation": func() (*exp.Table, error) {
			return exp.Ablation(sc, 0.75)
		},
		"custom": func() (*exp.Table, error) {
			if *trace == "" {
				return nil, fmt.Errorf("-exp custom needs -trace <file.csv>")
			}
			return exp.FromTraceFile(*trace, *ports, 1)
		},
	}

	order := []string{"fig2a", "fig6a", "fig6b", "tuning", "lasers", "fig8a", "fig8b",
		"fig8c", "fig8d", "timesync", "budget", "burst", "proto",
		"fig9", "fig10", "fig11", "fig12", "fig13", "failure", "servers", "ablation"}

	run := func(id string) {
		r, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		tab, err := r()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "text":
			tab.Fprint(os.Stdout)
		case "csv":
			err = tab.CSV(os.Stdout)
		case "json":
			err = tab.JSON(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
	}

	if *name == "all" {
		for _, id := range order {
			run(id)
		}
		return
	}
	run(*name)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no load points")
	}
	return out, nil
}
