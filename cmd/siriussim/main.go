// Command siriussim regenerates the paper's tables and figures.
//
// Usage:
//
//	siriussim -exp fig9 [-scale small|paper|tiny] [-loads 0.1,0.5,1.0]
//	siriussim -exp all [-parallel N] [-seed S] [-cache=false]
//
// Experiments: fig2a fig6a fig6b tuning lasers fig8a fig8b fig8c fig8d
// timesync budget burst proto livefailure lifecycle fig9 fig10 fig11
// fig12 fig13 failure servers ablation archcompare custom (with -trace).
// -exp list enumerates them all with one-line descriptions.
//
// The sweep-shaped experiments (fig9–fig13, failure, servers, ablation)
// run on the internal/sweep engine: grid points execute on a bounded
// worker pool (-parallel, default GOMAXPROCS) with deterministic
// per-point RNG substreams, so -parallel N output is byte-identical to
// -parallel 1 for the same -seed. Completed points are memoized under
// -cachedir (default results/cache); re-runs replay them unless
// -cache=false. Every invocation writes a machine-readable run manifest
// (-manifest, default results/run_manifest.json) with per-point config
// hashes and wall times — including on SIGINT, which cancels in-flight
// workers and flushes whatever completed.
//
// -exp all runs every experiment even if some fail: per-experiment
// errors go to stderr and the exit status is non-zero iff any failed.
//
// Observability: -telemetry-out FILE dumps the process's telemetry
// registry (every counter, gauge and histogram the simulators
// accumulated) as a JSON snapshot on exit; -trace-events FILE writes a
// Chrome trace_event timeline with one span per experiment and one span
// per sweep point (plus cache-hit instants), loadable in Perfetto;
// -perfjson FILE writes the per-experiment perf summaries as JSON
// records (the -perf stderr text is unchanged); -telemetry ADDR serves
// /metrics and /healthz live during the run.
//
// Distributed sweeps (DESIGN.md §9): -serve ADDR runs a sweep
// experiment as a cluster coordinator, leasing grid points to workers;
// -worker ADDR runs this process as a worker against that coordinator
// (with -worker-name, -worker-id, and -faultplan for scripted chaos).
// The coordinator's output is byte-identical to a serial run at the
// same seed; crashed or stalled workers lose their leases, which other
// workers reclaim.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sirius/internal/cluster"
	"sirius/internal/core"
	"sirius/internal/dc"
	"sirius/internal/exp"
	"sirius/internal/fluid"
	"sirius/internal/sweep"
	"sirius/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("siriussim", flag.ExitOnError)
	var (
		name     = fs.String("exp", "all", "experiment id (see package doc; \"all\" runs everything)")
		scale    = fs.String("scale", "small", "network-simulation scale: tiny, small, paper, xl")
		loads    = fs.String("loads", "0.10,0.25,0.50,0.75,1.00", "comma-separated load points")
		epochs   = fs.Int("epochs", 50_000, "epochs for the timesync experiment")
		format   = fs.String("format", "text", "output format: text, csv, json")
		trace    = fs.String("trace", "", "flow-trace CSV for -exp custom (arrival_ns,src,dst,bytes)")
		ports    = fs.Int("ports", 8, "grating ports for -exp custom")
		parallel = fs.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS, 1 = serial)")
		cores    = fs.Int("cores", 0, "slot-level core shard count (0 = the scale's default; 1 = serial; byte-identical either way)")
		seed     = fs.Uint64("seed", 0, "root seed for the sweeps (0 = the scale's default seed)")
		useCache = fs.Bool("cache", true, "memoize completed sweep points on disk")
		cacheDir = fs.String("cachedir", "results/cache", "sweep point cache directory")
		manifest = fs.String("manifest", "results/run_manifest.json", "run manifest path (empty disables)")
		progress = fs.Bool("progress", false, "stream per-point sweep progress and ETA to stderr")

		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = fs.String("memprofile", "", "write a heap profile to this file on exit")
		exectrace   = fs.String("exectrace", "", "write a runtime execution trace to this file")
		pprofLabels = fs.Bool("pproflabels", false, "label sweep-point goroutines (sweep=<name>, point=<key>) in CPU profiles")
		perf        = fs.Bool("perf", true, "print a per-experiment wall-time and cells/sec summary to stderr")

		perfJSON = fs.String("perfjson", "", "write the per-experiment perf summaries as JSON to this file")
		telOut   = fs.String("telemetry-out", "", "write a JSON snapshot of the telemetry registry to this file on exit")
		traceOut = fs.String("trace-events", "", "write a Chrome trace_event timeline (experiment + sweep-point spans) to this file")

		serveAddr  = fs.String("serve", "", "run as sweep coordinator: listen for workers on this address (requires a sweep -exp)")
		workerAddr = fs.String("worker", "", "run as sweep worker: lease points from the coordinator at this address")
		workerName = fs.String("worker-name", "", "worker name, unique per coordinator (default worker-<worker-id>)")
		workerID   = fs.Int("worker-id", 0, "worker id in fault-plan node space")
		planPath   = fs.String("faultplan", "", "fault plan JSON (internal/fault format) scripting this worker's crash/stall chaos")
		leaseTTL   = fs.Duration("lease-ttl", 10*time.Second, "coordinator lease TTL: heartbeats extend it, expiry reclaims the point")
		telAddr    = fs.String("telemetry", "", "serve live /metrics and /healthz on this address while running")
	)
	fs.Parse(args)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *exectrace != "" {
		f, err := os.Create(*exectrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "exectrace: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "exectrace: %v\n", err)
			return 2
		}
		defer rtrace.Stop()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	var sc exp.Scale
	switch *scale {
	case "tiny":
		sc = exp.TinyScale()
	case "small":
		sc = exp.SmallScale()
	case "paper":
		sc = exp.PaperScale()
	case "xl":
		sc = exp.XLScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		return 2
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *cores != 0 {
		sc.CoreShards = *cores
	}
	loadList, err := parseFloats(*loads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -loads: %v\n", err)
		return 2
	}

	// SIGINT/SIGTERM cancel the sweep context: in-flight simulation
	// workers abort at their next epoch boundary, completed tables have
	// already been printed, and the manifest below is still flushed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Live observability endpoint (any role): /metrics serves the
	// telemetry registry, /healthz the health tracker — which the
	// coordinator below feeds worker-liveness conditions.
	health := telemetry.NewHealth(0)
	if *telAddr != "" {
		telSrv, err := telemetry.NewServer(*telAddr, telemetry.Default, health)
		if err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			return 2
		}
		defer telSrv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /healthz on %s\n", telSrv.Addr())
	}

	if *workerAddr != "" {
		if *serveAddr != "" {
			fmt.Fprintln(os.Stderr, "-serve and -worker are mutually exclusive")
			return 2
		}
		return runWorkerRole(ctx, workerOpts{
			addr:      *workerAddr,
			name:      *workerName,
			id:        *workerID,
			planPath:  *planPath,
			useCache:  *useCache,
			cacheDir:  *cacheDir,
			perfJSON:  *perfJSON,
			telOut:    *telOut,
			pprof:     *pprofLabels,
			dialRetry: 15 * time.Second,
		})
	}

	var tracer *telemetry.Tracer // nil disables tracing (nil-safe)
	if *traceOut != "" {
		tracer = telemetry.NewTracer(0)
	}

	runner := &sweep.Runner{Parallel: *parallel, RootSeed: sc.Seed, PprofLabels: *pprofLabels, Tracer: tracer}
	if *progress {
		runner.Progress = os.Stderr
	}
	if *useCache {
		cache, err := sweep.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cache disabled: %v\n", err)
		} else {
			runner.Cache = cache
		}
	}

	// Coordinator role: expand the experiment's point set, open the lease
	// server and plug it into the runner as its executor. The experiment
	// then runs exactly as usual — every point the local cache misses is
	// leased to a worker instead of computed here.
	var coord *cluster.Coordinator
	if *serveAddr != "" {
		if _, ok := sweepExps[*name]; !ok {
			fmt.Fprintf(os.Stderr, "-serve requires a single sweep experiment, not %q\n", *name)
			return 2
		}
		points, err := expandSweep(ctx, *name, sc, loadList)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			return 2
		}
		spec, err := json.Marshal(clusterSpec{Exp: *name, Scale: *scale, Seed: sc.Seed, Loads: loadList, Epochs: *epochs})
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			return 2
		}
		coord, err = cluster.NewCoordinator(*serveAddr, cluster.CoordinatorConfig{
			Spec:     spec,
			RootSeed: sc.Seed,
			SpecHash: cluster.HashPoints(sc.Seed, points),
			LeaseTTL: *leaseTTL,
			Registry: telemetry.Default,
			Health:   health,
			Log:      os.Stderr,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			return 2
		}
		defer coord.Close()
		runner.Executor = coord
		fmt.Fprintf(os.Stderr, "serve: coordinating %s on %s (%d point(s), lease TTL %s)\n",
			*name, coord.Addr(), len(points[*name]), *leaseTTL)
	}

	// experiment pairs a runner with the one-line description -exp list
	// prints; the registry is the single place experiments are declared.
	type experiment struct {
		desc string
		run  func() (*exp.Table, error)
	}
	runners := map[string]experiment{
		"fig2a":    {"Fig 2a: scale tax — network power per bisection bandwidth", func() (*exp.Table, error) { return exp.Fig2a(), nil }},
		"fig6a":    {"Fig 6a: Sirius/ESN power vs tunable-to-fixed laser power ratio", func() (*exp.Table, error) { return exp.Fig6a(), nil }},
		"fig6b":    {"Fig 6b: Sirius/ESN cost vs grating cost fraction", func() (*exp.Table, error) { return exp.Fig6b(), nil }},
		"tuning":   {"§3.2/§6: laser tuning latency", func() (*exp.Table, error) { return exp.Tuning(), nil }},
		"lasers":   {"§3.3: disaggregated tunable laser designs", func() (*exp.Table, error) { return exp.LaserDesigns(), nil }},
		"fig8a":    {"Fig 8a: CDF of SOA rise and fall times", func() (*exp.Table, error) { return exp.Fig8a(), nil }},
		"fig8b":    {"Fig 8b: switching between adjacent and distant wavelengths", func() (*exp.Table, error) { return exp.Fig8b(), nil }},
		"fig8c":    {"Fig 8c: burst waveform over consecutive cell slots", func() (*exp.Table, error) { return exp.Fig8c(), nil }},
		"fig8d":    {"Fig 8d: BER vs received power for four wavelengths", func() (*exp.Table, error) { return exp.Fig8d(), nil }},
		"timesync": {"§6: time-synchronization accuracy", func() (*exp.Table, error) { return exp.Timesync(*epochs), nil }},
		"budget":   {"§4.5: link budget and laser sharing", func() (*exp.Table, error) { return exp.LinkBudget(), nil }},
		"burst":    {"§2.2: packet-size mixture and the 10 ns guardband target", func() (*exp.Table, error) { return exp.Burst(), nil }},
		"proto":    {"§6: prototype emulation — cyclic schedule + PRBS over TCP AWGR", func() (*exp.Table, error) { return exp.Prototype(4, 200) }},
		"livefailure": {"§4.5 live: node kill on the wire testbed — detect, flood, compact", func() (*exp.Table, error) {
			return exp.LiveFailure(4, 40, 2, 10, *seed)
		}},
		"lifecycle": {"lifecycle soak: expansion, drain/re-add, crash and load shifts", func() (*exp.Table, error) { return exp.Lifecycle(*seed) }},
		"custom": {"flow-trace replay from -trace CSV (arrival_ns,src,dst,bytes)", func() (*exp.Table, error) {
			if *trace == "" {
				return nil, fmt.Errorf("-exp custom needs -trace <file.csv>")
			}
			return exp.FromTraceFile(ctx, *trace, *ports, 1)
		}},
	}
	// The sweep-shaped experiments all dispatch through runSweepExp — the
	// single source of truth for each experiment's grid, shared with the
	// cluster worker role so distributed point expansion can never drift
	// from what runs here.
	for id, desc := range sweepExps {
		id := id
		runners[id] = experiment{desc, func() (*exp.Table, error) { return runSweepExp(ctx, runner, id, sc, loadList) }}
	}

	order := []string{"fig2a", "fig6a", "fig6b", "tuning", "lasers", "fig8a", "fig8b",
		"fig8c", "fig8d", "timesync", "budget", "burst", "proto", "livefailure", "lifecycle",
		"fig9", "fig10", "fig11", "fig12", "fig13", "failure", "servers", "ablation",
		"archcompare"}

	// -exp list: enumerate the registry (run order first, then the
	// trace-driven extra) and exit without running anything.
	if *name == "list" {
		for _, id := range append(append([]string{}, order...), "custom") {
			fmt.Printf("%-12s %s\n", id, runners[id].desc)
		}
		return 0
	}

	started := time.Now()
	var failures []string
	fail := func(id string, err error) {
		failures = append(failures, fmt.Sprintf("%s: %v", id, err))
		fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
	}

	// perfRecord mirrors one experiment's perf stderr line for -perfjson.
	// Role distinguishes cluster records: "coordinator" (with Points and
	// PointsPerSec for the distributed sweep) vs the usual per-experiment
	// records, which leave it empty.
	type perfRecord struct {
		Exp          string  `json:"exp"`
		Role         string  `json:"role,omitempty"`
		Points       int64   `json:"points,omitempty"`
		PointsPerSec float64 `json:"points_per_second,omitempty"`

		WallNS      int64   `json:"wall_ns"`
		Cells       int64   `json:"cells,omitempty"`
		Slots       int64   `json:"slots,omitempty"`
		CellsPerSec float64 `json:"cells_per_sec,omitempty"`
		// Shards is the slot-level core's shard count and ShardCells the
		// cells transmitted by each shard's nodes (phase T plus sweep
		// attribution); ShardCellsPerSec divides those by the experiment
		// wall clock. Only real parallel speedup when GOMAXPROCS > 1.
		Shards           int       `json:"shards,omitempty"`
		ShardCells       []int64   `json:"shard_cells,omitempty"`
		ShardCellsPerSec []float64 `json:"shard_cells_per_sec,omitempty"`
		Flows            int64     `json:"flows,omitempty"`
		Events           int64     `json:"events,omitempty"`
		FlowsPerSec      float64   `json:"flows_per_sec,omitempty"`
		DCFlows          int64     `json:"dc_flows,omitempty"`
		Racks            int64     `json:"racks,omitempty"`
		Err              string    `json:"error,omitempty"`
	}
	var perfRecords []perfRecord

	// runOne executes one experiment and prints its table immediately, so
	// an interrupted or partially failing -exp all still emits everything
	// that completed.
	runOne := func(id string) {
		r, ok := runners[id]
		if !ok {
			fail(id, fmt.Errorf("unknown experiment"))
			return
		}
		cells0, slots0 := core.Counters()
		shard0 := core.ShardCounters()
		flows0, events0 := fluid.Counters()
		dcFlows0, racks0 := dc.Counters()
		t0 := time.Now()
		tab, err := r.run()
		tracer.Span(id, "experiment", 0, t0, nil)
		if *perf || *perfJSON != "" {
			wall := time.Since(t0)
			cells, slots := core.Counters()
			flows, events := fluid.Counters()
			dcFlows, racks := dc.Counters()
			rec := perfRecord{Exp: id, WallNS: wall.Nanoseconds()}
			if err != nil {
				rec.Err = err.Error()
			}
			printed := false
			if d := cells - cells0; d > 0 && wall > 0 {
				rec.Cells, rec.Slots = d, slots-slots0
				rec.CellsPerSec = float64(d) / wall.Seconds()
				if sc.CoreShards > 1 {
					shardN := core.ShardCounters()
					var sd []int64
					for i := range shardN {
						if dd := shardN[i] - shard0[i]; dd != 0 {
							for len(sd) <= i {
								sd = append(sd, 0)
							}
							sd[i] = dd
						}
					}
					if len(sd) > 0 {
						rec.Shards = sc.CoreShards
						rec.ShardCells = sd
						rec.ShardCellsPerSec = make([]float64, len(sd))
						for i, dd := range sd {
							rec.ShardCellsPerSec[i] = float64(dd) / wall.Seconds()
						}
					}
				}
				if *perf {
					extra := ""
					if rec.Shards > 1 {
						extra = fmt.Sprintf("  (%d shards)", rec.Shards)
					}
					fmt.Fprintf(os.Stderr, "perf: %-9s %10v wall  %12d cells  %10d slots  %8.2fM cells/s%s\n",
						id, wall.Round(time.Millisecond), d, slots-slots0,
						float64(d)/wall.Seconds()/1e6, extra)
				}
				printed = true
			}
			// Flow-level work (the fluid ESN baselines and the dc
			// composition's intra-rack tier) is reported in its own
			// units: flows and solver events per second.
			if d := flows - flows0; d > 0 && wall > 0 {
				rec.Flows, rec.Events = d, events-events0
				rec.FlowsPerSec = float64(d) / wall.Seconds()
				if *perf {
					fmt.Fprintf(os.Stderr, "perf: %-9s %10v wall  %12d flows  %10d events  %8.2fk flows/s\n",
						id, wall.Round(time.Millisecond), d, events-events0,
						float64(d)/wall.Seconds()/1e3)
				}
				printed = true
			}
			if d := dcFlows - dcFlows0; d > 0 && wall > 0 {
				rec.DCFlows, rec.Racks = d, racks-racks0
				if *perf {
					fmt.Fprintf(os.Stderr, "perf: %-9s %10v wall  %12d dcflows %9d racks  %8.2fk dcflows/s\n",
						id, wall.Round(time.Millisecond), d, racks-racks0,
						float64(d)/wall.Seconds()/1e3)
				}
				printed = true
			}
			if !printed && *perf {
				fmt.Fprintf(os.Stderr, "perf: %-9s %10v wall\n", id, wall.Round(time.Millisecond))
			}
			perfRecords = append(perfRecords, rec)
		}
		if err != nil {
			fail(id, err)
			return
		}
		switch *format {
		case "text":
			tab.Fprint(os.Stdout)
		case "csv":
			err = tab.CSV(os.Stdout)
		case "json":
			err = tab.JSON(os.Stdout)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			fail(id, err)
		}
	}

	if *name == "all" {
		for _, id := range order {
			if ctx.Err() != nil {
				fail(id, ctx.Err()) // interrupted: record the rest as skipped
				continue
			}
			runOne(id)
		}
	} else if _, ok := runners[*name]; !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *name)
		return 2
	} else {
		runOne(*name)
	}

	// Coordinator wrap-up: tell workers the run is over, give them a
	// moment to drain cleanly, and record the distributed throughput.
	sweeps := runner.Manifests()
	if coord != nil {
		coord.Finish()
		drainUntil := time.Now().Add(5 * time.Second)
		for coord.Stats().WorkersLive > 0 && time.Now().Before(drainUntil) {
			time.Sleep(20 * time.Millisecond)
		}
		st := coord.Stats()
		wall := time.Since(started)
		if *perf {
			fmt.Fprintf(os.Stderr, "perf: %-9s %10v wall  %12d points  %8.2f points/s  (%d reclaimed, %d workers)\n",
				"serve", wall.Round(time.Millisecond), st.Completed,
				float64(st.Completed)/wall.Seconds(), st.Reclaimed, st.Registered)
		}
		if *perfJSON != "" {
			rec := perfRecord{Exp: *name, Role: "coordinator", WallNS: wall.Nanoseconds(), Points: st.Completed}
			if wall > 0 {
				rec.PointsPerSec = float64(st.Completed) / wall.Seconds()
			}
			perfRecords = append(perfRecords, rec)
		}
		// Attach per-worker provenance (who computed what, on which
		// build) to the manifest's sweeps via the coordinator's merge.
		for i := range sweeps {
			if merged, err := coord.MergedManifest(sweeps[i].Name); err == nil {
				sweeps[i].Workers = merged.Workers
			}
		}
	}

	// Flush the run manifest — also on failure or SIGINT, so every point
	// that did complete is accounted (and cached for the next run).
	if *manifest != "" {
		m := &sweep.RunManifest{
			Command:    "siriussim " + strings.Join(args, " "),
			StartedAt:  started,
			FinishedAt: time.Now(),
			WallNS:     time.Since(started).Nanoseconds(),
			Parallel:   *parallel,
			RootSeed:   sc.Seed,
			Env:        sweep.CaptureEnv(),
			Sweeps:     sweeps,
			Errors:     failures,
		}
		if runner.Cache != nil {
			m.Cache = runner.Cache.Dir()
		}
		if err := m.WriteFile(*manifest); err != nil {
			fmt.Fprintf(os.Stderr, "manifest: %v\n", err)
		}
	}

	// Observability artifacts: best-effort, flushed even on failure so an
	// interrupted run still leaves its timeline and counters behind.
	if *perfJSON != "" {
		if err := writeJSONFile(*perfJSON, perfRecords); err != nil {
			fmt.Fprintf(os.Stderr, "perfjson: %v\n", err)
		}
	}
	if *telOut != "" {
		if err := telemetry.Default.Snapshot().WriteJSONFile(*telOut); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry-out: %v\n", err)
		}
	}
	if tracer != nil {
		if err := tracer.WriteJSONFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "trace-events: %v\n", err)
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", len(failures))
		if errors.Is(ctx.Err(), context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted: completed tables and the manifest were flushed")
		}
		return 1
	}
	return 0
}

// writeJSONFile writes v as indented JSON to path (temp file + rename),
// creating parent directories as needed.
func writeJSONFile(path string, v any) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".perf-*")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no load points")
	}
	return out, nil
}
