package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sirius/internal/sweep"
)

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0.1, 0.5,1.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.1 || got[2] != 1.0 {
		t.Errorf("parseFloats = %v", got)
	}
	if _, err := parseFloats("a,b"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parseFloats(""); err == nil {
		t.Error("empty accepted")
	}
	if _, err := parseFloats(" , ,"); err == nil {
		t.Error("blank list accepted")
	}
}

// captureRun runs the CLI with stdout redirected and returns (output, exit code).
func captureRun(t *testing.T, args ...string) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run(args)
	w.Close()
	os.Stdout = old
	buf := make([]byte, 0, 1<<16)
	tmp := make([]byte, 4096)
	for {
		n, rerr := r.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if rerr != nil {
			break
		}
	}
	return string(buf), code
}

func TestRunUnknownExperimentAndScale(t *testing.T) {
	if _, code := captureRun(t, "-exp", "nope", "-manifest", ""); code != 2 {
		t.Errorf("unknown experiment exit = %d, want 2", code)
	}
	if _, code := captureRun(t, "-scale", "galactic", "-manifest", ""); code != 2 {
		t.Errorf("unknown scale exit = %d, want 2", code)
	}
}

func TestRunSerialParallelIdentical(t *testing.T) {
	dir := t.TempDir()
	common := []string{"-exp", "fig9", "-scale", "tiny", "-loads", "0.25,0.75",
		"-cache=false", "-manifest", filepath.Join(dir, "m.json")}
	serial, code := captureRun(t, append([]string{"-parallel", "1"}, common...)...)
	if code != 0 {
		t.Fatalf("serial exit = %d", code)
	}
	par, code := captureRun(t, append([]string{"-parallel", "4"}, common...)...)
	if code != 0 {
		t.Fatalf("parallel exit = %d", code)
	}
	if serial != par {
		t.Fatalf("-parallel 4 output differs from -parallel 1:\n%s\nvs\n%s", serial, par)
	}
	if !strings.Contains(serial, "Fig 9") {
		t.Fatalf("missing table:\n%s", serial)
	}
	// The manifest landed and carries the sweep record.
	data, err := os.ReadFile(filepath.Join(dir, "m.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m sweep.RunManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Sweeps) != 1 || m.Sweeps[0].Name != "fig9" || len(m.Sweeps[0].Points) != 2 {
		t.Fatalf("manifest sweeps = %+v", m.Sweeps)
	}
}

func TestRunWarmCacheReplays(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "fig10", "-scale", "tiny", "-loads", "0.5",
		"-parallel", "2", "-cachedir", filepath.Join(dir, "cache"),
		"-manifest", filepath.Join(dir, "m.json")}
	cold, code := captureRun(t, args...)
	if code != 0 {
		t.Fatalf("cold exit = %d", code)
	}
	warm, code := captureRun(t, args...)
	if code != 0 {
		t.Fatalf("warm exit = %d", code)
	}
	if cold != warm {
		t.Fatal("warm-cache output differs from cold output")
	}
	data, err := os.ReadFile(filepath.Join(dir, "m.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m sweep.RunManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Sweeps) != 1 || m.Sweeps[0].CacheHit != len(m.Sweeps[0].Points) {
		t.Fatalf("warm run not fully cached: %+v", m.Sweeps)
	}
}

func TestRunFailureStillWritesManifest(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "m.json")
	// -exp custom without -trace fails; the manifest must still flush and
	// the exit code must be non-zero.
	_, code := captureRun(t, "-exp", "custom", "-cache=false", "-manifest", manifest)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	if !strings.Contains(string(data), "custom") {
		t.Errorf("manifest does not record the failure:\n%s", data)
	}
}
