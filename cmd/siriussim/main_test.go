package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sirius/internal/sweep"
	"sirius/internal/telemetry"
)

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0.1, 0.5,1.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.1 || got[2] != 1.0 {
		t.Errorf("parseFloats = %v", got)
	}
	if _, err := parseFloats("a,b"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parseFloats(""); err == nil {
		t.Error("empty accepted")
	}
	if _, err := parseFloats(" , ,"); err == nil {
		t.Error("blank list accepted")
	}
}

// captureRun runs the CLI with stdout redirected and returns (output, exit code).
func captureRun(t *testing.T, args ...string) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run(args)
	w.Close()
	os.Stdout = old
	buf := make([]byte, 0, 1<<16)
	tmp := make([]byte, 4096)
	for {
		n, rerr := r.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if rerr != nil {
			break
		}
	}
	return string(buf), code
}

func TestRunUnknownExperimentAndScale(t *testing.T) {
	if _, code := captureRun(t, "-exp", "nope", "-manifest", ""); code != 2 {
		t.Errorf("unknown experiment exit = %d, want 2", code)
	}
	if _, code := captureRun(t, "-scale", "galactic", "-manifest", ""); code != 2 {
		t.Errorf("unknown scale exit = %d, want 2", code)
	}
}

func TestRunSerialParallelIdentical(t *testing.T) {
	dir := t.TempDir()
	common := []string{"-exp", "fig9", "-scale", "tiny", "-loads", "0.25,0.75",
		"-cache=false", "-manifest", filepath.Join(dir, "m.json")}
	serial, code := captureRun(t, append([]string{"-parallel", "1"}, common...)...)
	if code != 0 {
		t.Fatalf("serial exit = %d", code)
	}
	par, code := captureRun(t, append([]string{"-parallel", "4"}, common...)...)
	if code != 0 {
		t.Fatalf("parallel exit = %d", code)
	}
	if serial != par {
		t.Fatalf("-parallel 4 output differs from -parallel 1:\n%s\nvs\n%s", serial, par)
	}
	if !strings.Contains(serial, "Fig 9") {
		t.Fatalf("missing table:\n%s", serial)
	}
	// The manifest landed and carries the sweep record.
	data, err := os.ReadFile(filepath.Join(dir, "m.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m sweep.RunManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Sweeps) != 1 || m.Sweeps[0].Name != "fig9" || len(m.Sweeps[0].Points) != 2 {
		t.Fatalf("manifest sweeps = %+v", m.Sweeps)
	}
}

func TestRunWarmCacheReplays(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "fig10", "-scale", "tiny", "-loads", "0.5",
		"-parallel", "2", "-cachedir", filepath.Join(dir, "cache"),
		"-manifest", filepath.Join(dir, "m.json")}
	cold, code := captureRun(t, args...)
	if code != 0 {
		t.Fatalf("cold exit = %d", code)
	}
	warm, code := captureRun(t, args...)
	if code != 0 {
		t.Fatalf("warm exit = %d", code)
	}
	if cold != warm {
		t.Fatal("warm-cache output differs from cold output")
	}
	data, err := os.ReadFile(filepath.Join(dir, "m.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m sweep.RunManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Sweeps) != 1 || m.Sweeps[0].CacheHit != len(m.Sweeps[0].Points) {
		t.Fatalf("warm run not fully cached: %+v", m.Sweeps)
	}
}

func TestRunFailureStillWritesManifest(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "m.json")
	// -exp custom without -trace fails; the manifest must still flush and
	// the exit code must be non-zero.
	_, code := captureRun(t, "-exp", "custom", "-cache=false", "-manifest", manifest)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	if !strings.Contains(string(data), "custom") {
		t.Errorf("manifest does not record the failure:\n%s", data)
	}
}

// TestObservabilityArtifacts runs a sweep experiment with every
// observability flag set and checks all four artifacts: a
// schema-valid Chrome trace with experiment and sweep-point spans, a
// perf JSON summary, a telemetry registry snapshot carrying the core
// counters, and a manifest with environment and wall-time percentiles.
func TestObservabilityArtifacts(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "m.json")
	traceOut := filepath.Join(dir, "trace.json")
	perfOut := filepath.Join(dir, "perf.json")
	telOut := filepath.Join(dir, "telemetry.json")
	_, code := captureRun(t, "-exp", "fig9", "-scale", "tiny", "-loads", "0.5",
		"-cache=false", "-manifest", manifest,
		"-trace-events", traceOut, "-perfjson", perfOut, "-telemetry-out", telOut)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}

	// Trace: schema-checked, with the experiment span and the point span.
	data, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateTrace(data); err != nil {
		t.Fatalf("trace schema: %v", err)
	}
	var tf struct {
		TraceEvents []telemetry.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	var sawExp, sawPoint bool
	for _, ev := range tf.TraceEvents {
		switch {
		case ev.Name == "fig9" && ev.Cat == "experiment":
			sawExp = true
		case ev.Name == "point" && ev.Cat == "sweep":
			sawPoint = true
		}
	}
	if !sawExp || !sawPoint {
		t.Errorf("trace missing spans: experiment=%v point=%v", sawExp, sawPoint)
	}

	// Perf JSON: one record for the experiment, with wall time and cells.
	data, err = os.ReadFile(perfOut)
	if err != nil {
		t.Fatal(err)
	}
	var recs []struct {
		Exp    string `json:"exp"`
		WallNS int64  `json:"wall_ns"`
		Cells  int64  `json:"cells"`
	}
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Exp != "fig9" || recs[0].WallNS <= 0 || recs[0].Cells <= 0 {
		t.Errorf("perf records = %+v", recs)
	}

	// Telemetry snapshot: the core simulator flushed its counters.
	data, err = os.ReadFile(telOut)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, c := range snap.Counters {
		if c.Value > 0 {
			found[c.Name] = true
		}
	}
	for _, want := range []string{
		"sirius_core_runs_total",
		"sirius_core_cells_delivered_total",
		"sirius_sweep_points_total",
	} {
		if !found[want] {
			t.Errorf("telemetry snapshot missing %s > 0", want)
		}
	}

	// Manifest: environment and percentile summary present.
	data, err = os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var m sweep.RunManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Env == nil || m.Env.GoVersion == "" || m.Env.GOMAXPROCS < 1 {
		t.Fatalf("manifest env = %+v", m.Env)
	}
	if len(m.Sweeps) != 1 || m.Sweeps[0].WallP50NS <= 0 || m.Sweeps[0].WallMaxNS < m.Sweeps[0].WallP50NS {
		t.Fatalf("manifest percentiles = %+v", m.Sweeps)
	}
	var sawStart bool
	for _, p := range m.Sweeps[0].Points {
		if p.StartNS >= 0 && p.WallNS > 0 {
			sawStart = true
		}
	}
	if !sawStart {
		t.Error("manifest points carry no spans")
	}
}
