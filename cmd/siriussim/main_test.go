package main

import "testing"

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0.1, 0.5,1.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.1 || got[2] != 1.0 {
		t.Errorf("parseFloats = %v", got)
	}
	if _, err := parseFloats("a,b"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parseFloats(""); err == nil {
		t.Error("empty accepted")
	}
	if _, err := parseFloats(" , ,"); err == nil {
		t.Error("blank list accepted")
	}
}
