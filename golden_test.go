package sirius

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sirius/internal/exp"
)

// The end-to-end golden test pins the fig9 tiny-scale sweep output —
// tables rendered through the full exp/sweep/core/fluid stack — at a
// fixed seed. The fixture was generated before the hot-path optimization
// of the core simulator, so a pass proves the optimized stack reproduces
// the reference implementation byte for byte.
//
// Regenerate (only for intentional semantic changes):
//
//	go test -run TestGoldenFig9Tiny -update-golden .

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden sweep fixture")

func TestGoldenFig9Tiny(t *testing.T) {
	s := exp.TinyScale()
	tab, err := exp.Fig9(context.Background(), nil, s, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := tab.JSON(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_fig9_tiny.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update-golden): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("fig9 tiny sweep diverges from the golden fixture\n got: %s\nwant: %s",
			got.Bytes(), want)
	}
}
