module sirius

go 1.22
