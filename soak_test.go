package sirius

// Long-running soak tests: skipped under -short, exercised by the full
// `go test ./...` run. They stress the simulator with mixed adversarial
// traffic for many epochs and check the global invariants survive.

import (
	"testing"

	"sirius/internal/core"
	"sirius/internal/phy"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/wire"
	"sirius/internal/workload"
)

func TestSoakMixedAdversarialTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const nodes = 32
	sched, err := schedule.NewGrouped(nodes, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Mix three workloads: uniform background, a hotspot barrage, and an
	// all-to-all shuffle wave — arrivals interleaved.
	base := workload.DefaultConfig(nodes, 200*simtime.Gbps, 0.5, 1500)
	base.Seed = 101
	uniform, err := workload.Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	hot := base
	hot.Pattern = workload.Hotspot
	hot.HotFraction = 0.6
	hot.Flows = 800
	hot.Seed = 102
	hotspot, err := workload.Generate(hot)
	if err != nil {
		t.Fatal(err)
	}
	shuffle, err := workload.AllToAll(nodes, 40_000, 2, 50*simtime.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var flows []workload.Flow
	flows = append(flows, uniform...)
	flows = append(flows, hotspot...)
	flows = append(flows, shuffle...)
	// Re-sort and re-ID.
	for i := 1; i < len(flows); i++ {
		for j := i; j > 0 && flows[j].Arrival < flows[j-1].Arrival; j-- {
			flows[j], flows[j-1] = flows[j-1], flows[j]
		}
	}
	for i := range flows {
		flows[i].ID = i
	}

	for _, mode := range []core.Mode{core.ModeRequestGrant, core.ModeIdeal} {
		res, err := core.Run(core.Config{
			Schedule:      sched,
			Slot:          phy.DefaultSlot(),
			Q:             4,
			Mode:          mode,
			NormalizeRate: 200 * simtime.Gbps,
			TrackReorder:  true,
			Seed:          7,
		}, flows)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if res.Completed != len(flows) {
			t.Fatalf("mode %d: completed %d of %d", mode, res.Completed, len(flows))
		}
		if res.DeliveredBytes != workload.TotalBytes(flows) {
			t.Fatalf("mode %d: byte conservation violated", mode)
		}
		// Queue bound: Q*k per (via,dst) aggregated over 31 destinations.
		k := sched.ConnectionsPerEpoch()
		bound := 4 * k * (nodes - 1) * phy.DefaultSlot().CellBytes
		if res.PeakNodeQueueBytes > bound {
			t.Fatalf("mode %d: node queue %d exceeded bound %d", mode,
				res.PeakNodeQueueBytes, bound)
		}
	}
}

func TestSoakManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// The invariants (delivery, conservation, bounded queues via internal
	// panics) hold across many seeds.
	for seed := uint64(1); seed <= 12; seed++ {
		cfg := DefaultConfig(16)
		cfg.Seed = seed
		flows := Workload(cfg, 0.8, 300, seed)
		rep, err := cfg.Run(flows)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Completed != len(flows) {
			t.Fatalf("seed %d: completed %d of %d", seed, rep.Completed, len(flows))
		}
	}
}

func TestSoakPrototypeLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// The paper demonstrates error-free operation over 24 hours; the
	// scaled equivalent here is a long prototype run: 5,000 epochs of
	// four nodes exchanging PRBS through the TCP AWGR — 80,000 cells,
	// zero bit errors, zero misroutes.
	st, err := wire.RunPrototype(4, 5_000, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.BER != 0 || !st.ErrFree {
		t.Errorf("long run BER = %v", st.BER)
	}
	for _, n := range st.Nodes {
		if n.Misrouted != 0 || n.Received != 20_000 {
			t.Errorf("node %+v", n)
		}
	}
}
