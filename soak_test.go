package sirius

// Long-running soak tests: skipped under -short, exercised by the full
// `go test ./...` run. They stress the simulator with mixed adversarial
// traffic for many epochs and check the global invariants survive.

import (
	"testing"
	"time"

	"sirius/internal/core"
	"sirius/internal/fault"
	"sirius/internal/phy"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/wire"
	"sirius/internal/workload"
)

func TestSoakMixedAdversarialTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const nodes = 32
	sched, err := schedule.NewGrouped(nodes, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Mix three workloads: uniform background, a hotspot barrage, and an
	// all-to-all shuffle wave — arrivals interleaved.
	base := workload.DefaultConfig(nodes, 200*simtime.Gbps, 0.5, 1500)
	base.Seed = 101
	uniform, err := workload.Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	hot := base
	hot.Pattern = workload.Hotspot
	hot.HotFraction = 0.6
	hot.Flows = 800
	hot.Seed = 102
	hotspot, err := workload.Generate(hot)
	if err != nil {
		t.Fatal(err)
	}
	shuffle, err := workload.AllToAll(nodes, 40_000, 2, 50*simtime.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var flows []workload.Flow
	flows = append(flows, uniform...)
	flows = append(flows, hotspot...)
	flows = append(flows, shuffle...)
	// Re-sort and re-ID.
	for i := 1; i < len(flows); i++ {
		for j := i; j > 0 && flows[j].Arrival < flows[j-1].Arrival; j-- {
			flows[j], flows[j-1] = flows[j-1], flows[j]
		}
	}
	for i := range flows {
		flows[i].ID = i
	}

	for _, mode := range []core.Mode{core.ModeRequestGrant, core.ModeIdeal} {
		res, err := core.Run(core.Config{
			Schedule:      sched,
			Slot:          phy.DefaultSlot(),
			Q:             4,
			Mode:          mode,
			NormalizeRate: 200 * simtime.Gbps,
			TrackReorder:  true,
			Seed:          7,
		}, flows)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if res.Completed != len(flows) {
			t.Fatalf("mode %d: completed %d of %d", mode, res.Completed, len(flows))
		}
		if res.DeliveredBytes != workload.TotalBytes(flows) {
			t.Fatalf("mode %d: byte conservation violated", mode)
		}
		// Queue bound: Q*k per (via,dst) aggregated over 31 destinations.
		k := sched.ConnectionsPerEpoch()
		bound := 4 * k * (nodes - 1) * phy.DefaultSlot().CellBytes
		if res.PeakNodeQueueBytes > bound {
			t.Fatalf("mode %d: node queue %d exceeded bound %d", mode,
				res.PeakNodeQueueBytes, bound)
		}
	}
}

func TestSoakManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// The invariants (delivery, conservation, bounded queues via internal
	// panics) hold across many seeds.
	for seed := uint64(1); seed <= 12; seed++ {
		cfg := DefaultConfig(16)
		cfg.Seed = seed
		flows := Workload(cfg, 0.8, 300, seed)
		rep, err := cfg.Run(flows)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Completed != len(flows) {
			t.Fatalf("seed %d: completed %d of %d", seed, rep.Completed, len(flows))
		}
	}
}

func TestSoakPrototypeLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// The paper demonstrates error-free operation over 24 hours; the
	// scaled equivalent here is a long prototype run: 5,000 epochs of
	// four nodes exchanging PRBS through the TCP AWGR — 80,000 cells,
	// zero bit errors, zero misroutes.
	st, err := wire.RunPrototype(4, 5_000, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.BER != 0 || !st.ErrFree {
		t.Errorf("long run BER = %v", st.BER)
	}
	for _, n := range st.Nodes {
		if n.Misrouted != 0 || n.Received != 20_000 {
			t.Errorf("node %+v", n)
		}
	}
}

func TestSoakFaultyFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// A faulty-fabric soak: one seeded plan layers every fault kind over a
	// 300-epoch run — a transient stall, a restart flap, a short grey
	// blackhole (too brief to trip the suspicion threshold), a BER
	// degradation window, and finally a fail-stop crash. The survivors
	// must detect the crash at the model-predicted latency, compact, and
	// finish error-free; and because every random choice flows from the
	// plan seed, a second run must reproduce the first byte-identically.
	const (
		nodes  = 5
		epochs = 300
	)
	plan := &fault.Plan{Seed: 2024, Events: []fault.Event{
		{Kind: fault.Stall, Src: 0, Epoch: 20, Until: 40, DelayMicros: 200},
		{Kind: fault.Flap, Node: 1, Epoch: 30},
		{Kind: fault.Grey, Src: 3, Dst: 0, Epoch: 80, Until: 82},
		{Kind: fault.Degrade, Src: 2, Epoch: 100, Until: 200, FlipProb: 5e-5},
		{Kind: fault.Crash, Node: 4, Epoch: 60},
	}}

	run := func(batchFrames int) *wire.FaultStats {
		t.Helper()
		fs, err := wire.RunPrototypeCfg(wire.PrototypeConfig{
			Nodes:        nodes,
			Epochs:       epochs,
			PayloadBytes: 64,
			Plan:         plan,
			BatchFrames:  batchFrames,
			// Localhost doesn't need the production silence budget; keep
			// the three silent gate waits short.
			SuspectTimeout: 250 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}

	start := time.Now()
	a := run(0) // default output batching
	if d := time.Since(start); d > 60*time.Second {
		t.Errorf("faulty soak took %v; graceful degradation should finish in seconds", d)
	}

	// The crash — and only the crash — becomes a confirmed failure: the
	// stall and the restart flap are survivable, and the grey window is
	// shorter than the suspicion threshold.
	if len(a.Failures) != 1 || a.Failures[0].Peer != 4 {
		t.Fatalf("failures = %+v, want exactly node 4", a.Failures)
	}
	if a.KillEpoch != 60 {
		t.Errorf("kill epoch = %d, want 60", a.KillEpoch)
	}
	if a.DetectEpochs != 4 {
		t.Errorf("kill-to-confirm = %d epochs, want 4 (threshold+1)", a.DetectEpochs)
	}
	if a.Survivors != nodes-1 {
		t.Errorf("survivors = %d, want %d", a.Survivors, nodes-1)
	}
	if a.CompactedGoodput < 0.99 {
		t.Errorf("compacted slot utilization = %.3f, want ~1", a.CompactedGoodput)
	}
	// The degradation window injects real bit errors, but far below the
	// FEC budget: the run is noisy yet still error-free post-FEC.
	if a.BER == 0 {
		t.Error("degrade window injected no bit errors")
	}
	if !a.ErrFree {
		t.Errorf("BER %v exceeded the FEC budget", a.BER)
	}
	for _, n := range a.Nodes {
		if n.Node == 1 && n.Reconnects != 1 {
			t.Errorf("flapped node reconnects = %d, want 1", n.Reconnects)
		}
		if n.Misrouted != 0 {
			t.Errorf("node %d misrouted %d", n.Node, n.Misrouted)
		}
	}

	// Replay: everything the seed controls reproduces exactly — the plan
	// hash, every transmission decision, every injected bit flip, and the
	// failure timeline. The one thing real TCP cannot make deterministic
	// is whether a frame already in flight when the restart flap tears
	// down node 1's connection lands or dies with the socket, so Received
	// is compared with a one-epoch tolerance; the strict byte-identical
	// replay guarantee for flap-free plans is pinned down by the
	// determinism tests in internal/wire.
	b := run(0)
	if a.PlanHash != b.PlanHash {
		t.Fatalf("plan hash changed across runs: %s vs %s", a.PlanHash, b.PlanHash)
	}
	if len(a.Failures) != len(b.Failures) || a.Failures[0] != b.Failures[0] {
		t.Errorf("failure timeline drift: %+v vs %+v", a.Failures, b.Failures)
	}
	for i := range a.Nodes {
		x, y := a.Nodes[i], b.Nodes[i]
		if x.Sent != y.Sent || x.BitErrors != y.BitErrors {
			t.Errorf("node %d drift: %+v vs %+v", x.Node, x, y)
		}
		if d := x.Received - y.Received; d < -nodes || d > nodes {
			t.Errorf("node %d received %d vs %d, beyond flap tolerance",
				x.Node, x.Received, y.Received)
		}
	}

	// The write-coalescing policy must be invisible to the failure story:
	// a batch=1 run (the pre-batching per-frame behavior) reproduces the
	// same failure timeline, transmissions, and injected corruption.
	c := run(1)
	if a.PlanHash != c.PlanHash {
		t.Fatalf("plan hash changed with batching off: %s vs %s", a.PlanHash, c.PlanHash)
	}
	if len(a.Failures) != len(c.Failures) || a.Failures[0] != c.Failures[0] {
		t.Errorf("failure timeline differs with batching off: %+v vs %+v", a.Failures, c.Failures)
	}
	for i := range a.Nodes {
		x, y := a.Nodes[i], c.Nodes[i]
		if x.Sent != y.Sent || x.BitErrors != y.BitErrors {
			t.Errorf("node %d differs with batching off: %+v vs %+v", x.Node, x, y)
		}
		if d := x.Received - y.Received; d < -nodes || d > nodes {
			t.Errorf("node %d received %d (batched) vs %d (batch=1), beyond flap tolerance",
				x.Node, x.Received, y.Received)
		}
	}
}
