// Package sirius is a simulation library for Sirius, the flat,
// optically-switched datacenter network with nanosecond reconfiguration
// of Ballani et al. (SIGCOMM 2020).
//
// The package is a facade over the building blocks in internal/: the
// slot-synchronous Sirius simulator (static cyclic schedule, Valiant load
// balancing, request/grant congestion control), the idealized
// electrically-switched baselines, the optical substrate models (AWGRs,
// fast tunable lasers, link budgets), the time-synchronization protocol,
// and the §5 power/cost analysis.
//
// Quick start:
//
//	cfg := sirius.DefaultConfig(64)           // 64 racks
//	flows := sirius.Workload(cfg, 0.5, 5000, 1) // load 0.5, 5000 flows
//	rep, err := cfg.Run(flows)
//	...
//	fmt.Println(rep)
package sirius

import (
	"fmt"
	"math"
	"time"

	"sirius/internal/core"
	"sirius/internal/fluid"
	"sirius/internal/metrics"
	"sirius/internal/phy"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// Rate is a data rate in bits per second (an alias of the internal
// simulation type so rates can be constructed outside this module).
type Rate = simtime.Rate

// Convenience rates.
const (
	Gbps = simtime.Gbps
	Tbps = simtime.Tbps
)

// Flow is one transfer offered to the network.
type Flow struct {
	Src     int           // source node
	Dst     int           // destination node
	Bytes   int           // flow size
	Arrival time.Duration // arrival time since simulation start
}

// Config describes a Sirius fabric. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Nodes is the number of endpoints on the optical fabric (racks in a
	// rack-based deployment, servers in a server-based one).
	Nodes int
	// GratingPorts is the AWGR port count; Nodes must be a multiple.
	GratingPorts int
	// UplinkMultiplier provisions extra uplinks to compensate the VLB
	// detour: 1.0 (baseline), 1.5 (the paper's default), 2.0 (worst-case
	// proof). Fractional values use the generalized rotor schedule.
	UplinkMultiplier float64
	// LineRate is the per-transceiver rate (50 Gb/s default).
	LineRate simtime.Rate
	// CellBytes and Guardband define the timeslot (562 B + 10 ns
	// default: a 100 ns slot).
	CellBytes int
	Guardband time.Duration
	// QueueBound is the congestion-control queue bound Q (default 4).
	QueueBound int
	// Ideal selects the grant-free idealized variant, SIRIUS (IDEAL).
	Ideal bool
	// TrackReorder enables per-flow reorder-buffer accounting.
	TrackReorder bool
	// FailedNodes simulates §4.5 failures: the listed nodes' schedule
	// slots go dark, they are never used as intermediates, and each
	// survivor loses a proportional 1/Nodes of bandwidth per failure.
	// Flows touching failed nodes are rejected.
	FailedNodes []int
	// Rack, when non-nil, models the intra-rack tier of a rack-based
	// deployment: flow cells enter the rack switch's LOCAL buffer at the
	// servers' aggregate downlink rate, round-robin across flows, with
	// LOCAL bounded by credit-based back-pressure (§4.3).
	Rack *RackTier
	// Seed makes runs reproducible.
	Seed uint64
}

// DefaultConfig returns the paper's §7 configuration scaled to the given
// node count: 50 Gb/s channels, 562-byte cells, 10 ns guardband, Q=4,
// 1.5x uplinks, grating ports sized for 8 base uplinks per node.
func DefaultConfig(nodes int) Config {
	ports := nodes / 8
	if ports < 2 {
		ports = 2
	}
	for nodes%ports != 0 {
		ports--
	}
	return Config{
		Nodes:            nodes,
		GratingPorts:     ports,
		UplinkMultiplier: 1.5,
		LineRate:         50 * simtime.Gbps,
		CellBytes:        562,
		Guardband:        10 * time.Nanosecond,
		QueueBound:       4,
		Seed:             1,
	}
}

// RackTier describes the servers behind each node of a rack-based
// deployment.
type RackTier struct {
	// Servers per rack.
	Servers int
	// ServerRate is each server's link rate to the rack switch.
	ServerRate simtime.Rate
	// BufferCells bounds the rack switch's LOCAL buffer (0 = a default
	// of 8 cells per server).
	BufferCells int
}

// injectRate converts the tier's aggregate downlink bandwidth to cells
// per optical timeslot.
func (r *RackTier) injectRate(slot phy.Slot) int {
	bitsPerSlot := float64(r.Servers) * float64(r.ServerRate) * slot.Duration().Seconds()
	cells := int(bitsPerSlot / float64(slot.CellBytes*8))
	if cells < 1 {
		cells = 1
	}
	return cells
}

// BaseUplinks returns the baseline (1x) uplink count.
func (c Config) BaseUplinks() int { return c.Nodes / c.GratingPorts }

// Uplinks returns the provisioned uplink count.
func (c Config) Uplinks() int {
	return int(math.Round(float64(c.BaseUplinks()) * c.UplinkMultiplier))
}

// NodeBandwidth returns the baseline per-node bandwidth (used for load
// and goodput normalization).
func (c Config) NodeBandwidth() simtime.Rate {
	return simtime.Rate(c.BaseUplinks()) * c.LineRate
}

// buildSchedule picks the grouped (paper) schedule when the uplink count
// is an integer multiple of the group count, and the generalized rotor
// schedule otherwise (e.g. 1.5x).
func (c Config) buildSchedule() (schedule.Schedule, error) {
	if c.Nodes < 2 || c.GratingPorts < 1 || c.Nodes%c.GratingPorts != 0 {
		return nil, fmt.Errorf("sirius: invalid topology %d nodes / %d grating ports", c.Nodes, c.GratingPorts)
	}
	if c.UplinkMultiplier < 1 {
		return nil, fmt.Errorf("sirius: uplink multiplier %v below 1", c.UplinkMultiplier)
	}
	groups := c.Nodes / c.GratingPorts
	up := c.Uplinks()
	var sched schedule.Schedule
	var err error
	if up%groups == 0 {
		sched, err = schedule.NewGrouped(c.Nodes, c.GratingPorts, up/groups)
	} else {
		sched, err = schedule.NewRotor(c.Nodes, up)
	}
	if err != nil {
		return nil, err
	}
	if len(c.FailedNodes) > 0 {
		return schedule.NewDegraded(sched, c.FailedNodes)
	}
	return sched, nil
}

// slot returns the phy slot for this configuration.
func (c Config) slot() phy.Slot {
	return phy.Slot{
		LineRate:  c.LineRate,
		CellBytes: c.CellBytes,
		Guardband: simtime.FromStd(c.Guardband),
	}
}

// Report summarizes a run in user-facing units.
type Report struct {
	System         string
	Flows          int
	Completed      int
	SimTime        time.Duration
	DeliveredBytes int64
	// Goodput is normalized to Nodes x NodeBandwidth.
	Goodput float64
	// Flow completion times.
	FCTMean, FCTP50, FCTP99 time.Duration
	// Short-flow (<100 KB) completion times.
	ShortFCTMean, ShortFCTP50, ShortFCTP99 time.Duration
	// SlowdownP50 and SlowdownP99 are flow slowdowns: completion time
	// over the ideal full-bandwidth transmission time (1 = ideal;
	// Sirius runs only).
	SlowdownP50, SlowdownP99 float64
	// PeakNodeQueueBytes is the worst aggregate queue at any node.
	PeakNodeQueueBytes int
	// PeakReorderBytes is the worst per-flow reorder buffer (Sirius only,
	// when tracking is enabled).
	PeakReorderBytes int
	// DirectFraction is the fraction of cells delivered without detour
	// (Sirius only).
	DirectFraction float64
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s: %d/%d flows, goodput %.3f, short-flow p99 %v, sim time %v",
		r.System, r.Completed, r.Flows, r.Goodput, r.ShortFCTP99, r.SimTime)
}

func msToDuration(ms float64) time.Duration {
	if math.IsNaN(ms) {
		return 0
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// toInternal converts public flows, validating IDs by position.
func toInternal(flows []Flow) []workload.Flow {
	out := make([]workload.Flow, len(flows))
	for i, f := range flows {
		out[i] = workload.Flow{
			ID:      i,
			Src:     f.Src,
			Dst:     f.Dst,
			Bytes:   f.Bytes,
			Arrival: simtime.Time(simtime.FromStd(f.Arrival)),
		}
	}
	return out
}

// Run simulates the flows on the Sirius fabric and returns the report.
func (c Config) Run(flows []Flow) (*Report, error) {
	sched, err := c.buildSchedule()
	if err != nil {
		return nil, err
	}
	mode := core.ModeRequestGrant
	name := "SIRIUS"
	if c.Ideal {
		mode = core.ModeIdeal
		name = "SIRIUS (IDEAL)"
	}
	ccfg := core.Config{
		Schedule:      sched,
		Slot:          c.slot(),
		Q:             c.QueueBound,
		Mode:          mode,
		NormalizeRate: c.NodeBandwidth(),
		TrackReorder:  c.TrackReorder,
		FailedNodes:   c.FailedNodes,
		Seed:          c.Seed,
	}
	if c.Rack != nil {
		if c.Rack.Servers < 1 || c.Rack.ServerRate <= 0 {
			return nil, fmt.Errorf("sirius: invalid rack tier %+v", c.Rack)
		}
		ccfg.InjectRate = c.Rack.injectRate(ccfg.Slot)
		ccfg.LocalCap = c.Rack.BufferCells
		if ccfg.LocalCap == 0 {
			ccfg.LocalCap = 8 * c.Rack.Servers
		}
	}
	res, err := core.Run(ccfg, toInternal(flows))
	if err != nil {
		return nil, err
	}
	rep := &Report{
		System:             name,
		Flows:              res.Flows,
		Completed:          res.Completed,
		SimTime:            simtime.Duration(res.SimTime).Std(),
		DeliveredBytes:     res.DeliveredBytes,
		Goodput:            res.GoodputNorm,
		FCTMean:            msToDuration(res.FCTAll.Mean()),
		PeakNodeQueueBytes: res.PeakNodeQueueBytes,
		PeakReorderBytes:   res.PeakReorderBytes,
		DirectFraction:     res.DirectFraction,
	}
	if res.FCTAll.Count() > 0 {
		rep.FCTP50 = msToDuration(res.FCTAll.Percentile(50))
		rep.FCTP99 = msToDuration(res.FCTAll.Percentile(99))
	}
	if res.FCTShort.Count() > 0 {
		rep.ShortFCTMean = msToDuration(res.FCTShort.Mean())
		rep.ShortFCTP50 = msToDuration(res.FCTShort.Percentile(50))
		rep.ShortFCTP99 = msToDuration(res.FCTShort.Percentile(99))
	}
	if res.Slowdown.Count() > 0 {
		rep.SlowdownP50 = res.Slowdown.Percentile(50)
		rep.SlowdownP99 = res.Slowdown.Percentile(99)
	}
	return rep, nil
}

// RunParallel simulates §4.5's topology-level parallelism: `planes`
// independent copies of this fabric run side by side and every node
// stripes its flows across them round-robin (flow-level ECMP). This is
// the paper's scaling path for the post-Moore's-law era — capacity grows
// by adding passive planes rather than switch generations. Goodput is
// normalized to the aggregate capacity (planes x Nodes x NodeBandwidth).
func (c Config) RunParallel(flows []Flow, planes int) (*Report, error) {
	if planes < 1 {
		return nil, fmt.Errorf("sirius: need >= 1 plane")
	}
	if planes == 1 {
		return c.Run(flows)
	}
	striped := make([][]Flow, planes)
	next := make([]int, c.Nodes)
	for _, f := range flows {
		if f.Src < 0 || f.Src >= c.Nodes {
			return nil, fmt.Errorf("sirius: flow source %d out of range", f.Src)
		}
		p := next[f.Src] % planes
		next[f.Src]++
		striped[p] = append(striped[p], f)
	}
	merged := &Report{System: fmt.Sprintf("SIRIUS x%d planes", planes)}
	var fctAll, fctShort metrics.Sample
	var goodput float64
	for p := 0; p < planes; p++ {
		pc := c
		pc.Seed = c.Seed + uint64(p)*0x9E3779B9
		sched, err := pc.buildSchedule()
		if err != nil {
			return nil, err
		}
		mode := core.ModeRequestGrant
		if pc.Ideal {
			mode = core.ModeIdeal
		}
		res, err := core.Run(core.Config{
			Schedule:      sched,
			Slot:          pc.slot(),
			Q:             pc.QueueBound,
			Mode:          mode,
			NormalizeRate: pc.NodeBandwidth(),
			FailedNodes:   pc.FailedNodes,
			Seed:          pc.Seed,
			KeepPerFlow:   true,
		}, toInternal(striped[p]))
		if err != nil {
			return nil, err
		}
		merged.Flows += res.Flows
		merged.Completed += res.Completed
		merged.DeliveredBytes += res.DeliveredBytes
		if st := simtime.Duration(res.SimTime).Std(); st > merged.SimTime {
			merged.SimTime = st
		}
		goodput += res.GoodputNorm
		for i, fct := range res.PerFlowFCT {
			if fct < 0 {
				continue
			}
			ms := fct.Seconds() * 1e3
			fctAll.Add(ms)
			if striped[p][i].Bytes < 100_000 {
				fctShort.Add(ms)
			}
		}
	}
	// Each plane's goodput is normalized to one plane's capacity and the
	// planes carry disjoint striped load, so the aggregate-normalized
	// goodput is their mean.
	merged.Goodput = goodput / float64(planes)
	if fctAll.Count() > 0 {
		merged.FCTMean = msToDuration(fctAll.Mean())
		merged.FCTP50 = msToDuration(fctAll.Percentile(50))
		merged.FCTP99 = msToDuration(fctAll.Percentile(99))
	}
	if fctShort.Count() > 0 {
		merged.ShortFCTMean = msToDuration(fctShort.Mean())
		merged.ShortFCTP50 = msToDuration(fctShort.Percentile(50))
		merged.ShortFCTP99 = msToDuration(fctShort.Percentile(99))
	}
	return merged, nil
}

// RunESN simulates the flows on the idealized electrically-switched
// baseline: a non-blocking folded Clos with per-flow queues,
// back-pressure and packet spraying — computed as max-min fair sharing.
// oversub = 1 is ESN (Ideal); oversub = 3 with endpointsPerRack > 1 is
// ESN-OSUB (Ideal).
func (c Config) RunESN(flows []Flow, oversub, endpointsPerRack int) (*Report, error) {
	name := "ESN (Ideal)"
	if oversub > 1 {
		name = fmt.Sprintf("ESN-OSUB %d:1 (Ideal)", oversub)
	}
	res, err := fluid.Run(fluid.Config{
		Endpoints:        c.Nodes,
		EndpointRate:     c.NodeBandwidth(),
		EndpointsPerRack: endpointsPerRack,
		Oversub:          oversub,
	}, toInternal(flows))
	if err != nil {
		return nil, err
	}
	rep := &Report{
		System:         name,
		Flows:          res.Flows,
		Completed:      res.Completed,
		SimTime:        simtime.Duration(res.SimTime).Std(),
		DeliveredBytes: res.DeliveredBytes,
		Goodput:        res.GoodputNorm,
		FCTMean:        msToDuration(res.FCTAll.Mean()),
	}
	if res.FCTAll.Count() > 0 {
		rep.FCTP50 = msToDuration(res.FCTAll.Percentile(50))
		rep.FCTP99 = msToDuration(res.FCTAll.Percentile(99))
	}
	if res.FCTShort.Count() > 0 {
		rep.ShortFCTMean = msToDuration(res.FCTShort.Mean())
		rep.ShortFCTP50 = msToDuration(res.FCTShort.Percentile(50))
		rep.ShortFCTP99 = msToDuration(res.FCTShort.Percentile(99))
	}
	return rep, nil
}

// AllToAllWorkload generates the deterministic all-to-all exchange of a
// shuffle phase: in each of waves rounds, every ordered pair exchanges
// bytesPerPair, rounds spaced by interval.
func AllToAllWorkload(c Config, bytesPerPair, waves int, interval time.Duration) ([]Flow, error) {
	fl, err := workload.AllToAll(c.Nodes, bytesPerPair, waves, simtime.FromStd(interval))
	if err != nil {
		return nil, err
	}
	return fromInternal(fl), nil
}

// BroadcastWorkload generates a one-to-all transfer from src.
func BroadcastWorkload(c Config, src, bytesPerPeer int, at time.Duration) ([]Flow, error) {
	fl, err := workload.Broadcast(src, c.Nodes, bytesPerPeer, simtime.FromStd(at))
	if err != nil {
		return nil, err
	}
	return fromInternal(fl), nil
}

// fromInternal converts generated flows to the public type.
func fromInternal(fl []workload.Flow) []Flow {
	out := make([]Flow, len(fl))
	for i, f := range fl {
		out[i] = Flow{
			Src:     f.Src,
			Dst:     f.Dst,
			Bytes:   f.Bytes,
			Arrival: simtime.Duration(f.Arrival).Std(),
		}
	}
	return out
}

// Workload generates the paper's §7 synthetic traffic for this fabric:
// Pareto(1.05) flow sizes with 100 KB mean, Poisson arrivals, uniform
// random endpoints. load is the offered load in (0, 1].
func Workload(c Config, load float64, flows int, seed uint64) []Flow {
	wcfg := workload.DefaultConfig(c.Nodes, c.NodeBandwidth(), load, flows)
	wcfg.Seed = seed
	fl, err := workload.Generate(wcfg)
	if err != nil {
		panic(err) // DefaultConfig-derived parameters are always valid
	}
	return fromInternal(fl)
}
