package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/1000 equal draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams start identically")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(2)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn(10) value %d seen %d times, want ~10000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("Exp mean = %v, want ~5", mean)
	}
}

func TestParetoShape(t *testing.T) {
	// With alpha=1.05 and mean 100e3, the median must be far below the
	// mean (heavy tail): median = xm * 2^(1/alpha).
	r := New(4)
	const n = 200000
	vals := make([]float64, n)
	below := 0
	for i := range vals {
		vals[i] = r.Pareto(1.05, 100e3)
		if vals[i] < 100e3 {
			below++
		}
	}
	// The vast majority of draws are below the mean for such a heavy tail.
	if frac := float64(below) / n; frac < 0.90 {
		t.Errorf("fraction below mean = %v, want > 0.90 (heavy tail)", frac)
	}
	// Minimum equals the scale parameter xm = mean*(a-1)/a.
	xm := 100e3 * 0.05 / 1.05
	for _, v := range vals[:1000] {
		if v < xm*0.999 {
			t.Fatalf("Pareto draw %v below scale %v", v, xm)
		}
	}
}

func TestParetoPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pareto(1.0) did not panic")
		}
	}()
	New(1).Pareto(1.0, 10)
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(sd-3) > 0.05 {
		t.Errorf("Normal stddev = %v, want ~3", sd)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	for trial := 0; trial < 100; trial++ {
		p := r.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(8)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Errorf("shuffle changed multiset, sum=%d", sum)
	}
}

func TestPointSeedDeterministicAndDistinct(t *testing.T) {
	if PointSeed(1, 0) != PointSeed(1, 0) {
		t.Fatal("PointSeed not deterministic")
	}
	// Substreams of one root are pairwise distinct; the same index under
	// nearby roots is distinct too.
	seen := make(map[uint64]string)
	record := func(seed uint64, what string) {
		if prev, ok := seen[seed]; ok {
			t.Fatalf("seed collision: %s and %s both map to %#x", prev, what, seed)
		}
		seen[seed] = what
	}
	for root := uint64(0); root < 8; root++ {
		for idx := uint64(0); idx < 512; idx++ {
			record(PointSeed(root, idx), "")
		}
	}
}

func TestPointSeedStreamsIndependent(t *testing.T) {
	// Streams seeded from adjacent substreams should not correlate.
	a := New(PointSeed(1, 0))
	b := New(PointSeed(1, 1))
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("adjacent substreams produced %d/1000 equal draws", same)
	}
}
