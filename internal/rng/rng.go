// Package rng provides a small, fast, deterministic random number generator
// and the samplers used by the Sirius workload generator.
//
// Determinism matters: every experiment in EXPERIMENTS.md is reproducible
// from a seed. The generator is xoshiro256**, seeded through splitmix64, the
// standard pairing recommended by its authors.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; give each goroutine its own (use Split). The four state
// words are named fields rather than an array so Uint64 stays within the
// compiler's inlining budget.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded from the given seed via splitmix64.
func New(seed uint64) *RNG {
	var r RNG
	sm := seed
	state := [4]*uint64{&r.s0, &r.s1, &r.s2, &r.s3}
	for _, p := range state {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		*p = z ^ (z >> 31)
	}
	// Avoid the all-zero state (splitmix cannot produce it from any seed,
	// but be defensive).
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
	return &r
}

// Split returns a new generator deterministically derived from r, advancing
// r. Use it to hand independent streams to sub-components.
func (r *RNG) Split() *RNG { return New(r.Uint64()) }

// mix64 is the splitmix64 finalizer: a bijective avalanche mix on 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PointSeed derives the seed of substream index from the root seed. The
// experiment-sweep engine (internal/sweep) hands each grid point the
// substream PointSeed(rootSeed, pointIndex): because the derivation is a
// pure function of (root, index) and never touches shared generator
// state, a sweep executed on one goroutine and on N goroutines produces
// bit-identical results for every point.
//
// The construction is two rounds of splitmix64 mixing with the golden
// ratio increment (the same pairing New uses), so nearby roots or indices
// land in unrelated states and no (root, index) pair collides with a
// plain New(seed) stream in practice.
func PointSeed(root, index uint64) uint64 {
	return mix64(mix64(root+0x9e3779b97f4a7c15) ^ (index+1)*0xbf58476d1ce4e5b9)
}

// Uint64 returns the next 64 random bits. The body works on locals and
// uses bits.RotateLeft64 (a compiler intrinsic) so the function fits the
// inlining budget: the simulator's congestion control draws tens of
// millions of values per run and the call overhead was measurable.
func (r *RNG) Uint64() uint64 {
	s1 := r.s1
	result := bits.RotateLeft64(s1*5, 7) * 9
	s2 := r.s2 ^ r.s0
	s3 := r.s3 ^ s1
	r.s1 = s1 ^ s2
	r.s0 ^= s3
	r.s2 = s2 ^ s1<<17
	r.s3 = bits.RotateLeft64(s3, 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
// Used for Poisson inter-arrival times.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto-distributed value with the given shape alpha and
// mean. The paper's workload uses shape 1.05 and mean 100 KB: heavy tailed,
// most flows small but most bytes in large flows.
//
// For a Pareto with scale xm and shape a > 1, mean = a*xm/(a-1), so
// xm = mean*(a-1)/a.
func (r *RNG) Pareto(alpha, mean float64) float64 {
	if alpha <= 1 {
		panic("rng: Pareto needs alpha > 1 for a finite mean")
	}
	xm := mean * (alpha - 1) / alpha
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box-Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
