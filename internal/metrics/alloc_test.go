//go:build !race

package metrics

import "testing"

// TestResetRefillZeroAlloc pins the Sample.Reset contract: rebuilding a
// sample of the same size after Reset reuses the backing array and
// performs no allocation — the property the sweep manifest's percentile
// computation relies on when it rebuilds its wall-time sample per sweep.
func TestResetRefillZeroAlloc(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	allocs := testing.AllocsPerRun(10, func() {
		s.Reset()
		for i := 0; i < 1000; i++ {
			s.Add(float64(i * 2))
		}
	})
	if allocs != 0 {
		t.Errorf("Reset+refill allocated %.1f times per run, want 0", allocs)
	}
}
