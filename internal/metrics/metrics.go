// Package metrics provides the measurement machinery for the simulation
// harness: sample collectors with exact percentiles, CDFs for the figure
// reproductions, and peak trackers for queue occupancy.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Sample collects float64 observations and answers exact order statistics.
// It keeps every value; the experiments collect at most a few hundred
// thousand points.
type Sample struct {
	vals   []float64
	sorted bool
	sum    float64
}

// Reserve grows the sample's capacity to hold at least n observations in
// total, so a caller that knows its observation count up front (e.g. one
// FCT per flow) can keep Add free of append regrowth — a requirement of
// the fluid event loop's zero-allocation contract.
func (s *Sample) Reserve(n int) {
	if n <= cap(s.vals) {
		return
	}
	vals := make([]float64, len(s.vals), n)
	copy(vals, s.vals)
	s.vals = vals
}

// Reset forgets every observation while keeping the backing array, so a
// caller that rebuilds a sample per sweep point (or per manifest flush)
// reuses the same allocation instead of growing a fresh slice each time.
func (s *Sample) Reset() {
	s.vals = s.vals[:0]
	s.sorted = false
	s.sum = 0
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
	s.sum += v
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.vals) }

// Mean returns the arithmetic mean, or NaN when empty.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	return s.sum / float64(len(s.vals))
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, or NaN when empty.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v outside (0,100]", p))
	}
	s.ensureSorted()
	rank := int(math.Ceil(p / 100 * float64(len(s.vals))))
	if rank < 1 {
		rank = 1
	}
	return s.vals[rank-1]
}

// Min returns the smallest observation, or NaN when empty.
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	return s.vals[0]
}

// Max returns the largest observation, or NaN when empty.
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	return s.vals[len(s.vals)-1]
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Values returns a copy of all observations (unordered unless order
// statistics were queried since the last Add).
func (s *Sample) Values() []float64 {
	return append([]float64(nil), s.vals...)
}

// Merge folds every observation of src into s.
func (s *Sample) Merge(src *Sample) {
	for _, v := range src.vals {
		s.Add(v)
	}
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	F float64 // cumulative fraction <= X
}

// CDF returns the empirical distribution at every distinct value.
func (s *Sample) CDF() []CDFPoint {
	if len(s.vals) == 0 {
		return nil
	}
	s.ensureSorted()
	var out []CDFPoint
	n := float64(len(s.vals))
	for i := 0; i < len(s.vals); i++ {
		// Emit at the last occurrence of each distinct value.
		if i+1 < len(s.vals) && s.vals[i+1] == s.vals[i] {
			continue
		}
		out = append(out, CDFPoint{X: s.vals[i], F: float64(i+1) / n})
	}
	return out
}

// FractionBelow returns the fraction of observations <= x.
func (s *Sample) FractionBelow(x float64) float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	i := sort.SearchFloat64s(s.vals, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.vals))
}

// Peak tracks the running maximum of a gauge (e.g. queue occupancy).
type Peak struct {
	cur  int
	peak int
}

// Add shifts the gauge by delta (may be negative) and updates the peak.
func (p *Peak) Add(delta int) {
	p.cur += delta
	if p.cur < 0 {
		panic(fmt.Sprintf("metrics: gauge went negative (%d)", p.cur))
	}
	if p.cur > p.peak {
		p.peak = p.cur
	}
}

// Set sets the gauge to an absolute value.
func (p *Peak) Set(v int) {
	if v < 0 {
		panic("metrics: negative gauge value")
	}
	p.cur = v
	if v > p.peak {
		p.peak = v
	}
}

// Current returns the gauge's current value.
func (p *Peak) Current() int { return p.cur }

// Peak returns the maximum value observed.
func (p *Peak) Peak() int { return p.peak }
