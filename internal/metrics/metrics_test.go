package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"sirius/internal/rng"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Max()) || !math.IsNaN(s.Min()) {
		t.Error("empty sample should answer NaN")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Errorf("count = %d", s.Count())
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %v, want 3", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %v, want 5", got)
	}
	if got := s.Percentile(1); got != 1 {
		t.Errorf("p1 = %v, want 1", got)
	}
}

func TestSampleReset(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	_ = s.Percentile(50) // force the sorted state so Reset must clear it
	before := cap(s.vals)

	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("count after Reset = %d, want 0", s.Count())
	}
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("reset sample should answer NaN like an empty one")
	}
	if cap(s.vals) != before {
		t.Errorf("Reset dropped the backing array: cap %d -> %d", before, cap(s.vals))
	}

	// Refill and verify statistics are those of the new data only.
	for i := 0; i < 1000; i++ {
		s.Add(float64(i * 2))
	}
	if s.Count() != 1000 || s.Mean() != 999 {
		t.Errorf("after refill: count=%d mean=%v, want 1000/999", s.Count(), s.Mean())
	}
	if got := s.Percentile(50); got != 998 {
		t.Errorf("p50 after refill = %v, want 998", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(99); got != 99 {
		t.Errorf("p99 of 1..100 = %v, want 99", got)
	}
	if got := s.Percentile(50); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
}

func TestAddAfterPercentile(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Percentile(50)
	s.Add(1)
	if got := s.Percentile(50); got != 1 {
		t.Errorf("p50 after re-add = %v, want 1", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	var s Sample
	s.Add(1)
	for _, p := range []float64{0, -1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", p)
				}
			}()
			s.Percentile(p)
		}()
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 1, 2, 4} {
		s.Add(v)
	}
	cdf := s.CDF()
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {4, 1.0}}
	if len(cdf) != len(want) {
		t.Fatalf("cdf = %v, want %v", cdf, want)
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Errorf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestFractionBelow(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got := s.FractionBelow(5); got != 0.5 {
		t.Errorf("FractionBelow(5) = %v, want 0.5", got)
	}
	if got := s.FractionBelow(0.5); got != 0 {
		t.Errorf("FractionBelow(0.5) = %v, want 0", got)
	}
	if got := s.FractionBelow(10); got != 1 {
		t.Errorf("FractionBelow(10) = %v, want 1", got)
	}
}

func TestPropertyPercentileMatchesSort(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := rng.New(seed)
		var s Sample
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 1000
			s.Add(vals[i])
		}
		sort.Float64s(vals)
		for _, p := range []float64{1, 25, 50, 75, 99, 100} {
			rank := int(math.Ceil(p / 100 * float64(n)))
			if rank < 1 {
				rank = 1
			}
			if s.Percentile(p) != vals[rank-1] {
				return false
			}
		}
		return s.Min() == vals[0] && s.Max() == vals[n-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeak(t *testing.T) {
	var p Peak
	p.Add(5)
	p.Add(3)
	p.Add(-6)
	if p.Current() != 2 {
		t.Errorf("current = %d, want 2", p.Current())
	}
	if p.Peak() != 8 {
		t.Errorf("peak = %d, want 8", p.Peak())
	}
	p.Set(20)
	if p.Peak() != 20 {
		t.Errorf("peak after Set = %d, want 20", p.Peak())
	}
}

func TestPeakPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative gauge did not panic")
		}
	}()
	var p Peak
	p.Add(-1)
}

func TestValuesAndMerge(t *testing.T) {
	var a, b Sample
	a.Add(1)
	a.Add(3)
	b.Add(2)
	a.Merge(&b)
	if a.Count() != 3 || a.Percentile(50) != 2 {
		t.Errorf("merge broken: count=%d p50=%v", a.Count(), a.Percentile(50))
	}
	vals := a.Values()
	vals[0] = 999 // must not alias
	if a.Min() == 999 {
		t.Error("Values aliases internal storage")
	}
	if len(vals) != 3 {
		t.Errorf("values = %v", vals)
	}
}
