package power

import (
	"math"
	"testing"
)

func TestESNPowerAnchors(t *testing.T) {
	p := DefaultParams()
	// §2: direct connection is 50 W/Tbps; a 4-layer network is 487.
	if got := p.ESNPowerPerTbps(0); math.Abs(got-50) > 0.5 {
		t.Errorf("direct = %v W/Tbps, want 50", got)
	}
	if got := p.ESNPowerPerTbps(4); math.Abs(got-487) > 2 {
		t.Errorf("4 layers = %v W/Tbps, want ~487", got)
	}
}

func TestFig2aMonotoneScaleTax(t *testing.T) {
	pts := DefaultParams().Fig2a()
	if len(pts) != 5 {
		t.Fatalf("want 5 points, got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].WattsTbps <= pts[i-1].WattsTbps {
			t.Errorf("scale tax not monotone at %d hosts", pts[i].Hosts)
		}
	}
	if pts[0].WattsTbps != DefaultParams().ESNPowerPerTbps(0) {
		t.Error("first point should be the direct connection")
	}
}

func TestHeadlinePowerSavings(t *testing.T) {
	// Abstract/§7: Sirius approximates the ideal network "with up to
	// 74-77% lower power", i.e. a power ratio of 23-26% at 3-5x tunable
	// laser power.
	for _, r := range []float64{3, 5} {
		p := DefaultParams()
		p.TunablePowerRatio = r
		ratio := p.PowerRatio()
		if ratio < 0.22 || ratio > 0.27 {
			t.Errorf("power ratio at %vx = %.3f, want 0.23-0.26", r, ratio)
		}
	}
}

func TestFig6aShape(t *testing.T) {
	pts := DefaultParams().Fig6a([]float64{1, 3, 5, 7, 10, 20})
	if len(pts) != 6 {
		t.Fatal("wrong point count")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Ratio <= pts[i-1].Ratio {
			t.Error("power ratio must grow with laser power ratio")
		}
	}
	// Even at 20x laser power Sirius stays well below the ESN.
	if last := pts[len(pts)-1].Ratio; last >= 1 {
		t.Errorf("ratio at 20x = %v, should stay below 1", last)
	}
	// At 1x it approaches the pure transceiver-count advantage (~20%).
	if first := pts[0].Ratio; first < 0.15 || first > 0.25 {
		t.Errorf("ratio at 1x = %v, want ~0.2", first)
	}
}

func TestHeadlineCost(t *testing.T) {
	p := DefaultParams()
	// §5: "Sirius cost is only 28% that of ESN when the grating cost is
	// 25% of electrical switches, assuming a tunable laser is 3x the
	// cost of a fixed laser."
	if got := p.CostRatio(); got < 0.25 || got > 0.31 {
		t.Errorf("cost ratio = %.3f, want ~0.28", got)
	}
	// "Even when comparing to a 3:1 oversubscribed ESN, Sirius only
	// costs 53%." Our oversubscription convention (everything above the
	// first tier divided by 3) lands at ~0.65; the ordering and rough
	// magnitude hold (see EXPERIMENTS.md).
	if got := p.CostRatioOversub(); got < 0.45 || got > 0.70 {
		t.Errorf("cost ratio vs oversub = %.3f, want roughly half (paper: 0.53)", got)
	}
	// "We find that Sirius' cost is only 55% of this [electrical Sirius]
	// variant too." Same story: ~0.67 under our crossing-count convention.
	got := p.SiriusCostPerTbps() / p.ElectricalSiriusCostPerTbps()
	if got < 0.45 || got > 0.70 {
		t.Errorf("cost vs electrical variant = %.3f, want roughly half (paper: 0.55)", got)
	}
}

func TestFig6bShape(t *testing.T) {
	fracs := []float64{0.05, 0.10, 0.25, 0.50, 0.75, 1.0}
	nb, os := DefaultParams().Fig6b(fracs)
	if len(nb) != 6 || len(os) != 6 {
		t.Fatal("wrong point count")
	}
	for i := range nb {
		// Oversubscribed ESN is cheaper, so Sirius' relative cost is
		// higher against it.
		if os[i].Ratio <= nb[i].Ratio {
			t.Error("oversub ratio should exceed non-blocking ratio")
		}
		if i > 0 {
			if nb[i].Ratio <= nb[i-1].Ratio {
				t.Error("cost ratio must grow with grating cost")
			}
		}
		// Sirius stays cheaper than the non-blocking ESN across the
		// whole sweep.
		if nb[i].Ratio >= 1 {
			t.Errorf("ratio at grating frac %v = %v, should be < 1", fracs[i], nb[i].Ratio)
		}
	}
}

func TestDatacenterPowerHeadline(t *testing.T) {
	// §1: a 100 Pbps non-blocking network would consume ~48.7 MW.
	got := DefaultParams().DatacenterPowerMW(100)
	if math.Abs(got-48.7) > 0.5 {
		t.Errorf("100 Pbps power = %v MW, want ~48.7", got)
	}
}

func TestOversubReducesESNCost(t *testing.T) {
	p := DefaultParams()
	nb := p.ESNCostPerTbps(4, 1)
	os := p.ESNCostPerTbps(4, 3)
	if os >= nb {
		t.Error("oversubscription should reduce ESN cost")
	}
	if os < nb/3 {
		t.Error("oversubscription cannot reduce cost below the shared-tier floor")
	}
}

func TestLayerZeroCost(t *testing.T) {
	p := DefaultParams()
	want := 2 * p.TransceiverCost / p.PortTbps
	if got := p.ESNCostPerTbps(0, 1); got != want {
		t.Errorf("direct cost = %v, want %v", got, want)
	}
}

func TestTunableComponents(t *testing.T) {
	p := DefaultParams()
	if p.TunableTransceiverW() <= p.TransceiverW {
		t.Error("tunable transceiver should consume more than fixed")
	}
	if p.TunableTransceiverCost() <= p.TransceiverCost {
		t.Error("tunable transceiver should cost more than fixed")
	}
	p.TunablePowerRatio = 1
	p.TunableCostRatio = 1
	if p.TunableTransceiverW() != p.TransceiverW {
		t.Error("1x ratio should equal fixed transceiver power")
	}
	if p.TunableTransceiverCost() != p.TransceiverCost {
		t.Error("1x ratio should equal fixed transceiver cost")
	}
}

func TestPanics(t *testing.T) {
	p := DefaultParams()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("negative layers", func() { p.ESNPowerPerTbps(-1) })
	mustPanic("bad oversub", func() { p.ESNCostPerTbps(4, 0.5) })
}
