// Package power implements the §5 power and cost analysis: the "scale
// tax" of hierarchical electrically-switched networks (Fig. 2a) and the
// relative power and cost of Sirius (Fig. 6a, 6b).
//
// The model is path-based, following the paper's §5 accounting: power and
// cost per Tbps of end-to-end bandwidth are the sum of the components a
// unit of traffic traverses. For an L-layer folded Clos that is 2 endpoint
// transceivers, 2(L-1) inter-switch links (two transceivers each) and
// 2L-1 switch crossings. For Sirius it is the tunable transceivers (two
// per optical hop, with the uplink over-provisioning factor for load-
// balanced routing applied) and the passive gratings' amortized cost;
// gratings consume no power. Components common to both networks (servers,
// intra-rack switching) are excluded, as in the paper.
package power

// Params holds the §5 component constants.
type Params struct {
	SwitchWatts     float64 // electrical switch (25.6 Tbps): 500 W
	SwitchCost      float64 // $5,000 ("optimistically")
	SwitchRadix     int     // 64 ports
	PortTbps        float64 // 0.4 Tbps (400 Gbps)
	TransceiverW    float64 // 400G transceiver: 10 W (includes its laser)
	TransceiverCost float64 // $1/Gbps -> $400
	FixedLaserW     float64 // laser share of a fixed transceiver's power
	FixedLaserCost  float64 // laser share of a fixed transceiver's cost
	// TunablePowerRatio and TunableCostRatio scale the laser component
	// for Sirius' fast tunable lasers (3-5x per the manufacturers'
	// estimates).
	TunablePowerRatio float64
	TunableCostRatio  float64
	// GratingCostFrac is the grating cost as a fraction of an electrical
	// switch of the same port count (≤25% at volume).
	GratingCostFrac float64
	// Overprovision is the uplink multiplier compensating VLB's detour
	// (§5 doubles; §7 shows 1.5x suffices).
	Overprovision float64
	// ESNLayers is the switch layer count of the Clos baseline (4 for a
	// large datacenter).
	ESNLayers int
	// Oversub is the ESN oversubscription for the ESN-OSUB comparison.
	Oversub float64
}

// DefaultParams returns the paper's §5 constants.
func DefaultParams() Params {
	return Params{
		SwitchWatts:       500,
		SwitchCost:        5000,
		SwitchRadix:       64,
		PortTbps:          0.4,
		TransceiverW:      10,
		TransceiverCost:   400,
		FixedLaserW:       0.7,
		FixedLaserCost:    220,
		TunablePowerRatio: 3,
		TunableCostRatio:  3,
		GratingCostFrac:   0.25,
		Overprovision:     2,
		ESNLayers:         4,
		Oversub:           3,
	}
}

// switchCrossW is the power of one switch crossing per Tbps.
func (p Params) switchCrossW() float64 {
	return p.SwitchWatts / (float64(p.SwitchRadix) * p.PortTbps)
}

func (p Params) switchCrossCost() float64 {
	return p.SwitchCost / (float64(p.SwitchRadix) * p.PortTbps)
}

// ESNPowerPerTbps returns the W/Tbps of an electrically-switched
// non-blocking Clos with the given number of switch layers. Layers = 0 is
// a direct transceiver-to-transceiver fiber (the paper's 50 W/Tbps
// floor); 4 layers reproduce the paper's 487 W/Tbps.
func (p Params) ESNPowerPerTbps(layers int) float64 {
	if layers < 0 {
		panic("power: negative layer count")
	}
	endpointTx := 2 * p.TransceiverW / p.PortTbps
	if layers == 0 {
		return endpointTx
	}
	interLinks := float64(2*(layers-1)) * 2 * p.TransceiverW / p.PortTbps
	switches := float64(2*layers-1) * p.switchCrossW()
	return endpointTx + interLinks + switches
}

// ESNCostPerTbps returns the $/Tbps of the Clos baseline, optionally
// oversubscribed: oversubscription divides everything above the first
// switch tier.
func (p Params) ESNCostPerTbps(layers int, oversub float64) float64 {
	if layers < 0 || oversub < 1 {
		panic("power: invalid layers or oversubscription")
	}
	endpointTx := 2 * p.TransceiverCost / p.PortTbps
	if layers == 0 {
		return endpointTx
	}
	tier1 := p.switchCrossCost()
	above := float64(2*(layers-1))*2*p.TransceiverCost/p.PortTbps +
		float64(2*layers-2)*p.switchCrossCost()
	return endpointTx + tier1 + above/oversub
}

// TunableTransceiverW is the power of one Sirius tunable transceiver: the
// standard transceiver with its laser component scaled by the tunable
// ratio.
func (p Params) TunableTransceiverW() float64 {
	return p.TransceiverW - p.FixedLaserW + p.TunablePowerRatio*p.FixedLaserW
}

// TunableTransceiverCost is the corresponding cost.
func (p Params) TunableTransceiverCost() float64 {
	return p.TransceiverCost - p.FixedLaserCost + p.TunableCostRatio*p.FixedLaserCost
}

// SiriusPowerPerTbps returns the W/Tbps of the Sirius fabric: per unit of
// baseline bandwidth, Overprovision x 2 tunable transceivers; the passive
// grating layer consumes nothing.
func (p Params) SiriusPowerPerTbps() float64 {
	return p.Overprovision * 2 * p.TunableTransceiverW() / p.PortTbps
}

// SiriusCostPerTbps returns the $/Tbps of the Sirius fabric: two tunable
// transceivers per path at baseline provisioning plus two grating-port
// crossings (the gratings amortize to GratingCostFrac of an equal-radix
// electrical switch). The §5 cost comparison uses baseline provisioning
// (the Fig. 12 result shows the extra uplinks are a tunable knob rather
// than a fixed cost; the power comparison conservatively includes them).
func (p Params) SiriusCostPerTbps() float64 {
	tx := 2 * p.TunableTransceiverCost() / p.PortTbps
	gratings := 2 * p.GratingCostFrac * p.switchCrossCost()
	return tx + gratings
}

// ElectricalSiriusCostPerTbps prices the §5 thought experiment: keep
// Sirius' flat topology and routing but replace each grating with an
// electrical switch plus its two per-crossing transceivers.
func (p Params) ElectricalSiriusCostPerTbps() float64 {
	tx := 2 * p.TransceiverCost / p.PortTbps // tunability no longer needed
	switches := 2 * (p.switchCrossCost() + 2*p.TransceiverCost/p.PortTbps)
	return tx + switches
}

// PowerRatio returns Sirius power relative to the non-blocking ESN.
func (p Params) PowerRatio() float64 {
	return p.SiriusPowerPerTbps() / p.ESNPowerPerTbps(p.ESNLayers)
}

// CostRatio returns Sirius cost relative to the non-blocking ESN.
func (p Params) CostRatio() float64 {
	return p.SiriusCostPerTbps() / p.ESNCostPerTbps(p.ESNLayers, 1)
}

// CostRatioOversub returns Sirius cost relative to the oversubscribed ESN.
func (p Params) CostRatioOversub() float64 {
	return p.SiriusCostPerTbps() / p.ESNCostPerTbps(p.ESNLayers, p.Oversub)
}

// LayerPoint is one Fig. 2a sample.
type LayerPoint struct {
	Hosts     int
	Layers    int
	WattsTbps float64
}

// Fig2a reproduces the scale-tax curve: network power per unit bandwidth
// as hosts (and therefore switch layers) grow, for 64-port 400G switches.
func (p Params) Fig2a() []LayerPoint {
	pts := []LayerPoint{
		{Hosts: 2, Layers: 0},
		{Hosts: 64, Layers: 1},
		{Hosts: 2048, Layers: 2},
		{Hosts: 65536, Layers: 3},
		{Hosts: 2000000, Layers: 4},
	}
	for i := range pts {
		pts[i].WattsTbps = p.ESNPowerPerTbps(pts[i].Layers)
	}
	return pts
}

// RatioPoint is one Fig. 6a/6b sample.
type RatioPoint struct {
	X     float64 // swept parameter
	Ratio float64 // Sirius / ESN
}

// Fig6a sweeps the tunable/fixed laser power ratio (the paper samples
// 1, 3, 5, 7, 10, 20).
func (p Params) Fig6a(ratios []float64) []RatioPoint {
	out := make([]RatioPoint, len(ratios))
	for i, r := range ratios {
		q := p
		q.TunablePowerRatio = r
		out[i] = RatioPoint{X: r, Ratio: q.PowerRatio()}
	}
	return out
}

// Fig6b sweeps the grating cost fraction (5%..100% of an electrical
// switch), returning the cost ratio against the non-blocking ESN and
// against the 3:1 oversubscribed ESN.
func (p Params) Fig6b(fracs []float64) (nonblocking, oversub []RatioPoint) {
	for _, g := range fracs {
		q := p
		q.GratingCostFrac = g
		nonblocking = append(nonblocking, RatioPoint{X: g, Ratio: q.CostRatio()})
		oversub = append(oversub, RatioPoint{X: g, Ratio: q.CostRatioOversub()})
	}
	return nonblocking, oversub
}

// DatacenterPowerMW returns the absolute network power in megawatts for a
// datacenter needing the given bisection bandwidth in Pbps — the paper's
// headline "100 Pbps would consume a prohibitive 48.7 MW".
func (p Params) DatacenterPowerMW(bisectionPbps float64) float64 {
	return p.ESNPowerPerTbps(p.ESNLayers) * bisectionPbps * 1000 / 1e6
}
