package exp

import (
	"context"
	"fmt"
	"math"

	"sirius/internal/core"
	"sirius/internal/phy"
	"sirius/internal/sched"
	"sirius/internal/schedule"
	"sirius/internal/sweep"
	"sirius/internal/workload"
)

// ArchFamilies lists the architectures the archcompare head-to-head
// runs, in row order. "esn" is the fluid electrically-switched baseline;
// every other family drives the slot-level core through a dynamic
// planner (core.Config.Planner), so the rows differ by scheduling
// policy on identical hardware, not by link budget.
var ArchFamilies = []string{"esn", "static", "rotorrr", "pulse", "negotiator"}

// archReconfigSlots is the per-circuit establishment penalty charged to
// the dynamic families, in slots. One slot keeps the comparison about
// scheduling policy: RotorNet-class hardware reconfigures far slower in
// absolute terms, but slot counts are the unit the core accounts in and
// a shared penalty isolates the matching discipline itself.
const archReconfigSlots = 1

// archGeometry resolves the fabric geometry the dynamic families share
// at this scale: every rack is a node, epochs are GratingPorts slots
// long, and uplinks follow the default 1.5x provisioning of runSirius's
// static fabric.
func (s Scale) archGeometry() (nodes, uplinks, slots int) {
	groups := s.Racks / s.GratingPorts
	return s.Racks, int(math.Round(float64(groups) * 1.5)), s.GratingPorts
}

// archPlanner builds a fresh planner for one family together with the
// core mode it runs under. Fresh per call: planners carry per-run state
// and must never be shared between runs. The demand-oblivious families
// keep their usual control loops (request-grant for the Sirius
// schedule, ideal for RotorNet's open-loop rotation); the demand-aware
// families require ModeDirect, where the epoch-boundary demand snapshot
// sees the real VOQ backlog.
func (s Scale) archPlanner(family string) (core.Planner, core.Mode, error) {
	n, up, slots := s.archGeometry()
	switch family {
	case "static":
		groups := s.Racks / s.GratingPorts
		var st schedule.Schedule
		var err error
		if up%groups == 0 {
			st, err = schedule.NewGrouped(s.Racks, s.GratingPorts, up/groups)
		} else {
			st, err = schedule.NewRotor(s.Racks, up)
		}
		if err != nil {
			return nil, 0, err
		}
		return sched.NewStatic(st), core.ModeRequestGrant, nil
	case "rotorrr":
		p, err := sched.NewRotorRR(n, up, slots, archReconfigSlots)
		return p, core.ModeIdeal, err
	case "pulse":
		p, err := sched.NewPULSE(n, up, slots, archReconfigSlots, 0)
		return p, core.ModeDirect, err
	case "negotiator":
		p, err := sched.NewNegotiaToR(n, up, slots, archReconfigSlots, 0)
		return p, core.ModeDirect, err
	}
	return nil, 0, fmt.Errorf("unknown scheduler family %q", family)
}

// flowsSkewed generates the workload at the given load, mean flow size
// and hotspot skew (0 keeps the uniform §7 traffic; otherwise that
// fraction of flows targets node 0).
func (s Scale) flowsSkewed(load, meanBytes, hotFrac float64, seed uint64) ([]workload.Flow, error) {
	cfg := workload.DefaultConfig(s.Racks, s.nodeRate(), load, s.Flows)
	cfg.MeanFlowBytes = meanBytes
	cfg.Seed = seed
	if hotFrac > 0 {
		cfg.Pattern = workload.Hotspot
		cfg.HotFraction = hotFrac
	}
	return workload.Generate(cfg)
}

// runSiriusSched runs the slot-level simulator with a dynamic planner in
// place of a static schedule, otherwise configured exactly like
// runSirius's defaults.
func (s Scale) runSiriusSched(ctx context.Context, flows []workload.Flow, p core.Planner, mode core.Mode) (*core.Results, error) {
	cfg := core.Config{
		Planner:       p,
		Slot:          phy.DefaultSlot(),
		Q:             4,
		Mode:          mode,
		NormalizeRate: s.nodeRate(),
		Seed:          s.Seed,
		Shards:        s.CoreShards,
	}
	return core.RunContext(ctx, cfg, flows)
}

// ArchCompare is the scheduler-family head-to-head: a grid of load x
// mean flow size x hotspot skew, with every family plus the fluid ESN
// baseline run on the same flow sample per grid point. One sweep point
// per (load, mean, skew) triple; one output row per family. The
// reconfig_frac column is the fraction of the fabric's link-slots the
// family spent dark on reconfiguration (ReconfigLinkSlots over slots x
// nodes x uplinks); the static Sirius schedule and the ESN are zero by
// construction.
func ArchCompare(ctx context.Context, rn *sweep.Runner, s Scale, loads, meanBytes, hotFracs []float64) (*Table, error) {
	s = s.arbitrateShards(rn)
	t := &Table{
		Title: "archcompare: scheduler families head-to-head vs the fluid ESN baseline",
		Note: "static = Sirius fixed-rotation fabric; rotorrr = RotorNet-style round-robin; " +
			"pulse / negotiator = demand-aware matchings with per-circuit reconfiguration penalties",
		Header: []string{"load", "mean_flow", "hot_frac", "arch",
			"short_p99_fct_ms", "makespan_goodput", "reconfig_frac", "direct_frac"},
	}
	var pts []sweep.Point
	for _, load := range loads {
		for _, mb := range meanBytes {
			for _, hf := range hotFracs {
				load, mb, hf := load, mb, hf
				pts = append(pts, sweep.Point{
					Key: fmt.Sprintf("archcmp|%s|load=%g|mean=%g|hot=%g", s.keyID(), load, mb, hf),
					Run: func(ctx context.Context, seed uint64) ([][]string, error) {
						// The workload is seeded from the scale so every family
						// within a row competes on the same flow sample; only
						// simulator randomness comes from the point substream.
						flows, err := s.flowsSkewed(load, mb, hf, s.Seed)
						if err != nil {
							return nil, err
						}
						sp := s.withSeed(seed)
						mean := fmt.Sprintf("%.0fB", mb)
						rows := make([][]string, 0, len(ArchFamilies))
						for _, fam := range ArchFamilies {
							if fam == "esn" {
								esn, err := sp.runESN(ctx, flows, 1)
								if err != nil {
									return nil, err
								}
								// Goodput over the makespan, as in Fig 13: the
								// small-mean grid rows have arrival windows
								// comparable to the fabric's base latency, where
								// the steady-state window is unrepresentative.
								rows = append(rows, row(load, mean, hf, fam,
									fmtMS(esn.FCTShort.Percentile(99)), esn.MakespanGoodput, 0.0, "-"))
								continue
							}
							p, mode, err := sp.archPlanner(fam)
							if err != nil {
								return nil, err
							}
							res, err := sp.runSiriusSched(ctx, flows, p, mode)
							if err != nil {
								return nil, err
							}
							frac := 0.0
							if res.Slots > 0 {
								frac = float64(res.ReconfigLinkSlots) /
									float64(res.Slots*int64(p.Nodes())*int64(p.Uplinks()))
							}
							rows = append(rows, row(load, mean, hf, fam,
								fmtMS(res.FCTShort.Percentile(99)), res.MakespanGoodput, frac,
								res.DirectFraction))
						}
						return rows, nil
					},
				})
			}
		}
	}
	if err := t.collect(runOn(ctx, rn, s, "archcompare", pts)); err != nil {
		return nil, err
	}
	return t, nil
}
