package exp

import (
	"context"
	"os"
	"strconv"
	"strings"
	"testing"

	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// cell parses a table cell as float.
func cellF(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimPrefix(tab.Rows[row][col], "±"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a number: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "T", Note: "n", Header: []string{"a", "bb"}}
	tab.Add(1, 2.5)
	tab.Add("x", "y")
	s := tab.String()
	for _, want := range []string{"# T", "# n", "a", "bb", "2.5", "x"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestFig2aTable(t *testing.T) {
	tab := Fig2a()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if got := cellF(t, tab, 0, 2); got < 49 || got > 51 {
		t.Errorf("direct = %v W/Tbps, want 50", got)
	}
	if got := cellF(t, tab, 4, 2); got < 480 || got > 495 {
		t.Errorf("4-layer = %v W/Tbps, want ~487", got)
	}
}

func TestFig6aTable(t *testing.T) {
	tab := Fig6a()
	// Row for ratio 3 (index 1) in the 23-26% band.
	if got := cellF(t, tab, 1, 1); got < 0.22 || got > 0.27 {
		t.Errorf("ratio at 3x = %v", got)
	}
}

func TestFig6bTable(t *testing.T) {
	tab := Fig6b()
	// Grating at 25% (row 2): ~28% of non-blocking ESN.
	if got := cellF(t, tab, 2, 1); got < 0.25 || got > 0.31 {
		t.Errorf("cost ratio = %v, want ~0.28", got)
	}
}

func TestTuningTable(t *testing.T) {
	tab := Tuning()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	body := tab.String()
	// The damped DSDBR row carries the 12,432-pair statistics.
	if !strings.Contains(body, "12432") {
		t.Error("missing 12,432-pair statistics")
	}
}

func TestFig8Tables(t *testing.T) {
	if rows := Fig8a().Rows; len(rows) != 6 {
		t.Errorf("fig8a rows = %d", len(rows))
	}
	b := Fig8b()
	if len(b.Rows) != 2 {
		t.Fatalf("fig8b rows = %d", len(b.Rows))
	}
	// Both adjacent and distant transitions are sub-nanosecond.
	for _, row := range b.Rows {
		if !strings.Contains(row[4], "ps") {
			t.Errorf("transition %v not sub-ns", row)
		}
	}
	c := Fig8c()
	if !strings.Contains(c.String(), "3.84ns") {
		t.Error("fig8c missing the 3.84 ns guardband")
	}
	d := Fig8d()
	if len(d.Rows) != 9 {
		t.Errorf("fig8d rows = %d", len(d.Rows))
	}
	// BER decreases (log10 more negative) with power on every channel.
	for col := 1; col <= 4; col++ {
		for r := 1; r < len(d.Rows); r++ {
			if cellF(t, d, r, col) >= cellF(t, d, r-1, col) {
				t.Errorf("channel %d BER not decreasing at row %d", col, r)
			}
		}
	}
}

func TestTimesyncTable(t *testing.T) {
	tab := Timesync(20_000)
	for i := range tab.Rows {
		if got := cellF(t, tab, i, 2); got > 10 {
			t.Errorf("row %d: spread ±%v ps, want within ±10", i, got)
		}
	}
}

func TestLinkBudgetTable(t *testing.T) {
	s := LinkBudget().String()
	if !strings.Contains(s, "7.0 dBm") {
		t.Errorf("missing required laser power:\n%s", s)
	}
	if !strings.Contains(s, "8") {
		t.Error("missing 8-way laser sharing")
	}
}

func TestBurstTable(t *testing.T) {
	s := Burst().String()
	for _, want := range []string{"0.34", "0.978", "100ns", "3.84ns"} {
		if !strings.Contains(s, want) {
			t.Errorf("burst table missing %q:\n%s", want, s)
		}
	}
}

func TestPrototypeTable(t *testing.T) {
	tab, err := Prototype(4, 30)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "error-free:") || !strings.Contains(s, "true") {
		t.Errorf("prototype not error-free:\n%s", s)
	}
}

func TestFig9Shapes(t *testing.T) {
	s := TinyScale()
	tab, err := Fig9(context.Background(), nil, s, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		sir := cellF(t, tab, i, 5)
		esn := cellF(t, tab, i, 7)
		osub := cellF(t, tab, i, 8)
		// Sirius goodput within a reasonable factor of ESN (Ideal), and
		// OSUB no better than ESN.
		if sir < esn*0.6 {
			t.Errorf("row %d: sirius goodput %v too far below esn %v", i, sir, esn)
		}
		if osub > esn*1.01 {
			t.Errorf("row %d: OSUB goodput %v above ESN %v", i, osub, esn)
		}
	}
	// Goodput grows with load for every system.
	for col := 5; col <= 8; col++ {
		if cellF(t, tab, 1, col) <= cellF(t, tab, 0, col) {
			t.Errorf("col %d: goodput not increasing with load", col)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	s := TinyScale()
	tab, err := Fig10(context.Background(), nil, s, []int{2, 16}, []float64{0.75})
	if err != nil {
		t.Fatal(err)
	}
	// Larger Q means more queueing and a larger reorder buffer.
	if cellF(t, tab, 1, 4) <= cellF(t, tab, 0, 4) {
		t.Error("peak queue did not grow with Q")
	}
	if cellF(t, tab, 1, 5) <= cellF(t, tab, 0, 5) {
		t.Error("reorder buffer did not grow with Q")
	}
}

func TestFig11Shapes(t *testing.T) {
	s := TinyScale()
	tab, err := Fig11(context.Background(), nil, s, []float64{5, 40})
	if err != nil {
		t.Fatal(err)
	}
	// FCT at 40 ns guardband clearly worse than at 5 ns.
	if cellF(t, tab, 1, 3) <= cellF(t, tab, 0, 3) {
		t.Error("FCT did not grow with guardband")
	}
}

func TestFig12Shapes(t *testing.T) {
	s := TinyScale()
	tab, err := Fig12(context.Background(), nil, s, []float64{1, 2}, []float64{0.9})
	if err != nil {
		t.Fatal(err)
	}
	// 2x uplinks beat 1x at high load.
	if cellF(t, tab, 0, 3) <= cellF(t, tab, 0, 2) {
		t.Error("2x goodput not above 1x")
	}
}

func TestFig13Shapes(t *testing.T) {
	s := TinyScale()
	tab, err := Fig13(context.Background(), nil, s, []float64{512, 65536}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// The FCT penalty of fixed cells shrinks as flows grow.
	if cellF(t, tab, 1, 3) >= cellF(t, tab, 0, 3) {
		t.Error("FCT ratio did not shrink with flow size")
	}
}

func TestFailureExperiment(t *testing.T) {
	s := TinyScale()
	tab, err := Failure(context.Background(), nil, s, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	healthy := cellF(t, tab, 0, 2)
	degraded := cellF(t, tab, 1, 2)
	compacted := cellF(t, tab, 1, 3)
	if degraded >= healthy {
		t.Errorf("degraded goodput %v not below healthy %v", degraded, healthy)
	}
	if compacted <= degraded {
		t.Errorf("compacted goodput %v did not improve on degraded %v", compacted, degraded)
	}
	// Detection completes within a handful of epochs.
	if d := cellF(t, tab, 1, 4); d < 1 || d > 10 {
		t.Errorf("detection epochs = %v", d)
	}
}

func TestTableCSVAndJSON(t *testing.T) {
	tab := &Table{Title: "T", Note: "n", Header: []string{"a", "b"}}
	tab.Add(1, "x,y") // comma needing quoting
	var csvOut strings.Builder
	if err := tab.CSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	s := csvOut.String()
	for _, want := range []string{"# T", "a,b", `"x,y"`} {
		if !strings.Contains(s, want) {
			t.Errorf("CSV missing %q:\n%s", want, s)
		}
	}
	var jsonOut strings.Builder
	if err := tab.JSON(&jsonOut); err != nil {
		t.Fatal(err)
	}
	j := jsonOut.String()
	for _, want := range []string{`"title": "T"`, `"x,y"`, `"header"`} {
		if !strings.Contains(j, want) {
			t.Errorf("JSON missing %q:\n%s", want, j)
		}
	}
}

func TestServerLevelExperiment(t *testing.T) {
	s := TinyScale()
	tab, err := ServerLevel(context.Background(), nil, s, 4, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if intra := cellF(t, tab, 0, 2); intra == 0 {
		t.Error("no intra-rack traffic at server granularity")
	}
	if g := cellF(t, tab, 0, 4); g <= 0 || g > 1.2 {
		t.Errorf("server goodput = %v", g)
	}
}

func TestFromTrace(t *testing.T) {
	flows := []workload.Flow{
		{Src: 0, Dst: 5, Bytes: 50_000},
		{Src: 3, Dst: 9, Bytes: 2_000, Arrival: simtime.Time(100 * simtime.Nanosecond)},
		{Src: 7, Dst: 2, Bytes: 120_000, Arrival: simtime.Time(50 * simtime.Nanosecond)},
	}
	tab, err := FromTrace(context.Background(), flows, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 systems", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] != "3" {
			t.Errorf("system %s completed %s of 3", row[0], row[1])
		}
	}
	if _, err := FromTrace(context.Background(), nil, 4, 1); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestAblationTable(t *testing.T) {
	tab, err := Ablation(context.Background(), nil, TinyScale(), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 variants", len(tab.Rows))
	}
	baseline := cellF(t, tab, 0, 1)
	noDirect := cellF(t, tab, 0, 3)
	if noDirect <= 0 {
		t.Error("baseline should use the direct path sometimes")
	}
	if got := cellF(t, tab, 1, 3); got != 0 {
		t.Errorf("no-direct variant direct fraction = %v", got)
	}
	// Direct-only mode is dramatically worse on goodput.
	directOnly := cellF(t, tab, 4, 1)
	if directOnly >= baseline*0.8 {
		t.Errorf("direct-only goodput %v should be far below baseline %v", directOnly, baseline)
	}
	if got := cellF(t, tab, 4, 3); got != 1 {
		t.Errorf("direct-only direct fraction = %v, want 1", got)
	}
}

func TestLaserDesignsTable(t *testing.T) {
	tab := LaserDesigns()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	s := tab.String()
	// The monolithic design is the only one that cannot meet ~1ns tuning.
	if !strings.Contains(s, "92.096ns") {
		t.Errorf("missing damped DSDBR worst case:\n%s", s)
	}
	if !strings.Contains(s, "912ps") {
		t.Errorf("missing SOA-bank worst case:\n%s", s)
	}
}

func TestFromTraceFile(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "trace-*.csv")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("arrival_ns,src,dst,bytes\n0,0,3,5000\n100,2,7,900\n")
	f.Close()
	tab, err := FromTraceFile(context.Background(), f.Name(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if _, err := FromTraceFile(context.Background(), "/nonexistent.csv", 4, 1); err == nil {
		t.Error("missing file accepted")
	}
}

func TestScalePresets(t *testing.T) {
	if s := SmallScale(); s.Racks != 64 || s.GratingPorts != 8 {
		t.Errorf("small scale = %+v", s)
	}
	if s := PaperScale(); s.Racks != 128 || s.GratingPorts != 16 || s.Flows != 200_000 {
		t.Errorf("paper scale = %+v", s)
	}
}

// TestLifecycleTable runs the fleet-lifecycle soak at a fixed seed. The
// experiment itself enforces the hard invariants (byte-identical
// replay, /healthz green outside the crash incident); the test checks
// the reported milestones land where the plan anchors them.
func TestLifecycleTable(t *testing.T) {
	tab, err := Lifecycle(7)
	if err != nil {
		t.Fatal(err)
	}
	get := func(metric string) string {
		t.Helper()
		for _, r := range tab.Rows {
			if r[0] == metric {
				return r[1]
			}
		}
		t.Fatalf("no row %q in:\n%s", metric, tab.String())
		return ""
	}
	for metric, want := range map[string]string{
		"fabric grew 4->6 at epoch":   "12",
		"node 1 drained at epoch":     "26",
		"node 1 re-added at epoch":    "40",
		"node 0 crashed at epoch":     "50",
		"healthz excursions (want 1)": "1",
		"healthz green at end":        "true",
		"post-FEC error-free":         "true",
	} {
		if got := get(metric); got != want {
			t.Errorf("%s = %s, want %s", metric, got, want)
		}
	}
}
