// Package exp is the experiment harness: one entry point per table and
// figure of the paper's evaluation, each returning a printable table with
// the same rows/series the paper reports. cmd/siriussim exposes them on
// the command line and the repository's benchmarks regenerate them.
package exp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// row formats cells the way Add does; sweep points use it to build rows
// off the table so parallel workers never share the table itself.
func row(cells ...interface{}) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.4g", v)
		default:
			out[i] = fmt.Sprintf("%v", c)
		}
	}
	return out
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	t.Rows = append(t.Rows, row(cells...))
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "# %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// CSV writes the table as CSV (header row first; title and note as
// leading comment lines).
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Note); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// JSON writes the table as a JSON object with title, note, header and
// rows.
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title  string     `json:"title"`
		Note   string     `json:"note,omitempty"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{t.Title, t.Note, t.Header, t.Rows})
}

// Scale selects the size of the network-simulation experiments.
type Scale struct {
	Racks        int
	GratingPorts int
	Flows        int
	Seed         uint64

	// CoreShards partitions the slot-level simulator's per-slot work
	// across goroutine shards (core.Config.Shards); 0 keeps the serial
	// engine. The sharded engine is byte-identical to serial at a fixed
	// seed, so CoreShards is deliberately not part of the sweep cache key
	// (keyID): cached points remain valid across shard counts.
	CoreShards int
}

// SmallScale fits in seconds on a laptop while preserving the paper's
// ratios (8 base uplinks per rack, 100 KB mean flows).
func SmallScale() Scale {
	return Scale{Racks: 64, GratingPorts: 8, Flows: 4000, Seed: 1}
}

// TinyScale is for tests.
func TinyScale() Scale {
	return Scale{Racks: 16, GratingPorts: 4, Flows: 400, Seed: 1}
}

// PaperScale is the §7 setup: 128 racks, 16-port gratings (8 base
// uplinks), ~200k flows.
func PaperScale() Scale {
	return Scale{Racks: 128, GratingPorts: 16, Flows: 200_000, Seed: 1}
}

// XLScale stresses the simulator at 4096 racks with 64-port gratings —
// the full flat-fabric scale the paper's §2 sizing argument targets. It
// defaults to the 4-shard core, sized for multi-core hosts (CI runners
// included); a single fig9 point lands in ~1–2 minutes either way, so
// n=4096 is CI-feasible. On a single-CPU host low-load points can run
// faster serial (-cores 1): sparse slots amortize the shard barriers
// poorly, while dense slots win even single-threaded (DESIGN.md §6.6).
func XLScale() Scale {
	return Scale{Racks: 4096, GratingPorts: 64, Flows: 8000, Seed: 1, CoreShards: 4}
}
