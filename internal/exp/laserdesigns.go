package exp

import (
	"fmt"

	"sirius/internal/laser"
	"sirius/internal/simtime"
)

// LaserDesigns summarizes the §3.3 disaggregated-laser design space: how
// each instantiation trades component count and power against tuning
// latency and channel scalability.
func LaserDesigns() *Table {
	t := &Table{
		Title: "§3.3: disaggregated tunable laser designs",
		Note: "the paper fabricates the fixed bank (Fig. 3d); the tunable " +
			"bank needs schedule lookahead; combs trade power for scalability",
		Header: []string{"design", "channels", "light_sources", "worst_tune",
			"needs_lookahead", "relative_power"},
	}
	damped := laser.NewDampedDSDBR()
	sDamped := laser.MeasurePairs(damped)
	t.Add("damped DSDBR (monolithic)", damped.Channels(), 1,
		sDamped.Worst.String(), "no", "1.0")

	fixed := laser.NewFixedBank(19, 1)
	t.Add("fixed laser bank + SOA", fixed.Channels(), fixed.Channels(),
		fixed.WorstCase().String(), "no",
		fmt.Sprintf("%.1f", 0.3*float64(fixed.Channels())+1)) // one DFB per channel + SOA

	bank := laser.NewTunableBank(2)
	worst := bank.TuneTimeWithLookahead(0, 111, 100*simtime.Nanosecond)
	t.Add("tunable bank (2+1 spare)", bank.Channels(), bank.Size,
		worst.String(), "yes", fmt.Sprintf("%.1f", float64(bank.Size)*1.2))

	comb := laser.NewComb(100, 3)
	t.Add("comb + SOA", comb.Channels(), 1,
		comb.WorstCase().String(), "no", "8.0") // today's combs are power-hungry
	return t
}
