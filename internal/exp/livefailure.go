package exp

import (
	"fmt"
	"time"

	"sirius/internal/fault"
	"sirius/internal/health"
	"sirius/internal/wire"
)

// LiveFailure reproduces §4.5's failure story live, over the TCP AWGR
// emulator rather than the offline model (Failure): a scripted fault plan
// kills one node at a fabric epoch; the survivors detect the silence with
// the in-band epoch gap, flood the suspicion piggybacked on data cells,
// and switch to a compacted schedule at the agreed boundary. The table
// reports the measured kill-to-confirmation latency next to the offline
// health.Detector prediction, the survivors' slot utilization before and
// after the schedule switch, and the post-FEC error-free verdict — plus
// the plan's content hash, so the exact chaos is named in the output.
func LiveFailure(nodes, epochs, killNode, killEpoch int, seed uint64) (*Table, error) {
	t := &Table{
		Title: "§4.5 live: node kill on the wire testbed — detect, flood, compact",
		Note: "paper: detection within a few microseconds (epochs here); " +
			"compaction regains the failed node's bandwidth",
		Header: []string{"metric", "value"},
	}
	if seed == 0 {
		seed = 42
	}
	plan := fault.KillPlan(killNode, killEpoch, seed)
	fs, err := wire.RunPrototypeCfg(wire.PrototypeConfig{
		Nodes:        nodes,
		Epochs:       epochs,
		PayloadBytes: 64,
		Plan:         plan,
		// Localhost never needs the production 2s silence budget; 400ms
		// keeps the three silent-gate waits under two seconds total.
		SuspectTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}

	// Offline prediction for the same topology and default threshold.
	det, err := health.New(health.DefaultConfig(nodes))
	if err != nil {
		return nil, err
	}
	for e := 0; e < 10*nodes && !det.Confirmed(killNode); e++ {
		det.Epoch(func(obs, peer int) bool { return peer != killNode })
	}

	t.Add("plan hash", fs.PlanHash)
	t.Add("nodes / epochs", fmt.Sprintf("%d / %d", nodes, epochs))
	t.Add("killed node @ epoch", fmt.Sprintf("%d @ %d", killNode, fs.KillEpoch))
	t.Add("suspected at epoch", fs.SuspectEpoch)
	t.Add("confirmed fabric-wide at", fs.ConfirmEpoch)
	t.Add("schedule switch at", fs.SwitchEpoch)
	t.Add("kill-to-confirm (live)", fmt.Sprintf("%d epochs", fs.DetectEpochs))
	t.Add("kill-to-confirm (model)", fmt.Sprintf("%d epochs", det.DetectionLatency(killNode)))
	t.Add("survivors", fs.Survivors)
	t.Add("degraded slot utilization", fmt.Sprintf("%.3f", fs.DegradedGoodput))
	t.Add("compacted slot utilization", fmt.Sprintf("%.3f", fs.CompactedGoodput))
	t.Add("survivor cells received", fs.Cells)
	t.Add("survivor BER", fs.BER)
	t.Add("post-FEC error-free", fs.ErrFree)
	return t, nil
}
