package exp

import (
	"context"
	"fmt"
	"math"

	"sirius/internal/core"
	"sirius/internal/fluid"
	"sirius/internal/phy"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/sweep"
	"sirius/internal/workload"
)

// nodeRate is the baseline per-rack bandwidth of a scale (8 base uplinks
// at 50 Gb/s in the default scales).
func (s Scale) nodeRate() simtime.Rate {
	return simtime.Rate(s.Racks/s.GratingPorts) * 50 * simtime.Gbps
}

// flows generates the §7 workload at the given load.
func (s Scale) flows(load, meanBytes float64, seed uint64) ([]workload.Flow, error) {
	cfg := workload.DefaultConfig(s.Racks, s.nodeRate(), load, s.Flows)
	cfg.MeanFlowBytes = meanBytes
	cfg.Seed = seed
	return workload.Generate(cfg)
}

// siriusOpts collects the knobs the sweeps vary.
type siriusOpts struct {
	mult         float64 // uplink multiplier
	mode         core.Mode
	q            int
	slot         phy.Slot
	trackReorder bool
}

func defaultOpts() siriusOpts {
	return siriusOpts{mult: 1.5, mode: core.ModeRequestGrant, q: 4, slot: phy.DefaultSlot()}
}

// runSirius runs the slot-level simulator at this scale.
func (s Scale) runSirius(ctx context.Context, flows []workload.Flow, o siriusOpts) (*core.Results, error) {
	return s.runSiriusMutated(ctx, flows, func(opts *siriusOpts, c *core.Config) { *opts = o })
}

// runSiriusMutated builds the default configuration, lets the caller
// tweak it (both the high-level options and the raw core config), and
// runs the simulator under ctx.
func (s Scale) runSiriusMutated(ctx context.Context, flows []workload.Flow, mutate func(*siriusOpts, *core.Config)) (*core.Results, error) {
	o := defaultOpts()
	cfg := core.Config{
		NormalizeRate: s.nodeRate(),
		Seed:          s.Seed,
	}
	mutate(&o, &cfg)
	groups := s.Racks / s.GratingPorts
	uplinks := int(math.Round(float64(groups) * o.mult))
	var sched schedule.Schedule
	var err error
	if uplinks%groups == 0 {
		sched, err = schedule.NewGrouped(s.Racks, s.GratingPorts, uplinks/groups)
	} else {
		sched, err = schedule.NewRotor(s.Racks, uplinks)
	}
	if err != nil {
		return nil, err
	}
	cfg.Schedule = sched
	cfg.Slot = o.slot
	cfg.Q = o.q
	if cfg.Mode == core.ModeRequestGrant {
		cfg.Mode = o.mode
	}
	cfg.TrackReorder = cfg.TrackReorder || o.trackReorder
	if cfg.Shards == 0 {
		cfg.Shards = s.CoreShards
	}
	return core.RunContext(ctx, cfg, flows)
}

// arbitrateShards resolves the two-level parallelism budget, mirroring
// ServerLevel's rack-worker arbitration: when the sweep itself fans
// points out across parallel workers, each point keeps its slot loop
// serial so the two levels do not oversubscribe the machine; a serial
// sweep hands the core its full CoreShards budget. Results are identical
// either way (the sharded engine is byte-identical to serial by
// contract, pinned by the golden replays).
func (s Scale) arbitrateShards(rn *sweep.Runner) Scale {
	if rn != nil && rn.Parallel != 1 {
		s.CoreShards = 0
	}
	return s
}

// runESN runs the idealized electrically-switched baseline. The fluid
// model itself has no latency floor, so it is charged a base RTT for the
// Clos path (multiple store-and-forward switch hops plus propagation),
// comparable to the paper's ESN (Ideal) FCT floor of ~1 us.
func (s Scale) runESN(ctx context.Context, flows []workload.Flow, oversub int) (*fluid.Results, error) {
	cfg := fluid.Config{
		Endpoints:    s.Racks,
		EndpointRate: s.nodeRate(),
		Oversub:      oversub,
		BaseRTT:      simtime.Microsecond,
	}
	if oversub > 1 {
		cfg.EndpointsPerRack = s.GratingPorts // aggregation pods
	}
	return fluid.RunContext(ctx, cfg, flows)
}

func fmtMS(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

// Fig9 reproduces the load sweep: 99th-percentile short-flow FCT and
// normalized goodput for SIRIUS, SIRIUS (IDEAL), ESN (Ideal) and
// ESN-OSUB (Ideal). One sweep point per load; rn == nil runs serially.
func Fig9(ctx context.Context, rn *sweep.Runner, s Scale, loads []float64) (*Table, error) {
	s = s.arbitrateShards(rn)
	t := &Table{
		Title: "Fig 9: short-flow p99 FCT (ms) and normalized goodput vs load",
		Note: "paper shape: Sirius ~= ESN (Ideal); ESN-OSUB much worse; " +
			"Sirius (Ideal) slightly faster at low load",
		Header: []string{"load",
			"sirius_fct", "siriusIdeal_fct", "esn_fct", "osub_fct",
			"sirius_gput", "siriusIdeal_gput", "esn_gput", "osub_gput"},
	}
	pts := make([]sweep.Point, len(loads))
	for i, load := range loads {
		load := load
		pts[i] = sweep.Point{
			Key: fmt.Sprintf("fig9|%s|load=%g|mean=%g", s.keyID(), load, 100e3),
			Run: func(ctx context.Context, seed uint64) ([][]string, error) {
				flows, err := s.flows(load, 100e3, s.Seed)
				if err != nil {
					return nil, err
				}
				sp := s.withSeed(seed)
				sir, err := sp.runSirius(ctx, flows, defaultOpts())
				if err != nil {
					return nil, err
				}
				io := defaultOpts()
				io.mode = core.ModeIdeal
				ideal, err := sp.runSirius(ctx, flows, io)
				if err != nil {
					return nil, err
				}
				esn, err := sp.runESN(ctx, flows, 1)
				if err != nil {
					return nil, err
				}
				osub, err := sp.runESN(ctx, flows, 3)
				if err != nil {
					return nil, err
				}
				return [][]string{row(load,
					fmtMS(sir.FCTShort.Percentile(99)), fmtMS(ideal.FCTShort.Percentile(99)),
					fmtMS(esn.FCTShort.Percentile(99)), fmtMS(osub.FCTShort.Percentile(99)),
					sir.GoodputNorm, ideal.GoodputNorm, esn.GoodputNorm, osub.GoodputNorm)}, nil
			},
		}
	}
	if err := t.collect(runOn(ctx, rn, s, "fig9", pts)); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig10 reproduces the queue-bound sweep: FCT, goodput, peak aggregate
// queue occupancy and peak reorder buffer for Q in {2,4,8,16}. One sweep
// point per (Q, load) pair.
func Fig10(ctx context.Context, rn *sweep.Runner, s Scale, qs []int, loads []float64) (*Table, error) {
	s = s.arbitrateShards(rn)
	t := &Table{
		Title: "Fig 10: effect of the queue bound Q",
		Note: "paper: Q=4 best FCT/goodput trade-off; peak aggregate queue " +
			"78.2 KB worst case; reorder buffer ~163 KB",
		Header: []string{"Q", "load", "short_p99_fct_ms", "goodput",
			"peak_node_queue_KB", "peak_reorder_KB"},
	}
	var pts []sweep.Point
	for _, q := range qs {
		for _, load := range loads {
			q, load := q, load
			pts = append(pts, sweep.Point{
				Key: fmt.Sprintf("fig10|%s|q=%d|load=%g", s.keyID(), q, load),
				Run: func(ctx context.Context, seed uint64) ([][]string, error) {
					flows, err := s.flows(load, 100e3, s.Seed)
					if err != nil {
						return nil, err
					}
					o := defaultOpts()
					o.q = q
					o.trackReorder = true
					res, err := s.withSeed(seed).runSirius(ctx, flows, o)
					if err != nil {
						return nil, err
					}
					return [][]string{row(q, load,
						fmtMS(res.FCTShort.Percentile(99)), res.GoodputNorm,
						float64(res.PeakNodeQueueBytes)/1024,
						float64(res.PeakReorderBytes)/1024)}, nil
				},
			})
		}
	}
	if err := t.collect(runOn(ctx, rn, s, "fig10", pts)); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig11 reproduces the guardband sweep at full load: as the guardband
// grows (with the slot scaled so it stays 10% of it), the epoch grows and
// queuing latency with it. Point 0 is the shared ESN baseline; every
// guardband is its own point on the same flow sample (seeded from the
// scale, not the substream, so all rows compare like for like).
func Fig11(ctx context.Context, rn *sweep.Runner, s Scale, guardsNS []float64) (*Table, error) {
	s = s.arbitrateShards(rn)
	t := &Table{
		Title: "Fig 11: short-flow p99 FCT vs guardband (10% of slot), high load",
		Note:  "paper: FCT grows sharply beyond ~10 ns; motivates fast tuning + CDR",
		Header: []string{"guardband_ns", "cell_B", "slot_ns",
			"sirius_fct_ms", "siriusIdeal_fct_ms", "esn_fct_ms"},
	}
	// The paper runs this at nominal L = 100% without rescaling arrival
	// times to the realized Pareto sample mean, which corresponds to a
	// realized offered load around 0.6; since our generator rescales to
	// the exact offered load, we sweep at 0.6 to match the operating
	// point (at a rescaled 1.0 the smallest cells saturate the fabric
	// through header overhead and invert the curve).
	load := 0.6
	pts := make([]sweep.Point, 0, len(guardsNS)+1)
	pts = append(pts, sweep.Point{
		Key: fmt.Sprintf("fig11|%s|esn|load=%g", s.keyID(), load),
		Run: func(ctx context.Context, seed uint64) ([][]string, error) {
			flows, err := s.flows(load, 100e3, s.Seed)
			if err != nil {
				return nil, err
			}
			esn, err := s.runESN(ctx, flows, 1)
			if err != nil {
				return nil, err
			}
			return [][]string{{fmtMS(esn.FCTShort.Percentile(99))}}, nil
		},
	})
	for _, g := range guardsNS {
		g := g
		pts = append(pts, sweep.Point{
			Key: fmt.Sprintf("fig11|%s|guard=%g|load=%g", s.keyID(), g, load),
			Run: func(ctx context.Context, seed uint64) ([][]string, error) {
				flows, err := s.flows(load, 100e3, s.Seed)
				if err != nil {
					return nil, err
				}
				slot := phy.SlotForGuardband(50*simtime.Gbps,
					simtime.Duration(g*float64(simtime.Nanosecond)), 0.10)
				o := defaultOpts()
				o.slot = slot
				sp := s.withSeed(seed)
				sir, err := sp.runSirius(ctx, flows, o)
				if err != nil {
					return nil, err
				}
				o.mode = core.ModeIdeal
				ideal, err := sp.runSirius(ctx, flows, o)
				if err != nil {
					return nil, err
				}
				return [][]string{row(g, slot.CellBytes, slot.Duration().Nanoseconds(),
					fmtMS(sir.FCTShort.Percentile(99)),
					fmtMS(ideal.FCTShort.Percentile(99)))}, nil
			},
		})
	}
	res, err := runOn(ctx, rn, s, "fig11", pts)
	if err != nil {
		return nil, err
	}
	esnCell := res[0][0][0]
	for _, rows := range res[1:] {
		for _, r := range rows {
			t.Rows = append(t.Rows, append(r, esnCell))
		}
	}
	return t, nil
}

// Fig12 reproduces the uplink-provisioning sweep: goodput for 1x, 1.5x
// and 2x uplinks against the ESN. One sweep point per load.
func Fig12(ctx context.Context, rn *sweep.Runner, s Scale, mults, loads []float64) (*Table, error) {
	s = s.arbitrateShards(rn)
	t := &Table{
		Title: "Fig 12: normalized goodput vs load for 1x/1.5x/2x uplinks",
		Note:  "paper: 1.5x suffices to match ESN (Ideal); 1x loses ~20% at full load",
		Header: func() []string {
			h := []string{"load", "esn_gput"}
			for _, m := range mults {
				h = append(h, fmt.Sprintf("sirius_%gx", m))
			}
			return h
		}(),
	}
	pts := make([]sweep.Point, len(loads))
	for i, load := range loads {
		load := load
		pts[i] = sweep.Point{
			Key: fmt.Sprintf("fig12|%s|load=%g|mults=%v", s.keyID(), load, mults),
			Run: func(ctx context.Context, seed uint64) ([][]string, error) {
				flows, err := s.flows(load, 100e3, s.Seed)
				if err != nil {
					return nil, err
				}
				sp := s.withSeed(seed)
				esn, err := sp.runESN(ctx, flows, 1)
				if err != nil {
					return nil, err
				}
				cells := []interface{}{load, esn.GoodputNorm}
				for _, m := range mults {
					o := defaultOpts()
					o.mult = m
					res, err := sp.runSirius(ctx, flows, o)
					if err != nil {
						return nil, err
					}
					cells = append(cells, res.GoodputNorm)
				}
				return [][]string{row(cells...)}, nil
			},
		}
	}
	if err := t.collect(runOn(ctx, rn, s, "fig12", pts)); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig13 reproduces the flow-size sweep: fixed-size cells hurt when the
// average flow is much smaller than a cell, and the gap closes as flows
// grow. One sweep point per mean flow size; the workload itself differs
// per point, so it is seeded from the point substream.
func Fig13(ctx context.Context, rn *sweep.Runner, s Scale, meanBytes []float64, load float64) (*Table, error) {
	s = s.arbitrateShards(rn)
	t := &Table{
		Title: "Fig 13: FCT and goodput vs average flow size",
		Note: "paper: at 512 B mean, cells cost ~2.3x FCT and ~1.7x goodput " +
			"vs ESN; by 16 KB the gap is ~1.2x/1.05x",
		Header: []string{"mean_flow", "sirius_fct_ms", "esn_fct_ms", "fct_ratio",
			"sirius_gput", "esn_gput", "gput_ratio"},
	}
	pts := make([]sweep.Point, len(meanBytes))
	for i, mb := range meanBytes {
		mb := mb
		pts[i] = sweep.Point{
			Key: fmt.Sprintf("fig13|%s|mean=%g|load=%g", s.keyID(), mb, load),
			Run: func(ctx context.Context, seed uint64) ([][]string, error) {
				flows, err := s.flows(load, mb, seed)
				if err != nil {
					return nil, err
				}
				sp := s.withSeed(seed)
				sir, err := sp.runSirius(ctx, flows, defaultOpts())
				if err != nil {
					return nil, err
				}
				esn, err := sp.runESN(ctx, flows, 1)
				if err != nil {
					return nil, err
				}
				// Small-mean workloads have arrival windows comparable to the
				// fabric's base latency, so goodput is measured over the makespan.
				spq, epq := sir.FCTShort.Percentile(99), esn.FCTShort.Percentile(99)
				return [][]string{row(fmt.Sprintf("%.0fB", mb), fmtMS(spq), fmtMS(epq), spq/epq,
					sir.MakespanGoodput, esn.MakespanGoodput,
					esn.MakespanGoodput/sir.MakespanGoodput)}, nil
			},
		}
	}
	if err := t.collect(runOn(ctx, rn, s, "fig13", pts)); err != nil {
		return nil, err
	}
	return t, nil
}
