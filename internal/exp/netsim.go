package exp

import (
	"fmt"
	"math"

	"sirius/internal/core"
	"sirius/internal/fluid"
	"sirius/internal/phy"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// nodeRate is the baseline per-rack bandwidth of a scale (8 base uplinks
// at 50 Gb/s in the default scales).
func (s Scale) nodeRate() simtime.Rate {
	return simtime.Rate(s.Racks/s.GratingPorts) * 50 * simtime.Gbps
}

// flows generates the §7 workload at the given load.
func (s Scale) flows(load, meanBytes float64, seed uint64) ([]workload.Flow, error) {
	cfg := workload.DefaultConfig(s.Racks, s.nodeRate(), load, s.Flows)
	cfg.MeanFlowBytes = meanBytes
	cfg.Seed = seed
	return workload.Generate(cfg)
}

// siriusOpts collects the knobs the sweeps vary.
type siriusOpts struct {
	mult         float64 // uplink multiplier
	mode         core.Mode
	q            int
	slot         phy.Slot
	trackReorder bool
}

func defaultOpts() siriusOpts {
	return siriusOpts{mult: 1.5, mode: core.ModeRequestGrant, q: 4, slot: phy.DefaultSlot()}
}

// runSirius runs the slot-level simulator at this scale.
func (s Scale) runSirius(flows []workload.Flow, o siriusOpts) (*core.Results, error) {
	return s.runSiriusMutated(flows, func(opts *siriusOpts, c *core.Config) { *opts = o })
}

// runSiriusMutated builds the default configuration, lets the caller
// tweak it (both the high-level options and the raw core config), and
// runs the simulator.
func (s Scale) runSiriusMutated(flows []workload.Flow, mutate func(*siriusOpts, *core.Config)) (*core.Results, error) {
	o := defaultOpts()
	cfg := core.Config{
		NormalizeRate: s.nodeRate(),
		Seed:          s.Seed,
	}
	mutate(&o, &cfg)
	groups := s.Racks / s.GratingPorts
	uplinks := int(math.Round(float64(groups) * o.mult))
	var sched schedule.Schedule
	var err error
	if uplinks%groups == 0 {
		sched, err = schedule.NewGrouped(s.Racks, s.GratingPorts, uplinks/groups)
	} else {
		sched, err = schedule.NewRotor(s.Racks, uplinks)
	}
	if err != nil {
		return nil, err
	}
	cfg.Schedule = sched
	cfg.Slot = o.slot
	cfg.Q = o.q
	if cfg.Mode == core.ModeRequestGrant {
		cfg.Mode = o.mode
	}
	cfg.TrackReorder = cfg.TrackReorder || o.trackReorder
	return core.Run(cfg, flows)
}

// runESN runs the idealized electrically-switched baseline. The fluid
// model itself has no latency floor, so it is charged a base RTT for the
// Clos path (multiple store-and-forward switch hops plus propagation),
// comparable to the paper's ESN (Ideal) FCT floor of ~1 us.
func (s Scale) runESN(flows []workload.Flow, oversub int) (*fluid.Results, error) {
	cfg := fluid.Config{
		Endpoints:    s.Racks,
		EndpointRate: s.nodeRate(),
		Oversub:      oversub,
		BaseRTT:      simtime.Microsecond,
	}
	if oversub > 1 {
		cfg.EndpointsPerRack = s.GratingPorts // aggregation pods
	}
	return fluid.Run(cfg, flows)
}

func fmtMS(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

// Fig9 reproduces the load sweep: 99th-percentile short-flow FCT and
// normalized goodput for SIRIUS, SIRIUS (IDEAL), ESN (Ideal) and
// ESN-OSUB (Ideal).
func Fig9(s Scale, loads []float64) (*Table, error) {
	t := &Table{
		Title: "Fig 9: short-flow p99 FCT (ms) and normalized goodput vs load",
		Note: "paper shape: Sirius ~= ESN (Ideal); ESN-OSUB much worse; " +
			"Sirius (Ideal) slightly faster at low load",
		Header: []string{"load",
			"sirius_fct", "siriusIdeal_fct", "esn_fct", "osub_fct",
			"sirius_gput", "siriusIdeal_gput", "esn_gput", "osub_gput"},
	}
	for _, load := range loads {
		flows, err := s.flows(load, 100e3, s.Seed)
		if err != nil {
			return nil, err
		}
		sir, err := s.runSirius(flows, defaultOpts())
		if err != nil {
			return nil, err
		}
		io := defaultOpts()
		io.mode = core.ModeIdeal
		ideal, err := s.runSirius(flows, io)
		if err != nil {
			return nil, err
		}
		esn, err := s.runESN(flows, 1)
		if err != nil {
			return nil, err
		}
		osub, err := s.runESN(flows, 3)
		if err != nil {
			return nil, err
		}
		t.Add(load,
			fmtMS(sir.FCTShort.Percentile(99)), fmtMS(ideal.FCTShort.Percentile(99)),
			fmtMS(esn.FCTShort.Percentile(99)), fmtMS(osub.FCTShort.Percentile(99)),
			sir.GoodputNorm, ideal.GoodputNorm, esn.GoodputNorm, osub.GoodputNorm)
	}
	return t, nil
}

// Fig10 reproduces the queue-bound sweep: FCT, goodput, peak aggregate
// queue occupancy and peak reorder buffer for Q in {2,4,8,16}.
func Fig10(s Scale, qs []int, loads []float64) (*Table, error) {
	t := &Table{
		Title: "Fig 10: effect of the queue bound Q",
		Note: "paper: Q=4 best FCT/goodput trade-off; peak aggregate queue " +
			"78.2 KB worst case; reorder buffer ~163 KB",
		Header: []string{"Q", "load", "short_p99_fct_ms", "goodput",
			"peak_node_queue_KB", "peak_reorder_KB"},
	}
	for _, q := range qs {
		for _, load := range loads {
			flows, err := s.flows(load, 100e3, s.Seed)
			if err != nil {
				return nil, err
			}
			o := defaultOpts()
			o.q = q
			o.trackReorder = true
			res, err := s.runSirius(flows, o)
			if err != nil {
				return nil, err
			}
			t.Add(q, load,
				fmtMS(res.FCTShort.Percentile(99)), res.GoodputNorm,
				float64(res.PeakNodeQueueBytes)/1024,
				float64(res.PeakReorderBytes)/1024)
		}
	}
	return t, nil
}

// Fig11 reproduces the guardband sweep at full load: as the guardband
// grows (with the slot scaled so it stays 10% of it), the epoch grows and
// queuing latency with it.
func Fig11(s Scale, guardsNS []float64) (*Table, error) {
	t := &Table{
		Title: "Fig 11: short-flow p99 FCT vs guardband (10% of slot), high load",
		Note:  "paper: FCT grows sharply beyond ~10 ns; motivates fast tuning + CDR",
		Header: []string{"guardband_ns", "cell_B", "slot_ns",
			"sirius_fct_ms", "siriusIdeal_fct_ms", "esn_fct_ms"},
	}
	// The paper runs this at nominal L = 100% without rescaling arrival
	// times to the realized Pareto sample mean, which corresponds to a
	// realized offered load around 0.6; since our generator rescales to
	// the exact offered load, we sweep at 0.6 to match the operating
	// point (at a rescaled 1.0 the smallest cells saturate the fabric
	// through header overhead and invert the curve).
	load := 0.6
	flows, err := s.flows(load, 100e3, s.Seed)
	if err != nil {
		return nil, err
	}
	esn, err := s.runESN(flows, 1)
	if err != nil {
		return nil, err
	}
	for _, g := range guardsNS {
		slot := phy.SlotForGuardband(50*simtime.Gbps,
			simtime.Duration(g*float64(simtime.Nanosecond)), 0.10)
		o := defaultOpts()
		o.slot = slot
		sir, err := s.runSirius(flows, o)
		if err != nil {
			return nil, err
		}
		o.mode = core.ModeIdeal
		ideal, err := s.runSirius(flows, o)
		if err != nil {
			return nil, err
		}
		t.Add(g, slot.CellBytes, slot.Duration().Nanoseconds(),
			fmtMS(sir.FCTShort.Percentile(99)),
			fmtMS(ideal.FCTShort.Percentile(99)),
			fmtMS(esn.FCTShort.Percentile(99)))
	}
	return t, nil
}

// Fig12 reproduces the uplink-provisioning sweep: goodput for 1x, 1.5x
// and 2x uplinks against the ESN.
func Fig12(s Scale, mults, loads []float64) (*Table, error) {
	t := &Table{
		Title: "Fig 12: normalized goodput vs load for 1x/1.5x/2x uplinks",
		Note:  "paper: 1.5x suffices to match ESN (Ideal); 1x loses ~20% at full load",
		Header: func() []string {
			h := []string{"load", "esn_gput"}
			for _, m := range mults {
				h = append(h, fmt.Sprintf("sirius_%gx", m))
			}
			return h
		}(),
	}
	for _, load := range loads {
		flows, err := s.flows(load, 100e3, s.Seed)
		if err != nil {
			return nil, err
		}
		esn, err := s.runESN(flows, 1)
		if err != nil {
			return nil, err
		}
		row := []interface{}{load, esn.GoodputNorm}
		for _, m := range mults {
			o := defaultOpts()
			o.mult = m
			res, err := s.runSirius(flows, o)
			if err != nil {
				return nil, err
			}
			row = append(row, res.GoodputNorm)
		}
		t.Add(row...)
	}
	return t, nil
}

// Fig13 reproduces the flow-size sweep: fixed-size cells hurt when the
// average flow is much smaller than a cell, and the gap closes as flows
// grow.
func Fig13(s Scale, meanBytes []float64, load float64) (*Table, error) {
	t := &Table{
		Title: "Fig 13: FCT and goodput vs average flow size",
		Note: "paper: at 512 B mean, cells cost ~2.3x FCT and ~1.7x goodput " +
			"vs ESN; by 16 KB the gap is ~1.2x/1.05x",
		Header: []string{"mean_flow", "sirius_fct_ms", "esn_fct_ms", "fct_ratio",
			"sirius_gput", "esn_gput", "gput_ratio"},
	}
	for _, mb := range meanBytes {
		flows, err := s.flows(load, mb, s.Seed+uint64(mb))
		if err != nil {
			return nil, err
		}
		sir, err := s.runSirius(flows, defaultOpts())
		if err != nil {
			return nil, err
		}
		esn, err := s.runESN(flows, 1)
		if err != nil {
			return nil, err
		}
		// Small-mean workloads have arrival windows comparable to the
		// fabric's base latency, so goodput is measured over the makespan.
		sp, ep := sir.FCTShort.Percentile(99), esn.FCTShort.Percentile(99)
		t.Add(fmt.Sprintf("%.0fB", mb), fmtMS(sp), fmtMS(ep), sp/ep,
			sir.MakespanGoodput, esn.MakespanGoodput,
			esn.MakespanGoodput/sir.MakespanGoodput)
	}
	return t, nil
}
