package exp

import (
	"fmt"
	"strings"
	"time"

	"sirius/internal/fault"
	"sirius/internal/telemetry"
	"sirius/internal/wire"
)

// Lifecycle is the fleet-lifecycle soak: one seeded, content-addressed
// fault plan interleaves every planned operation the fabric supports —
// live expansion, a maintenance drain, a re-add — with the reactive
// kinds it already survived (a crash, a receiver-sensitivity degrade
// window, a stall window), over a horizon long enough for each regime
// to reach steady state. The run executes twice at the same seed and
// the experiment fails unless both runs produce the identical
// fabric-observable outcome: per-node send/receive/bit counters,
// membership-change timelines, and the survivors' consensus failure
// view. It also fails unless /healthz was green outside the single
// injected crash incident: exactly one degraded->healthy excursion in
// the health history, and healthy at the end. Planned operations must
// not flip health at all (the drain and re-add relink quietly), so any
// extra transition is a bug, not noise.
func Lifecycle(seed uint64) (*Table, error) {
	if seed == 0 {
		seed = 42
	}
	const (
		nodes  = 6  // ports 0-3 are founders, 4-5 join live
		epochs = 64 // 4->6 grow, drain/re-add cycle, crash, then steady state
	)
	plan := &fault.Plan{Seed: seed, Events: []fault.Event{
		{Kind: fault.Expand, Node: 4, Epoch: 10},
		{Kind: fault.Expand, Node: 5, Epoch: 10},
		{Kind: fault.Degrade, Src: 2, Epoch: 16, Until: 22, FlipProb: 2e-3},
		{Kind: fault.Drain, Node: 1, Epoch: 24},
		{Kind: fault.Stall, Src: 3, Epoch: 30, Until: 34, DelayMicros: 200},
		{Kind: fault.Readd, Node: 1, Epoch: 38},
		{Kind: fault.Crash, Node: 0, Epoch: 50},
	}}

	run := func() (*wire.FaultStats, *telemetry.Health, error) {
		h := telemetry.NewHealth(64)
		fs, err := wire.RunPrototypeCfg(wire.PrototypeConfig{
			Nodes:        nodes,
			Epochs:       epochs,
			PayloadBytes: 64,
			Plan:         plan,
			// Localhost: 400ms per silent gate keeps the crash's three
			// suspicion waits under two seconds.
			SuspectTimeout: 400 * time.Millisecond,
			Telemetry:      telemetry.NewRegistry(),
			Health:         h,
		})
		return fs, h, err
	}

	fs, h, err := run()
	if err != nil {
		return nil, err
	}
	fs2, _, err := run()
	if err != nil {
		return nil, fmt.Errorf("lifecycle replay: %w", err)
	}
	fp, fp2 := lifecycleFingerprint(fs), lifecycleFingerprint(fs2)
	if fp != fp2 {
		return nil, fmt.Errorf("lifecycle soak diverged on replay at seed %d:\nrun 1: %s\nrun 2: %s",
			seed, fp, fp2)
	}

	// /healthz contract: green everywhere outside the crash incident.
	// The planned operations never flip it, the crash flips it exactly
	// once (suspicion sets the condition, the schedule switch clears
	// it), so the whole soak records one degraded->healthy excursion.
	hist := h.History()
	if !h.Healthy() {
		return nil, fmt.Errorf("lifecycle soak: /healthz degraded after the run: %+v", h.Status().Conditions)
	}
	if !h.SawFlap() {
		return nil, fmt.Errorf("lifecycle soak: crash incident never surfaced on /healthz")
	}
	if len(hist) != 2 {
		return nil, fmt.Errorf("lifecycle soak: /healthz flipped outside the crash incident: %d transitions, want 2 (%+v)",
			len(hist), hist)
	}

	// Membership milestones, read off a founder's applied-change
	// timeline (replay equality already proved every full-horizon node
	// holds the same one).
	var grewAt, drainedAt, readdedAt int = -1, -1, -1
	for _, st := range fs.Nodes {
		if st.Node != 2 {
			continue
		}
		for _, ch := range st.Changes {
			switch {
			case ch.Kind == "join" && ch.Node >= 4 && grewAt < 0:
				grewAt = ch.Epoch
			case ch.Kind == "leave":
				drainedAt = ch.Epoch
			case ch.Kind == "join" && ch.Node == 1:
				readdedAt = ch.Epoch
			}
		}
	}

	t := &Table{
		Title: "lifecycle soak: expansion, drain/re-add, crash and load shifts at one seed",
		Note: "planned operations lose nothing and never flip /healthz; " +
			"the crash is the only incident; the run replays byte-identically",
		Header: []string{"metric", "value"},
	}
	t.Add("plan hash", fs.PlanHash)
	t.Add("plan", planSummary(plan))
	t.Add("founders / final members", fmt.Sprintf("%d / %d", 4, fs.Survivors))
	t.Add("epoch horizon", epochs)
	t.Add("fabric grew 4->6 at epoch", grewAt)
	t.Add("node 1 drained at epoch", drainedAt)
	t.Add("node 1 re-added at epoch", readdedAt)
	t.Add("node 0 crashed at epoch", fs.KillEpoch)
	t.Add("crash suspect/confirm/switch", fmt.Sprintf("%d / %d / %d",
		fs.SuspectEpoch, fs.ConfirmEpoch, fs.SwitchEpoch))
	t.Add("frames routed", fs.Routed)
	t.Add("survivor cells received", fs.Cells)
	t.Add("survivor BER", fs.BER)
	t.Add("post-FEC error-free", fs.ErrFree)
	t.Add("frames lost to crash window", fs.Dropped)
	t.Add("healthz excursions (want 1)", len(hist)/2)
	t.Add("healthz green at end", h.Healthy())
	t.Add("replay identical at seed", fmt.Sprintf("true (seed %d)", seed))
	return t, nil
}

// lifecycleFingerprint flattens every deterministic observable of a soak
// run into one comparable string: routing totals, the survivors' BER
// inputs, the consensus failure view, and each node's counters and
// membership-change timeline. The emulator's dropped-frame counter is
// deliberately excluded — frames addressed to a crashed port race the
// kernel's RST at the socket boundary, so the split between
// "written into a dying socket" and "counted dropped" is
// timing-dependent even though the surviving fabric's state is not.
func lifecycleFingerprint(fs *wire.FaultStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan=%s routed=%d cells=%d ber=%.17g grey=%d survivors=%d failures=%+v",
		fs.PlanHash, fs.Routed, fs.Cells, fs.BER, fs.GreyDropped, fs.Survivors, fs.Failures)
	for _, st := range fs.Nodes {
		fmt.Fprintf(&b, " | n%d sent=%d rx=%d bits=%d bitErrs=%d crash=%t eject=%t drain=%t rejoin=%d joinedAt=%d changes=%+v",
			st.Node, st.Sent, st.Received, st.Bits, st.BitErrors,
			st.Crashed, st.Ejected, st.Drained, st.Rejoins, st.JoinedAt, st.Changes)
	}
	return b.String()
}

// planSummary renders a fault plan's events as one compact line.
func planSummary(p *fault.Plan) string {
	parts := make([]string, 0, len(p.Events))
	for _, e := range p.Events {
		switch e.Kind {
		case fault.Degrade:
			parts = append(parts, fmt.Sprintf("%s src%d@[%d,%d)", e.Kind, e.Src, e.Epoch, e.Until))
		case fault.Stall:
			parts = append(parts, fmt.Sprintf("%s src%d@[%d,%d)", e.Kind, e.Src, e.Epoch, e.Until))
		case fault.Grey:
			parts = append(parts, fmt.Sprintf("%s %d->%d@[%d,%d)", e.Kind, e.Src, e.Dst, e.Epoch, e.Until))
		default:
			parts = append(parts, fmt.Sprintf("%s %d@%d", e.Kind, e.Node, e.Epoch))
		}
	}
	return strings.Join(parts, ", ")
}
