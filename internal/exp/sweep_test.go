package exp

import (
	"context"
	"testing"
	"time"

	"sirius/internal/sweep"
)

// TestSweepDeterminism is the engine's acceptance gate at the experiment
// layer: the same sweep with the same root seed must produce byte-for-byte
// identical tables serially and on 4 workers.
func TestSweepDeterminism(t *testing.T) {
	s := TinyScale()
	loads := []float64{0.25, 0.5, 0.75}

	run := func(parallel int) string {
		t.Helper()
		rn := &sweep.Runner{Parallel: parallel, RootSeed: s.Seed}
		tab, err := Fig9(context.Background(), rn, s, loads)
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	serial := run(1)
	for i := 0; i < 2; i++ { // twice: completion order varies between runs
		if par := run(4); par != serial {
			t.Fatalf("parallel table diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				serial, par)
		}
	}
	// The nil-runner convenience path matches too (it roots at s.Seed).
	tab, err := Fig9(context.Background(), nil, s, loads)
	if err != nil {
		t.Fatal(err)
	}
	if tab.String() != serial {
		t.Fatal("nil-runner table diverged from explicit serial runner")
	}

	// A different root seed changes the table (the substreams are real).
	rn := &sweep.Runner{Parallel: 2, RootSeed: s.Seed + 1}
	other, err := Fig9(context.Background(), rn, s, loads)
	if err != nil {
		t.Fatal(err)
	}
	if other.String() == serial {
		t.Fatal("root seed change did not change the table")
	}
}

// TestSweepCacheRoundTrip checks the warm path end to end: a second run
// against the same cache replays every point, produces the identical
// table, and is dramatically faster.
func TestSweepCacheRoundTrip(t *testing.T) {
	s := TinyScale()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rn := &sweep.Runner{Parallel: 2, RootSeed: s.Seed, Cache: cache}

	t0 := time.Now()
	cold, err := Fig10(context.Background(), rn, s, []int{2, 4}, []float64{0.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(t0)

	t0 = time.Now()
	warm, err := Fig10(context.Background(), rn, s, []int{2, 4}, []float64{0.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	warmDur := time.Since(t0)

	if cold.String() != warm.String() {
		t.Fatal("cached table differs from computed table")
	}
	mans := rn.Manifests()
	if len(mans) != 2 {
		t.Fatalf("manifests = %d", len(mans))
	}
	if mans[0].CacheHit != 0 || mans[1].CacheHit != 4 {
		t.Fatalf("cache hits: cold=%d warm=%d, want 0 and 4", mans[0].CacheHit, mans[1].CacheHit)
	}
	// Warm must be much faster; be lenient under -race and loaded CI.
	if warmDur > coldDur/2 {
		t.Errorf("warm run (%v) not meaningfully faster than cold (%v)", warmDur, coldDur)
	}
}

// TestSweepCancellation: a cancelled context aborts a sweep experiment
// and surfaces the context error.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig9(ctx, nil, TinyScale(), []float64{0.5}); err == nil {
		t.Fatal("cancelled sweep succeeded")
	}
}
