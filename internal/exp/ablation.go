package exp

import (
	"sirius/internal/core"
)

// Ablation prices the design choices of DESIGN.md §5 on one workload:
// the request/grant protocol against its oracle variants, the direct-path
// shortcut, and routing disciplines.
func Ablation(s Scale, load float64) (*Table, error) {
	t := &Table{
		Title: "ablations: pricing the design choices",
		Note: "each row changes exactly one thing relative to SIRIUS " +
			"(request/grant, piggybacked control, direct path allowed, VLB)",
		Header: []string{"variant", "goodput", "short_p99_fct_ms", "direct_frac"},
	}
	flows, err := s.flows(load, 100e3, s.Seed)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name   string
		mutate func(*siriusOpts, *core.Config)
	}{
		{"SIRIUS (baseline)", func(o *siriusOpts, c *core.Config) {}},
		{"no direct path", func(o *siriusOpts, c *core.Config) { c.NoDirect = true }},
		{"instant control plane", func(o *siriusOpts, c *core.Config) { c.InstantControl = true }},
		{"oracle back-pressure", func(o *siriusOpts, c *core.Config) { c.Mode = core.ModeIdeal }},
		{"direct-only (no VLB)", func(o *siriusOpts, c *core.Config) { c.Mode = core.ModeDirect }},
	}
	for _, v := range variants {
		res, err := s.runSiriusMutated(flows, v.mutate)
		if err != nil {
			return nil, err
		}
		t.Add(v.name, res.GoodputNorm, fmtMS(p99OrNaN(&res.FCTShort)), res.DirectFraction)
	}
	return t, nil
}
