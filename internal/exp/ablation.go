package exp

import (
	"context"
	"fmt"

	"sirius/internal/core"
	"sirius/internal/sweep"
)

// Ablation prices the design choices of DESIGN.md §5 on one workload:
// the request/grant protocol against its oracle variants, the direct-path
// shortcut, and routing disciplines. Each variant is one sweep point —
// they execute in parallel on the runner's pool — but every variant keeps
// the scale seed for both the workload and the simulator, because a fair
// ablation must change exactly one knob and share all randomness.
func Ablation(ctx context.Context, rn *sweep.Runner, s Scale, load float64) (*Table, error) {
	s = s.arbitrateShards(rn)
	t := &Table{
		Title: "ablations: pricing the design choices",
		Note: "each row changes exactly one thing relative to SIRIUS " +
			"(request/grant, piggybacked control, direct path allowed, VLB)",
		Header: []string{"variant", "goodput", "short_p99_fct_ms", "direct_frac"},
	}
	variants := []struct {
		name   string
		mutate func(*siriusOpts, *core.Config)
	}{
		{"SIRIUS (baseline)", func(o *siriusOpts, c *core.Config) {}},
		{"no direct path", func(o *siriusOpts, c *core.Config) { c.NoDirect = true }},
		{"instant control plane", func(o *siriusOpts, c *core.Config) { c.InstantControl = true }},
		{"oracle back-pressure", func(o *siriusOpts, c *core.Config) { c.Mode = core.ModeIdeal }},
		{"direct-only (no VLB)", func(o *siriusOpts, c *core.Config) { c.Mode = core.ModeDirect }},
	}
	pts := make([]sweep.Point, len(variants))
	for i, v := range variants {
		v := v
		pts[i] = sweep.Point{
			Key: fmt.Sprintf("ablation|%s|load=%g|variant=%s", s.keyID(), load, v.name),
			Run: func(ctx context.Context, _ uint64) ([][]string, error) {
				flows, err := s.flows(load, 100e3, s.Seed)
				if err != nil {
					return nil, err
				}
				res, err := s.runSiriusMutated(ctx, flows, v.mutate)
				if err != nil {
					return nil, err
				}
				return [][]string{row(v.name, res.GoodputNorm,
					fmtMS(p99OrNaN(&res.FCTShort)), res.DirectFraction)}, nil
			},
		}
	}
	if err := t.collect(runOn(ctx, rn, s, "ablation", pts)); err != nil {
		return nil, err
	}
	return t, nil
}
