package exp

import (
	"context"
	"fmt"
	"os"
	"sort"

	"sirius/internal/core"
	"sirius/internal/workload"
)

// FromTrace runs the four §7 systems on a user-supplied flow trace
// (workload.ReadCSV format): replaying production traces through the
// simulators is the intended path for adopting users. ctx cancels the
// underlying simulations.
func FromTrace(ctx context.Context, flows []workload.Flow, gratingPorts int, seed uint64) (*Table, error) {
	if len(flows) == 0 {
		return nil, fmt.Errorf("exp: empty trace")
	}
	maxNode := 0
	for _, f := range flows {
		if f.Src > maxNode {
			maxNode = f.Src
		}
		if f.Dst > maxNode {
			maxNode = f.Dst
		}
	}
	if gratingPorts < 1 {
		gratingPorts = 8
	}
	// Round the fabric up to a whole number of grating groups; surplus
	// nodes simply stay idle (and serve as intermediates).
	nodes := ((maxNode + gratingPorts) / gratingPorts) * gratingPorts
	if nodes < 2*gratingPorts {
		nodes = 2 * gratingPorts
	}
	s := Scale{Racks: nodes, GratingPorts: gratingPorts, Flows: len(flows), Seed: seed}

	ordered := make([]workload.Flow, len(flows))
	copy(ordered, flows)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	for i := range ordered {
		ordered[i].ID = i
	}

	t := &Table{
		Title: fmt.Sprintf("custom trace: %d flows across %d nodes", len(ordered), nodes),
		Note:  "same metrics as Fig 9, on your trace; goodput over the makespan (robust for short traces)",
		Header: []string{"system", "completed", "goodput",
			"short_p99_fct_ms", "all_p99_fct_ms"},
	}
	sir, err := s.runSirius(ctx, ordered, defaultOpts())
	if err != nil {
		return nil, err
	}
	addCoreRow(t, "SIRIUS", sir)
	io := defaultOpts()
	io.mode = core.ModeIdeal
	ideal, err := s.runSirius(ctx, ordered, io)
	if err != nil {
		return nil, err
	}
	addCoreRow(t, "SIRIUS (IDEAL)", ideal)
	esn, err := s.runESN(ctx, ordered, 1)
	if err != nil {
		return nil, err
	}
	t.Add("ESN (Ideal)", esn.Completed, esn.MakespanGoodput,
		fmtMS(p99OrNaN(&esn.FCTShort)), fmtMS(p99OrNaN(&esn.FCTAll)))
	osub, err := s.runESN(ctx, ordered, 3)
	if err != nil {
		return nil, err
	}
	t.Add("ESN-OSUB (Ideal)", osub.Completed, osub.MakespanGoodput,
		fmtMS(p99OrNaN(&osub.FCTShort)), fmtMS(p99OrNaN(&osub.FCTAll)))
	return t, nil
}

func addCoreRow(t *Table, name string, r *core.Results) {
	t.Add(name, r.Completed, r.MakespanGoodput,
		fmtMS(p99OrNaN(&r.FCTShort)), fmtMS(p99OrNaN(&r.FCTAll)))
}

// p99OrNaN guards empty samples.
func p99OrNaN(s interface {
	Count() int
	Percentile(float64) float64
}) float64 {
	if s.Count() == 0 {
		return nan()
	}
	return s.Percentile(99)
}

func nan() float64 { var z float64; return z / z }

// FromTraceFile loads a CSV trace and runs FromTrace.
func FromTraceFile(ctx context.Context, path string, gratingPorts int, seed uint64) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	flows, err := workload.ReadCSV(f)
	if err != nil {
		return nil, err
	}
	return FromTrace(ctx, flows, gratingPorts, seed)
}
