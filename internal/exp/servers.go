package exp

import (
	"context"
	"fmt"

	"sirius/internal/dc"
	"sirius/internal/sweep"
	"sirius/internal/workload"
)

// ServerLevel runs the rack-based deployment at server granularity —
// the configuration the paper's §7 numbers are actually measured on
// (racks of servers, intra-rack traffic switched electrically, server
// goodput as the metric). It sweeps the offered load, one sweep point
// per load.
func ServerLevel(ctx context.Context, rn *sweep.Runner, s Scale, serversPerRack int, loads []float64) (*Table, error) {
	t := &Table{
		Title: "§7 deployment: server-level metrics (rack-based Sirius)",
		Note: "intra-rack traffic stays electrical; inter-rack crosses the " +
			"fabric via the paced LOCAL buffer; goodput normalized to server NICs",
		Header: []string{"load", "flows", "intra", "inter",
			"server_goodput", "short_p99_fct_ms"},
	}
	// Parallelism budget: when the sweep itself fans points out across
	// GOMAXPROCS workers, each point keeps its rack loop serial so the
	// two levels do not oversubscribe the machine; a serial sweep hands
	// the whole budget to dc's rack-parallel composition instead. The
	// result is identical either way (dc's parallel merge is
	// byte-identical to serial by contract).
	rackWorkers := 1
	if rn == nil || rn.Parallel == 1 {
		rackWorkers = 0 // GOMAXPROCS
	}
	pts := make([]sweep.Point, len(loads))
	for i, load := range loads {
		load := load
		pts[i] = sweep.Point{
			Key: fmt.Sprintf("servers|%s|spr=%d|load=%g", s.keyID(), serversPerRack, load),
			Run: func(ctx context.Context, seed uint64) ([][]string, error) {
				cfg := dc.DefaultConfig(s.Racks)
				cfg.GratingPorts = s.GratingPorts
				cfg.ServersPerRack = serversPerRack
				cfg.Seed = seed
				cfg.Parallel = rackWorkers
				servers := cfg.Servers()
				// Uniform server-level flows at the requested load against the
				// aggregate server bandwidth.
				wcfg := workload.DefaultConfig(servers, cfg.ServerRate, load, s.Flows)
				wcfg.Seed = s.Seed
				flows, err := workload.Generate(wcfg)
				if err != nil {
					return nil, err
				}
				// workload.Generate never emits self flows, but server-level
				// endpoints may land in the same rack — that is the point.
				res, err := dc.RunContext(ctx, cfg, flows)
				if err != nil {
					return nil, err
				}
				return [][]string{row(load, res.Flows, res.IntraRack, res.InterRack,
					res.ServerGoodput, fmtMS(res.FCTShort.Percentile(99)))}, nil
			},
		}
	}
	if err := t.collect(runOn(ctx, rn, s, "servers", pts)); err != nil {
		return nil, err
	}
	return t, nil
}
