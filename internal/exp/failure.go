package exp

import (
	"context"
	"fmt"

	"sirius/internal/core"
	"sirius/internal/health"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/sweep"
	"sirius/internal/workload"
)

// Failure reproduces the §4.5 fault-tolerance analysis: with f failed
// nodes, the static schedule wastes the slots touching them (each
// survivor loses a proportional f/N of bandwidth), while a compacted
// schedule — the consistent datacenter-wide update the paper describes —
// regains the loss. Detection itself takes a handful of epochs (package
// health). One sweep point per failure count; the degraded and compacted
// runs inside a point share the point's substream seed so the comparison
// prices the schedule, not the randomness.
func Failure(ctx context.Context, rn *sweep.Runner, s Scale, failures []int) (*Table, error) {
	s = s.arbitrateShards(rn)
	t := &Table{
		Title: "§4.5: node failures — degraded vs compacted schedule",
		Note: "paper: failures cost proportional bandwidth; schedule " +
			"compaction regains it; detection takes a few microseconds",
		Header: []string{"failed", "live_flows", "degraded_gput", "compacted_gput",
			"detect_epochs", "detect_time"},
	}
	groups := s.Racks / s.GratingPorts
	base, err := schedule.NewGrouped(s.Racks, s.GratingPorts, 1)
	if err != nil {
		return nil, err
	}
	slot := defaultOpts().slot

	pts := make([]sweep.Point, len(failures))
	for i, f := range failures {
		f := f
		pts[i] = sweep.Point{
			Key: fmt.Sprintf("failure|%s|failed=%d", s.keyID(), f),
			Run: func(ctx context.Context, seed uint64) ([][]string, error) {
				failed := make([]int, f)
				failedSet := make(map[int]bool, f)
				for i := 0; i < f; i++ {
					// Spread failures across groups.
					failed[i] = (i*groups + i) % s.Racks
					for failedSet[failed[i]] {
						failed[i] = (failed[i] + 1) % s.Racks
					}
					failedSet[failed[i]] = true
				}

				// Traffic among survivors only (the same flow set for both runs).
				all, err := s.flows(0.9, 100e3, s.Seed)
				if err != nil {
					return nil, err
				}
				var flows []workload.Flow
				for _, fl := range all {
					if !failedSet[fl.Src] && !failedSet[fl.Dst] {
						fl.ID = len(flows)
						flows = append(flows, fl)
					}
				}

				// Degraded: dark slots, failed intermediates excluded.
				var degraded schedule.Schedule = base
				if f > 0 {
					degraded, err = schedule.NewDegraded(base, failed)
					if err != nil {
						return nil, err
					}
				}
				degRes, err := core.RunContext(ctx, core.Config{
					Schedule:      degraded,
					Slot:          slot,
					Q:             4,
					NormalizeRate: s.nodeRate(),
					FailedNodes:   failed,
					Seed:          seed,
				}, flows)
				if err != nil {
					return nil, err
				}

				// Compacted: a fresh rotor over the survivors; flow endpoints are
				// renumbered into the compact space.
				compactGput := degRes.GoodputNorm
				if f > 0 {
					compact, live, err := schedule.Compact(base, failed)
					if err != nil {
						return nil, err
					}
					toCompact := make(map[int]int, len(live))
					for idx, orig := range live {
						toCompact[orig] = idx
					}
					cflows := make([]workload.Flow, len(flows))
					for i, fl := range flows {
						fl.Src = toCompact[fl.Src]
						fl.Dst = toCompact[fl.Dst]
						cflows[i] = fl
					}
					cres, err := core.RunContext(ctx, core.Config{
						Schedule:      compact,
						Slot:          slot,
						Q:             4,
						NormalizeRate: s.nodeRate(),
						Seed:          seed,
					}, cflows)
					if err != nil {
						return nil, err
					}
					compactGput = cres.GoodputNorm
				}

				// Detection latency for this failure set.
				detectEpochs := 0
				if f > 0 {
					det, err := health.New(health.DefaultConfig(s.Racks))
					if err != nil {
						return nil, err
					}
					for e := 0; e < 100; e++ {
						confirmed := det.Epoch(func(obs, peer int) bool {
							return !failedSet[peer]
						})
						for range confirmed {
							if l := det.DetectionLatency(failed[0]); l > detectEpochs {
								detectEpochs = l
							}
						}
						if det.Confirmed(failed[0]) {
							break
						}
					}
				}
				epochLen := slot.Duration() * simtime.Duration(base.SlotsPerEpoch())
				return [][]string{row(f, len(flows), degRes.GoodputNorm, compactGput,
					detectEpochs, fmt.Sprintf("%v", epochLen*simtime.Duration(detectEpochs)))}, nil
			},
		}
	}
	if err := t.collect(runOn(ctx, rn, s, "failure", pts)); err != nil {
		return nil, err
	}
	return t, nil
}
