package exp

import (
	"context"
	"testing"
)

// TestArchCompareShapes pins the grid layout and the per-family
// invariants: one row per family per grid point, reconfiguration
// overhead only where a dynamic planner pays it, and a sane fraction.
func TestArchCompareShapes(t *testing.T) {
	s := TinyScale()
	tab, err := ArchCompare(context.Background(), nil, s,
		[]float64{0.5}, []float64{100e3}, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(ArchFamilies); len(tab.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), want)
	}
	for i, r := range tab.Rows {
		if got, want := r[3], ArchFamilies[i%len(ArchFamilies)]; got != want {
			t.Fatalf("row %d arch = %q, want %q", i, got, want)
		}
		frac := cellF(t, tab, i, 6)
		if frac < 0 || frac >= 1 {
			t.Errorf("row %d (%s): reconfig_frac %v outside [0,1)", i, r[3], frac)
		}
		switch r[3] {
		case "esn", "static":
			if frac != 0 {
				t.Errorf("row %d (%s): reconfig_frac %v, want 0", i, r[3], frac)
			}
		default:
			if frac == 0 {
				t.Errorf("row %d (%s): dynamic family paid no reconfiguration", i, r[3])
			}
		}
	}
}

// TestArchCompareReplays is the experiment-level determinism check: two
// independent runs of the same grid must produce byte-identical tables
// (fresh planner instances per point, no shared state).
func TestArchCompareReplays(t *testing.T) {
	s := TinyScale()
	run := func() string {
		t.Helper()
		tab, err := ArchCompare(context.Background(), nil, s,
			[]float64{0.75}, []float64{4096}, []float64{0.5})
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("archcompare replay diverged\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}

// TestArchPlannerGeometry checks every family shares one fabric budget
// at a given scale — the comparison's like-for-like premise.
func TestArchPlannerGeometry(t *testing.T) {
	s := TinyScale()
	n, up, slots := s.archGeometry()
	for _, fam := range []string{"rotorrr", "pulse", "negotiator"} {
		p, _, err := s.archPlanner(fam)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if p.Nodes() != n || p.Uplinks() != up || p.SlotsPerEpoch() != slots {
			t.Errorf("%s geometry (%d,%d,%d), want (%d,%d,%d)", fam,
				p.Nodes(), p.Uplinks(), p.SlotsPerEpoch(), n, up, slots)
		}
	}
	if _, _, err := s.archPlanner("nope"); err == nil {
		t.Error("unknown family accepted")
	}
	if _, _, err := s.archPlanner("static"); err != nil {
		t.Errorf("static: %v", err)
	}
}
