package exp

import (
	"fmt"
	"math"

	"sirius/internal/laser"
	"sirius/internal/metrics"
	"sirius/internal/optics"
	"sirius/internal/phy"
	"sirius/internal/power"
	"sirius/internal/simtime"
	"sirius/internal/timesync"
	"sirius/internal/wire"
	"sirius/internal/workload"
)

// Fig2a reproduces the scale-tax curve (network power per unit bandwidth
// vs. network scale).
func Fig2a() *Table {
	t := &Table{
		Title:  "Fig 2a: scale tax — network power per bisection bandwidth",
		Note:   "paper anchors: 50 W/Tbps direct, 487 W/Tbps at 4 switch layers",
		Header: []string{"hosts", "layers", "W/Tbps"},
	}
	for _, pt := range power.DefaultParams().Fig2a() {
		t.Add(pt.Hosts, pt.Layers, pt.WattsTbps)
	}
	return t
}

// Fig6a reproduces the power-ratio sweep over the tunable/fixed laser
// power ratio.
func Fig6a() *Table {
	t := &Table{
		Title:  "Fig 6a: Sirius/ESN power vs tunable-to-fixed laser power ratio",
		Note:   "paper: 23-26% at 3-5x laser power",
		Header: []string{"laser_ratio", "sirius/esn_power"},
	}
	for _, pt := range power.DefaultParams().Fig6a([]float64{1, 3, 5, 7, 10, 20}) {
		t.Add(pt.X, pt.Ratio)
	}
	return t
}

// Fig6b reproduces the cost-ratio sweep over the grating cost fraction.
func Fig6b() *Table {
	t := &Table{
		Title:  "Fig 6b: Sirius/ESN cost vs grating cost (fraction of switch cost)",
		Note:   "paper: 28% vs non-blocking and 53% vs 3:1 oversubscribed at 25%",
		Header: []string{"grating_frac", "vs_nonblocking", "vs_oversub_3to1"},
	}
	nb, os := power.DefaultParams().Fig6b([]float64{0.05, 0.10, 0.25, 0.50, 0.75, 1.0})
	for i := range nb {
		t.Add(nb[i].X, nb[i].Ratio, os[i].Ratio)
	}
	return t
}

// Tuning reproduces the §3.2 damped-DSDBR statistics over all 12,432
// ordered wavelength pairs, and the disaggregated designs' worst cases.
func Tuning() *Table {
	t := &Table{
		Title:  "§3.2/§6: laser tuning latency",
		Note:   "paper: damped DSDBR median 14 ns / worst 92 ns; SOA chip < 912 ps",
		Header: []string{"laser", "channels", "pairs", "median", "mean", "worst"},
	}
	add := func(name string, l laser.Tuner) {
		s := laser.MeasurePairs(l)
		t.Add(name, l.Channels(), s.Pairs, s.Median.String(), s.Mean.String(), s.Worst.String())
	}
	add("DSDBR (stock drive)", laser.NewDSDBR())
	add("DSDBR (damped drive)", laser.NewDampedDSDBR())
	add("fixed laser bank (SOA)", laser.NewFixedBank(19, 1))
	add("comb + SOA", laser.NewComb(100, 3))
	bank := laser.NewTunableBank(2)
	s := laser.MeasurePairs(bank)
	t.Add("tunable bank (pipelined)", bank.Channels(), s.Pairs, s.Median.String(), s.Mean.String(), s.Worst.String())
	return t
}

// Fig8a reproduces the SOA rise/fall-time CDF of the 19-gate chip.
func Fig8a() *Table {
	t := &Table{
		Title:  "Fig 8a: CDF of SOA rise and fall times",
		Note:   "paper worst cases: rise 527 ps, fall 912 ps",
		Header: []string{"percentile", "rise_ps", "fall_ps"},
	}
	bank := laser.NewFixedBank(19, 1)
	var rise, fall metrics.Sample
	for _, soa := range bank.SOAs() {
		rise.Add(float64(soa.Rise.Picoseconds()))
		fall.Add(float64(soa.Fall.Picoseconds()))
	}
	for _, p := range []float64{10, 25, 50, 75, 90, 100} {
		t.Add(p, rise.Percentile(p), fall.Percentile(p))
	}
	return t
}

// Fig8b reproduces the adjacent-vs-distant wavelength switching traces.
func Fig8b() *Table {
	t := &Table{
		Title:  "Fig 8b: switching between adjacent and distant wavelengths",
		Note:   "tuning latency is distance-independent with the SOA bank (< 900 ps both)",
		Header: []string{"pair", "from_nm", "to_nm", "channels_apart", "tune_time"},
	}
	grid := optics.DefaultGrid()
	bank := laser.NewFixedBank(grid.Channels, 1)
	report := func(name string, fromNM, toNM float64) {
		from, to := grid.Nearest(fromNM), grid.Nearest(toNM)
		d := int(to) - int(from)
		if d < 0 {
			d = -d
		}
		tune := bank.TuneTime(from, to)
		t.Add(name, fmt.Sprintf("%.3f", grid.NM(from)), fmt.Sprintf("%.3f", grid.NM(to)), d, tune.String())
	}
	report("adjacent", 1552.524, 1552.926)
	report("distant", 1550.116, 1559.389)
	return t
}

// Fig8c reproduces the burst waveform: consecutive cell slots with the
// 3.84 ns guardband.
func Fig8c() *Table {
	t := &Table{
		Title:  "Fig 8c: burst waveform over consecutive cell slots",
		Note:   "Sirius v2 guardband: 3.84 ns (laser tuning + sync + CDR + preamble)",
		Header: []string{"metric", "value"},
	}
	budget := phy.SiriusV2Budget()
	slot := phy.Slot{LineRate: 50 * simtime.Gbps, CellBytes: 562, Guardband: budget.Total()}
	trace := phy.BurstWaveform(slot, 3, 100*simtime.Picosecond)
	low := 0
	for _, w := range trace {
		if w.Intensity == 0 {
			low++
		}
	}
	t.Add("guardband", budget.Total().String())
	t.Add("laser tuning", budget.LaserTuning.String())
	t.Add("sync error", budget.SyncError.String())
	t.Add("CDR lock", budget.CDRLock.String())
	t.Add("preamble", budget.Preamble.String())
	t.Add("slot", slot.Duration().String())
	t.Add("guard fraction of slot", fmt.Sprintf("%.3f", slot.Overhead()))
	t.Add("trace samples (3 slots)", len(trace))
	t.Add("dark samples", low)
	return t
}

// Fig8d reproduces the BER-vs-received-power waterfall for four
// wavelengths.
func Fig8d() *Table {
	t := &Table{
		Title:  "Fig 8d: BER vs received power for four switching wavelengths",
		Note:   "paper: post-FEC error-free at -8 dBm on all channels",
		Header: []string{"power_dBm", "ch1_log10BER", "ch2_log10BER", "ch3_log10BER", "ch4_log10BER"},
	}
	m := optics.DefaultBERModel()
	m.ChannelPenaltyDB = map[optics.Wavelength]float64{0: 0, 1: 0.3, 2: 0.55, 3: 0.8}
	for p := -10.0; p <= -2; p += 1 {
		row := []interface{}{p}
		for ch := optics.Wavelength(0); ch < 4; ch++ {
			row = append(row, math.Log10(m.BER(p, ch)))
		}
		t.Add(row...)
	}
	return t
}

// Timesync reproduces the §6 synchronization experiment: maximum phase
// deviation across a long run with rotating leaders.
func Timesync(epochs int) *Table {
	t := &Table{
		Title:  "§6: time-synchronization accuracy",
		Note:   "paper: maximum deviation ±5 ps over 24 h (prototype)",
		Header: []string{"nodes", "epochs", "max_spread_ps", "end_spread_ps"},
	}
	for _, n := range []int{2, 8, 32} {
		nw, err := timesync.NewNetwork(timesync.DefaultConfig(n))
		if err != nil {
			panic(err)
		}
		s := nw.Run(epochs, epochs/20)
		t.Add(n, epochs, fmt.Sprintf("±%.1f", s.MaxSpreadPS/2), fmt.Sprintf("±%.1f", s.EndSpreadPS/2))
	}
	return t
}

// LinkBudget reproduces the §4.5 optical budget arithmetic.
func LinkBudget() *Table {
	t := &Table{
		Title:  "§4.5: link budget and laser sharing",
		Header: []string{"metric", "value"},
	}
	b := optics.DefaultLinkBudget()
	t.Add("laser output", fmt.Sprintf("%.0f dBm (%.0f mW)", b.LaserOutputDBm, optics.DBmToMilliwatts(b.LaserOutputDBm)))
	t.Add("grating insertion loss", fmt.Sprintf("%.0f dB", b.GratingLossDB))
	t.Add("coupling+modulator loss", fmt.Sprintf("%.0f dB", b.CouplingModLossDB))
	t.Add("margin", fmt.Sprintf("%.0f dB", b.MarginDB))
	t.Add("receiver sensitivity", fmt.Sprintf("%.0f dBm (%.2f mW)", b.ReceiverSensDBm, optics.DBmToMilliwatts(b.ReceiverSensDBm)))
	t.Add("required laser power", fmt.Sprintf("%.1f dBm", b.RequiredLaserDBm()))
	t.Add("max transceivers per laser", b.MaxSplit())
	return t
}

// Burst reproduces the §2.2 burstiness analysis: the production
// packet-size mixture and the guardband target it implies.
func Burst() *Table {
	t := &Table{
		Title:  "§2.2: packet-size mixture and the 10 ns guardband target",
		Note:   "paper: 34% of packets < 128 B, 97.8% <= 576 B; <10% overhead needs <~10 ns",
		Header: []string{"metric", "value"},
	}
	mix := workload.NewPacketMix(1)
	s := mix.MeasureMix(500_000)
	t.Add("packets sampled", s.N)
	t.Add("fraction < 128 B", fmt.Sprintf("%.3f", s.FracUnder128))
	t.Add("fraction <= 576 B", fmt.Sprintf("%.3f", s.FracUpTo576))
	t.Add("mean size", fmt.Sprintf("%.0f B", s.MeanBytes))
	g := phy.MaxGuardbandForOverhead(50*simtime.Gbps, 576, 0.10)
	t.Add("576B @50G slot", (50 * simtime.Gbps).TimeToSend(576).String())
	t.Add("max guardband (10% overhead)", g.String())
	t.Add("v1 guardband", phy.SiriusV1Budget().Total().String())
	t.Add("v2 guardband", phy.SiriusV2Budget().Total().String())
	return t
}

// Prototype reproduces the §6 four-node system experiment over the TCP
// AWGR emulator: cyclic schedule, PRBS exchange, BER measurement.
func Prototype(nodes, epochs int) (*Table, error) {
	t := &Table{
		Title:  "§6: prototype emulation — cyclic schedule + PRBS over TCP AWGR",
		Note:   "paper: post-FEC error-free operation (BER < 1e-12) over 24 h",
		Header: []string{"node", "sent", "received", "misrouted", "bit_errors", "BER"},
	}
	st, err := wire.RunPrototype(nodes, epochs, 64, 0)
	if err != nil {
		return nil, err
	}
	for _, n := range st.Nodes {
		t.Add(n.Node, n.Sent, n.Received, n.Misrouted, n.BitErrors, n.BER())
	}
	t.Add("total", st.Cells, "routed:", st.Routed, "error-free:", st.ErrFree)
	return t, nil
}
