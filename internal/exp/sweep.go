package exp

import (
	"context"
	"fmt"

	"sirius/internal/sweep"
)

// The sweep-shaped experiments (Fig. 9–13, failure, servers, ablation)
// run on the internal/sweep engine: each grid point is an independent
// sweep.Point and a *sweep.Runner executes them on a bounded worker pool
// with per-point RNG substreams and an optional on-disk cache.
//
// Seeding discipline — what each point derives from where:
//
//   - The workload is seeded from Scale.Seed whenever rows must be
//     comparable on the *same* flow sample (every system within a row;
//     every guardband row of Fig. 11 against its shared ESN baseline).
//   - Simulator randomness (intermediate choice etc.) is seeded from the
//     point's substream seed, so grid points are statistically
//     independent yet bit-reproducible at any parallelism.
//   - The ablation keeps Scale.Seed for the simulator too: its rows
//     change exactly one design knob each, so they must share all
//     randomness to price that knob and nothing else.
//
// Either way a point's output is a pure function of (scale, parameters,
// root seed, point index), which is exactly the engine's caching and
// determinism contract.

// runOn executes the named sweep on rn, or serially on a private runner
// rooted at the scale seed when rn is nil (the convenience path used by
// tests and library callers that don't care about parallelism).
func runOn(ctx context.Context, rn *sweep.Runner, s Scale, name string, pts []sweep.Point) ([][][]string, error) {
	if rn == nil {
		rn = &sweep.Runner{Parallel: 1, RootSeed: s.Seed}
	}
	return rn.Run(ctx, name, pts)
}

// collect appends a sweep's results (rows per point, in point order) to
// the table, passing the sweep error through. On error the table is
// incomplete and must be discarded.
func (t *Table) collect(res [][][]string, err error) error {
	if err != nil {
		return err
	}
	for _, rows := range res {
		t.Rows = append(t.Rows, rows...)
	}
	return nil
}

// keyID canonically encodes the scale for cache keys.
func (s Scale) keyID() string {
	return fmt.Sprintf("racks=%d|ports=%d|flows=%d|wseed=%d",
		s.Racks, s.GratingPorts, s.Flows, s.Seed)
}

// withSeed returns the scale with its simulator seed replaced by the
// point substream.
func (s Scale) withSeed(seed uint64) Scale {
	s.Seed = seed
	return s
}
