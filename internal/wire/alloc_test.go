//go:build !race

// Steady-state allocation contracts for the wire data path. Skipped
// under the race detector: its instrumentation changes the allocation
// behavior testing.AllocsPerRun observes. The CI wire-throughput-smoke
// job runs these without -race.

package wire

import (
	"bufio"
	"bytes"
	"sync"
	"testing"
	"time"

	"sirius/internal/cell"
	"sirius/internal/health"
	"sirius/internal/phy"
	"sirius/internal/schedule"
)

// TestEmulatorRoutePathZeroAlloc pins the zero-allocation contract of
// the emulator's per-frame route path: with the read buffer reused, the
// frame header rewritten in place, and delivery appending into the
// destination port's retained batch blob, routing a frame — including
// the drain flush — performs no heap allocations in steady state.
func TestEmulatorRoutePathZeroAlloc(t *testing.T) {
	const ports = 8
	e, err := NewEmulator(ports, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Install sink connections directly: the contract covers the routing
	// code, not the kernel socket.
	for p := 0; p < ports; p++ {
		e.out[p].conn = &sinkConn{}
		e.out[p].gen = 1
		e.regCount[p] = 1
		e.out[p].mayReconnect = false
	}

	frame := testFrame(t, 0, 3, 7<<8|2, 562)
	cellBytes := frame[frameHeader:]
	dirty := make([]bool, ports)
	touched := make([]int, 0, ports)
	w := frame[4]

	step := func() {
		e.routeOne(0, w, frame, cellBytes, dirty, &touched)
		e.flushDirty(dirty, &touched)
	}
	for i := 0; i < 100; i++ {
		step() // warm the pending blobs and pool
	}
	if avg := testing.AllocsPerRun(300, step); avg != 0 {
		t.Errorf("route path allocates %.2f objects per frame, want 0", avg)
	}

	// The batched variant — many frames, one flush — must hold too.
	burst := func() {
		for i := 0; i < DefaultBatchFrames+3; i++ {
			e.routeOne(0, w, frame, cellBytes, dirty, &touched)
		}
		e.flushDirty(dirty, &touched)
	}
	burst()
	if avg := testing.AllocsPerRun(100, burst); avg != 0 {
		t.Errorf("batched route path allocates %.2f objects per burst, want 0", avg)
	}
}

// allocTestNode hand-builds a node in the post-registration steady state
// without dialing anything, mirroring RunNode's construction.
func allocTestNode(t *testing.T, nodes, payloadBytes int) *node {
	t.Helper()
	cfg := NodeConfig{ID: 0, Nodes: nodes, Epochs: 1 << 20, PayloadBytes: payloadBytes,
		Timeout: time.Minute, SuspectTimeout: time.Minute, MissThreshold: 3}
	base, err := schedule.NewGrouped(nodes, nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := health.NewObserver(nodes, cfg.MissThreshold)
	if err != nil {
		t.Fatal(err)
	}
	n := &node{
		cfg:         cfg,
		heard:       make([]int, nodes),
		suspected:   make([]bool, nodes),
		switchEpoch: make([]int, nodes),
		applied:     make([]bool, nodes),
		member:      make([]bool, nodes),
		joinAt:      make([]int, nodes),
		leaveAt:     make([]int, nodes),
		joinDone:    make([]bool, nodes),
		leaveDone:   make([]bool, nodes),
		helloSeen:   make([]bool, nodes),
		everMember:  true,
		welcomeS:    -1,
		obs:         obs,
		base:        base,
		sched:       base,
		live:        make([]int, nodes),
		myIdx:       0,
		stats:       NodeStats{Node: 0},
	}
	n.cond = sync.NewCond(&n.mu)
	n.tel = newNodeTel(cfg)
	for i := range n.heard {
		n.heard[i] = -1
		n.switchEpoch[i] = -1
		n.joinAt[i] = -1
		n.leaveAt[i] = -1
		n.member[i] = true
		n.live[i] = i
	}
	return n
}

// TestNodeSendPathZeroAlloc pins the zero-allocation contract of the
// node's steady-state transmit loop: one epoch of cells — PRBS fill,
// cell encode, frame assembly, buffered write, stats — allocates
// nothing once the encode buffer and writer are warm.
func TestNodeSendPathZeroAlloc(t *testing.T) {
	n := allocTestNode(t, 8, 562)
	conn := &sinkConn{}
	bw := bufio.NewWriterSize(conn, 64<<10)
	prbs := phy.NewPRBS(1)
	payload := make([]byte, n.cfg.PayloadBytes)
	encodeBuf := make([]byte, 0, frameHeader+cell.HeaderLen+n.cfg.PayloadBytes)

	g := 0
	step := func() {
		if err := n.sendEpoch(g, bw, conn, prbs, payload, &encodeBuf); err != nil {
			t.Fatal(err)
		}
		g++
	}
	for i := 0; i < 50; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Errorf("send epoch allocates %.2f objects, want 0", avg)
	}
}

// TestNodeReceivePathZeroAlloc pins the zero-allocation contract of the
// node's receive path: decoding a frame from the reusable buffer,
// alias-decoding the cell, verifying the PRBS payload and updating
// stats allocates nothing.
func TestNodeReceivePathZeroAlloc(t *testing.T) {
	n := allocTestNode(t, 8, 562)
	prbs := phy.NewPRBS(1)

	// A frame whose payload is the correct PRBS continuation, as sent.
	seq := uint32(3<<8 | 1)
	payload := make([]byte, 562)
	tx := phy.NewPRBS(1)
	tx.Reset(prbsSeed(2, 0, seq))
	tx.Fill(payload)
	c := cell.Cell{Kind: cell.KindData, Src: 2, Dst: 0, Seq: seq, Payload: payload}
	var fb bytes.Buffer
	if err := WriteFrame(&fb, 6, c.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	wire := fb.Bytes()

	r := bytes.NewReader(wire)
	buf := make([]byte, 0, len(wire))
	step := func() {
		r.Reset(wire)
		_, raw, err := ReadFrameInto(r, &buf)
		if err != nil {
			t.Fatal(err)
		}
		n.handleCell(raw, prbs)
	}
	for i := 0; i < 50; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(300, step); avg != 0 {
		t.Errorf("receive path allocates %.2f objects per cell, want 0", avg)
	}
	if n.stats.BitErrors != 0 {
		t.Fatalf("clean PRBS payload counted %d bit errors", n.stats.BitErrors)
	}
	if n.stats.Received == 0 {
		t.Fatal("no cells recorded")
	}
}
