package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadFrame checks the framing decoder against arbitrary input: no
// panics, bounded allocation, and accepted frames re-encode identically.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, 3, []byte("payload"))
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	// Truncated mid-header and mid-payload.
	f.Add(seed.Bytes()[:3])
	f.Add(seed.Bytes()[:frameHeader+2])
	// Length field pointing just past the limit, and just inside it.
	f.Add([]byte{0x00, 0x01, 0x00, 0x01, 9}) // 64KiB+1: rejected
	f.Add([]byte{0x00, 0x00, 0xFF, 0xFF, 9}) // large but legal, truncated
	// Header-corrupted variant of a valid frame: flipped length bytes.
	corrupted := append([]byte(nil), seed.Bytes()...)
	corrupted[0] ^= 0x80
	corrupted[3] ^= 0x01
	f.Add(corrupted)
	// A cell-bearing frame whose embedded cell header is garbage.
	var withCell bytes.Buffer
	_ = WriteFrame(&withCell, 1, make([]byte, 24))
	f.Add(withCell.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		w, cellBytes, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, w, cellBytes); err != nil {
			t.Fatal(err)
		}
		w2, cell2, err := ReadFrame(&out)
		if err != nil && err != io.EOF {
			t.Fatalf("re-read: %v", err)
		}
		if w2 != w || !bytes.Equal(cell2, cellBytes) {
			t.Fatal("frame round trip mismatch")
		}
	})
}

// FuzzHandshake checks the registration handshake parser: no panics,
// every reject carries a non-OK status, and accepted handshakes
// round-trip through EncodeHandshake (including the re-register flag).
func FuzzHandshake(f *testing.F) {
	ok := EncodeHandshake(2, 0)
	f.Add(ok[:], 4)
	rr := EncodeHandshake(1, HsReRegister)
	f.Add(rr[:], 4)
	f.Add([]byte{0xA7, 1, 99, 0}, 4)         // port out of range
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 8) // bad magic
	f.Add([]byte{0xA7, 2, 0, 0}, 4)          // wrong version
	f.Fuzz(func(t *testing.T, data []byte, ports int) {
		if len(data) < hsLen {
			return
		}
		if ports < 2 || ports > 255 {
			ports = 4
		}
		var h [hsLen]byte
		copy(h[:], data)
		port, flags, status, err := ParseHandshake(h, ports)
		if err != nil {
			if status == HsOK {
				t.Fatal("rejected handshake reported HsOK")
			}
			return
		}
		if status != HsOK {
			t.Fatalf("accepted handshake has status %d", status)
		}
		if port < 0 || port >= ports {
			t.Fatalf("accepted out-of-range port %d", port)
		}
		re := EncodeHandshake(port, flags)
		if re != h {
			t.Fatalf("handshake round trip: %v -> %v", h, re)
		}
	})
}
