package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadFrame checks the framing decoder against arbitrary input: no
// panics, bounded allocation, and accepted frames re-encode identically.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, 3, []byte("payload"))
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	// Truncated mid-header and mid-payload.
	f.Add(seed.Bytes()[:3])
	f.Add(seed.Bytes()[:frameHeader+2])
	// Length field pointing just past the limit, and just inside it.
	f.Add([]byte{0x00, 0x01, 0x00, 0x01, 9}) // 64KiB+1: rejected
	f.Add([]byte{0x00, 0x00, 0xFF, 0xFF, 9}) // large but legal, truncated
	// Header-corrupted variant of a valid frame: flipped length bytes.
	corrupted := append([]byte(nil), seed.Bytes()...)
	corrupted[0] ^= 0x80
	corrupted[3] ^= 0x01
	f.Add(corrupted)
	// A cell-bearing frame whose embedded cell header is garbage.
	var withCell bytes.Buffer
	_ = WriteFrame(&withCell, 1, make([]byte, 24))
	f.Add(withCell.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		w, cellBytes, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, w, cellBytes); err != nil {
			t.Fatal(err)
		}
		w2, cell2, err := ReadFrame(&out)
		if err != nil && err != io.EOF {
			t.Fatalf("re-read: %v", err)
		}
		if w2 != w || !bytes.Equal(cell2, cellBytes) {
			t.Fatal("frame round trip mismatch")
		}
	})
}

// FuzzReadFrameInto checks the zero-copy decoder byte-for-byte against
// the allocating ReadFrame on the same corpus: identical wavelength,
// cell bytes, and error disposition, with the returned slice aliasing
// the caller's buffer and the full wire frame reconstructable from it.
// A second read through the same buffer must not see stale bytes.
func FuzzReadFrameInto(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, 3, []byte("payload"))
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Add(seed.Bytes()[:3])
	f.Add(seed.Bytes()[:frameHeader+2])
	f.Add([]byte{0x00, 0x01, 0x00, 0x01, 9}) // 64KiB+1: rejected
	f.Add([]byte{0x00, 0x00, 0xFF, 0xFF, 9}) // large but legal, truncated
	corrupted := append([]byte(nil), seed.Bytes()...)
	corrupted[0] ^= 0x80
	corrupted[3] ^= 0x01
	f.Add(corrupted)
	var withCell bytes.Buffer
	_ = WriteFrame(&withCell, 1, make([]byte, 24))
	f.Add(withCell.Bytes())
	// Two back-to-back frames of different sizes: the second read reuses
	// the buffer the first grew.
	var double bytes.Buffer
	_ = WriteFrame(&double, 9, make([]byte, 100))
	_ = WriteFrame(&double, 2, []byte("x"))
	f.Add(double.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		refR := bytes.NewReader(data)
		zcR := bytes.NewReader(data)
		buf := make([]byte, 0, 8) // deliberately tiny: force growth paths
		for {
			refW, refCell, refErr := ReadFrame(refR)
			w, cellBytes, err := ReadFrameInto(zcR, &buf)
			if (refErr == nil) != (err == nil) {
				t.Fatalf("error disposition differs: ReadFrame=%v ReadFrameInto=%v", refErr, err)
			}
			if err != nil {
				if refErr.Error() != err.Error() {
					t.Fatalf("error text differs: %q vs %q", refErr, err)
				}
				return
			}
			if w != refW || !bytes.Equal(cellBytes, refCell) {
				t.Fatal("ReadFrameInto diverges from ReadFrame")
			}
			if &buf[0] != &buf[:frameHeader+len(cellBytes)][0] || !bytes.Equal(buf[frameHeader:frameHeader+len(cellBytes)], refCell) {
				t.Fatal("cell bytes do not alias the caller's buffer")
			}
			// The buffer must hold the complete re-emittable wire frame.
			var rt bytes.Buffer
			_ = WriteFrame(&rt, refW, refCell)
			if !bytes.Equal(buf[:frameHeader+len(cellBytes)], rt.Bytes()) {
				t.Fatal("buffer does not hold the full wire frame")
			}
		}
	})
}

// FuzzHandshake checks the registration handshake parser: no panics,
// every reject carries a non-OK status, and accepted handshakes
// round-trip through EncodeHandshake (including the re-register flag).
func FuzzHandshake(f *testing.F) {
	ok := EncodeHandshake(2, 0)
	f.Add(ok[:], 4)
	rr := EncodeHandshake(1, HsReRegister)
	f.Add(rr[:], 4)
	f.Add([]byte{0xA7, hsVersion, 99, 0}, 4) // port out of range
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 8) // bad magic
	f.Add([]byte{0xA7, 1, 0, 0}, 4)          // stale version
	f.Fuzz(func(t *testing.T, data []byte, ports int) {
		if len(data) < hsLen {
			return
		}
		if ports < 2 || ports > 255 {
			ports = 4
		}
		var h [hsLen]byte
		copy(h[:], data)
		port, flags, status, err := ParseHandshake(h, ports)
		if err != nil {
			if status == HsOK {
				t.Fatal("rejected handshake reported HsOK")
			}
			return
		}
		if status != HsOK {
			t.Fatalf("accepted handshake has status %d", status)
		}
		if port < 0 || port >= ports {
			t.Fatalf("accepted out-of-range port %d", port)
		}
		re := EncodeHandshake(port, flags)
		if re != h {
			t.Fatalf("handshake round trip: %v -> %v", h, re)
		}
	})
}
