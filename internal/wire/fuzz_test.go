package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadFrame checks the framing decoder against arbitrary input: no
// panics, bounded allocation, and accepted frames re-encode identically.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, 3, []byte("payload"))
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		w, cellBytes, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, w, cellBytes); err != nil {
			t.Fatal(err)
		}
		w2, cell2, err := ReadFrame(&out)
		if err != nil && err != io.EOF {
			t.Fatalf("re-read: %v", err)
		}
		if w2 != w || !bytes.Equal(cell2, cellBytes) {
			t.Fatal("frame round trip mismatch")
		}
	})
}
