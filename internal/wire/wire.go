// Package wire emulates the paper's §6 prototype over a real network
// stack: four (or more) node processes connected through an AWGR emulator
// via TCP on localhost.
//
// The paper's testbed connects FPGA nodes through a physical grating;
// each node follows the static cyclic schedule, retunes its laser every
// slot, transmits a PRBS test pattern, and the receivers measure the bit
// error rate. Here the "light" is a framed TCP stream and the "grating"
// is a process that routes each frame by its wavelength field using the
// same cyclic rule as a physical AWGR — wavelength w on input port i
// exits on port (i+w) mod N. The emulator can flip payload bits with a
// configurable probability, standing in for operation below receiver
// sensitivity, which the nodes detect with their PRBS checkers exactly as
// the FPGAs do.
//
// Beyond the clean-channel experiment, the package implements the §4.5
// failure story live: a deterministic fault plan (internal/fault) injects
// node crashes, link flaps, grey (per-port-pair) blackholes, per-port BER
// degradation, and frame stalls, while the nodes detect silent peers with
// the in-band epoch gap the cyclic schedule provides (health.Observer),
// flood suspicions piggybacked on data cells, and switch the whole fabric
// to a compacted schedule at an agreed epoch boundary — all without any
// absolute run deadline: progress deadlines roll forward, dead peers'
// frames are accounted against their confirmed failure, and a broken
// connection re-registers with capped exponential backoff instead of
// tearing the fabric down.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"sirius/internal/cell"
)

// Frame layout: u32 payload length | u8 wavelength | cell bytes.
const frameHeader = 5

// maxFrame bounds decoded frames defensively.
const maxFrame = 64 << 10

// maxPorts is the hard fabric-size cap: both the wavelength field of a
// frame and the port field of the handshake are a single byte, so ports
// and wavelengths live in [0, 256). Documented in docs/PROTOCOL.md.
const maxPorts = 256

// WriteFrame writes one wavelength-tagged frame.
func WriteFrame(w io.Writer, wavelength uint8, cellBytes []byte) error {
	var h [frameHeader]byte
	binary.BigEndian.PutUint32(h[:4], uint32(len(cellBytes)))
	h[4] = wavelength
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	_, err := w.Write(cellBytes)
	return err
}

// ReadFrameInto reads one frame into *buf, growing it if needed, and
// returns the wavelength and the cell bytes. The returned slice aliases
// (*buf)[frameHeader:]; the caller owns *buf and may reuse it for the
// next read once it is done with the cell bytes. After a successful
// read, (*buf)[:frameHeader+len(cellBytes)] holds the complete wire
// frame (header + payload) with the header already encoded, so a router
// can rewrite the wavelength byte in place and forward the whole frame
// without reassembling it.
func ReadFrameInto(r io.Reader, buf *[]byte) (wavelength uint8, cellBytes []byte, err error) {
	b := *buf
	if cap(b) < frameHeader {
		b = make([]byte, 0, frameHeader+4096)
	}
	b = b[:frameHeader]
	if _, err := io.ReadFull(r, b); err != nil {
		*buf = b
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(b[:4])
	if n > maxFrame {
		*buf = b
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	total := frameHeader + int(n)
	if cap(b) < total {
		nb := make([]byte, total)
		copy(nb, b)
		b = nb
	}
	b = b[:total]
	if _, err := io.ReadFull(r, b[frameHeader:]); err != nil {
		*buf = b
		return 0, nil, err
	}
	*buf = b
	return b[4], b[frameHeader:], nil
}

// ReadFrame reads one frame. Compatibility wrapper around ReadFrameInto
// that allocates a fresh buffer per call; hot paths should hold a
// reusable buffer and call ReadFrameInto directly.
func ReadFrame(r io.Reader) (wavelength uint8, cellBytes []byte, err error) {
	var buf []byte
	return ReadFrameInto(r, &buf)
}

// ---- Handshake ----
//
// A node introduces itself with a fixed 4-byte request and the emulator
// answers with a 2-byte reply, so a rejected client learns *why* instead
// of seeing a bare connection reset, and a buggy or malicious client can
// never take the fabric down — the emulator rejects and keeps accepting.

const (
	hsMagic = 0xA7
	// hsVersion 2 added the lifecycle plane (join/drain/hello cell flags
	// and dormant registrations). The version byte bumps only for
	// semantics-bearing changes a v1 peer would misinterpret — purely
	// additive, ignorable extensions do not bump it (see
	// docs/PROTOCOL.md, "Version byte bump rules").
	hsVersion  = 2
	hsLen      = 4
	hsReplyLen = 2
)

// Handshake flags.
const (
	// HsReRegister marks a reconnection: the emulator replaces any prior
	// connection for the port instead of rejecting a duplicate.
	HsReRegister uint8 = 1 << iota
)

// Handshake reply statuses.
const (
	HsOK        uint8 = 0
	HsBadMagic  uint8 = 1
	HsBadPort   uint8 = 2
	HsDuplicate uint8 = 3
)

// EncodeHandshake builds the 4-byte handshake request for a port.
func EncodeHandshake(port int, flags uint8) [hsLen]byte {
	return [hsLen]byte{hsMagic, hsVersion, uint8(port), flags}
}

// ParseHandshake validates a handshake request and returns the port and
// flags. A non-nil error maps to the returned reject status.
func ParseHandshake(h [hsLen]byte, ports int) (port int, flags uint8, status uint8, err error) {
	if h[0] != hsMagic || h[1] != hsVersion {
		return 0, 0, HsBadMagic, fmt.Errorf("wire: bad handshake magic/version %#x/%d", h[0], h[1])
	}
	port = int(h[2])
	if port < 0 || port >= ports {
		return 0, 0, HsBadPort, fmt.Errorf("wire: port %d out of range [0,%d)", port, ports)
	}
	return port, h[3], HsOK, nil
}

// hsStatusString names a reject status for error messages.
func hsStatusString(s uint8) string {
	switch s {
	case HsOK:
		return "ok"
	case HsBadMagic:
		return "bad magic/version"
	case HsBadPort:
		return "port out of range"
	case HsDuplicate:
		return "port already connected"
	}
	return fmt.Sprintf("status %d", s)
}

// cellEpoch extracts the fabric epoch carried in-band by a framed cell's
// sequence number (Seq = epoch<<8 | slot). Frames too short to carry a
// cell header report epoch 0.
func cellEpoch(cellBytes []byte) int {
	if len(cellBytes) < cell.HeaderLen {
		return 0
	}
	return int(binary.BigEndian.Uint32(cellBytes[12:16]) >> 8)
}
