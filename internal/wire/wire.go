// Package wire emulates the paper's §6 prototype over a real network
// stack: four (or more) node processes connected through an AWGR emulator
// via TCP on localhost.
//
// The paper's testbed connects FPGA nodes through a physical grating;
// each node follows the static cyclic schedule, retunes its laser every
// slot, transmits a PRBS test pattern, and the receivers measure the bit
// error rate. Here the "light" is a framed TCP stream and the "grating"
// is a process that routes each frame by its wavelength field using the
// same cyclic rule as a physical AWGR — wavelength w on input port i
// exits on port (i+w) mod N. The emulator can flip payload bits with a
// configurable probability, standing in for operation below receiver
// sensitivity, which the nodes detect with their PRBS checkers exactly as
// the FPGAs do.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sirius/internal/cell"
	"sirius/internal/phy"
	"sirius/internal/rng"
	"sirius/internal/schedule"
)

// Frame layout: u32 payload length | u8 wavelength | cell bytes.
const frameHeader = 5

// maxFrame bounds decoded frames defensively.
const maxFrame = 64 << 10

// WriteFrame writes one wavelength-tagged frame.
func WriteFrame(w io.Writer, wavelength uint8, cellBytes []byte) error {
	var h [frameHeader]byte
	binary.BigEndian.PutUint32(h[:4], uint32(len(cellBytes)))
	h[4] = wavelength
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	_, err := w.Write(cellBytes)
	return err
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (wavelength uint8, cellBytes []byte, err error) {
	var h [frameHeader]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(h[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return h[4], buf, nil
}

// Emulator is the AWGR stand-in: it accepts one TCP connection per port
// and routes frames cyclically by wavelength.
type Emulator struct {
	ln       net.Listener
	ports    int
	flipProb float64

	mu    sync.Mutex
	wmu   []sync.Mutex
	conns []net.Conn
	r     *rng.RNG

	routed      int64
	bitsFlipped int64

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewEmulator starts an emulator listening on 127.0.0.1 (ephemeral port)
// for the given number of node ports. flipProb is the per-bit corruption
// probability applied to cell payloads (0 = clean channel).
func NewEmulator(ports int, flipProb float64, seed uint64) (*Emulator, error) {
	return NewEmulatorAddr("127.0.0.1:0", ports, flipProb, seed)
}

// NewEmulatorAddr is NewEmulator with an explicit listen address, for
// running the grating emulator as its own process (even on another
// machine) with nodes joining over the network.
func NewEmulatorAddr(addr string, ports int, flipProb float64, seed uint64) (*Emulator, error) {
	if ports < 2 {
		return nil, fmt.Errorf("wire: need >= 2 ports")
	}
	if flipProb < 0 || flipProb >= 1 {
		return nil, fmt.Errorf("wire: flip probability %v outside [0,1)", flipProb)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Emulator{
		ln:       ln,
		ports:    ports,
		flipProb: flipProb,
		wmu:      make([]sync.Mutex, ports),
		conns:    make([]net.Conn, ports),
		r:        rng.New(seed),
		closed:   make(chan struct{}),
	}, nil
}

// Addr returns the emulator's listen address.
func (e *Emulator) Addr() string { return e.ln.Addr().String() }

// Serve accepts the node connections and routes frames until every input
// closes. It returns the number of frames routed.
func (e *Emulator) Serve() error {
	for i := 0; i < e.ports; i++ {
		conn, err := e.ln.Accept()
		if err != nil {
			return err
		}
		// Handshake: one byte naming the node's port.
		var id [1]byte
		if _, err := io.ReadFull(conn, id[:]); err != nil {
			conn.Close()
			return fmt.Errorf("wire: handshake: %w", err)
		}
		port := int(id[0])
		if port < 0 || port >= e.ports {
			conn.Close()
			return fmt.Errorf("wire: bad port %d in handshake", port)
		}
		e.mu.Lock()
		if e.conns[port] != nil {
			e.mu.Unlock()
			conn.Close()
			return fmt.Errorf("wire: port %d connected twice", port)
		}
		e.conns[port] = conn
		e.mu.Unlock()
	}
	// All ports connected: route.
	for p := 0; p < e.ports; p++ {
		p := p
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.routeFrom(p)
		}()
	}
	e.wg.Wait()
	close(e.closed)
	return nil
}

// routeFrom forwards frames arriving on input port p.
func (e *Emulator) routeFrom(p int) {
	in := bufio.NewReader(e.conns[p])
	for {
		w, buf, err := ReadFrame(in)
		if err != nil {
			return // EOF or broken pipe: the node is done
		}
		// Cyclic AWGR routing: wavelength w from input p exits port
		// (p+w) mod N.
		out := (p + int(w)) % e.ports
		e.corrupt(buf)
		e.wmu[out].Lock()
		err = WriteFrame(e.conns[out], w, buf)
		e.wmu[out].Unlock()
		if err != nil {
			return
		}
		e.mu.Lock()
		e.routed++
		e.mu.Unlock()
	}
}

// corrupt flips payload bits (never header bits — real Sirius protects
// framing with its preamble and FEC framing survives) with flipProb.
func (e *Emulator) corrupt(frame []byte) {
	if e.flipProb == 0 || len(frame) <= cell.HeaderLen {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	payload := frame[cell.HeaderLen:]
	// Draw the number of flips from the expected count; cheap Bernoulli
	// per byte keeps it simple for the small prototype volumes.
	for i := range payload {
		for b := 0; b < 8; b++ {
			if e.r.Float64() < e.flipProb {
				payload[i] ^= 1 << b
				e.bitsFlipped++
			}
		}
	}
}

// Routed returns the number of frames forwarded.
func (e *Emulator) Routed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.routed
}

// Close shuts the emulator down.
func (e *Emulator) Close() error { return e.ln.Close() }

// NodeStats reports one node's run.
type NodeStats struct {
	Node      int
	Sent      int
	Received  int
	Misrouted int
	BitErrors int
	Bits      int64
}

// BER returns the measured payload bit error rate.
func (s NodeStats) BER() float64 {
	if s.Bits == 0 {
		return 0
	}
	return float64(s.BitErrors) / float64(s.Bits)
}

// NodeConfig configures one emulated node.
type NodeConfig struct {
	ID           int
	Addr         string // emulator address
	Nodes        int
	Epochs       int
	PayloadBytes int
	Timeout      time.Duration
}

// RunNode connects to the emulator and runs the cyclic schedule for the
// configured number of epochs: every slot it "tunes" to the slot's
// wavelength and transmits a PRBS-filled cell; concurrently it verifies
// every received cell against the per-source expected PRBS stream.
func RunNode(cfg NodeConfig) (NodeStats, error) {
	stats := NodeStats{Node: cfg.ID}
	if cfg.Nodes < 2 || cfg.ID < 0 || cfg.ID >= cfg.Nodes {
		return stats, fmt.Errorf("wire: bad node id %d of %d", cfg.ID, cfg.Nodes)
	}
	if cfg.PayloadBytes < 1 {
		return stats, fmt.Errorf("wire: need at least 1 payload byte")
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	// The prototype wiring: one uplink per node, all nodes on one
	// grating (the paper's 4-node testbed).
	sched, err := schedule.NewGrouped(cfg.Nodes, cfg.Nodes, 1)
	if err != nil {
		return stats, err
	}
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return stats, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(cfg.Timeout))
	if _, err := conn.Write([]byte{byte(cfg.ID)}); err != nil {
		return stats, err
	}

	expected := cfg.Epochs * sched.SlotsPerEpoch()
	errc := make(chan error, 1)
	var mu sync.Mutex // guards stats during the receive goroutine

	// Receiver: every pair is connected once per epoch, so per-source
	// PRBS streams verify in order.
	go func() {
		rxPRBS := make(map[uint16]*phy.PRBS)
		in := bufio.NewReader(conn)
		for i := 0; i < expected; i++ {
			_, buf, err := ReadFrame(in)
			if err != nil {
				errc <- fmt.Errorf("wire: node %d receive: %w", cfg.ID, err)
				return
			}
			c, _, err := cell.Decode(buf)
			if err != nil {
				errc <- err
				return
			}
			mu.Lock()
			stats.Received++
			if int(c.Dst) != cfg.ID {
				stats.Misrouted++
			} else {
				p := rxPRBS[c.Src]
				if p == nil {
					p = phy.NewPRBS(prbsSeed(int(c.Src), cfg.ID))
					rxPRBS[c.Src] = p
				}
				stats.BitErrors += p.CountErrors(c.Payload)
				stats.Bits += int64(len(c.Payload)) * 8
			}
			mu.Unlock()
		}
		errc <- nil
	}()

	// Transmitter: follow the schedule.
	txPRBS := make([]*phy.PRBS, cfg.Nodes)
	out := bufio.NewWriter(conn)
	payload := make([]byte, cfg.PayloadBytes)
	var frame []byte
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for slot := 0; slot < sched.SlotsPerEpoch(); slot++ {
			dst := sched.Dst(cfg.ID, 0, slot)
			w := sched.Wavelength(cfg.ID, 0, slot)
			if txPRBS[dst] == nil {
				txPRBS[dst] = phy.NewPRBS(prbsSeed(cfg.ID, dst))
			}
			txPRBS[dst].Fill(payload)
			c := cell.Cell{
				Kind:    cell.KindData,
				Src:     uint16(cfg.ID),
				Dst:     uint16(dst),
				Seq:     uint32(epoch*sched.SlotsPerEpoch() + slot),
				Payload: payload,
			}
			frame = c.Encode(frame[:0])
			if err := WriteFrame(out, uint8(w), frame); err != nil {
				return stats, err
			}
			mu.Lock()
			stats.Sent++
			mu.Unlock()
		}
		if err := out.Flush(); err != nil {
			return stats, err
		}
	}
	if err := out.Flush(); err != nil {
		return stats, err
	}
	if err := <-errc; err != nil {
		return stats, err
	}
	mu.Lock()
	defer mu.Unlock()
	return stats, nil
}

// prbsSeed derives the per-pair PRBS seed both ends agree on.
func prbsSeed(src, dst int) uint32 {
	return uint32(src)<<16 | uint32(dst) | 1
}

// Stats aggregates a full prototype run.
type Stats struct {
	Nodes   []NodeStats
	Routed  int64
	Cells   int
	BER     float64
	ErrFree bool // post-FEC error-free claim: BER below the FEC threshold
}

// RunPrototype runs the complete testbed in-process: an emulator plus
// `nodes` node loops, each for `epochs` epochs, with the given per-bit
// corruption probability. It reproduces the paper's §6 system experiment.
func RunPrototype(nodes, epochs, payloadBytes int, flipProb float64) (*Stats, error) {
	em, err := NewEmulator(nodes, flipProb, 42)
	if err != nil {
		return nil, err
	}
	defer em.Close()
	serveErr := make(chan error, 1)
	go func() { serveErr <- em.Serve() }()

	results := make([]NodeStats, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for id := 0; id < nodes; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[id], errs[id] = RunNode(NodeConfig{
				ID:           id,
				Addr:         em.Addr(),
				Nodes:        nodes,
				Epochs:       epochs,
				PayloadBytes: payloadBytes,
			})
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, net.ErrClosed) {
		return nil, err
	}

	st := &Stats{Nodes: results, Routed: em.Routed()}
	var errBits, bits int64
	for _, r := range results {
		st.Cells += r.Received
		errBits += int64(r.BitErrors)
		bits += r.Bits
	}
	if bits > 0 {
		st.BER = float64(errBits) / float64(bits)
	}
	st.ErrFree = st.BER <= 2e-4 // the standard FEC threshold of §6
	return st, nil
}
