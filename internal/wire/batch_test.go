package wire

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"sirius/internal/cell"
)

// sinkConn is a net.Conn that accepts every write and never allocates.
type sinkConn struct{ writes, bytes int }

func (c *sinkConn) Write(b []byte) (int, error)      { c.writes++; c.bytes += len(b); return len(b), nil }
func (c *sinkConn) Read([]byte) (int, error)         { select {} }
func (c *sinkConn) Close() error                     { return nil }
func (c *sinkConn) LocalAddr() net.Addr              { return nil }
func (c *sinkConn) RemoteAddr() net.Addr             { return nil }
func (c *sinkConn) SetDeadline(time.Time) error      { return nil }
func (c *sinkConn) SetReadDeadline(time.Time) error  { return nil }
func (c *sinkConn) SetWriteDeadline(time.Time) error { return nil }

// testFrame builds one wire frame carrying a data cell from src to dst
// with the given payload size, returning the full frame bytes.
func testFrame(t testing.TB, src, dst uint16, seq uint32, payload int) []byte {
	t.Helper()
	c := cell.Cell{Kind: cell.KindData, Src: src, Dst: dst, Seq: seq, Payload: make([]byte, payload)}
	var out bytes.Buffer
	if err := WriteFrame(&out, uint8(dst), c.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestBatchingDifferential runs the 4-node clean fabric with output
// batching disabled (batch=1, the pre-batching per-frame behavior) and
// with the default coalescing policy, and asserts the runs are
// observably identical: per-node sent/received cells, PRBS bit errors,
// misroutes, and total routed frames. Corruption is applied per input
// port in frame order before batching, so the write-coalescing policy
// must be invisible to every counter.
func TestBatchingDifferential(t *testing.T) {
	run := func(batch int) *FaultStats {
		t.Helper()
		fs, err := RunPrototypeCfg(PrototypeConfig{
			Nodes: 4, Epochs: 50, PayloadBytes: 64, FlipProb: 1e-3,
			BatchFrames: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	off := run(1)
	on := run(DefaultBatchFrames)

	if off.Routed != on.Routed {
		t.Errorf("routed differs: batch=1 %d, batched %d", off.Routed, on.Routed)
	}
	if off.BER != on.BER {
		t.Errorf("BER differs: batch=1 %v, batched %v", off.BER, on.BER)
	}
	for i := range off.Nodes {
		a, b := off.Nodes[i], on.Nodes[i]
		if a.Sent != b.Sent || a.Received != b.Received ||
			a.BitErrors != b.BitErrors || a.Misrouted != b.Misrouted {
			t.Errorf("node %d differs: batch=1 sent/recv/errs/mis %d/%d/%d/%d, batched %d/%d/%d/%d",
				i, a.Sent, a.Received, a.BitErrors, a.Misrouted,
				b.Sent, b.Received, b.BitErrors, b.Misrouted)
		}
	}
}

// TestPortCapFriendlyErrors pins the explicit 256-port cap: both the
// emulator and the node reject oversized fabrics with an error that
// names the limit and its cause, instead of failing obscurely at the
// u8 wavelength/handshake encoding.
func TestPortCapFriendlyErrors(t *testing.T) {
	if _, err := NewEmulator(maxPorts+1, 0, 1); err == nil {
		t.Fatal("emulator accepted 257 ports")
	} else if want := fmt.Sprintf("%d-port wire-format limit", maxPorts); !strings.Contains(err.Error(), want) {
		t.Errorf("emulator error %q does not name the limit", err)
	}
	if _, err := RunNode(NodeConfig{ID: 0, Nodes: maxPorts + 1, PayloadBytes: 8}); err == nil {
		t.Fatal("node accepted 257-node fabric")
	} else if !strings.Contains(err.Error(), "256") {
		t.Errorf("node error %q does not name the limit", err)
	}
	// The cap itself must be usable: an emulator at exactly maxPorts.
	e, err := NewEmulator(maxPorts, 0, 1)
	if err != nil {
		t.Fatalf("emulator rejected %d ports: %v", maxPorts, err)
	}
	e.Close()
}

// TestParkHighWaterMark pins the park-queue accounting: frames routed
// toward a never-registered port accumulate (pooled, no per-frame copy)
// up to parkLimit, the high-water mark reports the deepest queue, and
// overflow counts dropped.
func TestParkHighWaterMark(t *testing.T) {
	e, err := NewEmulator(4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	frame := testFrame(t, 0, 2, 1<<8, 64)
	for i := 0; i < parkLimit+10; i++ {
		e.deliver(2, frame)
	}
	if got := e.ParkedPeak(); got != parkLimit {
		t.Errorf("ParkedPeak = %d, want %d", got, parkLimit)
	}
	if got := e.Dropped(); got != 10 {
		t.Errorf("Dropped = %d, want 10", got)
	}
	// A port whose connection is present parks nothing.
	e.out[1].conn = &sinkConn{}
	e.out[1].gen = 1
	e.deliver(1, frame)
	if got := e.ParkedPeak(); got != parkLimit {
		t.Errorf("ParkedPeak moved to %d after delivery to a live port", got)
	}
}

// TestIdleFlusherDeliversStragglers pins the idle-flush leg of the
// policy: a single frame routed to a quiet port (far below the batch
// budgets) still reaches the wire within a few flush intervals.
func TestIdleFlusherDeliversStragglers(t *testing.T) {
	e, err := NewEmulator(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetBatching(1024, 1<<20, time.Millisecond)
	go e.Serve()

	sink := &sinkConn{}
	e.out[1].mu.Lock()
	e.out[1].conn = sink
	e.out[1].gen = 1
	e.out[1].mu.Unlock()

	frame := testFrame(t, 0, 1, 1<<8, 64)
	e.deliver(1, frame)

	deadline := time.Now().Add(2 * time.Second)
	for {
		e.out[1].mu.Lock()
		flushed := e.out[1].frames == 0 && sink.bytes == len(frame)
		e.out[1].mu.Unlock()
		if flushed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle flusher never flushed the straggler (pending=%d, wrote %d bytes)",
				e.out[1].frames, sink.bytes)
		}
		time.Sleep(time.Millisecond)
	}
}
