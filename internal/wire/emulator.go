package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sirius/internal/cell"
	"sirius/internal/fault"
	"sirius/internal/rng"
	"sirius/internal/telemetry"
)

// parkLimit caps the number of frames held for a port that is expected to
// (re)connect. Beyond it, frames are counted dropped — the emulator never
// grows without bound because of one absent node.
const parkLimit = 4096

// handshakeTimeout bounds how long a fresh connection may take to present
// its 4-byte handshake before being rejected. A client that connects and
// stalls must not pin emulator resources.
const handshakeTimeout = 5 * time.Second

// Default write-coalescing policy for the output ports (SetBatching
// overrides). A batch is flushed as soon as it holds DefaultBatchFrames
// frames or DefaultBatchBytes bytes, when the contributing input stream
// momentarily drains (the per-epoch burst boundary), or — for stragglers —
// by an idle flusher that runs every DefaultFlushInterval.
const (
	DefaultBatchFrames   = 16
	DefaultBatchBytes    = 32 << 10
	DefaultFlushInterval = 500 * time.Microsecond
)

// PortError is a structured per-port failure observed by the emulator. One
// broken port never takes the fabric down; the error is recorded and the
// emulator keeps serving the others.
type PortError struct {
	Port int
	Op   string // "handshake", "read", "write"
	Err  error
}

func (e *PortError) Error() string {
	return fmt.Sprintf("wire: port %d: %s: %v", e.Port, e.Op, e.Err)
}

// Unwrap exposes the underlying error.
func (e *PortError) Unwrap() error { return e.Err }

// framePool recycles batch/park buffers. Buffers move by ownership
// transfer: an output port's accumulation blob becomes a parked chunk
// without copying, and returns to the pool once replayed to a
// (re)registered connection.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, DefaultBatchBytes+maxFrame+frameHeader)
		return &b
	},
}

// parkedChunk is a sealed blob of coalesced frames awaiting a port's
// (re)registration. buf is pooled; it is returned to framePool after a
// successful replay.
type parkedChunk struct {
	buf    *[]byte
	frames int
}

// outPort is one output port of the grating: the registered connection
// plus the write-coalescing state in front of it. op.mu serializes all
// writes to the port, so a stalled reader back-pressures only the inputs
// currently routing to it — never the rest of the fabric. Lock order:
// op.mu before e.mu, never the reverse.
type outPort struct {
	mu           sync.Mutex
	conn         net.Conn // nil while the port is absent
	gen          int      // bumped per (re)registration
	pending      *[]byte  // pooled accumulation blob (nil when empty)
	frames       int      // frames coalesced in pending
	parked       []parkedChunk
	parkedFrames int    // frames across sealed parked chunks
	appendSeq    uint64 // bumped per appended frame
	idleSeq      uint64 // appendSeq at the idle flusher's last visit
	mayReconnect bool   // cached mayReconnectLocked, refreshed on registration
}

// Emulator is the AWGR stand-in: a process that accepts one TCP connection
// per grating port and routes each wavelength-tagged frame to output port
// (input + wavelength) mod N, exactly the cyclic rule of a physical
// arrayed-waveguide grating.
//
// The emulator is resilient by construction: the accept loop never stops
// on a bad client (it rejects with a status reply and keeps listening), a
// re-registering node replaces its prior connection, frames routed toward
// an absent-but-expected port are parked and flushed on (re)registration,
// and per-port write errors are recorded instead of fatal. Serve returns
// only when the whole fabric has completed — every port registered and
// every input stream reached its final EOF — or on Close.
//
// The data path is zero-copy and batched: each input goroutine decodes
// frames into a reusable buffer (ReadFrameInto), rewrites the 5-byte
// header in place, and appends the frame to the destination port's
// coalescing blob; one conn.Write then carries the whole batch.
type Emulator struct {
	ln       net.Listener
	ports    int
	flipProb float64
	plan     *fault.Plan

	batchFrames   int
	batchBytes    int
	flushInterval time.Duration
	flushQuit     chan struct{}
	flushStop     sync.Once

	out []outPort

	mu         sync.Mutex
	regCount   []int   // how many times each port has registered
	eofFinal   []bool  // the port's input stream has spoken its last
	portErrs   []error // structured per-port failures, in order observed
	closed     bool    // Close was called
	completing bool    // fabric completed; shutting down

	// Per-input-port corruption substreams: rngs[p] is seeded from
	// PointSeed(seed, p) and consumed in that port's frame order, so bit
	// flips are deterministic for a given (seed, frame history) no matter
	// how the per-port goroutines interleave. rmu guards against the brief
	// overlap window during a re-registration.
	rmu  []sync.Mutex
	rngs []*rng.RNG

	routed      atomic.Int64
	bitsFlipped atomic.Int64
	dropped     atomic.Int64 // frames lost to dead or over-parked ports
	greyDropped atomic.Int64 // frames blackholed by Grey fault events
	rejected    atomic.Int64 // connections refused at handshake
	parkedPeak  atomic.Int64 // high-water mark of any one port's park queue

	// tel mirrors the counters above into a telemetry registry (the
	// process Default unless Instrument overrode it) and optionally
	// flips health conditions while a registered port's connection is
	// broken but expected back. Set before Serve, read-only after.
	tel *emuTel

	wg sync.WaitGroup
	// flusherWG tracks the idle flusher alone, so Close can wait for it
	// specifically (the input goroutines in wg may be blocked on reads
	// that only finish once Close tears their connections down).
	flusherWG sync.WaitGroup
}

// NewEmulator listens on an ephemeral localhost port.
func NewEmulator(ports int, flipProb float64, seed uint64) (*Emulator, error) {
	return NewEmulatorAddr("127.0.0.1:0", ports, flipProb, seed)
}

// NewEmulatorAddr listens on the given address with no fault plan.
func NewEmulatorAddr(addr string, ports int, flipProb float64, seed uint64) (*Emulator, error) {
	return NewEmulatorFault(addr, ports, flipProb, seed, nil)
}

// NewEmulatorFault listens on the given address and consults the given
// fault plan (which may be nil) while routing.
func NewEmulatorFault(addr string, ports int, flipProb float64, seed uint64, plan *fault.Plan) (*Emulator, error) {
	if ports < 2 {
		return nil, fmt.Errorf("wire: need >= 2 ports")
	}
	if ports > maxPorts {
		return nil, fmt.Errorf("wire: %d ports exceeds the %d-port wire-format limit (the wavelength and handshake port fields are one byte; see docs/PROTOCOL.md)", ports, maxPorts)
	}
	if flipProb < 0 || flipProb >= 1 {
		return nil, fmt.Errorf("wire: flip probability %v outside [0,1)", flipProb)
	}
	if err := plan.Validate(ports); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	e := &Emulator{
		ln:            ln,
		ports:         ports,
		flipProb:      flipProb,
		plan:          plan,
		batchFrames:   DefaultBatchFrames,
		batchBytes:    DefaultBatchBytes,
		flushInterval: DefaultFlushInterval,
		flushQuit:     make(chan struct{}),
		out:           make([]outPort, ports),
		regCount:      make([]int, ports),
		eofFinal:      make([]bool, ports),
		rmu:           make([]sync.Mutex, ports),
		rngs:          make([]*rng.RNG, ports),
	}
	for p := 0; p < ports; p++ {
		e.out[p].mayReconnect = true // never registered yet
		e.rngs[p] = rng.New(rng.PointSeed(seed, uint64(p)))
	}
	e.tel = newEmuTel(nil, nil, ports)
	return e, nil
}

// SetBatching configures the per-output-port write coalescing policy:
// flush a port's batch once it holds `frames` frames or `bytes` bytes,
// and let the idle flusher sweep stragglers every `interval`. frames = 1
// disables coalescing — every routed frame is written immediately, the
// pre-batching behavior. Non-positive values keep the defaults. Call
// before Serve.
func (e *Emulator) SetBatching(frames, bytes int, interval time.Duration) {
	if frames > 0 {
		e.batchFrames = frames
	}
	if bytes > 0 {
		e.batchBytes = bytes
	}
	if interval > 0 {
		e.flushInterval = interval
	}
}

// Addr returns the listen address.
func (e *Emulator) Addr() string { return e.ln.Addr().String() }

// Routed returns the number of frames forwarded so far.
func (e *Emulator) Routed() int64 { return e.routed.Load() }

// BitsFlipped returns the number of payload bits corrupted so far.
func (e *Emulator) BitsFlipped() int64 { return e.bitsFlipped.Load() }

// Dropped returns frames lost to dead or over-parked output ports.
func (e *Emulator) Dropped() int64 { return e.dropped.Load() }

// GreyDropped returns frames blackholed by Grey fault events.
func (e *Emulator) GreyDropped() int64 { return e.greyDropped.Load() }

// Rejected returns the number of connections refused at handshake.
func (e *Emulator) Rejected() int64 { return e.rejected.Load() }

// ParkedPeak returns the high-water mark of frames parked for any single
// absent port — how deep the worst park queue ever got.
func (e *Emulator) ParkedPeak() int64 { return e.parkedPeak.Load() }

// PortErrors returns the structured per-port failures observed so far.
func (e *Emulator) PortErrors() []error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]error(nil), e.portErrs...)
}

// Close shuts the emulator down: the listener and all connections are
// closed and Serve returns nil. Batched frames still holding a live
// connection get one best-effort bounded flush; everything left after
// that — pending batches and parked frames alike — is accounted as
// dropped, so counters balance even on an abortive shutdown. The idle
// flusher is stopped and waited for, so no goroutine of the emulator's
// own machinery outlives Close. Idempotent.
func (e *Emulator) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.ln.Close()
	for p := range e.out {
		op := &e.out[p]
		op.mu.Lock()
		if op.conn != nil && op.frames > 0 {
			op.conn.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
			e.flushLocked(p, op, e.tel.flushDrain)
		}
		if op.conn != nil {
			op.conn.Close()
			op.conn = nil
		}
		op.mu.Unlock()
	}
	e.stopIdleFlusher()
	e.flusherWG.Wait()
	for p := range e.out {
		op := &e.out[p]
		op.mu.Lock()
		e.discardHeldLocked(op)
		op.mu.Unlock()
	}
	return nil
}

// discardHeldLocked accounts and recycles every frame still held for a
// port — the pending batch and all parked chunks — and bars further
// parking. Called with op.mu held, during shutdown.
func (e *Emulator) discardHeldLocked(op *outPort) {
	if n := op.frames + op.parkedFrames; n > 0 {
		e.dropped.Add(int64(n))
		e.tel.dropped.Add(int64(n))
	}
	if op.pending != nil {
		*op.pending = (*op.pending)[:0]
		framePool.Put(op.pending)
		op.pending = nil
	}
	op.frames = 0
	for _, pc := range op.parked {
		*pc.buf = (*pc.buf)[:0]
		framePool.Put(pc.buf)
	}
	op.parked = nil
	op.parkedFrames = 0
	op.mayReconnect = false
}

// stopIdleFlusher signals the idle flusher to exit. Idempotent.
func (e *Emulator) stopIdleFlusher() {
	e.flushStop.Do(func() { close(e.flushQuit) })
}

// Serve accepts connections and routes frames until the fabric completes
// (every port registered at least once and every input reached its final
// EOF) or Close is called. A malformed, duplicate, or out-of-range
// handshake rejects that one connection — with a status reply naming the
// reason — and the accept loop keeps going: a buggy or malicious client
// cannot take the fabric down.
func (e *Emulator) Serve() error {
	e.wg.Add(1)
	e.flusherWG.Add(1)
	go e.idleFlusher()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			e.stopIdleFlusher()
			e.wg.Wait()
			e.mu.Lock()
			done := e.closed || e.completing
			e.mu.Unlock()
			if done {
				return nil
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		e.wg.Add(1)
		go e.admit(conn)
	}
}

// idleFlusher periodically sweeps the output ports and flushes any batch
// that has sat unchanged for a whole interval, so a lone frame routed to
// a quiet port never waits on the batch-size budget. TryLock keeps the
// sweeper from blocking behind one stalled port.
func (e *Emulator) idleFlusher() {
	defer e.wg.Done()
	defer e.flusherWG.Done()
	t := time.NewTicker(e.flushInterval)
	defer t.Stop()
	for {
		select {
		case <-e.flushQuit:
			return
		case <-t.C:
		}
		for p := range e.out {
			op := &e.out[p]
			if !op.mu.TryLock() {
				continue
			}
			if op.conn != nil && op.frames > 0 && op.appendSeq == op.idleSeq {
				e.flushLocked(p, op, e.tel.flushIdle)
			}
			op.idleSeq = op.appendSeq
			op.mu.Unlock()
		}
	}
}

// admit performs the handshake on a fresh connection and, on success,
// registers it, replays any parked frames, and starts routing its input.
func (e *Emulator) admit(conn net.Conn) {
	defer e.wg.Done()
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var h [hsLen]byte
	if _, err := io.ReadFull(conn, h[:]); err != nil {
		e.rejected.Add(1)
		e.tel.rejected.Inc()
		e.recordErr(&PortError{Port: -1, Op: "handshake", Err: err})
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	port, flags, status, err := ParseHandshake(h, e.ports)
	if err != nil {
		e.reject(conn, port, status, err)
		return
	}

	op := &e.out[port]
	op.mu.Lock()
	e.mu.Lock()
	if e.closed || e.completing {
		e.mu.Unlock()
		op.mu.Unlock()
		conn.Close()
		return
	}
	if op.conn != nil && flags&HsReRegister == 0 {
		e.mu.Unlock()
		op.mu.Unlock()
		e.reject(conn, port, HsDuplicate, fmt.Errorf("wire: port %d already connected", port))
		return
	}
	if old := op.conn; old != nil {
		old.Close() // superseded by the re-registration
	}
	op.gen++
	gen := op.gen
	op.conn = conn
	e.regCount[port]++
	e.eofFinal[port] = false // a re-registered port speaks again
	op.mayReconnect = e.mayReconnectLocked(port)
	e.mu.Unlock()
	e.tel.registered.Inc()
	e.tel.health.ClearCondition(emuPortKey(port))

	// Reply and replay the park queue while still holding op.mu, so no
	// freshly routed frame can jump ahead of the backlog.
	if _, err := conn.Write([]byte{HsOK, uint8(port)}); err != nil {
		e.retireConnLocked(port, op, &PortError{Port: port, Op: "write", Err: err})
		op.mu.Unlock()
		return
	}
	for len(op.parked) > 0 {
		ch := op.parked[0]
		if _, err := conn.Write(*ch.buf); err != nil {
			e.retireConnLocked(port, op, &PortError{Port: port, Op: "write", Err: err})
			op.mu.Unlock()
			return
		}
		op.parkedFrames -= ch.frames
		*ch.buf = (*ch.buf)[:0]
		framePool.Put(ch.buf)
		op.parked = op.parked[1:]
	}
	if op.frames > 0 {
		// Frames parked in the live accumulation blob.
		e.flushLocked(port, op, e.tel.flushRegister)
	}
	op.mu.Unlock()

	e.wg.Add(1)
	go e.routeFrom(port, gen, conn)
}

// reject answers a refused connection with its status and closes it.
func (e *Emulator) reject(conn net.Conn, port int, status uint8, err error) {
	e.rejected.Add(1)
	e.tel.rejected.Inc()
	e.recordErr(&PortError{Port: port, Op: "handshake", Err: err})
	if derr := conn.SetWriteDeadline(time.Now().Add(handshakeTimeout)); derr == nil {
		conn.Write([]byte{status, 0})
	}
	conn.Close()
}

// recordErr appends a structured port error.
func (e *Emulator) recordErr(pe *PortError) {
	e.mu.Lock()
	e.portErrs = append(e.portErrs, pe)
	e.mu.Unlock()
}

// routeFrom reads frames arriving on input port p and forwards each to
// output port (p + wavelength) mod N, applying the fault plan's grey
// drops, BER degradation, and stalls on the way through the grating.
//
// The loop owns one reusable frame buffer — ReadFrameInto decodes into
// it and deliver copies the frame into the destination port's batch, so
// the steady state allocates nothing. Batches this input contributed to
// are flushed whenever the input stream momentarily drains (the sender
// flushes once per epoch, so that is the epoch boundary).
func (e *Emulator) routeFrom(port, gen int, conn net.Conn) {
	defer e.wg.Done()
	br := bufio.NewReaderSize(conn, 64<<10)
	buf := make([]byte, 0, frameHeader+4096)
	dirty := make([]bool, e.ports)
	touched := make([]int, 0, e.ports)
	for {
		w, cellBytes, err := ReadFrameInto(br, &buf)
		if err != nil {
			e.flushDirty(dirty, &touched)
			e.inputDone(port, gen, conn, err)
			return
		}
		e.routeOne(port, w, buf[:frameHeader+len(cellBytes)], cellBytes, dirty, &touched)
		if br.Buffered() == 0 {
			// Input drained: the epoch burst is over. Flush every batch
			// this input touched so receivers see their cells now.
			e.flushDirty(dirty, &touched)
		}
	}
}

// routeOne pushes one decoded frame through the grating: fault-plan
// effects (stall, grey drop, payload corruption), then delivery into the
// destination port's batch. frame is the full wire frame and cellBytes
// aliases its payload; both live in the caller's reusable buffer, valid
// only until the next read.
func (e *Emulator) routeOne(port int, w uint8, frame, cellBytes []byte, dirty []bool, touched *[]int) {
	e.tel.portFrames[port].Inc()
	epoch := cellEpoch(cellBytes)
	if d := e.plan.StallDelay(port, epoch); d > 0 {
		e.flushDirty(dirty, touched)
		time.Sleep(d)
	}
	out := (port + int(w)) % e.ports
	if e.plan.GreyDrop(port, out, epoch) {
		e.greyDropped.Add(1)
		e.tel.greyDropped.Inc()
		return
	}
	if p := e.plan.FlipProb(port, epoch, e.flipProb); p > 0 && len(cellBytes) > cell.HeaderLen &&
		cell.Kind(cellBytes[1]) != cell.KindControl {
		// Corrupt payload bits only, and never control cells: cell headers
		// model the separately (and more strongly) FEC-protected framing,
		// so epoch numbers and piggybacked suspicions survive
		// receiver-sensitivity faults the way the payload does not — and
		// control cells (welcomes carry membership bitmaps in the payload)
		// ride under the same protection end to end.
		e.rmu[port].Lock()
		flips := corruptPayload(cellBytes[cell.HeaderLen:], p, e.rngs[port])
		e.rmu[port].Unlock()
		e.bitsFlipped.Add(flips)
		if flips > 0 {
			e.tel.bitsFlipped.Add(flips)
		}
	}
	// Rewrite the header in place (same length, same wavelength — the
	// AWGR is transparent) rather than rebuilding the frame.
	binary.BigEndian.PutUint32(frame[:4], uint32(len(cellBytes)))
	frame[4] = w
	e.routed.Add(1)
	e.tel.routed.Inc()
	e.deliver(out, frame)
	if !dirty[out] {
		dirty[out] = true
		*touched = append(*touched, out)
	}
}

// flushDirty flushes the batches of every port in the touched set and
// clears the set. Ports whose batches were already flushed (size/byte
// budget, idle sweep) no-op.
func (e *Emulator) flushDirty(dirty []bool, touched *[]int) {
	for _, out := range *touched {
		dirty[out] = false
		op := &e.out[out]
		op.mu.Lock()
		if op.conn != nil && op.frames > 0 {
			e.flushLocked(out, op, e.tel.flushDrain)
		}
		op.mu.Unlock()
	}
	*touched = (*touched)[:0]
}

// deliver appends one assembled frame to an output port's batch (flushing
// if a budget is hit), parking it if the port is expected but absent, and
// counting it dropped otherwise. The frame is copied into the batch blob;
// the caller keeps ownership of its buffer.
func (e *Emulator) deliver(out int, frame []byte) {
	op := &e.out[out]
	op.mu.Lock()
	if op.conn == nil {
		e.parkFrameLocked(op, frame)
		op.mu.Unlock()
		return
	}
	if op.frames > 0 {
		e.tel.coalesced.Inc()
	}
	e.appendLocked(op, frame)
	if op.frames >= e.batchFrames {
		e.flushLocked(out, op, e.tel.flushBatch)
	} else if len(*op.pending) >= e.batchBytes {
		e.flushLocked(out, op, e.tel.flushBytes)
	}
	op.mu.Unlock()
}

// appendLocked copies a frame into the port's accumulation blob, taking a
// pooled buffer if the port has none. Called with op.mu held.
func (e *Emulator) appendLocked(op *outPort, frame []byte) {
	if op.pending == nil {
		op.pending = framePool.Get().(*[]byte)
	}
	*op.pending = append(*op.pending, frame...)
	op.frames++
	op.appendSeq++
}

// flushLocked writes the port's batch in one conn.Write, attributing the
// flush to cause. On error the connection is retired and the unwritten
// batch parked (awaiting re-registration) or dropped. Called with op.mu
// held; the port index is only used for error bookkeeping.
func (e *Emulator) flushLocked(port int, op *outPort, cause *telemetry.Counter) {
	if op.frames == 0 || op.conn == nil {
		return
	}
	n := op.frames
	if _, err := op.conn.Write(*op.pending); err != nil {
		e.retireConnLocked(port, op, &PortError{Port: port, Op: "write", Err: err})
		return
	}
	*op.pending = (*op.pending)[:0]
	op.frames = 0
	cause.Inc()
	e.tel.batchFrames.Observe(float64(n))
}

// retireConnLocked tears a port's connection down after a write error:
// the error is recorded, the connection dropped, and the pending batch
// parked (if the port is expected back) or counted dropped. The fabric
// keeps running. Called with op.mu held.
func (e *Emulator) retireConnLocked(port int, op *outPort, pe *PortError) {
	if op.conn != nil {
		op.conn.Close()
		op.conn = nil
	}
	e.mu.Lock()
	e.portErrs = append(e.portErrs, pe)
	op.mayReconnect = e.mayReconnectLocked(port)
	e.mu.Unlock()
	if op.mayReconnect {
		// Expected back: the fabric is degraded until it returns.
		e.tel.health.SetCondition(emuPortKey(port), "write failed; awaiting re-registration")
	}
	e.parkPendingLocked(op)
}

// parkFrameLocked queues one frame for an absent port that is expected to
// (re)connect, or counts it dropped. Frames accumulate into the pooled
// blob and seal into parked chunks at the byte budget — no per-frame
// copy beyond the append itself. Called with op.mu held.
func (e *Emulator) parkFrameLocked(op *outPort, frame []byte) {
	if !op.mayReconnect || op.parkedFrames+op.frames >= parkLimit {
		e.dropped.Add(1)
		e.tel.dropped.Inc()
		return
	}
	e.appendLocked(op, frame)
	e.tel.parked.Inc()
	if len(*op.pending) >= e.batchBytes {
		e.sealPendingLocked(op)
	}
	e.notePark(op)
}

// parkPendingLocked converts the port's live batch into a parked chunk
// (ownership transfer, no copy) when the port is expected back, or counts
// the frames dropped. Called with op.mu held, op.conn nil.
func (e *Emulator) parkPendingLocked(op *outPort) {
	if op.frames == 0 {
		return
	}
	if op.mayReconnect && op.parkedFrames+op.frames <= parkLimit {
		e.tel.parked.Add(int64(op.frames))
		e.sealPendingLocked(op)
		e.notePark(op)
		return
	}
	e.dropped.Add(int64(op.frames))
	e.tel.dropped.Add(int64(op.frames))
	*op.pending = (*op.pending)[:0]
	op.frames = 0
}

// sealPendingLocked moves the accumulation blob into the parked list and
// leaves the port without a pending buffer. Called with op.mu held.
func (e *Emulator) sealPendingLocked(op *outPort) {
	if op.frames == 0 {
		return
	}
	op.parked = append(op.parked, parkedChunk{buf: op.pending, frames: op.frames})
	op.parkedFrames += op.frames
	op.pending = nil
	op.frames = 0
}

// notePark updates the park-queue high-water mark after frames were
// parked on op. Called with op.mu held.
func (e *Emulator) notePark(op *outPort) {
	cur := int64(op.parkedFrames + op.frames)
	for {
		old := e.parkedPeak.Load()
		if cur <= old {
			return
		}
		if e.parkedPeak.CompareAndSwap(old, cur) {
			e.tel.parkedPeak.SetInt(cur)
			return
		}
	}
}

// mayReconnectLocked reports whether the port is expected to (re)appear:
// it has never registered, or the fault plan scripts more registrations
// than it has consumed. Each port registers once at startup, once more
// after a scripted flap, and once more after a scripted rejoin (a restart
// following a crash, or a re-add following a drain). Called with e.mu
// held.
func (e *Emulator) mayReconnectLocked(out int) bool {
	if e.regCount[out] == 0 {
		return true
	}
	expected := 1
	if e.plan.FlapEpoch(out) >= 0 {
		expected++
	}
	if e.plan.RejoinEpoch(out) >= 0 {
		expected++
	}
	return e.regCount[out] < expected
}

// inputDone handles the end of a port's input stream. A clean EOF from a
// port with no pending scripted restart is that port's final word; once
// every registered port has spoken its last, the fabric is complete and
// the emulator flushes every batch, closes every connection (delivering
// EOF to all receivers), and stops serving.
func (e *Emulator) inputDone(port, gen int, conn net.Conn, err error) {
	op := &e.out[port]
	op.mu.Lock()
	if gen != op.gen {
		op.mu.Unlock()
		return // superseded by a re-registration
	}
	broken := err != io.EOF && err != io.ErrUnexpectedEOF
	if broken {
		// A broken connection (not a half-close): record it and drop the
		// conn entirely. The node may re-register; whatever was batched
		// for it parks until then.
		conn.Close()
		if op.conn == conn {
			op.conn = nil
			e.parkPendingLocked(op)
		}
		e.recordErr(&PortError{Port: port, Op: "read", Err: err})
	}
	e.mu.Lock()
	if e.mayReconnectLocked(port) && !e.closed {
		e.mu.Unlock()
		if broken {
			e.tel.health.SetCondition(emuPortKey(port), "read failed; awaiting re-registration")
		}
		op.mu.Unlock()
		return // not the port's last word: await re-registration
	}
	e.eofFinal[port] = true
	// The port's final word: whatever happened to it is no longer a
	// degraded condition but the fabric's new (compacted) shape.
	e.tel.health.ClearCondition(emuPortKey(port))
	complete := !e.completing && e.fabricDoneLocked()
	if complete {
		e.completing = true
	}
	e.mu.Unlock()
	op.mu.Unlock()
	if complete {
		e.finishFabric()
	}
}

// finishFabric runs once when the last input stream retires: flush every
// port's remaining batch (no input goroutine appends anymore, so batches
// are stable), then close the listener and all connections so every
// receiver sees EOF and Serve returns.
func (e *Emulator) finishFabric() {
	e.stopIdleFlusher()
	for p := range e.out {
		op := &e.out[p]
		op.mu.Lock()
		e.flushLocked(p, op, e.tel.flushDrain)
		if op.conn != nil {
			op.conn.Close()
			op.conn = nil
		}
		// Anything still held (a failed flush, frames parked for a port
		// that never returned) is accounted as dropped: routed frames
		// always land in delivered, dropped, or grey-dropped.
		e.discardHeldLocked(op)
		op.mu.Unlock()
	}
	e.ln.Close()
}

// fabricDoneLocked reports whether every port has registered and every
// input stream has reached its final EOF. Called with e.mu held.
func (e *Emulator) fabricDoneLocked() bool {
	for p := 0; p < e.ports; p++ {
		if e.regCount[p] == 0 || !e.eofFinal[p] {
			return false
		}
	}
	return true
}

// corruptPayload flips each bit of b independently with probability prob,
// using geometric skip sampling: instead of one Bernoulli draw per bit, it
// draws the gap to the next flipped bit as Geometric(prob) via
// floor(ln U / ln(1-prob)) — exactly the same per-bit distribution with
// ~1/prob fewer RNG calls. It returns the number of bits flipped.
func corruptPayload(b []byte, prob float64, r *rng.RNG) int64 {
	if prob <= 0 || len(b) == 0 {
		return 0
	}
	nbits := len(b) * 8
	invLn := 1 / math.Log1p(-prob) // negative
	var flips int64
	i := 0
	for {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		i += int(math.Log(u) * invLn) // gap: failures before the next flip
		if i >= nbits || i < 0 {
			return flips
		}
		b[i>>3] ^= 1 << uint(i&7)
		flips++
		i++
	}
}
