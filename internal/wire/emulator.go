package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sirius/internal/cell"
	"sirius/internal/fault"
	"sirius/internal/rng"
)

// parkLimit caps the number of frames held for a port that is expected to
// (re)connect. Beyond it, frames are counted dropped — the emulator never
// grows without bound because of one absent node.
const parkLimit = 4096

// handshakeTimeout bounds how long a fresh connection may take to present
// its 4-byte handshake before being rejected. A client that connects and
// stalls must not pin emulator resources.
const handshakeTimeout = 5 * time.Second

// PortError is a structured per-port failure observed by the emulator. One
// broken port never takes the fabric down; the error is recorded and the
// emulator keeps serving the others.
type PortError struct {
	Port int
	Op   string // "handshake", "read", "write"
	Err  error
}

func (e *PortError) Error() string {
	return fmt.Sprintf("wire: port %d: %s: %v", e.Port, e.Op, e.Err)
}

// Unwrap exposes the underlying error.
func (e *PortError) Unwrap() error { return e.Err }

// Emulator is the AWGR stand-in: a process that accepts one TCP connection
// per grating port and routes each wavelength-tagged frame to output port
// (input + wavelength) mod N, exactly the cyclic rule of a physical
// arrayed-waveguide grating.
//
// The emulator is resilient by construction: the accept loop never stops
// on a bad client (it rejects with a status reply and keeps listening), a
// re-registering node replaces its prior connection, frames routed toward
// an absent-but-expected port are parked and flushed on (re)registration,
// and per-port write errors are recorded instead of fatal. Serve returns
// only when the whole fabric has completed — every port registered and
// every input stream reached its final EOF — or on Close.
type Emulator struct {
	ln       net.Listener
	ports    int
	flipProb float64
	plan     *fault.Plan

	mu         sync.Mutex
	conns      []net.Conn // current connection per port (nil when absent)
	gen        []int      // per-port connection generation
	regCount   []int      // how many times the port has registered
	eofFinal   []bool     // the port's input stream has spoken its last
	parked     [][][]byte // frames awaiting the port's (re)connection
	portErrs   []error    // structured per-port failures, in order observed
	closed     bool       // Close was called
	completing bool       // fabric completed; shutting down

	wmu []sync.Mutex // per-output-port write serialization

	// Per-input-port corruption substreams: rngs[p] is seeded from
	// PointSeed(seed, p) and consumed in that port's frame order, so bit
	// flips are deterministic for a given (seed, frame history) no matter
	// how the per-port goroutines interleave. rmu guards against the brief
	// overlap window during a re-registration.
	rmu  []sync.Mutex
	rngs []*rng.RNG

	routed      atomic.Int64
	bitsFlipped atomic.Int64
	dropped     atomic.Int64 // frames lost to dead or over-parked ports
	greyDropped atomic.Int64 // frames blackholed by Grey fault events
	rejected    atomic.Int64 // connections refused at handshake

	// tel mirrors the counters above into a telemetry registry (the
	// process Default unless Instrument overrode it) and optionally
	// flips health conditions while a registered port's connection is
	// broken but expected back. Set before Serve, read-only after.
	tel *emuTel

	wg sync.WaitGroup
}

// NewEmulator listens on an ephemeral localhost port.
func NewEmulator(ports int, flipProb float64, seed uint64) (*Emulator, error) {
	return NewEmulatorAddr("127.0.0.1:0", ports, flipProb, seed)
}

// NewEmulatorAddr listens on the given address with no fault plan.
func NewEmulatorAddr(addr string, ports int, flipProb float64, seed uint64) (*Emulator, error) {
	return NewEmulatorFault(addr, ports, flipProb, seed, nil)
}

// NewEmulatorFault listens on the given address and consults the given
// fault plan (which may be nil) while routing.
func NewEmulatorFault(addr string, ports int, flipProb float64, seed uint64, plan *fault.Plan) (*Emulator, error) {
	if ports < 2 {
		return nil, fmt.Errorf("wire: need >= 2 ports")
	}
	if flipProb < 0 || flipProb >= 1 {
		return nil, fmt.Errorf("wire: flip probability %v outside [0,1)", flipProb)
	}
	if err := plan.Validate(ports); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	e := &Emulator{
		ln:       ln,
		ports:    ports,
		flipProb: flipProb,
		plan:     plan,
		conns:    make([]net.Conn, ports),
		gen:      make([]int, ports),
		regCount: make([]int, ports),
		eofFinal: make([]bool, ports),
		parked:   make([][][]byte, ports),
		wmu:      make([]sync.Mutex, ports),
		rmu:      make([]sync.Mutex, ports),
		rngs:     make([]*rng.RNG, ports),
	}
	for p := 0; p < ports; p++ {
		e.rngs[p] = rng.New(rng.PointSeed(seed, uint64(p)))
	}
	e.tel = newEmuTel(nil, nil, ports)
	return e, nil
}

// Addr returns the listen address.
func (e *Emulator) Addr() string { return e.ln.Addr().String() }

// Routed returns the number of frames forwarded so far.
func (e *Emulator) Routed() int64 { return e.routed.Load() }

// BitsFlipped returns the number of payload bits corrupted so far.
func (e *Emulator) BitsFlipped() int64 { return e.bitsFlipped.Load() }

// Dropped returns frames lost to dead or over-parked output ports.
func (e *Emulator) Dropped() int64 { return e.dropped.Load() }

// GreyDropped returns frames blackholed by Grey fault events.
func (e *Emulator) GreyDropped() int64 { return e.greyDropped.Load() }

// Rejected returns the number of connections refused at handshake.
func (e *Emulator) Rejected() int64 { return e.rejected.Load() }

// PortErrors returns the structured per-port failures observed so far.
func (e *Emulator) PortErrors() []error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]error(nil), e.portErrs...)
}

// Close shuts the emulator down: the listener and all connections are
// closed and Serve returns nil. Idempotent.
func (e *Emulator) Close() error {
	e.mu.Lock()
	e.closed = true
	e.closeAllLocked()
	e.mu.Unlock()
	return nil
}

// closeAllLocked closes the listener and every registered connection.
func (e *Emulator) closeAllLocked() {
	e.ln.Close()
	for p, c := range e.conns {
		if c != nil {
			c.Close()
			e.conns[p] = nil
		}
	}
}

// Serve accepts connections and routes frames until the fabric completes
// (every port registered at least once and every input reached its final
// EOF) or Close is called. A malformed, duplicate, or out-of-range
// handshake rejects that one connection — with a status reply naming the
// reason — and the accept loop keeps going: a buggy or malicious client
// cannot take the fabric down.
func (e *Emulator) Serve() error {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			e.wg.Wait()
			e.mu.Lock()
			done := e.closed || e.completing
			e.mu.Unlock()
			if done {
				return nil
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		e.wg.Add(1)
		go e.admit(conn)
	}
}

// admit performs the handshake on a fresh connection and, on success,
// registers it and starts routing its frames.
func (e *Emulator) admit(conn net.Conn) {
	defer e.wg.Done()
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var h [hsLen]byte
	if _, err := io.ReadFull(conn, h[:]); err != nil {
		e.rejected.Add(1)
		e.tel.rejected.Inc()
		e.recordErr(&PortError{Port: -1, Op: "handshake", Err: err})
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	port, flags, status, err := ParseHandshake(h, e.ports)
	if err != nil {
		e.reject(conn, port, status, err)
		return
	}

	e.mu.Lock()
	if e.closed || e.completing {
		e.mu.Unlock()
		conn.Close()
		return
	}
	if e.conns[port] != nil && flags&HsReRegister == 0 {
		e.mu.Unlock()
		e.reject(conn, port, HsDuplicate, fmt.Errorf("wire: port %d already connected", port))
		return
	}
	if old := e.conns[port]; old != nil {
		old.Close() // superseded by the re-registration
	}
	e.gen[port]++
	gen := e.gen[port]
	e.conns[port] = conn
	e.regCount[port]++
	e.eofFinal[port] = false // a re-registered port speaks again
	queued := e.parked[port]
	e.parked[port] = nil
	e.mu.Unlock()
	e.tel.registered.Inc()
	e.tel.health.ClearCondition(emuPortKey(port))

	if _, err := conn.Write([]byte{HsOK, uint8(port)}); err != nil {
		e.writeFailed(port, gen, err, nil)
		return
	}
	if len(queued) > 0 {
		e.wmu[port].Lock()
		var werr error
		for _, f := range queued {
			if _, werr = conn.Write(f); werr != nil {
				break
			}
		}
		e.wmu[port].Unlock()
		if werr != nil {
			e.writeFailed(port, gen, werr, nil)
			return
		}
	}
	e.wg.Add(1)
	go e.routeFrom(port, gen, conn)
}

// reject answers a refused connection with its status and closes it.
func (e *Emulator) reject(conn net.Conn, port int, status uint8, err error) {
	e.rejected.Add(1)
	e.tel.rejected.Inc()
	e.recordErr(&PortError{Port: port, Op: "handshake", Err: err})
	conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	conn.Write([]byte{status, 0})
	conn.Close()
}

// recordErr appends a structured port error.
func (e *Emulator) recordErr(pe *PortError) {
	e.mu.Lock()
	e.portErrs = append(e.portErrs, pe)
	e.mu.Unlock()
}

// routeFrom reads frames arriving on input port p and forwards each to
// output port (p + wavelength) mod N, applying the fault plan's grey
// drops, BER degradation, and stalls on the way through the grating.
func (e *Emulator) routeFrom(port, gen int, conn net.Conn) {
	defer e.wg.Done()
	br := bufio.NewReaderSize(conn, 64<<10)
	frame := make([]byte, frameHeader, frameHeader+4096)
	for {
		w, cellBytes, err := ReadFrame(br)
		if err != nil {
			e.inputDone(port, gen, conn, err)
			return
		}
		e.tel.portFrames[port].Inc()
		epoch := cellEpoch(cellBytes)
		if d := e.plan.StallDelay(port, epoch); d > 0 {
			time.Sleep(d)
		}
		out := (port + int(w)) % e.ports
		if e.plan.GreyDrop(port, out, epoch) {
			e.greyDropped.Add(1)
			e.tel.greyDropped.Inc()
			continue
		}
		if p := e.plan.FlipProb(port, epoch, e.flipProb); p > 0 && len(cellBytes) > cell.HeaderLen {
			// Corrupt payload bits only: cell headers model the separately
			// (and more strongly) FEC-protected framing, so epoch numbers
			// and piggybacked suspicions survive receiver-sensitivity
			// faults the way the payload does not.
			e.rmu[port].Lock()
			flips := corruptPayload(cellBytes[cell.HeaderLen:], p, e.rngs[port])
			e.rmu[port].Unlock()
			e.bitsFlipped.Add(flips)
			if flips > 0 {
				e.tel.bitsFlipped.Add(flips)
			}
		}
		frame = frame[:frameHeader]
		binary.BigEndian.PutUint32(frame[:4], uint32(len(cellBytes)))
		frame[4] = w
		frame = append(frame, cellBytes...)
		e.routed.Add(1)
		e.tel.routed.Inc()
		e.deliver(out, frame)
	}
}

// deliver writes one assembled frame to an output port, parking it if the
// port is expected but absent, and counting it dropped otherwise.
func (e *Emulator) deliver(out int, frame []byte) {
	e.mu.Lock()
	conn := e.conns[out]
	if conn == nil {
		e.parkOrDropLocked(out, frame)
		e.mu.Unlock()
		return
	}
	gen := e.gen[out]
	e.mu.Unlock()

	e.wmu[out].Lock()
	_, err := conn.Write(frame)
	e.wmu[out].Unlock()
	if err != nil {
		e.writeFailed(out, gen, err, frame)
	}
}

// parkOrDropLocked queues a frame for an absent port that is expected to
// (re)connect, or counts it dropped. Called with e.mu held.
func (e *Emulator) parkOrDropLocked(out int, frame []byte) {
	if e.mayReconnectLocked(out) && len(e.parked[out]) < parkLimit {
		e.parked[out] = append(e.parked[out], append([]byte(nil), frame...))
		e.tel.parked.Inc()
		return
	}
	e.dropped.Add(1)
	e.tel.dropped.Inc()
}

// mayReconnectLocked reports whether the port is expected to (re)appear:
// it has never registered, or the fault plan scripts a restart it has not
// yet consumed. Called with e.mu held.
func (e *Emulator) mayReconnectLocked(out int) bool {
	if e.regCount[out] == 0 {
		return true
	}
	return e.plan.RestartEpoch(out) >= 0 && e.regCount[out] < 2
}

// writeFailed tears down a port's connection after a write error: the
// error is recorded, the connection dropped, and the frame (if any) parked
// or counted dropped. The fabric keeps running.
func (e *Emulator) writeFailed(port, gen int, err error, frame []byte) {
	e.mu.Lock()
	if gen == e.gen[port] && e.conns[port] != nil {
		e.conns[port].Close()
		e.conns[port] = nil
		e.portErrs = append(e.portErrs, &PortError{Port: port, Op: "write", Err: err})
		if e.mayReconnectLocked(port) {
			// Expected back: the fabric is degraded until it returns.
			e.tel.health.SetCondition(emuPortKey(port), "write failed; awaiting re-registration")
		}
	}
	if frame != nil {
		e.parkOrDropLocked(port, frame)
	}
	e.mu.Unlock()
}

// inputDone handles the end of a port's input stream. A clean EOF from a
// port with no pending scripted restart is that port's final word; once
// every registered port has spoken its last, the fabric is complete and
// the emulator closes every connection (delivering EOF to all receivers)
// and stops serving.
func (e *Emulator) inputDone(port, gen int, conn net.Conn, err error) {
	e.mu.Lock()
	if gen != e.gen[port] {
		e.mu.Unlock()
		return // superseded by a re-registration
	}
	if err != io.EOF && err != io.ErrUnexpectedEOF {
		// A broken connection (not a half-close): record it and drop the
		// conn entirely. The node may re-register.
		e.portErrs = append(e.portErrs, &PortError{Port: port, Op: "read", Err: err})
		conn.Close()
		if e.conns[port] == conn {
			e.conns[port] = nil
		}
	}
	if e.mayReconnectLocked(port) && !e.closed {
		if err != io.EOF && err != io.ErrUnexpectedEOF {
			e.tel.health.SetCondition(emuPortKey(port), "read failed; awaiting re-registration")
		}
		e.mu.Unlock()
		return // not the port's last word: await re-registration
	}
	e.eofFinal[port] = true
	// The port's final word: whatever happened to it is no longer a
	// degraded condition but the fabric's new (compacted) shape.
	e.tel.health.ClearCondition(emuPortKey(port))
	complete := !e.completing && e.fabricDoneLocked()
	if complete {
		e.completing = true
		e.closeAllLocked()
	}
	e.mu.Unlock()
}

// fabricDoneLocked reports whether every port has registered and every
// input stream has reached its final EOF. Called with e.mu held.
func (e *Emulator) fabricDoneLocked() bool {
	for p := 0; p < e.ports; p++ {
		if e.regCount[p] == 0 || !e.eofFinal[p] {
			return false
		}
	}
	return true
}

// corruptPayload flips each bit of b independently with probability prob,
// using geometric skip sampling: instead of one Bernoulli draw per bit, it
// draws the gap to the next flipped bit as Geometric(prob) via
// floor(ln U / ln(1-prob)) — exactly the same per-bit distribution with
// ~1/prob fewer RNG calls. It returns the number of bits flipped.
func corruptPayload(b []byte, prob float64, r *rng.RNG) int64 {
	if prob <= 0 || len(b) == 0 {
		return 0
	}
	nbits := len(b) * 8
	invLn := 1 / math.Log1p(-prob) // negative
	var flips int64
	i := 0
	for {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		i += int(math.Log(u) * invLn) // gap: failures before the next flip
		if i >= nbits || i < 0 {
			return flips
		}
		b[i>>3] ^= 1 << uint(i&7)
		flips++
		i++
	}
}
