package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sirius/internal/cell"
	"sirius/internal/fault"
	"sirius/internal/health"
	"sirius/internal/phy"
	"sirius/internal/rng"
	"sirius/internal/schedule"
	"sirius/internal/telemetry"
)

// Defaults for NodeConfig's zero values.
const (
	defaultTimeout           = 10 * time.Second
	defaultSuspectTimeout    = 2 * time.Second
	defaultMissThreshold     = 3
	defaultReconnectAttempts = 8
	defaultReconnectBase     = 10 * time.Millisecond
	reconnectCap             = 640 * time.Millisecond
)

// fecThreshold is the pre-FEC bit error rate below which the KP4-class FEC
// assumed by the paper corrects everything: runs at or under it claim
// post-FEC error-free operation.
const fecThreshold = 2e-4

// NodeConfig configures one emulated node process.
type NodeConfig struct {
	ID           int
	Addr         string
	Nodes        int
	Epochs       int
	PayloadBytes int

	// Timeout is the rolling progress deadline: the node fails only after
	// this long with no frame received, no epoch transmitted, and no
	// reconnection — it rolls forward on progress instead of capping the
	// whole run. Default 10s.
	Timeout time.Duration

	// SuspectTimeout bounds how long the epoch gate waits for lagging
	// peers before judging them (health.Observer) and proceeding
	// optimistically. It is the wall-clock proxy for the paper's
	// epoch-scale silence detection. Default 2s.
	SuspectTimeout time.Duration

	// MissThreshold is how many consecutive silent epochs an observer
	// tolerates before suspecting a peer (§4.5). Default 3.
	MissThreshold int

	// Plan scripts this node's crash or restart, if any.
	Plan *fault.Plan

	// ReconnectAttempts and ReconnectBase shape the capped exponential
	// backoff used to re-register after a broken connection. Defaults: 8
	// attempts starting at 10ms, doubling, capped at 640ms.
	ReconnectAttempts int
	ReconnectBase     time.Duration

	// TrackEpochs records per-epoch received-cell counts in
	// NodeStats.RxPerEpoch (for goodput-over-time analysis).
	TrackEpochs bool

	// Telemetry receives this node's runtime counters (cells sent /
	// received / misrouted, bit errors, reconnects, suspicions,
	// schedule switches). Nil uses the process-wide telemetry.Default.
	Telemetry *telemetry.Registry

	// Health, when non-nil, tracks degraded conditions: a broken link
	// while reconnecting, and each suspected peer until the fabric-wide
	// schedule switch resolves it.
	Health *telemetry.Health

	// Tracer, when non-nil, records per-epoch spans and instants
	// (crash, suspicion, switch) for Chrome trace-event timelines.
	Tracer *telemetry.Tracer
}

// PeerFailure records one peer's detected failure as this node saw it:
// suspicion raised at SuspectEpoch, flood received fabric-wide by
// ConfirmEpoch, and the compacted schedule adopted at SwitchEpoch.
type PeerFailure struct {
	Peer         int
	SuspectEpoch int
	ConfirmEpoch int
	SwitchEpoch  int
}

// MemberChange records one applied membership switch as this node saw
// it: at Epoch the fabric recomputed its schedule because Node failed
// ("fail"), drained out ("leave"), or was admitted ("join"). Every
// survivor that witnessed the whole run records the identical sequence —
// the no-desync acceptance check.
type MemberChange struct {
	Epoch int
	Node  int
	Kind  string // "fail" | "leave" | "join"
}

// NodeStats summarizes one node's run.
type NodeStats struct {
	Node       int
	Sent       int
	Received   int
	Misrouted  int
	BitErrors  int64
	Bits       int64
	Reconnects int  // successful re-registrations
	Crashed    bool // this node executed a scripted Crash
	Ejected    bool // the fabric confirmed this node failed (grey victim)
	Drained    bool // this node completed a planned drain (zero-loss detach)
	Rejoins    int  // times re-admitted after a crash or drain
	JoinedAt   int  // epoch first admitted (0 for founders, the switch epoch for joiners)
	Failures   []PeerFailure
	Changes    []MemberChange // applied membership switches, in order
	RxPerEpoch []int          // per-epoch received cells (TrackEpochs only)
}

// BER returns the measured pre-FEC bit error rate.
func (s NodeStats) BER() float64 {
	if s.Bits == 0 {
		return 0
	}
	return float64(s.BitErrors) / float64(s.Bits)
}

// prbsSeed derives the per-cell PRBS seed from (src, dst, seq). Seeding
// every cell independently means a lost or reordered cell never
// desynchronizes the receiver's checker: each payload is verified against
// a stream both ends can regenerate from the header alone.
func prbsSeed(src, dst uint16, seq uint32) uint32 {
	s := rng.PointSeed(uint64(src)<<48|uint64(dst)<<32|uint64(seq), 0xce11)
	return uint32(s&0x7fffffff) | 1
}

// announcement is one lifecycle/failure fact being flooded: a suspicion,
// a join, or a planned drain, each with its agreed switch epoch.
type announcement struct {
	kind byte // annSuspect | annJoin | annDrain
	node int
	sw   int
}

const (
	annSuspect byte = iota
	annJoin
	annDrain
)

// node is the run state of one emulated node.
type node struct {
	cfg  NodeConfig
	mu   sync.Mutex
	cond *sync.Cond

	conn      net.Conn // guarded by mu
	gen       int      // connection generation; bumped by relink
	relinking bool     // a relink is in flight; others wait
	quietLink bool     // next relink is a planned detach/re-attach: no health condition

	heard       []int  // highest epoch heard from each original peer (-1 never)
	suspected   []bool // peer is suspected failed (locally or by flood)
	switchEpoch []int  // agreed schedule-switch epoch per suspected peer
	applied     []bool // peer's failure already folded into the schedule
	failures    []PeerFailure
	obs         *health.Observer

	// Membership state (the lifecycle plane). member is the applied
	// membership; joinAt/leaveAt are pending admissions/drains keyed by
	// their agreed switch epoch (-1 none), folded in by
	// applySwitchesLocked exactly like failure suspicions. joinDone and
	// leaveDone are once-per-plan guards (Validate allows one admission
	// and one drain per node). helloSeen tracks which scripted joiners
	// have announced themselves; the expansion gate holds until all of
	// an epoch's joiners have said hello.
	member     []bool
	joinAt     []int
	leaveAt    []int
	joinDone   []bool
	leaveDone  []bool
	helloSeen  []bool
	everMember bool

	// waitingHellos marks a gate held open for a scripted joiner's hello;
	// like dormancy it is legitimate planned idleness, so the watchdog
	// extends its leash while it is set.
	waitingHellos bool

	// Dormant state: the node is registered with the emulator but not a
	// member (an expansion joiner before admission, or a crashed/drained
	// node awaiting its scripted rejoin). A dormant node discards
	// everything it receives except a welcome addressed to it.
	dormant        bool
	welcomeS       int    // switch epoch from the best welcome so far (-1 none)
	welcomeMembers []bool // membership bitmap carried by that welcome

	base  schedule.Schedule // the full-fabric schedule Compact works from
	sched schedule.Schedule // current schedule (over the active members)
	live  []int             // compact index -> original node id
	myIdx int               // this node's index in the current schedule

	txDone   bool
	rxDone   bool
	detached bool // no further connection will exist (terminal crash/drain)
	fatalErr error

	progress atomic.Int64 // bumped on any rx frame / tx epoch / reconnect
	stats    NodeStats
	tel      nodeTel
}

// RunNode runs one node of the prototype fabric to completion and returns
// its statistics. It connects to the emulator, follows the cyclic
// schedule epoch by epoch — gated on having heard every live peer's
// previous epoch, so the fabric self-clocks — transmits per-cell-seeded
// PRBS payloads, verifies everything it receives, detects silent peers,
// floods suspicions piggybacked on data cells, and switches to a
// compacted schedule at the agreed epoch boundary.
func RunNode(cfg NodeConfig) (*NodeStats, error) {
	if cfg.Nodes < 2 || cfg.Nodes > maxPorts {
		return nil, fmt.Errorf("wire: need 2..%d nodes, got %d (the wavelength and handshake port fields are one byte; see docs/PROTOCOL.md)", maxPorts, cfg.Nodes)
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Nodes {
		return nil, fmt.Errorf("wire: node id %d out of range [0,%d)", cfg.ID, cfg.Nodes)
	}
	if cfg.PayloadBytes < 1 {
		return nil, fmt.Errorf("wire: need >= 1 payload byte")
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultTimeout
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = defaultSuspectTimeout
	}
	if cfg.MissThreshold <= 0 {
		cfg.MissThreshold = defaultMissThreshold
	}
	if cfg.ReconnectAttempts <= 0 {
		cfg.ReconnectAttempts = defaultReconnectAttempts
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = defaultReconnectBase
	}

	base, err := schedule.NewGrouped(cfg.Nodes, cfg.Nodes, 1)
	if err != nil {
		return nil, err
	}
	obs, err := health.NewObserver(cfg.Nodes, cfg.MissThreshold)
	if err != nil {
		return nil, err
	}

	joiners := cfg.Plan.Joiners()
	if cfg.Nodes-len(joiners) < 2 {
		return nil, fmt.Errorf("wire: only %d initial members (need >= 2): %d of %d nodes join late",
			cfg.Nodes-len(joiners), len(joiners), cfg.Nodes)
	}
	if err := validateLifecycleHorizon(cfg); err != nil {
		return nil, err
	}

	n := &node{
		cfg:         cfg,
		heard:       make([]int, cfg.Nodes),
		suspected:   make([]bool, cfg.Nodes),
		switchEpoch: make([]int, cfg.Nodes),
		applied:     make([]bool, cfg.Nodes),
		obs:         obs,
		member:      make([]bool, cfg.Nodes),
		joinAt:      make([]int, cfg.Nodes),
		leaveAt:     make([]int, cfg.Nodes),
		joinDone:    make([]bool, cfg.Nodes),
		leaveDone:   make([]bool, cfg.Nodes),
		helloSeen:   make([]bool, cfg.Nodes),
		welcomeS:    -1,
		base:        base,
		stats:       NodeStats{Node: cfg.ID},
	}
	n.cond = sync.NewCond(&n.mu)
	n.tel = newNodeTel(cfg)
	for i := range n.heard {
		n.heard[i] = -1
		n.switchEpoch[i] = -1
		n.joinAt[i] = -1
		n.leaveAt[i] = -1
		n.member[i] = true
	}
	for _, j := range joiners {
		n.member[j] = false
	}
	n.everMember = n.member[cfg.ID]
	n.dormant = !n.member[cfg.ID]
	if err := n.rebuildScheduleLocked(); err != nil {
		return nil, err
	}
	if cfg.TrackEpochs {
		n.stats.RxPerEpoch = make([]int, cfg.Epochs)
	}

	conn, err := dialRegister(cfg, 0)
	if err != nil {
		return nil, err
	}
	n.conn = conn

	stop := make(chan struct{})
	defer close(stop)
	go n.watchdog(stop)
	go n.rxLoop()

	if err := n.txLoop(); err != nil {
		n.fail(err)
	}

	// Wait for the receive side to drain to EOF (the emulator closes all
	// connections once the whole fabric has completed).
	n.mu.Lock()
	for !n.rxDone && n.fatalErr == nil {
		n.cond.Wait()
	}
	err = n.fatalErr
	n.stats.Failures = append([]PeerFailure(nil), n.failures...)
	stats := n.stats
	n.mu.Unlock()
	if err != nil {
		return &stats, err
	}
	return &stats, nil
}

// validateLifecycleHorizon rejects plans whose lifecycle switch epochs
// land at or beyond the run horizon: an admission that can never be
// applied leaves a dormant node waiting forever, and a drain that never
// switches is a silent no-op. (Rejoin switch epochs are proposal-time
// dependent; epoch+2 is the earliest they can land, so the check is a
// necessary floor — plans should leave extra headroom.)
func validateLifecycleHorizon(cfg NodeConfig) error {
	for node := 0; node < cfg.Nodes; node++ {
		for _, ev := range []struct {
			kind  string
			epoch int
		}{
			{"expand", cfg.Plan.ExpandEpoch(node)},
			{"drain", cfg.Plan.DrainEpoch(node)},
			{"rejoin", cfg.Plan.RejoinEpoch(node)},
		} {
			if ev.epoch >= 0 && ev.epoch+2 >= cfg.Epochs {
				return fmt.Errorf("wire: %s of node %d switches at epoch %d, at or past the run's %d epochs",
					ev.kind, node, ev.epoch+2, cfg.Epochs)
			}
		}
	}
	return nil
}

// dialRegister connects to the emulator and performs the handshake.
// flags carries HsReRegister on reconnections.
func dialRegister(cfg NodeConfig, flags uint8) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", cfg.Addr, cfg.Timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: node %d: %w", cfg.ID, err)
	}
	h := EncodeHandshake(cfg.ID, flags)
	if _, err := conn.Write(h[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: node %d: handshake: %w", cfg.ID, err)
	}
	var reply [hsReplyLen]byte
	conn.SetReadDeadline(time.Now().Add(cfg.Timeout))
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: node %d: handshake reply: %w", cfg.ID, err)
	}
	conn.SetReadDeadline(time.Time{})
	if reply[0] != HsOK {
		conn.Close()
		return nil, fmt.Errorf("wire: node %d: emulator rejected registration: %s",
			cfg.ID, hsStatusString(reply[0]))
	}
	return conn, nil
}

// fail records a fatal error (once), closes the connection so blocked
// reads unwind, and wakes every waiter.
func (n *node) fail(err error) {
	n.mu.Lock()
	if n.fatalErr == nil && err != nil {
		n.fatalErr = err
	}
	if n.conn != nil {
		n.conn.Close()
	}
	n.cond.Broadcast()
	n.mu.Unlock()
}

// watchdog enforces the rolling progress deadline: three consecutive
// windows of Timeout/3 with no progress — no frame received, no epoch
// sent, no reconnection — fail the node. Any progress resets the clock,
// so a long run never needs an absolute deadline sized in advance.
func (n *node) watchdog(stop chan struct{}) {
	tick := n.cfg.Timeout / 3
	if tick <= 0 {
		tick = time.Second
	}
	last := n.progress.Load()
	strikes := 0
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		n.mu.Lock()
		done := n.rxDone && n.txDone
		patient := n.dormant || n.waitingHellos
		n.mu.Unlock()
		if done {
			return
		}
		if now := n.progress.Load(); now != last {
			last, strikes = now, 0
			continue
		}
		// A dormant node awaiting its welcome, or a member holding a gate
		// for a scripted joiner's hello, is legitimately idle: leash it at
		// 10x the normal budget instead of 1x, so planned lifecycle waits
		// survive while a truly wedged fabric still fails.
		limit := 3
		if patient {
			limit = 30
		}
		strikes++
		if strikes >= limit {
			n.fail(fmt.Errorf("wire: node %d: no progress for %v", n.cfg.ID,
				time.Duration(limit)*tick))
			return
		}
	}
}

// relink replaces a broken connection with capped exponential backoff and
// an HsReRegister handshake. failedGen identifies the connection the
// caller saw fail; if another goroutine already replaced it, relink
// returns immediately. On permanent failure the node fails.
func (n *node) relink(failedGen int) error {
	n.mu.Lock()
	for n.relinking {
		// Another goroutine (tx vs rx) observed the same failure first;
		// wait for its verdict rather than double-dialing.
		n.cond.Wait()
	}
	if n.gen != failedGen {
		n.mu.Unlock()
		return nil // already replaced
	}
	if n.fatalErr != nil {
		err := n.fatalErr
		n.mu.Unlock()
		return err
	}
	n.relinking = true
	// A planned detach/re-attach (drain cycle) is not an incident: skip
	// the degraded-health condition so /healthz stays green through it.
	quiet := n.quietLink
	if n.conn != nil {
		n.conn.Close()
		n.conn = nil
	}
	n.mu.Unlock()
	if !quiet {
		n.tel.health.SetCondition(n.tel.linkKey(), "link down; reconnecting")
	}
	defer func() {
		n.mu.Lock()
		n.relinking = false
		n.cond.Broadcast()
		n.mu.Unlock()
	}()

	backoff := n.cfg.ReconnectBase
	var lastErr error
	for attempt := 0; attempt < n.cfg.ReconnectAttempts; attempt++ {
		conn, err := dialRegister(n.cfg, HsReRegister)
		if err == nil {
			n.mu.Lock()
			n.conn = conn
			n.gen++
			n.stats.Reconnects++
			n.quietLink = false
			// Forgive the gap our own outage created: peers transmitted
			// while we were deaf, so judging them by pre-outage hearsay
			// would manufacture false suspicions.
			n.progress.Add(1)
			n.cond.Broadcast()
			n.mu.Unlock()
			n.tel.reconnects.Inc()
			if !quiet {
				n.tel.health.ClearCondition(n.tel.linkKey())
			}
			n.tel.tracer.Instant("reconnect", "wire.node", n.cfg.ID, nil)
			return nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff *= 2; backoff > reconnectCap {
			backoff = reconnectCap
		}
	}
	err := fmt.Errorf("wire: node %d: reconnect failed after %d attempts: %w",
		n.cfg.ID, n.cfg.ReconnectAttempts, lastErr)
	n.fail(err)
	return err
}

// currentConn snapshots the connection and its generation.
func (n *node) currentConn() (net.Conn, int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conn, n.gen
}

// ---- Transmit side ----

// txLoop drives the scheduled epochs: gate, transmit, flush; with scripted
// crash/flap/drain hooks at epoch boundaries, dormant phases around
// admissions (expansion joiners, post-crash/drain rejoins), and a
// half-close when done so the emulator learns this input has spoken its
// last.
func (n *node) txLoop() error {
	me := n.cfg.ID
	crashAt := n.cfg.Plan.CrashEpoch(me)
	flapAt := n.cfg.Plan.FlapEpoch(me)
	rejoinAt := n.cfg.Plan.RejoinEpoch(me)
	detachAt := -1
	if d := n.cfg.Plan.DrainEpoch(me); d >= 0 {
		// The drain is announced at d (gate d proposes switch epoch d+2);
		// the node transmits epochs [0, d+2) and detaches at d+2.
		detachAt = d + 2
	}

	payload := make([]byte, n.cfg.PayloadBytes)
	prbs := phy.NewPRBS(1)
	encodeBuf := make([]byte, 0, frameHeader+cell.HeaderLen+n.cfg.PayloadBytes)

	conn, gen := n.currentConn()
	bw := bufio.NewWriterSize(conn, 64<<10)

	g := 0
	if n.isDormant() {
		// Expansion joiner: announce attachment to the fabric, then wait
		// to be welcomed in at an agreed switch epoch.
		if err := n.announceHello(bw, conn); err != nil {
			return err
		}
		s, err := n.awaitWelcome()
		if err != nil {
			return err
		}
		g = s
	}

	for g < n.cfg.Epochs {
		if g == crashAt {
			// Fail-stop: die mid-fabric with no farewell. The peers must
			// notice from silence alone.
			n.tel.tracer.Instant("crash", "wire.node", me, nil)
			n.mu.Lock()
			n.stats.Crashed = true
			failedGen := n.gen
			if n.conn != nil {
				n.conn.Close()
			}
			if rejoinAt < 0 {
				n.txDone = true
				n.detached = true
				n.cond.Broadcast()
				n.mu.Unlock()
				return nil
			}
			// A rolling restart is scripted: come back dormant on a fresh
			// registration and wait for the survivors to re-admit us.
			n.dormant = true
			n.cond.Broadcast()
			n.mu.Unlock()
			if err := n.relink(failedGen); err != nil {
				return err
			}
			conn, gen = n.currentConn()
			bw = bufio.NewWriterSize(conn, 64<<10)
			s, err := n.awaitWelcome()
			if err != nil {
				return err
			}
			g = s
			continue
		}
		if g == flapAt {
			// Scripted link flap: drop the connection and re-register.
			n.mu.Lock()
			failedGen := n.gen
			if n.conn != nil {
				n.conn.Close()
			}
			n.mu.Unlock()
			if err := n.relink(failedGen); err != nil {
				return err
			}
			conn, gen = n.currentConn()
			bw = bufio.NewWriterSize(conn, 64<<10)
		}
		if g == detachAt {
			// Planned drain: the fabric agreed (at gate detachAt-2) that we
			// stop being scheduled from this epoch. Wait until every cell
			// addressed to us has arrived — zero loss — then detach.
			if err := n.drainGate(detachAt); err != nil {
				return err
			}
			n.tel.tracer.Instant("drain-detach", "wire.node", me, nil)
			n.mu.Lock()
			n.stats.Drained = true
			// The plan's drain is consumed by this detach. Without the
			// guard, a re-added node would re-propose its own long-past
			// drain (its leaveDone was never set: it detached before ever
			// applying its own leave) and immediately eject itself.
			n.leaveDone[me] = true
			if rejoinAt < 0 {
				n.txDone = true
				n.detached = true
				if n.conn != nil {
					// Full close (not a half-close): the emulator takes the
					// EOF as this port's final word.
					n.conn.Close()
				}
				n.cond.Broadcast()
				n.mu.Unlock()
				return nil
			}
			// Scripted re-add: detach quietly (a planned cycle is not an
			// incident) and wait dormant for the members' welcome.
			n.dormant = true
			n.quietLink = true
			failedGen := n.gen
			if n.conn != nil {
				n.conn.Close()
			}
			n.cond.Broadcast()
			n.mu.Unlock()
			if err := n.relink(failedGen); err != nil {
				return err
			}
			conn, gen = n.currentConn()
			bw = bufio.NewWriterSize(conn, 64<<10)
			s, err := n.awaitWelcome()
			if err != nil {
				return err
			}
			g = s
			continue
		}

		epochStart := time.Now()
		ejected, err := n.gate(g)
		if err != nil {
			return err
		}
		if ejected {
			break // the fabric has compacted us out; stop transmitting
		}
		n.tel.epoch.SetInt(int64(g))

		if err := n.sendEpoch(g, bw, conn, prbs, payload, &encodeBuf); err != nil {
			// One broken pipe does not end the run: re-register and move
			// on to the next epoch (this epoch's remaining cells are the
			// documented in-flight loss of a link flap).
			if rerr := n.relink(gen); rerr != nil {
				return rerr
			}
			conn, gen = n.currentConn()
			bw = bufio.NewWriterSize(conn, 64<<10)
		}
		n.tel.tracer.Span("epoch", "wire.node", n.cfg.ID, epochStart, nil)
		n.progress.Add(1)
		g++
	}

	n.mu.Lock()
	n.txDone = true
	c := n.conn
	n.cond.Broadcast()
	n.mu.Unlock()
	// Half-close: our input to the grating is complete, but we keep
	// reading until the emulator closes the fabric.
	if tc, ok := c.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	return nil
}

// isDormant reports the dormant flag under the lock.
func (n *node) isDormant() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dormant
}

// announceHello sends one hello control cell to every other port: the
// not-yet-admitted joiner's only permitted transmission. The emulator
// parks frames for ports that register later, so hellos survive any
// start order; dormant receivers record them too, so a joiner admitted
// first still knows about a joiner admitted later.
func (n *node) announceHello(bw *bufio.Writer, conn net.Conn) error {
	me := n.cfg.ID
	conn.SetWriteDeadline(time.Now().Add(n.cfg.Timeout))
	defer conn.SetWriteDeadline(time.Time{})
	var encodeBuf []byte
	for p := 0; p < n.cfg.Nodes; p++ {
		if p == me {
			continue
		}
		c := cell.Cell{
			Kind:  cell.KindControl,
			Flags: cell.FlagHello,
			Src:   uint16(me),
			Dst:   uint16(p),
		}
		w := uint8((p - me + n.cfg.Nodes) % n.cfg.Nodes)
		eb := append(encodeBuf[:0], 0, 0, 0, 0, 0)
		eb = c.Encode(eb)
		binary.BigEndian.PutUint32(eb[:4], uint32(len(eb)-frameHeader))
		eb[4] = w
		encodeBuf = eb
		if _, err := bw.Write(eb); err != nil {
			return fmt.Errorf("wire: node %d: hello: %w", me, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("wire: node %d: hello flush: %w", me, err)
	}
	n.tel.tracer.Instant("hello", "wire.node", me, nil)
	return nil
}

// awaitWelcome blocks dormant until a member's welcome announces this
// node's admission switch epoch S, installs the welcomed membership view,
// and returns S — the epoch at which to start transmitting. The welcome's
// bitmap is the membership as of S, so the node's state matches every
// member's exactly at the switch boundary.
func (n *node) awaitWelcome() (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for n.welcomeS < 0 && n.fatalErr == nil {
		n.cond.Wait()
	}
	if n.fatalErr != nil {
		return 0, n.fatalErr
	}
	s := n.welcomeS
	copy(n.member, n.welcomeMembers)
	for p := 0; p < n.cfg.Nodes; p++ {
		// Every node in the welcomed membership is, by the welcome's own
		// construction, scheduled through epoch s-1.
		n.heard[p] = s - 1
		n.suspected[p] = false
		n.applied[p] = false
		n.switchEpoch[p] = -1
		n.joinAt[p] = -1
		n.leaveAt[p] = -1
		n.obs.Forgive(p)
	}
	// Drop suspicion records that never reached their switch: the
	// welcomed membership already reflects every resolved failure, and
	// re-flooding a pre-detach suspicion could poison the new epoch.
	kept := n.failures[:0]
	for _, f := range n.failures {
		if f.SwitchEpoch <= s {
			kept = append(kept, f)
		}
	}
	n.failures = kept
	n.welcomeS = -1
	n.welcomeMembers = nil
	n.dormant = false
	n.quietLink = false
	if err := n.rebuildScheduleLocked(); err != nil {
		return 0, err
	}
	if !n.everMember {
		n.everMember = true
		n.stats.JoinedAt = s
	} else {
		n.stats.Rejoins++
	}
	n.progress.Add(1)
	n.tel.tracer.Instant("welcome", "wire.node", n.cfg.ID, nil)
	n.cond.Broadcast()
	return s, nil
}

// sendEpoch transmits epoch g's slots under the current schedule, then
// any welcome control cells owed to pending joiners. Welcomes are control
// cells: they do not count toward Sent/Received, so the data-cell
// accounting identities stay exact across lifecycle operations.
func (n *node) sendEpoch(g int, bw *bufio.Writer, conn net.Conn,
	prbs *phy.PRBS, payload []byte, encodeBuf *[]byte) error {

	n.mu.Lock()
	sched, live, myIdx := n.sched, n.live, n.myIdx
	anns := n.activeAnnouncementsLocked(g)
	welcomes := n.pendingWelcomesLocked(g)
	n.mu.Unlock()

	conn.SetWriteDeadline(time.Now().Add(n.cfg.Timeout))
	defer conn.SetWriteDeadline(time.Time{})

	slots := sched.SlotsPerEpoch()
	sent := 0
	for slot := 0; slot < slots; slot++ {
		dstOrig := live[sched.Dst(myIdx, 0, slot)]
		// The grating wavelength is schedule-independent: wavelength w on
		// input i exits on output (i+w) mod N, so reaching dstOrig always
		// takes w = dstOrig - src mod N, whichever schedule chose it.
		w := uint8((dstOrig - n.cfg.ID + n.cfg.Nodes) % n.cfg.Nodes)
		seq := uint32(g)<<8 | uint32(slot)
		c := cell.Cell{
			Kind: cell.KindData,
			Src:  uint16(n.cfg.ID),
			Dst:  uint16(dstOrig),
			Seq:  seq,
		}
		if len(anns) > 0 {
			// Rotate by epoch as well as slot: a destination sits at the
			// same slot every epoch, so a fixed slot%k assignment would
			// show it the same announcement each flood epoch and starve
			// it of the others.
			a := anns[(slot+g)%len(anns)]
			switch a.kind {
			case annSuspect:
				c.SetSuspicion(a.node, a.sw)
			case annJoin:
				c.SetJoin(a.node, a.sw)
			case annDrain:
				c.SetDrain(a.node, a.sw)
			}
		}
		prbs.Reset(prbsSeed(c.Src, c.Dst, seq))
		prbs.Fill(payload)
		c.Payload = payload
		// Assemble the whole wire frame — header and encoded cell — in
		// the reusable buffer and hand it to the writer in one call.
		eb := append((*encodeBuf)[:0], 0, 0, 0, 0, 0)
		eb = c.Encode(eb)
		binary.BigEndian.PutUint32(eb[:4], uint32(len(eb)-frameHeader))
		eb[4] = w
		*encodeBuf = eb
		if _, err := bw.Write(eb); err != nil {
			n.addSent(sent)
			return err
		}
		sent++
		n.tel.sent.Inc()
	}
	n.addSent(sent)
	for _, wm := range welcomes {
		c := cell.Cell{
			Kind: cell.KindControl,
			Src:  uint16(n.cfg.ID),
			Dst:  uint16(wm.node),
			Seq:  uint32(g) << 8,
		}
		c.SetJoin(wm.node, wm.sw)
		c.Payload = wm.members
		w := uint8((wm.node - n.cfg.ID + n.cfg.Nodes) % n.cfg.Nodes)
		eb := append((*encodeBuf)[:0], 0, 0, 0, 0, 0)
		eb = c.Encode(eb)
		binary.BigEndian.PutUint32(eb[:4], uint32(len(eb)-frameHeader))
		eb[4] = w
		*encodeBuf = eb
		if _, err := bw.Write(eb); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// addSent batches the epoch's Sent accounting into one mutex hold
// instead of a lock/unlock pair per cell.
func (n *node) addSent(sent int) {
	if sent == 0 {
		return
	}
	n.mu.Lock()
	n.stats.Sent += sent
	n.mu.Unlock()
}

// activeAnnouncementsLocked returns every fact still being flooded at
// epoch g: suspicions, pending admissions, and pending drains whose
// agreed switch epoch has not yet passed. Called with n.mu held.
func (n *node) activeAnnouncementsLocked(g int) []announcement {
	var out []announcement
	for _, f := range n.failures {
		if f.SwitchEpoch > g {
			out = append(out, announcement{kind: annSuspect, node: f.Peer, sw: f.SwitchEpoch})
		}
	}
	for p := 0; p < n.cfg.Nodes; p++ {
		if n.joinAt[p] > g {
			out = append(out, announcement{kind: annJoin, node: p, sw: n.joinAt[p]})
		}
		if n.leaveAt[p] > g {
			out = append(out, announcement{kind: annDrain, node: p, sw: n.leaveAt[p]})
		}
	}
	return out
}

// welcomeMsg is one welcome control cell owed to a pending joiner: the
// agreed switch epoch and the projected membership bitmap as of it.
type welcomeMsg struct {
	node, sw int
	members  []byte
}

// pendingWelcomesLocked returns the welcomes to emit during epoch g: one
// per pending admission whose switch epoch has not yet arrived. Every
// member sends a welcome in each flood epoch, so a joiner hears one even
// under grey loss toward some members. Called with n.mu held.
func (n *node) pendingWelcomesLocked(g int) []welcomeMsg {
	var out []welcomeMsg
	for j := 0; j < n.cfg.Nodes; j++ {
		if j == n.cfg.ID || n.joinAt[j] <= g {
			continue // no pending admission (joinAt -1), or already due
		}
		out = append(out, welcomeMsg{
			node:    j,
			sw:      n.joinAt[j],
			members: n.projectedMembersLocked(n.joinAt[j]),
		})
	}
	return out
}

// projectedMembersLocked returns the membership bitmap as it will stand
// at switch epoch s: pending failures and drains due by s removed,
// pending admissions due by s included. One bit per port, LSB-first
// within each byte. Called with n.mu held.
func (n *node) projectedMembersLocked(s int) []byte {
	bits := make([]byte, (n.cfg.Nodes+7)/8)
	for p := 0; p < n.cfg.Nodes; p++ {
		in := n.member[p]
		if n.suspected[p] && n.switchEpoch[p] >= 0 && n.switchEpoch[p] <= s {
			in = false
		}
		if n.leaveAt[p] >= 0 && n.leaveAt[p] <= s {
			in = false
		}
		if n.joinAt[p] >= 0 && n.joinAt[p] <= s {
			in = true
		}
		if in {
			bits[p/8] |= 1 << (p % 8)
		}
	}
	return bits
}

// gate blocks until the node may transmit epoch g: it must have heard
// epoch g-1 from every live, unsuspected peer (including itself through
// the grating — the self-loop slot proves the node's own link works).
//
// The wait has an absolute deadline of SuspectTimeout per gate — advanced
// by nothing, so a chatty subset of peers cannot postpone judgement of a
// silent one. At the deadline each lagging peer is judged by the
// gap-based health.Observer: a peer silent for MissThreshold consecutive
// epochs is suspected, the suspicion is recorded for flooding with an
// agreed switch epoch g+2 (one epoch to flood, one to align), and the
// gate passes optimistically either way.
//
// gate also applies any due schedule switches (suspicions whose switch
// epoch has arrived), compacting the schedule over the survivors; if this
// node is itself the confirmed victim, gate reports ejection.
func (n *node) gate(g int) (ejected bool, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()

	if ej, err := n.applySwitchesLocked(g); ej || err != nil {
		return ej, err
	}
	hellos := n.proposeLifecycleLocked(g)
	n.waitingHellos = hellos
	defer func() { n.waitingHellos = false }()

	deadline := time.Now().Add(n.cfg.SuspectTimeout)
	timer := time.AfterFunc(n.cfg.SuspectTimeout, func() {
		n.mu.Lock()
		n.mu.Unlock() //nolint:staticcheck // lock/unlock pairs the broadcast with waiters
		n.cond.Broadcast()
	})
	defer timer.Stop()

	for {
		if n.fatalErr != nil {
			return false, n.fatalErr
		}
		lagging := n.laggingLocked(g)
		if len(lagging) == 0 && !hellos {
			return false, nil
		}
		if !time.Now().Before(deadline) && len(lagging) > 0 {
			// Judge the laggards; suspect those over threshold, then pass.
			for _, p := range lagging {
				if !n.obs.Judge(p, n.heard[p], g) {
					continue
				}
				if p == n.cfg.ID {
					return false, fmt.Errorf(
						"wire: node %d: own transmissions not returning (link dead beyond epoch %d)",
						n.cfg.ID, n.heard[p])
				}
				n.recordSuspicionLocked(p, g, g+2, false)
			}
			if !hellos {
				return false, nil
			}
		}
		n.cond.Wait()
		hellos = n.proposeLifecycleLocked(g)
		n.waitingHellos = hellos
	}
}

// proposeLifecycleLocked raises this gate's due lifecycle proposals from
// the shared plan — every member evaluates the same plan against the same
// (epoch-deterministic) membership state, so proposals need no
// coordinator. It returns whether the gate must hold for a scripted
// joiner that has not yet said hello. Called with n.mu held.
func (n *node) proposeLifecycleLocked(g int) (hellosPending bool) {
	plan := n.cfg.Plan
	// Scripted expansions: admit joiner j at the plan-anchored switch
	// epoch E+2 once it has announced itself. Anchoring to the plan (not
	// the proposal gate) keeps the switch epoch identical across members
	// no matter when each one heard the hello.
	for _, j := range plan.Joiners() {
		e := plan.ExpandEpoch(j)
		if e > g || n.member[j] || n.joinAt[j] >= 0 || n.joinDone[j] {
			continue
		}
		if !n.helloSeen[j] {
			hellosPending = true
			continue
		}
		n.recordJoinLocked(j, e+2)
	}
	// Scripted rejoins (restart after crash, re-add after drain): the
	// switch epoch is g+2 from the first gate at which the node is
	// scripted back AND actually out of the membership. Membership
	// evolves identically on every member, so that gate — and hence the
	// switch epoch — is the same fabric-wide; a freshly welcomed joiner
	// that proposes one epoch late converges via the flooded minimum.
	for p := 0; p < n.cfg.Nodes; p++ {
		if p == n.cfg.ID {
			continue
		}
		if e := plan.RejoinEpoch(p); e >= 0 && e <= g && !n.member[p] &&
			n.joinAt[p] < 0 && !n.joinDone[p] {
			n.recordJoinLocked(p, g+2)
		}
	}
	// Planned drains are proposed by every member from the plan (the
	// draining node included), anchored at DrainEpoch+2; the flooded
	// drain announcement is redundancy for the same fact.
	for p := 0; p < n.cfg.Nodes; p++ {
		if d := plan.DrainEpoch(p); d >= 0 && d <= g && n.member[p] &&
			n.leaveAt[p] < 0 && !n.leaveDone[p] {
			n.recordLeaveLocked(p, d+2)
		}
	}
	return hellosPending
}

// recordJoinLocked registers an agreed admission of node j at switch
// epoch sw, converging on the minimum exactly like suspicions. Called
// with n.mu held.
func (n *node) recordJoinLocked(j, sw int) {
	if n.member[j] || n.joinDone[j] {
		return
	}
	if n.joinAt[j] >= 0 && n.joinAt[j] <= sw {
		return
	}
	n.joinAt[j] = sw
	n.cond.Broadcast()
}

// recordLeaveLocked registers an agreed planned drain of node d at switch
// epoch sw. Called with n.mu held.
func (n *node) recordLeaveLocked(d, sw int) {
	if !n.member[d] || n.leaveDone[d] {
		return
	}
	if n.leaveAt[d] >= 0 && n.leaveAt[d] <= sw {
		return
	}
	n.leaveAt[d] = sw
	n.cond.Broadcast()
}

// drainGate blocks a draining node at its switch epoch s until every
// cell addressed to it has arrived: hearing epoch s-1 from a member
// means — by per-pair FIFO through the grating — that every earlier cell
// from that member has been delivered, so detaching after hearing s-1
// from everyone loses exactly nothing. Members that stay silent past
// SuspectTimeout are judged like any gate laggard and the detach
// proceeds optimistically.
func (n *node) drainGate(s int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	deadline := time.Now().Add(n.cfg.SuspectTimeout)
	timer := time.AfterFunc(n.cfg.SuspectTimeout, func() {
		n.mu.Lock()
		n.mu.Unlock() //nolint:staticcheck // lock/unlock pairs the broadcast with waiters
		n.cond.Broadcast()
	})
	defer timer.Stop()
	for {
		if n.fatalErr != nil {
			return n.fatalErr
		}
		lagging := n.laggingLocked(s)
		if len(lagging) == 0 {
			return nil
		}
		if !time.Now().Before(deadline) {
			for _, p := range lagging {
				if !n.obs.Judge(p, n.heard[p], s) {
					continue
				}
				if p == n.cfg.ID {
					return fmt.Errorf(
						"wire: node %d: own transmissions not returning during drain (link dead beyond epoch %d)",
						n.cfg.ID, n.heard[p])
				}
				n.recordSuspicionLocked(p, s, s+2, false)
			}
			return nil
		}
		n.cond.Wait()
	}
}

// laggingLocked lists the unsuspected members not yet heard at epoch
// g-1. Called with n.mu held.
func (n *node) laggingLocked(g int) []int {
	var out []int
	for p := 0; p < n.cfg.Nodes; p++ {
		if !n.member[p] || n.suspected[p] {
			continue
		}
		if n.heard[p] < g-1 {
			out = append(out, p)
		}
	}
	return out
}

// recordSuspicionLocked registers a (possibly adopted) suspicion of peer
// p with the given suspect epoch and agreed switch epoch. If the peer was
// already suspected with a later switch epoch, the earlier one wins, so
// concurrent independent detections converge on the minimum. adopted
// distinguishes suspicions learned from a flooded cell from those this
// node raised by judging silence itself. Called with n.mu held.
func (n *node) recordSuspicionLocked(p, suspectEpoch, sw int, adopted bool) {
	if n.suspected[p] && n.switchEpoch[p] <= sw {
		return
	}
	if !n.suspected[p] {
		// First time this node suspects p: count it, flag the fabric
		// degraded until the schedule switch resolves the failure, and
		// drop a timeline marker.
		if adopted {
			n.tel.suspAdopted.Inc()
		} else {
			n.tel.suspRaised.Inc()
		}
		n.tel.health.SetCondition(n.tel.peerKey(p), "peer suspected failed")
		n.tel.tracer.Instant("suspect", "wire.node", n.cfg.ID, nil)
	}
	n.suspected[p] = true
	n.switchEpoch[p] = sw
	f := PeerFailure{Peer: p, SuspectEpoch: suspectEpoch, ConfirmEpoch: sw - 1, SwitchEpoch: sw}
	for i := range n.failures {
		if n.failures[i].Peer == p {
			n.failures[i] = f
			n.cond.Broadcast()
			return
		}
	}
	n.failures = append(n.failures, f)
	n.cond.Broadcast()
}

// applySwitchesLocked folds every agreed membership change whose switch
// epoch has arrived into the schedule: failures (§4.5 compaction),
// planned leaves, and admissions, all on the same fabric-wide epoch
// boundary. Called with n.mu held.
func (n *node) applySwitchesLocked(g int) (ejected bool, err error) {
	changed := false
	for p := 0; p < n.cfg.Nodes; p++ {
		if n.suspected[p] && !n.applied[p] && n.switchEpoch[p] <= g {
			n.applied[p] = true
			changed = true
			// The switch resolves the suspicion: the fabric has agreed
			// on the failure and routes around it from here on.
			n.tel.health.ClearCondition(n.tel.peerKey(p))
			if n.member[p] {
				n.member[p] = false
				n.noteChangeLocked(n.switchEpoch[p], p, "fail")
			}
		}
	}
	for p := 0; p < n.cfg.Nodes; p++ {
		if n.leaveAt[p] >= 0 && n.leaveAt[p] <= g {
			if n.member[p] {
				n.member[p] = false
				n.noteChangeLocked(n.leaveAt[p], p, "leave")
				changed = true
			}
			n.leaveAt[p] = -1
			n.leaveDone[p] = true
		}
	}
	for p := 0; p < n.cfg.Nodes; p++ {
		if n.joinAt[p] >= 0 && n.joinAt[p] <= g {
			if !n.member[p] {
				n.member[p] = true
				n.noteChangeLocked(n.joinAt[p], p, "join")
				// The joiner transmits from its switch epoch S onward; seed
				// heard at S-1 so the next gate does not count the pre-S
				// silence against it, and clear any stale suspicion from a
				// previous incarnation.
				if h := n.joinAt[p] - 1; n.heard[p] < h {
					n.heard[p] = h
				}
				n.suspected[p] = false
				n.applied[p] = false
				n.switchEpoch[p] = -1
				n.obs.Forgive(p)
				changed = true
			}
			n.joinAt[p] = -1
			n.joinDone[p] = true
		}
	}
	if !changed {
		return false, nil
	}
	n.tel.switches.Inc()
	n.tel.tracer.Instant("schedule-switch", "wire.node", n.cfg.ID, nil)
	if !n.member[n.cfg.ID] {
		// Only the failure path reaches this: a planned drain detaches in
		// txLoop before gating past its own leave epoch.
		n.stats.Ejected = true
		n.tel.ejected.Inc()
		return true, nil
	}
	return false, n.rebuildScheduleLocked()
}

// rebuildScheduleLocked recomputes the compacted schedule from the
// current membership. Called with n.mu held.
func (n *node) rebuildScheduleLocked() error {
	var inactive []int
	for p := 0; p < n.cfg.Nodes; p++ {
		if !n.member[p] {
			inactive = append(inactive, p)
		}
	}
	compacted, live, err := schedule.Compact(n.base, inactive)
	if err != nil {
		return fmt.Errorf("wire: node %d: compact: %w", n.cfg.ID, err)
	}
	n.sched, n.live = compacted, live
	n.myIdx = -1
	for i, orig := range live {
		if orig == n.cfg.ID {
			n.myIdx = i
		}
	}
	return nil
}

// noteChangeLocked appends a membership-change record to the node's
// stats timeline. Called with n.mu held.
func (n *node) noteChangeLocked(epoch, p int, kind string) {
	n.stats.Changes = append(n.stats.Changes,
		MemberChange{Epoch: epoch, Node: p, Kind: kind})
}

// ---- Receive side ----

// rxLoop drains frames until the emulator closes the fabric (EOF after
// txDone) or a fatal error. Across scripted restarts it follows the
// replacement connection.
func (n *node) rxLoop() {
	for {
		conn, gen := n.currentConn()
		if conn == nil {
			// Between relinks; wait for a replacement or the end.
			n.mu.Lock()
			for n.gen == gen && n.fatalErr == nil && !n.detached {
				n.cond.Wait()
			}
			detached := n.detached
			fatal := n.fatalErr != nil
			n.mu.Unlock()
			if fatal || detached {
				n.finishRx(nil)
				return
			}
			continue
		}
		err := n.rxOnConn(conn)

		n.mu.Lock()
		replaced := n.gen != gen
		txDone := n.txDone
		detached := n.detached
		fatal := n.fatalErr != nil
		n.mu.Unlock()

		switch {
		case fatal || detached:
			n.finishRx(nil)
			return
		case replaced:
			continue // a relink swapped the connection under us
		case txDone:
			// Normal end: the emulator closed the fabric once every input
			// reached its final EOF; we have read everything routed to us.
			n.finishRx(nil)
			return
		default:
			// Connection broke mid-run: re-register and keep receiving.
			if rerr := n.relink(gen); rerr != nil {
				n.finishRx(rerr)
				return
			}
		}
		_ = err
	}
}

// finishRx marks the receive side complete.
func (n *node) finishRx(err error) {
	n.mu.Lock()
	if err != nil && n.fatalErr == nil {
		n.fatalErr = err
	}
	n.rxDone = true
	n.cond.Broadcast()
	n.mu.Unlock()
}

// rxOnConn reads frames from one connection until it errors or EOFs,
// decoding each into a reusable buffer — the receive loop allocates
// nothing in steady state.
func (n *node) rxOnConn(conn net.Conn) error {
	br := bufio.NewReaderSize(conn, 64<<10)
	prbs := phy.NewPRBS(1)
	buf := make([]byte, 0, frameHeader+cell.HeaderLen+n.cfg.PayloadBytes)
	for {
		_, raw, err := ReadFrameInto(br, &buf)
		if err != nil {
			return err
		}
		n.handleCell(raw, prbs)
	}
}

// handleCell processes one received cell: epoch bookkeeping for the gate,
// PRBS verification, suspicion adoption, and stats.
func (n *node) handleCell(raw []byte, prbs *phy.PRBS) {
	// The cell's payload aliases raw (the rx loop's reusable buffer);
	// handleCell finishes with it before the next read overwrites it.
	c, _, err := cell.DecodeAlias(raw)
	if err != nil {
		return // defensively ignore undecodable frames
	}
	ep := int(c.Seq >> 8)
	src := int(c.Src)

	n.progress.Add(1)
	n.mu.Lock()
	defer n.mu.Unlock()
	defer n.cond.Broadcast()

	if n.dormant {
		// A dormant (not-yet-admitted) node acts on control traffic only:
		// hellos from fellow joiners, and the welcome addressed to it. All
		// data cells are discarded unreceived — it is not a member yet, so
		// nothing is scheduled toward it and nothing counts.
		if c.Kind == cell.KindControl {
			if c.Flags&cell.FlagHello != 0 && src >= 0 && src < n.cfg.Nodes {
				n.helloSeen[src] = true
			}
			if j, sw, ok := c.Join(); ok && j == n.cfg.ID && int(c.Dst) == n.cfg.ID {
				if n.welcomeS < 0 || sw < n.welcomeS {
					n.welcomeS = sw
					// c.Payload aliases the rx buffer: decode the membership
					// bitmap into a fresh slice before the next read.
					members := make([]bool, n.cfg.Nodes)
					for p := 0; p < n.cfg.Nodes && p/8 < len(c.Payload); p++ {
						members[p] = c.Payload[p/8]&(1<<(p%8)) != 0
					}
					n.welcomeMembers = members
				}
			}
		}
		return
	}
	if c.Kind == cell.KindControl {
		// Hellos matter to members (they gate scripted expansions); stale
		// welcomes addressed to an already-admitted node do not. Control
		// cells never advance heard — they ride outside the schedule.
		if c.Flags&cell.FlagHello != 0 && src >= 0 && src < n.cfg.Nodes {
			n.helloSeen[src] = true
		}
		return
	}

	if src >= 0 && src < n.cfg.Nodes && ep > n.heard[src] {
		n.heard[src] = ep
	}
	if p, sw, ok := c.Suspicion(); ok && p >= 0 && p < n.cfg.Nodes {
		// Adopt the flooded suspicion: the originator judged at sw-2 and
		// the flood makes it fabric-wide knowledge by sw-1.
		n.recordSuspicionLocked(p, sw-2, sw, true)
	}
	if p, sw, ok := c.Join(); ok && p >= 0 && p < n.cfg.Nodes {
		n.recordJoinLocked(p, sw)
	}
	if p, sw, ok := c.Drain(); ok && p >= 0 && p < n.cfg.Nodes {
		n.recordLeaveLocked(p, sw)
	}
	if c.Kind != cell.KindData {
		return
	}
	n.stats.Received++
	n.tel.received.Inc()
	if n.stats.RxPerEpoch != nil && ep >= 0 && ep < len(n.stats.RxPerEpoch) {
		n.stats.RxPerEpoch[ep]++
	}
	if int(c.Dst) != n.cfg.ID {
		n.stats.Misrouted++
		n.tel.misrouted.Inc()
		return
	}
	prbs.Reset(prbsSeed(c.Src, c.Dst, c.Seq))
	errs := int64(prbs.CountErrors(c.Payload))
	n.stats.BitErrors += errs
	n.stats.Bits += int64(len(c.Payload)) * 8
	if errs > 0 {
		n.tel.bitErrs.Add(errs)
	}
	n.tel.bits.Add(int64(len(c.Payload)) * 8)
}
