package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sirius/internal/cell"
	"sirius/internal/fault"
	"sirius/internal/health"
	"sirius/internal/phy"
	"sirius/internal/rng"
	"sirius/internal/schedule"
	"sirius/internal/telemetry"
)

// Defaults for NodeConfig's zero values.
const (
	defaultTimeout           = 10 * time.Second
	defaultSuspectTimeout    = 2 * time.Second
	defaultMissThreshold     = 3
	defaultReconnectAttempts = 8
	defaultReconnectBase     = 10 * time.Millisecond
	reconnectCap             = 640 * time.Millisecond
)

// fecThreshold is the pre-FEC bit error rate below which the KP4-class FEC
// assumed by the paper corrects everything: runs at or under it claim
// post-FEC error-free operation.
const fecThreshold = 2e-4

// NodeConfig configures one emulated node process.
type NodeConfig struct {
	ID           int
	Addr         string
	Nodes        int
	Epochs       int
	PayloadBytes int

	// Timeout is the rolling progress deadline: the node fails only after
	// this long with no frame received, no epoch transmitted, and no
	// reconnection — it rolls forward on progress instead of capping the
	// whole run. Default 10s.
	Timeout time.Duration

	// SuspectTimeout bounds how long the epoch gate waits for lagging
	// peers before judging them (health.Observer) and proceeding
	// optimistically. It is the wall-clock proxy for the paper's
	// epoch-scale silence detection. Default 2s.
	SuspectTimeout time.Duration

	// MissThreshold is how many consecutive silent epochs an observer
	// tolerates before suspecting a peer (§4.5). Default 3.
	MissThreshold int

	// Plan scripts this node's crash or restart, if any.
	Plan *fault.Plan

	// ReconnectAttempts and ReconnectBase shape the capped exponential
	// backoff used to re-register after a broken connection. Defaults: 8
	// attempts starting at 10ms, doubling, capped at 640ms.
	ReconnectAttempts int
	ReconnectBase     time.Duration

	// TrackEpochs records per-epoch received-cell counts in
	// NodeStats.RxPerEpoch (for goodput-over-time analysis).
	TrackEpochs bool

	// Telemetry receives this node's runtime counters (cells sent /
	// received / misrouted, bit errors, reconnects, suspicions,
	// schedule switches). Nil uses the process-wide telemetry.Default.
	Telemetry *telemetry.Registry

	// Health, when non-nil, tracks degraded conditions: a broken link
	// while reconnecting, and each suspected peer until the fabric-wide
	// schedule switch resolves it.
	Health *telemetry.Health

	// Tracer, when non-nil, records per-epoch spans and instants
	// (crash, suspicion, switch) for Chrome trace-event timelines.
	Tracer *telemetry.Tracer
}

// PeerFailure records one peer's detected failure as this node saw it:
// suspicion raised at SuspectEpoch, flood received fabric-wide by
// ConfirmEpoch, and the compacted schedule adopted at SwitchEpoch.
type PeerFailure struct {
	Peer         int
	SuspectEpoch int
	ConfirmEpoch int
	SwitchEpoch  int
}

// NodeStats summarizes one node's run.
type NodeStats struct {
	Node       int
	Sent       int
	Received   int
	Misrouted  int
	BitErrors  int64
	Bits       int64
	Reconnects int  // successful re-registrations
	Crashed    bool // this node executed a scripted Crash
	Ejected    bool // the fabric confirmed this node failed (grey victim)
	Failures   []PeerFailure
	RxPerEpoch []int // per-epoch received cells (TrackEpochs only)
}

// BER returns the measured pre-FEC bit error rate.
func (s NodeStats) BER() float64 {
	if s.Bits == 0 {
		return 0
	}
	return float64(s.BitErrors) / float64(s.Bits)
}

// prbsSeed derives the per-cell PRBS seed from (src, dst, seq). Seeding
// every cell independently means a lost or reordered cell never
// desynchronizes the receiver's checker: each payload is verified against
// a stream both ends can regenerate from the header alone.
func prbsSeed(src, dst uint16, seq uint32) uint32 {
	s := rng.PointSeed(uint64(src)<<48|uint64(dst)<<32|uint64(seq), 0xce11)
	return uint32(s&0x7fffffff) | 1
}

// node is the run state of one emulated node.
type node struct {
	cfg  NodeConfig
	mu   sync.Mutex
	cond *sync.Cond

	conn      net.Conn // guarded by mu
	gen       int      // connection generation; bumped by relink
	relinking bool     // a relink is in flight; others wait

	heard       []int  // highest epoch heard from each original peer (-1 never)
	suspected   []bool // peer is suspected failed (locally or by flood)
	switchEpoch []int  // agreed schedule-switch epoch per suspected peer
	applied     []bool // peer's failure already folded into the schedule
	failures    []PeerFailure
	obs         *health.Observer

	sched schedule.Schedule // current schedule (base or compacted)
	live  []int             // compact index -> original node id
	myIdx int               // this node's index in the current schedule

	txDone   bool
	rxDone   bool
	fatalErr error

	progress atomic.Int64 // bumped on any rx frame / tx epoch / reconnect
	stats    NodeStats
	tel      nodeTel
}

// RunNode runs one node of the prototype fabric to completion and returns
// its statistics. It connects to the emulator, follows the cyclic
// schedule epoch by epoch — gated on having heard every live peer's
// previous epoch, so the fabric self-clocks — transmits per-cell-seeded
// PRBS payloads, verifies everything it receives, detects silent peers,
// floods suspicions piggybacked on data cells, and switches to a
// compacted schedule at the agreed epoch boundary.
func RunNode(cfg NodeConfig) (*NodeStats, error) {
	if cfg.Nodes < 2 || cfg.Nodes > maxPorts {
		return nil, fmt.Errorf("wire: need 2..%d nodes, got %d (the wavelength and handshake port fields are one byte; see docs/PROTOCOL.md)", maxPorts, cfg.Nodes)
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Nodes {
		return nil, fmt.Errorf("wire: node id %d out of range [0,%d)", cfg.ID, cfg.Nodes)
	}
	if cfg.PayloadBytes < 1 {
		return nil, fmt.Errorf("wire: need >= 1 payload byte")
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultTimeout
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = defaultSuspectTimeout
	}
	if cfg.MissThreshold <= 0 {
		cfg.MissThreshold = defaultMissThreshold
	}
	if cfg.ReconnectAttempts <= 0 {
		cfg.ReconnectAttempts = defaultReconnectAttempts
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = defaultReconnectBase
	}

	base, err := schedule.NewGrouped(cfg.Nodes, cfg.Nodes, 1)
	if err != nil {
		return nil, err
	}
	obs, err := health.NewObserver(cfg.Nodes, cfg.MissThreshold)
	if err != nil {
		return nil, err
	}

	n := &node{
		cfg:         cfg,
		heard:       make([]int, cfg.Nodes),
		suspected:   make([]bool, cfg.Nodes),
		switchEpoch: make([]int, cfg.Nodes),
		applied:     make([]bool, cfg.Nodes),
		obs:         obs,
		sched:       base,
		live:        make([]int, cfg.Nodes),
		myIdx:       cfg.ID,
		stats:       NodeStats{Node: cfg.ID},
	}
	n.cond = sync.NewCond(&n.mu)
	n.tel = newNodeTel(cfg)
	for i := range n.heard {
		n.heard[i] = -1
		n.switchEpoch[i] = -1
		n.live[i] = i
	}
	if cfg.TrackEpochs {
		n.stats.RxPerEpoch = make([]int, cfg.Epochs)
	}

	conn, err := dialRegister(cfg, 0)
	if err != nil {
		return nil, err
	}
	n.conn = conn

	stop := make(chan struct{})
	defer close(stop)
	go n.watchdog(stop)
	go n.rxLoop()

	if err := n.txLoop(); err != nil {
		n.fail(err)
	}

	// Wait for the receive side to drain to EOF (the emulator closes all
	// connections once the whole fabric has completed).
	n.mu.Lock()
	for !n.rxDone && n.fatalErr == nil {
		n.cond.Wait()
	}
	err = n.fatalErr
	n.stats.Failures = append([]PeerFailure(nil), n.failures...)
	stats := n.stats
	n.mu.Unlock()
	if err != nil {
		return &stats, err
	}
	return &stats, nil
}

// dialRegister connects to the emulator and performs the handshake.
// flags carries HsReRegister on reconnections.
func dialRegister(cfg NodeConfig, flags uint8) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", cfg.Addr, cfg.Timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: node %d: %w", cfg.ID, err)
	}
	h := EncodeHandshake(cfg.ID, flags)
	if _, err := conn.Write(h[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: node %d: handshake: %w", cfg.ID, err)
	}
	var reply [hsReplyLen]byte
	conn.SetReadDeadline(time.Now().Add(cfg.Timeout))
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: node %d: handshake reply: %w", cfg.ID, err)
	}
	conn.SetReadDeadline(time.Time{})
	if reply[0] != HsOK {
		conn.Close()
		return nil, fmt.Errorf("wire: node %d: emulator rejected registration: %s",
			cfg.ID, hsStatusString(reply[0]))
	}
	return conn, nil
}

// fail records a fatal error (once), closes the connection so blocked
// reads unwind, and wakes every waiter.
func (n *node) fail(err error) {
	n.mu.Lock()
	if n.fatalErr == nil && err != nil {
		n.fatalErr = err
	}
	if n.conn != nil {
		n.conn.Close()
	}
	n.cond.Broadcast()
	n.mu.Unlock()
}

// watchdog enforces the rolling progress deadline: three consecutive
// windows of Timeout/3 with no progress — no frame received, no epoch
// sent, no reconnection — fail the node. Any progress resets the clock,
// so a long run never needs an absolute deadline sized in advance.
func (n *node) watchdog(stop chan struct{}) {
	tick := n.cfg.Timeout / 3
	if tick <= 0 {
		tick = time.Second
	}
	last := n.progress.Load()
	strikes := 0
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		n.mu.Lock()
		done := n.rxDone && n.txDone
		n.mu.Unlock()
		if done {
			return
		}
		if now := n.progress.Load(); now != last {
			last, strikes = now, 0
			continue
		}
		strikes++
		if strikes >= 3 {
			n.fail(fmt.Errorf("wire: node %d: no progress for %v", n.cfg.ID, n.cfg.Timeout))
			return
		}
	}
}

// relink replaces a broken connection with capped exponential backoff and
// an HsReRegister handshake. failedGen identifies the connection the
// caller saw fail; if another goroutine already replaced it, relink
// returns immediately. On permanent failure the node fails.
func (n *node) relink(failedGen int) error {
	n.mu.Lock()
	for n.relinking {
		// Another goroutine (tx vs rx) observed the same failure first;
		// wait for its verdict rather than double-dialing.
		n.cond.Wait()
	}
	if n.gen != failedGen {
		n.mu.Unlock()
		return nil // already replaced
	}
	if n.fatalErr != nil {
		err := n.fatalErr
		n.mu.Unlock()
		return err
	}
	n.relinking = true
	if n.conn != nil {
		n.conn.Close()
		n.conn = nil
	}
	n.mu.Unlock()
	n.tel.health.SetCondition(n.tel.linkKey(), "link down; reconnecting")
	defer func() {
		n.mu.Lock()
		n.relinking = false
		n.cond.Broadcast()
		n.mu.Unlock()
	}()

	backoff := n.cfg.ReconnectBase
	var lastErr error
	for attempt := 0; attempt < n.cfg.ReconnectAttempts; attempt++ {
		conn, err := dialRegister(n.cfg, HsReRegister)
		if err == nil {
			n.mu.Lock()
			n.conn = conn
			n.gen++
			n.stats.Reconnects++
			// Forgive the gap our own outage created: peers transmitted
			// while we were deaf, so judging them by pre-outage hearsay
			// would manufacture false suspicions.
			n.progress.Add(1)
			n.cond.Broadcast()
			n.mu.Unlock()
			n.tel.reconnects.Inc()
			n.tel.health.ClearCondition(n.tel.linkKey())
			n.tel.tracer.Instant("reconnect", "wire.node", n.cfg.ID, nil)
			return nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff *= 2; backoff > reconnectCap {
			backoff = reconnectCap
		}
	}
	err := fmt.Errorf("wire: node %d: reconnect failed after %d attempts: %w",
		n.cfg.ID, n.cfg.ReconnectAttempts, lastErr)
	n.fail(err)
	return err
}

// currentConn snapshots the connection and its generation.
func (n *node) currentConn() (net.Conn, int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conn, n.gen
}

// ---- Transmit side ----

// txLoop drives the scheduled epochs: gate, transmit, flush; with scripted
// crash/restart hooks at epoch boundaries, and a half-close when done so
// the emulator learns this input has spoken its last.
func (n *node) txLoop() error {
	crashAt := n.cfg.Plan.CrashEpoch(n.cfg.ID)
	restartAt := n.cfg.Plan.RestartEpoch(n.cfg.ID)

	payload := make([]byte, n.cfg.PayloadBytes)
	prbs := phy.NewPRBS(1)
	encodeBuf := make([]byte, 0, frameHeader+cell.HeaderLen+n.cfg.PayloadBytes)

	conn, gen := n.currentConn()
	bw := bufio.NewWriterSize(conn, 64<<10)

	for g := 0; g < n.cfg.Epochs; g++ {
		if g == crashAt {
			// Fail-stop: die mid-fabric with no farewell. The peers must
			// notice from silence alone.
			n.tel.tracer.Instant("crash", "wire.node", n.cfg.ID, nil)
			n.mu.Lock()
			n.stats.Crashed = true
			n.txDone = true
			if n.conn != nil {
				n.conn.Close()
			}
			n.cond.Broadcast()
			n.mu.Unlock()
			return nil
		}
		if g == restartAt {
			// Scripted link flap: drop the connection and re-register.
			n.mu.Lock()
			failedGen := n.gen
			if n.conn != nil {
				n.conn.Close()
			}
			n.mu.Unlock()
			if err := n.relink(failedGen); err != nil {
				return err
			}
			conn, gen = n.currentConn()
			bw = bufio.NewWriterSize(conn, 64<<10)
		}

		epochStart := time.Now()
		ejected, err := n.gate(g)
		if err != nil {
			return err
		}
		if ejected {
			break // the fabric has compacted us out; stop transmitting
		}
		n.tel.epoch.SetInt(int64(g))

		if err := n.sendEpoch(g, bw, conn, prbs, payload, &encodeBuf); err != nil {
			// One broken pipe does not end the run: re-register and move
			// on to the next epoch (this epoch's remaining cells are the
			// documented in-flight loss of a link flap).
			if rerr := n.relink(gen); rerr != nil {
				return rerr
			}
			conn, gen = n.currentConn()
			bw = bufio.NewWriterSize(conn, 64<<10)
		}
		n.tel.tracer.Span("epoch", "wire.node", n.cfg.ID, epochStart, nil)
		n.progress.Add(1)
	}

	n.mu.Lock()
	n.txDone = true
	c := n.conn
	n.cond.Broadcast()
	n.mu.Unlock()
	// Half-close: our input to the grating is complete, but we keep
	// reading until the emulator closes the fabric.
	if tc, ok := c.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	return nil
}

// sendEpoch transmits epoch g's slots under the current schedule.
func (n *node) sendEpoch(g int, bw *bufio.Writer, conn net.Conn,
	prbs *phy.PRBS, payload []byte, encodeBuf *[]byte) error {

	n.mu.Lock()
	sched, live, myIdx := n.sched, n.live, n.myIdx
	floods := n.activeFloodsLocked(g)
	n.mu.Unlock()

	conn.SetWriteDeadline(time.Now().Add(n.cfg.Timeout))
	defer conn.SetWriteDeadline(time.Time{})

	slots := sched.SlotsPerEpoch()
	sent := 0
	for slot := 0; slot < slots; slot++ {
		dstOrig := live[sched.Dst(myIdx, 0, slot)]
		// The grating wavelength is schedule-independent: wavelength w on
		// input i exits on output (i+w) mod N, so reaching dstOrig always
		// takes w = dstOrig - src mod N, whichever schedule chose it.
		w := uint8((dstOrig - n.cfg.ID + n.cfg.Nodes) % n.cfg.Nodes)
		seq := uint32(g)<<8 | uint32(slot)
		c := cell.Cell{
			Kind: cell.KindData,
			Src:  uint16(n.cfg.ID),
			Dst:  uint16(dstOrig),
			Seq:  seq,
		}
		if len(floods) > 0 {
			f := floods[slot%len(floods)]
			c.SetSuspicion(f.Peer, f.SwitchEpoch)
		}
		prbs.Reset(prbsSeed(c.Src, c.Dst, seq))
		prbs.Fill(payload)
		c.Payload = payload
		// Assemble the whole wire frame — header and encoded cell — in
		// the reusable buffer and hand it to the writer in one call.
		eb := append((*encodeBuf)[:0], 0, 0, 0, 0, 0)
		eb = c.Encode(eb)
		binary.BigEndian.PutUint32(eb[:4], uint32(len(eb)-frameHeader))
		eb[4] = w
		*encodeBuf = eb
		if _, err := bw.Write(eb); err != nil {
			n.addSent(sent)
			return err
		}
		sent++
		n.tel.sent.Inc()
	}
	n.addSent(sent)
	return bw.Flush()
}

// addSent batches the epoch's Sent accounting into one mutex hold
// instead of a lock/unlock pair per cell.
func (n *node) addSent(sent int) {
	if sent == 0 {
		return
	}
	n.mu.Lock()
	n.stats.Sent += sent
	n.mu.Unlock()
}

// activeFloodsLocked returns the suspicions still being flooded at epoch
// g: every suspected peer whose switch epoch has not yet passed. Called
// with n.mu held.
func (n *node) activeFloodsLocked(g int) []PeerFailure {
	var out []PeerFailure
	for _, f := range n.failures {
		if f.SwitchEpoch > g {
			out = append(out, f)
		}
	}
	return out
}

// gate blocks until the node may transmit epoch g: it must have heard
// epoch g-1 from every live, unsuspected peer (including itself through
// the grating — the self-loop slot proves the node's own link works).
//
// The wait has an absolute deadline of SuspectTimeout per gate — advanced
// by nothing, so a chatty subset of peers cannot postpone judgement of a
// silent one. At the deadline each lagging peer is judged by the
// gap-based health.Observer: a peer silent for MissThreshold consecutive
// epochs is suspected, the suspicion is recorded for flooding with an
// agreed switch epoch g+2 (one epoch to flood, one to align), and the
// gate passes optimistically either way.
//
// gate also applies any due schedule switches (suspicions whose switch
// epoch has arrived), compacting the schedule over the survivors; if this
// node is itself the confirmed victim, gate reports ejection.
func (n *node) gate(g int) (ejected bool, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()

	if ej, err := n.applySwitchesLocked(g); ej || err != nil {
		return ej, err
	}

	deadline := time.Now().Add(n.cfg.SuspectTimeout)
	timer := time.AfterFunc(n.cfg.SuspectTimeout, func() {
		n.mu.Lock()
		n.mu.Unlock() //nolint:staticcheck // lock/unlock pairs the broadcast with waiters
		n.cond.Broadcast()
	})
	defer timer.Stop()

	for {
		if n.fatalErr != nil {
			return false, n.fatalErr
		}
		lagging := n.laggingLocked(g)
		if len(lagging) == 0 {
			return false, nil
		}
		if !time.Now().Before(deadline) {
			// Judge the laggards; suspect those over threshold, then pass.
			for _, p := range lagging {
				if !n.obs.Judge(p, n.heard[p], g) {
					continue
				}
				if p == n.cfg.ID {
					return false, fmt.Errorf(
						"wire: node %d: own transmissions not returning (link dead beyond epoch %d)",
						n.cfg.ID, n.heard[p])
				}
				n.recordSuspicionLocked(p, g, g+2, false)
			}
			return false, nil
		}
		n.cond.Wait()
	}
}

// laggingLocked lists the unsuspected peers not yet heard at epoch g-1.
// Called with n.mu held.
func (n *node) laggingLocked(g int) []int {
	var out []int
	for p := 0; p < n.cfg.Nodes; p++ {
		if n.suspected[p] {
			continue
		}
		if n.heard[p] < g-1 {
			out = append(out, p)
		}
	}
	return out
}

// recordSuspicionLocked registers a (possibly adopted) suspicion of peer
// p with the given suspect epoch and agreed switch epoch. If the peer was
// already suspected with a later switch epoch, the earlier one wins, so
// concurrent independent detections converge on the minimum. adopted
// distinguishes suspicions learned from a flooded cell from those this
// node raised by judging silence itself. Called with n.mu held.
func (n *node) recordSuspicionLocked(p, suspectEpoch, sw int, adopted bool) {
	if n.suspected[p] && n.switchEpoch[p] <= sw {
		return
	}
	if !n.suspected[p] {
		// First time this node suspects p: count it, flag the fabric
		// degraded until the schedule switch resolves the failure, and
		// drop a timeline marker.
		if adopted {
			n.tel.suspAdopted.Inc()
		} else {
			n.tel.suspRaised.Inc()
		}
		n.tel.health.SetCondition(n.tel.peerKey(p), "peer suspected failed")
		n.tel.tracer.Instant("suspect", "wire.node", n.cfg.ID, nil)
	}
	n.suspected[p] = true
	n.switchEpoch[p] = sw
	f := PeerFailure{Peer: p, SuspectEpoch: suspectEpoch, ConfirmEpoch: sw - 1, SwitchEpoch: sw}
	for i := range n.failures {
		if n.failures[i].Peer == p {
			n.failures[i] = f
			n.cond.Broadcast()
			return
		}
	}
	n.failures = append(n.failures, f)
	n.cond.Broadcast()
}

// applySwitchesLocked folds every suspicion whose switch epoch has
// arrived into the schedule: the fabric-wide agreed compaction (§4.5).
// Called with n.mu held.
func (n *node) applySwitchesLocked(g int) (ejected bool, err error) {
	changed := false
	for p := 0; p < n.cfg.Nodes; p++ {
		if n.suspected[p] && !n.applied[p] && n.switchEpoch[p] <= g {
			n.applied[p] = true
			changed = true
			// The switch resolves the suspicion: the fabric has agreed
			// on the failure and routes around it from here on.
			n.tel.health.ClearCondition(n.tel.peerKey(p))
		}
	}
	if !changed {
		return false, nil
	}
	n.tel.switches.Inc()
	n.tel.tracer.Instant("schedule-switch", "wire.node", n.cfg.ID, nil)
	var failed []int
	for p := 0; p < n.cfg.Nodes; p++ {
		if n.applied[p] {
			failed = append(failed, p)
		}
	}
	if n.applied[n.cfg.ID] {
		n.stats.Ejected = true
		n.tel.ejected.Inc()
		return true, nil
	}
	base, err := schedule.NewGrouped(n.cfg.Nodes, n.cfg.Nodes, 1)
	if err != nil {
		return false, err
	}
	compacted, live, err := schedule.Compact(base, failed)
	if err != nil {
		return false, fmt.Errorf("wire: node %d: compact: %w", n.cfg.ID, err)
	}
	n.sched, n.live = compacted, live
	for i, orig := range live {
		if orig == n.cfg.ID {
			n.myIdx = i
		}
	}
	return false, nil
}

// ---- Receive side ----

// rxLoop drains frames until the emulator closes the fabric (EOF after
// txDone) or a fatal error. Across scripted restarts it follows the
// replacement connection.
func (n *node) rxLoop() {
	for {
		conn, gen := n.currentConn()
		if conn == nil {
			// Between relinks; wait for a replacement or the end.
			n.mu.Lock()
			for n.gen == gen && n.fatalErr == nil && !(n.txDone && n.stats.Crashed) {
				n.cond.Wait()
			}
			crashed := n.stats.Crashed
			fatal := n.fatalErr != nil
			n.mu.Unlock()
			if fatal || crashed {
				n.finishRx(nil)
				return
			}
			continue
		}
		err := n.rxOnConn(conn)

		n.mu.Lock()
		replaced := n.gen != gen
		txDone := n.txDone
		crashed := n.stats.Crashed
		fatal := n.fatalErr != nil
		n.mu.Unlock()

		switch {
		case fatal || crashed:
			n.finishRx(nil)
			return
		case replaced:
			continue // a relink swapped the connection under us
		case txDone:
			// Normal end: the emulator closed the fabric once every input
			// reached its final EOF; we have read everything routed to us.
			n.finishRx(nil)
			return
		default:
			// Connection broke mid-run: re-register and keep receiving.
			if rerr := n.relink(gen); rerr != nil {
				n.finishRx(rerr)
				return
			}
		}
		_ = err
	}
}

// finishRx marks the receive side complete.
func (n *node) finishRx(err error) {
	n.mu.Lock()
	if err != nil && n.fatalErr == nil {
		n.fatalErr = err
	}
	n.rxDone = true
	n.cond.Broadcast()
	n.mu.Unlock()
}

// rxOnConn reads frames from one connection until it errors or EOFs,
// decoding each into a reusable buffer — the receive loop allocates
// nothing in steady state.
func (n *node) rxOnConn(conn net.Conn) error {
	br := bufio.NewReaderSize(conn, 64<<10)
	prbs := phy.NewPRBS(1)
	buf := make([]byte, 0, frameHeader+cell.HeaderLen+n.cfg.PayloadBytes)
	for {
		_, raw, err := ReadFrameInto(br, &buf)
		if err != nil {
			return err
		}
		n.handleCell(raw, prbs)
	}
}

// handleCell processes one received cell: epoch bookkeeping for the gate,
// PRBS verification, suspicion adoption, and stats.
func (n *node) handleCell(raw []byte, prbs *phy.PRBS) {
	// The cell's payload aliases raw (the rx loop's reusable buffer);
	// handleCell finishes with it before the next read overwrites it.
	c, _, err := cell.DecodeAlias(raw)
	if err != nil {
		return // defensively ignore undecodable frames
	}
	ep := int(c.Seq >> 8)
	src := int(c.Src)

	n.progress.Add(1)
	n.mu.Lock()
	defer n.mu.Unlock()
	defer n.cond.Broadcast()

	if src >= 0 && src < n.cfg.Nodes && ep > n.heard[src] {
		n.heard[src] = ep
	}
	if p, sw, ok := c.Suspicion(); ok && p >= 0 && p < n.cfg.Nodes {
		// Adopt the flooded suspicion: the originator judged at sw-2 and
		// the flood makes it fabric-wide knowledge by sw-1.
		n.recordSuspicionLocked(p, sw-2, sw, true)
	}
	if c.Kind != cell.KindData {
		return
	}
	n.stats.Received++
	n.tel.received.Inc()
	if n.stats.RxPerEpoch != nil && ep >= 0 && ep < len(n.stats.RxPerEpoch) {
		n.stats.RxPerEpoch[ep]++
	}
	if int(c.Dst) != n.cfg.ID {
		n.stats.Misrouted++
		n.tel.misrouted.Inc()
		return
	}
	prbs.Reset(prbsSeed(c.Src, c.Dst, c.Seq))
	errs := int64(prbs.CountErrors(c.Payload))
	n.stats.BitErrors += errs
	n.stats.Bits += int64(len(c.Payload)) * 8
	if errs > 0 {
		n.tel.bitErrs.Add(errs)
	}
	n.tel.bits.Add(int64(len(c.Payload)) * 8)
}
