package wire

import (
	"strconv"

	"sirius/internal/telemetry"
)

// Telemetry wiring for the live testbed. Node and emulator counters
// land in a telemetry.Registry (the process Default unless overridden
// through NodeConfig/PrototypeConfig or Emulator.Instrument), health
// flips land in an optional telemetry.Health, and per-epoch spans in
// an optional telemetry.Tracer — all nil-safe, so unit tests that
// don't care about observability pay one atomic add per event and
// nothing else.

// nodeTel holds one node's resolved telemetry handles. Handles are
// resolved once in RunNode; the per-cell hot path then performs plain
// atomic increments (sent/received use dedicated counter shards: one
// goroutine each, uncontended).
type nodeTel struct {
	sent        *telemetry.Shard
	received    *telemetry.Shard
	misrouted   *telemetry.Counter
	bitErrs     *telemetry.Counter
	bits        *telemetry.Counter
	reconnects  *telemetry.Counter
	suspRaised  *telemetry.Counter
	suspAdopted *telemetry.Counter
	switches    *telemetry.Counter
	ejected     *telemetry.Counter
	epoch       *telemetry.Gauge
	health      *telemetry.Health
	tracer      *telemetry.Tracer
	id          string
}

func newNodeTel(cfg NodeConfig) nodeTel {
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.Default
	}
	id := strconv.Itoa(cfg.ID)
	return nodeTel{
		sent:        reg.Counter("sirius_wire_cells_sent_total", "node", id).Shard(),
		received:    reg.Counter("sirius_wire_cells_received_total", "node", id).Shard(),
		misrouted:   reg.Counter("sirius_wire_cells_misrouted_total", "node", id),
		bitErrs:     reg.Counter("sirius_wire_bit_errors_total", "node", id),
		bits:        reg.Counter("sirius_wire_bits_total", "node", id),
		reconnects:  reg.Counter("sirius_wire_reconnects_total", "node", id),
		suspRaised:  reg.Counter("sirius_wire_suspicions_total", "node", id, "kind", "raised"),
		suspAdopted: reg.Counter("sirius_wire_suspicions_total", "node", id, "kind", "adopted"),
		switches:    reg.Counter("sirius_wire_schedule_switches_total", "node", id),
		ejected:     reg.Counter("sirius_wire_ejections_total", "node", id),
		epoch:       reg.Gauge("sirius_wire_node_epoch", "node", id),
		health:      cfg.Health,
		tracer:      cfg.Tracer,
		id:          id,
	}
}

// linkKey is this node's degraded-link health condition.
func (t *nodeTel) linkKey() string { return "node" + t.id + "/link" }

// peerKey is this node's suspicion-of-peer-p health condition. Set when
// the suspicion is raised or adopted, cleared when the fabric-wide
// schedule switch resolves it — so /healthz flips degraded during the
// §4.5 detection window and back to healthy once the fabric compacts.
func (t *nodeTel) peerKey(p int) string {
	return "node" + t.id + "/peer" + strconv.Itoa(p)
}

// emuTel holds the AWGR emulator's resolved telemetry handles.
type emuTel struct {
	portFrames  []*telemetry.Counter // per input port
	routed      *telemetry.Counter
	dropped     *telemetry.Counter
	greyDropped *telemetry.Counter
	parked      *telemetry.Counter
	rejected    *telemetry.Counter
	bitsFlipped *telemetry.Counter
	registered  *telemetry.Counter

	// Batching data-path counters: how many frames rode an output batch
	// that already had at least one frame pending (and therefore cost no
	// dedicated write), flush counts broken down by what triggered them,
	// a log2 histogram of frames per flushed batch, and the park-queue
	// high-water mark across all output ports.
	coalesced     *telemetry.Counter
	flushBatch    *telemetry.Counter // batch-size budget reached
	flushBytes    *telemetry.Counter // byte budget reached
	flushDrain    *telemetry.Counter // input stream momentarily drained (epoch boundary)
	flushIdle     *telemetry.Counter // idle flusher timeout
	flushRegister *telemetry.Counter // park-queue replay on (re)registration
	batchFrames   *telemetry.Histogram
	parkedPeak    *telemetry.Gauge

	health *telemetry.Health
}

func newEmuTel(reg *telemetry.Registry, h *telemetry.Health, ports int) *emuTel {
	if reg == nil {
		reg = telemetry.Default
	}
	t := &emuTel{
		routed:        reg.Counter("sirius_awgr_frames_routed_total"),
		dropped:       reg.Counter("sirius_awgr_frames_dropped_total"),
		greyDropped:   reg.Counter("sirius_awgr_frames_grey_dropped_total"),
		parked:        reg.Counter("sirius_awgr_frames_parked_total"),
		rejected:      reg.Counter("sirius_awgr_connections_rejected_total"),
		bitsFlipped:   reg.Counter("sirius_awgr_bits_flipped_total"),
		registered:    reg.Counter("sirius_awgr_registrations_total"),
		coalesced:     reg.Counter("sirius_awgr_frames_coalesced_total"),
		flushBatch:    reg.Counter("sirius_awgr_flushes_total", "cause", "batch"),
		flushBytes:    reg.Counter("sirius_awgr_flushes_total", "cause", "bytes"),
		flushDrain:    reg.Counter("sirius_awgr_flushes_total", "cause", "drain"),
		flushIdle:     reg.Counter("sirius_awgr_flushes_total", "cause", "idle"),
		flushRegister: reg.Counter("sirius_awgr_flushes_total", "cause", "register"),
		batchFrames:   reg.Histogram("sirius_awgr_batch_frames"),
		parkedPeak:    reg.Gauge("sirius_awgr_parked_frames_peak"),
		health:        h,
		portFrames:    make([]*telemetry.Counter, ports),
	}
	for p := 0; p < ports; p++ {
		t.portFrames[p] = reg.Counter("sirius_awgr_port_frames_total", "port", strconv.Itoa(p))
	}
	return t
}

// portKey is the emulator's degraded health condition for one port:
// set while a registered port's connection is broken but expected to
// re-register, cleared on (re)registration or final retirement.
func emuPortKey(p int) string { return "awgr/port" + strconv.Itoa(p) }

// Instrument redirects the emulator's telemetry into reg (nil = the
// process Default) and attaches a health tracker (nil = none). Call
// before Serve; the default from the constructor is the Default
// registry with no health tracking.
func (e *Emulator) Instrument(reg *telemetry.Registry, h *telemetry.Health) {
	e.tel = newEmuTel(reg, h, e.ports)
}
