package wire

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sirius/internal/fault"
	"sirius/internal/telemetry"
)

// Stats aggregates a whole prototype run. When a fault plan crashed or
// ejected nodes, the aggregate BER/cell counts cover the survivors only —
// a dead node's half-finished statistics say nothing about the fabric
// that outlived it.
type Stats struct {
	Nodes   []NodeStats
	Routed  int64   // frames the emulator forwarded
	Cells   int     // cells received across surviving nodes
	BER     float64 // aggregate pre-FEC bit error rate (survivors)
	ErrFree bool    // true when BER is within the FEC budget (2e-4)
}

// PrototypeConfig parameterizes a prototype run beyond the basic knobs.
type PrototypeConfig struct {
	Nodes        int
	Epochs       int
	PayloadBytes int
	FlipProb     float64

	// Seed drives the emulator's corruption substreams. The default (0)
	// means seed 42, matching the historical clean-run behavior.
	Seed uint64

	// Plan scripts the faults to inject; nil runs a clean fabric.
	Plan *fault.Plan

	// MissThreshold, SuspectTimeout and Timeout are forwarded to every
	// node (zero values take the NodeConfig defaults).
	MissThreshold  int
	SuspectTimeout time.Duration
	Timeout        time.Duration

	// TrackEpochs records per-epoch reception for goodput analysis; it is
	// enabled automatically when a plan is present.
	TrackEpochs bool

	// BatchFrames, BatchBytes and FlushInterval configure the emulator's
	// per-output-port write coalescing (Emulator.SetBatching). Zero
	// values take the defaults; BatchFrames = 1 disables coalescing
	// (the pre-batching per-frame write behavior).
	BatchFrames   int
	BatchBytes    int
	FlushInterval time.Duration

	// Telemetry, Health and Tracer are forwarded to every node and the
	// emulator, so a live fabric exposes per-node counters, degraded
	// conditions and per-epoch spans. Nil Telemetry uses the process
	// Default; nil Health/Tracer disable those planes.
	Telemetry *telemetry.Registry
	Health    *telemetry.Health
	Tracer    *telemetry.Tracer
}

// FaultStats extends Stats with the §4.5 failure-handling observables of
// a faulty run.
type FaultStats struct {
	Stats

	// PlanHash content-addresses the injected plan ("none" for clean runs).
	PlanHash string

	// Survivors is the number of nodes that finished the run alive.
	Survivors int

	// Failures is the survivors' consensus view of every detected failure
	// (suspect/confirm/switch epochs per victim). RunPrototypeCfg fails
	// if the survivors disagree.
	Failures []PeerFailure

	// DetectEpochs is, for single-failure runs, the fabric epochs from the
	// victim's first silent epoch through fabric-wide confirmation —
	// comparable with health.Detector.DetectionLatency.
	DetectEpochs int

	// KillEpoch..SwitchEpoch unpack the single failure, when there is one
	// (-1 otherwise).
	KillEpoch, SuspectEpoch, ConfirmEpoch, SwitchEpoch int

	// Dropped and GreyDropped mirror the emulator's loss counters: frames
	// lost to dead/over-parked ports and frames blackholed by Grey fault
	// windows. A planned-operations-only run (drains, re-adds, expansion)
	// must finish with both at zero — lifecycle transitions lose nothing.
	Dropped, GreyDropped int64

	// DegradedGoodput is the survivors' mean slot utilization between the
	// failure and the schedule switch: cells received per survivor-epoch
	// over the original schedule's slot count ((N-1)/N when one node is
	// silent). CompactedGoodput is the same ratio after the switch,
	// against the compacted slot count — 1.0 when compaction regained the
	// lost bandwidth.
	DegradedGoodput  float64
	CompactedGoodput float64
}

// RunPrototype reproduces the paper's §6 testbed experiment on a clean
// (or uniformly noisy) fabric: nodes processes exchange PRBS cells through
// the AWGR emulator for the given number of epochs.
func RunPrototype(nodes, epochs, payloadBytes int, flipProb float64) (*Stats, error) {
	fs, err := RunPrototypeCfg(PrototypeConfig{
		Nodes: nodes, Epochs: epochs, PayloadBytes: payloadBytes, FlipProb: flipProb,
	})
	if err != nil {
		return nil, err
	}
	return &fs.Stats, nil
}

// RunPrototypeCfg runs the prototype fabric under a full configuration,
// including a scripted fault plan, and returns the failure-handling
// observables alongside the usual statistics.
func RunPrototypeCfg(cfg PrototypeConfig) (*FaultStats, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("wire: need >= 2 nodes")
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("wire: need >= 1 epoch")
	}
	if err := cfg.Plan.Validate(cfg.Nodes); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	if cfg.Plan != nil && cfg.Plan.Seed != 0 {
		seed = cfg.Plan.Seed
	}
	track := cfg.TrackEpochs || !cfg.Plan.Empty()

	em, err := NewEmulatorFault("127.0.0.1:0", cfg.Nodes, cfg.FlipProb, seed, cfg.Plan)
	if err != nil {
		return nil, err
	}
	if cfg.Telemetry != nil || cfg.Health != nil {
		em.Instrument(cfg.Telemetry, cfg.Health)
	}
	if cfg.BatchFrames != 0 || cfg.BatchBytes != 0 || cfg.FlushInterval != 0 {
		em.SetBatching(cfg.BatchFrames, cfg.BatchBytes, cfg.FlushInterval)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- em.Serve() }()

	stats := make([]*NodeStats, cfg.Nodes)
	errs := make([]error, cfg.Nodes)
	var wg sync.WaitGroup
	for id := 0; id < cfg.Nodes; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			stats[id], errs[id] = RunNode(NodeConfig{
				ID:             id,
				Addr:           em.Addr(),
				Nodes:          cfg.Nodes,
				Epochs:         cfg.Epochs,
				PayloadBytes:   cfg.PayloadBytes,
				Timeout:        cfg.Timeout,
				SuspectTimeout: cfg.SuspectTimeout,
				MissThreshold:  cfg.MissThreshold,
				Plan:           cfg.Plan,
				TrackEpochs:    track,
				Telemetry:      cfg.Telemetry,
				Health:         cfg.Health,
				Tracer:         cfg.Tracer,
			})
		}(id)
	}
	wg.Wait()
	em.Close() // idempotent; normally the fabric already completed
	if err := <-serveErr; err != nil {
		return nil, err
	}
	for id, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("wire: node %d: %w", id, err)
		}
	}

	fs := &FaultStats{
		PlanHash:  cfg.Plan.Hash(),
		KillEpoch: -1, SuspectEpoch: -1, ConfirmEpoch: -1, SwitchEpoch: -1,
	}
	fs.Routed = em.Routed()
	fs.Dropped = em.Dropped()
	fs.GreyDropped = em.GreyDropped()
	var bits, bitErrs int64
	for _, st := range stats {
		fs.Nodes = append(fs.Nodes, *st)
		if st.Crashed || st.Ejected {
			continue
		}
		fs.Survivors++
		fs.Cells += st.Received
		bits += st.Bits
		bitErrs += st.BitErrors
	}
	if bits > 0 {
		fs.BER = float64(bitErrs) / float64(bits)
	}
	fs.ErrFree = fs.BER <= fecThreshold

	if err := fs.fillFailureView(cfg, stats); err != nil {
		return nil, err
	}
	return fs, nil
}

// fillFailureView derives the consensus failure record and the goodput
// split from the survivors' per-node views.
func (fs *FaultStats) fillFailureView(cfg PrototypeConfig, stats []*NodeStats) error {
	var consensus []PeerFailure
	first := true
	for _, st := range stats {
		if st.Crashed || st.Ejected {
			continue
		}
		// Consensus is asserted over full-timeline founders only: a node
		// that joined, drained, or rejoined mid-run legitimately holds a
		// partial failure view (awaitWelcome trims it to its admission).
		if st.Drained || st.Rejoins > 0 || st.JoinedAt > 0 {
			continue
		}
		view := append([]PeerFailure(nil), st.Failures...)
		sort.Slice(view, func(i, j int) bool { return view[i].Peer < view[j].Peer })
		if first {
			consensus, first = view, false
			continue
		}
		if len(view) != len(consensus) {
			return fmt.Errorf("wire: survivors disagree on failures: node %d saw %d, others %d",
				st.Node, len(view), len(consensus))
		}
		for i := range view {
			if view[i] != consensus[i] {
				return fmt.Errorf("wire: survivors disagree on failure of node %d: %+v vs %+v",
					view[i].Peer, view[i], consensus[i])
			}
		}
	}
	fs.Failures = consensus
	if len(consensus) != 1 {
		return nil
	}

	f := consensus[0]
	threshold := cfg.MissThreshold
	if threshold <= 0 {
		threshold = defaultMissThreshold
	}
	fs.SuspectEpoch = f.SuspectEpoch
	fs.ConfirmEpoch = f.ConfirmEpoch
	fs.SwitchEpoch = f.SwitchEpoch
	fs.KillEpoch = f.SuspectEpoch - threshold
	fs.DetectEpochs = fs.ConfirmEpoch - fs.KillEpoch

	// Goodput split: mean received cells per survivor-epoch, normalized by
	// each regime's slot count.
	degradedLo, degradedHi := fs.KillEpoch, fs.SwitchEpoch
	compactLo, compactHi := fs.SwitchEpoch, cfg.Epochs
	var degSum, comSum float64
	var degN, comN int
	for _, st := range stats {
		if st.Crashed || st.Ejected || st.RxPerEpoch == nil {
			continue
		}
		for e := degradedLo; e < degradedHi && e < len(st.RxPerEpoch); e++ {
			degSum += float64(st.RxPerEpoch[e])
			degN++
		}
		for e := compactLo; e < compactHi && e < len(st.RxPerEpoch); e++ {
			comSum += float64(st.RxPerEpoch[e])
			comN++
		}
	}
	if degN > 0 {
		fs.DegradedGoodput = degSum / float64(degN) / float64(cfg.Nodes)
	}
	if comN > 0 {
		fs.CompactedGoodput = comSum / float64(comN) / float64(fs.Survivors)
	}
	return nil
}
