package wire

import (
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"sirius/internal/cell"
	"sirius/internal/fault"
	"sirius/internal/telemetry"
)

func TestExpansionGrowsFabric(t *testing.T) {
	// Live expansion: a 6-port fabric starts with 4 founders; nodes 4 and
	// 5 attach at epoch 6 and are admitted at the agreed switch epoch 8.
	// Every founder must flip to the 6-wide schedule on the same epoch,
	// the joiners must carry full traffic from their first epoch, and the
	// planned operation must lose nothing.
	const total, expandAt, epochs = 6, 6, 20
	const switchEpoch = expandAt + 2
	plan := &fault.Plan{Seed: 11, Events: []fault.Event{
		{Kind: fault.Expand, Node: 4, Epoch: expandAt},
		{Kind: fault.Expand, Node: 5, Epoch: expandAt},
	}}
	fs, err := RunPrototypeCfg(faultCfg(total, epochs, plan))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Failures) != 0 {
		t.Fatalf("expansion produced failure records: %+v", fs.Failures)
	}
	if fs.Dropped != 0 || fs.GreyDropped != 0 {
		t.Fatalf("planned expansion lost frames: dropped %d, grey %d", fs.Dropped, fs.GreyDropped)
	}
	if fs.Survivors != total {
		t.Errorf("survivors = %d, want %d", fs.Survivors, total)
	}
	if !fs.ErrFree || fs.BER != 0 {
		t.Errorf("expansion run not error-free: BER %v", fs.BER)
	}

	founderSent := 4*switchEpoch + total*(epochs-switchEpoch)
	joinerSent := total * (epochs - switchEpoch)
	wantChanges := []MemberChange{
		{Epoch: switchEpoch, Node: 4, Kind: "join"},
		{Epoch: switchEpoch, Node: 5, Kind: "join"},
	}
	for _, n := range fs.Nodes {
		if n.Misrouted != 0 {
			t.Errorf("node %d misrouted %d cells", n.Node, n.Misrouted)
		}
		if n.Node >= 4 {
			if n.JoinedAt != switchEpoch {
				t.Errorf("joiner %d admitted at %d, want %d", n.Node, n.JoinedAt, switchEpoch)
			}
			if n.Sent != joinerSent || n.Received != joinerSent {
				t.Errorf("joiner %d sent/received %d/%d, want %d/%d",
					n.Node, n.Sent, n.Received, joinerSent, joinerSent)
			}
			continue
		}
		if n.JoinedAt != 0 || n.Rejoins != 0 || n.Drained {
			t.Errorf("founder %d has lifecycle stats %+v", n.Node, n)
		}
		if n.Sent != founderSent || n.Received != founderSent {
			t.Errorf("founder %d sent/received %d/%d, want %d/%d",
				n.Node, n.Sent, n.Received, founderSent, founderSent)
		}
		// No survivor desync: every founder applied the same membership
		// switches at the same epochs.
		if len(n.Changes) != len(wantChanges) {
			t.Fatalf("founder %d changes = %+v, want %+v", n.Node, n.Changes, wantChanges)
		}
		for i, c := range n.Changes {
			if c != wantChanges[i] {
				t.Errorf("founder %d change %d = %+v, want %+v", n.Node, i, c, wantChanges[i])
			}
		}
	}
}

func TestPlannedDrainZeroLoss(t *testing.T) {
	// Cooperative drain: node 2 announces at epoch 8, the fabric agrees to
	// stop scheduling it from epoch 10, and it detaches only after hearing
	// everyone's epoch 9 — so every cell ever addressed to it arrived.
	// Zero loss on both sides of the wire, and /healthz stays green: a
	// planned operation is not an incident.
	const nodes, victim, drainAt, epochs = 4, 2, 8, 20
	const leaveEpoch = drainAt + 2
	plan := &fault.Plan{Seed: 21, Events: []fault.Event{
		{Kind: fault.Drain, Node: victim, Epoch: drainAt},
	}}
	reg := telemetry.NewRegistry()
	h := telemetry.NewHealth(64)
	cfg := faultCfg(nodes, epochs, plan)
	cfg.Telemetry = reg
	cfg.Health = h
	fs, err := RunPrototypeCfg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Failures) != 0 {
		t.Fatalf("planned drain produced failure records: %+v", fs.Failures)
	}
	if fs.Dropped != 0 || fs.GreyDropped != 0 {
		t.Fatalf("planned drain lost frames: dropped %d, grey %d", fs.Dropped, fs.GreyDropped)
	}
	if h.SawFlap() {
		t.Error("health flapped during a planned drain; planned operations must stay green")
	}
	if fs.Survivors != nodes {
		t.Errorf("survivors = %d, want %d (a drained node finished cleanly)", fs.Survivors, nodes)
	}

	drainedSent := nodes * leaveEpoch
	remainSent := nodes*leaveEpoch + (nodes-1)*(epochs-leaveEpoch)
	for _, n := range fs.Nodes {
		if n.Misrouted != 0 {
			t.Errorf("node %d misrouted %d cells", n.Node, n.Misrouted)
		}
		if n.Node == victim {
			if !n.Drained || n.Crashed || n.Ejected {
				t.Errorf("victim flags wrong: %+v", n)
			}
			// Zero cell loss, asserted exactly: the victim was addressed
			// nodes cells per epoch for leaveEpoch epochs, and every one
			// arrived before it detached.
			if n.Sent != drainedSent || n.Received != drainedSent {
				t.Errorf("victim sent/received %d/%d, want %d/%d",
					n.Sent, n.Received, drainedSent, drainedSent)
			}
			continue
		}
		if n.Sent != remainSent || n.Received != remainSent {
			t.Errorf("node %d sent/received %d/%d, want %d/%d",
				n.Node, n.Sent, n.Received, remainSent, remainSent)
		}
		if len(n.Changes) != 1 || n.Changes[0] != (MemberChange{Epoch: leaveEpoch, Node: victim, Kind: "leave"}) {
			t.Errorf("node %d changes = %+v, want one leave of %d at %d",
				n.Node, n.Changes, victim, leaveEpoch)
		}
	}
}

func TestDrainReaddCycle(t *testing.T) {
	// Rolling maintenance: node 1 drains at epoch 6 (out at 8), is re-added
	// at epoch 12 (in at 14), and carries full traffic again to the end.
	// The whole cycle is planned: zero loss, no failure records, and the
	// survivors' change timelines are identical.
	const nodes, victim, drainAt, readdAt, epochs = 4, 1, 6, 12, 24
	const leaveEpoch, joinEpoch = drainAt + 2, readdAt + 2
	plan := &fault.Plan{Seed: 31, Events: []fault.Event{
		{Kind: fault.Drain, Node: victim, Epoch: drainAt},
		{Kind: fault.Readd, Node: victim, Epoch: readdAt},
	}}
	h := telemetry.NewHealth(64)
	cfg := faultCfg(nodes, epochs, plan)
	cfg.Telemetry = telemetry.NewRegistry()
	cfg.Health = h
	fs, err := RunPrototypeCfg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Failures) != 0 {
		t.Fatalf("drain/re-add cycle produced failure records: %+v", fs.Failures)
	}
	if fs.Dropped != 0 || fs.GreyDropped != 0 {
		t.Fatalf("drain/re-add cycle lost frames: dropped %d, grey %d", fs.Dropped, fs.GreyDropped)
	}
	if h.SawFlap() {
		t.Error("health flapped during a planned drain/re-add cycle")
	}

	cycledTotal := nodes*leaveEpoch + nodes*(epochs-joinEpoch)
	remainTotal := nodes*leaveEpoch + (nodes-1)*(joinEpoch-leaveEpoch) + nodes*(epochs-joinEpoch)
	wantChanges := []MemberChange{
		{Epoch: leaveEpoch, Node: victim, Kind: "leave"},
		{Epoch: joinEpoch, Node: victim, Kind: "join"},
	}
	for _, n := range fs.Nodes {
		if n.Node == victim {
			if !n.Drained || n.Rejoins != 1 || n.Crashed || n.Ejected {
				t.Errorf("victim lifecycle flags wrong: %+v", n)
			}
			if n.Sent != cycledTotal || n.Received != cycledTotal {
				t.Errorf("victim sent/received %d/%d, want %d/%d",
					n.Sent, n.Received, cycledTotal, cycledTotal)
			}
			continue
		}
		if n.Sent != remainTotal || n.Received != remainTotal {
			t.Errorf("node %d sent/received %d/%d, want %d/%d",
				n.Node, n.Sent, n.Received, remainTotal, remainTotal)
		}
		if len(n.Changes) != len(wantChanges) {
			t.Fatalf("node %d changes = %+v, want %+v", n.Node, n.Changes, wantChanges)
		}
		for i, c := range n.Changes {
			if c != wantChanges[i] {
				t.Errorf("node %d change %d = %+v, want %+v", n.Node, i, c, wantChanges[i])
			}
		}
	}
}

func TestCrashRestartRejoins(t *testing.T) {
	// A crash followed by a scripted restart: node 1 dies at epoch 6, is
	// compacted out at 11 (threshold 3 + flood + align), restarts at 14,
	// and is re-admitted at 16 — the rolling-restart story end to end.
	const nodes, victim, crashAt, restartAt, epochs = 4, 1, 6, 14, 28
	const failEpoch = crashAt + 3 + 2 // suspect at gate 9, switch at 11
	const joinEpoch = restartAt + 2
	plan := &fault.Plan{Seed: 41, Events: []fault.Event{
		{Kind: fault.Crash, Node: victim, Epoch: crashAt},
		{Kind: fault.Restart, Node: victim, Epoch: restartAt},
	}}
	fs, err := RunPrototypeCfg(faultCfg(nodes, epochs, plan))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Failures) != 1 || fs.Failures[0].Peer != victim {
		t.Fatalf("failures = %+v, want exactly node %d", fs.Failures, victim)
	}
	if fs.SwitchEpoch != failEpoch {
		t.Errorf("failure switch epoch = %d, want %d", fs.SwitchEpoch, failEpoch)
	}

	wantChanges := []MemberChange{
		{Epoch: failEpoch, Node: victim, Kind: "fail"},
		{Epoch: joinEpoch, Node: victim, Kind: "join"},
	}
	survReceived := nodes*crashAt + (nodes-1)*(joinEpoch-crashAt) + nodes*(epochs-joinEpoch)
	for _, n := range fs.Nodes {
		if n.Node == victim {
			if !n.Crashed || n.Rejoins != 1 || n.Ejected {
				t.Errorf("victim lifecycle flags wrong: %+v", n)
			}
			// Transmits epochs [0, crashAt) then [joinEpoch, epochs).
			if want := nodes*crashAt + nodes*(epochs-joinEpoch); n.Sent != want {
				t.Errorf("victim sent %d, want %d", n.Sent, want)
			}
			continue
		}
		if n.Received != survReceived {
			t.Errorf("survivor %d received %d, want %d", n.Node, n.Received, survReceived)
		}
		if len(n.Changes) != len(wantChanges) {
			t.Fatalf("survivor %d changes = %+v, want %+v", n.Node, n.Changes, wantChanges)
		}
		for i, c := range n.Changes {
			if c != wantChanges[i] {
				t.Errorf("survivor %d change %d = %+v, want %+v", n.Node, i, c, wantChanges[i])
			}
		}
	}
}

func TestLifecycleReplayDeterminism(t *testing.T) {
	// A full lifecycle plan — expansion, a drain/re-add cycle, and a
	// degrade window — replays byte-identically at a fixed seed: every
	// node's counters, bit errors, and membership timeline, and the
	// emulator's frame count, are equal across runs.
	plan := &fault.Plan{Seed: 7, Events: []fault.Event{
		{Kind: fault.Expand, Node: 4, Epoch: 5},
		{Kind: fault.Expand, Node: 5, Epoch: 5},
		{Kind: fault.Drain, Node: 1, Epoch: 12},
		{Kind: fault.Readd, Node: 1, Epoch: 20},
		{Kind: fault.Degrade, Src: 2, Epoch: 3, Until: 10, FlipProb: 2e-3},
	}}
	run := func() *FaultStats {
		fs, err := RunPrototypeCfg(faultCfg(6, 32, plan))
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	a, b := run(), run()
	if a.BER == 0 {
		t.Error("degrade window injected no errors")
	}
	if a.Routed != b.Routed || a.Cells != b.Cells || a.BER != b.BER ||
		a.Dropped != b.Dropped || a.GreyDropped != b.GreyDropped {
		t.Errorf("aggregates differ:\n  %+v\n  %+v", a.Stats, b.Stats)
	}
	if a.Dropped != 0 {
		t.Errorf("planned lifecycle plan dropped %d frames", a.Dropped)
	}
	for i := range a.Nodes {
		x, y := a.Nodes[i], b.Nodes[i]
		if x.Sent != y.Sent || x.Received != y.Received || x.BitErrors != y.BitErrors ||
			x.Bits != y.Bits || x.Drained != y.Drained || x.Rejoins != y.Rejoins ||
			x.JoinedAt != y.JoinedAt || len(x.Changes) != len(y.Changes) {
			t.Errorf("node %d stats differ:\n  %+v\n  %+v", i, x, y)
			continue
		}
		for j := range x.Changes {
			if x.Changes[j] != y.Changes[j] {
				t.Errorf("node %d change %d differs: %+v vs %+v", i, j, x.Changes[j], y.Changes[j])
			}
		}
	}
}

func TestLifecycleValidationAtRunNode(t *testing.T) {
	// Lifecycle plans whose switch epochs cannot land inside the run are
	// rejected up front, as is a fabric whose founders would number < 2.
	tooLate := &fault.Plan{Events: []fault.Event{{Kind: fault.Drain, Node: 1, Epoch: 9}}}
	if _, err := RunNode(NodeConfig{ID: 0, Nodes: 4, Epochs: 10, PayloadBytes: 8,
		Addr: "127.0.0.1:1", Plan: tooLate}); err == nil {
		t.Error("drain switching past the horizon accepted")
	}
	allJoin := &fault.Plan{Events: []fault.Event{
		{Kind: fault.Expand, Node: 1, Epoch: 2},
		{Kind: fault.Expand, Node: 2, Epoch: 2},
		{Kind: fault.Expand, Node: 3, Epoch: 2},
	}}
	if _, err := RunNode(NodeConfig{ID: 0, Nodes: 4, Epochs: 20, PayloadBytes: 8,
		Addr: "127.0.0.1:1", Plan: allJoin}); err == nil {
		t.Error("fabric with a single founder accepted")
	}
}

func TestEmulatorCloseAccountsParked(t *testing.T) {
	// Frames parked for a port that never arrives are accounted as dropped
	// by Close: routed frames always land in delivered, dropped, or
	// grey-dropped, even on an abortive shutdown.
	em, err := NewEmulator(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- em.Serve() }()

	conn, err := net.Dial("tcp", em.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	h := EncodeHandshake(0, 0)
	conn.Write(h[:])
	var reply [hsReplyLen]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil || reply[0] != HsOK {
		t.Fatalf("registration failed: %v %v", err, reply)
	}

	// Three frames for port 1, which never registers: they park.
	const parked = 3
	c := cell.Cell{Kind: cell.KindData, Src: 0, Dst: 1, Payload: []byte{1, 2, 3, 4}}
	for i := 0; i < parked; i++ {
		if err := WriteFrame(conn, 1, c.Encode(nil)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for em.Routed() < parked {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d frames routed", em.Routed(), parked)
		}
		time.Sleep(time.Millisecond)
	}

	em.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after Close", err)
	}
	if got := em.Dropped(); got != parked {
		t.Errorf("dropped = %d after Close, want the %d parked frames", got, parked)
	}
}

func TestEmulatorCloseStopsGoroutines(t *testing.T) {
	// Close leaves no emulator goroutine behind: the idle flusher is
	// stopped and joined, and Serve's workers unwind once the listener and
	// connections are closed.
	before := runtime.NumGoroutine()

	em, err := NewEmulator(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- em.Serve() }()

	conn, err := net.Dial("tcp", em.Addr())
	if err != nil {
		t.Fatal(err)
	}
	h := EncodeHandshake(0, 0)
	conn.Write(h[:])
	var reply [hsReplyLen]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil || reply[0] != HsOK {
		t.Fatalf("registration failed: %v %v", err, reply)
	}

	em.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after Close", err)
	}
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // give netpoll deregistration a nudge
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
