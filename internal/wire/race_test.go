//go:build race

package wire

// raceEnabled reports whether the race detector is compiled in. The
// fault tests scale their failure-detection timeouts by it: race
// instrumentation slows the wire hot path enough that the victim's
// final-epoch frames can miss a 250ms gate deadline on a small machine,
// shifting the whole suspicion arc one epoch early. The assertions are
// epoch-indexed, so a larger timeout changes nothing but wall time.
const raceEnabled = true
