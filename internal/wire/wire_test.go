package wire

import (
	"bytes"
	"io"
	"math"
	"net"
	"testing"

	"sirius/internal/cell"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("cell goes here")
	if err := WriteFrame(&buf, 7, payload); err != nil {
		t.Fatal(err)
	}
	w, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w != 7 || !bytes.Equal(got, payload) {
		t.Errorf("round trip: wavelength %d payload %q", w, got)
	}
}

func TestFrameRejectsHuge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestPrototypeCleanChannel(t *testing.T) {
	// The §6 experiment: four nodes, cyclic schedule, PRBS exchange,
	// post-FEC error-free operation on a clean channel.
	st, err := RunPrototype(4, 50, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ErrFree {
		t.Errorf("clean channel not error-free: BER %v", st.BER)
	}
	if st.BER != 0 {
		t.Errorf("BER = %v on clean channel", st.BER)
	}
	for _, n := range st.Nodes {
		if n.Sent != 200 || n.Received != 200 {
			t.Errorf("node %d sent/received %d/%d, want 200/200", n.Node, n.Sent, n.Received)
		}
		if n.Misrouted != 0 {
			t.Errorf("node %d saw %d misrouted cells", n.Node, n.Misrouted)
		}
	}
	if st.Routed != 800 {
		t.Errorf("routed %d frames, want 800", st.Routed)
	}
}

func TestPrototypeNoisyChannel(t *testing.T) {
	// Corruption at 1e-3 per bit exceeds the 2e-4 FEC threshold: the
	// PRBS checkers must detect it and the run must not claim error-free
	// operation.
	st, err := RunPrototype(4, 30, 64, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if st.ErrFree {
		t.Errorf("noisy channel claimed error-free (BER %v)", st.BER)
	}
	if math.Abs(st.BER-1e-3) > 5e-4 {
		t.Errorf("measured BER %v, injected 1e-3", st.BER)
	}
}

func TestPrototypeMildNoiseWithinFEC(t *testing.T) {
	// Noise below the FEC threshold: detected but correctable.
	st, err := RunPrototype(4, 30, 64, 5e-5)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ErrFree {
		t.Errorf("BER %v should be within the FEC budget", st.BER)
	}
	if st.BER == 0 {
		t.Error("injected noise not observed at all")
	}
}

func TestPrototypeEightNodes(t *testing.T) {
	st, err := RunPrototype(8, 20, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range st.Nodes {
		if n.Sent != 160 || n.Received != 160 || n.Misrouted != 0 {
			t.Errorf("node %+v", n)
		}
	}
}

func TestEmulatorValidation(t *testing.T) {
	if _, err := NewEmulator(1, 0, 1); err == nil {
		t.Error("1-port emulator accepted")
	}
	if _, err := NewEmulator(4, 1.0, 1); err == nil {
		t.Error("flip probability 1.0 accepted")
	}
	if _, err := NewEmulator(4, -0.1, 1); err == nil {
		t.Error("negative flip probability accepted")
	}
}

func TestRunNodeValidation(t *testing.T) {
	if _, err := RunNode(NodeConfig{ID: 5, Nodes: 4, PayloadBytes: 8}); err == nil {
		t.Error("bad node id accepted")
	}
	if _, err := RunNode(NodeConfig{ID: 0, Nodes: 4, PayloadBytes: 0}); err == nil {
		t.Error("zero payload accepted")
	}
}

func TestNodeStatsBER(t *testing.T) {
	s := NodeStats{BitErrors: 5, Bits: 10000}
	if s.BER() != 5e-4 {
		t.Errorf("BER = %v", s.BER())
	}
	if (NodeStats{}).BER() != 0 {
		t.Error("empty stats BER should be 0")
	}
}

func TestCellSurvivesFraming(t *testing.T) {
	// A cell encoded into a frame and back is intact.
	c := cell.Cell{Kind: cell.KindData, Src: 1, Dst: 2, Flow: 3, Seq: 4,
		Payload: []byte{9, 9, 9}}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 3, c.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	_, raw, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := cell.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != 1 || got.Dst != 2 || got.Flow != 3 || got.Seq != 4 {
		t.Errorf("cell mangled: %+v", got)
	}
}

func TestEmulatorAddrExplicit(t *testing.T) {
	em, err := NewEmulatorAddr("127.0.0.1:0", 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	if em.Addr() == "" {
		t.Error("no address")
	}
	if _, err := NewEmulatorAddr("256.0.0.1:99999", 2, 0, 1); err == nil {
		t.Error("bad address accepted")
	}
}

func TestRunNodeConnectFailure(t *testing.T) {
	_, err := RunNode(NodeConfig{
		ID: 0, Nodes: 4, PayloadBytes: 8,
		Addr: "127.0.0.1:1", // nothing listens here
	})
	if err == nil {
		t.Error("connect to dead address succeeded")
	}
}

func TestEmulatorRejectsBadHandshake(t *testing.T) {
	// A malformed handshake is rejected with a status reply — and the
	// emulator keeps serving: a buggy client cannot take the fabric down.
	em, err := NewEmulator(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	serveErr := make(chan error, 1)
	go func() { serveErr <- em.Serve() }()

	badConn, err := net.Dial("tcp", em.Addr())
	if err != nil {
		t.Fatal(err)
	}
	badConn.Write([]byte{0xA7, hsVersion, 99, 0}) // port out of range
	var reply [hsReplyLen]byte
	if _, err := io.ReadFull(badConn, reply[:]); err != nil {
		t.Fatalf("no reject reply: %v", err)
	}
	if reply[0] != HsBadPort {
		t.Errorf("reject status = %s, want %s", hsStatusString(reply[0]), hsStatusString(HsBadPort))
	}
	badConn.Close()

	// The emulator is still accepting: a valid registration succeeds.
	goodConn, err := net.Dial("tcp", em.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer goodConn.Close()
	h := EncodeHandshake(0, 0)
	goodConn.Write(h[:])
	if _, err := io.ReadFull(goodConn, reply[:]); err != nil {
		t.Fatalf("valid handshake after reject got no reply: %v", err)
	}
	if reply[0] != HsOK {
		t.Errorf("valid handshake rejected: %s", hsStatusString(reply[0]))
	}
	if em.Rejected() != 1 {
		t.Errorf("rejected count = %d, want 1", em.Rejected())
	}

	em.Close()
	if err := <-serveErr; err != nil {
		t.Errorf("Serve returned %v after Close, want nil", err)
	}
}
