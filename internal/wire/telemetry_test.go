package wire

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"sirius/internal/fault"
	"sirius/internal/telemetry"
)

// TestLiveTelemetry is the acceptance test for the live observability
// plane: a 4-node fabric with a scripted kill runs with a dedicated
// registry, health tracker and tracer, served over HTTP. The health
// state must flip healthy -> degraded (while the victim is suspected)
// -> healthy (once the fabric compacts), /metrics must expose the
// suspicion and per-port counters, and the tracer must hold valid
// per-epoch spans.
func TestLiveTelemetry(t *testing.T) {
	const nodes, epochs, victim, killAt = 4, 30, 2, 8

	reg := telemetry.NewRegistry()
	h := telemetry.NewHealth(64)
	tr := telemetry.NewTracer(1 << 12)
	srv, err := telemetry.NewServer("127.0.0.1:0", reg, h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := faultCfg(nodes, epochs, fault.KillPlan(victim, killAt, 7))
	cfg.Telemetry = reg
	cfg.Health = h
	cfg.Tracer = tr
	fs, err := RunPrototypeCfg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Survivors != nodes-1 {
		t.Fatalf("survivors = %d, want %d", fs.Survivors, nodes-1)
	}

	// healthy -> degraded -> healthy across the kill/detect/compact arc.
	if !h.SawFlap() {
		t.Fatalf("health never flipped degraded->healthy; history: %+v", h.History())
	}
	if !h.Healthy() {
		t.Fatalf("fabric not healthy after compaction; status: %+v", h.Status())
	}

	// Live /healthz agrees.
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(hb), `"healthy"`) {
		t.Fatalf("/healthz: %d %s", resp.StatusCode, hb)
	}

	// Live /metrics carries the key series.
	resp, err = http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metricsOut := string(mb)
	for _, want := range []string{
		"sirius_wire_cells_sent_total",
		"sirius_wire_cells_received_total",
		"sirius_wire_suspicions_total",
		"sirius_wire_schedule_switches_total",
		"sirius_awgr_frames_routed_total",
		`sirius_awgr_port_frames_total{port="0"}`,
	} {
		if !strings.Contains(metricsOut, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Registry-level assertions: each survivor raised or adopted the
	// suspicion exactly once, and each applied exactly one switch.
	snap := reg.Snapshot()
	if got := snap.CounterTotal("sirius_wire_suspicions_total"); got != int64(nodes-1) {
		t.Errorf("suspicions = %d, want %d (one per survivor)", got, nodes-1)
	}
	if got := snap.CounterTotal("sirius_wire_schedule_switches_total"); got != int64(nodes-1) {
		t.Errorf("schedule switches = %d, want %d", got, nodes-1)
	}
	if got := snap.CounterTotal("sirius_awgr_frames_routed_total"); got != fs.Routed {
		t.Errorf("telemetry routed = %d, emulator says %d", got, fs.Routed)
	}
	var sent int64
	for _, st := range fs.Nodes {
		sent += int64(st.Sent)
	}
	if got := snap.CounterTotal("sirius_wire_cells_sent_total"); got != sent {
		t.Errorf("telemetry sent = %d, stats say %d", got, sent)
	}

	// The tracer holds valid Chrome trace-event JSON with epoch spans
	// and the suspect/switch instants.
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateTrace([]byte(sb.String())); err != nil {
		t.Fatalf("trace schema: %v", err)
	}
	var sawEpoch, sawSuspect, sawSwitch bool
	for _, ev := range tr.Events() {
		switch ev.Name {
		case "epoch":
			sawEpoch = true
		case "suspect":
			sawSuspect = true
		case "schedule-switch":
			sawSwitch = true
		}
	}
	if !sawEpoch || !sawSuspect || !sawSwitch {
		t.Errorf("trace missing events: epoch=%v suspect=%v switch=%v", sawEpoch, sawSuspect, sawSwitch)
	}
}

// TestLiveTelemetryReconnectFlap drives the scripted restart-flap plan
// with a health tracker attached: the link-down condition must flip the
// fabric degraded during the flap and clear on re-registration.
func TestLiveTelemetryReconnectFlap(t *testing.T) {
	const nodes, epochs, victim, flapAt = 4, 30, 1, 10
	reg := telemetry.NewRegistry()
	h := telemetry.NewHealth(64)

	plan := &fault.Plan{Seed: 7, Events: []fault.Event{
		{Kind: fault.Flap, Node: victim, Epoch: flapAt},
	}}
	cfg := faultCfg(nodes, epochs, plan)
	cfg.Telemetry = reg
	cfg.Health = h
	fs, err := RunPrototypeCfg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Nodes[victim].Reconnects == 0 {
		t.Fatalf("victim never reconnected: %+v", fs.Nodes[victim])
	}
	if !h.Healthy() {
		t.Fatalf("fabric not healthy after flap: %+v", h.Status())
	}
	if !h.SawFlap() {
		t.Fatalf("health never flipped during the flap; history: %+v", h.History())
	}
	if got := reg.Snapshot().CounterTotal("sirius_wire_reconnects_total"); got == 0 {
		t.Error("reconnect counter never incremented")
	}
}
