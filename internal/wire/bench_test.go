package wire

import (
	"fmt"
	"sync/atomic"
	"testing"

	"sirius/internal/rng"
)

// BenchmarkEmulatorCorrupt measures the frame-corruption hot path. The
// old implementation held the emulator's single global mutex across a
// per-bit Bernoulli loop over the whole payload; the current one uses
// per-input-port RNG substreams (no shared lock) and geometric skip
// sampling (one draw per flipped bit instead of one per bit). The
// "parallel8" variants model eight input ports corrupting concurrently,
// as the emulator's per-port goroutines do. Baseline numbers from the
// old implementation are recorded in BENCH_wire.json.
func BenchmarkEmulatorCorrupt(b *testing.B) {
	const payload = 562 // default cell size
	for _, prob := range []float64{1e-3, 1e-5} {
		b.Run(fmt.Sprintf("serial/p=%g", prob), func(b *testing.B) {
			r := rng.New(rng.PointSeed(42, 0))
			buf := make([]byte, payload)
			b.SetBytes(payload)
			var flips int64
			for i := 0; i < b.N; i++ {
				flips += corruptPayload(buf, prob, r)
			}
			if flips < 0 {
				b.Fatal("impossible")
			}
		})
		b.Run(fmt.Sprintf("parallel8/p=%g", prob), func(b *testing.B) {
			b.SetBytes(payload)
			var port atomic.Int64
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				r := rng.New(rng.PointSeed(42, uint64(port.Add(1))))
				buf := make([]byte, payload)
				for pb.Next() {
					corruptPayload(buf, prob, r)
				}
			})
		})
	}
}
