package wire

import (
	"io"
	"net"
	"testing"
	"time"

	"sirius/internal/fault"
	"sirius/internal/health"
	"sirius/internal/rng"
)

// faultCfg is the shared fast-timing configuration for fault tests: small
// suspect timeouts so the silence epochs cost milliseconds, not the 2s
// production default. Under the race detector the hot path runs several
// times slower, and a too-tight gate deadline can declare the victim
// silent one epoch early (its final frames are still in flight when the
// gate fires) — so the timeout is scaled up. Every assertion downstream
// is epoch-indexed, not time-indexed, so only wall time changes.
func faultCfg(nodes, epochs int, plan *fault.Plan) PrototypeConfig {
	suspect, overall := 250*time.Millisecond, 8*time.Second
	if raceEnabled {
		suspect, overall = 750*time.Millisecond, 20*time.Second
	}
	return PrototypeConfig{
		Nodes:          nodes,
		Epochs:         epochs,
		PayloadBytes:   32,
		Plan:           plan,
		SuspectTimeout: suspect,
		Timeout:        overall,
	}
}

func TestNodeCrashDetectedAndCompacted(t *testing.T) {
	// The acceptance experiment: kill node 2 at epoch 8 of 30. The
	// survivors must suspect it after MissThreshold silent epochs, confirm
	// fabric-wide one epoch later, switch to the compacted schedule at the
	// agreed boundary, and finish error-free — with no absolute deadline
	// doing the work.
	const nodes, epochs, victim, killAt = 4, 30, 2, 8
	start := time.Now()
	fs, err := RunPrototypeCfg(faultCfg(nodes, epochs, fault.KillPlan(victim, killAt, 7)))
	if err != nil {
		t.Fatal(err)
	}
	wallBudget := 20 * time.Second
	if raceEnabled {
		wallBudget = 40 * time.Second // larger suspect gates + instrumentation overhead
	}
	if wall := time.Since(start); wall > wallBudget {
		t.Errorf("crash run took %v; graceful degradation should finish in seconds", wall)
	}

	if fs.Survivors != nodes-1 {
		t.Fatalf("survivors = %d, want %d", fs.Survivors, nodes-1)
	}
	if len(fs.Failures) != 1 || fs.Failures[0].Peer != victim {
		t.Fatalf("failures = %+v, want exactly node %d", fs.Failures, victim)
	}
	if fs.KillEpoch != killAt {
		t.Errorf("inferred kill epoch = %d, want %d", fs.KillEpoch, killAt)
	}
	// Silence epochs killAt..killAt+2 cross the threshold at the gate of
	// killAt+3; the flood confirms at killAt+4; the switch at killAt+5.
	if fs.SuspectEpoch != killAt+3 || fs.ConfirmEpoch != killAt+4 || fs.SwitchEpoch != killAt+5 {
		t.Errorf("suspect/confirm/switch = %d/%d/%d, want %d/%d/%d",
			fs.SuspectEpoch, fs.ConfirmEpoch, fs.SwitchEpoch, killAt+3, killAt+4, killAt+5)
	}

	// The live detection latency must match the offline health.Detector's
	// DetectionLatency for the same threshold.
	d, err := health.New(health.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; !d.Confirmed(victim); e++ {
		d.Epoch(func(obs, peer int) bool { return peer != victim })
	}
	if fs.DetectEpochs != d.DetectionLatency(victim) {
		t.Errorf("live detection = %d epochs, offline model says %d",
			fs.DetectEpochs, d.DetectionLatency(victim))
	}

	// Post-FEC error-free among survivors on a clean channel.
	if !fs.ErrFree || fs.BER != 0 {
		t.Errorf("survivors not error-free: BER %v", fs.BER)
	}
	// Goodput: degraded window wastes the victim's slot (3 of 4 slots
	// carry data); the compacted schedule regains full utilization.
	if fs.DegradedGoodput < 0.70 || fs.DegradedGoodput > 0.80 {
		t.Errorf("degraded goodput = %v, want ~0.75", fs.DegradedGoodput)
	}
	if fs.CompactedGoodput < 0.99 {
		t.Errorf("compacted goodput = %v, want ~1.0", fs.CompactedGoodput)
	}

	for _, n := range fs.Nodes {
		if n.Node == victim {
			if !n.Crashed {
				t.Errorf("victim not marked crashed: %+v", n)
			}
			continue
		}
		if n.Crashed || n.Ejected {
			t.Errorf("survivor %d marked dead: %+v", n.Node, n)
		}
		if n.Misrouted != 0 {
			t.Errorf("survivor %d saw %d misrouted cells", n.Node, n.Misrouted)
		}
		// Epochs [0,killAt): 4 cells/epoch. [killAt, switch): 3 from the
		// surviving sources on the old schedule. [switch, epochs): 3 on
		// the compacted schedule.
		want := 4*killAt + 3*(fs.SwitchEpoch-killAt) + 3*(epochs-fs.SwitchEpoch)
		if n.Received != want {
			t.Errorf("survivor %d received %d cells, want %d", n.Node, n.Received, want)
		}
	}
}

func TestCrashReplayDeterminism(t *testing.T) {
	// The same seeded plan replays identically: survivor statistics and
	// the failure record are byte-equal across runs.
	plan := fault.KillPlan(1, 5, 99)
	run := func() *FaultStats {
		fs, err := RunPrototypeCfg(faultCfg(4, 20, plan))
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	a, b := run(), run()
	if a.PlanHash != b.PlanHash || a.PlanHash == "none" {
		t.Errorf("plan hashes differ: %s vs %s", a.PlanHash, b.PlanHash)
	}
	if a.Routed != b.Routed || a.Cells != b.Cells || a.BER != b.BER {
		t.Errorf("aggregates differ: %+v vs %+v", a.Stats, b.Stats)
	}
	for i := range a.Nodes {
		x, y := a.Nodes[i], b.Nodes[i]
		if x.Sent != y.Sent || x.Received != y.Received || x.BitErrors != y.BitErrors ||
			x.Crashed != y.Crashed || x.Ejected != y.Ejected || len(x.Failures) != len(y.Failures) {
			t.Errorf("node %d stats differ:\n  %+v\n  %+v", i, x, y)
		}
		for j := range x.Failures {
			if x.Failures[j] != y.Failures[j] {
				t.Errorf("node %d failure %d differs: %+v vs %+v", i, j, x.Failures[j], y.Failures[j])
			}
		}
	}
}

func TestDegradeReplayDeterminism(t *testing.T) {
	// Per-input-port RNG substreams make injected corruption a pure
	// function of (seed, frame history): two runs flip the same bits.
	plan := &fault.Plan{Seed: 1234, Events: []fault.Event{
		{Kind: fault.Degrade, Src: 1, Epoch: 3, Until: 9, FlipProb: 2e-3},
		{Kind: fault.Degrade, Src: 3, Epoch: 5, FlipProb: 5e-4},
	}}
	run := func() *FaultStats {
		fs, err := RunPrototypeCfg(faultCfg(4, 15, plan))
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	a, b := run(), run()
	if a.BER == 0 {
		t.Fatal("degrade plan injected no errors")
	}
	if a.BER != b.BER || a.Cells != b.Cells {
		t.Errorf("degrade replay differs: BER %v vs %v, cells %d vs %d",
			a.BER, b.BER, a.Cells, b.Cells)
	}
	for i := range a.Nodes {
		if a.Nodes[i].BitErrors != b.Nodes[i].BitErrors {
			t.Errorf("node %d bit errors differ: %d vs %d",
				i, a.Nodes[i].BitErrors, b.Nodes[i].BitErrors)
		}
	}
	if len(a.Failures) != 0 {
		t.Errorf("degradation alone must not eject anyone: %+v", a.Failures)
	}
}

func TestGreyFailureEjectsVictim(t *testing.T) {
	// Node 1 goes dark toward node 2 only (a grey failure): node 2 alone
	// observes the silence, suspects, and floods; everyone — including the
	// victim — learns, and the victim is compacted out at the agreed epoch.
	const nodes, epochs, victim, observer, darkAt = 4, 24, 1, 2, 6
	plan := &fault.Plan{Seed: 5, Events: []fault.Event{
		{Kind: fault.Grey, Src: victim, Dst: observer, Epoch: darkAt},
	}}
	fs, err := RunPrototypeCfg(faultCfg(nodes, epochs, plan))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Survivors != nodes-1 {
		t.Fatalf("survivors = %d, want %d", fs.Survivors, nodes-1)
	}
	if len(fs.Failures) != 1 || fs.Failures[0].Peer != victim {
		t.Fatalf("failures = %+v, want node %d", fs.Failures, victim)
	}
	// Last heard by the observer: epoch darkAt-1. Gap crosses the
	// threshold at the gate of darkAt+3.
	if fs.SuspectEpoch != darkAt+3 {
		t.Errorf("suspect epoch = %d, want %d", fs.SuspectEpoch, darkAt+3)
	}
	var sawVictim bool
	for _, n := range fs.Nodes {
		if n.Node == victim {
			sawVictim = true
			if !n.Ejected {
				t.Errorf("grey victim not ejected: %+v", n)
			}
			if n.Crashed {
				t.Error("grey victim marked crashed")
			}
		}
	}
	if !sawVictim {
		t.Fatal("victim stats missing")
	}
	if !fs.ErrFree {
		t.Errorf("survivors not error-free: BER %v", fs.BER)
	}
}

func TestRestartFlapRecovers(t *testing.T) {
	// A scripted link flap: node 1 drops its connection at epoch 10 and
	// re-registers. Nobody suspects it, the emulator parks frames routed
	// to it while it is away, and the run completes with no failure record.
	const nodes, epochs, flapper, flapAt = 4, 25, 1, 10
	plan := &fault.Plan{Seed: 77, Events: []fault.Event{
		{Kind: fault.Flap, Node: flapper, Epoch: flapAt},
	}}
	fs, err := RunPrototypeCfg(faultCfg(nodes, epochs, plan))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Failures) != 0 {
		t.Fatalf("a link flap must not be confirmed as a failure: %+v", fs.Failures)
	}
	if fs.Survivors != nodes {
		t.Errorf("survivors = %d, want all %d", fs.Survivors, nodes)
	}
	full := nodes * epochs
	for _, n := range fs.Nodes {
		if n.Node == flapper {
			if n.Reconnects != 1 {
				t.Errorf("flapper reconnects = %d, want 1", n.Reconnects)
			}
			// In-flight frames in the dropped socket are the documented
			// loss window; everything parked at the emulator is flushed.
			if n.Received < full-2*nodes || n.Received > full {
				t.Errorf("flapper received %d, want within %d of %d", n.Received, 2*nodes, full)
			}
			continue
		}
		if n.Received != full {
			t.Errorf("node %d received %d, want %d", n.Node, n.Received, full)
		}
		if n.Reconnects != 0 {
			t.Errorf("node %d reconnected %d times for someone else's flap", n.Node, n.Reconnects)
		}
	}
}

func TestStallDelaysButCompletes(t *testing.T) {
	// A stalled input slows wall time without changing the frame history:
	// the self-clocked gate rides it out and nobody is suspected.
	plan := &fault.Plan{Seed: 3, Events: []fault.Event{
		{Kind: fault.Stall, Src: 0, Epoch: 2, Until: 5, DelayMicros: 2000},
	}}
	fs, err := RunPrototypeCfg(faultCfg(4, 10, plan))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Failures) != 0 {
		t.Errorf("stall misdiagnosed as failure: %+v", fs.Failures)
	}
	for _, n := range fs.Nodes {
		if n.Received != 40 {
			t.Errorf("node %d received %d, want 40", n.Node, n.Received)
		}
	}
}

func TestEmulatorSurvivesMaliciousClients(t *testing.T) {
	// While a real 2-node fabric runs, hostile clients connect with
	// garbage, duplicate registrations, and immediate hangups. The fabric
	// must complete untouched.
	em, err := NewEmulator(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	serveErr := make(chan error, 1)
	go func() { serveErr <- em.Serve() }()

	nodeErr := make(chan error, 2)
	stats := make([]*NodeStats, 2)
	for id := 0; id < 2; id++ {
		go func(id int) {
			st, err := RunNode(NodeConfig{
				ID: id, Addr: em.Addr(), Nodes: 2, Epochs: 40, PayloadBytes: 16,
				Timeout: 8 * time.Second, SuspectTimeout: time.Second,
			})
			stats[id] = st
			nodeErr <- err
		}(id)
	}

	// Hostile traffic during the run.
	for i := 0; i < 5; i++ {
		if c, err := net.Dial("tcp", em.Addr()); err == nil {
			switch i % 3 {
			case 0:
				c.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF}) // bad magic
				io.ReadAll(c)
			case 1:
				h := EncodeHandshake(0, 0) // duplicate of a live port
				c.Write(h[:])
				io.ReadAll(c)
			case 2:
				// connect and hang up mid-handshake
			}
			c.Close()
		}
	}

	for i := 0; i < 2; i++ {
		if err := <-nodeErr; err != nil {
			t.Fatalf("fabric node failed under hostile clients: %v", err)
		}
	}
	for id, st := range stats {
		if st.Received != 80 || st.Misrouted != 0 {
			t.Errorf("node %d: %+v, want 80 received", id, st)
		}
	}
	if em.Rejected() == 0 {
		t.Error("no hostile connection was rejected")
	}
	em.Close()
	if err := <-serveErr; err != nil {
		t.Errorf("Serve = %v, want nil", err)
	}
}

func TestFaultPlanValidationAtRun(t *testing.T) {
	bad := &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Node: 9, Epoch: 1}}}
	if _, err := RunPrototypeCfg(faultCfg(4, 5, bad)); err == nil {
		t.Error("out-of-range crash target accepted")
	}
}

func TestCorruptPayloadGeometricMatchesBernoulli(t *testing.T) {
	// The geometric-skip sampler must reproduce the per-bit flip rate.
	r := rng.New(42)
	const p = 1e-3
	const bytes = 1 << 16
	buf := make([]byte, bytes)
	var flips int64
	for i := 0; i < 20; i++ {
		flips += corruptPayload(buf, p, r)
	}
	got := float64(flips) / float64(20*bytes*8)
	if got < p*0.9 || got > p*1.1 {
		t.Errorf("flip rate = %v, want ~%v", got, p)
	}
	if corruptPayload(buf, 0, r) != 0 {
		t.Error("zero probability flipped bits")
	}
	if corruptPayload(nil, 0.5, r) != 0 {
		t.Error("empty buffer flipped bits")
	}
}
