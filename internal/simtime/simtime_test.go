package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestUnits(t *testing.T) {
	if Nanosecond != 1000 {
		t.Fatalf("Nanosecond = %d ps, want 1000", int64(Nanosecond))
	}
	if Second != 1e12 {
		t.Fatalf("Second = %d ps, want 1e12", int64(Second))
	}
}

func TestAddSub(t *testing.T) {
	var t0 Time
	t1 := t0.Add(42 * Nanosecond)
	if got := t1.Sub(t0); got != 42*Nanosecond {
		t.Errorf("Sub = %v, want 42ns", got)
	}
	if t1.Nanoseconds() != 42 {
		t.Errorf("Nanoseconds = %v, want 42", t1.Nanoseconds())
	}
}

func TestTimeToSend(t *testing.T) {
	// 576 bytes at 50 Gbps = 92.16 ns (the paper's §2.2 example).
	d := Rate(50 * Gbps).TimeToSend(576)
	if d < 92*Nanosecond || d > 93*Nanosecond {
		t.Errorf("576B@50G = %v, want ~92.16ns", d)
	}
	// 1 byte at 8 bps = 1 s.
	if d := Rate(8).TimeToSend(1); d != Second {
		t.Errorf("1B@8bps = %v, want 1s", d)
	}
}

func TestTimeToSendRoundsUp(t *testing.T) {
	// 1 byte at 3 bps: 8/3 s is not an integer number of ps; must round up.
	d := Rate(3).TimeToSend(1)
	if d.Seconds() < 8.0/3.0 {
		t.Errorf("TimeToSend rounded down: %v s < 8/3 s", d.Seconds())
	}
}

func TestBytesIn(t *testing.T) {
	// 50 Gbps for 90 ns = 562.5 bytes -> 562 whole bytes (paper's slot size).
	if got := Rate(50 * Gbps).BytesIn(90 * Nanosecond); got != 562 {
		t.Errorf("BytesIn = %d, want 562", got)
	}
	if got := Rate(50 * Gbps).BytesIn(0); got != 0 {
		t.Errorf("BytesIn(0) = %d, want 0", got)
	}
	if got := Rate(50 * Gbps).BytesIn(-Nanosecond); got != 0 {
		t.Errorf("BytesIn(<0) = %d, want 0", got)
	}
}

func TestRoundTripStd(t *testing.T) {
	d := 1234 * Nanosecond
	if got := FromStd(d.Std()); got != d {
		t.Errorf("FromStd(Std) = %v, want %v", got, d)
	}
	if FromStd(time.Microsecond) != Microsecond {
		t.Error("FromStd(1us) != 1us")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{500 * Picosecond, "500ps"},
		{100 * Nanosecond, "100ns"},
		{1600 * Nanosecond, "1.6us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d ps String = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestPropertyTimeToSendInverse(t *testing.T) {
	// For any byte count, sending then asking how many bytes fit in that
	// time must return at least the byte count minus one (rounding slack).
	f := func(n uint16) bool {
		r := Rate(50 * Gbps)
		d := r.TimeToSend(int(n))
		got := r.BytesIn(d)
		return got >= int(n)-1 && got <= int(n)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAddSubIdentity(t *testing.T) {
	f := func(t0 int64, d int32) bool {
		tt := Time(t0 % (1 << 50))
		dd := Duration(d)
		return tt.Add(dd).Sub(tt) == dd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessors(t *testing.T) {
	tt := Time(2 * Second)
	if tt.Seconds() != 2 {
		t.Errorf("Seconds = %v", tt.Seconds())
	}
	tt = Time(5 * Nanosecond)
	if tt.Nanoseconds() != 5 {
		t.Errorf("Nanoseconds = %v", tt.Nanoseconds())
	}
	d := 7 * Picosecond
	if d.Picoseconds() != 7 {
		t.Errorf("Picoseconds = %v", d.Picoseconds())
	}
	if got := Rate(400 * Gbps).Gbit(); got != 400 {
		t.Errorf("Gbit = %v", got)
	}
	if got := Time(1600 * Nanosecond).String(); got != "1.6us" {
		t.Errorf("Time.String = %q", got)
	}
}

func TestTimeToSendPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero rate did not panic")
		}
	}()
	Rate(0).TimeToSend(1)
}
