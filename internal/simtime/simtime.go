// Package simtime provides the time base used throughout the Sirius
// simulator: a picosecond-resolution integer clock.
//
// Sirius reconfigures end-to-end in nanoseconds and synchronizes clocks to
// within ±5 ps, so the native resolution of the simulator must be finer than
// a nanosecond. Signed 64-bit picoseconds cover ±106 days, far beyond any
// simulated run.
package simtime

import (
	"fmt"
	"time"
)

// Time is an absolute simulation time in picoseconds since the start of the
// run. The zero value is the start of the simulation.
type Time int64

// Duration is a length of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds returns the time as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Nanoseconds returns the duration as a floating-point number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Picoseconds returns the duration as an integer number of picoseconds.
func (d Duration) Picoseconds() int64 { return int64(d) }

// Std converts a simulated duration to a time.Duration, rounding to
// nanoseconds. Useful when interfacing with the wall-clock prototype.
func (d Duration) Std() time.Duration {
	return time.Duration(int64(d)/int64(Nanosecond)) * time.Nanosecond
}

// FromStd converts a time.Duration to a simulated Duration.
func FromStd(d time.Duration) Duration {
	return Duration(d.Nanoseconds()) * Nanosecond
}

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d%Second == 0:
		return fmt.Sprintf("%ds", int64(d/Second))
	case d >= Millisecond || d <= -Millisecond:
		return fmt.Sprintf("%gms", float64(d)/float64(Millisecond))
	case d >= Microsecond || d <= -Microsecond:
		return fmt.Sprintf("%gus", float64(d)/float64(Microsecond))
	case d >= Nanosecond || d <= -Nanosecond:
		return fmt.Sprintf("%gns", float64(d)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}

// String formats the absolute time like a duration since run start.
func (t Time) String() string { return Duration(t).String() }

// Rate is a data rate in bits per second. It is kept as a float because
// rates are used in capacity arithmetic, not in exact clocking.
type Rate float64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps              = 1e3 * BitPerSecond
	Mbps              = 1e6 * BitPerSecond
	Gbps              = 1e9 * BitPerSecond
	Tbps              = 1e12 * BitPerSecond
)

// TimeToSend returns the time needed to serialize n bytes at rate r.
// It rounds up to the next picosecond.
func (r Rate) TimeToSend(n int) Duration {
	if r <= 0 {
		panic("simtime: non-positive rate")
	}
	ps := float64(n) * 8 * float64(Second) / float64(r)
	d := Duration(ps)
	if float64(d) < ps {
		d++
	}
	return d
}

// BytesIn returns how many whole bytes can be serialized at rate r in d.
func (r Rate) BytesIn(d Duration) int {
	if d <= 0 {
		return 0
	}
	return int(float64(r) * d.Seconds() / 8)
}

// Gbit returns the rate in gigabits per second.
func (r Rate) Gbit() float64 { return float64(r) / float64(Gbps) }
