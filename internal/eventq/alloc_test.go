//go:build !race

// Skipped under the race detector: its instrumentation changes the
// allocation behavior testing.AllocsPerRun observes.

package eventq

import (
	"testing"

	"sirius/internal/simtime"
)

// TestScheduleRecycleZeroAlloc pins the event pool contract: once the
// pool has seen the peak number of in-flight events, schedule/run cycles
// allocate nothing.
func TestScheduleRecycleZeroAlloc(t *testing.T) {
	var q Queue
	fn := func() {} // non-capturing: compiled statically, no closure alloc
	var at simtime.Time

	// Seed the pool (and the heap's backing array) with a burst of eight
	// concurrently pending events.
	for i := 0; i < 8; i++ {
		at++
		q.Schedule(at, fn)
	}
	q.RunUntil(at)

	if avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			at++
			q.Schedule(at, fn)
		}
		q.RunUntil(at)
	}); avg != 0 {
		t.Errorf("schedule/run cycle allocates %.2f objects, want 0", avg)
	}
}

// TestRecycleReuse checks that a recycled event is handed back by the next
// Schedule and that recycling respects event state.
func TestRecycleReuse(t *testing.T) {
	var q Queue
	fn := func() {}
	e := q.Schedule(1, fn)
	q.Recycle(e) // still queued: must be a no-op
	if got := q.Pop(); got != e {
		t.Fatalf("Pop = %p, want the scheduled event %p", got, e)
	}
	q.Recycle(e)
	q.Recycle(e) // double recycle: no-op, must not corrupt the free list
	e2 := q.Schedule(2, fn)
	if e2 != e {
		t.Errorf("Schedule after Recycle allocated a new event; want pooled reuse")
	}
	e3 := q.Schedule(3, fn)
	if e3 == e2 {
		t.Errorf("second Schedule returned the still-queued event")
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
}
