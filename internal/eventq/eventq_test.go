package eventq

import (
	"testing"
	"testing/quick"

	"sirius/internal/rng"
	"sirius/internal/simtime"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(30, func() { got = append(got, 3) })
	q.Schedule(10, func() { got = append(got, 1) })
	q.Schedule(20, func() { got = append(got, 2) })
	q.RunUntil(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("run order = %v, want [1 2 3]", got)
	}
}

func TestTieBreakFIFO(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(5, func() { got = append(got, i) })
	}
	q.RunUntil(5)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events ran out of insertion order: %v", got)
		}
	}
}

func TestRunUntilDeadline(t *testing.T) {
	var q Queue
	ran := 0
	q.Schedule(10, func() { ran++ })
	q.Schedule(20, func() { ran++ })
	q.Schedule(30, func() { ran++ })
	last := q.RunUntil(20)
	if ran != 2 {
		t.Errorf("ran %d events, want 2", ran)
	}
	if last != 20 {
		t.Errorf("last = %v, want 20", last)
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	ran := false
	e := q.Schedule(10, func() { ran = true })
	q.Cancel(e)
	q.RunUntil(100)
	if ran {
		t.Error("cancelled event ran")
	}
	// Double cancel is a no-op.
	q.Cancel(e)
	// Cancel nil is a no-op.
	q.Cancel(nil)
}

func TestCancelMiddle(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(1, func() { got = append(got, 1) })
	e := q.Schedule(2, func() { got = append(got, 2) })
	q.Schedule(3, func() { got = append(got, 3) })
	q.Schedule(4, func() { got = append(got, 4) })
	q.Cancel(e)
	q.RunUntil(100)
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPopEmpty(t *testing.T) {
	var q Queue
	if q.Pop() != nil {
		t.Error("Pop on empty queue returned non-nil")
	}
	if _, ok := q.PeekTime(); ok {
		t.Error("PeekTime on empty queue returned ok")
	}
}

func TestScheduleDuringRun(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(10, func() {
		got = append(got, 1)
		q.Schedule(15, func() { got = append(got, 2) })
	})
	q.RunUntil(20)
	if len(got) != 2 || got[1] != 2 {
		t.Errorf("nested schedule: got %v", got)
	}
}

func TestPropertyHeapOrder(t *testing.T) {
	// Any random insertion sequence pops in non-decreasing time order.
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		var q Queue
		count := int(n%200) + 1
		for i := 0; i < count; i++ {
			q.Schedule(simtime.Time(r.Intn(1000)), func() {})
		}
		prev := simtime.Time(-1)
		for q.Len() > 0 {
			e := q.Pop()
			if e.At < prev {
				return false
			}
			prev = e.At
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCancelConsistency(t *testing.T) {
	// Randomly cancel half the events; exactly the survivors run, in order.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var q Queue
		type rec struct {
			e  *Event
			at simtime.Time
		}
		var recs []rec
		ran := make(map[int]bool)
		for i := 0; i < 100; i++ {
			i := i
			at := simtime.Time(r.Intn(500))
			e := q.Schedule(at, func() { ran[i] = true })
			recs = append(recs, rec{e, at})
		}
		cancelled := make(map[int]bool)
		for i := range recs {
			if r.Float64() < 0.5 {
				q.Cancel(recs[i].e)
				cancelled[i] = true
			}
		}
		q.RunUntil(1000)
		for i := range recs {
			if cancelled[i] && ran[i] {
				return false
			}
			if !cancelled[i] && !ran[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
