// Package eventq implements the event queue used by the event-driven parts
// of the simulator (the Clos packet-level model and the fluid ESN model).
//
// It is a plain binary min-heap ordered by time, with a sequence number to
// break ties deterministically in insertion order.
package eventq

import "sirius/internal/simtime"

// Event is a scheduled callback.
type Event struct {
	At   simtime.Time
	Fn   func()
	seq  uint64
	next *Event // free-list link while pooled
	idx  int    // heap index; -1 popped, -2 pooled
}

// Queue is a time-ordered event queue. The zero value is ready to use.
//
// Popped events are recycled through a per-queue free list (see Recycle),
// so an event-driven simulation with a bounded number of in-flight events
// stops allocating Event structs once the pool has seen its peak.
type Queue struct {
	h    []*Event
	seq  uint64
	free *Event
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at time at and returns the event handle,
// which can be passed to Cancel. The Event comes from the queue's pool
// when one is free; the handle must not be retained past the point where
// the event runs inside RunUntil (which recycles it).
func (q *Queue) Schedule(at simtime.Time, fn func()) *Event {
	e := q.free
	if e != nil {
		q.free = e.next
		e.next = nil
		e.At, e.Fn = at, fn
	} else {
		e = &Event{At: at, Fn: fn}
	}
	e.seq = q.seq
	q.seq++
	e.idx = len(q.h)
	q.h = append(q.h, e)
	q.up(e.idx)
	return e
}

// Recycle returns a popped event to the queue's pool for reuse by a later
// Schedule. Only events that have left the heap (via Pop, or cancellation)
// are banked; recycling a queued or already-pooled event is a no-op. The
// caller must not touch e afterwards.
func (q *Queue) Recycle(e *Event) {
	if e == nil || e.idx != -1 {
		return
	}
	e.idx = -2
	e.Fn = nil // drop the closure so pooled events retain nothing
	e.next = q.free
	q.free = e
}

// Cancel removes a pending event. Cancelling an already-popped or
// already-cancelled event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.idx < 0 || e.idx >= len(q.h) || q.h[e.idx] != e {
		return
	}
	i := e.idx
	last := len(q.h) - 1
	q.swap(i, last)
	q.h = q.h[:last]
	e.idx = -1
	if i < last {
		q.down(i)
		q.up(i)
	}
}

// PeekTime returns the time of the earliest event. ok is false when empty.
func (q *Queue) PeekTime() (t simtime.Time, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Pop removes and returns the earliest event. It returns nil when empty.
func (q *Queue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	e := q.h[0]
	last := len(q.h) - 1
	q.swap(0, last)
	q.h = q.h[:last]
	e.idx = -1
	if last > 0 {
		q.down(0)
	}
	return e
}

// RunUntil pops and runs events until the queue is empty or the next event
// is after deadline. It returns the time of the last event run. Each event
// is recycled into the queue's pool after its callback returns, so the
// handles returned by Schedule must not be used once their event has run.
func (q *Queue) RunUntil(deadline simtime.Time) simtime.Time {
	var last simtime.Time
	for {
		t, ok := q.PeekTime()
		if !ok || t > deadline {
			return last
		}
		e := q.Pop()
		last = e.At
		fn := e.Fn
		q.Recycle(e)
		fn()
	}
}

func (q *Queue) less(i, j int) bool {
	a, b := q.h[i], q.h[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.h[i], q.h[j] = q.h[j], q.h[i]
	q.h[i].idx = i
	q.h[j].idx = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
