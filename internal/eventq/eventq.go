// Package eventq implements the event queue used by the event-driven parts
// of the simulator (the Clos packet-level model and the fluid ESN model).
//
// It is a plain binary min-heap ordered by time, with a sequence number to
// break ties deterministically in insertion order.
package eventq

import "sirius/internal/simtime"

// Event is a scheduled callback.
type Event struct {
	At  simtime.Time
	Fn  func()
	seq uint64
	idx int // heap index; -1 when not queued
}

// Queue is a time-ordered event queue. The zero value is ready to use.
type Queue struct {
	h   []*Event
	seq uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at time at and returns the event handle,
// which can be passed to Cancel.
func (q *Queue) Schedule(at simtime.Time, fn func()) *Event {
	e := &Event{At: at, Fn: fn, seq: q.seq}
	q.seq++
	e.idx = len(q.h)
	q.h = append(q.h, e)
	q.up(e.idx)
	return e
}

// Cancel removes a pending event. Cancelling an already-popped or
// already-cancelled event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.idx < 0 || e.idx >= len(q.h) || q.h[e.idx] != e {
		return
	}
	i := e.idx
	last := len(q.h) - 1
	q.swap(i, last)
	q.h = q.h[:last]
	e.idx = -1
	if i < last {
		q.down(i)
		q.up(i)
	}
}

// PeekTime returns the time of the earliest event. ok is false when empty.
func (q *Queue) PeekTime() (t simtime.Time, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Pop removes and returns the earliest event. It returns nil when empty.
func (q *Queue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	e := q.h[0]
	last := len(q.h) - 1
	q.swap(0, last)
	q.h = q.h[:last]
	e.idx = -1
	if last > 0 {
		q.down(0)
	}
	return e
}

// RunUntil pops and runs events until the queue is empty or the next event
// is after deadline. It returns the time of the last event run.
func (q *Queue) RunUntil(deadline simtime.Time) simtime.Time {
	var last simtime.Time
	for {
		t, ok := q.PeekTime()
		if !ok || t > deadline {
			return last
		}
		e := q.Pop()
		last = e.At
		e.Fn()
	}
}

func (q *Queue) less(i, j int) bool {
	a, b := q.h[i], q.h[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.h[i], q.h[j] = q.h[j], q.h[i]
	q.h[i].idx = i
	q.h[j].idx = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
