// Sharded slot-loop engine: partitions the simulator's nodes across P
// goroutines while staying byte-identical to the serial engine at a fixed
// seed (the same discipline as dc.Config.Parallel and the sweep engine).
//
// # Why sharding is hard here
//
// The serial slot loop iterates nodes in ascending order and commits every
// effect live: when node i forwards a fresh cell to intermediate j > i,
// the push into j's forward queue is visible to j *in the same slot* — j
// may transmit that state's consequences when its turn comes. A naive
// compute-then-commit split breaks five of the six golden fixtures.
//
// The key structural facts that make an exact parallel schedule possible:
//
//  1. Same-slot cross-node *decisions* are influenced only by pushes into
//     forward queues, and those originate only from VOQ-head cells on
//     edges of this slot's matching.
//  2. A push into fwdq[j][f] changes j's behavior this slot only when f is
//     one of j's scheduled peers this slot (otherwise the (j,f) pair is
//     never probed; only j's early-break bookkeeping can differ, which is
//     corrected after the fact).
//
// So each slot runs as: a cheap conservative *screen* computes the
// affected set A = {j : some i < j may push a cell for one of j's
// scheduled peers}; phase T processes every node outside A in parallel
// (own-row state live, cross-node effects appended to per-shard event
// logs keyed by producer id); then a serial sweep walks the event logs in
// producer order — shard logs cover contiguous ascending node ranges, so
// concatenation is already globally sorted — interleaving the A-nodes at
// their key positions using the unmodified serial per-node code
// (sim.nodeStep). The sweep therefore reproduces the serial execution's
// exact operation order for every piece of shared state (forward queues,
// congestion accounting, queue gauges, deliveries), which is what the
// byte-identity tests pin.
//
// The epoch boundary is parallelized per mode in shard_epoch.go; the
// request/grant RNG draw order is preserved by keeping the RNG-bearing
// skeleton serial and fanning out only the demand precompute, the request
// scatter, and grant delivery.
package core

import (
	"sync"
	"sync/atomic"

	"sirius/internal/congestion"
	"sirius/internal/simtime"
)

// maxShards bounds Config.Shards (and sizes the per-shard package
// counters behind ShardCounters).
const maxShards = 64

// Per-shard cells transmitted, cumulative across runs, for the -perfjson
// per-shard throughput line. Serial runs attribute everything to shard 0.
var statShardCells [maxShards]atomic.Int64

// ShardCounters reports the cumulative cells transmitted attributed to
// each shard index across every completed Run in this process (cells a
// shard's nodes sent — in parallel phase T or in the serial sweep).
// Snapshot before and after a workload, like Counters.
func ShardCounters() [maxShards]int64 {
	var out [maxShards]int64
	for i := range statShardCells {
		out[i] = statShardCells[i].Load()
	}
	return out
}

// Event kinds recorded by phase T, applied by the serial sweep.
const (
	evFwd    = iota // forward-queue pop delivered: gauge -1, deliver
	evDirect        // VOQ cell sent to its destination: arrive + deliver
	evPush          // VOQ cell pushed to intermediate dst's forward queue
)

// shEvent is one deferred cross-node effect. key is the producing node;
// per-shard logs are appended in ascending key order, so the concatenation
// across shards (contiguous ascending node ranges) is globally sorted.
type shEvent struct {
	key   int32
	kind  int32
	dst   int32 // evDirect: destination; evPush: intermediate
	final int32 // evPush: the cell's final destination
	ref   int64
}

// reqEnt is one request emitted by the serial congestion skeleton,
// scattered to reqSet state in parallel by via ownership.
type reqEnt struct{ via, dst, src int32 }

// shardState is one shard's private mutable state. Everything the
// parallel phases write without synchronization lives here (or in arrays
// indexed by a node the shard owns).
type shardState struct {
	ev     []shEvent // phase T event log, reset each slot
	upTx   []int64   // per uplink, merged into sim.upTx at flush
	upIdle []int64
	cells  int64 // cells transmitted by this shard's nodes in phase T

	// Arenas: segments migrate freely between the per-shard and serial
	// arenas (capacity classes are identical), each arena is only touched
	// by its owning goroutine per phase.
	ar32 arena[int32]
	ar64 arena[int64]

	// Epoch-phase state (request/grant mode).
	demandFlat   []int   // per-node demand slices, offsets in eng.demandOff
	demandCands  []int32 // scratch for demandScan
	demandCounts []int32
	unused       []uint64 // packed via<<32|dst grants to release serially
	grantsIssued int64
	grantsUnused int64

	_ [64]byte // guard against false sharing between shard states
}

// shardEng drives the phases. The goroutine running sim.run acts as the
// coordinator and as shard 0; p-1 workers handle the rest. Phases are
// dispatched over per-worker channels and joined with a WaitGroup, so a
// steady-state slot performs no allocations (the zero-alloc contract
// extends to the sharded loop; see alloc_test.go).
type shardEng struct {
	s       *sim
	p       int
	bounds  []int32 // p+1 node-range bounds, contiguous ascending
	shardOf []int8  // node -> owning shard

	sh []shardState

	// Affected-set screen. affCur is this slot's A; affNext accumulates
	// next slot's candidates during phase T (atomic bit sets; any shard
	// may flag any node).
	affCur, affNext bitset
	// peerSet[(e*n+j)*dstWords ...] is the per-slot scheduled-peer
	// membership bitmap: bit f set iff f is a peer of j in slot e. The
	// screen probes it to test "would this pushed cell matter to j".
	peerSet bitset
	// occIdx[(e*n+node)*uplinks+u] is how many earlier uplinks of the same
	// row name the same peer (VOQ peek depth for the screen); maxDup is the
	// schedule-wide maximum pair multiplicity per slot. With a dynamic
	// planner both are rebuilt from the fresh table at every epoch
	// boundary (rebuildIndex), using the occSeen/occCount scratch.
	occIdx   []uint8
	maxDup   int
	occSeen  []int32
	occCount []uint8

	// Early-break bookkeeping for the post-sweep upIdle correction:
	// visitedSlot[j] stamps the slot phase T visited j; breakU[j] is the
	// uplink where the early break fired (== uplinks if none).
	visitedSlot []int64
	breakU      []int16
	// Receivers of same-slot pushes from lower-id producers (excluding
	// A-members, which are handled live), stamped per slot.
	pushedSlot []int64
	touched    []int32

	coordCells []int64 // per shard: cells its nodes sent in the sweep

	// Sweep cursor over the concatenated shard logs.
	curLog, curIdx int

	// Epoch-phase shared state.
	reqLog    []reqEnt
	demandOff []int32 // per node: offset of its demand slice
	demandLen []int32
	totals    []int32              // ModeIdeal: per-node VOQ top-up budget
	gs        [][]congestion.Grant // grant-delivery phase input

	// Phase parameters, set by the coordinator before dispatch.
	eCur, eNext int
	screenE     int
	screenDst   bitset
	deliverAt   simtime.Time
	doScreen    bool
	curSlot     int64

	demandOfFn func(int) []int
	emitReqFn  func(via, dst, src int32)

	ch      []chan int
	wg      sync.WaitGroup
	started bool
}

// Phase ids.
const (
	phT = iota
	phScreen
	phDemand
	phScatter
	phGrants
	phDirect
	phIdealTotals
)

// buildOccIdx computes, for every (slot, node, uplink) schedule entry,
// how many earlier uplinks of the same row name the same peer — i.e. how
// many cells of the pair's queues this row can already have consumed when
// the entry's turn comes. Rotor schedules with a non-integral uplink
// multiplier routinely connect a pair twice per slot (the paper's 1.5×
// expansion does), so the screen peeks at VOQ depth occIdx[entry] rather
// than assuming the head. Also returns the largest multiplicity seen, the
// bound on how many extra cells the serial sweep can pop from one pair in
// one slot.
func buildOccIdx(dstTable []int32, n, uplinks, epochE int) (occ []uint8, maxDup int) {
	occ = make([]uint8, len(dstTable))
	seen := make([]int32, n)
	count := make([]uint8, n)
	maxDup = fillOccIdx(occ, dstTable, n, uplinks, epochE, seen, count)
	return occ, maxDup
}

// fillOccIdx is buildOccIdx with caller-provided storage, so dynamic
// planners can refresh the index every epoch without allocating.
func fillOccIdx(occ []uint8, dstTable []int32, n, uplinks, epochE int, seen []int32, count []uint8) (maxDup int) {
	maxDup = 1
	for i := range seen {
		seen[i] = -1
	}
	token := int32(-1)
	for e := 0; e < epochE; e++ {
		for node := 0; node < n; node++ {
			token++
			base := (e*n + node) * uplinks
			row := dstTable[base : base+uplinks]
			for u, d := range row {
				if d < 0 || int(d) == node {
					continue
				}
				if seen[d] != token {
					seen[d] = token
					count[d] = 0
				}
				occ[base+u] = count[d]
				count[d]++
				if int(count[d]) > maxDup {
					maxDup = int(count[d])
				}
			}
		}
	}
	return maxDup
}

func newShardEng(s *sim, p int) *shardEng {
	n := s.n
	eng := &shardEng{
		s:           s,
		p:           p,
		bounds:      make([]int32, p+1),
		shardOf:     make([]int8, n),
		sh:          make([]shardState, p),
		affCur:      newBitset(n),
		affNext:     newBitset(n),
		peerSet:     make(bitset, s.epochE*n*s.dstWords),
		visitedSlot: make([]int64, n),
		breakU:      make([]int16, n),
		pushedSlot:  make([]int64, n),
		coordCells:  make([]int64, p),
		demandOff:   make([]int32, n),
		demandLen:   make([]int32, n),
		ch:          make([]chan int, p),
	}
	base, rem := n/p, n%p
	for k := 0; k < p; k++ {
		size := base
		if k < rem {
			size++
		}
		eng.bounds[k+1] = eng.bounds[k] + int32(size)
		for v := eng.bounds[k]; v < eng.bounds[k+1]; v++ {
			eng.shardOf[v] = int8(k)
		}
	}
	for k := range eng.sh {
		eng.sh[k].upTx = make([]int64, s.uplinks)
		eng.sh[k].upIdle = make([]int64, s.uplinks)
	}
	eng.occIdx = make([]uint8, len(s.dstTable))
	eng.occSeen = make([]int32, n)
	eng.occCount = make([]uint8, n)
	eng.rebuildIndex()
	if s.cfg.Mode == ModeIdeal {
		eng.totals = make([]int32, n)
	}
	// Prebuilt closures so the steady-state epoch path allocates nothing.
	eng.demandOfFn = func(node int) []int {
		st := &eng.sh[eng.shardOf[node]]
		off := eng.demandOff[node]
		return st.demandFlat[off : off+eng.demandLen[node]]
	}
	eng.emitReqFn = func(via, dst, src int32) {
		eng.reqLog = append(eng.reqLog, reqEnt{via: via, dst: dst, src: src})
	}
	return eng
}

// rebuildIndex derives the screen's lookup structures — the per-slot
// scheduled-peer bitmaps and the occurrence-depth index — from the
// current dstTable. It runs once at construction for static schedules
// and again after every replan for dynamic planners, serially on the
// coordinator (the workers are parked between slots), allocation-free
// after construction.
func (eng *shardEng) rebuildIndex() {
	s := eng.s
	n, uplinks, words := s.n, s.uplinks, s.dstWords
	for i := range eng.peerSet {
		eng.peerSet[i] = 0
	}
	for e := 0; e < s.epochE; e++ {
		for node := 0; node < n; node++ {
			row := s.dstTable[(e*n+node)*uplinks : (e*n+node+1)*uplinks]
			pr := eng.peerSet[(e*n+node)*words : (e*n+node+1)*words]
			for _, d := range row {
				if d >= 0 && int(d) != node {
					pr.set(int(d))
				}
			}
		}
	}
	eng.maxDup = fillOccIdx(eng.occIdx, s.dstTable, n, uplinks, s.epochE, eng.occSeen, eng.occCount)
}

func (eng *shardEng) start() {
	if eng.started {
		return
	}
	eng.started = true
	for k := 1; k < eng.p; k++ {
		eng.ch[k] = make(chan int, 1)
		go eng.worker(k)
	}
}

func (eng *shardEng) stop() {
	if !eng.started {
		return
	}
	eng.started = false
	for k := 1; k < eng.p; k++ {
		close(eng.ch[k])
	}
}

func (eng *shardEng) worker(k int) {
	for ph := range eng.ch[k] {
		eng.exec(ph, k)
		eng.wg.Done()
	}
}

// runPhase executes one parallel phase on every shard (the coordinator
// doubles as shard 0) and barriers.
func (eng *shardEng) runPhase(ph int) {
	eng.wg.Add(eng.p - 1)
	for k := 1; k < eng.p; k++ {
		eng.ch[k] <- ph
	}
	eng.exec(ph, 0)
	eng.wg.Wait()
}

func (eng *shardEng) exec(ph, k int) {
	switch ph {
	case phT:
		eng.phaseT(k)
	case phScreen:
		eng.screenShard(k, eng.screenE, eng.screenDst, false)
	case phDemand:
		eng.phaseDemand(k)
	case phScatter:
		eng.phaseScatter(k)
	case phGrants:
		eng.phaseGrants(k)
	case phDirect:
		eng.phaseDirect(k)
	case phIdealTotals:
		eng.phaseIdealTotals(k)
	}
}

// mergeStats folds the per-shard accumulators into the sim's serial
// counters before telemetry flush, and publishes per-shard cell counts.
func (eng *shardEng) mergeStats() {
	s := eng.s
	for k := range eng.sh {
		st := &eng.sh[k]
		for u := range st.upTx {
			s.upTx[u] += st.upTx[u]
			s.upIdle[u] += st.upIdle[u]
		}
		s.grantsIssued += st.grantsIssued
		s.grantsUnused += st.grantsUnused
		statShardCells[k].Add(st.cells + eng.coordCells[k])
	}
}

// stepSharded is step for the sharded engine: epoch boundary (with its
// own parallel sub-phases) and current-slot screen when e == 0, then
// phase T in parallel, then the serial sweep.
func (s *sim) stepSharded(e int, deliverAt simtime.Time) {
	eng := s.sh
	eng.curSlot++
	if e == 0 {
		if s.cfg.Planner != nil {
			s.replan()
		}
		s.epochBoundarySharded()
		// The epoch phases push VOQs, so any screen computed last slot is
		// stale: recompute this slot's affected set from scratch.
		for i := range eng.affCur {
			eng.affCur[i] = 0
		}
		eng.screenE = 0
		eng.screenDst = eng.affCur
		eng.runPhase(phScreen)
	}
	eNext := e + 1
	if eNext == s.epochE {
		eNext = 0
	}
	// Next slot's screen rides along in phase T — except into an epoch
	// boundary, which re-screens anyway.
	eng.doScreen = eNext != 0
	eng.eCur, eng.eNext, eng.deliverAt = e, eNext, deliverAt
	for i := range eng.affNext {
		eng.affNext[i] = 0
	}
	eng.runPhase(phT)
	s.shardSweep(e, deliverAt)
	eng.affCur, eng.affNext = eng.affNext, eng.affCur
}

// phaseT processes shard k's non-affected active nodes, then screens its
// nodes' VOQ heads for next slot's affected set.
func (eng *shardEng) phaseT(k int) {
	s := eng.s
	st := &eng.sh[k]
	lo, hi := int(eng.bounds[k]), int(eng.bounds[k+1])
	row := s.dstTable[eng.eCur*s.n*s.uplinks : (eng.eCur+1)*s.n*s.uplinks]
	aff := eng.affCur
	for node := s.workActive.nextIn(lo, hi); node >= 0; node = s.workActive.nextIn(node+1, hi) {
		if aff.has(node) {
			continue // decision-coupled: the serial sweep runs it
		}
		eng.nodeT(node, row, st)
	}
	if eng.doScreen {
		eng.screenShard(k, eng.eNext, eng.affNext, true)
	}
}

// nodeT is nodeStep for phase T: own-row state commits live, cross-node
// effects go to the shard's event log in serial operation order.
func (eng *shardEng) nodeT(node int, row []int32, st *shardState) {
	s := eng.s
	uplinks := s.uplinks
	nodeRow := row[node*uplinks : (node+1)*uplinks]
	base := node * s.n
	eng.visitedSlot[node] = eng.curSlot
	eng.breakU[node] = int16(uplinks)
	for u := 0; u < uplinks; u++ {
		dst := int(nodeRow[u])
		if dst < 0 || dst == node {
			continue
		}
		if !s.txActive.hasAtomic(base + dst) {
			st.upIdle[u]++
			continue
		}
		eng.transmitT(node, dst, st)
		st.upTx[u]++
		if s.workCells[node] == 0 {
			eng.breakU[node] = int16(u)
			break
		}
	}
}

// transmitT mirrors sim.transmit. Live: the node's own queues, bits,
// work account, forwarded-side congestion row and ideal-queue row.
// Logged: deliveries, arrivals and pushes (anything touching another
// node's row or global accounting).
func (eng *shardEng) transmitT(node, dst int, st *shardState) {
	s := eng.s
	idx := node*s.n + dst
	fw, vq := &s.fwdq[idx], &s.voq[idx]
	useFwd := !fw.empty()
	if useFwd && !vq.empty() {
		useFwd = s.tieBreak[idx]
		s.tieBreak[idx] = !s.tieBreak[idx]
	}
	switch {
	case useFwd:
		st.cells++
		ref := fw.pop(&st.ar64)
		if fw.empty() && vq.empty() {
			s.txActive.clearAtomic(idx)
		}
		eng.workDecSh(node)
		if s.cc != nil {
			s.cc.OnCellForwarded(node, dst)
		}
		if s.idealQ != nil {
			s.idealQ[idx]--
		}
		st.ev = append(st.ev, shEvent{key: int32(node), kind: evFwd, ref: ref})
	case !vq.empty():
		st.cells++
		ref := vq.pop(&st.ar64)
		if vq.empty() && fw.empty() {
			s.txActive.clearAtomic(idx)
		}
		eng.workDecSh(node)
		flow, _ := unpackRef(ref)
		final := int(s.flows[flow].Dst)
		if dst == final {
			st.ev = append(st.ev, shEvent{key: int32(node), kind: evDirect, dst: int32(dst), ref: ref})
		} else {
			st.ev = append(st.ev, shEvent{key: int32(node), kind: evPush,
				dst: int32(dst), final: int32(final), ref: ref})
		}
	}
}

func (eng *shardEng) workDecSh(node int) {
	s := eng.s
	s.workCells[node]--
	if s.workCells[node] == 0 {
		s.workActive.clearAtomic(node)
	}
}

func (eng *shardEng) workIncSh(node int) {
	s := eng.s
	if s.workCells[node] == 0 {
		s.workActive.setAtomic(node)
	}
	s.workCells[node]++
}

// screenShard flags next-affected candidates from shard k's VOQ fronts: a
// receiver j > i whose slot-e matching edge (i, j) would carry a cell
// destined for one of j's own slot-e peers. A pair can be matched several
// times in one slot (rotor schedules with the 1.5× uplink expansion do
// this routinely), so the t-th occurrence of an edge screens the cell at
// VOQ depth t (occIdx). For affected producers the serial sweep may still
// pop up to maxDup cells per pair before this screen's slot arrives, so
// maxDup further cells are screened too (conservative: A may only grow).
func (eng *shardEng) screenShard(k, e int, dst bitset, extraForAff bool) {
	s := eng.s
	n, uplinks, words := s.n, s.uplinks, s.dstWords
	lo, hi := int(eng.bounds[k]), int(eng.bounds[k+1])
	row := s.dstTable[e*n*uplinks : (e+1)*n*uplinks]
	occ := eng.occIdx[e*n*uplinks : (e+1)*n*uplinks]
	for node := s.workActive.nextIn(lo, hi); node >= 0; node = s.workActive.nextIn(node+1, hi) {
		nodeRow := row[node*uplinks : (node+1)*uplinks]
		nodeOcc := occ[node*uplinks : (node+1)*uplinks]
		base := node * n
		extra := 0
		if extraForAff && eng.affCur.has(node) {
			extra = eng.maxDup
		}
		for u := 0; u < uplinks; u++ {
			j := int(nodeRow[u])
			if j <= node {
				continue // only ascending edges push same-slot-visibly
			}
			q := &s.voq[base+j]
			t := int(nodeOcc[u])
			hiDepth := t + extra
			if l := q.len(); hiDepth >= l {
				hiDepth = l - 1
			}
			if t > hiDepth {
				continue // queue shorter than this occurrence's depth
			}
			pr := eng.peerSet[(e*n+j)*words : (e*n+j+1)*words]
			for depth := t; depth <= hiDepth; depth++ {
				flow, _ := unpackRef(q.items[q.head+depth])
				if f := int(s.flows[flow].Dst); f != j && pr.has(f) {
					dst.setAtomic(j)
					break
				}
			}
		}
	}
}

// shardSweep is the serial half of the slot: it replays the deferred
// events in producer order, interleaving affected nodes at their exact
// positions with the serial per-node code, then applies the early-break
// idle corrections for nodes the pushes would have kept (or made) active.
func (s *sim) shardSweep(e int, deliverAt simtime.Time) {
	eng := s.sh
	eng.curLog, eng.curIdx = 0, 0
	row := s.dstTable[e*s.n*s.uplinks : (e+1)*s.n*s.uplinks]
	for j := eng.affCur.next(0); j >= 0; j = eng.affCur.next(j + 1) {
		eng.applyUntil(int32(j), deliverAt)
		if s.workCells[j] > 0 {
			before := s.txCells
			s.nodeStep(j, row, deliverAt)
			eng.coordCells[eng.shardOf[j]] += s.txCells - before
		}
	}
	eng.applyUntil(int32(s.n), deliverAt)

	// Early-break corrections: a non-affected receiver of a push from a
	// lower-id producer would, serially, have stayed (or become) active
	// at its visit — but since none of the pushed finals are scheduled
	// peers (else it would be affected), every extra uplink it would
	// have walked is an idle. Replay those idles.
	uplinks := s.uplinks
	for _, r32 := range eng.touched {
		r := int(r32)
		nodeRow := row[r*uplinks : (r+1)*uplinks]
		u0 := 0
		if eng.visitedSlot[r] == eng.curSlot {
			bu := int(eng.breakU[r])
			if bu >= uplinks {
				continue // no early break: nothing was skipped
			}
			u0 = bu + 1
		}
		for u := u0; u < uplinks; u++ {
			if d := int(nodeRow[u]); d >= 0 && d != r {
				s.upIdle[u]++
			}
		}
	}
	eng.touched = eng.touched[:0]
	for k := range eng.sh {
		eng.sh[k].ev = eng.sh[k].ev[:0]
	}
}

// applyUntil applies logged events with key < limit, in key order.
func (eng *shardEng) applyUntil(limit int32, deliverAt simtime.Time) {
	for eng.curLog < eng.p {
		log := eng.sh[eng.curLog].ev
		for eng.curIdx < len(log) {
			ev := &log[eng.curIdx]
			if ev.key >= limit {
				return
			}
			eng.applyEvent(ev, deliverAt)
			eng.curIdx++
		}
		eng.curLog++
		eng.curIdx = 0
	}
}

// noteSweepPush is called by the serial transmit when an affected node,
// replayed via nodeStep during the sweep, forward-pushes into another
// node. Those pushes bypass the event log, but an ascending push into a
// non-affected receiver still extends (or creates) the receiver's serial
// visit, so it must enter the idle-correction set exactly like the
// logged pushes in applyEvent do.
func (eng *shardEng) noteSweepPush(node, dst int) {
	if node < dst && !eng.affCur.has(dst) && eng.pushedSlot[dst] != eng.curSlot {
		eng.pushedSlot[dst] = eng.curSlot
		eng.touched = append(eng.touched, int32(dst))
	}
}

func (eng *shardEng) applyEvent(ev *shEvent, deliverAt simtime.Time) {
	s := eng.s
	switch ev.kind {
	case evFwd:
		s.queueGauge[ev.key].Add(-1)
		s.deliver(ev.ref, deliverAt.Add(s.hop2))
	case evDirect:
		dst := int(ev.dst)
		if s.cc != nil {
			s.cc.OnCellArrived(dst, dst)
		}
		s.direct++
		if s.idealQ != nil {
			s.idealQ[dst*s.n+dst]--
		}
		s.deliver(ev.ref, deliverAt.Add(s.hop2))
	case evPush:
		dst, final := int(ev.dst), int(ev.final)
		if s.cc != nil {
			s.cc.OnCellArrived(dst, final)
		}
		fi := dst*s.n + final
		s.fwdq[fi].push(ev.ref, &s.ar64)
		s.txActive.set(fi)
		s.workInc(dst)
		s.queueGauge[dst].Add(1)
		if ev.key < ev.dst && !eng.affCur.has(dst) {
			if eng.pushedSlot[dst] != eng.curSlot {
				eng.pushedSlot[dst] = eng.curSlot
				eng.touched = append(eng.touched, ev.dst)
			}
		}
	}
}
