// Package core is the Sirius network simulator: the paper's primary
// contribution assembled from its substrates.
//
// The simulation is slot-synchronous. Global time advances in fixed slots
// (cell transmission time plus guardband); in every slot each uplink of
// each node transmits according to the static cyclic schedule
// (internal/schedule). Traffic follows Valiant load balancing (§4.2):
// every cell detours through at most one intermediate node, chosen by the
// request/grant congestion-control protocol (internal/congestion) that
// bounds per-destination queues at intermediates to Q cells. Control
// messages ride piggybacked on scheduled cells, so requests and grants
// each take one epoch to propagate.
//
// Three operating modes cover the paper's §7 systems and the ablation
// that motivates the design:
//
//   - ModeRequestGrant — SIRIUS: the real protocol.
//   - ModeIdeal — SIRIUS (IDEAL): per-flow queues and back-pressure with
//     no request/grant round trip; an upper bound used to price the
//     protocol's startup latency.
//   - ModeDirect — no load balancing at all; each pair is limited to its
//     direct slots (the §4.1 baseline VLB exists to beat).
//
// docs/PROTOCOL.md specifies the protocol as implemented and justifies
// each deviation from the paper's prose.
//
// # Performance model
//
// The hot path is activity-proportional and allocation-free in steady
// state (DESIGN.md § Performance model):
//
//   - Active sets. Dense bitset indices track the nodes with cells to
//     transmit (workActive), nodes with LOCAL backlog (localActive),
//     nodes with paced injection pending (pendingActive) and, per node,
//     the destinations with non-empty LOCAL queues (dstActive). The slot
//     loop, the paced drain, the per-epoch demand enumeration and the
//     ModeDirect/ModeIdeal epoch passes all iterate these sets, so their
//     cost scales with live traffic rather than with n or n².
//   - Zero-allocation steady state. FIFO backing segments are recycled
//     through a slab arena, scratch buffers are pre-sized and reused
//     across epochs, and the congestion controller double-buffers its
//     grant lists. Once warm, a simulation step performs no heap
//     allocations (enforced by TestRunSteadyStateZeroAlloc).
//   - Determinism. The active-set iteration order is exactly the
//     ascending/rotated index-scan order of the reference implementation,
//     so results are byte-identical for a given seed (enforced by the
//     golden fixtures under testdata/).
package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"sirius/internal/cell"
	"sirius/internal/congestion"
	"sirius/internal/metrics"
	"sirius/internal/phy"
	"sirius/internal/rng"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// Mode selects the congestion-control discipline.
type Mode int

// Modes.
const (
	// ModeRequestGrant runs the paper's request/grant protocol (§4.3).
	ModeRequestGrant Mode = iota
	// ModeIdeal runs the idealized grant-free variant: cells spread over
	// intermediates immediately with unbounded queues (per-flow queues +
	// back-pressure in the paper's terms).
	ModeIdeal
	// ModeDirect disables Valiant load balancing entirely: cells wait
	// for the slot that connects source to destination directly. Each
	// pair then gets only k/N of the node bandwidth — the §4.1
	// observation that motivates detouring ("with simple direct routing,
	// the nodes would only be able to communicate directly with a
	// fraction of their total uplink bandwidth").
	ModeDirect
)

// Planner is a dynamic scheduler: instead of a fixed cyclic table, the
// core samples the demand matrix at every epoch boundary and asks the
// planner for the coming epoch's matchings. It is structurally
// identical to sched.Scheduler (the consumer-side mirror, so the core
// does not depend on internal/sched); any sched implementation
// satisfies it. Plan fills dst — laid out like the internal schedule
// table, [(slot*nodes+node)*uplinks+uplink], -1 = dark — and returns
// the link-slots left dark to pay for reconfiguration. The core calls
// Reset once per run and then Plan serially from the coordinator
// goroutine, identically in the serial and sharded engines, so a
// deterministic planner keeps runs byte-identical at a fixed seed. A
// Planner instance must not be shared between concurrent runs.
type Planner interface {
	Nodes() int
	Uplinks() int
	SlotsPerEpoch() int
	ConnectionsPerEpoch() int
	Plan(epoch int64, demand []int32, dst []int32) (reconfigLinkSlots int)
	Reset()
}

// Config parameterizes a simulation run.
type Config struct {
	// Schedule is the static cyclic schedule (grouped or rotor).
	// Exactly one of Schedule and Planner must be set.
	Schedule schedule.Schedule
	// Planner, when set, replaces the static schedule with a dynamic
	// per-epoch scheduler (internal/sched): at every epoch boundary the
	// core snapshots the queued-cell demand matrix (LOCAL backlog, plus
	// staged destination VOQs in ModeDirect) and replans the epoch's
	// connection table. Demand-aware planners (PULSE, NegotiaToR) only
	// light links that carry demand, so they should run in ModeDirect —
	// the request/grant and ideal-VLB modes assume all-pairs coverage
	// within an epoch, which only demand-oblivious planners guarantee.
	Planner Planner
	// Slot is the timeslot structure (cell size, line rate, guardband).
	Slot phy.Slot
	// Q is the per-destination queue bound at intermediates, expressed
	// per pair-connection per epoch as in §4.3 (where the schedule
	// connects each pair once per epoch). Schedules with k connections
	// per epoch scale the bound to k·Q so the in-flight window still
	// covers the grant round trip at full rate. ModeIdeal uses the same
	// bound for its oracle back-pressure.
	Q int
	// Mode selects SIRIUS or SIRIUS (IDEAL).
	Mode Mode
	// NormalizeRate is the per-node reference bandwidth used for goodput
	// normalization (the paper normalizes by N·R of the *baseline*
	// provisioning, so extra VLB uplinks don't inflate the metric).
	NormalizeRate simtime.Rate
	// HopPropagation is added per fiber traversal when reporting flow
	// completion times (zero = co-located, the default for comparisons).
	HopPropagation simtime.Duration
	// TrackReorder enables per-flow reorder-buffer accounting (Fig. 10d).
	TrackReorder bool
	// KeepPerFlow retains per-flow completion times in the results.
	KeepPerFlow bool
	// FailedNodes marks nodes as failed (§4.5): their schedule slots go
	// dark (pass a schedule.Degraded as Schedule to enforce that) and
	// they are never chosen as intermediates. Flows touching them are
	// rejected.
	FailedNodes []int
	// NoDirect is an ablation: the destination is never chosen as the
	// intermediate, so every cell detours (pure VLB).
	NoDirect bool
	// InstantControl is an ablation: requests and grants propagate with
	// zero latency instead of piggybacking for an epoch each.
	InstantControl bool
	// InjectRate, when positive, paces flow cells into each node's LOCAL
	// queue at that many cells per slot — the aggregate rate of the
	// intra-rack tier's server downlinks in a rack-based deployment.
	// Flows at one node are served round-robin (per-flow queues at the
	// rack switch). Zero means cells enter LOCAL instantly on arrival
	// (server-based deployment or an uncongested rack tier).
	InjectRate int
	// LocalCap, when positive, bounds each node's LOCAL occupancy in
	// cells; injection stalls while LOCAL is full (the credit-based
	// back-pressure of §4.3's one-hop flow control). Zero = unbounded.
	LocalCap int
	// Seed feeds all randomness (intermediate choice etc.).
	Seed uint64
	// MaxSlots caps the run as a safety net; 0 means a generous default.
	MaxSlots int64
	// Shards partitions the slot loop across that many goroutines owning
	// contiguous node ranges (shard.go). Results are byte-identical to the
	// serial engine at the same seed — the sharded engine replays the
	// serial discipline exactly (see DESIGN.md §6, "Scaling law") — so
	// Shards is purely a throughput knob. 0 or 1 selects the serial
	// engine. Values are clamped to the node count and to 64.
	Shards int
}

// Results summarizes a run.
type Results struct {
	Flows     int
	Completed int
	// SimTime is the instant the last cell was delivered.
	SimTime simtime.Time
	// Slots is how many timeslots were simulated (idle gaps skipped).
	Slots int64
	// DeliveredBytes counts application bytes of completed flows.
	DeliveredBytes int64
	// GoodputNorm is the normalized goodput measured over the arrival
	// window (§7: bytes received during the simulation over simulation
	// time, normalized by N·R): payload bytes delivered by the time of
	// the last flow arrival, divided by that window. Measuring over the
	// window rather than the makespan keeps a single straggling elephant
	// from dominating the metric. When the window is degenerate (a single
	// arrival instant) the makespan is used instead.
	GoodputNorm float64
	// MakespanGoodput is the alternative normalization over the full
	// makespan (delivered bytes / SimTime / N·R) — preferable when the
	// arrival window is short relative to the fabric's base latency.
	MakespanGoodput float64
	// FCTAll and FCTShort collect flow completion times in milliseconds;
	// short flows are those under 100 KB (§7).
	FCTAll, FCTShort metrics.Sample
	// Slowdown collects each flow's completion time relative to its
	// ideal transmission time at the full baseline node bandwidth — the
	// standard flow-slowdown metric (1 = as fast as an unloaded,
	// zero-latency network could go).
	Slowdown metrics.Sample
	// PeakNodeQueueBytes is the largest aggregate forward-queue occupancy
	// observed at any single node (Fig. 10c).
	PeakNodeQueueBytes int
	// PeakReorderBytes is the largest per-flow reorder buffer observed
	// (Fig. 10d; zero unless TrackReorder).
	PeakReorderBytes int
	// DirectFraction is the fraction of cells that reached their
	// destination without a detour (intermediate == destination).
	DirectFraction float64
	// ReconfigLinkSlots counts link-slots left dark to pay for fabric
	// reconfiguration, as reported by the Planner (zero for static
	// schedules). The epoch's total link-slots — Slots × nodes ×
	// uplinks — is the denominator for an overhead fraction.
	ReconfigLinkSlots int64
	// PerFlowFCT holds each flow's completion time, indexed like the
	// input flows (only when Config.KeepPerFlow is set).
	PerFlowFCT []simtime.Duration
}

// Process-wide observability counters, exposed so cmd/siriussim can print
// a cells/sec summary per experiment without threading state through the
// harness. They are cumulative across every Run in the process.
var (
	statCells atomic.Int64
	statSlots atomic.Int64
)

// Counters reports the cumulative number of cells delivered and timeslots
// simulated by every completed Run in this process. Snapshot before and
// after a workload to compute its cells/sec.
func Counters() (cells, slots int64) {
	return statCells.Load(), statSlots.Load()
}

// sim is the run state.
type sim struct {
	ctx     context.Context
	cfg     Config
	n       int
	uplinks int
	epochE  int
	k       int // pair connections per epoch
	payload int
	hop2    simtime.Duration // 2 * HopPropagation, hoisted off the hot path
	qk      int32            // Q * k, the scaled intermediate bound

	flows      []workload.Flow
	cellsTotal []int32            // cells per flow
	cellsLeft  []int32            // cells not yet delivered, per flow
	consumed   []int32            // next LOCAL-departure sequence number, per flow
	fct        []simtime.Duration // completion time, -1 while incomplete
	reorder    []*cell.Reorder

	window      simtime.Time // last flow arrival: goodput window end
	windowBytes int64        // application bytes delivered inside the window

	// Slab arenas recycling the fifo backing segments (int32: flow ids;
	// int64: packed cell refs). See queue.go.
	ar32 arena[int32]
	ar64 arena[int64]

	// LOCAL: per-destination flow queues. Requests are generated by
	// cycling over the destination queues (DRRM style — one request per
	// queued cell, destinations served round-robin) so an elephant flow
	// cannot monopolize the request budget; cells of one destination
	// leave in FIFO order.
	byDst       []fifo[int32] // per node*n: flow ids per destination
	demandStart []int         // per node: round-robin offset over destinations
	localCount  []int64       // per node: total cells in LOCAL
	rrDst       []int         // per node: round-robin pull pointer (ModeIdeal)

	// Active sets (see the package comment's performance model): dense
	// bitset indices replacing the full n / n×n occupancy scans.
	workActive    bitset // nodes with workCells > 0
	localActive   bitset // nodes with localCount > 0
	pendingActive bitset // nodes with a non-empty pendingQ
	dstActive     bitset // per node (dstWords words each): non-empty byDst
	dstWords      int
	// txActive is a flat n*n bitset over (node, peer) pairs: bit
	// node*n+peer is set while voq[node*n+peer] or fwdq[node*n+peer] is
	// non-empty. The slot loop tests it before touching either fifo, so
	// a scheduled slot whose queues are empty costs one bit probe
	// instead of two cache-missing fifo loads.
	txActive bitset

	// Intra-rack pacing (InjectRate > 0): flows whose cells have not yet
	// entered LOCAL, round-robin per node, with remaining-cell counts.
	pendingQ   []fifo[int32] // per node: flow ids awaiting injection
	toInject   []int32       // per flow: cells not yet in LOCAL
	pendingOut int64         // cells waiting across all pending queues

	voq  []fifo[int64] // per node*n: granted cell refs awaiting the slot to via
	fwdq []fifo[int64] // per node*n: cell refs queued at intermediate per final dst

	// ModeIdeal back-pressure state: committed cells (in VOQ, in flight
	// or queued) per (via, final dst), bounded by Q; and rotating via
	// pointers per (source, dst) for fair spreading.
	idealQ    []int32
	viaPtr    []int32
	viaBudget []int32 // scratch: per-via VOQ top-up budget
	cands     []int32 // scratch: destination queues with backlog

	// tieBreak alternates each (node, peer) slot between forwarding
	// (fwdq) and fresh granted cells (voq) when both contend: strict
	// forwarding priority would let a saturated destination starve every
	// node's fresh cells routed via it.
	tieBreak []bool

	queueGauge []metrics.Peak // per node: aggregate fwdq occupancy (cells)

	cc     *congestion.Controller
	r      *rng.RNG
	failed []bool // failed-node mask (nil = none)

	// dstTable flattens the schedule ([slot][node][uplink] -> dst, -1 =
	// dark) so the hot loop avoids interface calls.
	dstTable []int32
	// workCells counts the cells a node currently has to transmit (its
	// VOQs plus its forward queues); nodes at zero carry no workActive
	// bit and are never touched by the slot loop.
	workCells []int32

	epoch        int64 // epochs elapsed (drives rotation fairness)
	out          int64 // cells anywhere in the system
	delivered    int64
	direct       int64
	total        int64
	deliveredB   int64
	completed    int
	lastDelivery simtime.Time
	peakReorder  int

	demandBuf    []int
	demandCands  []int32 // scratch: nonempty destinations
	demandCounts []int32 // scratch: their queue lengths

	// Dynamic-planner state (Config.Planner != nil): the demand matrix
	// snapshot handed to Plan each epoch, the indices dirtied last
	// epoch (so clearing is proportional to live traffic, not n²), and
	// the accumulated reconfiguration overhead.
	planDemand    []int32
	planTouched   []int32
	reconfigSlots int64

	// Telemetry accumulators: plain (non-atomic) counts bumped on the
	// hot path and flushed into the telemetry registry once per run
	// (flushTelemetry). Plain int64 slice writes keep the slot loop
	// zero-alloc and branch-cheap; the flush is the only place that
	// touches sync/atomic for these.
	upTx         []int64 // per uplink: cells transmitted
	upIdle       []int64 // per uplink: scheduled slots with empty queues
	grantsIssued int64   // request/grant mode: grants handed out
	grantsUnused int64   // grants whose LOCAL queue had drained
	localStalls  int64   // drainPending stalls on the LOCAL cap (guardband)
	txCells      int64   // cells transmitted (slot-loop pops), all uplinks

	// sh is the sharded engine (nil = serial). See shard.go.
	sh *shardEng
}

// Run simulates the given flows to completion and returns the results.
func Run(cfg Config, flows []workload.Flow) (*Results, error) {
	return RunContext(context.Background(), cfg, flows)
}

// RunContext is Run with cancellation: the slot loop polls ctx at every
// epoch boundary (cheap — an epoch is N slots) and returns ctx.Err() when
// the context is done, so the experiment-sweep engine can abort workers
// on SIGINT without waiting for a full simulation to drain.
func RunContext(ctx context.Context, cfg Config, flows []workload.Flow) (*Results, error) {
	s, err := newSim(ctx, cfg, flows)
	if err != nil {
		return nil, err
	}
	return s.run()
}

// newSim validates the configuration and builds the run state. It is
// split from RunContext so the white-box performance tests can drive the
// slot loop directly (see alloc_test.go).
func newSim(ctx context.Context, cfg Config, flows []workload.Flow) (*sim, error) {
	if (cfg.Schedule == nil) == (cfg.Planner == nil) {
		return nil, fmt.Errorf("core: exactly one of Schedule and Planner must be set")
	}
	if cfg.Slot.CellBytes <= cell.HeaderLen {
		return nil, fmt.Errorf("core: cell size %dB does not fit the %dB header",
			cfg.Slot.CellBytes, cell.HeaderLen)
	}
	if cfg.Q < 2 {
		// §4.3: the minimum is 2 — within one epoch a node can receive a
		// new cell for a destination before transmitting the previous.
		// The bound also disciplines ModeIdeal's back-pressure.
		return nil, fmt.Errorf("core: queue bound must be >= 2")
	}
	if cfg.NormalizeRate <= 0 {
		return nil, fmt.Errorf("core: non-positive normalize rate")
	}
	var n, uplinks, epochE, k int
	if cfg.Planner != nil {
		n, uplinks = cfg.Planner.Nodes(), cfg.Planner.Uplinks()
		epochE, k = cfg.Planner.SlotsPerEpoch(), cfg.Planner.ConnectionsPerEpoch()
	} else {
		n, uplinks = cfg.Schedule.Nodes(), cfg.Schedule.Uplinks()
		epochE, k = cfg.Schedule.SlotsPerEpoch(), cfg.Schedule.ConnectionsPerEpoch()
	}
	if n < 2 || uplinks < 1 || epochE < 1 || k < 1 {
		return nil, fmt.Errorf("core: invalid fabric geometry (n=%d uplinks=%d epoch=%d k=%d)",
			n, uplinks, epochE, k)
	}
	var failed []bool
	if len(cfg.FailedNodes) > 0 {
		failed = make([]bool, n)
		for _, fn := range cfg.FailedNodes {
			if fn < 0 || fn >= n {
				return nil, fmt.Errorf("core: failed node %d out of range", fn)
			}
			failed[fn] = true
		}
	}
	for _, f := range flows {
		if f.Src < 0 || f.Src >= n || f.Dst < 0 || f.Dst >= n || f.Src == f.Dst || f.Bytes < 1 {
			return nil, fmt.Errorf("core: invalid flow %+v", f)
		}
		if failed != nil && (failed[f.Src] || failed[f.Dst]) {
			return nil, fmt.Errorf("core: flow %d touches a failed node", f.ID)
		}
	}

	s := &sim{
		ctx:     ctx,
		cfg:     cfg,
		n:       n,
		uplinks: uplinks,
		epochE:  epochE,
		k:       k,
		payload: cfg.Slot.CellBytes - cell.HeaderLen,
		hop2:    cfg.HopPropagation * 2,
		flows:   flows,
		r:       rng.New(cfg.Seed),
	}
	s.qk = int32(cfg.Q * s.k)
	s.cellsTotal = make([]int32, len(flows))
	s.cellsLeft = make([]int32, len(flows))
	s.consumed = make([]int32, len(flows))
	s.fct = make([]simtime.Duration, len(flows))
	for i, f := range flows {
		s.cellsTotal[i] = int32(cell.CellsForBytes(f.Bytes, s.payload))
		s.cellsLeft[i] = s.cellsTotal[i]
		s.fct[i] = -1
		if f.Arrival > s.window {
			s.window = f.Arrival
		}
	}
	if cfg.TrackReorder {
		s.reorder = make([]*cell.Reorder, len(flows))
	}
	s.byDst = make([]fifo[int32], n*n)
	s.demandStart = make([]int, n)
	s.localCount = make([]int64, n)
	s.rrDst = make([]int, n)
	s.workActive = newBitset(n)
	s.localActive = newBitset(n)
	s.dstWords = bitsetWords(n)
	s.dstActive = make(bitset, n*s.dstWords)
	if cfg.InjectRate > 0 || cfg.LocalCap > 0 {
		if cfg.InjectRate < 0 || cfg.LocalCap < 0 {
			return nil, fmt.Errorf("core: negative inject rate or local cap")
		}
		if cfg.InjectRate == 0 {
			return nil, fmt.Errorf("core: LocalCap needs a finite InjectRate")
		}
		s.pendingQ = make([]fifo[int32], n)
		s.toInject = make([]int32, len(flows))
		s.pendingActive = newBitset(n)
	}
	s.voq = make([]fifo[int64], n*n)
	s.fwdq = make([]fifo[int64], n*n)
	s.txActive = newBitset(n * n)
	s.queueGauge = make([]metrics.Peak, n)
	s.upTx = make([]int64, s.uplinks)
	s.upIdle = make([]int64, s.uplinks)
	s.demandBuf = make([]int, 0, s.k*(n-1))
	s.demandCands = make([]int32, 0, n)
	s.demandCounts = make([]int32, 0, n)
	s.tieBreak = make([]bool, n*n)
	s.workCells = make([]int32, n)
	if cfg.Mode == ModeIdeal {
		s.idealQ = make([]int32, n*n)
		s.viaPtr = make([]int32, n*n)
		s.viaBudget = make([]int32, n)
		s.cands = make([]int32, 0, n)
	}
	s.failed = failed
	s.dstTable = make([]int32, s.epochE*n*s.uplinks)
	if cfg.Planner != nil {
		// The table starts all-dark; the first epoch boundary plans it.
		for i := range s.dstTable {
			s.dstTable[i] = -1
		}
		cfg.Planner.Reset()
		s.planDemand = make([]int32, n*n)
		s.planTouched = make([]int32, 0, n)
	} else {
		for e := 0; e < s.epochE; e++ {
			for node := 0; node < n; node++ {
				for u := 0; u < s.uplinks; u++ {
					s.dstTable[(e*n+node)*s.uplinks+u] = int32(cfg.Schedule.Dst(node, u, e))
				}
			}
		}
	}
	if cfg.Mode == ModeRequestGrant {
		var err error
		s.cc, err = congestion.New(n, cfg.Q*s.k, s.k, cfg.Seed^0xC0FFEE)
		if err != nil {
			return nil, err
		}
		if failed != nil {
			if err := s.cc.ExcludeVias(failed); err != nil {
				return nil, err
			}
		}
		if cfg.NoDirect {
			s.cc.DisallowDirect()
		}
		if cfg.InstantControl {
			s.cc.InstantControl()
		}
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("core: negative shard count")
	}
	if p := cfg.Shards; p > 1 {
		if p > n {
			p = n
		}
		if p > maxShards {
			p = maxShards
		}
		if p > 1 {
			s.sh = newShardEng(s, p)
		}
	}
	return s, nil
}

// dstRow returns node's active-destination bitset (the destinations with
// a non-empty LOCAL queue).
func (s *sim) dstRow(node int) bitset {
	return s.dstActive[node*s.dstWords : (node+1)*s.dstWords]
}

// workInc adds one transmittable cell to node's account, activating it in
// the slot loop when it was idle.
func (s *sim) workInc(node int) {
	if s.workCells[node] == 0 {
		s.workActive.set(node)
	}
	s.workCells[node]++
}

// workDec removes one transmittable cell from node's account, retiring it
// from the slot loop when it drains.
func (s *sim) workDec(node int) {
	s.workCells[node]--
	if s.workCells[node] == 0 {
		s.workActive.clear(node)
	}
}

// voqPush enqueues a granted cell ref on voq[idx] and marks the (node,
// peer) pair live for the slot loop.
func (s *sim) voqPush(idx int, ref int64) {
	s.voq[idx].push(ref, &s.ar64)
	s.txActive.set(idx)
}

// localPush appends flow f's next cell to node's LOCAL queue for dst,
// maintaining the destination and node active sets.
func (s *sim) localPush(node, dst int, f int32) {
	q := &s.byDst[node*s.n+dst]
	if q.empty() {
		s.dstRow(node).set(dst)
	}
	q.push(f, &s.ar32)
	if s.localCount[node] == 0 {
		s.localActive.set(node)
	}
	s.localCount[node]++
}

func (s *sim) run() (*Results, error) {
	slotDur := s.cfg.Slot.Duration()
	maxSlots := s.cfg.MaxSlots
	if maxSlots == 0 {
		maxSlots = 2_000_000_000
	}
	epochE := int64(s.epochE)
	next := 0 // next flow to inject
	var slot int64
	quiescent := 0

	if s.sh != nil {
		s.sh.start()
		defer s.sh.stop()
	}

	for ; slot < maxSlots; slot++ {
		now := simtime.Time(slot * int64(slotDur))
		// Inject flows that have arrived by the start of this slot.
		for next < len(s.flows) && s.flows[next].Arrival <= now {
			s.inject(int32(next))
			next++
		}
		if s.pendingQ != nil && s.pendingOut > 0 {
			s.drainPending()
		}

		e := int(slot % epochE)
		if e == 0 {
			if err := s.ctx.Err(); err != nil {
				return nil, err
			}
			if s.out == 0 {
				quiescent++
			} else {
				quiescent = 0
			}
			if quiescent >= 3 {
				if next >= len(s.flows) {
					break // all delivered, nothing more to come
				}
				// Nothing in flight and the control plane has drained:
				// jump ahead to the epoch of the next arrival.
				arriveSlot := int64(s.flows[next].Arrival) / int64(slotDur)
				target := arriveSlot - arriveSlot%epochE
				if target > slot {
					slot = target - 1 // loop increment lands on target
					continue
				}
			}
		}
		if s.sh != nil {
			s.stepSharded(e, now.Add(slotDur))
		} else {
			s.step(e, now.Add(slotDur))
		}
	}
	if slot >= maxSlots {
		return nil, fmt.Errorf("core: slot cap %d reached with %d/%d flows complete",
			maxSlots, s.completed, len(s.flows))
	}
	if s.sh != nil {
		s.sh.mergeStats()
	}
	statCells.Add(s.delivered)
	statSlots.Add(slot)
	s.flushTelemetry(slot)

	res := &Results{
		Flows:            len(s.flows),
		Completed:        s.completed,
		SimTime:          s.lastDelivery,
		Slots:            slot,
		DeliveredBytes:   s.deliveredB,
		PeakReorderBytes: s.peakReorder,
	}
	for i := range s.queueGauge {
		if b := s.queueGauge[i].Peak() * s.cfg.Slot.CellBytes; b > res.PeakNodeQueueBytes {
			res.PeakNodeQueueBytes = b
		}
	}
	if s.total > 0 {
		res.DirectFraction = float64(s.direct) / float64(s.total)
	}
	res.ReconfigLinkSlots = s.reconfigSlots
	denom := float64(s.n) * float64(s.cfg.NormalizeRate)
	if res.SimTime > 0 {
		res.MakespanGoodput = float64(s.deliveredB) * 8 / (res.SimTime.Seconds() * denom)
	}
	if s.window > 0 {
		res.GoodputNorm = float64(s.windowBytes) * 8 / (s.window.Seconds() * denom)
	} else {
		res.GoodputNorm = res.MakespanGoodput
	}
	for i := range s.flows {
		if s.fct[i] < 0 {
			continue
		}
		ms := s.fct[i].Seconds() * 1e3
		res.FCTAll.Add(ms)
		if s.flows[i].Bytes < 100_000 {
			res.FCTShort.Add(ms)
		}
		ideal := s.cfg.NormalizeRate.TimeToSend(s.flows[i].Bytes)
		res.Slowdown.Add(float64(s.fct[i]) / float64(ideal))
	}
	if s.cfg.KeepPerFlow {
		res.PerFlowFCT = s.fct
	}
	return res, nil
}

// step advances one slot: the control-plane epoch boundary when e == 0,
// then the transmit fan-out over the nodes with cells to send. It is the
// simulator's steady-state unit of work — once warm it performs no heap
// allocations (TestRunSteadyStateZeroAlloc) and its cost scales with the
// active node set, not the topology size.
func (s *sim) step(e int, deliverAt simtime.Time) {
	if e == 0 {
		if s.cfg.Planner != nil {
			s.replan()
		}
		s.epochBoundary()
	}
	row := s.dstTable[e*s.n*s.uplinks : (e+1)*s.n*s.uplinks]
	for node := s.workActive.next(0); node >= 0; node = s.workActive.next(node + 1) {
		s.nodeStep(node, row, deliverAt)
	}
}

// nodeStep runs one node's turn of the slot: the uplink fan-out over this
// slot's schedule row. It is shared between the serial slot loop and the
// sharded engine's serial pass over affected nodes (shard.go), which is
// why it is split out of step.
func (s *sim) nodeStep(node int, row []int32, deliverAt simtime.Time) {
	uplinks := s.uplinks
	nodeRow := row[node*uplinks : (node+1)*uplinks]
	base := node * s.n
	tx := s.txActive
	for u := 0; u < uplinks; u++ {
		dst := int(nodeRow[u])
		if dst < 0 || dst == node {
			continue
		}
		if !tx.has(base + dst) {
			s.upIdle[u]++
			continue // both queues for this peer are empty: idle slot
		}
		s.transmit(node, dst, deliverAt)
		s.upTx[u]++
		if s.workCells[node] == 0 {
			break // node drained mid-slot; remaining uplinks are idle
		}
	}
}

// inject makes flow f's cells available at its source: directly into
// LOCAL, or into the paced per-node pending queue when the intra-rack
// tier is modeled.
func (s *sim) inject(f int32) {
	fl := &s.flows[f]
	cells := int(s.cellsLeft[f])
	s.out += int64(cells)
	s.total += int64(cells)
	if s.pendingQ != nil {
		s.toInject[f] = int32(cells)
		pq := &s.pendingQ[fl.Src]
		if pq.empty() {
			s.pendingActive.set(fl.Src)
		}
		pq.push(f, &s.ar32)
		s.pendingOut += int64(cells)
		return
	}
	for c := 0; c < cells; c++ {
		s.localPush(fl.Src, fl.Dst, f)
	}
}

// drainPending moves pending cells into LOCAL at the intra-rack rate,
// one cell per flow per turn (the rack tier's per-flow fairness),
// stalling on the LOCAL bound. Only nodes with pending flows are visited.
func (s *sim) drainPending() {
	injectRate := s.cfg.InjectRate
	localCap := int64(s.cfg.LocalCap)
	for node := s.pendingActive.next(0); node >= 0; node = s.pendingActive.next(node + 1) {
		pq := &s.pendingQ[node]
		budget := injectRate
		for budget > 0 && !pq.empty() {
			if localCap > 0 && s.localCount[node] >= localCap {
				s.localStalls++
				break // credit back-pressure: LOCAL is full
			}
			f := pq.pop(&s.ar32)
			s.localPush(node, int(s.flows[f].Dst), f)
			s.pendingOut--
			s.toInject[f]--
			if s.toInject[f] > 0 {
				pq.push(f, &s.ar32)
			}
			budget--
		}
		if pq.empty() {
			s.pendingActive.clear(node)
		}
	}
}

// consume takes the oldest LOCAL cell of node for dst and returns its
// packed reference, stamping the departure sequence number used by the
// destination's reorder buffer. The caller is responsible for the
// corresponding walk-queue entry (skip counter or direct pop).
func (s *sim) consume(node, dst int) int64 {
	q := &s.byDst[node*s.n+dst]
	f := q.pop(&s.ar32)
	if q.empty() {
		s.dstRow(node).clear(dst)
	}
	s.localCount[node]--
	if s.localCount[node] == 0 {
		s.localActive.clear(node)
	}
	seq := s.consumed[f]
	s.consumed[f]++
	return cellRef(f, seq)
}

// replan runs the dynamic planner at an epoch boundary: snapshot the
// demand matrix (read-only — unlike demandScan this never touches the
// round-robin cursors), let the planner rewrite the epoch's connection
// table, and refresh the sharded engine's derived indices. It runs on
// the coordinator goroutine before the epoch's control plane, at the
// same point in the slot timeline in both engines, so a deterministic
// planner preserves byte-identical serial/sharded replay.
func (s *sim) replan() {
	d := s.planDemand
	for _, idx := range s.planTouched {
		d[idx] = 0
	}
	s.planTouched = s.planTouched[:0]
	n := s.n
	for node := s.localActive.next(0); node >= 0; node = s.localActive.next(node + 1) {
		base := node * n
		row := s.dstRow(node)
		for dst := row.next(0); dst >= 0; dst = row.next(dst + 1) {
			if d[base+dst] == 0 {
				s.planTouched = append(s.planTouched, int32(base+dst))
			}
			d[base+dst] += int32(s.byDst[base+dst].len())
		}
	}
	if s.cfg.Mode == ModeDirect {
		// Cells already staged in the destination VOQs are still unserved
		// demand: ModeDirect's boundary drains LOCAL into them wholesale,
		// so LOCAL alone would go blind after one epoch.
		for node := s.workActive.next(0); node >= 0; node = s.workActive.next(node + 1) {
			base := node * n
			for dst := 0; dst < n; dst++ {
				if l := s.voq[base+dst].len(); l > 0 {
					if d[base+dst] == 0 {
						s.planTouched = append(s.planTouched, int32(base+dst))
					}
					d[base+dst] += int32(l)
				}
			}
		}
	}
	s.reconfigSlots += int64(s.cfg.Planner.Plan(s.epoch, d, s.dstTable))
	if s.sh != nil {
		s.sh.rebuildIndex()
	}
}

// epochBoundary runs the control plane for the coming epoch.
func (s *sim) epochBoundary() {
	switch s.cfg.Mode {
	case ModeRequestGrant:
		grants := s.cc.Tick(s.demand)
		for _, gs := range grants {
			for _, g := range gs {
				s.grantsIssued++
				if s.byDst[g.Src*s.n+g.Dst].empty() {
					s.cc.OnGrantUnused(g.Via, g.Dst)
					s.grantsUnused++
					continue
				}
				s.voqPush(g.Src*s.n+g.Via, s.consume(g.Src, g.Dst))
				s.workInc(g.Src)
			}
		}
	case ModeDirect:
		// No detouring: every LOCAL cell goes to the VOQ of its own
		// destination and waits for the direct slot. Only nodes with
		// backlog — and only their non-empty destinations — are visited.
		for node := s.localActive.next(0); node >= 0; node = s.localActive.next(node + 1) {
			base := node * s.n
			row := s.dstRow(node)
			for dst := row.next(0); dst >= 0; dst = row.next(dst + 1) {
				q := &s.byDst[base+dst]
				for !q.empty() {
					s.voqPush(base+dst, s.consume(node, dst))
					s.workInc(node)
				}
			}
		}
	case ModeIdeal:
		// Idealized per-flow queues with back-pressure and no control
		// latency: each epoch every source tops up its VOQs to the k
		// cells per intermediate the schedule can serve, pulling fairly
		// (round-robin) across its destination queues, and commits a
		// cell to an intermediate only while that intermediate's queue
		// for the cell's destination is below the bound — the same
		// discipline the protocol enforces, but known instantly (oracle
		// back-pressure) instead of via a request/grant round trip. The
		// node processing order rotates so freed downstream capacity is
		// shared fairly among competing sources.
		start := int(s.epoch % int64(s.n))
		for node := s.localActive.next(start); node >= 0; node = s.localActive.next(node + 1) {
			s.idealPull(node)
		}
		for node := s.localActive.next(0); node >= 0 && node < start; node = s.localActive.next(node + 1) {
			s.idealPull(node)
		}
	}
	s.epoch++
}

// idealPull moves cells from node's LOCAL queues into its VOQs under the
// oracle back-pressure discipline.
func (s *sim) idealPull(node int) {
	if s.localCount[node] == 0 {
		return
	}
	// Remaining VOQ space per intermediate this epoch.
	total := 0
	base := node * s.n
	k := s.k
	for via := 0; via < s.n; via++ {
		b := k - s.voq[base+via].len()
		if via == node || b < 0 {
			b = 0
		}
		s.viaBudget[via] = int32(b)
		total += b
	}
	if total == 0 {
		return
	}
	// Destination queues with backlog, in rotating order for fairness.
	cands := s.cands[:0]
	start := s.rrDst[node] % s.n
	s.rrDst[node]++
	row := s.dstRow(node)
	for d := row.next(start); d >= 0; d = row.next(d + 1) {
		cands = append(cands, int32(d))
	}
	for d := row.next(0); d >= 0 && d < start; d = row.next(d + 1) {
		cands = append(cands, int32(d))
	}
	// Round-robin one cell per destination per pass.
	for total > 0 && len(cands) > 0 {
		w := 0
		for _, d32 := range cands {
			d := int(d32)
			via, ok := s.findVia(node, d)
			if !ok {
				continue // back-pressured: every eligible via is full for d
			}
			s.voqPush(base+via, s.consume(node, d))
			s.workInc(node)
			s.idealQ[via*s.n+d]++
			s.viaBudget[via]--
			total--
			if total == 0 {
				break
			}
			if !s.byDst[base+d].empty() {
				cands[w] = d32
				w++
			}
		}
		if w == 0 {
			break
		}
		cands = cands[:w]
	}
	s.cands = cands[:0]
}

// findVia picks an intermediate for a cell of (node -> d): the next via in
// rotating order with VOQ budget left and committed cells for d below Q.
func (s *sim) findVia(node, d int) (int, bool) {
	ptr := int(s.viaPtr[node*s.n+d])
	failed := s.failed
	noDirect := s.cfg.NoDirect
	for j := 0; j < s.n; j++ {
		via := (ptr + j) % s.n
		if via == node || s.viaBudget[via] == 0 || (failed != nil && failed[via]) ||
			(noDirect && via == d) {
			continue
		}
		// The destination itself consumes immediately; intermediates are
		// bounded at k·Q committed cells for d (see Config.Q).
		if via != d && s.idealQ[via*s.n+d] >= s.qk {
			continue
		}
		s.viaPtr[node*s.n+d] = int32(via + 1)
		return via, true
	}
	return 0, false
}

// demand enumerates up to k*(n-1) queued cells of node's LOCAL buffer,
// one request candidate each, cycling round-robin over the
// per-destination queues (and rotating the starting destination each
// epoch) so every destination with backlog gets request opportunities
// regardless of how large the other queues are. The returned slice is
// valid until the next call. Only destinations with backlog are visited
// (the dstActive index), so an idle or lightly loaded node costs O(n/64)
// instead of O(n).
func (s *sim) demand(node int) []int {
	buf, cands, counts := s.demandScan(node, s.demandBuf[:0], s.demandCands[:0], s.demandCounts[:0])
	s.demandBuf = buf
	s.demandCands, s.demandCounts = cands[:0], counts[:0]
	return buf
}

// demandScan is demand with caller-provided scratch, appending node's
// request candidates to buf (which may already hold other nodes'): the
// sharded engine precomputes every node's demand concurrently with one
// scratch set per shard (shard.go), accumulating into per-shard flat
// buffers. The enumeration order and the demandStart bump are exactly
// demand's.
func (s *sim) demandScan(node int, buf []int, cands, counts []int32) ([]int, []int32, []int32) {
	start := s.demandStart[node] % s.n
	s.demandStart[node]++
	if s.localCount[node] == 0 {
		return buf, cands, counts
	}
	n0 := len(buf)
	limit := s.k * (s.n - 1)
	// Collect the destinations with backlog and their depths, in the
	// rotated order the reference scan produced.
	base := node * s.n
	row := s.dstRow(node)
	for d := row.next(start); d >= 0; d = row.next(d + 1) {
		cands = append(cands, int32(d))
		counts = append(counts, int32(s.byDst[base+d].len()))
	}
	for d := row.next(0); d >= 0 && d < start; d = row.next(d + 1) {
		cands = append(cands, int32(d))
		counts = append(counts, int32(s.byDst[base+d].len()))
	}
	// Distribute the budget one cell per destination per pass, dropping
	// exhausted queues from the compact candidate list.
	for len(buf)-n0 < limit && len(cands) > 0 {
		w := 0
		for i, d := range cands {
			buf = append(buf, int(d))
			counts[i]--
			if counts[i] > 0 {
				cands[w], counts[w] = d, counts[i]
				w++
			}
			if len(buf)-n0 == limit {
				break
			}
		}
		cands, counts = cands[:w], counts[:w]
	}
	return buf, cands, counts
}

// transmit sends at most one cell from node to dst in this slot: either a
// queued detour cell the node forwards as an intermediate (fwdq) or a
// fresh granted cell headed to dst as its intermediate (voq). When both
// have backlog the slot alternates between the two roles so neither can
// starve the other.
func (s *sim) transmit(node, dst int, deliverAt simtime.Time) {
	idx := node*s.n + dst
	fw, vq := &s.fwdq[idx], &s.voq[idx]
	useFwd := !fw.empty()
	if useFwd && !vq.empty() {
		useFwd = s.tieBreak[idx]
		s.tieBreak[idx] = !s.tieBreak[idx]
	}
	switch {
	case useFwd:
		// Forward a cell queued at this node (as intermediate) destined
		// dst: final delivery.
		s.txCells++
		ref := fw.pop(&s.ar64)
		if fw.empty() && vq.empty() {
			s.txActive.clear(idx)
		}
		s.workDec(node)
		s.queueGauge[node].Add(-1)
		if s.cc != nil {
			s.cc.OnCellForwarded(node, dst)
		}
		if s.idealQ != nil {
			s.idealQ[idx]--
		}
		s.deliver(ref, deliverAt.Add(s.hop2))
	case !vq.empty():
		// Send a granted cell to its intermediate (possibly the final
		// destination itself: the direct path).
		s.txCells++
		ref := vq.pop(&s.ar64)
		if vq.empty() && fw.empty() {
			s.txActive.clear(idx)
		}
		s.workDec(node)
		flow, _ := unpackRef(ref)
		final := s.flows[flow].Dst
		if s.cc != nil {
			s.cc.OnCellArrived(dst, final)
		}
		if dst == final {
			s.direct++
			if s.idealQ != nil {
				s.idealQ[dst*s.n+final]--
			}
			s.deliver(ref, deliverAt.Add(s.hop2))
			return
		}
		fwdIdx := dst*s.n + final
		s.fwdq[fwdIdx].push(ref, &s.ar64)
		s.txActive.set(fwdIdx)
		s.workInc(dst)
		s.queueGauge[dst].Add(1)
		if s.sh != nil {
			// Sweep replay of an affected node (shardSweep): the push
			// bypassed the event log, but the receiver still needs the
			// idle-correction bookkeeping its logged counterparts get.
			s.sh.noteSweepPush(node, dst)
		}
	}
	// Otherwise idle: the slot carries only piggybacked control (already
	// modeled by the epoch-granularity control plane).
}

// deliver accounts one cell reaching its destination.
func (s *sim) deliver(ref int64, at simtime.Time) {
	flow, seq := unpackRef(ref)
	s.out--
	s.delivered++
	if at <= s.window {
		// Application bytes of this cell: full payloads except the
		// flow's final cell, which carries the remainder.
		b := s.payload
		if seq == s.cellsTotal[flow]-1 {
			b = s.flows[flow].Bytes - int(s.cellsTotal[flow]-1)*s.payload
		}
		s.windowBytes += int64(b)
	}
	if s.reorder != nil {
		r := s.reorder[flow]
		if r == nil {
			r = cell.NewReorder(s.cfg.Slot.CellBytes)
			s.reorder[flow] = r
		}
		r.Add(uint32(seq))
		if b := r.PeakBytes(); b > s.peakReorder {
			s.peakReorder = b
		}
	}
	s.cellsLeft[flow]--
	if at > s.lastDelivery {
		s.lastDelivery = at
	}
	if s.cellsLeft[flow] == 0 {
		s.completed++
		s.deliveredB += int64(s.flows[flow].Bytes)
		s.fct[flow] = at.Sub(s.flows[flow].Arrival)
		if s.reorder != nil {
			s.reorder[flow] = nil // flow done; free the buffer
		}
	}
}
