package core

import (
	"os"
	"testing"

	"sirius/internal/phy"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// TestShardedMatchesSerialN4096 is the full-scale differential: one
// serial and one 4-shard run of the n=4096 benchmark configuration,
// diffed field by field. It takes about a minute of wall clock (the
// serial reference dominates), so it only runs when SIRIUS_N4096 is set
// — the CI n4096-smoke job does; the regular test suite relies on the
// n ≤ 48 differentials plus the golden replays instead.
func TestShardedMatchesSerialN4096(t *testing.T) {
	if os.Getenv("SIRIUS_N4096") == "" {
		t.Skip("set SIRIUS_N4096=1 to run the ~1 minute full-scale differential")
	}
	sched, err := schedule.NewGrouped(4096, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig(4096, 400*simtime.Gbps, 0.9, 8000)
	flows, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Schedule: sched, Slot: phy.DefaultSlot(), Q: 4,
		NormalizeRate: 400 * simtime.Gbps, Seed: 1, KeepPerFlow: true}
	ser, rs := runSim(t, cfg, flows)
	cfg.Shards = 4
	sh, rp := runSim(t, cfg, flows)
	if sh.sh == nil {
		t.Fatal("sharded engine not engaged (fell back to serial)")
	}
	diffSims(t, ser, sh, rs, rp)
	t.Logf("n=4096: %d slots, %d flows completed, byte-identical under 4 shards",
		rs.Slots, rs.Completed)
}
