package core

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"sirius/internal/phy"
	"sirius/internal/rng"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

func testConfig(t *testing.T, nodes, ports, mult int) Config {
	t.Helper()
	sched, err := schedule.NewGrouped(nodes, ports, mult)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Schedule:      sched,
		Slot:          phy.DefaultSlot(),
		Q:             4,
		Mode:          ModeRequestGrant,
		NormalizeRate: simtime.Rate(sched.Uplinks()/mult) * 50 * simtime.Gbps,
		Seed:          1,
	}
}

func genFlows(t *testing.T, nodes, count int, load float64, seed uint64) []workload.Flow {
	t.Helper()
	cfg := workload.DefaultConfig(nodes, 400*simtime.Gbps, load, count)
	cfg.Seed = seed
	flows, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return flows
}

func TestSingleFlowDelivers(t *testing.T) {
	cfg := testConfig(t, 8, 4, 1)
	flows := []workload.Flow{{ID: 0, Src: 1, Dst: 5, Bytes: 2000, Arrival: 0}}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed = %d, want 1", res.Completed)
	}
	if res.DeliveredBytes != 2000 {
		t.Errorf("delivered bytes = %d, want 2000", res.DeliveredBytes)
	}
	if res.FCTAll.Count() != 1 {
		t.Errorf("FCT count = %d", res.FCTAll.Count())
	}
	// The protocol costs a couple of epochs of startup: the FCT must be
	// at least 2 epochs and at most a few dozen (8-node fabric, epoch =
	// 4 slots x 100 ns).
	fct := res.FCTAll.Max() // ms
	if fct < 0.0008 || fct > 0.1 {
		t.Errorf("FCT = %v ms, implausible for 2 KB on an idle fabric", fct)
	}
}

func TestAllFlowsDeliverUniform(t *testing.T) {
	cfg := testConfig(t, 16, 4, 1)
	flows := genFlows(t, 16, 500, 0.5, 42)
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d of %d", res.Completed, len(flows))
	}
	if res.DeliveredBytes != workload.TotalBytes(flows) {
		t.Errorf("delivered %d bytes, want %d", res.DeliveredBytes, workload.TotalBytes(flows))
	}
	if res.GoodputNorm <= 0 || res.GoodputNorm > 1.2 {
		t.Errorf("normalized goodput = %v, implausible", res.GoodputNorm)
	}
}

func TestIdealModeDelivers(t *testing.T) {
	cfg := testConfig(t, 16, 4, 1)
	cfg.Mode = ModeIdeal
	flows := genFlows(t, 16, 500, 0.5, 42)
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d of %d", res.Completed, len(flows))
	}
}

func TestIdealBeatsProtocolAtLowLoad(t *testing.T) {
	// §7/Fig. 9a: at low load SIRIUS (IDEAL) has lower FCT than SIRIUS
	// because flows skip the request/grant round trip (two epochs of
	// startup latency). Single-cell flows on a lightly loaded fabric make
	// the difference deterministic.
	wcfg := workload.DefaultConfig(16, 200*simtime.Gbps, 0.05, 400)
	wcfg.MeanFlowBytes = 400
	wcfg.ParetoShape = 1.5
	wcfg.Seed = 7
	flows, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 16, 4, 1)
	real, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = ModeIdeal
	ideal, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	rp50 := real.FCTShort.Percentile(50)
	ip50 := ideal.FCTShort.Percentile(50)
	if ip50 >= rp50 {
		t.Errorf("ideal p50 (%v ms) should beat protocol p50 (%v ms) at low load", ip50, rp50)
	}
	// The gap is roughly the two-epoch grant round trip (± a slot or two).
	epochMS := 4 * 100e-9 * 1e3
	if gap := rp50 - ip50; gap < epochMS || gap > 8*epochMS {
		t.Errorf("startup gap = %v ms, want around 2 epochs (%v ms)", gap, 2*epochMS)
	}
}

func TestQueueBoundRespected(t *testing.T) {
	// The congestion controller panics internally if the Q bound is ever
	// violated; additionally the peak aggregate node queue must be within
	// Q * (n-1) cells.
	cfg := testConfig(t, 16, 4, 1)
	cfg.Q = 4
	flows := genFlows(t, 16, 1500, 0.9, 3)
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	maxCells := cfg.Q * 15
	if res.PeakNodeQueueBytes > maxCells*cfg.Slot.CellBytes {
		t.Errorf("peak node queue = %d bytes > bound %d", res.PeakNodeQueueBytes,
			maxCells*cfg.Slot.CellBytes)
	}
}

func TestHotspotThroughput(t *testing.T) {
	// DRRM-style request/grant achieves full throughput on hot-spot
	// traffic (§4.3): an incast of everyone to node 0 must drain at
	// roughly the destination's full downlink bandwidth.
	nodes := 16
	cfg := testConfig(t, nodes, 4, 1)
	wcfg := workload.DefaultConfig(nodes, 100*simtime.Gbps, 0.9, 300)
	wcfg.Pattern = workload.Incast
	wcfg.Seed = 5
	flows, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d of %d", res.Completed, len(flows))
	}
	// Node 0 receives on 4 uplinks x 50 Gbps = 200 Gbps of cell capacity;
	// goodput of the incast should be a large fraction of that.
	bits := float64(res.DeliveredBytes) * 8
	rate := bits / res.SimTime.Seconds()
	if rate < 0.3*200e9 {
		t.Errorf("incast drain rate = %.3g bps, want >= 30%% of 200G", rate)
	}
}

func TestReorderTracking(t *testing.T) {
	cfg := testConfig(t, 16, 4, 1)
	cfg.TrackReorder = true
	flows := genFlows(t, 16, 300, 0.7, 11)
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-cell flows through random intermediates must show some
	// reordering, but bounded (small queues -> small reorder buffers).
	if res.PeakReorderBytes == 0 {
		t.Error("no reordering observed; VLB spreading should reorder cells")
	}
	if res.PeakReorderBytes > 1<<20 {
		t.Errorf("peak reorder buffer = %d bytes, implausibly large", res.PeakReorderBytes)
	}
}

func TestDirectFraction(t *testing.T) {
	// Intermediates are chosen uniformly, so ~1/(n-1) of cells go direct.
	cfg := testConfig(t, 16, 4, 1)
	flows := genFlows(t, 16, 1000, 0.5, 9)
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirectFraction < 0.01 || res.DirectFraction > 0.25 {
		t.Errorf("direct fraction = %v, want around 1/15", res.DirectFraction)
	}
}

func TestRotorScheduleWorks(t *testing.T) {
	sched, err := schedule.NewRotor(12, 5) // k = 5*12/gcd... E=12, k=5
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Schedule:      sched,
		Slot:          phy.DefaultSlot(),
		Q:             4,
		Mode:          ModeRequestGrant,
		NormalizeRate: 250 * simtime.Gbps,
		Seed:          2,
	}
	flows := genFlows(t, 12, 400, 0.5, 13)
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d of %d", res.Completed, len(flows))
	}
}

func TestLowLoadFCTNearMinimum(t *testing.T) {
	// On an idle fabric a short flow completes within a handful of
	// epochs: grant latency (2 epochs) + transmission + queuing.
	cfg := testConfig(t, 16, 4, 1)
	flows := []workload.Flow{{ID: 0, Src: 2, Dst: 9, Bytes: 500, Arrival: 0}}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	epochMS := (4 * 100e-9) * 1e3 // 4 slots x 100ns in ms
	fct := res.FCTAll.Max()
	if fct > 20*epochMS {
		t.Errorf("single-cell FCT = %v ms, want within ~20 epochs (%v ms)", fct, 20*epochMS)
	}
}

func TestConfigValidation(t *testing.T) {
	sched, _ := schedule.NewGrouped(8, 4, 1)
	good := Config{Schedule: sched, Slot: phy.DefaultSlot(), Q: 4,
		NormalizeRate: simtime.Gbps, Seed: 1}
	flows := []workload.Flow{{Src: 0, Dst: 1, Bytes: 100}}

	bad := good
	bad.Schedule = nil
	if _, err := Run(bad, flows); err == nil {
		t.Error("nil schedule accepted")
	}
	bad = good
	bad.Slot.CellBytes = 10
	if _, err := Run(bad, flows); err == nil {
		t.Error("cell smaller than header accepted")
	}
	bad = good
	bad.Q = 1
	if _, err := Run(bad, flows); err == nil {
		t.Error("Q=1 accepted")
	}
	bad = good
	bad.NormalizeRate = 0
	if _, err := Run(bad, flows); err == nil {
		t.Error("zero normalize rate accepted")
	}
	if _, err := Run(good, []workload.Flow{{Src: 0, Dst: 0, Bytes: 1}}); err == nil {
		t.Error("self flow accepted")
	}
	if _, err := Run(good, []workload.Flow{{Src: 0, Dst: 99, Bytes: 1}}); err == nil {
		t.Error("out-of-range flow accepted")
	}
	bad = good
	bad.MaxSlots = 2
	if _, err := Run(bad, []workload.Flow{{Src: 0, Dst: 1, Bytes: 1 << 20}}); err == nil {
		t.Error("slot cap not enforced")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig(t, 16, 4, 1)
	flows := genFlows(t, 16, 300, 0.6, 21)
	a, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, genFlows(t, 16, 300, 0.6, 21))
	if err != nil {
		t.Fatal(err)
	}
	if a.SimTime != b.SimTime || a.DeliveredBytes != b.DeliveredBytes ||
		a.Slots != b.Slots || a.DirectFraction != b.DirectFraction {
		t.Error("same seed produced different results")
	}
}

func TestIdleGapSkipping(t *testing.T) {
	// Two flows separated by a long idle gap: the simulator must not
	// grind through millions of idle slots.
	cfg := testConfig(t, 8, 4, 1)
	flows := []workload.Flow{
		{ID: 0, Src: 0, Dst: 3, Bytes: 100, Arrival: 0},
		{ID: 1, Src: 1, Dst: 4, Bytes: 100, Arrival: simtime.Time(10 * simtime.Millisecond)},
	}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d", res.Completed)
	}
	// 10 ms of 100 ns slots is 100,000 slots; with skipping the loop
	// should execute only a tiny fraction.
	if res.Slots > 110_000 {
		t.Errorf("simulated %d slot iterations; idle skipping broken", res.Slots)
	}
	// FCT of the second flow must still be small (measured from its own
	// arrival).
	if res.FCTAll.Max() > 0.05 {
		t.Errorf("FCT = %v ms; arrival-relative timing broken", res.FCTAll.Max())
	}
}

func TestPropertyConservation(t *testing.T) {
	// For random small workloads: every byte offered is delivered, on
	// both modes, and the sim terminates.
	f := func(seed uint64, modeRaw, loadRaw uint8) bool {
		mode := Mode(modeRaw % 2)
		load := 0.2 + float64(loadRaw%7)*0.1
		wcfg := workload.DefaultConfig(8, 200*simtime.Gbps, load, 60)
		wcfg.Seed = seed
		wcfg.MeanFlowBytes = 20e3
		flows, err := workload.Generate(wcfg)
		if err != nil {
			return false
		}
		sched, err := schedule.NewGrouped(8, 4, 1)
		if err != nil {
			return false
		}
		res, err := Run(Config{
			Schedule:      sched,
			Slot:          phy.DefaultSlot(),
			Q:             3,
			Mode:          mode,
			NormalizeRate: 100 * simtime.Gbps,
			Seed:          seed,
		}, flows)
		if err != nil {
			return false
		}
		return res.Completed == len(flows) &&
			res.DeliveredBytes == workload.TotalBytes(flows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFifo(t *testing.T) {
	var q fifo[int32]
	var ar arena[int32]
	if !q.empty() || q.len() != 0 {
		t.Fatal("zero fifo not empty")
	}
	for i := int32(0); i < 1000; i++ {
		q.push(i, &ar)
	}
	for i := int32(0); i < 500; i++ {
		if got := q.pop(&ar); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
	// Interleave to exercise compaction.
	for i := int32(1000); i < 2000; i++ {
		q.push(i, &ar)
	}
	for i := int32(500); i < 2000; i++ {
		if got := q.pop(&ar); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
	if !q.empty() {
		t.Error("fifo not drained")
	}
}

func TestFifoPropertyOrder(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var q fifo[int64]
		var ar arena[int64]
		var pushed, popped int64
		for op := 0; op < 2000; op++ {
			if q.empty() || r.Float64() < 0.55 {
				q.push(pushed, &ar)
				pushed++
			} else {
				if q.pop(&ar) != popped {
					return false
				}
				popped++
			}
		}
		return q.len() == int(pushed-popped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCellRefPacking(t *testing.T) {
	f := func(flow int32, seq int32) bool {
		gf, gs := unpackRef(cellRef(flow, seq))
		return gf == flow && gs == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("pop from empty fifo did not panic")
		}
	}()
	var q fifo[int32]
	var ar arena[int32]
	q.pop(&ar)
}

func TestFailedNodesDetour(t *testing.T) {
	// A failed node costs proportional bandwidth but traffic among
	// survivors still flows.
	cfg := testConfig(t, 16, 4, 1)
	sched, err := schedule.NewDegraded(cfg.Schedule, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Schedule = sched
	cfg.FailedNodes = []int{5}
	var flows []workload.Flow
	id := 0
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst || src == 5 || dst == 5 {
				continue
			}
			flows = append(flows, workload.Flow{ID: id, Src: src, Dst: dst, Bytes: 5000})
			id++
		}
	}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d of %d with a failed node", res.Completed, len(flows))
	}
}

func TestFailedNodeFlowRejected(t *testing.T) {
	cfg := testConfig(t, 16, 4, 1)
	cfg.FailedNodes = []int{3}
	if _, err := Run(cfg, []workload.Flow{{Src: 3, Dst: 1, Bytes: 10}}); err == nil {
		t.Error("flow from failed node accepted")
	}
	if _, err := Run(cfg, []workload.Flow{{Src: 1, Dst: 3, Bytes: 10}}); err == nil {
		t.Error("flow to failed node accepted")
	}
	cfg.FailedNodes = []int{99}
	if _, err := Run(cfg, nil); err == nil {
		t.Error("out-of-range failed node accepted")
	}
}

func TestNoDirectAblation(t *testing.T) {
	cfg := testConfig(t, 16, 4, 1)
	cfg.NoDirect = true
	flows := genFlows(t, 16, 400, 0.5, 17)
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d of %d", res.Completed, len(flows))
	}
	if res.DirectFraction != 0 {
		t.Errorf("direct fraction = %v with NoDirect", res.DirectFraction)
	}
}

func TestInstantControlAblation(t *testing.T) {
	// Oracle control removes the two-epoch startup: a single-cell flow
	// completes strictly faster.
	cfg := testConfig(t, 16, 4, 1)
	flows := []workload.Flow{{ID: 0, Src: 2, Dst: 9, Bytes: 500, Arrival: 0}}
	slow, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	cfg.InstantControl = true
	fast, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if fast.FCTAll.Max() >= slow.FCTAll.Max() {
		t.Errorf("instant control FCT %v not below piggybacked %v",
			fast.FCTAll.Max(), slow.FCTAll.Max())
	}
}

func TestIdealModeWithFailures(t *testing.T) {
	cfg := testConfig(t, 16, 4, 1)
	sched, err := schedule.NewDegraded(cfg.Schedule, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Schedule = sched
	cfg.FailedNodes = []int{2}
	cfg.Mode = ModeIdeal
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: 1, Bytes: 100_000}}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatal("flow incomplete with failed node in ideal mode")
	}
}

func TestDirectModeUniformStillDelivers(t *testing.T) {
	cfg := testConfig(t, 16, 4, 1)
	cfg.Mode = ModeDirect
	flows := genFlows(t, 16, 300, 0.3, 31)
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d of %d", res.Completed, len(flows))
	}
	if res.DirectFraction != 1 {
		t.Errorf("direct fraction = %v, want 1 in direct mode", res.DirectFraction)
	}
}

func TestVLBBeatsDirectOnSkewedTraffic(t *testing.T) {
	// §4.1/§4.2: direct routing caps a pair at k/N of the node bandwidth;
	// VLB spreads a single big transfer across all intermediates. One
	// 2 MB flow finishes far faster with detouring.
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: 9, Bytes: 2 << 20, Arrival: 0}}
	cfg := testConfig(t, 16, 4, 1)
	vlb, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = ModeDirect
	direct, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	speedup := direct.FCTAll.Max() / vlb.FCTAll.Max()
	// A 16-node fabric gives VLB up to ~15x more slots for one pair;
	// protocol overheads eat some of it, but the win must be large.
	if speedup < 4 {
		t.Errorf("VLB speedup over direct = %.1fx, want >= 4x", speedup)
	}
}

func TestElephantExceedsBaseBandwidth(t *testing.T) {
	// With k=3 pair-connections per epoch (1.5x-style provisioning via a
	// rotor), a single flow must sustain more than the baseline node
	// bandwidth — the extra uplinks are usable by one destination.
	sched, err := schedule.NewRotor(16, 6) // E=8, k=3
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Schedule:      sched,
		Slot:          phy.DefaultSlot(),
		Q:             4,
		Mode:          ModeRequestGrant,
		NormalizeRate: 200 * simtime.Gbps, // baseline = 4x50G
		Seed:          5,
	}
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: 9, Bytes: 4 << 20, Arrival: 0}}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(res.DeliveredBytes) * 8 / res.SimTime.Seconds()
	if rate < 150e9 {
		t.Errorf("elephant rate = %.3g bps, want a large fraction of 300G provisioned", rate)
	}
}

func TestInjectRatePacesFlows(t *testing.T) {
	// A 200-cell flow at 2 cells/slot takes at least 100 slots to even
	// enter LOCAL, so its FCT is floored by the intra-rack tier.
	cfg := testConfig(t, 16, 4, 1)
	cfg.InjectRate = 2
	bytes := 200 * 542
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: 9, Bytes: bytes}}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatal("flow incomplete")
	}
	floorMS := 100 * 100e-9 * 1e3 // 100 slots of ~100ns
	if got := res.FCTAll.Max(); got < floorMS {
		t.Errorf("FCT %v ms below the injection floor %v ms", got, floorMS)
	}
	// Without pacing the same flow is much faster.
	cfg.InjectRate = 0
	fast, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if fast.FCTAll.Max() >= res.FCTAll.Max() {
		t.Error("pacing did not slow the flow down")
	}
}

func TestLocalCapBoundsOccupancy(t *testing.T) {
	// With a LOCAL cap, occupancy never exceeds it even under a burst of
	// many flows; everything still delivers (lossless back-pressure).
	cfg := testConfig(t, 16, 4, 1)
	cfg.InjectRate = 8
	cfg.LocalCap = 32
	flows := genFlows(t, 16, 600, 0.9, 77)
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d of %d", res.Completed, len(flows))
	}
	if res.DeliveredBytes != workload.TotalBytes(flows) {
		t.Error("bytes lost under LOCAL cap")
	}
}

func TestLocalCapNeedsInjectRate(t *testing.T) {
	cfg := testConfig(t, 16, 4, 1)
	cfg.LocalCap = 16
	if _, err := Run(cfg, nil); err == nil {
		t.Error("LocalCap without InjectRate accepted")
	}
	cfg.InjectRate = -1
	if _, err := Run(cfg, nil); err == nil {
		t.Error("negative InjectRate accepted")
	}
}

func TestInjectRateFairAcrossFlows(t *testing.T) {
	// Two flows from one node: round-robin injection means the small one
	// is not stuck behind the big one (no FIFO HoL at the rack tier).
	cfg := testConfig(t, 16, 4, 1)
	cfg.InjectRate = 2
	big := 500 * 542
	small := 5 * 542
	flows := []workload.Flow{
		{ID: 0, Src: 0, Dst: 9, Bytes: big},
		{ID: 1, Src: 0, Dst: 10, Bytes: small},
	}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatal("incomplete")
	}
	// The small flow (5 cells at >=1 cell/slot effective share) must
	// finish far sooner than the big one.
	if res.FCTAll.Min() > res.FCTAll.Max()/5 {
		t.Errorf("small flow FCT %v too close to big flow FCT %v",
			res.FCTAll.Min(), res.FCTAll.Max())
	}
}

func TestSlowdownMetric(t *testing.T) {
	cfg := testConfig(t, 16, 4, 1)
	flows := genFlows(t, 16, 300, 0.4, 55)
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown.Count() != len(flows) {
		t.Fatalf("slowdown count = %d", res.Slowdown.Count())
	}
	// No flow can beat the ideal full-bandwidth transmission.
	if res.Slowdown.Min() < 1 {
		t.Errorf("min slowdown = %v < 1", res.Slowdown.Min())
	}
	// The median is within a sane factor at light load.
	if res.Slowdown.Percentile(50) > 1000 {
		t.Errorf("median slowdown = %v, implausible", res.Slowdown.Percentile(50))
	}
}

func TestPermutationTrafficVLB(t *testing.T) {
	// Permutation traffic — each node sends to exactly one other — is
	// pathological for direct TDMA routing (each pair owns only k/N of
	// the bandwidth) and exactly what VLB fixes. With VLB the fixed
	// permutation drains near node bandwidth; direct-only crawls.
	nodes := 16
	wcfg := workload.DefaultConfig(nodes, 200*simtime.Gbps, 0.7, 400)
	wcfg.Pattern = workload.Permutation
	wcfg.Seed = 4
	flows, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, nodes, 4, 1)
	vlb, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = ModeDirect
	direct, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if vlb.GoodputNorm < 3*direct.GoodputNorm {
		t.Errorf("VLB goodput %v should be >= 3x direct-only %v on permutation traffic",
			vlb.GoodputNorm, direct.GoodputNorm)
	}
}

func TestIdealModeWithInjectRate(t *testing.T) {
	// The intra-rack pacing composes with the ideal back-pressure mode.
	cfg := testConfig(t, 16, 4, 1)
	cfg.Mode = ModeIdeal
	cfg.InjectRate = 4
	cfg.LocalCap = 64
	flows := genFlows(t, 16, 300, 0.6, 23)
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d of %d", res.Completed, len(flows))
	}
}

func TestRunContextCancel(t *testing.T) {
	cfg := testConfig(t, 16, 4, 1)
	flows := genFlows(t, 16, 2000, 0.9, 1)

	// Already-cancelled context: the run aborts at the first epoch
	// boundary and reports the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, cfg, flows); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}

	// A live context behaves exactly like Run.
	want, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if got.Completed != want.Completed || got.DeliveredBytes != want.DeliveredBytes ||
		got.Slots != want.Slots {
		t.Errorf("RunContext diverged from Run: %+v vs %+v", got, want)
	}
}
