package core

// fifo is a growable FIFO with amortized O(1) push/pop and lazy head
// compaction. The zero value is an empty queue. Element types are the two
// the simulator uses: int32 for flow/destination ids and int64 for packed
// (flow, seq) cell references.
type fifo[T int32 | int64] struct {
	items []T
	head  int
}

func (q *fifo[T]) push(v T) {
	// Reclaim the dead prefix when it dominates the backing array.
	if q.head > 64 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	q.items = append(q.items, v)
}

func (q *fifo[T]) pop() T {
	if q.head >= len(q.items) {
		panic("core: pop from empty fifo")
	}
	v := q.items[q.head]
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

func (q *fifo[T]) len() int { return len(q.items) - q.head }

func (q *fifo[T]) empty() bool { return q.head >= len(q.items) }

// cellRef packs a flow id and an intra-flow sequence number into one
// queue entry.
func cellRef(flow int32, seq int32) int64 { return int64(flow)<<32 | int64(uint32(seq)) }

func unpackRef(ref int64) (flow int32, seq int32) {
	return int32(ref >> 32), int32(uint32(ref))
}
