package core

import "math/bits"

// arena is a free-list slab allocator for fifo backing segments. Segments
// are power-of-two sized and binned by their log2 capacity, so a segment
// released by one queue (on growth, or when a large queue drains) is
// reused verbatim by the next queue that grows into that size class.
//
// The simulator keeps n*n destination/forward queues whose occupancy
// follows the traffic; without recycling, every queue retains its own
// high-water-mark array and the total footprint is the *sum* of
// high-water marks. With the arena it is the *peak concurrent* cell
// population, and — the property the steady-state zero-allocation
// contract relies on — once every size class has seen its peak, growth
// and drain cycles perform no heap allocations at all.
type arena[T int32 | int64] struct {
	classes [28][][]T // free segments, indexed by log2(cap)
	block   []T       // bump-allocation chunk for fresh small segments
}

// arenaChunk is the element count of a bump chunk. Fresh segments up to
// this size are carved out of one large allocation instead of being
// malloc'd individually: a simulator with n*n queues seeds tens of
// thousands of 8..256-element segments during warm-up, and carving turns
// those into a handful of chunk allocations.
const arenaChunk = 1 << 14

// get returns an empty segment with capacity >= n (a power of two,
// minimum 8), reusing a free segment when one is available.
func (a *arena[T]) get(n int) []T {
	c := 3 // minimum class: cap 8
	if n > 8 {
		c = bits.Len(uint(n - 1)) // ceil(log2(n))
	}
	if free := a.classes[c]; len(free) > 0 {
		seg := free[len(free)-1]
		free[len(free)-1] = nil
		a.classes[c] = free[:len(free)-1]
		return seg
	}
	size := 1 << uint(c)
	if size <= arenaChunk {
		if len(a.block) < size {
			a.block = make([]T, arenaChunk)
		}
		// Full-slice expression caps the segment at its class size, so
		// append growth can never bleed into a neighboring segment.
		seg := a.block[0:0:size]
		a.block = a.block[size:]
		return seg
	}
	return make([]T, 0, size)
}

// put releases a segment for reuse. Only power-of-two capacities (the
// ones get hands out) are banked; anything else is left to the GC.
func (a *arena[T]) put(seg []T) {
	c := cap(seg)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cl := bits.Len(uint(c)) - 1
	if cl >= len(a.classes) {
		return
	}
	a.classes[cl] = append(a.classes[cl], seg[:0])
}

// releaseCap is the backing capacity above which a fifo returns its
// segment to the arena when it drains; smaller queues keep theirs so
// tightly oscillating queues do no free-list traffic at all.
const releaseCap = 256

// fifo is a growable FIFO with amortized O(1) push/pop. The zero value is
// an empty queue. Backing segments come from (and return to) an arena:
// growth swaps to a recycled double-size segment, and draining a large
// queue releases its segment for other queues to reuse. Element types are
// the two the simulator uses: int32 for flow/destination ids and int64
// for packed (flow, seq) cell references.
type fifo[T int32 | int64] struct {
	items []T
	head  int
}

func (q *fifo[T]) push(v T, a *arena[T]) {
	if len(q.items) == cap(q.items) {
		live := len(q.items) - q.head
		switch {
		case q.head > 0 && q.head >= live:
			// The dead prefix dominates: compact in place, no allocation.
			n := copy(q.items, q.items[q.head:])
			q.items = q.items[:n]
			q.head = 0
		default:
			// Grow through the arena and release the old segment.
			grown := a.get(2*cap(q.items) + 8)
			grown = grown[:live]
			copy(grown, q.items[q.head:])
			a.put(q.items)
			q.items = grown
			q.head = 0
		}
	}
	q.items = append(q.items, v)
}

func (q *fifo[T]) pop(a *arena[T]) T {
	if q.head >= len(q.items) {
		panic("core: pop from empty fifo")
	}
	v := q.items[q.head]
	q.head++
	if q.head == len(q.items) {
		if cap(q.items) > releaseCap {
			a.put(q.items)
			q.items = nil
		} else {
			q.items = q.items[:0]
		}
		q.head = 0
	}
	return v
}

func (q *fifo[T]) len() int { return len(q.items) - q.head }

// peek returns the head element without removing it. The sharded engine's
// affected-set screen uses it to inspect the cell a VOQ would transmit
// next slot.
func (q *fifo[T]) peek() T { return q.items[q.head] }

func (q *fifo[T]) empty() bool { return q.head >= len(q.items) }

// cellRef packs a flow id and an intra-flow sequence number into one
// queue entry.
func cellRef(flow int32, seq int32) int64 { return int64(flow)<<32 | int64(uint32(seq)) }

func unpackRef(ref int64) (flow int32, seq int32) {
	return int32(ref >> 32), int32(uint32(ref))
}
