package core

// Sharded epoch boundary. The profile at n=1024 puts most of an epoch's
// cost in three places: the per-source demand enumeration, registering
// the issued requests into the per-intermediate request sets, and
// delivering grants into VOQs. All three partition cleanly (by source,
// by intermediate, by source); only the RNG-bearing skeleton — request
// issue and grant picks — stays serial, which is what keeps the draw
// sequence, and therefore every fixed-seed result, byte-identical to the
// serial engine (see congestion.IssueRequestsEmit).

func (s *sim) epochBoundarySharded() {
	eng := s.sh
	switch s.cfg.Mode {
	case ModeRequestGrant:
		// Demand content is unaffected by anything the boundary itself
		// does (grant delivery consumes LOCAL cells only after the serial
		// reference evaluated demand too), so it is precomputed up front,
		// in parallel by source ownership.
		eng.runPhase(phDemand)
		cc := s.cc
		if cc.InstantEnabled() {
			// Serial reference order: issue, process, deliver.
			eng.reqLog = eng.reqLog[:0]
			cc.IssueRequestsEmit(eng.demandOfFn, eng.emitReqFn)
			eng.runPhase(phScatter)
			cc.ProcessRequestsPhase()
			eng.gs = cc.SwapGrantedPhase()
			eng.runPhase(phGrants)
			eng.applyUnused()
		} else {
			// Serial reference order: deliver, process, issue. Grant
			// delivery is hoisted before issue — legal because issue
			// reads only the (precomputed) demand and the RNG, neither of
			// which delivery touches.
			eng.gs = cc.SwapGrantedPhase()
			cc.ProcessRequestsPhase()
			eng.runPhase(phGrants)
			eng.applyUnused()
			eng.reqLog = eng.reqLog[:0]
			cc.IssueRequestsEmit(eng.demandOfFn, eng.emitReqFn)
			eng.runPhase(phScatter)
		}
	case ModeDirect:
		eng.runPhase(phDirect)
	case ModeIdeal:
		// The O(n) per-node VOQ budget scans move off the serial path;
		// the pulls themselves stay serial (they share the idealQ
		// back-pressure state across nodes in rotating order) but consume
		// the precomputed budgets.
		eng.runPhase(phIdealTotals)
		s.idealPullAllSh()
	}
	s.epoch++
}

// phaseDemand precomputes every owned node's request demand into the
// shard's flat buffer, replicating demand()'s enumeration (including the
// demandStart bump for idle nodes) exactly.
func (eng *shardEng) phaseDemand(k int) {
	s := eng.s
	st := &eng.sh[k]
	st.demandFlat = st.demandFlat[:0]
	cands, counts := st.demandCands, st.demandCounts
	lo, hi := int(eng.bounds[k]), int(eng.bounds[k+1])
	for node := lo; node < hi; node++ {
		off := len(st.demandFlat)
		st.demandFlat, cands, counts = s.demandScan(node, st.demandFlat, cands[:0], counts[:0])
		eng.demandOff[node] = int32(off)
		eng.demandLen[node] = int32(len(st.demandFlat) - off)
	}
	st.demandCands, st.demandCounts = cands, counts
}

// phaseScatter registers the serially emitted requests, partitioned by
// intermediate ownership; within one via the log scan preserves emission
// order, which the request sets' determinism requires.
func (eng *shardEng) phaseScatter(k int) {
	s := eng.s
	lo, hi := eng.bounds[k], eng.bounds[k+1]
	for i := range eng.reqLog {
		r := &eng.reqLog[i]
		if r.via >= lo && r.via < hi {
			s.cc.ApplyRequest(r.via, r.dst, r.src)
		}
	}
}

// phaseGrants delivers this epoch's grants for the shard's sources:
// consume from LOCAL, push to the granted VOQ, account. Releasing grants
// whose LOCAL queue drained touches the intermediate's row, so those are
// logged and applied serially after the barrier (applyUnused) — the
// release is commutative, only its memory ownership isn't.
func (eng *shardEng) phaseGrants(k int) {
	s := eng.s
	st := &eng.sh[k]
	lo, hi := int(eng.bounds[k]), int(eng.bounds[k+1])
	for src := lo; src < hi; src++ {
		for _, g := range eng.gs[src] {
			st.grantsIssued++
			if s.byDst[g.Src*s.n+g.Dst].empty() {
				st.unused = append(st.unused, uint64(g.Via)<<32|uint64(uint32(g.Dst)))
				st.grantsUnused++
				continue
			}
			ref := eng.consumeSh(g.Src, g.Dst, &st.ar32)
			eng.voqPushSh(g.Src*s.n+g.Via, ref, &st.ar64)
			eng.workIncSh(g.Src)
		}
	}
}

func (eng *shardEng) applyUnused() {
	for k := range eng.sh {
		st := &eng.sh[k]
		for _, packed := range st.unused {
			eng.s.cc.OnGrantUnused(int(packed>>32), int(uint32(packed)))
		}
		st.unused = st.unused[:0]
	}
}

// phaseDirect is the ModeDirect boundary for the shard's nodes: purely
// node-local, so it parallelizes exactly.
func (eng *shardEng) phaseDirect(k int) {
	s := eng.s
	st := &eng.sh[k]
	lo, hi := int(eng.bounds[k]), int(eng.bounds[k+1])
	for node := s.localActive.nextIn(lo, hi); node >= 0; node = s.localActive.nextIn(node+1, hi) {
		base := node * s.n
		row := s.dstRow(node)
		for dst := row.next(0); dst >= 0; dst = row.next(dst + 1) {
			q := &s.byDst[base+dst]
			for !q.empty() {
				ref := eng.consumeSh(node, dst, &st.ar32)
				eng.voqPushSh(base+dst, ref, &st.ar64)
				eng.workIncSh(node)
			}
		}
	}
}

// phaseIdealTotals precomputes each owned node's epoch VOQ top-up budget.
// A node's VOQ row is only ever pushed by its own pull, so budgets read
// before any pull equal the budgets the serial code computes at the
// node's own turn.
func (eng *shardEng) phaseIdealTotals(k int) {
	s := eng.s
	lo, hi := int(eng.bounds[k]), int(eng.bounds[k+1])
	kk := s.k
	for node := s.localActive.nextIn(lo, hi); node >= 0; node = s.localActive.nextIn(node+1, hi) {
		base := node * s.n
		total := 0
		for via := 0; via < s.n; via++ {
			if via == node {
				continue
			}
			if b := kk - s.voq[base+via].len(); b > 0 {
				total += b
			}
		}
		eng.totals[node] = int32(total)
	}
}

// idealPullAllSh runs the serial pulls in the serial rotating order,
// consuming the precomputed budgets.
func (s *sim) idealPullAllSh() {
	start := int(s.epoch % int64(s.n))
	for node := s.localActive.next(start); node >= 0; node = s.localActive.next(node + 1) {
		s.idealPullSh(node)
	}
	for node := s.localActive.next(0); node >= 0 && node < start; node = s.localActive.next(node + 1) {
		s.idealPullSh(node)
	}
}

// idealPullSh is idealPull with the per-via budget derived on the fly
// from VOQ occupancy (budget ≡ k − len, kept in sync automatically by the
// pushes) instead of the serial scratch array; the candidate rotation,
// pull order and back-pressure tests are identical.
func (s *sim) idealPullSh(node int) {
	if s.localCount[node] == 0 {
		return
	}
	total := int(s.sh.totals[node])
	if total == 0 {
		return
	}
	base := node * s.n
	cands := s.cands[:0]
	start := s.rrDst[node] % s.n
	s.rrDst[node]++
	row := s.dstRow(node)
	for d := row.next(start); d >= 0; d = row.next(d + 1) {
		cands = append(cands, int32(d))
	}
	for d := row.next(0); d >= 0 && d < start; d = row.next(d + 1) {
		cands = append(cands, int32(d))
	}
	for total > 0 && len(cands) > 0 {
		w := 0
		for _, d32 := range cands {
			d := int(d32)
			via, ok := s.findViaSh(node, d)
			if !ok {
				continue
			}
			s.voqPush(base+via, s.consume(node, d))
			s.workInc(node)
			s.idealQ[via*s.n+d]++
			total--
			if total == 0 {
				break
			}
			if !s.byDst[base+d].empty() {
				cands[w] = d32
				w++
			}
		}
		if w == 0 {
			break
		}
		cands = cands[:w]
	}
	s.cands = cands[:0]
}

// findViaSh is findVia with the budget test k−len(voq) ≤ 0 replacing the
// scratch-array countdown — equivalent because pushes grow len in
// lockstep with the serial decrement.
func (s *sim) findViaSh(node, d int) (int, bool) {
	ptr := int(s.viaPtr[node*s.n+d])
	failed := s.failed
	noDirect := s.cfg.NoDirect
	base := node * s.n
	for j := 0; j < s.n; j++ {
		via := (ptr + j) % s.n
		if via == node || s.k-s.voq[base+via].len() <= 0 ||
			(failed != nil && failed[via]) || (noDirect && via == d) {
			continue
		}
		if via != d && s.idealQ[via*s.n+d] >= s.qk {
			continue
		}
		s.viaPtr[node*s.n+d] = int32(via + 1)
		return via, true
	}
	return 0, false
}

// consumeSh is consume with an atomic node-active clear (the word is
// shared across shards) and the shard's own arena.
func (eng *shardEng) consumeSh(node, dst int, a *arena[int32]) int64 {
	s := eng.s
	q := &s.byDst[node*s.n+dst]
	f := q.pop(a)
	if q.empty() {
		s.dstRow(node).clear(dst)
	}
	s.localCount[node]--
	if s.localCount[node] == 0 {
		s.localActive.clearAtomic(node)
	}
	seq := s.consumed[f]
	s.consumed[f]++
	return cellRef(f, seq)
}

// voqPushSh is voqPush with an atomic pair-active set and the shard's
// own arena.
func (eng *shardEng) voqPushSh(idx int, ref int64, a *arena[int64]) {
	s := eng.s
	s.voq[idx].push(ref, a)
	s.txActive.setAtomic(idx)
}
