package core

import (
	"strconv"

	"sirius/internal/telemetry"
)

// flushTelemetry publishes the run's accumulated plain-int counters
// into the process-wide telemetry registry. It runs once per Run —
// never on the hot path — so the GetOrCreate map lookups and the
// strconv label rendering are off the zero-alloc slot loop entirely;
// the loop itself only bumps plain int64 fields/slices.
//
// Instrumentation is observe-only: nothing here feeds back into
// simulation state, so fixed-seed outputs are byte-identical with or
// without a telemetry consumer (pinned by the golden fixtures).
func (s *sim) flushTelemetry(slots int64) {
	reg := telemetry.Default
	reg.Counter("sirius_core_runs_total").Inc()
	reg.Counter("sirius_core_cells_delivered_total").Add(s.delivered)
	reg.Counter("sirius_core_slots_total").Add(slots)
	reg.Counter("sirius_core_direct_cells_total").Add(s.direct)
	reg.Counter("sirius_core_epochs_total").Add(s.epoch)
	if s.grantsIssued > 0 {
		reg.Counter("sirius_core_grants_total").Add(s.grantsIssued)
		reg.Counter("sirius_core_grants_unused_total").Add(s.grantsUnused)
	}
	if s.localStalls > 0 {
		reg.Counter("sirius_core_guardband_stalls_total").Add(s.localStalls)
	}
	if s.reconfigSlots > 0 {
		reg.Counter("sirius_core_reconfig_linkslots_total").Add(s.reconfigSlots)
	}
	for u := 0; u < s.uplinks; u++ {
		lbl := strconv.Itoa(u)
		if s.upTx[u] > 0 {
			reg.Counter("sirius_core_uplink_cells_total", "uplink", lbl).Add(s.upTx[u])
		}
		if s.upIdle[u] > 0 {
			reg.Counter("sirius_core_uplink_idle_slots_total", "uplink", lbl).Add(s.upIdle[u])
		}
	}
	if s.reorder != nil {
		reg.Gauge("sirius_core_peak_reorder_bytes").SetInt(int64(s.peakReorder))
	}
	// FCT histogram: observed at flush (the per-flow fct slice already
	// exists), keeping even histogram CAS traffic off the slot loop.
	h := reg.Histogram("sirius_core_fct_ms")
	for i := range s.fct {
		if s.fct[i] >= 0 {
			h.Observe(s.fct[i].Seconds() * 1e3)
		}
	}
}
