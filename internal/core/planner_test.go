package core

import (
	"encoding/json"
	"fmt"
	"testing"

	"sirius/internal/phy"
	"sirius/internal/sched"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// goldenPlanner builds a fresh planner instance for the golden fixture
// grid (16 nodes, 4 uplinks, 4-slot epochs, matching the static golden
// geometry). Fresh per call: a Planner must not be shared between runs
// that could interleave.
func goldenPlanner(family string) Planner {
	mustNil := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	switch family {
	case "static":
		g, err := schedule.NewGrouped(16, 4, 1)
		mustNil(err)
		return sched.NewStatic(g)
	case "rotor":
		r, err := sched.NewRotorRR(16, 4, 4, 1)
		mustNil(err)
		return r
	case "pulse":
		p, err := sched.NewPULSE(16, 4, 4, 1, 0)
		mustNil(err)
		return p
	case "negotiator":
		g, err := sched.NewNegotiaToR(16, 4, 4, 1, 0)
		mustNil(err)
		return g
	}
	panic("unknown planner family " + family)
}

// TestPlannerConfigValidation pins the Schedule/Planner exclusivity
// contract.
func TestPlannerConfigValidation(t *testing.T) {
	cfg, flows := goldenCase(t, func(c *Config) {})
	cfg.Planner = goldenPlanner("static")
	if _, err := Run(cfg, flows); err == nil {
		t.Fatal("both Schedule and Planner accepted")
	}
	cfg.Schedule, cfg.Planner = nil, nil
	if _, err := Run(cfg, flows); err == nil {
		t.Fatal("neither Schedule nor Planner rejected")
	}
}

// TestStaticPlannerMatchesSchedule is the adapter equivalence proof: a
// run driven by Planner = sched.NewStatic(s) is byte-identical to the
// same run driven by Schedule = s, in every mode and in both engines.
// The dynamic path is a strict generalization of the static one.
func TestStaticPlannerMatchesSchedule(t *testing.T) {
	for _, mode := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"requestgrant", func(c *Config) {}},
		{"ideal", func(c *Config) { c.Mode = ModeIdeal }},
		{"direct", func(c *Config) { c.Mode = ModeDirect }},
	} {
		for _, shards := range []int{0, 4} {
			t.Run(fmt.Sprintf("%s/shards%d", mode.name, shards), func(t *testing.T) {
				cfg, flows := goldenCase(t, mode.mutate)
				cfg.Shards = shards
				ser, rs := runSim(t, cfg, flows)

				pcfg := cfg
				pcfg.Schedule = nil
				pcfg.Planner = goldenPlanner("static")
				dyn, rp := runSim(t, pcfg, flows)
				if rp.ReconfigLinkSlots != 0 {
					t.Fatalf("static planner charged %d reconfig link-slots", rp.ReconfigLinkSlots)
				}
				diffSims(t, ser, dyn, rs, rp)
			})
		}
	}
}

// TestPlannerFamiliesComplete runs each dynamic family end to end in its
// natural mode and sanity-checks the reconfiguration accounting.
func TestPlannerFamiliesComplete(t *testing.T) {
	for _, tc := range []struct {
		family      string
		mode        Mode
		wantRecfg   bool
		wantAllDone bool
	}{
		{"rotor", ModeIdeal, true, true},
		{"pulse", ModeDirect, true, true},
		{"negotiator", ModeDirect, true, true},
	} {
		t.Run(tc.family, func(t *testing.T) {
			cfg, flows := goldenCase(t, func(c *Config) {})
			cfg.Schedule = nil
			cfg.Planner = goldenPlanner(tc.family)
			cfg.Mode = tc.mode
			res, err := Run(cfg, flows)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantAllDone && res.Completed != res.Flows {
				t.Fatalf("completed %d/%d flows", res.Completed, res.Flows)
			}
			if tc.wantRecfg && res.ReconfigLinkSlots == 0 {
				t.Fatal("no reconfiguration overhead recorded")
			}
			budget := res.Slots * int64(cfg.Planner.Nodes()) * int64(cfg.Planner.Uplinks())
			if res.ReconfigLinkSlots < 0 || res.ReconfigLinkSlots > budget {
				t.Fatalf("reconfig link-slots %d outside [0, %d]", res.ReconfigLinkSlots, budget)
			}
		})
	}
}

// TestShardedDifferentialSched is the dynamic-planner counterpart of
// TestShardedDifferential: every scheduler family, two fabric sizes and
// seeds, diffed field-by-field between the serial and sharded engines
// across shard counts that split bitset words and exceed the clamp.
func TestShardedDifferentialSched(t *testing.T) {
	mustPlanner := func(p Planner, err error) Planner {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	grids := []struct {
		name    string
		planner func(n, up, slots int) Planner
		mode    Mode
	}{
		{"static_grouped", func(n, up, slots int) Planner {
			g, err := schedule.NewGrouped(n, slots, 1)
			return mustPlanner(sched.NewStatic(g), err)
		}, ModeRequestGrant},
		{"rotorrr", func(n, up, slots int) Planner {
			return mustPlanner(sched.NewRotorRR(n, up, slots, 1))
		}, ModeIdeal},
		{"pulse", func(n, up, slots int) Planner {
			return mustPlanner(sched.NewPULSE(n, up, slots, 1, 0))
		}, ModeDirect},
		{"negotiator", func(n, up, slots int) Planner {
			return mustPlanner(sched.NewNegotiaToR(n, up, slots, 1, 0))
		}, ModeDirect},
	}
	sizes := []struct{ n, up, slots, flows int }{
		{16, 4, 4, 300},
		{48, 6, 8, 600},
	}
	for _, g := range grids {
		for _, sz := range sizes {
			for _, seed := range []uint64{1, 2} {
				wcfg := workload.DefaultConfig(sz.n, 100*simtime.Gbps, 0.8, sz.flows)
				wcfg.Seed = seed
				flows, err := workload.Generate(wcfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg := Config{
					Planner:       g.planner(sz.n, sz.up, sz.slots),
					Slot:          phy.DefaultSlot(),
					Q:             4,
					Mode:          g.mode,
					NormalizeRate: 100 * simtime.Gbps,
					Seed:          seed * 31,
					KeepPerFlow:   true,
				}
				ser, rs := runSim(t, cfg, flows)
				for _, shards := range []int{2, 3, 4, 64} {
					t.Run(fmt.Sprintf("%s/n%d/seed%d/shards%d", g.name, sz.n, seed, shards), func(t *testing.T) {
						scfg := cfg
						scfg.Shards = shards
						sh, rp := runSim(t, scfg, flows)
						if sh.sh == nil {
							t.Fatal("sharded engine not engaged (fell back to serial)")
						}
						diffSims(t, ser, sh, rs, rp)
					})
				}
			}
		}
	}
}

// TestPlannerReplaysInProcess guards the Reset contract: reusing one
// planner instance across sequential runs must reproduce the first
// run's results exactly.
func TestPlannerReplaysInProcess(t *testing.T) {
	for _, family := range []string{"rotor", "pulse", "negotiator"} {
		t.Run(family, func(t *testing.T) {
			cfg, flows := goldenCase(t, func(c *Config) {})
			cfg.Schedule = nil
			cfg.Planner = goldenPlanner(family)
			if family == "rotor" {
				cfg.Mode = ModeIdeal
			} else {
				cfg.Mode = ModeDirect
			}
			r1, err := Run(cfg, flows)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(cfg, flows)
			if err != nil {
				t.Fatal(err)
			}
			a, _ := json.Marshal(summarize(r1))
			b, _ := json.Marshal(summarize(r2))
			if string(a) != string(b) {
				t.Fatalf("replay with reused planner diverged\nfirst:  %s\nsecond: %s", a, b)
			}
			if r1.ReconfigLinkSlots != r2.ReconfigLinkSlots {
				t.Fatalf("reconfig accounting diverged: %d vs %d", r1.ReconfigLinkSlots, r2.ReconfigLinkSlots)
			}
		})
	}
}
