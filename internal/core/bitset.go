package core

import (
	"math/bits"
	"sync/atomic"
)

// bitset is a dense index over node or destination ids. The hot loops use
// it as their active set: iteration cost scales with the number of set
// bits (plus one word-scan per 64 ids), not with the topology size.
//
// Iteration via next re-reads the underlying word on every call, so a bit
// set or cleared *behind* the cursor during iteration is skipped and one
// *ahead* of it is picked up — exactly the semantics of the ascending
// index scans with per-element occupancy checks that these sets replace.
// That equivalence is what keeps the optimized simulator byte-identical
// to the reference implementation (see the golden determinism tests).
type bitset []uint64

const wordBits = 64

// bitsetWords returns the number of words needed for n bits.
func bitsetWords(n int) int { return (n + wordBits - 1) / wordBits }

func newBitset(n int) bitset { return make(bitset, bitsetWords(n)) }

func (b bitset) set(i int)   { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// next returns the smallest set bit >= i, or -1 when there is none.
func (b bitset) next(i int) int {
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(b) {
		return -1
	}
	if m := b[w] & (^uint64(0) << (uint(i) & 63)); m != 0 {
		return w<<6 + bits.TrailingZeros64(m)
	}
	for w++; w < len(b); w++ {
		if b[w] != 0 {
			return w<<6 + bits.TrailingZeros64(b[w])
		}
	}
	return -1
}

// Atomic variants for the sharded engine (shard.go): shard node ranges are
// contiguous but not word-aligned, so two shards may own bits of the same
// word. Each shard only *acts* on bits inside its own range — concurrent
// mutations are confined to foreign ranges, so masked reads stay
// deterministic — but the word-level accesses must be atomic to be a
// defined program. Serial phases (coordinator-only, separated from the
// parallel phases by barriers) keep using the plain methods above.

func (b bitset) setAtomic(i int) {
	addr, mask := &b[i>>6], uint64(1)<<(uint(i)&63)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 || atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return
		}
	}
}

func (b bitset) clearAtomic(i int) {
	addr, mask := &b[i>>6], uint64(1)<<(uint(i)&63)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask == 0 || atomic.CompareAndSwapUint64(addr, old, old&^mask) {
			return
		}
	}
}

func (b bitset) hasAtomic(i int) bool {
	return atomic.LoadUint64(&b[i>>6])&(1<<(uint(i)&63)) != 0
}

// nextIn returns the smallest set bit in [i, hi), reading words
// atomically, or -1 when there is none. It is the sharded slot loop's
// range-bounded iterator over shared active sets.
func (b bitset) nextIn(i, hi int) int {
	if i < 0 {
		i = 0
	}
	for i < hi {
		w := i >> 6
		m := atomic.LoadUint64(&b[w]) & (^uint64(0) << (uint(i) & 63))
		if m != 0 {
			j := w<<6 + bits.TrailingZeros64(m)
			if j >= hi {
				return -1
			}
			return j
		}
		i = (w + 1) << 6
	}
	return -1
}
