package core

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sirius/internal/phy"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// The golden determinism tests pin the simulator's observable output for
// every operating mode at a fixed seed. The fixtures under testdata/ were
// generated before the active-set / zero-allocation rework of the hot
// path, so a passing run proves the optimized simulator is byte-identical
// to the reference implementation — the PR's hard constraint.
//
// Regenerate (only when an intentional semantic change is made) with:
//
//	go test ./internal/core -run TestGolden -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden determinism fixtures")

// goldenSummary is the canonical, JSON-stable projection of Results used
// by the fixtures. Float64 values marshal as shortest round-trip decimals,
// so equal simulations produce byte-equal fixtures.
type goldenSummary struct {
	Flows              int
	Completed          int
	SimTimeNS          int64
	Slots              int64
	DeliveredBytes     int64
	GoodputNorm        float64
	MakespanGoodput    float64
	FCTAllCount        int
	FCTAllMean         float64
	FCTAllP50          float64
	FCTAllP99          float64
	FCTShortCount      int
	FCTShortP99        float64
	SlowdownMean       float64
	SlowdownP99        float64
	PeakNodeQueueBytes int
	PeakReorderBytes   int
	DirectFraction     float64
	PerFlowFCTSum      int64
}

func summarize(res *Results) goldenSummary {
	g := goldenSummary{
		Flows:              res.Flows,
		Completed:          res.Completed,
		SimTimeNS:          int64(res.SimTime),
		Slots:              res.Slots,
		DeliveredBytes:     res.DeliveredBytes,
		GoodputNorm:        res.GoodputNorm,
		MakespanGoodput:    res.MakespanGoodput,
		FCTAllCount:        res.FCTAll.Count(),
		FCTAllMean:         res.FCTAll.Mean(),
		FCTAllP50:          res.FCTAll.Percentile(50),
		FCTAllP99:          res.FCTAll.Percentile(99),
		FCTShortCount:      res.FCTShort.Count(),
		FCTShortP99:        res.FCTShort.Percentile(99),
		SlowdownMean:       res.Slowdown.Mean(),
		SlowdownP99:        res.Slowdown.Percentile(99),
		PeakNodeQueueBytes: res.PeakNodeQueueBytes,
		PeakReorderBytes:   res.PeakReorderBytes,
		DirectFraction:     res.DirectFraction,
	}
	for _, fct := range res.PerFlowFCT {
		g.PerFlowFCTSum += int64(fct)
	}
	return g
}

// goldenCase builds one fixed workload + config pair. Everything is
// derived from constants so the only degree of freedom is the code.
func goldenCase(t *testing.T, mutate func(*Config)) (Config, []workload.Flow) {
	t.Helper()
	sched, err := schedule.NewGrouped(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig(16, 200*simtime.Gbps, 0.75, 400)
	wcfg.Seed = 7
	flows, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Schedule:      sched,
		Slot:          phy.DefaultSlot(),
		Q:             4,
		NormalizeRate: 200 * simtime.Gbps,
		Seed:          42,
		KeepPerFlow:   true,
	}
	mutate(&cfg)
	return cfg, flows
}

// goldenCases is the fixture grid, shared with the sharded byte-identity
// tests (shard_test.go). The sched_* cases drive the dynamic-planner
// path (Config.Planner) through each scheduler family in its natural
// operating mode; their mutate builds a fresh planner per call so no
// cross-run state can leak between tests.
func goldenCases() []struct {
	name   string
	mutate func(*Config)
} {
	return []struct {
		name   string
		mutate func(*Config)
	}{
		{"requestgrant", func(c *Config) {}},
		{"ideal", func(c *Config) { c.Mode = ModeIdeal }},
		{"direct", func(c *Config) { c.Mode = ModeDirect }},
		{"paced", func(c *Config) { c.InjectRate = 4; c.LocalCap = 64 }},
		{"reorder", func(c *Config) { c.TrackReorder = true }},
		{"nodirect_instant", func(c *Config) { c.NoDirect = true; c.InstantControl = true }},
		{"sched_static", func(c *Config) { c.Schedule, c.Planner = nil, goldenPlanner("static") }},
		{"sched_rotor", func(c *Config) {
			c.Schedule, c.Planner = nil, goldenPlanner("rotor")
			c.Mode = ModeIdeal
		}},
		{"sched_pulse", func(c *Config) {
			c.Schedule, c.Planner = nil, goldenPlanner("pulse")
			c.Mode = ModeDirect
		}},
		{"sched_negotiator", func(c *Config) {
			c.Schedule, c.Planner = nil, goldenPlanner("negotiator")
			c.Mode = ModeDirect
		}},
	}
}

func TestGoldenDeterminism(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			cfg, flows := goldenCase(t, tc.mutate)
			res, err := Run(cfg, flows)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(summarize(res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden_"+tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden fixture missing (run with -update-golden): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("results diverge from the golden fixture %s\n got: %s\nwant: %s",
					path, got, want)
			}
			// A second run in the same process must be byte-identical too
			// (no hidden global state).
			res2, err := Run(cfg, flows)
			if err != nil {
				t.Fatal(err)
			}
			got2, err := json.MarshalIndent(summarize(res2), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if string(append(got2, '\n')) != string(got) {
				t.Error("re-run in the same process diverged")
			}
		})
	}
}
