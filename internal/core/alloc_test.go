//go:build !race

// The steady-state allocation tests are skipped under the race detector:
// its instrumentation changes the allocation behavior testing.AllocsPerRun
// observes. The CI benchmark-smoke job runs them without -race.

package core

import (
	"context"
	"testing"

	"sirius/internal/phy"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// stepDriver builds a warmed simulator and returns a closure advancing one
// slot, mirroring the slot loop in run().
func stepDriver(t *testing.T, mutate func(*Config)) (s *sim, stepOnce func()) {
	t.Helper()
	sched, err := schedule.NewGrouped(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig(16, 200*simtime.Gbps, 0.75, 4000)
	wcfg.Seed = 7
	flows, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Schedule:      sched,
		Slot:          phy.DefaultSlot(),
		Q:             4,
		NormalizeRate: 200 * simtime.Gbps,
		Seed:          42,
	}
	mutate(&cfg)
	s, err = newSim(context.Background(), cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if s.sh != nil {
		s.sh.start()
		t.Cleanup(s.sh.stop)
	}
	// Inject the whole workload up front so the system stays busy for the
	// duration of the measurement.
	for f := range flows {
		s.inject(int32(f))
	}
	slotDur := cfg.Slot.Duration()
	epochE := int64(s.epochE)
	var slot int64
	return s, func() {
		now := simtime.Time(slot * int64(slotDur))
		if s.pendingQ != nil && s.pendingOut > 0 {
			s.drainPending()
		}
		if s.sh != nil {
			s.stepSharded(int(slot%epochE), now.Add(slotDur))
		} else {
			s.step(int(slot%epochE), now.Add(slotDur))
		}
		slot++
	}
}

// TestRunSteadyStateZeroAlloc pins the zero-allocation contract of the hot
// path: once every fifo size class has seen its peak and the congestion
// controller's grant buffers have grown to their high-water mark, a slot
// performs no heap allocations in any operating mode.
func TestRunSteadyStateZeroAlloc(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		warm   int
	}{
		{"requestgrant", func(c *Config) {}, 4000},
		{"ideal", func(c *Config) { c.Mode = ModeIdeal }, 4000},
		{"direct", func(c *Config) { c.Mode = ModeDirect }, 4000},
		{"paced", func(c *Config) { c.InjectRate = 4; c.LocalCap = 64 }, 4000},
		// Sharded engine: the barrier hand-offs (channel send + WaitGroup),
		// the event logs, the screen, and the per-shard arenas must all be
		// allocation-free once warm, same as the serial loop.
		{"requestgrant_sharded", func(c *Config) { c.Shards = 4 }, 4000},
		{"ideal_sharded", func(c *Config) { c.Mode = ModeIdeal; c.Shards = 4 }, 4000},
		{"direct_sharded", func(c *Config) { c.Mode = ModeDirect; c.Shards = 4 }, 4000},
		{"paced_sharded", func(c *Config) { c.InjectRate = 4; c.LocalCap = 64; c.Shards = 4 }, 4000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, stepOnce := stepDriver(t, tc.mutate)
			for i := 0; i < tc.warm && s.out > 0; i++ {
				stepOnce()
			}
			if s.out == 0 {
				t.Fatal("workload drained during warm-up; enlarge it")
			}
			if avg := testing.AllocsPerRun(300, stepOnce); avg != 0 {
				t.Errorf("steady-state slot allocates %.2f objects/slot, want 0", avg)
			}
			if s.out == 0 {
				t.Fatal("workload drained during measurement; enlarge it")
			}
		})
	}
}

// TestArenaSteadyStateRecycling checks the arena contract directly: after
// a grow/drain cycle has seeded a size class, further cycles reuse the
// banked segment instead of allocating.
func TestArenaSteadyStateRecycling(t *testing.T) {
	var a arena[int64]
	var q fifo[int64]
	cycle := func() {
		for i := int64(0); i < 4*releaseCap; i++ {
			q.push(i, &a)
		}
		for !q.empty() {
			q.pop(&a)
		}
	}
	cycle() // seed every class up to 4*releaseCap
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Errorf("grow/drain cycle allocates %.2f objects, want 0", avg)
	}
}
