package sweep

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// Identity names a point for memoization: the sweep it belongs to, its
// canonical parameter key and its substream seed. Equal identities must
// compute equal rows — that is the caching contract.
type Identity struct {
	Sweep string `json:"sweep"`
	Key   string `json:"key"`
	Seed  uint64 `json:"seed"`
}

// Hash returns the content address of the identity: FNV-1a 64 over the
// canonical encoding. FNV is not collision-proof, so cache entries store
// the full identity and Get verifies it — a colliding or stale entry is
// treated as a miss, never silently replayed.
func (id Identity) Hash() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%d", id.Sweep, id.Key, id.Seed)
	return fmt.Sprintf("%016x", h.Sum64())
}

// entry is the on-disk cache record.
type entry struct {
	Identity Identity   `json:"identity"`
	Rows     [][]string `json:"rows"`
	WallNS   int64      `json:"wall_ns"`
}

// Cache is an on-disk content-addressed store of completed sweep points,
// one JSON file per point under its identity hash. It is safe for
// concurrent use by the runner's workers (writes are atomic via
// rename; readers only ever observe complete files).
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache rooted at dir —
// conventionally results/cache/.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty cache dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: create cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(id Identity) string {
	return filepath.Join(c.dir, id.Hash()+".json")
}

// Get replays a memoized point. The third return is false on a miss, an
// unreadable or corrupt entry, or an identity mismatch (hash collision);
// wall is the original compute time of the hit.
func (c *Cache) Get(id Identity) (rows [][]string, wall int64, ok bool) {
	data, err := os.ReadFile(c.path(id))
	if err != nil {
		return nil, 0, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, 0, false // corrupt: treat as a miss, Put will repair
	}
	if e.Identity != id || e.Rows == nil {
		return nil, 0, false
	}
	return e.Rows, e.WallNS, true
}

// Put memoizes a completed point atomically (write to a temp file in the
// same directory, fsync, then rename), so concurrent writers and crashed
// or killed runs can never leave a partially-written entry visible under
// a content address: a worker killed mid-Put leaves at most an orphaned
// .tmp-* file, which Get never looks at, and a torn or truncated entry
// surviving a harder crash fails JSON decoding in Get and is treated as
// a miss for Put to repair.
func (c *Cache) Put(id Identity, rows [][]string, wallNS int64) error {
	data, err := json.Marshal(entry{Identity: id, Rows: rows, WallNS: wallNS})
	if err != nil {
		return fmt.Errorf("sweep: encode cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("sweep: cache temp: %w", err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		// Flush to stable storage before the rename makes the entry
		// addressable: rename-then-crash must never expose an empty or
		// partial file under a valid content address.
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("sweep: write cache entry: %w", werr)
	}
	if err := os.Rename(tmp.Name(), c.path(id)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: commit cache entry: %w", err)
	}
	return nil
}
