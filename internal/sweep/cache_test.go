package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCacheTruncatedEntryIsMiss pins the crash-safety contract of the
// cache: a worker killed mid-write can never leave an entry that a later
// Get deserializes. Every truncation prefix of a valid entry — including
// the empty file — must read as a miss, never an error or a partial
// replay, and Put must repair the slot.
func TestCacheTruncatedEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := Identity{Sweep: "fig9", Key: "load=0.5", Seed: 7}
	rows := [][]string{{"0.5", "1.23", "0.97"}, {"0.5", "4.56", "0.99"}}
	if err := c.Put(id, rows, 42); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, id.Hash()+".json")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate at a spread of prefix lengths: mid-header, mid-rows, one
	// byte short of complete, and empty.
	for _, n := range []int{0, 1, 10, len(full) / 3, len(full) / 2, len(full) - 1} {
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if got, _, ok := c.Get(id); ok {
			t.Fatalf("truncated entry (%d/%d bytes) replayed rows %v", n, len(full), got)
		}
	}
	// Put repairs the truncated slot and the full rows replay again.
	if err := c.Put(id, rows, 42); err != nil {
		t.Fatal(err)
	}
	got, wall, ok := c.Get(id)
	if !ok || wall != 42 || !reflect.DeepEqual(got, rows) {
		t.Fatalf("repaired entry: ok=%v wall=%d rows=%v", ok, wall, got)
	}
}

// TestCacheOrphanTempInvisible pins that a crash between CreateTemp and
// rename — an orphaned .tmp-* file in the cache dir — is invisible to
// Get and does not break later Puts.
func TestCacheOrphanTempInvisible(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".tmp-crashed"), []byte(`{"identity":`), 0o644); err != nil {
		t.Fatal(err)
	}
	id := Identity{Sweep: "s", Key: "k", Seed: 1}
	if _, _, ok := c.Get(id); ok {
		t.Fatal("orphan temp file visible as a cache hit")
	}
	if err := c.Put(id, [][]string{{"x"}}, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(id); !ok {
		t.Fatal("entry missing after Put alongside orphan temp")
	}
}
