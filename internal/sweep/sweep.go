// Package sweep is the experiment-sweep engine: it expands a parameter
// grid into independent points, executes them on a bounded worker pool,
// memoizes completed points in an on-disk content-addressed cache, and
// records a machine-readable manifest of every run.
//
// Every evaluation of the paper (Fig. 9–13, the failure study, the
// server-granularity deployment and the ablations — E10–E21 in DESIGN.md
// §4) is an embarrassingly parallel sweep over load points, queue bounds,
// guardbands, uplink counts and seeds. The engine makes three promises:
//
//  1. Determinism. Each point receives the RNG substream
//     rng.PointSeed(rootSeed, pointIndex); no point shares mutable
//     generator state with any other, so a sweep run serially and a sweep
//     run on N workers produce bit-identical rows for every point, in
//     point order, regardless of completion order.
//  2. Memoization. A point's identity is the FNV-1a hash of
//     (sweep name, canonical point key, substream seed). Completed points
//     are written to <cachedir>/<hash>.json and replayed on re-runs; a
//     corrupt or colliding entry is detected (the stored identity is
//     verified against the request) and recomputed.
//  3. Observability. The runner streams per-point progress with an ETA
//     and accumulates a manifest — per-point wall times, cache hits and
//     identities — that callers flush next to their tables.
//
// Cancellation flows down: the context handed to Run reaches every
// point's Run function, which forwards it into the core/fluid/dc
// simulation loops, so SIGINT aborts workers mid-simulation and the
// completed prefix of the sweep is still cached and accounted.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"sirius/internal/metrics"
	"sirius/internal/rng"
	"sirius/internal/telemetry"
)

// Point is one independent unit of work in a sweep.
type Point struct {
	// Key canonically describes everything that determines the point's
	// output apart from the substream seed (experiment parameters, scale,
	// shared workload seeds). Two points with equal keys and equal seeds
	// must produce equal rows: the key is the cache identity.
	Key string
	// Run computes the point's table rows. seed is the point's private
	// RNG substream, derived from (rootSeed, pointIndex); implementations
	// must derive all per-point randomness from it (or from values
	// captured in Key) and must honor ctx cancellation.
	Run func(ctx context.Context, seed uint64) ([][]string, error)
}

// Executor runs a single sweep point somewhere — possibly in another
// process. The Runner's default (nil) executor runs points in-process;
// internal/cluster's Coordinator implements Executor by leasing the
// point to a remote worker and blocking until a result arrives.
//
// Implementations must preserve the determinism contract: the returned
// rows must equal what p.Run(ctx, seed) would have produced locally.
// The returned PointRecord carries execution metadata (wall time, cache
// hit, worker placement); identity fields (Index, Key, Seed, Hash) are
// re-stamped by the Runner and need not be populated.
type Executor interface {
	ExecPoint(ctx context.Context, sweep string, index int, p Point, seed uint64) ([][]string, PointRecord, error)
}

// ErrCaptureOnly is returned by Run when the Runner is in capture mode
// (Capture != nil): the point set was recorded and nothing executed.
var ErrCaptureOnly = errors.New("sweep: capture-only runner (points recorded, nothing executed)")

// Runner executes sweeps. The zero value runs serially with no cache and
// no progress output; a Runner is safe for use by one sweep at a time
// (Run is not reentrant, but successive Runs accumulate manifests).
type Runner struct {
	// Parallel bounds the worker pool. <= 0 means GOMAXPROCS.
	Parallel int
	// RootSeed seeds every point's substream. Two runs with equal root
	// seeds, names and points produce identical output at any parallelism.
	RootSeed uint64
	// Cache memoizes completed points; nil disables caching.
	Cache *Cache
	// Progress, when non-nil, receives one line per completed point with
	// a running count, cache-hit tally, elapsed wall time and ETA.
	Progress io.Writer
	// PprofLabels attaches runtime/pprof labels ("sweep" = sweep name,
	// "point" = point key) to each point's execution, so CPU profiles of
	// a run can be sliced per experiment and per grid point with
	// `go tool pprof -tagfocus`.
	PprofLabels bool
	// Tracer, when non-nil, records one Chrome trace_event span per
	// executed point (category "sweep", tid = point index) and an
	// instant per cache replay, so `siriussim -trace-events` shows the
	// sweep's parallel schedule in Perfetto.
	Tracer *telemetry.Tracer
	// Executor, when non-nil, dispatches points to an external execution
	// plane (a cluster coordinator) instead of running them in-process.
	// The local Cache is still consulted first — a hit never leaves the
	// process — and filled with returned rows, so the cache doubles as
	// the shared result store between runs. With an Executor set, Run
	// makes every point dispatchable at once (Parallel is ignored): the
	// executor, not this pool, bounds real concurrency.
	Executor Executor
	// Capture, when non-nil, switches Run into capture mode: Run calls
	// Capture(name, points) and returns ErrCaptureOnly without executing
	// anything. Cluster workers use this to expand an experiment's point
	// set — the closures an experiment would have executed — so a leased
	// point index can be resolved to runnable code.
	Capture func(name string, points []Point)

	mu        sync.Mutex
	manifests []SweepManifest
	wall      metrics.Sample // reused across sweeps (Reset per Run) for the percentile summary
	anchor    time.Time      // ExecPoint span anchor, set lazily on first use
}

// Run executes the named sweep and returns each point's rows in point
// order. On error (or cancellation) the first failure is returned;
// already-completed points are still cached and recorded in the manifest.
func (r *Runner) Run(ctx context.Context, name string, points []Point) ([][][]string, error) {
	if r.Capture != nil {
		r.Capture(name, points)
		return nil, ErrCaptureOnly
	}
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if r.Executor != nil {
		// Every point must be dispatchable at once: the executor bounds
		// real concurrency, this pool only parks bookkeeping goroutines.
		workers = len(points)
	}
	if workers > len(points) {
		workers = len(points)
	}
	if workers < 1 {
		workers = 1
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()
	results := make([][][]string, len(points))
	records := make([]PointRecord, len(points))

	var (
		mu       sync.Mutex
		firstErr error
		done     int
		hits     int
	)
	finish := func(i int, rec PointRecord, rows [][]string, err error) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = rows
		records[i] = rec
		done++
		if rec.Cached {
			hits++
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("sweep %s point %d (%s): %w", name, i, points[i].Key, err)
				cancel()
			}
			return
		}
		if r.Progress != nil {
			elapsed := time.Since(start)
			var eta time.Duration
			if done > 0 && done < len(points) {
				eta = time.Duration(float64(elapsed) / float64(done) * float64(len(points)-done))
			}
			fmt.Fprintf(r.Progress, "[%s] %d/%d points (%d cached) elapsed %s eta %s\n",
				name, done, len(points), hits,
				elapsed.Round(time.Millisecond), eta.Round(time.Millisecond))
		}
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					// Drain remaining indices after cancellation; record
					// the point as skipped.
					finish(i, PointRecord{Index: i, Key: points[i].Key, Err: ctx.Err().Error()}, nil, ctx.Err())
					continue
				}
				rows, rec, err := r.runPoint(ctx, name, i, points[i], start, r.Executor)
				finish(i, rec, rows, err)
			}
		}()
	}
	for i := range points {
		idx <- i
	}
	close(idx)
	wg.Wait()

	man := SweepManifest{
		Name:     name,
		RootSeed: r.RootSeed,
		Parallel: workers,
		Points:   records,
		CacheHit: hits,
		WallNS:   time.Since(start).Nanoseconds(),
	}
	if firstErr != nil {
		man.Err = firstErr.Error()
	}
	r.mu.Lock()
	// Per-point wall-time order statistics for the manifest, computed on
	// a sample whose backing array is reused across sweeps (Reset keeps
	// the allocation). Cached replays report their original execution
	// wall time, so the percentiles describe the work, not the replay.
	r.wall.Reset()
	for i := range records {
		if records[i].Err == "" && records[i].WallNS > 0 {
			r.wall.Add(float64(records[i].WallNS))
		}
	}
	if r.wall.Count() > 0 {
		man.WallP50NS = int64(r.wall.Percentile(50))
		man.WallP95NS = int64(r.wall.Percentile(95))
		man.WallMaxNS = int64(r.wall.Max())
	}
	r.manifests = append(r.manifests, man)
	r.mu.Unlock()

	reg := telemetry.Default
	reg.Counter("sirius_sweep_runs_total").Inc()
	reg.Counter("sirius_sweep_points_total").Add(int64(len(points)))
	reg.Counter("sirius_sweep_cache_hits_total").Add(int64(hits))

	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runPoint executes (or replays) one point. sweepStart anchors the
// point's manifest span (StartNS is relative to the sweep's first
// instant, so spans from different parallelism levels line up). exec is
// the external executor to dispatch through, or nil for in-process
// execution.
func (r *Runner) runPoint(ctx context.Context, name string, i int, p Point, sweepStart time.Time, exec Executor) ([][]string, PointRecord, error) {
	seed := rng.PointSeed(r.RootSeed, uint64(i))
	id := Identity{Sweep: name, Key: p.Key, Seed: seed}
	rec := PointRecord{Index: i, Key: p.Key, Seed: seed, Hash: id.Hash()}

	if r.Cache != nil {
		if rows, wall, ok := r.Cache.Get(id); ok {
			rec.Cached = true
			rec.WallNS = wall
			rec.Rows = len(rows)
			r.Tracer.Instant("cache-hit", "sweep", i, map[string]string{"sweep": name, "point": p.Key})
			return rows, rec, nil
		}
	}
	begin := time.Now()
	rec.StartNS = begin.Sub(sweepStart).Nanoseconds()
	if exec != nil {
		// Remote execution: identity fields stay local truth, execution
		// metadata (wall time, placement, worker-side cache hit) comes
		// from the executor's record.
		rows, rrec, err := exec.ExecPoint(ctx, name, i, p, seed)
		r.Tracer.Span("point", "sweep", i, begin, map[string]string{"sweep": name, "point": p.Key, "worker": rrec.Worker})
		if err != nil {
			rec.Err = err.Error()
			return nil, rec, err
		}
		rec.Cached = rrec.Cached
		rec.WallNS = rrec.WallNS
		rec.Worker = rrec.Worker
		rec.CacheErr = rrec.CacheErr
		rec.Rows = len(rows)
		if r.Cache != nil {
			if cerr := r.Cache.Put(id, rows, rec.WallNS); cerr != nil {
				rec.CacheErr = cerr.Error()
			}
		}
		return rows, rec, nil
	}
	var rows [][]string
	var err error
	if r.PprofLabels {
		pprof.Do(ctx, pprof.Labels("sweep", name, "point", p.Key), func(ctx context.Context) {
			rows, err = p.Run(ctx, seed)
		})
	} else {
		rows, err = p.Run(ctx, seed)
	}
	rec.WallNS = time.Since(begin).Nanoseconds()
	r.Tracer.Span("point", "sweep", i, begin, map[string]string{"sweep": name, "point": p.Key})
	if err != nil {
		rec.Err = err.Error()
		return nil, rec, err
	}
	rec.Rows = len(rows)
	if r.Cache != nil {
		if cerr := r.Cache.Put(id, rows, rec.WallNS); cerr != nil {
			// Caching is best-effort: record the failure, keep the rows.
			rec.CacheErr = cerr.Error()
		}
	}
	return rows, rec, nil
}

// ExecPoint executes (or replays from the cache) one point in-process,
// outside any sweep: the entry point for cluster workers, which resolve
// leased point indices to Points and execute them one at a time with the
// runner's cache, tracer and pprof labels. The runner's Executor is
// deliberately ignored — a worker always computes locally. Point spans
// are anchored at the runner's first ExecPoint call.
func (r *Runner) ExecPoint(ctx context.Context, name string, i int, p Point) ([][]string, PointRecord, error) {
	r.mu.Lock()
	if r.anchor.IsZero() {
		r.anchor = time.Now()
	}
	anchor := r.anchor
	r.mu.Unlock()
	return r.runPoint(ctx, name, i, p, anchor, nil)
}

// Manifests returns a snapshot of the manifests of every sweep this
// runner has executed, in execution order.
func (r *Runner) Manifests() []SweepManifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SweepManifest, len(r.manifests))
	copy(out, r.manifests)
	return out
}
