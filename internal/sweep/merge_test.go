package sweep

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"sirius/internal/rng"
)

// partition splits a serial manifest's point records into per-worker
// partial manifests according to owner[i] = worker index of point i,
// mimicking what a cluster coordinator accumulates: each partial carries
// its worker's name and RunEnv and only the points it executed.
func partition(t *testing.T, serial SweepManifest, owner []int, workers int) []SweepManifest {
	t.Helper()
	parts := make([]SweepManifest, workers)
	for w := range parts {
		parts[w] = SweepManifest{
			Name:     serial.Name,
			RootSeed: serial.RootSeed,
			Parallel: 1,
			WallNS:   serial.WallNS,
			Workers: []WorkerRun{{
				Worker: fmt.Sprintf("w%d", w),
				Env:    CaptureEnv(),
			}},
		}
	}
	for i, p := range serial.Points {
		w := owner[i]
		parts[w].Points = append(parts[w].Points, p)
		parts[w].Workers[0].Points++
		if p.Cached {
			parts[w].CacheHit++
			parts[w].Workers[0].CacheHits++
		}
	}
	return parts
}

// TestMergeManifestsEqualsSerial is the merge property test: partition a
// serial sweep manifest into per-worker partials in several ways, merge
// each partition in many permutation orders, and assert the merge always
// reproduces the serial manifest — point records in index order,
// percentiles recomputed to the serial values exactly, per-worker RunEnv
// preserved — independent of partition shape and merge order.
func TestMergeManifestsEqualsSerial(t *testing.T) {
	const n = 23
	r := &Runner{Parallel: 1, RootSeed: 12345}
	if _, err := r.Run(context.Background(), "merge-prop", fakePoints(n, 0)); err != nil {
		t.Fatal(err)
	}
	serial := r.Manifests()[0]
	if len(serial.Points) != n {
		t.Fatalf("serial manifest has %d points", len(serial.Points))
	}

	rand := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		workers := 1 + int(rand.Uint64()%5)
		owner := make([]int, n)
		for i := range owner {
			owner[i] = int(rand.Uint64()) % workers
			if owner[i] < 0 {
				owner[i] += workers
			}
		}
		parts := partition(t, serial, owner, workers)
		// Shuffle the merge order (Fisher–Yates on the parts slice).
		for i := len(parts) - 1; i > 0; i-- {
			j := int(rand.Uint64() % uint64(i+1))
			parts[i], parts[j] = parts[j], parts[i]
		}

		merged, err := MergeManifests(parts...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The determinism-pinned content is identical...
		if !reflect.DeepEqual(merged.Canonical(), serial.Canonical()) {
			t.Fatalf("trial %d (workers=%d): merged canonical form diverges\nmerged: %+v\nserial: %+v",
				trial, workers, merged.Canonical(), serial.Canonical())
		}
		// ...the full point records too (the partition copied them verbatim).
		if !reflect.DeepEqual(merged.Points, serial.Points) {
			t.Fatalf("trial %d: merged point records reordered or mutated", trial)
		}
		// Percentiles are recomputed over the union: same values, same
		// estimator, so they equal the serial manifest's exactly.
		if merged.WallP50NS != serial.WallP50NS || merged.WallP95NS != serial.WallP95NS || merged.WallMaxNS != serial.WallMaxNS {
			t.Fatalf("trial %d: percentiles p50=%d/%d p95=%d/%d max=%d/%d (merged/serial)",
				trial, merged.WallP50NS, serial.WallP50NS,
				merged.WallP95NS, serial.WallP95NS, merged.WallMaxNS, serial.WallMaxNS)
		}
		// Per-worker provenance: one entry per worker, sorted by name,
		// env preserved, point counts matching the partition.
		if len(merged.Workers) != workers {
			t.Fatalf("trial %d: merged workers = %d, want %d", trial, len(merged.Workers), workers)
		}
		total := 0
		for i, w := range merged.Workers {
			if i > 0 && merged.Workers[i-1].Worker > w.Worker {
				t.Fatalf("trial %d: workers not sorted: %q after %q", trial, w.Worker, merged.Workers[i-1].Worker)
			}
			if w.Env == nil || w.Env.GoVersion == "" {
				t.Fatalf("trial %d: worker %q lost its RunEnv", trial, w.Worker)
			}
			total += w.Points
		}
		if total != n {
			t.Fatalf("trial %d: workers account for %d/%d points", trial, total, n)
		}
		if merged.CacheHit != serial.CacheHit {
			t.Fatalf("trial %d: cache hits %d, want %d", trial, merged.CacheHit, serial.CacheHit)
		}
	}
}

// TestMergeManifestsRejectsMismatch pins the merge's integrity checks:
// different sweeps, different root seeds, and duplicated point indices
// (an at-least-once runner delivering a point twice) are errors, not
// silent corruption.
func TestMergeManifestsRejectsMismatch(t *testing.T) {
	a := SweepManifest{Name: "a", RootSeed: 1, Points: []PointRecord{{Index: 0, Key: "k"}}}
	b := SweepManifest{Name: "b", RootSeed: 1}
	if _, err := MergeManifests(a, b); err == nil {
		t.Error("cross-sweep merge accepted")
	}
	c := SweepManifest{Name: "a", RootSeed: 2}
	if _, err := MergeManifests(a, c); err == nil {
		t.Error("cross-seed merge accepted")
	}
	dup := SweepManifest{Name: "a", RootSeed: 1, Points: []PointRecord{{Index: 0, Key: "k"}}}
	if _, err := MergeManifests(a, dup); err == nil {
		t.Error("duplicate point index accepted")
	}
	if _, err := MergeManifests(); err == nil {
		t.Error("empty merge accepted")
	}
	if m, err := MergeManifests(a); err != nil || len(m.Points) != 1 {
		t.Errorf("single-part merge: %v %+v", err, m)
	}
}
