package sweep

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// PointRecord is one point's entry in the run manifest.
type PointRecord struct {
	Index  int    `json:"index"`
	Key    string `json:"key"`
	Seed   uint64 `json:"seed"`
	Hash   string `json:"hash,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	// StartNS is the point's execution start relative to the sweep's
	// start (0 for cache replays): together with WallNS it is the
	// point's span on the sweep timeline, mirroring the trace_event
	// span the Runner's Tracer records.
	StartNS int64 `json:"start_ns,omitempty"`
	WallNS  int64 `json:"wall_ns"`
	Rows    int   `json:"rows"`
	// Err records a failed or skipped (cancelled) point.
	Err string `json:"error,omitempty"`
	// CacheErr records a best-effort cache write that failed; the point
	// itself still succeeded.
	CacheErr string `json:"cache_error,omitempty"`
}

// SweepManifest summarizes one sweep execution.
type SweepManifest struct {
	Name     string `json:"name"`
	RootSeed uint64 `json:"root_seed"`
	Parallel int    `json:"parallel"`
	CacheHit int    `json:"cache_hits"`
	WallNS   int64  `json:"wall_ns"`
	// WallP50NS/WallP95NS/WallMaxNS are order statistics over the
	// successful points' execution wall times (cached points report the
	// wall time of their original execution), so a manifest shows at a
	// glance whether a sweep's tail is one slow point or the whole grid.
	WallP50NS int64         `json:"wall_p50_ns,omitempty"`
	WallP95NS int64         `json:"wall_p95_ns,omitempty"`
	WallMaxNS int64         `json:"wall_max_ns,omitempty"`
	Err       string        `json:"error,omitempty"`
	Points    []PointRecord `json:"points"`
}

// RunManifest is the machine-readable record of a whole siriussim
// invocation: every sweep it executed, with identities and timings, so a
// figure in a paper draft can be traced back to the exact configuration
// hashes that produced it.
type RunManifest struct {
	Command    string          `json:"command,omitempty"`
	StartedAt  time.Time       `json:"started_at"`
	FinishedAt time.Time       `json:"finished_at"`
	WallNS     int64           `json:"wall_ns"`
	Parallel   int             `json:"parallel"`
	RootSeed   uint64          `json:"root_seed"`
	Cache      string          `json:"cache,omitempty"`
	Env        *RunEnv         `json:"env,omitempty"`
	Sweeps     []SweepManifest `json:"sweeps"`
	Errors     []string        `json:"errors,omitempty"`
}

// RunEnv records the execution environment of a run, so a manifest's
// wall times can be compared across machines and toolchains.
type RunEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CaptureEnv snapshots the current process's execution environment.
func CaptureEnv() *RunEnv {
	return &RunEnv{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Write encodes the manifest as indented JSON.
func (m *RunManifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile atomically writes the manifest to path, creating parent
// directories as needed.
func (m *RunManifest) WriteFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return err
	}
	if err := m.Write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
