package sweep

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"time"
)

// PointRecord is one point's entry in the run manifest.
type PointRecord struct {
	Index  int    `json:"index"`
	Key    string `json:"key"`
	Seed   uint64 `json:"seed"`
	Hash   string `json:"hash,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	WallNS int64  `json:"wall_ns"`
	Rows   int    `json:"rows"`
	// Err records a failed or skipped (cancelled) point.
	Err string `json:"error,omitempty"`
	// CacheErr records a best-effort cache write that failed; the point
	// itself still succeeded.
	CacheErr string `json:"cache_error,omitempty"`
}

// SweepManifest summarizes one sweep execution.
type SweepManifest struct {
	Name     string        `json:"name"`
	RootSeed uint64        `json:"root_seed"`
	Parallel int           `json:"parallel"`
	CacheHit int           `json:"cache_hits"`
	WallNS   int64         `json:"wall_ns"`
	Err      string        `json:"error,omitempty"`
	Points   []PointRecord `json:"points"`
}

// RunManifest is the machine-readable record of a whole siriussim
// invocation: every sweep it executed, with identities and timings, so a
// figure in a paper draft can be traced back to the exact configuration
// hashes that produced it.
type RunManifest struct {
	Command    string          `json:"command,omitempty"`
	StartedAt  time.Time       `json:"started_at"`
	FinishedAt time.Time       `json:"finished_at"`
	WallNS     int64           `json:"wall_ns"`
	Parallel   int             `json:"parallel"`
	RootSeed   uint64          `json:"root_seed"`
	Cache      string          `json:"cache,omitempty"`
	Sweeps     []SweepManifest `json:"sweeps"`
	Errors     []string        `json:"errors,omitempty"`
}

// Write encodes the manifest as indented JSON.
func (m *RunManifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile atomically writes the manifest to path, creating parent
// directories as needed.
func (m *RunManifest) WriteFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return err
	}
	if err := m.Write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
