package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"sirius/internal/metrics"
)

// PointRecord is one point's entry in the run manifest.
type PointRecord struct {
	Index  int    `json:"index"`
	Key    string `json:"key"`
	Seed   uint64 `json:"seed"`
	Hash   string `json:"hash,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	// StartNS is the point's execution start relative to the sweep's
	// start (0 for cache replays): together with WallNS it is the
	// point's span on the sweep timeline, mirroring the trace_event
	// span the Runner's Tracer records.
	StartNS int64 `json:"start_ns,omitempty"`
	WallNS  int64 `json:"wall_ns"`
	Rows    int   `json:"rows"`
	// Worker names the cluster worker that executed the point, when the
	// sweep ran distributed (empty for in-process execution).
	Worker string `json:"worker,omitempty"`
	// Err records a failed or skipped (cancelled) point.
	Err string `json:"error,omitempty"`
	// CacheErr records a best-effort cache write that failed; the point
	// itself still succeeded.
	CacheErr string `json:"cache_error,omitempty"`
}

// SweepManifest summarizes one sweep execution.
type SweepManifest struct {
	Name     string `json:"name"`
	RootSeed uint64 `json:"root_seed"`
	Parallel int    `json:"parallel"`
	CacheHit int    `json:"cache_hits"`
	WallNS   int64  `json:"wall_ns"`
	// WallP50NS/WallP95NS/WallMaxNS are order statistics over the
	// successful points' execution wall times (cached points report the
	// wall time of their original execution), so a manifest shows at a
	// glance whether a sweep's tail is one slow point or the whole grid.
	WallP50NS int64         `json:"wall_p50_ns,omitempty"`
	WallP95NS int64         `json:"wall_p95_ns,omitempty"`
	WallMaxNS int64         `json:"wall_max_ns,omitempty"`
	Err       string        `json:"error,omitempty"`
	Points    []PointRecord `json:"points"`
	// Workers lists, for distributed sweeps, every worker that
	// contributed points, with the execution environment it reported at
	// registration. Serial sweeps leave it empty.
	Workers []WorkerRun `json:"workers,omitempty"`
}

// WorkerRun is one worker's contribution to a (merged) sweep manifest.
type WorkerRun struct {
	Worker    string  `json:"worker"`
	Env       *RunEnv `json:"env,omitempty"`
	Points    int     `json:"points"`
	CacheHits int     `json:"cache_hits,omitempty"`
	WallNS    int64   `json:"wall_ns,omitempty"`
}

// RunManifest is the machine-readable record of a whole siriussim
// invocation: every sweep it executed, with identities and timings, so a
// figure in a paper draft can be traced back to the exact configuration
// hashes that produced it.
type RunManifest struct {
	Command    string          `json:"command,omitempty"`
	StartedAt  time.Time       `json:"started_at"`
	FinishedAt time.Time       `json:"finished_at"`
	WallNS     int64           `json:"wall_ns"`
	Parallel   int             `json:"parallel"`
	RootSeed   uint64          `json:"root_seed"`
	Cache      string          `json:"cache,omitempty"`
	Env        *RunEnv         `json:"env,omitempty"`
	Sweeps     []SweepManifest `json:"sweeps"`
	Errors     []string        `json:"errors,omitempty"`
}

// RunEnv records the execution environment of a run, so a manifest's
// wall times can be compared across machines and toolchains.
type RunEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CaptureEnv snapshots the current process's execution environment.
func CaptureEnv() *RunEnv {
	return &RunEnv{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// MergeManifests merges per-worker partial SweepManifests of the same
// sweep into one manifest equal — modulo wall-clock, parallelism and
// placement fields, see Canonical — to the manifest a serial run of the
// same sweep at the same root seed produces. The parts' point sets must
// be disjoint; merging is order-independent:
//
//   - point records are concatenated and sorted by Index (the serial
//     manifest's order);
//   - cache hits and parallelism sum; wall time is the max of the parts
//     (the parts ran concurrently);
//   - wall-time percentiles are recomputed over the union, so they equal
//     the serial percentiles exactly (same values, same estimator);
//   - per-part Workers entries (worker name + reported RunEnv) are
//     concatenated and sorted by worker name, preserving each worker's
//     environment;
//   - the first non-empty error wins.
func MergeManifests(parts ...SweepManifest) (SweepManifest, error) {
	if len(parts) == 0 {
		return SweepManifest{}, fmt.Errorf("sweep: merge of zero manifests")
	}
	out := SweepManifest{Name: parts[0].Name, RootSeed: parts[0].RootSeed}
	for _, p := range parts {
		if p.Name != out.Name {
			return SweepManifest{}, fmt.Errorf("sweep: merge of different sweeps %q and %q", out.Name, p.Name)
		}
		if p.RootSeed != out.RootSeed {
			return SweepManifest{}, fmt.Errorf("sweep: merge of sweep %q across root seeds %d and %d", out.Name, out.RootSeed, p.RootSeed)
		}
		out.Points = append(out.Points, p.Points...)
		out.Workers = append(out.Workers, p.Workers...)
		out.CacheHit += p.CacheHit
		out.Parallel += p.Parallel
		if p.WallNS > out.WallNS {
			out.WallNS = p.WallNS
		}
		if out.Err == "" {
			out.Err = p.Err
		}
	}
	sort.SliceStable(out.Points, func(i, j int) bool { return out.Points[i].Index < out.Points[j].Index })
	for i := 1; i < len(out.Points); i++ {
		if out.Points[i].Index == out.Points[i-1].Index {
			return SweepManifest{}, fmt.Errorf("sweep: merge: point %d recorded by two parts", out.Points[i].Index)
		}
	}
	sort.SliceStable(out.Workers, func(i, j int) bool { return out.Workers[i].Worker < out.Workers[j].Worker })
	var wall metrics.Sample
	for i := range out.Points {
		if out.Points[i].Err == "" && out.Points[i].WallNS > 0 {
			wall.Add(float64(out.Points[i].WallNS))
		}
	}
	if wall.Count() > 0 {
		out.WallP50NS = int64(wall.Percentile(50))
		out.WallP95NS = int64(wall.Percentile(95))
		out.WallMaxNS = int64(wall.Max())
	}
	return out, nil
}

// Canonical returns a copy of the manifest with every wall-clock,
// environment and execution-placement field zeroed, leaving only what
// the determinism contract pins: the sweep identity and, per point, the
// index, key, seed, content hash, row count and error. Two runs of the
// same sweep at the same root seed — serial, parallel, or distributed
// across a worker fleet with crashes and lease reclaims — must have
// equal Canonical forms.
func (m SweepManifest) Canonical() SweepManifest {
	out := SweepManifest{Name: m.Name, RootSeed: m.RootSeed}
	out.Points = make([]PointRecord, len(m.Points))
	for i, p := range m.Points {
		out.Points[i] = PointRecord{
			Index: p.Index,
			Key:   p.Key,
			Seed:  p.Seed,
			Hash:  p.Hash,
			Rows:  p.Rows,
			Err:   p.Err,
		}
	}
	return out
}

// Write encodes the manifest as indented JSON.
func (m *RunManifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile atomically writes the manifest to path, creating parent
// directories as needed.
func (m *RunManifest) WriteFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return err
	}
	if err := m.Write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
