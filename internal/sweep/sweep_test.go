package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sirius/internal/rng"
	"sirius/internal/telemetry"
)

// fakePoints builds n points whose rows are a deterministic function of
// (key, seed) — the same contract real experiment points obey.
func fakePoints(n int, delay time.Duration) []Point {
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("point=%d", i)
		pts[i] = Point{
			Key: key,
			Run: func(ctx context.Context, seed uint64) ([][]string, error) {
				if delay > 0 {
					time.Sleep(delay)
				}
				r := rng.New(seed)
				return [][]string{{key, fmt.Sprint(r.Uint64()), fmt.Sprint(r.Uint64())}}, nil
			},
		}
	}
	return pts
}

func TestSerialParallelIdentical(t *testing.T) {
	pts := fakePoints(17, 0)
	var outs [][][][]string
	for _, par := range []int{1, 4, 16} {
		r := &Runner{Parallel: par, RootSeed: 99}
		rows, err := r.Run(context.Background(), "det", pts)
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		outs = append(outs, rows)
	}
	if !reflect.DeepEqual(outs[0], outs[1]) || !reflect.DeepEqual(outs[0], outs[2]) {
		t.Fatal("parallel sweeps diverged from the serial sweep")
	}
	// Rows come back in point order regardless of completion order.
	for i, rows := range outs[2] {
		if rows[0][0] != fmt.Sprintf("point=%d", i) {
			t.Fatalf("point %d returned row %q out of order", i, rows[0][0])
		}
	}
	// A different root seed changes every point.
	r := &Runner{Parallel: 4, RootSeed: 100}
	other, err := r.Run(context.Background(), "det", pts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(outs[0], other) {
		t.Fatal("changing the root seed did not change the sweep")
	}
}

func TestCacheHitMissCorrupt(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := Identity{Sweep: "s", Key: "k=1", Seed: 42}
	if _, _, ok := c.Get(id); ok {
		t.Fatal("empty cache reported a hit")
	}
	rows := [][]string{{"a", "b"}, {"c", "d"}}
	if err := c.Put(id, rows, 123); err != nil {
		t.Fatal(err)
	}
	got, wall, ok := c.Get(id)
	if !ok || wall != 123 || !reflect.DeepEqual(got, rows) {
		t.Fatalf("hit = %v rows=%v wall=%d", ok, got, wall)
	}
	// A different identity with the same key text is a miss.
	if _, _, ok := c.Get(Identity{Sweep: "s", Key: "k=1", Seed: 43}); ok {
		t.Fatal("seed-mismatched identity hit the cache")
	}
	// Corrupt the entry on disk: Get must treat it as a miss.
	path := filepath.Join(dir, id.Hash()+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(id); ok {
		t.Fatal("corrupt entry replayed")
	}
	// A well-formed entry whose stored identity disagrees (simulated
	// hash collision) is also a miss.
	if err := os.WriteFile(path,
		[]byte(`{"identity":{"sweep":"s","key":"other","seed":42},"rows":[["x"]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(id); ok {
		t.Fatal("colliding entry replayed")
	}
	// Put repairs the slot.
	if err := c.Put(id, rows, 7); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(id); !ok {
		t.Fatal("repaired entry missed")
	}
}

func TestRunnerUsesCache(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	pts := make([]Point, 6)
	for i := range pts {
		key := fmt.Sprintf("p=%d", i)
		pts[i] = Point{Key: key, Run: func(ctx context.Context, seed uint64) ([][]string, error) {
			computes.Add(1)
			return [][]string{{key, fmt.Sprint(seed)}}, nil
		}}
	}
	r := &Runner{Parallel: 3, RootSeed: 5, Cache: c}
	cold, err := r.Run(context.Background(), "cached", pts)
	if err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 6 {
		t.Fatalf("cold run computed %d/6 points", computes.Load())
	}
	warm, err := r.Run(context.Background(), "cached", pts)
	if err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 6 {
		t.Fatalf("warm run recomputed: %d computes total", computes.Load())
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm rows differ from cold rows")
	}
	mans := r.Manifests()
	if len(mans) != 2 || mans[0].CacheHit != 0 || mans[1].CacheHit != 6 {
		t.Fatalf("manifest cache accounting wrong: %+v", mans)
	}
	// A different root seed must not hit the old entries.
	r2 := &Runner{Parallel: 3, RootSeed: 6, Cache: c}
	if _, err := r2.Run(context.Background(), "cached", pts); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 12 {
		t.Fatalf("root-seed change reused stale entries: %d computes", computes.Load())
	}
}

func TestErrorCancelsSweep(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	pts := make([]Point, 64)
	for i := range pts {
		i := i
		pts[i] = Point{Key: fmt.Sprintf("p=%d", i), Run: func(ctx context.Context, seed uint64) ([][]string, error) {
			started.Add(1)
			if i == 3 {
				return nil, boom
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
			return [][]string{{"ok"}}, nil
		}}
	}
	r := &Runner{Parallel: 4, RootSeed: 1}
	_, err := r.Run(context.Background(), "failing", pts)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if started.Load() == 64 {
		t.Error("failure did not short-circuit the sweep")
	}
	man := r.Manifests()
	if len(man) != 1 || man[0].Err == "" {
		t.Fatalf("manifest did not record the failure: %+v", man)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Parallel: 2, RootSeed: 1}
	_, err := r.Run(ctx, "cancelled", fakePoints(8, 0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestProgressOutput(t *testing.T) {
	var sb strings.Builder
	r := &Runner{Parallel: 2, RootSeed: 1, Progress: &sb}
	if _, err := r.Run(context.Background(), "prog", fakePoints(3, 0)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "[prog]") != 3 || !strings.Contains(out, "3/3") {
		t.Fatalf("progress output malformed:\n%s", out)
	}
}

func TestManifestWriteFile(t *testing.T) {
	r := &Runner{Parallel: 1, RootSeed: 1}
	if _, err := r.Run(context.Background(), "m", fakePoints(2, 0)); err != nil {
		t.Fatal(err)
	}
	m := &RunManifest{
		Command:   "test",
		StartedAt: time.Now(),
		Parallel:  1,
		RootSeed:  1,
		Sweeps:    r.Manifests(),
	}
	path := filepath.Join(t.TempDir(), "sub", "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "m"`, `"points"`, `"root_seed"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("manifest missing %q", want)
		}
	}
}

// TestSpansAndPercentiles covers the observability plumbing: per-point
// spans land in an attached Tracer (and cache replays as instants), the
// manifest carries point start offsets and wall-time percentiles, and
// CaptureEnv describes the running toolchain.
func TestSpansAndPercentiles(t *testing.T) {
	tr := telemetry.NewTracer(1 << 10)
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Parallel: 2, RootSeed: 9, Cache: cache, Tracer: tr}
	pts := fakePoints(5, time.Millisecond)
	if _, err := r.Run(context.Background(), "spans", pts); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), "spans", pts); err != nil { // all cached
		t.Fatal(err)
	}

	var spans, hits int
	for _, ev := range tr.Events() {
		switch ev.Name {
		case "point":
			spans++
			if ev.Args["sweep"] != "spans" || ev.Args["point"] == "" {
				t.Errorf("span args = %v", ev.Args)
			}
		case "cache-hit":
			hits++
		}
	}
	if spans != len(pts) || hits != len(pts) {
		t.Errorf("spans = %d, cache hits = %d, want %d each", spans, hits, len(pts))
	}

	mans := r.Manifests()
	if len(mans) != 2 {
		t.Fatalf("manifests = %d, want 2", len(mans))
	}
	for runIdx, man := range mans {
		if man.WallP50NS <= 0 || man.WallP95NS < man.WallP50NS || man.WallMaxNS < man.WallP95NS {
			t.Errorf("run %d: percentiles p50=%d p95=%d max=%d out of order",
				runIdx, man.WallP50NS, man.WallP95NS, man.WallMaxNS)
		}
	}
	// First run executed: every point carries a span (StartNS set for all
	// but possibly the very first, which can legitimately be offset 0).
	var sawStart bool
	for _, p := range mans[0].Points {
		if p.StartNS > 0 {
			sawStart = true
		}
		if p.WallNS <= 0 {
			t.Errorf("point %d: wall %d", p.Index, p.WallNS)
		}
	}
	if !sawStart {
		t.Error("no point recorded a positive start offset")
	}
	// Second run replayed: cached points keep the original wall time.
	for _, p := range mans[1].Points {
		if !p.Cached {
			t.Errorf("point %d not cached on re-run", p.Index)
		}
	}

	env := CaptureEnv()
	if env.GoVersion == "" || env.GOOS == "" || env.GOARCH == "" || env.GOMAXPROCS < 1 {
		t.Errorf("CaptureEnv incomplete: %+v", env)
	}
}
