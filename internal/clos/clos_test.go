package clos

import (
	"math"
	"testing"

	"sirius/internal/fluid"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

func TestHostsCount(t *testing.T) {
	if DefaultConfig(4).Hosts() != 16 {
		t.Errorf("k=4 hosts = %d, want 16", DefaultConfig(4).Hosts())
	}
	if DefaultConfig(8).Hosts() != 128 {
		t.Errorf("k=8 hosts = %d, want 128", DefaultConfig(8).Hosts())
	}
}

func TestSingleFlowLatency(t *testing.T) {
	cfg := DefaultConfig(4)
	// One packet, cross-pod: host->edge->agg->core->agg->edge->host =
	// 6 serializations + 6 link delays.
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: 15, Bytes: 1000}}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	tx := cfg.LinkRate.TimeToSend(cfg.PacketBytes)
	want := (6*tx + 6*cfg.LinkDelay).Seconds() * 1e3
	if got := res.FCTAll.Max(); math.Abs(got-want) > want*0.01 {
		t.Errorf("FCT = %v ms, want %v", got, want)
	}
}

func TestSameEdgeShortPath(t *testing.T) {
	cfg := DefaultConfig(4)
	// Hosts 0 and 1 share an edge: 2 hops only.
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: 1, Bytes: 1000}}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	tx := cfg.LinkRate.TimeToSend(cfg.PacketBytes)
	want := (2*tx + 2*cfg.LinkDelay).Seconds() * 1e3
	if got := res.FCTAll.Max(); math.Abs(got-want) > want*0.01 {
		t.Errorf("intra-edge FCT = %v ms, want %v", got, want)
	}
}

func TestSamePodTurnsAtAgg(t *testing.T) {
	cfg := DefaultConfig(4)
	// Hosts 0 and 2 share a pod but not an edge: 4 hops.
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: 2, Bytes: 1000}}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	tx := cfg.LinkRate.TimeToSend(cfg.PacketBytes)
	want := (4*tx + 4*cfg.LinkDelay).Seconds() * 1e3
	if got := res.FCTAll.Max(); math.Abs(got-want) > want*0.01 {
		t.Errorf("intra-pod FCT = %v ms, want %v", got, want)
	}
}

func TestNICPacing(t *testing.T) {
	cfg := DefaultConfig(4)
	// A 15-packet flow is paced by the source NIC: FCT ≈ 15 tx + path.
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: 15, Bytes: 15 * 1500}}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	tx := cfg.LinkRate.TimeToSend(cfg.PacketBytes)
	floor := (15 * tx).Seconds() * 1e3
	if got := res.FCTAll.Max(); got < floor {
		t.Errorf("FCT = %v ms below NIC serialization floor %v", got, floor)
	}
}

func TestAllFlowsComplete(t *testing.T) {
	cfg := DefaultConfig(4)
	wcfg := workload.DefaultConfig(16, 50*simtime.Gbps, 0.5, 800)
	flows, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d of %d", res.Completed, len(flows))
	}
	if res.DeliveredBytes != workload.TotalBytes(flows) {
		t.Error("byte conservation violated")
	}
}

func TestFluidModelValidation(t *testing.T) {
	// The central cross-check: the fluid ESN (Ideal) model must
	// upper-bound this packet fabric (it idealizes away switch queueing
	// and spraying collisions) while tracking it within a small factor at
	// moderate load and light tails. The fluid model is given the
	// fabric's path-latency floor via BaseRTT (6 store-and-forward hops).
	cfg := DefaultConfig(4)
	wcfg := workload.DefaultConfig(16, 50*simtime.Gbps, 0.3, 1500)
	wcfg.MeanFlowBytes = 30e3
	wcfg.ParetoShape = 3.0 // light tail: isolates model arithmetic from HoL tails
	flows, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	packet, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	tx := cfg.LinkRate.TimeToSend(cfg.PacketBytes)
	ideal, err := fluid.Run(fluid.Config{
		Endpoints:    16,
		EndpointRate: 50 * simtime.Gbps,
		Oversub:      1,
		BaseRTT:      6 * (tx + cfg.LinkDelay),
	}, flows)
	if err != nil {
		t.Fatal(err)
	}
	pm, im := packet.FCTAll.Mean(), ideal.FCTAll.Mean()
	if im > pm*1.05 {
		t.Errorf("fluid mean FCT %v ms exceeds packet-level %v ms: not an upper bound", im, pm)
	}
	if im < pm*0.35 {
		t.Errorf("fluid mean FCT %v ms far below packet-level %v ms: model too loose", im, pm)
	}
	// Goodput within 30%.
	if math.Abs(ideal.GoodputNorm-packet.GoodputNorm) > 0.3*packet.GoodputNorm {
		t.Errorf("goodput: fluid %v vs packet %v", ideal.GoodputNorm, packet.GoodputNorm)
	}
}

func TestValidation(t *testing.T) {
	flows := []workload.Flow{{Src: 0, Dst: 1, Bytes: 1}}
	if _, err := Run(Config{Radix: 3, LinkRate: 1, PacketBytes: 1500}, flows); err == nil {
		t.Error("odd radix accepted")
	}
	if _, err := Run(Config{Radix: 4, LinkRate: 0, PacketBytes: 1500}, flows); err == nil {
		t.Error("zero rate accepted")
	}
	bad := []workload.Flow{{Src: 0, Dst: 99, Bytes: 1}}
	if _, err := Run(DefaultConfig(4), bad); err == nil {
		t.Error("out-of-range host accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := DefaultConfig(4)
	wcfg := workload.DefaultConfig(16, 50*simtime.Gbps, 0.5, 200)
	flows, _ := workload.Generate(wcfg)
	a, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimTime != b.SimTime || a.PacketsDelivered != b.PacketsDelivered {
		t.Error("same seed, different outcome")
	}
}

func TestOversubscribedCoreSlower(t *testing.T) {
	// With a 2:1 oversubscribed aggregation-core tier, heavy cross-pod
	// traffic queues and the makespan stretches versus the non-blocking
	// fabric.
	wcfg := workload.DefaultConfig(16, 50*simtime.Gbps, 0.9, 800)
	wcfg.MeanFlowBytes = 60e3
	flows, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := Run(DefaultConfig(4), flows)
	if err != nil {
		t.Fatal(err)
	}
	ocfg := DefaultConfig(4)
	ocfg.CoreOversub = 2
	osub, err := Run(ocfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	// The makespan is pinned by the largest flow's NIC serialization, so
	// the congestion shows up in the FCT distribution instead.
	if osub.FCTAll.Mean() <= nb.FCTAll.Mean() {
		t.Errorf("oversubscribed mean FCT %v not above non-blocking %v",
			osub.FCTAll.Mean(), nb.FCTAll.Mean())
	}
	if osub.FCTAll.Percentile(99) <= nb.FCTAll.Percentile(99) {
		t.Errorf("oversubscribed p99 FCT %v not above non-blocking %v",
			osub.FCTAll.Percentile(99), nb.FCTAll.Percentile(99))
	}
}

func TestOversubValidation(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.CoreOversub = -1
	if _, err := Run(cfg, []workload.Flow{{Src: 0, Dst: 15, Bytes: 1}}); err == nil {
		t.Error("negative oversubscription accepted")
	}
}
