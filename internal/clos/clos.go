// Package clos is a packet-level simulator of the hierarchical,
// electrically-switched folded-Clos network the paper compares against:
// a k-ary fat tree with packet spraying across all equal-cost paths [23].
//
// It serves two purposes: it is the substrate the ESN baselines live on,
// and at small scale it validates the fluid max-min idealization
// (internal/fluid) that the paper's ESN (Ideal) baseline is defined by —
// the fluid model must upper-bound and closely track this packet fabric.
package clos

import (
	"fmt"

	"sirius/internal/eventq"
	"sirius/internal/metrics"
	"sirius/internal/rng"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// Config parameterizes the fabric.
type Config struct {
	// Radix is the switch port count (even, >= 4). The fat tree connects
	// Radix^3/4 hosts across three tiers.
	Radix int
	// LinkRate is the rate of every link (host and inter-switch).
	LinkRate simtime.Rate
	// PacketBytes is the MTU-sized packet the fabric forwards.
	PacketBytes int
	// LinkDelay is the per-link propagation delay.
	LinkDelay simtime.Duration
	// CoreOversub oversubscribes the aggregation-to-core tier: each
	// aggregation switch uses only (Radix/2)/CoreOversub of its core
	// uplinks (minimum 1). 1 or 0 = non-blocking.
	CoreOversub int
	// Seed drives the spraying choices.
	Seed uint64
}

// DefaultConfig returns a small validation fabric.
func DefaultConfig(radix int) Config {
	return Config{
		Radix:       radix,
		LinkRate:    50 * simtime.Gbps,
		PacketBytes: 1500,
		LinkDelay:   100 * simtime.Nanosecond,
		Seed:        1,
	}
}

// Hosts returns the number of hosts the fat tree supports.
func (c Config) Hosts() int { return c.Radix * c.Radix * c.Radix / 4 }

// Results mirrors the other simulators' results.
type Results struct {
	Flows            int
	Completed        int
	SimTime          simtime.Time
	DeliveredBytes   int64
	GoodputNorm      float64
	FCTAll, FCTShort metrics.Sample
	PacketsDelivered int64
}

// port is a transmit port: a serializing link with an implicit FIFO formed
// by the busy-until horizon.
type port struct {
	busyUntil simtime.Time
}

// send schedules a packet's serialization on the port starting no earlier
// than now, returning the time its last bit arrives at the other end.
func (p *port) send(now simtime.Time, tx, prop simtime.Duration) simtime.Time {
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	p.busyUntil = start.Add(tx)
	return p.busyUntil.Add(prop)
}

type sim struct {
	cfg  Config
	k    int // radix
	half int // k/2
	r    *rng.RNG
	q    eventq.Queue

	// Ports, indexed by direction and element. Hosts and edges per pod:
	// pods = k, edges per pod = k/2, hosts per edge = k/2.
	hostUp   []port // host -> edge
	hostDown []port // edge -> host
	edgeUp   []port // edge -> agg: [edge][agg] flattened (k/2 per edge)
	edgeDown []port // agg -> edge
	aggUp    []port // agg -> core: [agg][core-slot] (k/2 per agg)
	aggDown  []port // core -> agg

	remaining []int // packets outstanding per flow (delivery side)
	toSend    []int // packets not yet transmitted by the source NIC
	flows     []workload.Flow

	// Host NICs do per-flow fair queueing (round-robin): real NICs keep
	// per-flow send queues, and without this an elephant flow would
	// head-of-line block every later flow from the same host.
	hostRing []fifo
	hostBusy []bool

	res *Results
}

// fifo is a minimal int queue.
type fifo struct {
	items []int
	head  int
}

func (q *fifo) push(v int) {
	if q.head > 32 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	q.items = append(q.items, v)
}

func (q *fifo) pop() int {
	v := q.items[q.head]
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

func (q *fifo) empty() bool { return q.head >= len(q.items) }

// Run simulates the flows to completion.
func Run(cfg Config, flows []workload.Flow) (*Results, error) {
	if cfg.Radix < 4 || cfg.Radix%2 != 0 {
		return nil, fmt.Errorf("clos: radix must be even and >= 4")
	}
	if cfg.LinkRate <= 0 || cfg.PacketBytes < 64 {
		return nil, fmt.Errorf("clos: invalid link rate or packet size")
	}
	if cfg.CoreOversub < 0 {
		return nil, fmt.Errorf("clos: negative oversubscription")
	}
	if cfg.CoreOversub == 0 {
		cfg.CoreOversub = 1
	}
	hosts := cfg.Hosts()
	for i, f := range flows {
		if f.Src < 0 || f.Src >= hosts || f.Dst < 0 || f.Dst >= hosts || f.Src == f.Dst || f.Bytes < 1 {
			return nil, fmt.Errorf("clos: invalid flow %+v for %d hosts", f, hosts)
		}
		if f.ID != i {
			return nil, fmt.Errorf("clos: flow IDs must equal their index (flow %d has ID %d)", i, f.ID)
		}
	}
	k := cfg.Radix
	half := k / 2
	nEdges := k * half // k pods x k/2 edges
	nAggs := k * half
	s := &sim{
		cfg:      cfg,
		k:        k,
		half:     half,
		r:        rng.New(cfg.Seed),
		hostUp:   make([]port, hosts),
		hostDown: make([]port, hosts),
		edgeUp:   make([]port, nEdges*half),
		edgeDown: make([]port, nAggs*half), // agg -> each of its pod's k/2 edges
		aggUp:    make([]port, nAggs*half),
		aggDown:  make([]port, half*half*k), // core -> each pod's agg: cores x k pods... see index fns
		flows:    flows,
		res:      &Results{Flows: len(flows)},
	}
	s.remaining = make([]int, len(flows))
	s.toSend = make([]int, len(flows))
	s.hostRing = make([]fifo, hosts)
	s.hostBusy = make([]bool, hosts)
	for i, f := range flows {
		s.remaining[i] = (f.Bytes + cfg.PacketBytes - 1) / cfg.PacketBytes
		s.toSend[i] = s.remaining[i]
		fl := f
		s.q.Schedule(f.Arrival, func() { s.injectFlow(fl) })
	}
	s.q.RunUntil(simtime.Time(1) << 62)
	if s.res.Completed != len(flows) {
		return nil, fmt.Errorf("clos: only %d of %d flows completed", s.res.Completed, len(flows))
	}
	if s.res.SimTime > 0 {
		s.res.GoodputNorm = float64(s.res.DeliveredBytes) * 8 /
			(s.res.SimTime.Seconds() * float64(hosts) * float64(cfg.LinkRate))
	}
	return s.res, nil
}

// Topology index helpers. Host h lives in pod h/(k/2)^2, under edge
// (h mod (k/2)^2)/(k/2).
func (s *sim) podOf(host int) int  { return host / (s.half * s.half) }
func (s *sim) edgeOf(host int) int { return host / s.half } // global edge index

// injectFlow registers the flow with its source NIC's fair scheduler.
func (s *sim) injectFlow(f workload.Flow) {
	s.hostRing[f.Src].push(f.ID)
	s.kickHost(f.Src, f.Arrival)
}

// kickHost transmits the next packet at host h's NIC, round-robin across
// its active flows.
func (s *sim) kickHost(h int, now simtime.Time) {
	if s.hostBusy[h] || s.hostRing[h].empty() {
		return
	}
	id := s.hostRing[h].pop()
	s.toSend[id]--
	if s.toSend[id] > 0 {
		s.hostRing[h].push(id) // round-robin re-queue
	}
	tx := s.cfg.LinkRate.TimeToSend(s.cfg.PacketBytes)
	arrive := s.hostUp[h].send(now, tx, s.cfg.LinkDelay)
	fl := s.flows[id]
	s.q.Schedule(arrive, func() { s.atEdgeUp(fl, arrive) })
	s.hostBusy[h] = true
	free := arrive.Add(-s.cfg.LinkDelay)
	s.q.Schedule(free, func() {
		s.hostBusy[h] = false
		s.kickHost(h, free)
	})
}

// atEdgeUp handles a packet reaching the source edge switch.
func (s *sim) atEdgeUp(f workload.Flow, now simtime.Time) {
	tx := s.cfg.LinkRate.TimeToSend(s.cfg.PacketBytes)
	srcEdge := s.edgeOf(f.Src)
	if s.edgeOf(f.Dst) == srcEdge {
		// Same edge: straight down.
		arrive := s.hostDown[f.Dst].send(now, tx, s.cfg.LinkDelay)
		s.q.Schedule(arrive, func() { s.atHost(f, arrive) })
		return
	}
	// Spray to a random aggregation switch of this pod.
	a := s.r.Intn(s.half)
	arrive := s.edgeUp[srcEdge*s.half+a].send(now, tx, s.cfg.LinkDelay)
	pod := s.podOf(f.Src)
	aggID := pod*s.half + a
	s.q.Schedule(arrive, func() { s.atAggUp(f, aggID, arrive) })
}

// atAggUp handles a packet at an aggregation switch heading up (or
// turning down within the pod).
func (s *sim) atAggUp(f workload.Flow, aggID int, now simtime.Time) {
	tx := s.cfg.LinkRate.TimeToSend(s.cfg.PacketBytes)
	pod := aggID / s.half
	a := aggID % s.half
	if s.podOf(f.Dst) == pod {
		// Turn down to the destination edge.
		edgeInPod := (f.Dst / s.half) % s.half
		arrive := s.edgeDown[aggID*s.half+edgeInPod].send(now, tx, s.cfg.LinkDelay)
		s.q.Schedule(arrive, func() { s.atEdgeDown(f, arrive) })
		return
	}
	// Spray to one of this agg's usable core uplinks (the aggregation
	// tier may be oversubscribed: fewer active uplinks share the load).
	usable := s.half / s.cfg.CoreOversub
	if usable < 1 {
		usable = 1
	}
	c := s.r.Intn(usable)
	arrive := s.aggUp[aggID*s.half+c].send(now, tx, s.cfg.LinkDelay)
	core := a*s.half + c // core group a, member c
	s.q.Schedule(arrive, func() { s.atCore(f, core, arrive) })
}

// atCore handles a packet at a core switch: down to the destination pod's
// aggregation switch in this core's group.
func (s *sim) atCore(f workload.Flow, core int, now simtime.Time) {
	tx := s.cfg.LinkRate.TimeToSend(s.cfg.PacketBytes)
	dstPod := s.podOf(f.Dst)
	group := core / s.half // connects to agg index `group` in every pod
	aggID := dstPod*s.half + group
	arrive := s.aggDown[core*s.k+dstPod].send(now, tx, s.cfg.LinkDelay)
	s.q.Schedule(arrive, func() { s.atAggDown(f, aggID, arrive) })
}

// atAggDown handles a packet descending through the destination pod.
func (s *sim) atAggDown(f workload.Flow, aggID int, now simtime.Time) {
	tx := s.cfg.LinkRate.TimeToSend(s.cfg.PacketBytes)
	edgeInPod := (f.Dst / s.half) % s.half
	arrive := s.edgeDown[aggID*s.half+edgeInPod].send(now, tx, s.cfg.LinkDelay)
	s.q.Schedule(arrive, func() { s.atEdgeDown(f, arrive) })
}

// atEdgeDown handles a packet at the destination edge switch.
func (s *sim) atEdgeDown(f workload.Flow, now simtime.Time) {
	tx := s.cfg.LinkRate.TimeToSend(s.cfg.PacketBytes)
	arrive := s.hostDown[f.Dst].send(now, tx, s.cfg.LinkDelay)
	s.q.Schedule(arrive, func() { s.atHost(f, arrive) })
}

// atHost delivers a packet at the destination.
func (s *sim) atHost(f workload.Flow, now simtime.Time) {
	s.res.PacketsDelivered++
	s.remaining[f.ID]--
	if s.remaining[f.ID] > 0 {
		return
	}
	s.res.Completed++
	s.res.DeliveredBytes += int64(f.Bytes)
	if now > s.res.SimTime {
		s.res.SimTime = now
	}
	ms := now.Sub(f.Arrival).Seconds() * 1e3
	s.res.FCTAll.Add(ms)
	if f.Bytes < 100_000 {
		s.res.FCTShort.Add(ms)
	}
}
