package fault

import (
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	good := &Plan{Seed: 1, Events: []Event{
		{Kind: Crash, Node: 1, Epoch: 10},
		{Kind: Restart, Node: 2, Epoch: 5},
		{Kind: Grey, Src: 0, Dst: 3, Epoch: 2, Until: 9},
		{Kind: Degrade, Src: 1, Epoch: 0, FlipProb: 1e-3},
		{Kind: Stall, Src: 2, Epoch: 1, Until: 4, DelayMicros: 100},
	}}
	if err := good.Validate(4); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	bad := []Plan{
		{Events: []Event{{Kind: Crash, Node: 4, Epoch: 1}}},
		{Events: []Event{{Kind: Crash, Node: 0, Epoch: -1}}},
		{Events: []Event{{Kind: Grey, Src: 0, Dst: 9, Epoch: 1}}},
		{Events: []Event{{Kind: Degrade, Src: 0, Epoch: 0, FlipProb: 1.5}}},
		{Events: []Event{{Kind: Stall, Src: 0, Epoch: 3, Until: 2}}},
		{Events: []Event{{Kind: "meltdown", Epoch: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(4); err != nil {
		t.Errorf("nil plan should validate: %v", err)
	}
}

func TestQueries(t *testing.T) {
	p := &Plan{Seed: 7, Events: []Event{
		{Kind: Crash, Node: 1, Epoch: 10},
		{Kind: Restart, Node: 2, Epoch: 5},
		{Kind: Grey, Src: 0, Dst: 3, Epoch: 2, Until: 9},
		{Kind: Degrade, Src: 1, Epoch: 4, FlipProb: 1e-3},
		{Kind: Stall, Src: 2, Epoch: 1, Until: 4, DelayMicros: 100},
	}}
	if got := p.CrashEpoch(1); got != 10 {
		t.Errorf("CrashEpoch(1) = %d", got)
	}
	if got := p.CrashEpoch(0); got != -1 {
		t.Errorf("CrashEpoch(0) = %d", got)
	}
	if got := p.RestartEpoch(2); got != 5 {
		t.Errorf("RestartEpoch(2) = %d", got)
	}
	if !p.GreyDrop(0, 3, 2) || !p.GreyDrop(0, 3, 8) {
		t.Error("grey window not active")
	}
	if p.GreyDrop(0, 3, 1) || p.GreyDrop(0, 3, 9) || p.GreyDrop(3, 0, 5) {
		t.Error("grey drop outside window or wrong pair")
	}
	if got := p.FlipProb(1, 4, 1e-6); got != 1e-3 {
		t.Errorf("FlipProb override = %v", got)
	}
	if got := p.FlipProb(1, 3, 1e-6); got != 1e-6 {
		t.Errorf("FlipProb before window = %v", got)
	}
	if got := p.StallDelay(2, 2); got != 100*time.Microsecond {
		t.Errorf("StallDelay = %v", got)
	}
	if got := p.StallDelay(2, 4); got != 0 {
		t.Errorf("StallDelay past window = %v", got)
	}
	var nilPlan *Plan
	if nilPlan.GreyDrop(0, 0, 0) || nilPlan.FlipProb(0, 0, 0.5) != 0.5 ||
		nilPlan.StallDelay(0, 0) != 0 || nilPlan.CrashEpoch(0) != -1 {
		t.Error("nil plan queries not inert")
	}
	if !nilPlan.Empty() {
		t.Error("nil plan not empty")
	}
}

func TestHashContentAddressing(t *testing.T) {
	a := &Plan{Seed: 1, Events: []Event{
		{Kind: Crash, Node: 1, Epoch: 10},
		{Kind: Grey, Src: 0, Dst: 3, Epoch: 2},
	}}
	// Same events, permuted: identical hash.
	b := &Plan{Seed: 1, Events: []Event{
		{Kind: Grey, Src: 0, Dst: 3, Epoch: 2},
		{Kind: Crash, Node: 1, Epoch: 10},
	}}
	if a.Hash() != b.Hash() {
		t.Errorf("permuted plan hashed differently: %s vs %s", a.Hash(), b.Hash())
	}
	// Different seed: different hash.
	c := &Plan{Seed: 2, Events: a.Events}
	if a.Hash() == c.Hash() {
		t.Error("seed not part of the content address")
	}
	// Different event: different hash.
	d := &Plan{Seed: 1, Events: []Event{{Kind: Crash, Node: 2, Epoch: 10}}}
	if a.Hash() == d.Hash() {
		t.Error("distinct plans collided")
	}
	var nilPlan *Plan
	if nilPlan.Hash() != "none" {
		t.Errorf("nil hash = %s", nilPlan.Hash())
	}
}

func TestParseRoundTrip(t *testing.T) {
	p := KillPlan(2, 40, 99)
	q, err := Parse(p.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if q.Hash() != p.Hash() {
		t.Errorf("round trip changed hash: %s vs %s", q.Hash(), p.Hash())
	}
	if q.Seed != 99 || q.CrashEpoch(2) != 40 {
		t.Errorf("round trip lost content: %+v", q)
	}
	if _, err := Parse([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load("/nonexistent/plan.json"); err == nil {
		t.Error("missing file accepted")
	}
}
