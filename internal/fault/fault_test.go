package fault

import (
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	good := &Plan{Seed: 1, Events: []Event{
		{Kind: Crash, Node: 1, Epoch: 10},
		{Kind: Flap, Node: 2, Epoch: 5},
		{Kind: Grey, Src: 0, Dst: 3, Epoch: 2, Until: 9},
		{Kind: Degrade, Src: 1, Epoch: 0, FlipProb: 1e-3},
		{Kind: Stall, Src: 2, Epoch: 1, Until: 4, DelayMicros: 100},
	}}
	if err := good.Validate(4); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	bad := []Plan{
		{Events: []Event{{Kind: Crash, Node: 4, Epoch: 1}}},
		{Events: []Event{{Kind: Crash, Node: 0, Epoch: -1}}},
		{Events: []Event{{Kind: Grey, Src: 0, Dst: 9, Epoch: 1}}},
		{Events: []Event{{Kind: Degrade, Src: 0, Epoch: 0, FlipProb: 1.5}}},
		{Events: []Event{{Kind: Stall, Src: 0, Epoch: 3, Until: 2}}},
		{Events: []Event{{Kind: "meltdown", Epoch: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(4); err != nil {
		t.Errorf("nil plan should validate: %v", err)
	}
}

func TestValidateLifecycle(t *testing.T) {
	good := []Plan{
		// Rolling restart: crash then restart.
		{Events: []Event{
			{Kind: Crash, Node: 1, Epoch: 10},
			{Kind: Restart, Node: 1, Epoch: 30},
		}},
		// Drain then restart (restart accepts either prior kind).
		{Events: []Event{
			{Kind: Drain, Node: 1, Epoch: 10},
			{Kind: Restart, Node: 1, Epoch: 30},
		}},
		// Drain then readd; expansion of a fresh node.
		{Events: []Event{
			{Kind: Drain, Node: 1, Epoch: 10},
			{Kind: Readd, Node: 1, Epoch: 30},
			{Kind: Expand, Node: 3, Epoch: 20},
		}},
		// Drain without return: the node leaves for good.
		{Events: []Event{{Kind: Drain, Node: 2, Epoch: 5}}},
	}
	for i, p := range good {
		if err := p.Validate(4); err != nil {
			t.Errorf("good lifecycle plan %d rejected: %v", i, err)
		}
	}
	bad := []Plan{
		// The satellite rule: a restart with no prior crash or drain.
		{Events: []Event{{Kind: Restart, Node: 1, Epoch: 30}}},
		// Restart not after its crash.
		{Events: []Event{
			{Kind: Crash, Node: 1, Epoch: 30},
			{Kind: Restart, Node: 1, Epoch: 30},
		}},
		// Readd with no prior drain.
		{Events: []Event{{Kind: Readd, Node: 1, Epoch: 30}}},
		// Readd not after its drain.
		{Events: []Event{
			{Kind: Drain, Node: 1, Epoch: 30},
			{Kind: Readd, Node: 1, Epoch: 20},
		}},
		// Two rejoins for one node.
		{Events: []Event{
			{Kind: Drain, Node: 1, Epoch: 10},
			{Kind: Readd, Node: 1, Epoch: 20},
			{Kind: Restart, Node: 1, Epoch: 30},
		}},
		// Duplicate per-node lifecycle events.
		{Events: []Event{
			{Kind: Drain, Node: 1, Epoch: 10},
			{Kind: Drain, Node: 1, Epoch: 20},
		}},
		// Undefined interleavings.
		{Events: []Event{
			{Kind: Drain, Node: 1, Epoch: 10},
			{Kind: Crash, Node: 1, Epoch: 20},
		}},
		{Events: []Event{
			{Kind: Drain, Node: 1, Epoch: 10},
			{Kind: Flap, Node: 1, Epoch: 5},
		}},
		{Events: []Event{
			{Kind: Expand, Node: 1, Epoch: 10},
			{Kind: Crash, Node: 1, Epoch: 20},
		}},
		// Lifecycle kinds still range-check their node.
		{Events: []Event{{Kind: Expand, Node: 9, Epoch: 10}}},
		{Events: []Event{{Kind: Drain, Node: -1, Epoch: 10}}},
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("bad lifecycle plan %d accepted", i)
		}
	}
}

// TestOverlapPrecedence pins the documented resolution for overlapping
// windows: Degrade takes the max flip probability, Stall the max delay,
// Grey the union of active windows.
func TestOverlapPrecedence(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: Degrade, Src: 0, Epoch: 0, Until: 10, FlipProb: 1e-3},
		{Kind: Degrade, Src: 0, Epoch: 5, Until: 15, FlipProb: 1e-5},
		{Kind: Stall, Src: 1, Epoch: 0, Until: 10, DelayMicros: 50},
		{Kind: Stall, Src: 1, Epoch: 5, Until: 15, DelayMicros: 200},
		{Kind: Grey, Src: 2, Dst: 0, Epoch: 0, Until: 6},
		{Kind: Grey, Src: 2, Dst: 1, Epoch: 4, Until: 10},
	}}
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
	// Degrade overlap at epoch 7: the larger window wins, even though the
	// smaller one starts later (max, not last-match or first-match).
	if got := p.FlipProb(0, 7, 1e-6); got != 1e-3 {
		t.Errorf("overlapping degrade FlipProb = %v, want max 1e-3", got)
	}
	// After the large window ends the small one still applies.
	if got := p.FlipProb(0, 12, 1e-6); got != 1e-5 {
		t.Errorf("tail degrade FlipProb = %v, want 1e-5", got)
	}
	// A base rate above every override also wins (max includes base).
	if got := p.FlipProb(0, 7, 0.5); got != 0.5 {
		t.Errorf("base above overrides = %v, want 0.5", got)
	}
	// Stall overlap at epoch 7: the slowest active stall wins, not the
	// first-listed one.
	if got := p.StallDelay(1, 7); got != 200*time.Microsecond {
		t.Errorf("overlapping stall = %v, want 200µs (max)", got)
	}
	if got := p.StallDelay(1, 2); got != 50*time.Microsecond {
		t.Errorf("early stall = %v, want 50µs", got)
	}
	// Grey is a union over windows: distinct pairs coexist, and epoch 5
	// (inside both windows) drops toward both destinations.
	if !p.GreyDrop(2, 0, 5) || !p.GreyDrop(2, 1, 5) {
		t.Error("overlapping grey windows did not union")
	}
	if p.GreyDrop(2, 1, 2) || p.GreyDrop(2, 0, 8) {
		t.Error("grey window boundaries wrong")
	}
}

func TestLifecycleQueries(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: Expand, Node: 4, Epoch: 12},
		{Kind: Expand, Node: 5, Epoch: 12},
		{Kind: Drain, Node: 1, Epoch: 20},
		{Kind: Readd, Node: 1, Epoch: 40},
		{Kind: Crash, Node: 2, Epoch: 30},
		{Kind: Restart, Node: 2, Epoch: 50},
		{Kind: Flap, Node: 3, Epoch: 8},
	}}
	if err := p.Validate(6); err != nil {
		t.Fatal(err)
	}
	if got := p.ExpandEpoch(4); got != 12 {
		t.Errorf("ExpandEpoch(4) = %d", got)
	}
	if got := p.ExpandEpoch(0); got != -1 {
		t.Errorf("ExpandEpoch(0) = %d, want -1", got)
	}
	if got := p.DrainEpoch(1); got != 20 {
		t.Errorf("DrainEpoch(1) = %d", got)
	}
	if got := p.ReaddEpoch(1); got != 40 {
		t.Errorf("ReaddEpoch(1) = %d", got)
	}
	if got := p.FlapEpoch(3); got != 8 {
		t.Errorf("FlapEpoch(3) = %d", got)
	}
	if got := p.RestartEpoch(2); got != 50 {
		t.Errorf("RestartEpoch(2) = %d", got)
	}
	// RejoinEpoch folds restart-after-crash and readd-after-drain.
	if got := p.RejoinEpoch(1); got != 40 {
		t.Errorf("RejoinEpoch(1) = %d, want 40 (readd)", got)
	}
	if got := p.RejoinEpoch(2); got != 50 {
		t.Errorf("RejoinEpoch(2) = %d, want 50 (restart)", got)
	}
	if got := p.RejoinEpoch(0); got != -1 {
		t.Errorf("RejoinEpoch(0) = %d, want -1", got)
	}
	if js := p.Joiners(); len(js) != 2 || js[0] != 4 || js[1] != 5 {
		t.Errorf("Joiners = %v, want [4 5]", js)
	}
	var nilPlan *Plan
	if nilPlan.Joiners() != nil || nilPlan.DrainEpoch(0) != -1 ||
		nilPlan.RejoinEpoch(0) != -1 || nilPlan.FlapEpoch(0) != -1 {
		t.Error("nil plan lifecycle queries not inert")
	}
}

func TestQueries(t *testing.T) {
	p := &Plan{Seed: 7, Events: []Event{
		{Kind: Crash, Node: 1, Epoch: 10},
		{Kind: Flap, Node: 2, Epoch: 5},
		{Kind: Grey, Src: 0, Dst: 3, Epoch: 2, Until: 9},
		{Kind: Degrade, Src: 1, Epoch: 4, FlipProb: 1e-3},
		{Kind: Stall, Src: 2, Epoch: 1, Until: 4, DelayMicros: 100},
	}}
	if got := p.CrashEpoch(1); got != 10 {
		t.Errorf("CrashEpoch(1) = %d", got)
	}
	if got := p.CrashEpoch(0); got != -1 {
		t.Errorf("CrashEpoch(0) = %d", got)
	}
	if got := p.FlapEpoch(2); got != 5 {
		t.Errorf("FlapEpoch(2) = %d", got)
	}
	if !p.GreyDrop(0, 3, 2) || !p.GreyDrop(0, 3, 8) {
		t.Error("grey window not active")
	}
	if p.GreyDrop(0, 3, 1) || p.GreyDrop(0, 3, 9) || p.GreyDrop(3, 0, 5) {
		t.Error("grey drop outside window or wrong pair")
	}
	if got := p.FlipProb(1, 4, 1e-6); got != 1e-3 {
		t.Errorf("FlipProb override = %v", got)
	}
	if got := p.FlipProb(1, 3, 1e-6); got != 1e-6 {
		t.Errorf("FlipProb before window = %v", got)
	}
	if got := p.StallDelay(2, 2); got != 100*time.Microsecond {
		t.Errorf("StallDelay = %v", got)
	}
	if got := p.StallDelay(2, 4); got != 0 {
		t.Errorf("StallDelay past window = %v", got)
	}
	var nilPlan *Plan
	if nilPlan.GreyDrop(0, 0, 0) || nilPlan.FlipProb(0, 0, 0.5) != 0.5 ||
		nilPlan.StallDelay(0, 0) != 0 || nilPlan.CrashEpoch(0) != -1 {
		t.Error("nil plan queries not inert")
	}
	if !nilPlan.Empty() {
		t.Error("nil plan not empty")
	}
}

func TestHashContentAddressing(t *testing.T) {
	a := &Plan{Seed: 1, Events: []Event{
		{Kind: Crash, Node: 1, Epoch: 10},
		{Kind: Grey, Src: 0, Dst: 3, Epoch: 2},
	}}
	// Same events, permuted: identical hash.
	b := &Plan{Seed: 1, Events: []Event{
		{Kind: Grey, Src: 0, Dst: 3, Epoch: 2},
		{Kind: Crash, Node: 1, Epoch: 10},
	}}
	if a.Hash() != b.Hash() {
		t.Errorf("permuted plan hashed differently: %s vs %s", a.Hash(), b.Hash())
	}
	// Different seed: different hash.
	c := &Plan{Seed: 2, Events: a.Events}
	if a.Hash() == c.Hash() {
		t.Error("seed not part of the content address")
	}
	// Different event: different hash.
	d := &Plan{Seed: 1, Events: []Event{{Kind: Crash, Node: 2, Epoch: 10}}}
	if a.Hash() == d.Hash() {
		t.Error("distinct plans collided")
	}
	var nilPlan *Plan
	if nilPlan.Hash() != "none" {
		t.Errorf("nil hash = %s", nilPlan.Hash())
	}
}

func TestParseRoundTrip(t *testing.T) {
	p := KillPlan(2, 40, 99)
	q, err := Parse(p.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if q.Hash() != p.Hash() {
		t.Errorf("round trip changed hash: %s vs %s", q.Hash(), p.Hash())
	}
	if q.Seed != 99 || q.CrashEpoch(2) != 40 {
		t.Errorf("round trip lost content: %+v", q)
	}
	if _, err := Parse([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load("/nonexistent/plan.json"); err == nil {
		t.Error("missing file accepted")
	}
}
