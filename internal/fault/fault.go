// Package fault is the deterministic fault-injection plane for the live
// wire testbed (internal/wire): a scripted, seeded plan of failures that
// the emulator (the "grating") and the node loops consult while a run is
// in flight.
//
// The paper's §4.5 failure classes map onto the plan's event kinds:
//
//   - fail-stop node failure  → Crash (the node stops at an epoch boundary)
//   - transceiver/link flap   → Restart (the node drops its TCP connection
//     and re-registers with capped exponential backoff)
//   - grey failure            → Grey (the emulator blackholes one
//     (input, output) port pair: the node looks alive to everyone except
//     the observers it has gone dark toward)
//   - operation below receiver sensitivity → Degrade (per-input-port
//     bit-error-rate override)
//   - slow/soft failure       → Stall (per-input-port frame delay; wall
//     time only, never affects the frame stream's contents)
//
// Every event is keyed to a fabric epoch, and epochs are carried in-band
// by cell sequence numbers, so a plan replays byte-identically: the same
// plan, seed, and topology produce the same frame-level history
// regardless of scheduling or wall-clock timing. Plans are
// content-addressed (Hash) so experiment manifests can name exactly which
// chaos was injected.
package fault

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Kind names a fault event type.
type Kind string

// Event kinds. Crash and Restart execute inside the node loop; Grey,
// Degrade and Stall execute inside the emulator.
const (
	Crash   Kind = "crash"   // node stops before transmitting Epoch (fail-stop)
	Restart Kind = "restart" // node drops its connection at Epoch and re-registers
	Grey    Kind = "grey"    // emulator drops Src→Dst frames for epochs in [Epoch, Until)
	Degrade Kind = "degrade" // emulator applies FlipProb to input Src for [Epoch, Until)
	Stall   Kind = "stall"   // emulator delays input Src's frames by Delay for [Epoch, Until)
)

// Event is one scripted fault. Epoch is the fabric epoch at which it
// activates; Until (exclusive) ends windowed faults, with 0 meaning
// "until the end of the run".
type Event struct {
	Kind  Kind `json:"kind"`
	Epoch int  `json:"epoch"`
	Until int  `json:"until,omitempty"`

	// Node is the subject of Crash/Restart events.
	Node int `json:"node,omitempty"`

	// Src and Dst are emulator port indices (== node ids in the one-uplink
	// testbed). Grey uses both; Degrade and Stall use Src only.
	Src int `json:"src,omitempty"`
	Dst int `json:"dst,omitempty"`

	// FlipProb is the per-bit corruption probability for Degrade events.
	FlipProb float64 `json:"flip_prob,omitempty"`

	// DelayMicros is the per-frame forwarding delay for Stall events, in
	// microseconds (kept integral so plans hash stably across platforms).
	DelayMicros int `json:"delay_us,omitempty"`
}

// Plan is a seeded script of fault events. The seed drives every random
// choice the injection plane makes (per-port corruption substreams), so a
// plan replays byte-identically.
type Plan struct {
	Seed   uint64  `json:"seed"`
	Events []Event `json:"events"`
}

// KillPlan is the common case: fail-stop node crash at the given epoch.
func KillPlan(node, epoch int, seed uint64) *Plan {
	return &Plan{Seed: seed, Events: []Event{{Kind: Crash, Node: node, Epoch: epoch}}}
}

// Validate checks the plan against a topology of the given node count.
func (p *Plan) Validate(nodes int) error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		prefix := fmt.Sprintf("fault: event %d (%s)", i, e.Kind)
		if e.Epoch < 0 {
			return fmt.Errorf("%s: negative epoch %d", prefix, e.Epoch)
		}
		if e.Until != 0 && e.Until <= e.Epoch {
			return fmt.Errorf("%s: until %d not after epoch %d", prefix, e.Until, e.Epoch)
		}
		switch e.Kind {
		case Crash, Restart:
			if e.Node < 0 || e.Node >= nodes {
				return fmt.Errorf("%s: node %d out of range [0,%d)", prefix, e.Node, nodes)
			}
		case Grey:
			if e.Src < 0 || e.Src >= nodes || e.Dst < 0 || e.Dst >= nodes {
				return fmt.Errorf("%s: port pair (%d,%d) out of range [0,%d)", prefix, e.Src, e.Dst, nodes)
			}
		case Degrade:
			if e.Src < 0 || e.Src >= nodes {
				return fmt.Errorf("%s: port %d out of range [0,%d)", prefix, e.Src, nodes)
			}
			if e.FlipProb < 0 || e.FlipProb >= 1 {
				return fmt.Errorf("%s: flip probability %v outside [0,1)", prefix, e.FlipProb)
			}
		case Stall:
			if e.Src < 0 || e.Src >= nodes {
				return fmt.Errorf("%s: port %d out of range [0,%d)", prefix, e.Src, nodes)
			}
			if e.DelayMicros < 0 {
				return fmt.Errorf("%s: negative delay", prefix)
			}
		default:
			return fmt.Errorf("%s: unknown kind", prefix)
		}
	}
	return nil
}

// active reports whether a windowed event applies at the given epoch.
func (e Event) active(epoch int) bool {
	if epoch < e.Epoch {
		return false
	}
	return e.Until == 0 || epoch < e.Until
}

// CrashEpoch returns the epoch at which the node is scripted to crash, or
// -1. The node transmits epochs [0, CrashEpoch) and then dies.
func (p *Plan) CrashEpoch(node int) int { return p.nodeEpoch(Crash, node) }

// RestartEpoch returns the epoch at which the node is scripted to drop
// its connection and re-register, or -1.
func (p *Plan) RestartEpoch(node int) int { return p.nodeEpoch(Restart, node) }

func (p *Plan) nodeEpoch(k Kind, node int) int {
	if p == nil {
		return -1
	}
	for _, e := range p.Events {
		if e.Kind == k && e.Node == node {
			return e.Epoch
		}
	}
	return -1
}

// GreyDrop reports whether a frame from input port src destined output
// port dst at the given epoch is blackholed.
func (p *Plan) GreyDrop(src, dst, epoch int) bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind == Grey && e.Src == src && e.Dst == dst && e.active(epoch) {
			return true
		}
	}
	return false
}

// FlipProb returns the effective per-bit corruption probability for a
// frame from input port src at the given epoch: the largest active
// Degrade override, or base if none applies.
func (p *Plan) FlipProb(src, epoch int, base float64) float64 {
	if p == nil {
		return base
	}
	prob := base
	for _, e := range p.Events {
		if e.Kind == Degrade && e.Src == src && e.active(epoch) && e.FlipProb > prob {
			prob = e.FlipProb
		}
	}
	return prob
}

// StallDelay returns the forwarding delay for a frame from input port src
// at the given epoch (0 if none). Stall affects wall time only.
func (p *Plan) StallDelay(src, epoch int) time.Duration {
	if p == nil {
		return 0
	}
	var d time.Duration
	for _, e := range p.Events {
		if e.Kind == Stall && e.Src == src && e.active(epoch) {
			if dd := time.Duration(e.DelayMicros) * time.Microsecond; dd > d {
				d = dd
			}
		}
	}
	return d
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Canonical returns the canonical JSON encoding: events sorted by
// (epoch, kind, node, src, dst), stable field order. Two plans with the
// same injected behavior canonicalize identically.
func (p *Plan) Canonical() []byte {
	cp := Plan{Seed: p.Seed, Events: append([]Event(nil), p.Events...)}
	sort.SliceStable(cp.Events, func(i, j int) bool {
		a, b := cp.Events[i], cp.Events[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	data, err := json.Marshal(cp)
	if err != nil {
		// Plan contains only marshalable fields; unreachable.
		panic(err)
	}
	return data
}

// Hash content-addresses the plan: a short hex digest of its canonical
// encoding, stable across field ordering and event permutation.
func (p *Plan) Hash() string {
	if p == nil {
		return "none"
	}
	sum := sha256.Sum256(p.Canonical())
	return hex.EncodeToString(sum[:8])
}

// Parse decodes a plan from JSON.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: bad plan: %w", err)
	}
	return &p, nil
}

// Load reads a plan from a JSON file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return Parse(data)
}
