// Package fault is the deterministic fault-injection plane for the live
// wire testbed (internal/wire): a scripted, seeded plan of failures that
// the emulator (the "grating") and the node loops consult while a run is
// in flight.
//
// The paper's §4.5 failure classes map onto the plan's event kinds:
//
//   - fail-stop node failure  → Crash (the node stops at an epoch boundary)
//   - transceiver/link flap   → Flap (the node drops its TCP connection
//     and re-registers with capped exponential backoff)
//   - grey failure            → Grey (the emulator blackholes one
//     (input, output) port pair: the node looks alive to everyone except
//     the observers it has gone dark toward)
//   - operation below receiver sensitivity → Degrade (per-input-port
//     bit-error-rate override)
//   - slow/soft failure       → Stall (per-input-port frame delay; wall
//     time only, never affects the frame stream's contents)
//
// Beyond reactive faults, plans also script *planned* fleet-lifecycle
// operations (the Mission Apollo story — expansion, maintenance drains,
// rolling change):
//
//   - live expansion     → Expand (the node is not an initial member; the
//     running members admit it at an agreed switch epoch)
//   - maintenance drain  → Drain (the node announces, the fabric stops
//     scheduling toward it, it detaches with zero cell loss)
//   - re-add after drain → Readd (the members re-admit a drained node)
//   - rolling restart    → Restart (re-admission of a node that crashed
//     or drained earlier; Validate rejects a Restart with no prior
//     Crash/Drain for that node)
//
// # Overlap precedence
//
// Multiple windowed events may cover the same (port, epoch). The plan
// resolves overlaps deterministically, pinned by tests:
//
//   - Degrade: the effective flip probability is the MAX over all active
//     windows and the base probability — degradations never mask each
//     other or repair the base rate.
//   - Stall: the effective delay is the MAX over all active windows (not
//     first-match) — the slowest overlapping stall wins.
//   - Grey: the union — a frame is dropped if ANY active window matches
//     its (src, dst) pair.
//
// Every event is keyed to a fabric epoch, and epochs are carried in-band
// by cell sequence numbers, so a plan replays byte-identically: the same
// plan, seed, and topology produce the same frame-level history
// regardless of scheduling or wall-clock timing. Plans are
// content-addressed (Hash) so experiment manifests can name exactly which
// chaos was injected.
package fault

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Kind names a fault event type.
type Kind string

// Event kinds. Crash, Flap, Drain and the rejoin kinds (Restart, Readd)
// execute inside the node loop; Expand anchors the epoch at which the
// running members admit a new node; Grey, Degrade and Stall execute
// inside the emulator.
const (
	Crash   Kind = "crash"   // node stops before transmitting Epoch (fail-stop)
	Flap    Kind = "flap"    // node drops its connection at Epoch and re-registers
	Grey    Kind = "grey"    // emulator drops Src→Dst frames for epochs in [Epoch, Until)
	Degrade Kind = "degrade" // emulator applies FlipProb to input Src for [Epoch, Until)
	Stall   Kind = "stall"   // emulator delays input Src's frames by Delay for [Epoch, Until)

	// Lifecycle kinds (planned operations, not faults).
	Expand  Kind = "expand"  // node joins the running fabric: members propose at Epoch, switch at Epoch+2
	Drain   Kind = "drain"   // node announces at Epoch, transmits through Epoch+1, detaches at Epoch+2
	Readd   Kind = "readd"   // members re-admit a previously drained node: propose at Epoch, switch at Epoch+2
	Restart Kind = "restart" // re-admit a node that crashed or drained earlier (rolling restart)
)

// Event is one scripted fault. Epoch is the fabric epoch at which it
// activates; Until (exclusive) ends windowed faults, with 0 meaning
// "until the end of the run".
type Event struct {
	Kind  Kind `json:"kind"`
	Epoch int  `json:"epoch"`
	Until int  `json:"until,omitempty"`

	// Node is the subject of Crash/Flap/Expand/Drain/Readd/Restart events.
	Node int `json:"node,omitempty"`

	// Src and Dst are emulator port indices (== node ids in the one-uplink
	// testbed). Grey uses both; Degrade and Stall use Src only.
	Src int `json:"src,omitempty"`
	Dst int `json:"dst,omitempty"`

	// FlipProb is the per-bit corruption probability for Degrade events.
	FlipProb float64 `json:"flip_prob,omitempty"`

	// DelayMicros is the per-frame forwarding delay for Stall events, in
	// microseconds (kept integral so plans hash stably across platforms).
	DelayMicros int `json:"delay_us,omitempty"`
}

// Plan is a seeded script of fault events. The seed drives every random
// choice the injection plane makes (per-port corruption substreams), so a
// plan replays byte-identically.
type Plan struct {
	Seed   uint64  `json:"seed"`
	Events []Event `json:"events"`
}

// KillPlan is the common case: fail-stop node crash at the given epoch.
func KillPlan(node, epoch int, seed uint64) *Plan {
	return &Plan{Seed: seed, Events: []Event{{Kind: Crash, Node: node, Epoch: epoch}}}
}

// Validate checks the plan against a topology of the given node count.
//
// Beyond per-event range checks it enforces the lifecycle ordering
// contract: at most one event of each per-node kind per node, a Restart
// only after a strictly earlier Crash or Drain of the same node, a Readd
// only after a strictly earlier Drain, at most one rejoin (Restart or
// Readd) per node, and no Crash or Flap scripted for a node that also
// drains or joins late (those interleavings have no defined timeline).
func (p *Plan) Validate(nodes int) error {
	if p == nil {
		return nil
	}
	perNode := map[Kind]map[int]int{} // kind → node → epoch
	for i, e := range p.Events {
		prefix := fmt.Sprintf("fault: event %d (%s)", i, e.Kind)
		if e.Epoch < 0 {
			return fmt.Errorf("%s: negative epoch %d", prefix, e.Epoch)
		}
		if e.Until != 0 && e.Until <= e.Epoch {
			return fmt.Errorf("%s: until %d not after epoch %d", prefix, e.Until, e.Epoch)
		}
		switch e.Kind {
		case Crash, Flap, Expand, Drain, Readd, Restart:
			if e.Node < 0 || e.Node >= nodes {
				return fmt.Errorf("%s: node %d out of range [0,%d)", prefix, e.Node, nodes)
			}
			if _, dup := perNode[e.Kind][e.Node]; dup {
				return fmt.Errorf("%s: duplicate %s event for node %d", prefix, e.Kind, e.Node)
			}
			if perNode[e.Kind] == nil {
				perNode[e.Kind] = map[int]int{}
			}
			perNode[e.Kind][e.Node] = e.Epoch
		case Grey:
			if e.Src < 0 || e.Src >= nodes || e.Dst < 0 || e.Dst >= nodes {
				return fmt.Errorf("%s: port pair (%d,%d) out of range [0,%d)", prefix, e.Src, e.Dst, nodes)
			}
		case Degrade:
			if e.Src < 0 || e.Src >= nodes {
				return fmt.Errorf("%s: port %d out of range [0,%d)", prefix, e.Src, nodes)
			}
			if e.FlipProb < 0 || e.FlipProb >= 1 {
				return fmt.Errorf("%s: flip probability %v outside [0,1)", prefix, e.FlipProb)
			}
		case Stall:
			if e.Src < 0 || e.Src >= nodes {
				return fmt.Errorf("%s: port %d out of range [0,%d)", prefix, e.Src, nodes)
			}
			if e.DelayMicros < 0 {
				return fmt.Errorf("%s: negative delay", prefix)
			}
		default:
			return fmt.Errorf("%s: unknown kind", prefix)
		}
	}
	return p.validateLifecycle(perNode)
}

// validateLifecycle enforces the cross-event ordering rules between the
// per-node lifecycle kinds collected by Validate.
func (p *Plan) validateLifecycle(perNode map[Kind]map[int]int) error {
	epoch := func(k Kind, node int) (int, bool) {
		e, ok := perNode[k][node]
		return e, ok
	}
	for node, re := range perNode[Restart] {
		ce, crashed := epoch(Crash, node)
		de, drained := epoch(Drain, node)
		switch {
		case !crashed && !drained:
			return fmt.Errorf("fault: restart of node %d has no prior crash or drain (use %q for a connection flap)", node, Flap)
		case crashed && re <= ce:
			return fmt.Errorf("fault: restart of node %d at epoch %d not after its crash at %d", node, re, ce)
		case drained && re <= de:
			return fmt.Errorf("fault: restart of node %d at epoch %d not after its drain at %d", node, re, de)
		}
	}
	for node, re := range perNode[Readd] {
		de, drained := epoch(Drain, node)
		if !drained {
			return fmt.Errorf("fault: readd of node %d has no prior drain", node)
		}
		if re <= de {
			return fmt.Errorf("fault: readd of node %d at epoch %d not after its drain at %d", node, re, de)
		}
		if _, also := epoch(Restart, node); also {
			return fmt.Errorf("fault: node %d has both a readd and a restart; script one rejoin", node)
		}
	}
	for node := range perNode[Drain] {
		if _, crashed := epoch(Crash, node); crashed {
			return fmt.Errorf("fault: node %d has both a drain and a crash; the interleaving is undefined", node)
		}
		if _, flaps := epoch(Flap, node); flaps {
			return fmt.Errorf("fault: node %d has both a drain and a flap; the interleaving is undefined", node)
		}
	}
	for node := range perNode[Expand] {
		for _, k := range []Kind{Crash, Flap, Drain} {
			if _, also := epoch(k, node); also {
				return fmt.Errorf("fault: node %d joins late (expand) but also has a %s event; the interleaving is undefined", node, k)
			}
		}
	}
	return nil
}

// active reports whether a windowed event applies at the given epoch.
func (e Event) active(epoch int) bool {
	if epoch < e.Epoch {
		return false
	}
	return e.Until == 0 || epoch < e.Until
}

// CrashEpoch returns the epoch at which the node is scripted to crash, or
// -1. The node transmits epochs [0, CrashEpoch) and then dies.
func (p *Plan) CrashEpoch(node int) int { return p.nodeEpoch(Crash, node) }

// FlapEpoch returns the epoch at which the node is scripted to drop its
// connection and re-register (a link flap), or -1.
func (p *Plan) FlapEpoch(node int) int { return p.nodeEpoch(Flap, node) }

// RestartEpoch returns the epoch at which the members are scripted to
// re-admit the node after its earlier crash or drain (a rolling
// restart), or -1.
func (p *Plan) RestartEpoch(node int) int { return p.nodeEpoch(Restart, node) }

// DrainEpoch returns the epoch at which the node announces its planned
// drain, or -1. The node transmits epochs [0, DrainEpoch+2) and then
// detaches; the switch epoch is DrainEpoch+2.
func (p *Plan) DrainEpoch(node int) int { return p.nodeEpoch(Drain, node) }

// ReaddEpoch returns the epoch at which the members are scripted to
// re-admit the node after its planned drain, or -1.
func (p *Plan) ReaddEpoch(node int) int { return p.nodeEpoch(Readd, node) }

// ExpandEpoch returns the epoch at which the members are scripted to
// admit this late-joining node, or -1 if the node is an initial member.
func (p *Plan) ExpandEpoch(node int) int { return p.nodeEpoch(Expand, node) }

// RejoinEpoch returns the epoch at which the members are scripted to
// re-admit the node — its Restart or Readd event, whichever the plan
// scripts (Validate allows at most one) — or -1.
func (p *Plan) RejoinEpoch(node int) int {
	if e := p.nodeEpoch(Restart, node); e >= 0 {
		return e
	}
	return p.nodeEpoch(Readd, node)
}

// Joiners returns the sorted node ids with Expand events — nodes that
// are NOT initial members and join the running fabric at their scripted
// epoch.
func (p *Plan) Joiners() []int {
	if p == nil {
		return nil
	}
	var js []int
	for _, e := range p.Events {
		if e.Kind == Expand {
			js = append(js, e.Node)
		}
	}
	sort.Ints(js)
	return js
}

func (p *Plan) nodeEpoch(k Kind, node int) int {
	if p == nil {
		return -1
	}
	for _, e := range p.Events {
		if e.Kind == k && e.Node == node {
			return e.Epoch
		}
	}
	return -1
}

// GreyDrop reports whether a frame from input port src destined output
// port dst at the given epoch is blackholed: true if ANY active Grey
// window matches the pair (overlapping windows union).
func (p *Plan) GreyDrop(src, dst, epoch int) bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind == Grey && e.Src == src && e.Dst == dst && e.active(epoch) {
			return true
		}
	}
	return false
}

// FlipProb returns the effective per-bit corruption probability for a
// frame from input port src at the given epoch: the largest active
// Degrade override, or base if none applies.
func (p *Plan) FlipProb(src, epoch int, base float64) float64 {
	if p == nil {
		return base
	}
	prob := base
	for _, e := range p.Events {
		if e.Kind == Degrade && e.Src == src && e.active(epoch) && e.FlipProb > prob {
			prob = e.FlipProb
		}
	}
	return prob
}

// StallDelay returns the forwarding delay for a frame from input port src
// at the given epoch: the LARGEST active Stall window's delay (0 if
// none) — overlapping stalls do not add, the slowest wins. Stall affects
// wall time only.
func (p *Plan) StallDelay(src, epoch int) time.Duration {
	if p == nil {
		return 0
	}
	var d time.Duration
	for _, e := range p.Events {
		if e.Kind == Stall && e.Src == src && e.active(epoch) {
			if dd := time.Duration(e.DelayMicros) * time.Microsecond; dd > d {
				d = dd
			}
		}
	}
	return d
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Canonical returns the canonical JSON encoding: events sorted by
// (epoch, kind, node, src, dst), stable field order. Two plans with the
// same injected behavior canonicalize identically.
func (p *Plan) Canonical() []byte {
	cp := Plan{Seed: p.Seed, Events: append([]Event(nil), p.Events...)}
	sort.SliceStable(cp.Events, func(i, j int) bool {
		a, b := cp.Events[i], cp.Events[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	data, err := json.Marshal(cp)
	if err != nil {
		// Plan contains only marshalable fields; unreachable.
		panic(err)
	}
	return data
}

// Hash content-addresses the plan: a short hex digest of its canonical
// encoding, stable across field ordering and event permutation.
func (p *Plan) Hash() string {
	if p == nil {
		return "none"
	}
	sum := sha256.Sum256(p.Canonical())
	return hex.EncodeToString(sum[:8])
}

// Parse decodes a plan from JSON.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: bad plan: %w", err)
	}
	return &p, nil
}

// Load reads a plan from a JSON file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return Parse(data)
}
