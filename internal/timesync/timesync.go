// Package timesync implements Sirius' decentralized time-synchronization
// protocol (§4.4).
//
// Nanosecond switching needs nodes synchronized to well under 100 ps. The
// passive gratings perform no retiming, so a receiver can extract the
// sender's clock from the incoming bit stream; and the cyclic schedule
// connects every pair once per epoch, so every node periodically hears a
// designated leader and can discipline its oscillator against it with a
// PLL/DLL. The leadership rotates round-robin every few epochs so a failed
// leader is replaced within microseconds. No atomic clocks are required:
// absolute drift is irrelevant as long as the nodes stay synchronized
// *with each other*.
//
// The package also implements the §A.2 propagation-delay calibration: the
// passive core lets a node measure its physical distance to the AWGR (via
// its self-connection slot) and start its epochs early by exactly that
// delay, so that cells from nodes at different fiber distances arrive at
// the grating aligned to the slot boundary.
package timesync

import (
	"fmt"
	"math"

	"sirius/internal/rng"
	"sirius/internal/simtime"
	"sirius/internal/topo"
)

// Oscillator models a node's local clock: a static frequency error plus a
// slow random walk (temperature, aging).
type Oscillator struct {
	OffsetPPM float64 // static frequency error, parts per million
	WalkPPM   float64 // random-walk std dev per update, ppm
}

// DefaultOscillator returns a typical crystal: up to ±20 ppm static error
// with a small random walk — far worse than what uncorrected nanosecond
// slots could tolerate, which is the point of the protocol.
func DefaultOscillator(r *rng.RNG) Oscillator {
	return Oscillator{
		OffsetPPM: (r.Float64()*2 - 1) * 20,
		WalkPPM:   0.01,
	}
}

// Config parameterizes the protocol.
type Config struct {
	Nodes       int
	EpochLen    simtime.Duration
	LeaderTerm  int     // epochs between leader rotations
	MeasNoisePS float64 // std dev of per-epoch phase measurement noise
	PhaseGain   float64 // DLL phase-slew gain (fraction of error removed per epoch)
	FreqGain    float64 // PLL frequency-correction gain
	MaxSlewPPM  float64 // DLL clamp filtering byzantine frequency jumps
	Seed        uint64
}

// DefaultConfig returns a configuration matching the paper's deployment:
// 1.6 us epochs (16 slots x 100 ns) and leader rotation every few epochs.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:       nodes,
		EpochLen:    1600 * simtime.Nanosecond,
		LeaderTerm:  4,
		MeasNoisePS: 0.5,
		PhaseGain:   0.6,
		FreqGain:    0.25,
		MaxSlewPPM:  100,
		Seed:        1,
	}
}

// Network simulates the synchronization protocol across the fabric.
type Network struct {
	cfg    Config
	r      *rng.RNG
	osc    []Oscillator
	corr   []float64 // applied frequency correction, ppm
	phase  []float64 // clock phase error vs ideal time, ps
	failed []bool
	epoch  int
}

// NewNetwork creates a network of nodes with randomized oscillators.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("timesync: need >= 2 nodes")
	}
	if cfg.EpochLen <= 0 {
		return nil, fmt.Errorf("timesync: non-positive epoch")
	}
	if cfg.LeaderTerm < 1 {
		return nil, fmt.Errorf("timesync: leader term must be >= 1")
	}
	n := &Network{
		cfg:    cfg,
		r:      rng.New(cfg.Seed),
		osc:    make([]Oscillator, cfg.Nodes),
		corr:   make([]float64, cfg.Nodes),
		phase:  make([]float64, cfg.Nodes),
		failed: make([]bool, cfg.Nodes),
	}
	for i := range n.osc {
		n.osc[i] = DefaultOscillator(n.r)
	}
	return n, nil
}

// SetOscillator overrides node i's oscillator (for byzantine-clock tests).
func (n *Network) SetOscillator(i int, o Oscillator) { n.osc[i] = o }

// Fail marks node i failed: it stops serving as leader and stops updating.
func (n *Network) Fail(i int) { n.failed[i] = true }

// Leader returns the current leader, skipping failed nodes (the automatic
// replacement of §4.4).
func (n *Network) Leader() int {
	base := (n.epoch / n.cfg.LeaderTerm) % n.cfg.Nodes
	for k := 0; k < n.cfg.Nodes; k++ {
		l := (base + k) % n.cfg.Nodes
		if !n.failed[l] {
			return l
		}
	}
	return -1
}

// Step advances the network by one epoch: oscillators drift, then every
// live node disciplines its clock against the leader's beacon received
// during the epoch.
func (n *Network) Step() {
	epochPS := float64(n.cfg.EpochLen.Picoseconds())
	// Free-running drift.
	for i := range n.phase {
		if n.failed[i] {
			continue
		}
		n.osc[i].OffsetPPM += n.r.Normal(0, n.osc[i].WalkPPM)
		eff := n.osc[i].OffsetPPM - n.corr[i]
		n.phase[i] += eff * 1e-6 * epochPS
	}
	leader := n.Leader()
	if leader < 0 {
		n.epoch++
		return
	}
	// Discipline against the leader.
	for i := range n.phase {
		if i == leader || n.failed[i] {
			continue
		}
		measured := n.phase[i] - n.phase[leader] + n.r.Normal(0, n.cfg.MeasNoisePS)
		// DLL phase slew, clamped to filter out absurd corrections
		// (partially addressing byzantine clocks, §4.4).
		slew := n.cfg.PhaseGain * measured
		maxSlew := n.cfg.MaxSlewPPM * 1e-6 * epochPS
		slew = math.Max(-maxSlew, math.Min(maxSlew, slew))
		n.phase[i] -= slew
		// PLL frequency correction from the same observation.
		freqErrPPM := measured / epochPS * 1e6
		corr := n.cfg.FreqGain * freqErrPPM
		corr = math.Max(-n.cfg.MaxSlewPPM, math.Min(n.cfg.MaxSlewPPM, corr))
		n.corr[i] += corr
	}
	n.epoch++
}

// Spread returns the current maximum pairwise phase difference across live
// nodes, in picoseconds — the "±x ps" accuracy metric of §6.
func (n *Network) Spread() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, p := range n.phase {
		if n.failed[i] {
			continue
		}
		lo = math.Min(lo, p)
		hi = math.Max(hi, p)
	}
	return hi - lo
}

// Stats summarizes a run.
type Stats struct {
	Epochs      int
	MaxSpreadPS float64 // worst pairwise deviation after warmup
	EndSpreadPS float64
}

// Run advances the network for the given number of epochs, ignoring the
// first warmup epochs when recording the maximum spread.
func (n *Network) Run(epochs, warmup int) Stats {
	s := Stats{Epochs: epochs}
	for e := 0; e < epochs; e++ {
		n.Step()
		if e >= warmup {
			s.MaxSpreadPS = math.Max(s.MaxSpreadPS, n.Spread())
		}
	}
	s.EndSpreadPS = n.Spread()
	return s
}

// Calibration holds the per-node propagation compensation of §A.2.
type Calibration struct {
	// Delay is each node's one-way fiber delay to the grating layer,
	// measured via the loopback self-slot (RTT/2).
	Delay []simtime.Duration
}

// Calibrate measures every node's distance to the AWGR. In the real system
// the node transmits to itself on its self-connection slot and halves the
// round-trip time; here that measurement is exact by construction.
func Calibrate(fiberM []float64) Calibration {
	c := Calibration{Delay: make([]simtime.Duration, len(fiberM))}
	for i, m := range fiberM {
		rtt := topo.PropagationDelay(2 * m)
		c.Delay[i] = rtt / 2
	}
	return c
}

// CalibrateNoisy models the real §A.2 measurement: each node times its
// loopback round trip with per-sample jitter (receiver quantization,
// residual sync error) and averages `samples` measurements. It returns
// the calibration and the worst per-node estimation error.
func CalibrateNoisy(fiberM []float64, noisePS float64, samples int, seed uint64) (Calibration, simtime.Duration) {
	if samples < 1 {
		panic("timesync: need >= 1 sample")
	}
	r := rng.New(seed)
	c := Calibration{Delay: make([]simtime.Duration, len(fiberM))}
	var worst simtime.Duration
	for i, m := range fiberM {
		truth := topo.PropagationDelay(m)
		sum := 0.0
		for s := 0; s < samples; s++ {
			rtt := 2*float64(truth) + r.Normal(0, noisePS*float64(simtime.Picosecond))
			sum += rtt / 2
		}
		c.Delay[i] = simtime.Duration(sum / float64(samples))
		err := c.Delay[i] - truth
		if err < 0 {
			err = -err
		}
		if err > worst {
			worst = err
		}
	}
	return c, worst
}

// TxAdvance returns how much earlier than the nominal slot boundary node i
// must start transmitting: exactly its fiber delay, so the cell reaches
// the grating on the boundary ("the longer the distance, the sooner it
// starts").
func (c Calibration) TxAdvance(i int) simtime.Duration { return c.Delay[i] }

// ArrivalAtGrating returns when a cell transmitted by node i for the slot
// starting at slotStart reaches the grating, given the calibration.
func (c Calibration) ArrivalAtGrating(i int, slotStart simtime.Time) simtime.Time {
	return slotStart.Add(-c.TxAdvance(i)).Add(c.Delay[i])
}

// RxDelay returns how much after the slot boundary node j's receive window
// must open for a cell that crossed the grating on the boundary.
func (c Calibration) RxDelay(j int) simtime.Duration { return c.Delay[j] }

// PairLatency returns the end-to-end propagation latency from node i to
// node j through the grating.
func (c Calibration) PairLatency(i, j int) simtime.Duration {
	return c.Delay[i] + c.Delay[j]
}
