package timesync

import (
	"math"
	"testing"

	"sirius/internal/simtime"
	"sirius/internal/topo"
)

func TestSyncAccuracy(t *testing.T) {
	// §6: over a long run, the maximum phase deviation stays within a few
	// picoseconds (the prototype measured ±5 ps over 24 h). We simulate
	// 200k epochs (~0.3 s of fabric time) and require the spread to stay
	// within ±10 ps after convergence.
	nw, err := NewNetwork(DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	s := nw.Run(200_000, 1_000)
	if s.MaxSpreadPS > 20 { // ±10 ps
		t.Errorf("max spread = %.2f ps, want <= 20 (±10 ps)", s.MaxSpreadPS)
	}
}

func TestUnsynchronizedDrift(t *testing.T) {
	// Sanity: without the protocol, ±20 ppm oscillators drift apart by
	// tens of nanoseconds within a millisecond — nanosecond slots would
	// be impossible. (PhaseGain/FreqGain zero disables correction.)
	cfg := DefaultConfig(8)
	cfg.PhaseGain, cfg.FreqGain = 0, 0
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := nw.Run(625, 0) // 625 x 1.6us = 1 ms
	if s.EndSpreadPS < 1000 {
		t.Errorf("free-running spread after 1ms = %.0f ps; expected huge drift", s.EndSpreadPS)
	}
}

func TestLeaderRotation(t *testing.T) {
	cfg := DefaultConfig(4)
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for e := 0; e < cfg.LeaderTerm*8; e++ {
		seen[nw.Leader()] = true
		nw.Step()
	}
	if len(seen) != 4 {
		t.Errorf("leaders seen = %v, want all 4 nodes", seen)
	}
}

func TestLeaderFailover(t *testing.T) {
	// §4.4: if a node fails during its leadership it is replaced
	// automatically; synchronization of the survivors persists.
	cfg := DefaultConfig(6)
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(5_000, 0)
	nw.Fail(nw.Leader())
	s := nw.Run(50_000, 1_000)
	if s.MaxSpreadPS > 20 {
		t.Errorf("post-failover spread = %.2f ps, want <= 20", s.MaxSpreadPS)
	}
	if nw.Leader() < 0 {
		t.Error("no live leader found")
	}
}

func TestAllFailed(t *testing.T) {
	nw, _ := NewNetwork(DefaultConfig(2))
	nw.Fail(0)
	nw.Fail(1)
	if nw.Leader() != -1 {
		t.Error("leader elected among failed nodes")
	}
	nw.Step() // must not panic
}

func TestByzantineClockFiltered(t *testing.T) {
	// §4.4: the DLL clamp filters too-large frequency variations. A node
	// with a wild oscillator must not drag the others with it when it
	// becomes leader.
	cfg := DefaultConfig(5)
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetOscillator(0, Oscillator{OffsetPPM: 5000, WalkPPM: 0}) // insane clock
	nw.Run(20_000, 0)
	// Spread including the byzantine node is large, but the sane nodes
	// must stay mutually synchronized: check them pairwise via Fail(0)
	// (excluding it from the metric).
	nw.Fail(0)
	s := nw.Run(20_000, 1_000)
	if s.MaxSpreadPS > 50 {
		t.Errorf("sane nodes spread = %.2f ps with byzantine peer, want bounded", s.MaxSpreadPS)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewNetwork(Config{Nodes: 1, EpochLen: 1, LeaderTerm: 1}); err == nil {
		t.Error("1-node network accepted")
	}
	if _, err := NewNetwork(Config{Nodes: 2, EpochLen: 0, LeaderTerm: 1}); err == nil {
		t.Error("zero epoch accepted")
	}
	if _, err := NewNetwork(Config{Nodes: 2, EpochLen: 1, LeaderTerm: 0}); err == nil {
		t.Error("zero leader term accepted")
	}
}

func TestCalibrationAlignsArrivals(t *testing.T) {
	// §A.2: nodes at different fiber distances start their epochs earlier
	// by their own delay, so all slot-aligned cells hit the grating at
	// the same instant.
	fibers := []float64{10, 250, 499, 37}
	c := Calibrate(fibers)
	slotStart := simtime.Time(1000 * simtime.Nanosecond)
	want := c.ArrivalAtGrating(0, slotStart)
	for i := range fibers {
		if got := c.ArrivalAtGrating(i, slotStart); got != want {
			t.Errorf("node %d arrival %v != node 0 arrival %v", i, got, want)
		}
	}
	// And the arrival is exactly the slot boundary.
	if want != slotStart {
		t.Errorf("arrival %v, want slot start %v", want, slotStart)
	}
}

func TestCalibrationDelays(t *testing.T) {
	c := Calibrate([]float64{500})
	// 500 m at 2e8 m/s = 2.5 us.
	if c.Delay[0] != 2500*simtime.Nanosecond {
		t.Errorf("delay = %v, want 2.5us", c.Delay[0])
	}
	if c.TxAdvance(0) != c.Delay[0] || c.RxDelay(0) != c.Delay[0] {
		t.Error("advance/rx delay should equal the fiber delay")
	}
}

func TestPairLatency(t *testing.T) {
	c := Calibrate([]float64{100, 400})
	want := topo.PropagationDelay(100) + topo.PropagationDelay(400)
	if got := c.PairLatency(0, 1); got != want {
		t.Errorf("pair latency = %v, want %v", got, want)
	}
	// Worst case in a 500 m datacenter: detour adds up to 2x500 m = 5 us
	// extra path, i.e. 2.5 us of extra one-way propagation per §4.2.
	c2 := Calibrate([]float64{500, 500})
	if c2.PairLatency(0, 1) != 5000*simtime.Nanosecond {
		t.Errorf("max pair latency = %v, want 5us", c2.PairLatency(0, 1))
	}
}

func TestSpreadExcludesFailed(t *testing.T) {
	nw, _ := NewNetwork(DefaultConfig(3))
	nw.Run(1000, 0)
	before := nw.Spread()
	if math.IsInf(before, 0) {
		t.Fatal("spread inf with live nodes")
	}
	nw.Fail(2)
	_ = nw.Spread() // must not include failed node or panic
}

func TestCalibrateNoisyConverges(t *testing.T) {
	fibers := []float64{10, 250, 499}
	// Single noisy sample: error on the order of the jitter.
	_, worst1 := CalibrateNoisy(fibers, 40, 1, 1)
	// Averaging 400 samples shrinks the error by ~sqrt(400) = 20x.
	_, worst400 := CalibrateNoisy(fibers, 40, 400, 1)
	if worst400*5 >= worst1 {
		t.Errorf("averaging did not converge: 1 sample ±%v, 400 samples ±%v",
			worst1, worst400)
	}
	// 400 averaged samples of 40 ps jitter land within ~10 ps — inside
	// the guardband's sync allowance.
	if worst400 > 10*simtime.Picosecond {
		t.Errorf("calibration error %v too large", worst400)
	}
}

func TestCalibrateNoisyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("0 samples did not panic")
		}
	}()
	CalibrateNoisy([]float64{1}, 1, 0, 1)
}
