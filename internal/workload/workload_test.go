package workload

import (
	"math"
	"testing"
	"testing/quick"

	"sirius/internal/simtime"
)

func testConfig(flows int) Config {
	return DefaultConfig(64, 400*simtime.Gbps, 0.5, flows)
}

func TestGenerateBasics(t *testing.T) {
	flows, err := Generate(testConfig(5000))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 5000 {
		t.Fatalf("generated %d flows", len(flows))
	}
	var prev simtime.Time
	for i, f := range flows {
		if f.ID != i {
			t.Fatalf("flow %d has ID %d", i, f.ID)
		}
		if f.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = f.Arrival
		if f.Src == f.Dst {
			t.Fatalf("flow %d sends to itself", i)
		}
		if f.Src < 0 || f.Src >= 64 || f.Dst < 0 || f.Dst >= 64 {
			t.Fatalf("flow %d endpoints out of range: %d->%d", i, f.Src, f.Dst)
		}
		if f.Bytes < 1 {
			t.Fatalf("flow %d has %d bytes", i, f.Bytes)
		}
	}
}

func TestGenerateLoadCalibration(t *testing.T) {
	// The realized offered rate (bytes/duration) should approximate
	// L * N * R.
	cfg := testConfig(30000)
	flows, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := TotalBytes(flows)
	dur := flows[len(flows)-1].Arrival.Seconds()
	offered := float64(total) * 8 / dur
	want := cfg.Load * float64(cfg.NodeRate) * float64(cfg.Nodes)
	// Pareto(1.05) sample means converge extremely slowly (the tail index
	// is barely above 1), so the realized rate sits well below nominal for
	// any finite sample; allow a wide band and require the right order of
	// magnitude.
	if offered < want*0.2 || offered > want*1.5 {
		t.Errorf("offered rate = %.3g bps, want ~%.3g", offered, want)
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	flows, err := Generate(testConfig(30000))
	if err != nil {
		t.Fatal(err)
	}
	// Most flows below the mean, most bytes in large flows.
	small, smallBytes, total := 0, int64(0), TotalBytes(flows)
	for _, f := range flows {
		if f.Bytes < 100_000 {
			small++
			smallBytes += int64(f.Bytes)
		}
	}
	if frac := float64(small) / float64(len(flows)); frac < 0.85 {
		t.Errorf("small-flow fraction = %v, want > 0.85", frac)
	}
	if frac := float64(smallBytes) / float64(total); frac > 0.7 {
		t.Errorf("small flows carry %v of bytes; tail should dominate", frac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(testConfig(100))
	b, _ := Generate(testConfig(100))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
	cfg := testConfig(100)
	cfg.Seed = 2
	c, _ := Generate(cfg)
	same := 0
	for i := range a {
		if a[i].Bytes == c[i].Bytes {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestPermutationPattern(t *testing.T) {
	cfg := testConfig(2000)
	cfg.Pattern = Permutation
	flows, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dstOf := map[int]int{}
	for _, f := range flows {
		if prev, ok := dstOf[f.Src]; ok && prev != f.Dst {
			t.Fatalf("source %d sends to both %d and %d", f.Src, prev, f.Dst)
		}
		dstOf[f.Src] = f.Dst
		if f.Src == f.Dst {
			t.Fatal("permutation has a fixed point")
		}
	}
}

func TestHotspotPattern(t *testing.T) {
	cfg := testConfig(5000)
	cfg.Pattern = Hotspot
	cfg.HotFraction = 0.5
	flows, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		if f.Dst == 0 {
			hot++
		}
	}
	frac := float64(hot) / float64(len(flows))
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("hot fraction = %v, want ~0.5", frac)
	}
}

func TestIncastPattern(t *testing.T) {
	cfg := testConfig(500)
	cfg.Pattern = Incast
	flows, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if f.Dst != 0 || f.Src == 0 {
			t.Fatalf("incast flow %d->%d", f.Src, f.Dst)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 1 },
		func(c *Config) { c.NodeRate = 0 },
		func(c *Config) { c.Load = 0 },
		func(c *Config) { c.Load = 1.5 },
		func(c *Config) { c.MeanFlowBytes = 0 },
		func(c *Config) { c.ParetoShape = 1.0 },
		func(c *Config) { c.Flows = 0 },
	}
	for i, mutate := range bad {
		cfg := testConfig(10)
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPropertyEndpointsValid(t *testing.T) {
	f := func(seed uint64, patRaw uint8) bool {
		cfg := testConfig(200)
		cfg.Seed = seed
		cfg.Pattern = Pattern(patRaw % 4)
		cfg.HotFraction = 0.3
		flows, err := Generate(cfg)
		if err != nil {
			return false
		}
		for _, fl := range flows {
			if fl.Src == fl.Dst || fl.Src < 0 || fl.Dst < 0 ||
				fl.Src >= cfg.Nodes || fl.Dst >= cfg.Nodes || fl.Bytes < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPacketMixQuantiles(t *testing.T) {
	// §2.2: over 34% of packets under 128 B; 97.8% at or under 576 B.
	m := NewPacketMix(1)
	s := m.MeasureMix(200000)
	if s.FracUnder128 < 0.33 || s.FracUnder128 > 0.36 {
		t.Errorf("frac < 128B = %v, want ~0.345", s.FracUnder128)
	}
	if math.Abs(s.FracUpTo576-0.978) > 0.01 {
		t.Errorf("frac <= 576B = %v, want ~0.978", s.FracUpTo576)
	}
	if s.MeanBytes < 64 || s.MeanBytes > 1500 {
		t.Errorf("mean = %v bytes, implausible", s.MeanBytes)
	}
}

func TestPacketMixRange(t *testing.T) {
	m := NewPacketMix(2)
	for i := 0; i < 100000; i++ {
		s := m.Sample()
		if s < 64 || s > 1500 {
			t.Fatalf("packet size %d outside [64,1500]", s)
		}
	}
}

func TestTotalBytes(t *testing.T) {
	flows := []Flow{{Bytes: 10}, {Bytes: 20}, {Bytes: 30}}
	if TotalBytes(flows) != 60 {
		t.Error("TotalBytes wrong")
	}
}

func TestAllToAll(t *testing.T) {
	flows, err := AllToAll(4, 1000, 2, simtime.Duration(10*simtime.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2*4*3 {
		t.Fatalf("flows = %d, want 24", len(flows))
	}
	seen := map[[3]int]bool{}
	for i, f := range flows {
		if f.ID != i || f.Src == f.Dst || f.Bytes != 1000 {
			t.Fatalf("bad flow %+v", f)
		}
		wave := int(f.Arrival / simtime.Time(10*simtime.Microsecond))
		key := [3]int{wave, f.Src, f.Dst}
		if seen[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		seen[key] = true
	}
	if _, err := AllToAll(1, 1, 1, 0); err == nil {
		t.Error("1-node all-to-all accepted")
	}
}

func TestBroadcast(t *testing.T) {
	flows, err := Broadcast(2, 5, 777, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 4 {
		t.Fatalf("flows = %d", len(flows))
	}
	for _, f := range flows {
		if f.Src != 2 || f.Dst == 2 || f.Bytes != 777 {
			t.Fatalf("bad flow %+v", f)
		}
	}
	if _, err := Broadcast(9, 5, 1, 0); err == nil {
		t.Error("out-of-range source accepted")
	}
}
