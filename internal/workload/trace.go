package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"sirius/internal/simtime"
)

// WriteCSV writes flows as a CSV trace with the header
// "arrival_ns,src,dst,bytes" — a stable interchange format so users can
// replay their own traces through any of the simulators.
func WriteCSV(w io.Writer, flows []Flow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arrival_ns", "src", "dst", "bytes"}); err != nil {
		return err
	}
	for _, f := range flows {
		rec := []string{
			strconv.FormatFloat(simtime.Duration(f.Arrival).Nanoseconds(), 'f', 3, 64),
			strconv.Itoa(f.Src),
			strconv.Itoa(f.Dst),
			strconv.Itoa(f.Bytes),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a flow trace written by WriteCSV (or hand-made in the
// same format). Flows are sorted by arrival and re-IDed by position, as
// the simulators require.
func ReadCSV(r io.Reader) ([]Flow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	start := 0
	if recs[0][0] == "arrival_ns" {
		start = 1
	}
	flows := make([]Flow, 0, len(recs)-start)
	for i, rec := range recs[start:] {
		arr, err1 := strconv.ParseFloat(rec[0], 64)
		src, err2 := strconv.Atoi(rec[1])
		dst, err3 := strconv.Atoi(rec[2])
		bytes, err4 := strconv.Atoi(rec[3])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("workload: trace line %d: malformed record %v", i+start+1, rec)
		}
		if arr < 0 || src < 0 || dst < 0 || src == dst || bytes < 1 {
			return nil, fmt.Errorf("workload: trace line %d: invalid flow %v", i+start+1, rec)
		}
		flows = append(flows, Flow{
			Src:     src,
			Dst:     dst,
			Bytes:   bytes,
			Arrival: simtime.Time(arr * float64(simtime.Nanosecond)),
		})
	}
	sort.SliceStable(flows, func(i, j int) bool { return flows[i].Arrival < flows[j].Arrival })
	for i := range flows {
		flows[i].ID = i
	}
	return flows, nil
}
