// Package workload generates the synthetic traffic of §7: heavy-tailed
// flow sizes (Pareto, shape 1.05, mean 100 KB), Poisson arrivals, and
// uniformly random endpoints — plus the additional patterns (permutation,
// hotspot, incast) used for ablations, and the §2.2 production packet-size
// mixture.
package workload

import (
	"fmt"

	"sirius/internal/rng"
	"sirius/internal/simtime"
)

// Flow is one transfer between two nodes.
type Flow struct {
	ID      int
	Src     int
	Dst     int
	Bytes   int
	Arrival simtime.Time
}

// Pattern selects how flow endpoints are drawn.
type Pattern int

// Patterns.
const (
	// Uniform draws source and destination uniformly at random (the
	// paper's default).
	Uniform Pattern = iota
	// Permutation fixes a random permutation and always sends i -> p(i).
	Permutation
	// Hotspot sends a configurable fraction of flows to node 0.
	Hotspot
	// Incast makes every flow target node 0.
	Incast
)

// Config parameterizes the generator.
type Config struct {
	Nodes         int
	NodeRate      simtime.Rate // per-node reference bandwidth R
	Load          float64      // offered load L in (0, 1]
	MeanFlowBytes float64      // F
	ParetoShape   float64      // 1.05 in the paper
	Flows         int          // how many flows to generate
	Pattern       Pattern
	HotFraction   float64 // for Hotspot: fraction of flows to node 0
	Seed          uint64
}

// DefaultConfig returns the paper's §7 workload scaled by the given fabric
// size: Pareto(1.05) with 100 KB mean, Poisson arrivals, uniform pairs.
func DefaultConfig(nodes int, nodeRate simtime.Rate, load float64, flows int) Config {
	return Config{
		Nodes:         nodes,
		NodeRate:      nodeRate,
		Load:          load,
		MeanFlowBytes: 100e3,
		ParetoShape:   1.05,
		Flows:         flows,
		Pattern:       Uniform,
		Seed:          1,
	}
}

// Generate produces the flow list, sorted by arrival time.
//
// The load definition follows §7: L = F/(R·N·τ) where τ is the mean flow
// inter-arrival time, so τ = F/(R·N·L) and the aggregate arrival rate is
// N·R·L/F flows per second.
func Generate(cfg Config) ([]Flow, error) {
	switch {
	case cfg.Nodes < 2:
		return nil, fmt.Errorf("workload: need >= 2 nodes")
	case cfg.NodeRate <= 0:
		return nil, fmt.Errorf("workload: non-positive node rate")
	case cfg.Load <= 0 || cfg.Load > 1.0001:
		return nil, fmt.Errorf("workload: load %v outside (0,1]", cfg.Load)
	case cfg.MeanFlowBytes <= 0:
		return nil, fmt.Errorf("workload: non-positive mean flow size")
	case cfg.ParetoShape <= 1:
		return nil, fmt.Errorf("workload: Pareto shape must be > 1")
	case cfg.Flows < 1:
		return nil, fmt.Errorf("workload: need >= 1 flow")
	}
	r := rng.New(cfg.Seed)
	var perm []int
	if cfg.Pattern == Permutation {
		perm = derangement(r, cfg.Nodes)
	}

	meanGapSec := cfg.MeanFlowBytes * 8 / (float64(cfg.NodeRate) * float64(cfg.Nodes) * cfg.Load)
	flows := make([]Flow, cfg.Flows)
	var now float64 // seconds
	var totalBytes float64
	for i := range flows {
		now += r.Exp(meanGapSec)
		size := int(r.Pareto(cfg.ParetoShape, cfg.MeanFlowBytes))
		if size < 1 {
			size = 1
		}
		totalBytes += float64(size)
		src, dst := endpoints(r, cfg, perm)
		flows[i] = Flow{
			ID:      i,
			Src:     src,
			Dst:     dst,
			Bytes:   size,
			Arrival: simtime.Time(now * float64(simtime.Second)),
		}
	}
	// Pareto(1.05) sample means sit far below the distribution mean for
	// any realistic sample count, which would silently deflate the
	// realized offered load. Rescale the arrival times so the realized
	// offered rate over the arrival window is exactly L·N·R, preserving
	// the Poisson structure.
	if cfg.Flows > 1 && now > 0 {
		target := cfg.Load * float64(cfg.NodeRate) * float64(cfg.Nodes) // bits/s
		window := totalBytes * 8 / target                               // seconds
		scale := window / now
		for i := range flows {
			flows[i].Arrival = simtime.Time(float64(flows[i].Arrival) * scale)
		}
	}
	return flows, nil
}

func endpoints(r *rng.RNG, cfg Config, perm []int) (src, dst int) {
	switch cfg.Pattern {
	case Uniform:
		src = r.Intn(cfg.Nodes)
		dst = r.Intn(cfg.Nodes - 1)
		if dst >= src {
			dst++
		}
	case Permutation:
		src = r.Intn(cfg.Nodes)
		dst = perm[src]
	case Hotspot:
		src = r.Intn(cfg.Nodes-1) + 1
		if r.Float64() < cfg.HotFraction {
			dst = 0
		} else {
			// Uniform over {1..Nodes-1} \ {src}: keep non-hot traffic off
			// the hot node and off the source itself.
			dst = 1 + r.Intn(cfg.Nodes-2)
			if dst >= src {
				dst++
			}
		}
	case Incast:
		src = r.Intn(cfg.Nodes-1) + 1
		dst = 0
	default:
		panic(fmt.Sprintf("workload: unknown pattern %d", cfg.Pattern))
	}
	return src, dst
}

// derangement returns a random permutation with no fixed points.
func derangement(r *rng.RNG, n int) []int {
	for {
		p := r.Perm(n)
		ok := true
		for i, v := range p {
			if i == v {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
}

// TotalBytes sums the flow sizes.
func TotalBytes(flows []Flow) int64 {
	var total int64
	for _, f := range flows {
		total += int64(f.Bytes)
	}
	return total
}

// PacketMix models the §2.2 production packet-size distribution: the
// March 2019 production-cloud traces where over 34% of packets are under
// 128 bytes and 97.8% are 576 bytes or less.
type PacketMix struct {
	r *rng.RNG
}

// NewPacketMix returns a sampler for the production mixture.
func NewPacketMix(seed uint64) *PacketMix { return &PacketMix{r: rng.New(seed)} }

// Sample draws one packet size in bytes.
func (m *PacketMix) Sample() int {
	u := m.r.Float64()
	switch {
	case u < 0.345: // small RPCs and acks: 64..127 B
		return 64 + m.r.Intn(64)
	case u < 0.978: // the key-value store band: 128..576 B
		return 128 + m.r.Intn(449)
	default: // the bulk tail: 577..1500 B
		return 577 + m.r.Intn(924)
	}
}

// MixStats summarizes a sampled mixture.
type MixStats struct {
	N            int
	FracUnder128 float64
	FracUpTo576  float64
	MeanBytes    float64
}

// MeasureMix samples n packets and reports the paper's two quantiles.
func (m *PacketMix) MeasureMix(n int) MixStats {
	if n < 1 {
		panic("workload: need >= 1 sample")
	}
	var under128, upTo576, sum int
	for i := 0; i < n; i++ {
		s := m.Sample()
		if s < 128 {
			under128++
		}
		if s <= 576 {
			upTo576++
		}
		sum += s
	}
	return MixStats{
		N:            n,
		FracUnder128: float64(under128) / float64(n),
		FracUpTo576:  float64(upTo576) / float64(n),
		MeanBytes:    float64(sum) / float64(n),
	}
}

// AllToAll generates the deterministic all-to-all exchange underlying
// shuffle phases (map-reduce, distributed join): in each of `waves`
// rounds, every ordered pair of nodes exchanges bytesPerPair, rounds
// spaced by interval. This is the worst case for Valiant load balancing
// (§4.2: throughput at most 2x below non-blocking).
func AllToAll(nodes, bytesPerPair, waves int, interval simtime.Duration) ([]Flow, error) {
	if nodes < 2 || bytesPerPair < 1 || waves < 1 || interval < 0 {
		return nil, fmt.Errorf("workload: invalid all-to-all parameters")
	}
	flows := make([]Flow, 0, waves*nodes*(nodes-1))
	for w := 0; w < waves; w++ {
		at := simtime.Time(int64(w) * int64(interval))
		for src := 0; src < nodes; src++ {
			for dst := 0; dst < nodes; dst++ {
				if src == dst {
					continue
				}
				flows = append(flows, Flow{
					ID: len(flows), Src: src, Dst: dst,
					Bytes: bytesPerPair, Arrival: at,
				})
			}
		}
	}
	return flows, nil
}

// Broadcast generates a one-to-all transfer of bytesPerPeer from src.
func Broadcast(src, nodes, bytesPerPeer int, at simtime.Duration) ([]Flow, error) {
	if nodes < 2 || src < 0 || src >= nodes || bytesPerPeer < 1 {
		return nil, fmt.Errorf("workload: invalid broadcast parameters")
	}
	flows := make([]Flow, 0, nodes-1)
	for dst := 0; dst < nodes; dst++ {
		if dst == src {
			continue
		}
		flows = append(flows, Flow{
			ID: len(flows), Src: src, Dst: dst,
			Bytes: bytesPerPeer, Arrival: simtime.Time(at),
		})
	}
	return flows, nil
}
