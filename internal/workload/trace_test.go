package workload

import (
	"strings"
	"testing"

	"sirius/internal/simtime"
)

func TestTraceRoundTrip(t *testing.T) {
	orig, err := Generate(DefaultConfig(16, 400*simtime.Gbps, 0.5, 200))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("read %d flows, wrote %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].ID != i {
			t.Fatalf("flow %d re-IDed as %d", i, got[i].ID)
		}
		if got[i].Src != orig[i].Src || got[i].Dst != orig[i].Dst || got[i].Bytes != orig[i].Bytes {
			t.Fatalf("flow %d mismatch: %+v vs %+v", i, got[i], orig[i])
		}
		// Arrivals round-trip to sub-nanosecond precision.
		d := got[i].Arrival - orig[i].Arrival
		if d < 0 {
			d = -d
		}
		if d > simtime.Time(simtime.Nanosecond) {
			t.Fatalf("flow %d arrival off by %v", i, simtime.Duration(d))
		}
	}
}

func TestReadCSVHeaderOptional(t *testing.T) {
	noHeader := "100.0,0,1,5000\n50.0,2,3,900\n"
	flows, err := ReadCSV(strings.NewReader(noHeader))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Fatalf("flows = %d", len(flows))
	}
	// Sorted by arrival: the 50ns flow first.
	if flows[0].Src != 2 || flows[0].ID != 0 {
		t.Errorf("sorting/re-ID broken: %+v", flows[0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"arrival_ns,src,dst,bytes\nnope,0,1,100\n",
		"arrival_ns,src,dst,bytes\n10,0,0,100\n", // self flow
		"arrival_ns,src,dst,bytes\n10,0,1,0\n",   // zero bytes
		"arrival_ns,src,dst,bytes\n-5,0,1,100\n", // negative arrival
		"arrival_ns,src,dst,bytes\n10,0,1\n",     // short record
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad trace accepted", i)
		}
	}
}
