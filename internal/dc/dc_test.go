package dc

import (
	"testing"

	"sirius/internal/rng"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

func smallConfig() Config {
	c := DefaultConfig(16)
	c.ServersPerRack = 4
	c.ServerRate = 50 * simtime.Gbps
	return c
}

// serverFlows builds a uniform server-level workload.
func serverFlows(t *testing.T, c Config, n int, seed uint64) []workload.Flow {
	t.Helper()
	r := rng.New(seed)
	servers := c.Servers()
	flows := make([]workload.Flow, n)
	var at simtime.Time
	for i := range flows {
		at = at.Add(simtime.Duration(r.Intn(2000)) * simtime.Nanosecond)
		src := r.Intn(servers)
		dst := r.Intn(servers - 1)
		if dst >= src {
			dst++
		}
		flows[i] = workload.Flow{ID: i, Src: src, Dst: dst,
			Bytes: 1000 + r.Intn(60000), Arrival: at}
	}
	return flows
}

func TestRunMixedTraffic(t *testing.T) {
	c := smallConfig()
	flows := serverFlows(t, c, 800, 3)
	res, err := Run(c, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d of %d", res.Completed, len(flows))
	}
	if res.IntraRack == 0 || res.InterRack == 0 {
		t.Fatalf("expected both traffic classes, got intra=%d inter=%d",
			res.IntraRack, res.InterRack)
	}
	if res.IntraRack+res.InterRack != len(flows) {
		t.Error("partition does not cover all flows")
	}
	if res.FCTAll.Count() != len(flows) {
		t.Errorf("FCT count %d != %d flows", res.FCTAll.Count(), len(flows))
	}
	if res.ServerGoodput <= 0 || res.ServerGoodput > 1.2 {
		t.Errorf("server goodput = %v", res.ServerGoodput)
	}
}

func TestIntraRackFasterThanInterRack(t *testing.T) {
	// Same size transfer: staying inside the rack avoids the fabric
	// epoch and grant latency entirely.
	c := smallConfig()
	const bytes = 20_000
	intra := []workload.Flow{{ID: 0, Src: 0, Dst: 1, Bytes: bytes}}
	inter := []workload.Flow{{ID: 0, Src: 0, Dst: c.ServersPerRack, Bytes: bytes}}
	ri, err := Run(c, intra)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Run(c, inter)
	if err != nil {
		t.Fatal(err)
	}
	if ri.IntraRack != 1 || re.InterRack != 1 {
		t.Fatal("misclassified flows")
	}
	if ri.FCTAll.Max() >= re.FCTAll.Max() {
		t.Errorf("intra-rack FCT %v not below inter-rack %v",
			ri.FCTAll.Max(), re.FCTAll.Max())
	}
}

func TestServerNICFloor(t *testing.T) {
	// A big inter-rack flow from one server cannot beat its own NIC:
	// 1 MB at 50 Gbps is 160 us even though the rack uplinks are faster.
	c := smallConfig()
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: c.ServersPerRack, Bytes: 1 << 20}}
	res, err := Run(c, flows)
	if err != nil {
		t.Fatal(err)
	}
	floorMS := float64((1<<20)*8) / 50e9 * 1e3
	if got := res.FCTAll.Max(); got < floorMS {
		t.Errorf("FCT %v ms beat the server NIC floor %v ms", got, floorMS)
	}
}

func TestLocalStaysBounded(t *testing.T) {
	c := smallConfig()
	c.LocalCells = 48
	flows := serverFlows(t, c, 1500, 9)
	res, err := Run(c, flows)
	if err != nil {
		t.Fatal(err)
	}
	cell := c.Slot.CellBytes
	if res.PeakLocalBytes > 0 && res.PeakLocalBytes > 48*cell*16 {
		// PeakLocalBytes reports the fabric-side queue peak; LOCAL proper
		// is enforced inside core (panic on violation). This is a sanity
		// ceiling only.
		t.Errorf("implausible peak %d", res.PeakLocalBytes)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d of %d", res.Completed, len(flows))
	}
}

func TestValidation(t *testing.T) {
	good := smallConfig()
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: 5, Bytes: 10}}
	bad := good
	bad.Racks = 1
	if _, err := Run(bad, flows); err == nil {
		t.Error("1 rack accepted")
	}
	bad = good
	bad.GratingPorts = 3
	if _, err := Run(bad, flows); err == nil {
		t.Error("non-dividing gratings accepted")
	}
	bad = good
	bad.ServerRate = 0
	if _, err := Run(bad, flows); err == nil {
		t.Error("zero server rate accepted")
	}
	if _, err := Run(good, []workload.Flow{{ID: 0, Src: 0, Dst: 0, Bytes: 1}}); err == nil {
		t.Error("self flow accepted")
	}
	if _, err := Run(good, []workload.Flow{{ID: 5, Src: 0, Dst: 1, Bytes: 1}}); err == nil {
		t.Error("bad flow ID accepted")
	}
}

func TestDefaultConfigShapes(t *testing.T) {
	c := DefaultConfig(128)
	if c.GratingPorts != 16 || c.ServersPerRack != 24 {
		t.Errorf("paper-scale defaults wrong: %+v", c)
	}
	if c.Servers() != 3072 {
		t.Errorf("servers = %d, want 3072 (the paper's setup)", c.Servers())
	}
	if c.RackOf(25) != 1 {
		t.Error("RackOf wrong")
	}
}
