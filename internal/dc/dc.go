// Package dc composes the full rack-based deployment at server
// granularity (§4.1): servers with their own NICs sit behind rack
// switches; intra-rack traffic is switched electrically inside the rack,
// inter-rack traffic crosses the Sirius fabric, paced into the rack
// switch's LOCAL buffer by the credit-based intra-rack tier (§4.3). The
// paper's §7 metrics — *server* goodput and flow completion times — are
// measured here at the server level.
//
// Composition and its approximations (documented per DESIGN.md §1):
//
//   - Inter-rack flows run through the slot-level Sirius simulator at
//     rack granularity with the intra-rack tier modeled as aggregate
//     ingress pacing plus a bounded LOCAL (core.InjectRate/LocalCap).
//     Each flow's completion is additionally floored by its own server
//     NIC serialization at both ends — a single server cannot exceed its
//     link rate even when the rack aggregate has headroom.
//   - Intra-rack flows never touch the fabric: they are served by a
//     max-min fair model of the rack's internal switching (per-rack
//     fluid run over the rack's own endpoints).
package dc

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"sirius/internal/core"
	"sirius/internal/fluid"
	"sirius/internal/metrics"
	"sirius/internal/phy"
	"sirius/internal/schedule"
	"sirius/internal/simtime"
	"sirius/internal/telemetry"
	"sirius/internal/workload"
)

// Config shapes the deployment.
type Config struct {
	Racks          int
	ServersPerRack int
	GratingPorts   int // AWGR ports; Racks must be a multiple
	// UplinkMultiplier provisions the rack uplinks (1.5 default-style).
	UplinkMultiplier float64
	// ServerRate is each server's NIC rate.
	ServerRate simtime.Rate
	// Slot is the optical timeslot (phy.DefaultSlot if zero).
	Slot phy.Slot
	// Q is the congestion-control queue bound (4 if zero).
	Q int
	// LocalCells bounds the rack switch LOCAL buffer (default 8 cells
	// per server).
	LocalCells int
	Seed       uint64
	// Parallel bounds how many intra-rack fluid simulations run
	// concurrently: 0 picks GOMAXPROCS, 1 forces the serial path. The
	// racks are independent systems and their results are merged in
	// rack-index order either way, so the parallel composition is
	// byte-identical to the serial one (pinned by
	// TestParallelMatchesSerial and the golden fixtures).
	Parallel int
}

// DefaultConfig mirrors the paper's §7 deployment shape at the given
// size: 24 servers per rack behind 8x50G base uplinks.
func DefaultConfig(racks int) Config {
	ports := racks / 8
	if ports < 2 {
		ports = 2
	}
	for racks%ports != 0 {
		ports--
	}
	return Config{
		Racks:            racks,
		ServersPerRack:   24,
		GratingPorts:     ports,
		UplinkMultiplier: 1.5,
		ServerRate:       25 * simtime.Gbps,
		Slot:             phy.DefaultSlot(),
		Q:                4,
		Seed:             1,
	}
}

// Servers returns the total server count.
func (c Config) Servers() int { return c.Racks * c.ServersPerRack }

// RackOf maps a server to its rack.
func (c Config) RackOf(server int) int { return server / c.ServersPerRack }

// Results holds server-level metrics.
type Results struct {
	Flows, Completed     int
	IntraRack, InterRack int
	DeliveredBytes       int64
	// ServerGoodput is delivered bytes over the arrival window,
	// normalized by Servers x ServerRate.
	ServerGoodput float64
	// FCTAll and FCTShort in milliseconds, as elsewhere.
	FCTAll, FCTShort metrics.Sample
	// PeakLocalBytes is the worst aggregate forward-queue occupancy at
	// any rack switch on the fabric side (the LOCAL buffer itself is
	// bounded by construction and enforced inside internal/core).
	PeakLocalBytes int
}

// Process-wide observability counters (mirrors core.Counters and
// fluid.Counters): cumulative flows completed by dc runs and intra-rack
// fluid simulations executed, for cmd/siriussim's -perf summary.
var (
	statFlows    atomic.Int64
	statRackRuns atomic.Int64
)

// Counters reports the cumulative number of server-level flows completed
// and intra-rack simulations executed by every Run in this process.
func Counters() (flows, rackRuns int64) {
	return statFlows.Load(), statRackRuns.Load()
}

// Run simulates server-level flows to completion.
func Run(cfg Config, flows []workload.Flow) (*Results, error) {
	return RunContext(context.Background(), cfg, flows)
}

// RunContext is Run with cancellation, forwarded to the underlying fluid
// (intra-rack) and core (inter-rack fabric) simulations.
func RunContext(ctx context.Context, cfg Config, flows []workload.Flow) (*Results, error) {
	switch {
	case cfg.Racks < 2 || cfg.ServersPerRack < 1:
		return nil, fmt.Errorf("dc: need >= 2 racks and >= 1 server per rack")
	case cfg.GratingPorts < 1 || cfg.Racks%cfg.GratingPorts != 0:
		return nil, fmt.Errorf("dc: racks (%d) must divide into gratings (%d)", cfg.Racks, cfg.GratingPorts)
	case cfg.UplinkMultiplier < 1:
		return nil, fmt.Errorf("dc: uplink multiplier below 1")
	case cfg.ServerRate <= 0:
		return nil, fmt.Errorf("dc: non-positive server rate")
	}
	if cfg.Slot.CellBytes == 0 {
		cfg.Slot = phy.DefaultSlot()
	}
	if cfg.Q == 0 {
		cfg.Q = 4
	}
	if cfg.LocalCells == 0 {
		cfg.LocalCells = 8 * cfg.ServersPerRack
	}
	servers := cfg.Servers()
	for i, f := range flows {
		if f.Src < 0 || f.Src >= servers || f.Dst < 0 || f.Dst >= servers ||
			f.Src == f.Dst || f.Bytes < 1 {
			return nil, fmt.Errorf("dc: invalid flow %+v", f)
		}
		if f.ID != i {
			return nil, fmt.Errorf("dc: flow IDs must equal their index")
		}
	}

	// Partition into intra-rack traffic (per rack) and inter-rack
	// traffic (rack-granularity endpoints for the fabric). A counting
	// pre-pass sizes every slice exactly, so the fill pass appends into
	// preallocated capacity and the partition allocates nothing beyond
	// the slices themselves.
	intraCount := make([]int, cfg.Racks)
	interCount := 0
	for _, f := range flows {
		if sr, dr := cfg.RackOf(f.Src), cfg.RackOf(f.Dst); sr == dr {
			intraCount[sr]++
		} else {
			interCount++
		}
	}
	intraByRack := make([][]workload.Flow, cfg.Racks)
	for r, n := range intraCount {
		if n > 0 {
			intraByRack[r] = make([]workload.Flow, 0, n)
		}
	}
	inter := make([]workload.Flow, 0, interCount)
	interOrig := make([]workload.Flow, 0, interCount) // original server endpoints, same order
	res := &Results{Flows: len(flows)}
	var window simtime.Time
	for _, f := range flows {
		if f.Arrival > window {
			window = f.Arrival
		}
		sr, dr := cfg.RackOf(f.Src), cfg.RackOf(f.Dst)
		if sr == dr {
			g := f
			g.ID = len(intraByRack[sr])
			g.Src = f.Src % cfg.ServersPerRack
			g.Dst = f.Dst % cfg.ServersPerRack
			intraByRack[sr] = append(intraByRack[sr], g)
			res.IntraRack++
			continue
		}
		g := f
		g.ID = len(inter)
		g.Src, g.Dst = sr, dr
		inter = append(inter, g)
		interOrig = append(interOrig, f)
		res.InterRack++
	}

	addFCT := func(ms float64, bytes int) {
		res.FCTAll.Add(ms)
		if bytes < 100_000 {
			res.FCTShort.Add(ms)
		}
	}
	var windowBytes int64

	// Intra-rack traffic: per-rack max-min sharing of server NICs. The
	// racks are independent systems, so their fluid simulations fan out
	// over a bounded worker pool; the results land in a rack-indexed
	// slice and are folded below in rack order, making the parallel
	// composition byte-identical to a serial run.
	rackRes, err := runRacks(ctx, cfg, intraByRack)
	if err != nil {
		return nil, err
	}
	for _, r := range rackRes {
		if r == nil {
			continue
		}
		res.Completed += r.Completed
		res.DeliveredBytes += r.DeliveredBytes
		res.FCTAll.Merge(&r.FCTAll)
		res.FCTShort.Merge(&r.FCTShort)
		// Intra-rack transfers finish at NIC speed; count them inside
		// the window (their arrival spread matches the global window).
		windowBytes += r.DeliveredBytes
	}

	// Inter-rack traffic: the Sirius fabric at rack granularity with the
	// intra-rack tier as ingress pacing.
	if len(inter) > 0 {
		groups := cfg.Racks / cfg.GratingPorts
		uplinks := int(math.Round(float64(groups) * cfg.UplinkMultiplier))
		var sched schedule.Schedule
		var err error
		if uplinks%groups == 0 {
			sched, err = schedule.NewGrouped(cfg.Racks, cfg.GratingPorts, uplinks/groups)
		} else {
			sched, err = schedule.NewRotor(cfg.Racks, uplinks)
		}
		if err != nil {
			return nil, err
		}
		aggBits := float64(cfg.ServersPerRack) * float64(cfg.ServerRate) * cfg.Slot.Duration().Seconds()
		injectRate := int(aggBits / float64(cfg.Slot.CellBytes*8))
		if injectRate < 1 {
			injectRate = 1
		}
		cres, err := core.RunContext(ctx, core.Config{
			Schedule:      sched,
			Slot:          cfg.Slot,
			Q:             cfg.Q,
			NormalizeRate: simtime.Rate(cfg.ServersPerRack) * cfg.ServerRate,
			InjectRate:    injectRate,
			LocalCap:      cfg.LocalCells,
			Seed:          cfg.Seed,
			KeepPerFlow:   true,
		}, inter)
		if err != nil {
			return nil, err
		}
		res.Completed += cres.Completed
		res.DeliveredBytes += cres.DeliveredBytes
		res.PeakLocalBytes = cres.PeakNodeQueueBytes
		// A flow pipelines through its server NIC and the fabric; its
		// completion is no earlier than its own NIC serialization plus
		// the last cell's fabric traversal (grant round trip + slot).
		epoch := cfg.Slot.Duration() * simtime.Duration(sched.SlotsPerEpoch())
		tail := 2*epoch + cfg.Slot.Duration()
		for i := range inter {
			fct := cres.PerFlowFCT[i]
			if fct < 0 {
				continue
			}
			if nicFloor := cfg.ServerRate.TimeToSend(interOrig[i].Bytes) + tail; fct < nicFloor {
				fct = nicFloor
			}
			ms := fct.Seconds() * 1e3
			addFCT(ms, interOrig[i].Bytes)
			if interOrig[i].Arrival.Add(fct) <= window {
				windowBytes += int64(interOrig[i].Bytes)
			}
		}
	}

	if window > 0 {
		res.ServerGoodput = float64(windowBytes) * 8 /
			(window.Seconds() * float64(servers) * float64(cfg.ServerRate))
	}
	statFlows.Add(int64(res.Completed))
	// Telemetry flush, once per composed run (observe-only; the racks'
	// own fluid runs publish their counters from fluid.finish).
	reg := telemetry.Default
	reg.Counter("sirius_dc_runs_total").Inc()
	reg.Counter("sirius_dc_flows_completed_total").Add(int64(res.Completed))
	return res, nil
}

// rackFluid runs one rack's intra-rack traffic through the max-min fluid
// model of its internal switching.
func rackFluid(ctx context.Context, cfg Config, fl []workload.Flow) (*fluid.Results, error) {
	return fluid.RunContext(ctx, fluid.Config{
		Endpoints:    cfg.ServersPerRack,
		EndpointRate: cfg.ServerRate,
		Oversub:      1,
		// Two store-and-forward hops through the rack switch.
		BaseRTT: 2 * cfg.ServerRate.TimeToSend(1500),
	}, fl)
}

// runRacks executes the per-rack intra-rack simulations, serially or on a
// bounded worker pool per cfg.Parallel, and returns the results indexed
// by rack (nil for racks without intra-rack traffic). Each rack is an
// independent simulation with its own engine state, so execution order
// cannot affect any rack's output; the caller folds the slice in rack
// order, so the merged result is identical regardless of worker count.
func runRacks(ctx context.Context, cfg Config, intraByRack [][]workload.Flow) ([]*fluid.Results, error) {
	work := make([]int, 0, len(intraByRack))
	for rack, fl := range intraByRack {
		if len(fl) > 0 {
			work = append(work, rack)
		}
	}
	statRackRuns.Add(int64(len(work)))
	telemetry.Default.Counter("sirius_dc_rack_runs_total").Add(int64(len(work)))
	out := make([]*fluid.Results, len(intraByRack))
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = len(work)
	}
	telemetry.Default.Gauge("sirius_dc_rack_workers").SetInt(int64(workers))
	if workers <= 1 {
		// Serial path: poll ctx between racks so a cancelled sweep stops
		// at a rack boundary even when individual racks are tiny.
		for _, rack := range work {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := rackFluid(ctx, cfg, intraByRack[rack])
			if err != nil {
				return nil, fmt.Errorf("dc: rack %d intra traffic: %w", rack, err)
			}
			out[rack] = r
		}
		return out, nil
	}
	// Parallel path: racks are handed out through a buffered index
	// channel; the first failure cancels the shared context so the
	// remaining racks abort promptly.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int, len(work))
	for _, rack := range work {
		jobs <- rack
	}
	close(jobs)
	errs := make([]error, len(intraByRack))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rack := range jobs {
				r, err := rackFluid(cctx, cfg, intraByRack[rack])
				if err != nil {
					errs[rack] = err
					cancel()
					continue
				}
				out[rack] = r
			}
		}()
	}
	wg.Wait()
	// Prefer the caller's cancellation over the induced per-rack ctx
	// errors, then report the lowest-numbered failing rack.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for rack, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dc: rack %d intra traffic: %w", rack, err)
		}
	}
	return out, nil
}
