package dc

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sirius/internal/rng"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// The golden determinism tests pin the server-level composition's output
// at fixed seeds. The fixtures under testdata/ were generated BEFORE the
// rack-parallel fan-out and the fluid-solver rewrite, so a passing run
// proves (a) the rewritten intra-rack solver is output-preserving and
// (b) the parallel per-rack composition merges into byte-identical
// results — every field here is exact (dc never consumes the one
// map-order-noisy fluid field, GoodputNorm; its own goodput is computed
// from integer byte counters).
//
// Regenerate (only on an intentional semantic change) with:
//
//	go test ./internal/dc -run TestGolden -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden determinism fixtures")

type goldenSummary struct {
	Flows          int
	Completed      int
	IntraRack      int
	InterRack      int
	DeliveredBytes int64
	ServerGoodput  float64
	FCTAllCount    int
	FCTAllMean     float64
	FCTAllMin      float64
	FCTAllP50      float64
	FCTAllP99      float64
	FCTAllMax      float64
	FCTShortCount  int
	FCTShortP99    float64
	PeakLocalBytes int
}

func summarize(res *Results) goldenSummary {
	g := goldenSummary{
		Flows:          res.Flows,
		Completed:      res.Completed,
		IntraRack:      res.IntraRack,
		InterRack:      res.InterRack,
		DeliveredBytes: res.DeliveredBytes,
		ServerGoodput:  res.ServerGoodput,
		FCTAllCount:    res.FCTAll.Count(),
		FCTShortCount:  res.FCTShort.Count(),
		PeakLocalBytes: res.PeakLocalBytes,
	}
	if g.FCTAllCount > 0 {
		g.FCTAllMean = res.FCTAll.Mean()
		g.FCTAllMin = res.FCTAll.Min()
		g.FCTAllP50 = res.FCTAll.Percentile(50)
		g.FCTAllP99 = res.FCTAll.Percentile(99)
		g.FCTAllMax = res.FCTAll.Max()
	}
	if g.FCTShortCount > 0 {
		g.FCTShortP99 = res.FCTShort.Percentile(99)
	}
	return g
}

// goldenFlows builds a deterministic uniform server-level workload (the
// same shape the package tests use, kept independent of workload.Generate
// so the mixture of intra- and inter-rack traffic is controlled).
func goldenFlows(c Config, n int, seed uint64) []workload.Flow {
	r := rng.New(seed)
	servers := c.Servers()
	flows := make([]workload.Flow, n)
	var at simtime.Time
	for i := range flows {
		at = at.Add(simtime.Duration(r.Intn(2000)) * simtime.Nanosecond)
		src := r.Intn(servers)
		dst := r.Intn(servers - 1)
		if dst >= src {
			dst++
		}
		flows[i] = workload.Flow{ID: i, Src: src, Dst: dst,
			Bytes: 1000 + r.Intn(60000), Arrival: at}
	}
	return flows
}

func goldenCases() map[string]func() (Config, []workload.Flow) {
	return map[string]func() (Config, []workload.Flow){
		"mixed16": func() (Config, []workload.Flow) {
			c := DefaultConfig(16)
			c.ServersPerRack = 4
			c.ServerRate = 50 * simtime.Gbps
			return c, goldenFlows(c, 800, 3)
		},
		"mixed32": func() (Config, []workload.Flow) {
			c := DefaultConfig(32)
			c.ServersPerRack = 8
			c.ServerRate = 25 * simtime.Gbps
			return c, goldenFlows(c, 1200, 9)
		},
		"poisson": func() (Config, []workload.Flow) {
			c := DefaultConfig(16)
			c.ServersPerRack = 4
			c.ServerRate = 50 * simtime.Gbps
			wcfg := workload.DefaultConfig(c.Servers(), c.ServerRate, 0.5, 600)
			wcfg.Seed = 21
			flows, err := workload.Generate(wcfg)
			if err != nil {
				panic(err)
			}
			return c, flows
		},
	}
}

func TestGoldenDeterminism(t *testing.T) {
	for name, build := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			cfg, flows := build()
			res, err := Run(cfg, flows)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(summarize(res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden_"+name+".json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden fixture missing (run with -update-golden): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("results diverge from the golden fixture %s\n got: %s\nwant: %s",
					path, got, want)
			}
			// The rack-parallel composition must reproduce the fixture
			// too, whatever GOMAXPROCS the test runs under.
			pcfg := cfg
			pcfg.Parallel = 4
			pres, err := Run(pcfg, flows)
			if err != nil {
				t.Fatal(err)
			}
			pgot, err := json.MarshalIndent(summarize(pres), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if string(append(pgot, '\n')) != string(want) {
				t.Errorf("parallel (4 workers) diverges from the golden fixture %s\n got: %s\nwant: %s",
					path, pgot, want)
			}
		})
	}
}
