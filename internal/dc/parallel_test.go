package dc

import (
	"context"
	"reflect"
	"testing"

	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// TestParallelMatchesSerial pins the tentpole contract of the rack-fan-out:
// the merged Results of a parallel run are deep-equal to the serial run —
// not just summary statistics, but every FCT observation in the same
// order, so percentiles, CDFs and goodput are byte-identical downstream.
func TestParallelMatchesSerial(t *testing.T) {
	c := smallConfig()
	flows := serverFlows(t, c, 1000, 17)

	serialCfg := c
	serialCfg.Parallel = 1
	want, err := Run(serialCfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if want.IntraRack == 0 || want.InterRack == 0 {
		t.Fatalf("workload must mix traffic (intra %d, inter %d)", want.IntraRack, want.InterRack)
	}
	for _, workers := range []int{0, 2, 4, 16} {
		pcfg := c
		pcfg.Parallel = workers
		got, err := Run(pcfg, flows)
		if err != nil {
			t.Fatalf("Parallel=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want.FCTAll.Values(), got.FCTAll.Values()) {
			t.Errorf("Parallel=%d: FCTAll observations diverge from serial", workers)
		}
		if !reflect.DeepEqual(want.FCTShort.Values(), got.FCTShort.Values()) {
			t.Errorf("Parallel=%d: FCTShort observations diverge from serial", workers)
		}
		if want.Completed != got.Completed || want.DeliveredBytes != got.DeliveredBytes ||
			want.ServerGoodput != got.ServerGoodput ||
			want.PeakLocalBytes != got.PeakLocalBytes {
			t.Errorf("Parallel=%d: summary diverges: serial %+v parallel %+v",
				workers, want, got)
		}
	}
}

// TestParallelCancellation checks that both rack-execution paths abort
// with the context's error instead of returning partial results.
func TestParallelCancellation(t *testing.T) {
	c := smallConfig()
	// Intra-rack only, so cancellation must surface from the rack loop
	// itself rather than the fabric simulation.
	var flows []workload.Flow
	var at simtime.Time
	for i := 0; i < 4000; i++ {
		at = at.Add(500 * simtime.Nanosecond)
		rack := i % c.Racks
		base := rack * c.ServersPerRack
		flows = append(flows, workload.Flow{ID: i, Src: base + i%c.ServersPerRack,
			Dst: base + (i+1)%c.ServersPerRack, Bytes: 50_000, Arrival: at})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		pcfg := c
		pcfg.Parallel = workers
		if _, err := RunContext(ctx, pcfg, flows); err != context.Canceled {
			t.Errorf("Parallel=%d: want context.Canceled, got %v", workers, err)
		}
	}
}

// TestCountersAdvance checks the process-wide dc counters move when a
// run completes.
func TestCountersAdvance(t *testing.T) {
	f0, r0 := Counters()
	c := smallConfig()
	res, err := Run(c, serverFlows(t, c, 200, 8))
	if err != nil {
		t.Fatal(err)
	}
	f1, r1 := Counters()
	if f1-f0 != int64(res.Completed) {
		t.Errorf("flow counter advanced by %d, want %d", f1-f0, res.Completed)
	}
	if r1-r0 <= 0 {
		t.Errorf("rack-run counter did not advance (%d -> %d)", r0, r1)
	}
}
