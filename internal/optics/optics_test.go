package optics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAWGRCyclicRouting(t *testing.T) {
	// Fig. 3a: a 4-port AWGR routes wavelength j on input i to output
	// (i+j) mod 4.
	a := NewAWGR(4, 6)
	cases := []struct{ in, w, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 2}, {0, 3, 3},
		{1, 0, 1}, {1, 3, 0},
		{3, 3, 2},
	}
	for _, c := range cases {
		if got := a.Route(c.in, Wavelength(c.w)); got != c.want {
			t.Errorf("Route(%d, %d) = %d, want %d", c.in, c.w, got, c.want)
		}
	}
}

func TestAWGRPermutationProperty(t *testing.T) {
	// For a fixed wavelength, the input->output map is a permutation
	// (no two inputs collide on one output): the physical basis of the
	// contention-free schedule.
	f := func(ports uint8, w uint8) bool {
		p := int(ports%100) + 1
		a := NewAWGR(p, 6)
		seen := make([]bool, p)
		for in := 0; in < p; in++ {
			out := a.Route(in, Wavelength(w))
			if seen[out] {
				return false
			}
			seen[out] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAWGRWavelengthForInverse(t *testing.T) {
	f := func(ports uint8, in, out uint8) bool {
		p := int(ports%100) + 1
		a := NewAWGR(p, 6)
		i, o := int(in)%p, int(out)%p
		w := a.WavelengthFor(i, o)
		return a.Route(i, w) == o && int(w) < p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAWGRAllToAll(t *testing.T) {
	// Every input can reach every output with some wavelength < ports.
	a := NewAWGR(16, 6)
	for in := 0; in < 16; in++ {
		reached := make([]bool, 16)
		for w := 0; w < 16; w++ {
			reached[a.Route(in, Wavelength(w))] = true
		}
		for out, ok := range reached {
			if !ok {
				t.Fatalf("input %d cannot reach output %d", in, out)
			}
		}
	}
}

func TestGridWavelengths(t *testing.T) {
	g := DefaultGrid()
	if g.Channels != 112 {
		t.Fatalf("channels = %d, want 112", g.Channels)
	}
	// 50 GHz spacing at 1550 nm is ~0.4 nm between adjacent channels.
	d := g.NM(1) - g.NM(0)
	if d < 0.35 || d > 0.45 {
		t.Errorf("adjacent spacing = %v nm, want ~0.4", d)
	}
	// The grid spans the C-band: ~1530-1570 nm.
	lo, hi := g.NM(0), g.NM(Wavelength(g.Channels-1))
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < 1500 || hi > 1600 {
		t.Errorf("grid spans [%v, %v] nm, want inside C-band region", lo, hi)
	}
	// Fig. 8b's channels exist on the grid.
	w1 := g.Nearest(1552.524)
	w2 := g.Nearest(1552.926)
	if w2-w1 != 1 {
		t.Errorf("1552.524 and 1552.926 nm should be adjacent channels, got %d and %d", w1, w2)
	}
}

func TestDBmConversions(t *testing.T) {
	if got := DBmToMilliwatts(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("0 dBm = %v mW, want 1", got)
	}
	if got := DBmToMilliwatts(-8); math.Abs(got-0.158) > 0.01 {
		t.Errorf("-8 dBm = %v mW, want ~0.158 (paper: 0.16 mW)", got)
	}
	if got := DBmToMilliwatts(16); math.Abs(got-39.8) > 0.5 {
		t.Errorf("16 dBm = %v mW, want ~40 (paper)", got)
	}
	if got := DBmToMilliwatts(7); math.Abs(got-5.01) > 0.1 {
		t.Errorf("7 dBm = %v mW, want ~5 (paper)", got)
	}
	f := func(mw float64) bool {
		mw = math.Abs(mw) + 0.001
		return math.Abs(DBmToMilliwatts(MilliwattsToDBm(mw))-mw) < mw*1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkBudgetPaperNumbers(t *testing.T) {
	b := DefaultLinkBudget()
	// §4.5: losses of 6+7 dB plus 2 dB margin against -8 dBm sensitivity
	// require 7 dBm of laser power.
	if got := b.RequiredLaserDBm(); math.Abs(got-7) > 1e-9 {
		t.Errorf("required laser power = %v dBm, want 7", got)
	}
	if !b.Closes() {
		t.Error("16 dBm budget should close")
	}
	// A 16 dBm laser supports sharing across 8 transceivers (paper).
	if got := b.MaxSplit(); got != 8 {
		t.Errorf("MaxSplit = %d, want 8", got)
	}
}

func TestLinkBudgetFailsBelowSensitivity(t *testing.T) {
	b := DefaultLinkBudget()
	b.LaserOutputDBm = 6.9
	if b.Closes() {
		t.Error("budget closed with insufficient laser power")
	}
}

func TestBERWaterfall(t *testing.T) {
	m := DefaultBERModel()
	// At sensitivity, BER equals the FEC threshold.
	at := m.BER(-8, 0)
	if math.Abs(math.Log10(at)-math.Log10(m.FECThreshold)) > 0.05 {
		t.Errorf("BER at sensitivity = %v, want ~%v", at, m.FECThreshold)
	}
	// Monotone decreasing with power.
	prev := 1.0
	for p := -12.0; p <= -2; p += 0.5 {
		b := m.BER(p, 0)
		if b > prev {
			t.Fatalf("BER not monotone at %v dBm: %v > %v", p, b, prev)
		}
		prev = b
	}
	// Error-free post-FEC at and above -8 dBm; not below -9 dBm.
	if !m.PostFECErrorFree(-8, 0) {
		t.Error("not error-free at -8 dBm")
	}
	if m.PostFECErrorFree(-10, 0) {
		t.Error("error-free at -10 dBm, should not be")
	}
}

func TestBERChannelPenalty(t *testing.T) {
	m := DefaultBERModel()
	m.ChannelPenaltyDB = map[Wavelength]float64{3: 1.0}
	if m.BER(-8, 3) <= m.BER(-8, 0) {
		t.Error("penalized channel should have higher BER")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewAWGR(0)", func() { NewAWGR(0, 6) })
	mustPanic("negative loss", func() { NewAWGR(4, -1) })
	mustPanic("bad input port", func() { NewAWGR(4, 6).Route(4, 0) })
	mustPanic("negative wavelength", func() { NewAWGR(4, 6).Route(0, -1) })
	mustPanic("MilliwattsToDBm(0)", func() { MilliwattsToDBm(0) })
	mustPanic("grid out of range", func() { DefaultGrid().NM(-1) })
}

func TestCrosstalkPenalty(t *testing.T) {
	a := NewAWGR(100, 6)
	// No neighbors: no penalty.
	if got := a.CrosstalkPenaltyDB(0); got != 0 {
		t.Errorf("penalty with no neighbors = %v", got)
	}
	// Fully lit 100-port grating at -30 dB/channel: 99 leakers sum to
	// ~0.099 relative power -> ~0.78 dB — within the 2 dB budget margin.
	full := a.CrosstalkPenaltyDB(99)
	if full < 0.5 || full > 1.2 {
		t.Errorf("fully lit penalty = %v dB, want ~0.78", full)
	}
	if full >= 2 {
		t.Error("penalty exceeds the §4.5 budget margin; the design would not close")
	}
	// Penalty grows with the number of active neighbors.
	if a.CrosstalkPenaltyDB(10) >= full {
		t.Error("penalty not monotone in neighbors")
	}
	// Clamped at ports-1.
	if a.CrosstalkPenaltyDB(1000) != full {
		t.Error("neighbor clamp broken")
	}
	// A worse device (-20 dB) fully lit would blow the margin.
	b := NewAWGR(100, 6)
	b.SetCrosstalk(-20)
	if b.CrosstalkPenaltyDB(99) < 2 {
		t.Error("-20 dB crosstalk should exceed the margin when fully lit")
	}
}

func TestCrosstalkPanics(t *testing.T) {
	a := NewAWGR(4, 6)
	for name, f := range map[string]func(){
		"positive crosstalk": func() { a.SetCrosstalk(1) },
		"negative neighbors": func() { a.CrosstalkPenaltyDB(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
