// Package optics models the passive optical substrate of Sirius: the
// C-band wavelength grid, the arrayed waveguide grating router (AWGR) that
// routes light cyclically by wavelength, optical power arithmetic, the
// insertion-loss link budget of §4.5, and the BER-vs-received-power
// waterfall used for the Fig. 8d reproduction.
package optics

import (
	"fmt"
	"math"
)

// Wavelength indexes a channel on the ITU C-band grid. Wavelength 0 is the
// lowest-frequency channel in the configured grid.
type Wavelength int

// Grid describes the optical channel plan. The paper uses ~100 wavelengths
// in the C-band with 50 GHz spacing around 1550 nm.
type Grid struct {
	Channels  int     // number of wavelengths
	SpacingHz float64 // channel spacing in Hz (50 GHz default)
	CenterNM  float64 // wavelength (nm) of the middle channel
}

// DefaultGrid is the paper's channel plan: 112 channels at 50 GHz spacing
// around 1550 nm (the DSDBR prototype tunes across 112 wavelengths).
func DefaultGrid() Grid {
	return Grid{Channels: 112, SpacingHz: 50e9, CenterNM: 1550}
}

const lightSpeed = 299_792_458.0 // m/s

// NM returns the physical wavelength of channel w in nanometres.
// Channels are evenly spaced in frequency, as on the real ITU grid.
func (g Grid) NM(w Wavelength) float64 {
	if w < 0 || int(w) >= g.Channels {
		panic(fmt.Sprintf("optics: wavelength %d outside grid of %d", w, g.Channels))
	}
	centerHz := lightSpeed / (g.CenterNM * 1e-9)
	// Channel index relative to the centre channel.
	rel := float64(w) - float64(g.Channels-1)/2
	hz := centerHz - rel*g.SpacingHz // higher channel index = longer wavelength
	return lightSpeed / hz * 1e9
}

// Nearest returns the grid channel whose physical wavelength is closest to
// nm.
func (g Grid) Nearest(nm float64) Wavelength {
	best, bestDiff := Wavelength(0), math.Inf(1)
	for w := 0; w < g.Channels; w++ {
		d := math.Abs(g.NM(Wavelength(w)) - nm)
		if d < bestDiff {
			best, bestDiff = Wavelength(w), d
		}
	}
	return best
}

// AWGR is an arrayed waveguide grating router: a passive NxN device that
// routes each wavelength on each input port to a fixed output port, in the
// cyclic pattern of Fig. 3a: wavelength j arriving on input i exits on
// output (i + j) mod N. It consumes no power, keeps no state, and performs
// no retiming — properties the time-synchronization design relies on.
type AWGR struct {
	ports           int
	insertionLossDB float64
	crosstalkDB     float64
}

// NewAWGR returns a grating with the given port count and insertion loss.
// The paper fabricates 100-port gratings at a maximum 6 dB insertion loss.
// Adjacent-channel crosstalk defaults to -30 dB (typical of fabricated
// AWGRs); use SetCrosstalk to model worse devices.
func NewAWGR(ports int, insertionLossDB float64) *AWGR {
	if ports <= 0 {
		panic("optics: AWGR needs at least one port")
	}
	if insertionLossDB < 0 {
		panic("optics: negative insertion loss")
	}
	return &AWGR{ports: ports, insertionLossDB: insertionLossDB, crosstalkDB: -30}
}

// SetCrosstalk sets the per-adjacent-channel leakage (dB, negative).
func (a *AWGR) SetCrosstalk(db float64) {
	if db >= 0 {
		panic("optics: crosstalk must be negative dB")
	}
	a.crosstalkDB = db
}

// CrosstalkPenaltyDB returns the optical signal-to-crosstalk penalty at a
// receiver when activeNeighbors other wavelengths traverse the grating
// simultaneously (the worst case under Sirius' schedule is every port
// lit). Leakage powers add; the penalty is the eye-closure equivalent
// 10*log10(1 + 2*Xtotal) with Xtotal the summed relative leakage — small
// for -30 dB devices even fully lit, which is why the paper's budget can
// carry a flat 2 dB margin.
func (a *AWGR) CrosstalkPenaltyDB(activeNeighbors int) float64 {
	if activeNeighbors < 0 {
		panic("optics: negative neighbor count")
	}
	if activeNeighbors > a.ports-1 {
		activeNeighbors = a.ports - 1
	}
	leak := float64(activeNeighbors) * math.Pow(10, a.crosstalkDB/10)
	return 10 * math.Log10(1+2*leak)
}

// Ports returns the port count.
func (a *AWGR) Ports() int { return a.ports }

// InsertionLossDB returns the device's insertion loss in dB.
func (a *AWGR) InsertionLossDB() float64 { return a.insertionLossDB }

// Route returns the output port for light of wavelength w entering input
// port in. Wavelengths beyond the port count wrap cyclically (free spectral
// range reuse).
func (a *AWGR) Route(in int, w Wavelength) int {
	if in < 0 || in >= a.ports {
		panic(fmt.Sprintf("optics: input port %d outside [0,%d)", in, a.ports))
	}
	if w < 0 {
		panic("optics: negative wavelength")
	}
	return (in + int(w)) % a.ports
}

// WavelengthFor returns the wavelength that input port in must use to reach
// output port out: the inverse of Route within one free spectral range.
func (a *AWGR) WavelengthFor(in, out int) Wavelength {
	if in < 0 || in >= a.ports || out < 0 || out >= a.ports {
		panic("optics: port outside range")
	}
	return Wavelength(((out-in)%a.ports + a.ports) % a.ports)
}

// DBmToMilliwatts converts optical power in dBm to milliwatts.
func DBmToMilliwatts(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattsToDBm converts optical power in milliwatts to dBm.
func MilliwattsToDBm(mw float64) float64 {
	if mw <= 0 {
		panic("optics: non-positive power")
	}
	return 10 * math.Log10(mw)
}

// LinkBudget captures the §4.5 end-to-end optical power accounting.
type LinkBudget struct {
	LaserOutputDBm    float64 // laser output power (paper: 16 dBm available, 7 dBm required)
	SplitWays         int     // laser shared across this many transceivers
	GratingLossDB     float64 // AWGR insertion loss (6 dB for 100 ports)
	CouplingModLossDB float64 // fiber coupling + modulator losses (7 dB)
	MarginDB          float64 // engineering margin (2 dB)
	ReceiverSensDBm   float64 // receiver sensitivity for error-free post-FEC (-8 dBm)
}

// DefaultLinkBudget returns the paper's §4.5 numbers.
func DefaultLinkBudget() LinkBudget {
	return LinkBudget{
		LaserOutputDBm:    16,
		SplitWays:         1,
		GratingLossDB:     6,
		CouplingModLossDB: 7,
		MarginDB:          2,
		ReceiverSensDBm:   -8,
	}
}

// splitLossDB is the power division penalty of sharing one laser across n
// transceivers: 10*log10(n).
func splitLossDB(n int) float64 {
	if n < 1 {
		panic("optics: split ways must be >= 1")
	}
	return 10 * math.Log10(float64(n))
}

// ReceivedDBm returns the power arriving at the receiver.
func (b LinkBudget) ReceivedDBm() float64 {
	return b.LaserOutputDBm - splitLossDB(b.SplitWays) - b.GratingLossDB - b.CouplingModLossDB
}

// budgetToleranceDB absorbs nearest-dB rounding in the paper's published
// budget figures (e.g. 16 dBm is quoted as 40 mW, an 8-way split as 9 dB).
const budgetToleranceDB = 0.05

// Closes reports whether the link budget closes: received power, minus the
// margin, meets the receiver sensitivity.
func (b LinkBudget) Closes() bool {
	return b.ReceivedDBm()-b.MarginDB >= b.ReceiverSensDBm-budgetToleranceDB
}

// MaxSplit returns the largest number of transceivers one laser can feed
// while the budget still closes. The paper's numbers give 8.
func (b LinkBudget) MaxSplit() int {
	n := 1
	for {
		b.SplitWays = n + 1
		if !b.Closes() {
			return n
		}
		n++
		if n > 1<<20 {
			return n // unbounded budget; avoid spinning forever
		}
	}
}

// RequiredLaserDBm returns the minimum laser output for the budget to close
// with the current split. With the paper's losses and no split: 7 dBm.
func (b LinkBudget) RequiredLaserDBm() float64 {
	return b.ReceiverSensDBm + b.MarginDB + b.GratingLossDB + b.CouplingModLossDB + splitLossDB(b.SplitWays)
}

// BER returns the pre-FEC bit error rate at the given received power for an
// NRZ/PAM receiver modeled as a Gaussian channel: BER = 0.5*erfc(Q/sqrt2)
// with Q proportional to the received field amplitude. The curve is
// calibrated so that the paper's receiver reaches the FEC threshold
// (2e-4 BER, standard KR4 RS-FEC limit region) at sensitivity -8 dBm, and
// produces the waterfall shape of Fig. 8d.
type BERModel struct {
	SensitivityDBm float64 // power at which BER = FECThreshold
	FECThreshold   float64 // pre-FEC BER correctable to error-free
	// ChannelPenaltyDB is a per-wavelength implementation penalty; Fig. 8d's
	// four channels sit within ~1 dB of each other.
	ChannelPenaltyDB map[Wavelength]float64
}

// DefaultBERModel returns a model matching §6: error-free post-FEC at
// -8 dBm received power.
func DefaultBERModel() BERModel {
	return BERModel{SensitivityDBm: -8, FECThreshold: 2e-4}
}

// qAtThreshold is the Gaussian Q factor giving BER = threshold.
func qFromBER(ber float64) float64 {
	// Invert 0.5*erfc(q/sqrt2) numerically with bisection; monotone.
	lo, hi := 0.0, 40.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if 0.5*math.Erfc(mid/math.Sqrt2) > ber {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// BER returns the pre-FEC bit error rate at receivedDBm on wavelength w.
func (m BERModel) BER(receivedDBm float64, w Wavelength) float64 {
	penalty := 0.0
	if m.ChannelPenaltyDB != nil {
		penalty = m.ChannelPenaltyDB[w]
	}
	qThresh := qFromBER(m.FECThreshold)
	// In a thermal-noise-limited receiver Q scales linearly with received
	// optical power (mW).
	q := qThresh * DBmToMilliwatts(receivedDBm-penalty) / DBmToMilliwatts(m.SensitivityDBm)
	ber := 0.5 * math.Erfc(q/math.Sqrt2)
	if ber < 1e-300 {
		ber = 1e-300
	}
	return ber
}

// PostFECErrorFree reports whether the channel is error-free after FEC.
func (m BERModel) PostFECErrorFree(receivedDBm float64, w Wavelength) bool {
	return m.BER(receivedDBm, w) <= m.FECThreshold
}
