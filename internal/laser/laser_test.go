package laser

import (
	"testing"
	"testing/quick"

	"sirius/internal/optics"
	"sirius/internal/simtime"
)

func TestIdeal(t *testing.T) {
	l := Ideal{NumChannels: 8}
	if l.TuneTime(0, 7) != 0 {
		t.Error("ideal laser has non-zero tune time")
	}
	if l.Channels() != 8 {
		t.Error("wrong channel count")
	}
}

func TestDSDBRStock(t *testing.T) {
	l := NewDSDBR()
	if l.Channels() != 112 {
		t.Fatalf("channels = %d, want 112", l.Channels())
	}
	if got := l.TuneTime(0, 50); got != 10*simtime.Millisecond {
		t.Errorf("stock DSDBR tune = %v, want 10ms", got)
	}
	if got := l.TuneTime(5, 5); got != 0 {
		t.Errorf("same-wavelength tune = %v, want 0", got)
	}
}

func TestDampedCalibration(t *testing.T) {
	// §3.2: median 14 ns and worst-case 92 ns across all 12,432 ordered
	// pairs of 112 wavelengths.
	l := NewDampedDSDBR()
	s := MeasurePairs(l)
	if s.Pairs != 12432 {
		t.Fatalf("pairs = %d, want 12432 (112*111)", s.Pairs)
	}
	if s.Median < 12*simtime.Nanosecond || s.Median > 16*simtime.Nanosecond {
		t.Errorf("median = %v, want ~14ns", s.Median)
	}
	if s.Worst < 85*simtime.Nanosecond || s.Worst > 95*simtime.Nanosecond {
		t.Errorf("worst = %v, want ~92ns", s.Worst)
	}
}

func TestDampedGrowsWithDistance(t *testing.T) {
	// The fundamental coupling problem: farther wavelengths need a larger
	// current step and settle slower.
	l := NewDampedDSDBR()
	near := l.TuneTime(50, 51)
	far := l.TuneTime(0, 111)
	if far <= near*2 {
		t.Errorf("far hop (%v) should be much slower than near hop (%v)", far, near)
	}
}

func TestDampedDeterministic(t *testing.T) {
	l := NewDampedDSDBR()
	for i := 0; i < 10; i++ {
		if l.TuneTime(3, 77) != l.TuneTime(3, 77) {
			t.Fatal("tune time not deterministic")
		}
	}
}

func TestDampingBenefit(t *testing.T) {
	damped := NewDampedDSDBR()
	undamped := NewDampedDSDBR()
	undamped.Damping = false
	d := damped.TuneTime(0, 60)
	u := undamped.TuneTime(0, 60)
	if u < 10*d {
		t.Errorf("undamped (%v) should be >10x slower than damped (%v)", u, d)
	}
}

func TestSOABankCalibration(t *testing.T) {
	// §6: 19 SOAs, worst-case on 527 ps and off 912 ps.
	bank := SOABank(19, 1)
	var maxRise, maxFall simtime.Duration
	for _, s := range bank {
		if s.Rise <= 0 || s.Fall <= 0 {
			t.Fatalf("non-positive SOA time: %+v", s)
		}
		if s.Rise > maxRise {
			maxRise = s.Rise
		}
		if s.Fall > maxFall {
			maxFall = s.Fall
		}
	}
	if maxRise != 527*simtime.Picosecond {
		t.Errorf("worst rise = %v, want 527ps", maxRise)
	}
	if maxFall != 912*simtime.Picosecond {
		t.Errorf("worst fall = %v, want 912ps", maxFall)
	}
}

func TestFixedBankSubNanosecond(t *testing.T) {
	l := NewFixedBank(19, 1)
	if l.Channels() != 19 {
		t.Fatalf("channels = %d, want 19", l.Channels())
	}
	// Headline claim: tuning latency below 912 ps, for every pair.
	if w := l.WorstCase(); w > 912*simtime.Picosecond {
		t.Errorf("worst case = %v, want <= 912ps", w)
	}
	if l.TuneTime(4, 4) != 0 {
		t.Error("same-wavelength tune should be 0")
	}
}

func TestFixedBankDistanceIndependence(t *testing.T) {
	// Fig. 8b: adjacent and distant switching take (nearly) the same time —
	// the latency depends only on which SOAs toggle, not on the spectral
	// distance.
	l := NewFixedBank(19, 1)
	f := func(a, b, c uint8) bool {
		from := optics.Wavelength(a % 19)
		to1 := optics.Wavelength(b % 19)
		to2 := optics.Wavelength(c % 19)
		if from == to1 || from == to2 {
			return true
		}
		// Both transitions from the same source share the same fall time;
		// any difference comes only from the destination SOA rise times,
		// which are all sub-ns. So both are < 912 ps regardless of span.
		return l.TuneTime(from, to1) <= 912*simtime.Picosecond &&
			l.TuneTime(from, to2) <= 912*simtime.Picosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFixedBankSymmetricPair(t *testing.T) {
	// TuneTime(i,j) uses fall(i), rise(j); TuneTime(j,i) uses fall(j),
	// rise(i) — generally different, but both bounded by the bank extremes.
	l := NewFixedBank(19, 7)
	stats := MeasurePairs(l)
	if stats.Worst > 912*simtime.Picosecond {
		t.Errorf("worst pair = %v > 912ps", stats.Worst)
	}
	if stats.Median <= 0 {
		t.Error("median should be positive")
	}
}

func TestTunableBankHidesTuning(t *testing.T) {
	b := NewTunableBank(2)
	// With unbounded lookahead the visible latency is only the SOA switch.
	vis := b.TuneTime(0, 111)
	if vis > simtime.Nanosecond {
		t.Errorf("pipelined visible latency = %v, want sub-ns", vis)
	}
	// §4.5: with a 100 ns slot and worst-case underlying tuning < 100 ns,
	// a bank of two active lasers hides tuning entirely.
	vis = b.TuneTimeWithLookahead(0, 111, 100*simtime.Nanosecond)
	if vis > simtime.Nanosecond {
		t.Errorf("100ns-lookahead latency = %v, want sub-ns", vis)
	}
}

func TestTunableBankInsufficientLookahead(t *testing.T) {
	b := NewTunableBank(2)
	// With only 10 ns of lookahead a 92 ns tune cannot be hidden.
	vis := b.TuneTimeWithLookahead(0, 111, 10*simtime.Nanosecond)
	if vis < 10*simtime.Nanosecond {
		t.Errorf("visible latency = %v, want the unhidden residue", vis)
	}
}

func TestTunableBankDegenerate(t *testing.T) {
	b := NewTunableBank(3)
	b.Spares = 2 // only one active laser: no pipelining possible
	vis := b.TuneTimeWithLookahead(0, 111, 100*simtime.Nanosecond)
	if vis < 50*simtime.Nanosecond {
		t.Errorf("single-laser bank should expose full tuning, got %v", vis)
	}
}

func TestComb(t *testing.T) {
	c := NewComb(100, 3)
	if c.Channels() != 100 {
		t.Fatalf("channels = %d, want 100", c.Channels())
	}
	if w := c.WorstCase(); w > 912*simtime.Picosecond {
		t.Errorf("comb worst case = %v, want <= 912ps", w)
	}
}

func TestMeasurePairsSmall(t *testing.T) {
	s := MeasurePairs(Ideal{NumChannels: 5})
	if s.Pairs != 20 {
		t.Errorf("pairs = %d, want 20", s.Pairs)
	}
	if s.Worst != 0 || s.Median != 0 || s.Mean != 0 {
		t.Error("ideal laser stats should be zero")
	}
}

func TestSortDurations(t *testing.T) {
	f := func(raw []uint32) bool {
		ds := make([]simtime.Duration, len(raw))
		for i, v := range raw {
			ds[i] = simtime.Duration(v)
		}
		sortDurations(ds)
		for i := 1; i < len(ds); i++ {
			if ds[i-1] > ds[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWavelengthRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range wavelength did not panic")
		}
	}()
	NewFixedBank(19, 1).TuneTime(0, 19)
}

func TestReliability(t *testing.T) {
	// §4.5: a rack with 256 uplinks and 8-way laser sharing runs 32
	// lasers. At a 20-year MTBF that is 1.6 expected failures per year.
	if got := ExpectedFailuresPerYear(32, 20); got != 1.6 {
		t.Errorf("failures/year = %v, want 1.6", got)
	}
	// Two shared spares cover a quarter-year service window with ~99%
	// probability; zero spares do not.
	p2 := SpareSufficiency(32, 2, 20, 0.25)
	if p2 < 0.99 {
		t.Errorf("2 spares sufficiency = %v, want >= 0.99", p2)
	}
	p0 := SpareSufficiency(32, 0, 20, 0.25)
	if p0 >= p2 {
		t.Error("more spares should never hurt")
	}
	// Without sharing (256 individual lasers) the same two spares are
	// far less adequate.
	pNoShare := SpareSufficiency(256, 2, 20, 0.25)
	if pNoShare >= p2 {
		t.Errorf("sharing should reduce spare demand: %v vs %v", pNoShare, p2)
	}
	// Probabilities are valid and monotone in spares.
	prev := 0.0
	for s := 0; s <= 6; s++ {
		p := SpareSufficiency(64, s, 20, 1)
		if p < prev || p > 1 {
			t.Fatalf("sufficiency not monotone/valid at %d spares: %v", s, p)
		}
		prev = p
	}
}

func TestReliabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad MTBF did not panic")
		}
	}()
	ExpectedFailuresPerYear(10, 0)
}
