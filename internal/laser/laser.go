// Package laser models the fast tunable lasers of Sirius §3.2–3.3.
//
// The speed of physical-layer reconfiguration in Sirius is dictated by the
// laser's tuning latency, so the package provides behavioural models for
// every design the paper builds or discusses:
//
//   - Ideal: zero-latency reference.
//   - DSDBR: an off-the-shelf electrically tuned laser (~10 ms, drive
//     circuitry not designed for fast tuning).
//   - DampedDSDBR: the paper's custom drive PCB applying the tuning current
//     in damped overshoot/undershoot steps — median 14 ns, worst-case 92 ns
//     across all 12,432 ordered pairs of 112 wavelengths.
//   - FixedBank: the disaggregated design fabricated on the custom InP chip,
//     a bank of fixed lasers gated by SOAs — tuning in under 912 ps,
//     independent of wavelength distance.
//   - TunableBank: a pipelined bank of standard tunable lasers that hides
//     tuning latency when the wavelength sequence is known in advance.
//   - Comb: a frequency-comb source with an SOA selector.
//
// All models are deterministic: per-device variation is derived from a seed
// so experiments are reproducible.
package laser

import (
	"fmt"
	"math"

	"sirius/internal/optics"
	"sirius/internal/rng"
	"sirius/internal/simtime"
)

// Tuner is a tunable light source: it reports how long the output needs to
// move from one wavelength to another with valid signal on neither during
// the transition.
type Tuner interface {
	// TuneTime returns the reconfiguration latency from wavelength from to
	// wavelength to. Tuning to the current wavelength takes zero time.
	TuneTime(from, to optics.Wavelength) simtime.Duration
	// Channels returns how many wavelengths the source can emit.
	Channels() int
}

// Ideal is a zero-latency tuner with the given channel count, used as a
// reference in ablations.
type Ideal struct{ NumChannels int }

// TuneTime implements Tuner.
func (l Ideal) TuneTime(from, to optics.Wavelength) simtime.Duration {
	checkRange(l.NumChannels, from, to)
	return 0
}

// Channels implements Tuner.
func (l Ideal) Channels() int { return l.NumChannels }

func checkRange(n int, ws ...optics.Wavelength) {
	for _, w := range ws {
		if w < 0 || int(w) >= n {
			panic(fmt.Sprintf("laser: wavelength %d outside [0,%d)", w, n))
		}
	}
}

// DSDBR models an off-the-shelf digital-supermode DBR laser: it can tune
// across 112 wavelengths but its stock drive electronics settle in
// milliseconds (the paper's part takes 10 ms).
type DSDBR struct {
	NumChannels int
	SettleTime  simtime.Duration
}

// NewDSDBR returns the paper's off-the-shelf part: 112 channels, 10 ms.
func NewDSDBR() *DSDBR {
	return &DSDBR{NumChannels: 112, SettleTime: 10 * simtime.Millisecond}
}

// TuneTime implements Tuner.
func (l *DSDBR) TuneTime(from, to optics.Wavelength) simtime.Duration {
	checkRange(l.NumChannels, from, to)
	if from == to {
		return 0
	}
	return l.SettleTime
}

// Channels implements Tuner.
func (l *DSDBR) Channels() int { return l.NumChannels }

// DampedDSDBR models the custom drive board of §3.2: the tuning current is
// applied in a series of overshoot/undershoot steps that dampen the ringing
// of the laser cavity. Settling time still grows with the size of the
// current step — i.e. with the distance between source and destination
// wavelength — which is the fundamental limit that motivates the
// disaggregated designs.
//
// The model is calibrated to the paper's measurements over all 12,432
// ordered pairs of 112 wavelengths: median 14 ns, worst case 92 ns.
type DampedDSDBR struct {
	NumChannels int
	// Damping enables the overshoot/undershoot drive. With it disabled the
	// laser rings across adjacent wavelengths before settling and the
	// latency multiplies by RingingPenalty.
	Damping        bool
	RingingPenalty float64

	baseNS    float64 // settle floor for a one-channel hop
	quadNS    float64 // quadratic growth with channel distance
	jitterPct float64 // deterministic per-pair spread
	seed      uint64
}

// NewDampedDSDBR returns the calibrated 112-channel damped model.
func NewDampedDSDBR() *DampedDSDBR {
	return &DampedDSDBR{
		NumChannels:    112,
		Damping:        true,
		RingingPenalty: 60,
		// Calibration: t(d) = base + quad*d^2, with the per-pair jitter
		// shaping the tails so that the ordered-pair distribution has
		// median ~14 ns and worst case ~92 ns (see TestDampedCalibration).
		baseNS:    6.44,
		quadNS:    0.0076,
		jitterPct: 0.08,
		seed:      0x51515151,
	}
}

// TuneTime implements Tuner. The latency is deterministic per (from, to)
// pair: the same transition always takes the same time, as on the real
// board where it is set by the drive waveform for that pair.
func (l *DampedDSDBR) TuneTime(from, to optics.Wavelength) simtime.Duration {
	checkRange(l.NumChannels, from, to)
	if from == to {
		return 0
	}
	d := float64(from - to)
	if d < 0 {
		d = -d
	}
	ns := l.baseNS + l.quadNS*d*d
	// Deterministic per-pair jitter in [-jitterPct, +jitterPct], from a
	// hash of the pair, never pushing the worst pair above the calibrated
	// maximum (the extreme pairs use the negative side of the jitter).
	h := rng.New(l.seed ^ uint64(from)<<32 ^ uint64(to)).Float64()
	ns *= 1 - l.jitterPct + 2*l.jitterPct*h*(1-d/float64(l.NumChannels))
	if !l.Damping {
		ns *= l.RingingPenalty
	}
	return simtime.Duration(ns * float64(simtime.Nanosecond))
}

// Channels implements Tuner.
func (l *DampedDSDBR) Channels() int { return l.NumChannels }

// SOA models a semiconductor optical amplifier used as a nanosecond optical
// gate: injected current either amplifies (on) or absorbs (off) the light.
type SOA struct {
	Rise simtime.Duration // 10-90% turn-on time
	Fall simtime.Duration // 90-10% turn-off time
}

// SOABank generates a deterministic bank of n SOAs whose rise/fall-time
// distributions are calibrated to the custom chip of §6: worst-case rise
// 527 ps and worst-case fall 912 ps across the 19 gates, with the bulk of
// the devices faster (the Fig. 8a CDF shape).
func SOABank(n int, seed uint64) []SOA {
	if n <= 0 {
		panic("laser: SOA bank needs at least one gate")
	}
	r := rng.New(seed)
	raw := make([]struct{ rise, fall float64 }, n)
	maxRise, maxFall := 0.0, 0.0
	for i := range raw {
		// Right-skewed draws: most gates fast, a tail of slower ones.
		raw[i].rise = 0.25 + 0.35*math.Pow(r.Float64(), 0.7)
		raw[i].fall = 0.45 + 0.55*math.Pow(r.Float64(), 0.7)
		maxRise = math.Max(maxRise, raw[i].rise)
		maxFall = math.Max(maxFall, raw[i].fall)
	}
	// Normalize so the worst gate matches the measured worst case exactly.
	bank := make([]SOA, n)
	for i := range bank {
		bank[i] = SOA{
			Rise: simtime.Duration(raw[i].rise / maxRise * 527 * float64(simtime.Picosecond)),
			Fall: simtime.Duration(raw[i].fall / maxFall * 912 * float64(simtime.Picosecond)),
		}
	}
	return bank
}

// FixedBank is the disaggregated tunable laser of Fig. 4b as fabricated on
// the custom chip (Fig. 3d): a bank of fixed-wavelength lasers, one per
// channel, gated by SOAs. Tuning from λi to λj turns SOAi off and SOAj on;
// the latency is the slower of the two events and is independent of the
// spectral distance between the wavelengths.
type FixedBank struct {
	soas []SOA
}

// NewFixedBank returns a bank with n channels. The paper's chip has 19
// (limited by chip area); multiple chips extend the range.
func NewFixedBank(n int, seed uint64) *FixedBank {
	return &FixedBank{soas: SOABank(n, seed)}
}

// TuneTime implements Tuner.
func (l *FixedBank) TuneTime(from, to optics.Wavelength) simtime.Duration {
	checkRange(len(l.soas), from, to)
	if from == to {
		return 0
	}
	off := l.soas[from].Fall
	on := l.soas[to].Rise
	if off > on {
		return off
	}
	return on
}

// Channels implements Tuner.
func (l *FixedBank) Channels() int { return len(l.soas) }

// SOAs exposes the gate bank (for the Fig. 8a CDF reproduction).
func (l *FixedBank) SOAs() []SOA { return l.soas }

// WorstCase returns the slowest possible transition of the bank.
func (l *FixedBank) WorstCase() simtime.Duration {
	var worst simtime.Duration
	for from := range l.soas {
		for to := range l.soas {
			if from == to {
				continue
			}
			if d := l.TuneTime(optics.Wavelength(from), optics.Wavelength(to)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TunableBank is the pipelined design of Fig. 4c: a small bank of standard
// tunable lasers behind an SOA selector. While one laser transmits, another
// tunes to the next wavelength in the (known, static) schedule, hiding the
// tuning latency. Size-1 lasers are available for pipelining; one more is a
// hot spare (§4.5 concludes a bank of three suffices).
type TunableBank struct {
	Underlying Tuner // the lasers in the bank (e.g. DampedDSDBR)
	Size       int   // lasers in the bank, including the spare
	Spares     int   // how many of Size are reserved as spares
	selector   []SOA
}

// NewTunableBank returns the paper's recommended three-laser bank (two
// active, one spare) built from damped DSDBR lasers.
func NewTunableBank(seed uint64) *TunableBank {
	return &TunableBank{
		Underlying: NewDampedDSDBR(),
		Size:       3,
		Spares:     1,
		selector:   SOABank(3, seed),
	}
}

// activeLasers returns the lasers available for pipelining.
func (l *TunableBank) activeLasers() int { return l.Size - l.Spares }

// TuneTime implements Tuner. It assumes the next transition is known in
// advance (true under Sirius' static schedule): if the underlying laser can
// retune within the given lookahead the visible latency is only the SOA
// selector switch; otherwise the underlying tuning time leaks through.
// TuneTime alone assumes unbounded lookahead; use TuneTimeWithLookahead for
// the schedule-constrained case.
func (l *TunableBank) TuneTime(from, to optics.Wavelength) simtime.Duration {
	return l.TuneTimeWithLookahead(from, to, simtime.Duration(math.MaxInt64))
}

// TuneTimeWithLookahead returns the visible tuning latency when the
// schedule gives the bank `lookahead` of advance notice per transition.
// With k active lasers the bank has (k-1)*lookahead of hidden tuning time
// available.
func (l *TunableBank) TuneTimeWithLookahead(from, to optics.Wavelength, lookahead simtime.Duration) simtime.Duration {
	if l.activeLasers() < 2 {
		return l.Underlying.TuneTime(from, to)
	}
	if from == to {
		return 0
	}
	hidden := simtime.Duration(l.activeLasers()-1) * lookahead
	if lookahead == simtime.Duration(math.MaxInt64) {
		hidden = lookahead
	}
	need := l.Underlying.TuneTime(from, to)
	soa := l.selectorSwitch()
	if need <= hidden {
		return soa
	}
	// Tuning could not be fully hidden; the residue is exposed.
	rem := need - hidden
	if rem < soa {
		return soa
	}
	return rem
}

func (l *TunableBank) selectorSwitch() simtime.Duration {
	var worst simtime.Duration
	for _, s := range l.selector {
		if s.Rise > worst {
			worst = s.Rise
		}
		if s.Fall > worst {
			worst = s.Fall
		}
	}
	return worst
}

// Channels implements Tuner.
func (l *TunableBank) Channels() int { return l.Underlying.Channels() }

// Comb is the design of Fig. 4d: a chip-scale frequency comb generating all
// channels simultaneously, gated by SOAs. Behaviourally it matches the
// fixed bank (SOA-limited switching across 100+ channels); its distinction
// is power, handled by the power model.
type Comb struct {
	*FixedBank
}

// NewComb returns a comb-based source with n channels.
func NewComb(n int, seed uint64) *Comb {
	return &Comb{FixedBank: NewFixedBank(n, seed)}
}

// PairStats summarizes the tuning-latency distribution of a tuner across
// all ordered wavelength pairs (the paper's "12,432 pairs" for 112
// channels).
type PairStats struct {
	Pairs  int
	Median simtime.Duration
	Mean   simtime.Duration
	Worst  simtime.Duration
}

// MeasurePairs exhaustively evaluates every ordered pair of distinct
// wavelengths.
func MeasurePairs(t Tuner) PairStats {
	n := t.Channels()
	var all []simtime.Duration
	var sum, worst simtime.Duration
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			d := t.TuneTime(optics.Wavelength(from), optics.Wavelength(to))
			all = append(all, d)
			sum += d
			if d > worst {
				worst = d
			}
		}
	}
	sortDurations(all)
	return PairStats{
		Pairs:  len(all),
		Median: all[len(all)/2],
		Mean:   sum / simtime.Duration(len(all)),
		Worst:  worst,
	}
}

func sortDurations(ds []simtime.Duration) {
	// Insertion into a sorted prefix would be O(n^2) on 12k elements;
	// a simple bottom-up merge keeps it dependency-free and fast enough.
	tmp := make([]simtime.Duration, len(ds))
	for width := 1; width < len(ds); width *= 2 {
		for lo := 0; lo < len(ds); lo += 2 * width {
			mid := min(lo+width, len(ds))
			hi := min(lo+2*width, len(ds))
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if ds[i] <= ds[j] {
					tmp[k] = ds[i]
					i++
				} else {
					tmp[k] = ds[j]
					j++
				}
				k++
			}
			copy(tmp[k:hi], ds[i:mid])
			k += mid - i
			copy(tmp[k:hi], ds[j:hi])
			copy(ds[lo:hi], tmp[lo:hi])
		}
	}
}

// ExpectedFailuresPerYear returns the expected laser failures per year
// for a pool of lasers with the given mean time between failures —
// §4.5's reliability argument: lasers are the dominant transceiver
// failure cause, and accelerated-aging studies put tunable-laser wear-out
// at tens of years, no worse than fixed lasers.
func ExpectedFailuresPerYear(lasers int, mtbfYears float64) float64 {
	if lasers < 0 || mtbfYears <= 0 {
		panic("laser: invalid reliability parameters")
	}
	return float64(lasers) / mtbfYears
}

// SpareSufficiency returns the probability that `spares` field-replaceable
// backup lasers cover every failure in a pool of `lasers` over a service
// window (failures Poisson with rate lasers/mtbf). Laser sharing (§4.5)
// makes the spares shared too, so a rack needs only a handful.
func SpareSufficiency(lasers, spares int, mtbfYears, windowYears float64) float64 {
	if lasers < 0 || spares < 0 || mtbfYears <= 0 || windowYears < 0 {
		panic("laser: invalid reliability parameters")
	}
	lambda := float64(lasers) * windowYears / mtbfYears
	// P(X <= spares) for X ~ Poisson(lambda).
	p := math.Exp(-lambda)
	sum := p
	for k := 1; k <= spares; k++ {
		p *= lambda / float64(k)
		sum += p
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}
