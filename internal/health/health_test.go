package health

import (
	"testing"

	"sirius/internal/rng"
)

// world drives a detector against a simple truth model.
type world struct {
	d     *Detector
	dead  map[int]bool
	grey  map[[2]int]bool // (observer, peer) pairs that silently fail
	noise float64         // benign per-beacon loss probability
	r     *rng.RNG
}

func newWorld(t *testing.T, nodes int) *world {
	d, err := New(DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	return &world{d: d, dead: map[int]bool{}, grey: map[[2]int]bool{}, r: rng.New(1)}
}

func (w *world) epoch() []int {
	return w.d.Epoch(func(obs, peer int) bool {
		if w.dead[peer] || w.grey[[2]int{obs, peer}] {
			return false
		}
		if w.noise > 0 && w.r.Float64() < w.noise {
			return false
		}
		return true
	})
}

func TestNoFalsePositives(t *testing.T) {
	w := newWorld(t, 16)
	for e := 0; e < 200; e++ {
		if got := w.epoch(); len(got) != 0 {
			t.Fatalf("epoch %d: false positive %v", e, got)
		}
	}
}

func TestBenignLossTolerated(t *testing.T) {
	// 10% random beacon loss never produces 3 consecutive misses often
	// enough... it can (0.1% per pair per epoch), so use a loss rate the
	// threshold is designed for.
	w := newWorld(t, 8)
	w.noise = 0.01 // 0.01^3 = 1e-6 per pair-epoch; 56 pairs x 300 epochs ~ 0.02 expected
	for e := 0; e < 300; e++ {
		if got := w.epoch(); len(got) != 0 {
			t.Fatalf("benign loss flagged a failure: %v", got)
		}
	}
}

func TestCrashDetectedFast(t *testing.T) {
	// §4.5: "quick datacenter-wide communication of any detected
	// failures". A crash is confirmed everywhere in threshold+1 epochs.
	w := newWorld(t, 16)
	for e := 0; e < 10; e++ {
		w.epoch()
	}
	w.dead[5] = true
	confirmedAt := -1
	for e := 0; e < 10; e++ {
		if got := w.epoch(); len(got) == 1 && got[0] == 5 {
			confirmedAt = e
			break
		}
	}
	if confirmedAt < 0 {
		t.Fatal("crash never confirmed")
	}
	// Silence epochs 0,1,2 trigger suspicion at the 3rd; flood lands the
	// next epoch: confirmation on the 4th epoch after the crash (e==3).
	if confirmedAt != 3 {
		t.Errorf("confirmed after %d epochs, want 3 (threshold 3 + flood)", confirmedAt+1)
	}
	if !w.d.Confirmed(5) {
		t.Error("Confirmed(5) false")
	}
	if lat := w.d.DetectionLatency(5); lat != 4 {
		t.Errorf("detection latency = %d epochs, want 4", lat)
	}
}

func TestGreyFailureDetected(t *testing.T) {
	// A grey failure: node 7 goes dark toward only two observers. Those
	// two detect it and the flood tells everyone.
	w := newWorld(t, 16)
	w.grey[[2]int{2, 7}] = true
	w.grey[[2]int{9, 7}] = true
	var confirmed bool
	for e := 0; e < 10 && !confirmed; e++ {
		for _, p := range w.epoch() {
			if p == 7 {
				confirmed = true
			}
		}
	}
	if !confirmed {
		t.Fatal("grey failure never confirmed")
	}
	if got := w.d.SuspectedBy(7); got != 2 {
		t.Errorf("suspected by %d observers, want exactly the 2 grey links", got)
	}
}

func TestDetectionLatencyLiveNode(t *testing.T) {
	w := newWorld(t, 4)
	w.epoch()
	if w.d.DetectionLatency(1) != -1 {
		t.Error("live node has a detection latency")
	}
}

func TestDeadObserversIgnored(t *testing.T) {
	// Once a node is confirmed dead its (absent) observations must not
	// drag others down.
	w := newWorld(t, 8)
	w.dead[0] = true
	for e := 0; e < 6; e++ {
		w.epoch()
	}
	if !w.d.Confirmed(0) {
		t.Fatal("crash not confirmed")
	}
	for e := 0; e < 50; e++ {
		if got := w.epoch(); len(got) != 0 {
			t.Fatalf("dead observer caused detection %v", got)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 1, MissThreshold: 3}); err == nil {
		t.Error("1 node accepted")
	}
	if _, err := New(Config{Nodes: 4, MissThreshold: 0}); err == nil {
		t.Error("0 threshold accepted")
	}
}

func TestMultipleSimultaneousFailures(t *testing.T) {
	w := newWorld(t, 16)
	w.dead[3] = true
	w.dead[11] = true
	found := map[int]bool{}
	for e := 0; e < 10; e++ {
		for _, p := range w.epoch() {
			found[p] = true
		}
	}
	if !found[3] || !found[11] {
		t.Errorf("found %v, want both 3 and 11", found)
	}
}

func TestObserverSuspectsAfterThreshold(t *testing.T) {
	o, err := NewObserver(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Peer 1 transmits epochs 0..4 then crashes at epoch 5 (last heard 4).
	lastHeard := 4
	for e := 5; e <= 7; e++ {
		if o.Judge(1, lastHeard, e) {
			t.Fatalf("suspected at epoch %d, before the threshold", e)
		}
	}
	// At epoch 8 the peer has been silent for epochs 5,6,7 = 3 epochs.
	if !o.Judge(1, lastHeard, 8) {
		t.Fatal("not suspected after MissThreshold silent epochs")
	}
	if !o.Suspected(1) {
		t.Fatal("Suspected not sticky")
	}
	if o.Judge(1, lastHeard, 9) {
		t.Fatal("Judge fired twice for the same peer")
	}
	if o.MissThreshold() != 3 {
		t.Errorf("threshold = %d", o.MissThreshold())
	}
}

func TestObserverForgive(t *testing.T) {
	o, err := NewObserver(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Judge(1, 4, 8) || !o.Suspected(1) {
		t.Fatal("setup: peer not suspected")
	}
	// A rolling restart re-admits the peer: suspicion clears, and the
	// once-only Judge contract resets for the new admission.
	o.Forgive(1)
	if o.Suspected(1) {
		t.Fatal("Forgive did not clear suspicion")
	}
	if o.Judge(1, 20, 22) {
		t.Fatal("freshly re-admitted, caught-up peer suspected")
	}
	if !o.Judge(1, 20, 24) {
		t.Fatal("re-admitted peer not suspectable after going silent again")
	}
}

func TestObserverStragglerNotSuspected(t *testing.T) {
	// A peer that is persistently one epoch behind (e.g. itself riding out
	// another node's failure) keeps a constant gap and is never suspected.
	o, err := NewObserver(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for e := 1; e < 100; e++ {
		if o.Judge(2, e-2, e) {
			t.Fatalf("straggler suspected at epoch %d", e)
		}
	}
}

func TestObserverMatchesDetector(t *testing.T) {
	// Observer (gap-based) and Detector (counter-based) agree on when a
	// fail-stop crash crosses the threshold: suspicion lands exactly
	// MissThreshold epochs after the last transmission.
	const nodes, threshold, crashAt = 4, 3, 10
	d, err := New(Config{Nodes: nodes, MissThreshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	detectorSuspectAt := -1
	for e := 0; e < 30 && detectorSuspectAt < 0; e++ {
		d.Epoch(func(obs, peer int) bool { return peer != 1 || e < crashAt })
		if d.SuspectedBy(1) > 0 && detectorSuspectAt < 0 {
			detectorSuspectAt = e
		}
	}
	o, err := NewObserver(nodes, threshold)
	if err != nil {
		t.Fatal(err)
	}
	observerSuspectAt := -1
	for e := 0; e < 30 && observerSuspectAt < 0; e++ {
		lastHeard := crashAt - 1
		if e-1 < lastHeard {
			lastHeard = e - 1
		}
		if o.Judge(1, lastHeard, e) {
			observerSuspectAt = e
		}
	}
	// Both suspect after exactly `threshold` silent epochs. The Detector
	// timestamps the suspicion *during* the third silent epoch (it sees
	// each epoch's beacons synchronously within that epoch), while a live
	// Observer can only judge epoch e-1 once epoch e has begun — so its
	// timestamp lands one boundary later. Same latency, shifted stamp.
	if observerSuspectAt != detectorSuspectAt+1 {
		t.Errorf("detector suspects at %d, observer at %d (want detector+1)",
			detectorSuspectAt, observerSuspectAt)
	}
	if observerSuspectAt != crashAt+threshold {
		t.Errorf("suspicion at %d, want crash+threshold = %d", observerSuspectAt, crashAt+threshold)
	}
}

func TestObserverValidation(t *testing.T) {
	if _, err := NewObserver(1, 3); err == nil {
		t.Error("1 node accepted")
	}
	if _, err := NewObserver(4, 0); err == nil {
		t.Error("0 threshold accepted")
	}
}
