// Package health implements §4.5's failure detection: because the cyclic
// schedule interconnects every node pair once per epoch (microseconds),
// a node whose transmissions stop arriving — entirely, or only toward
// some peers ("grey" failures) — is noticed within a few epochs by the
// peers it goes dark toward, and the detection is flooded datacenter-wide
// in one further epoch, preventing traffic from blackholing through a
// dead intermediate.
package health

import "fmt"

// Config parameterizes the detector.
type Config struct {
	Nodes int
	// MissThreshold is how many consecutive missed per-epoch beacons an
	// observer tolerates before suspecting the peer (riding out benign
	// loss).
	MissThreshold int
}

// DefaultConfig suspects after 3 consecutive silent epochs — with 1.6 us
// epochs, detection plus flooding lands well under 10 us, the paper's
// "few microseconds".
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, MissThreshold: 3}
}

// Detector tracks per-pair reception and aggregates failure verdicts.
type Detector struct {
	cfg     Config
	misses  [][]int // [observer][peer] consecutive missed epochs
	suspect [][]bool
	// confirmed[peer]: peer is globally known-failed (flooded).
	confirmed []bool
	// pendingFlood holds detections made this epoch, visible to everyone
	// at the next epoch boundary (the flood rides the schedule).
	pendingFlood []int
	epoch        int
	detectedAt   []int // epoch at which each node was first suspected; -1
	confirmedAt  []int // epoch at which the flood completed; -1
}

// New builds a detector.
func New(cfg Config) (*Detector, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("health: need >= 2 nodes")
	}
	if cfg.MissThreshold < 1 {
		return nil, fmt.Errorf("health: threshold must be >= 1")
	}
	d := &Detector{
		cfg:         cfg,
		misses:      make([][]int, cfg.Nodes),
		suspect:     make([][]bool, cfg.Nodes),
		confirmed:   make([]bool, cfg.Nodes),
		detectedAt:  make([]int, cfg.Nodes),
		confirmedAt: make([]int, cfg.Nodes),
	}
	for i := range d.misses {
		d.misses[i] = make([]int, cfg.Nodes)
		d.suspect[i] = make([]bool, cfg.Nodes)
		d.detectedAt[i] = -1
		d.confirmedAt[i] = -1
	}
	return d, nil
}

// Epoch advances one epoch. received(observer, peer) reports whether the
// observer heard the peer's scheduled transmission this epoch; it is
// only consulted for live observers about unconfirmed peers. It returns
// the peers newly confirmed failed this epoch (flood completed).
func (d *Detector) Epoch(received func(observer, peer int) bool) []int {
	// 1. Flood last epoch's detections: everyone now knows.
	var newlyConfirmed []int
	for _, p := range d.pendingFlood {
		if !d.confirmed[p] {
			d.confirmed[p] = true
			d.confirmedAt[p] = d.epoch
			newlyConfirmed = append(newlyConfirmed, p)
		}
	}
	d.pendingFlood = d.pendingFlood[:0]

	// 2. Observe this epoch's beacons.
	for obs := 0; obs < d.cfg.Nodes; obs++ {
		if d.confirmed[obs] {
			continue // dead nodes observe nothing
		}
		for peer := 0; peer < d.cfg.Nodes; peer++ {
			if peer == obs || d.confirmed[peer] || d.suspect[obs][peer] {
				continue
			}
			if received(obs, peer) {
				d.misses[obs][peer] = 0
				continue
			}
			d.misses[obs][peer]++
			if d.misses[obs][peer] >= d.cfg.MissThreshold {
				d.suspect[obs][peer] = true
				if d.detectedAt[peer] < 0 {
					d.detectedAt[peer] = d.epoch
				}
				d.pendingFlood = append(d.pendingFlood, peer)
			}
		}
	}
	d.epoch++
	return newlyConfirmed
}

// Confirmed reports whether node p is globally known-failed.
func (d *Detector) Confirmed(p int) bool { return d.confirmed[p] }

// DetectionLatency returns, for a confirmed node, the wall time in
// epochs from its first silent epoch through fabric-wide confirmation:
// MissThreshold epochs of silence plus one flood epoch. It returns -1
// for live nodes.
func (d *Detector) DetectionLatency(p int) int {
	if d.confirmedAt[p] < 0 {
		return -1
	}
	silenceStart := d.detectedAt[p] - (d.cfg.MissThreshold - 1)
	return d.confirmedAt[p] - silenceStart + 1
}

// Observer is the single-node slice of the Detector, embedded by live
// nodes (internal/wire): where the Detector holds the full observer×peer
// matrix for offline analysis, an Observer judges only what one node can
// see — the highest epoch heard from each peer — and raises suspicion
// once a peer has been silent for MissThreshold consecutive epochs.
//
// The judgement is gap-based rather than counter-based: at epoch e the
// observer should have heard each live peer's epoch e-1 transmission, so
// a peer last heard at epoch h has been silent for (e-1) - h epochs. A
// straggler that is merely slow (heard one epoch behind, as happens when
// it is itself riding out someone else's failure) keeps a constant gap of
// 1 and is never suspected; only a peer whose gap *grows* to the
// threshold is — the same semantics as Detector's consecutive-miss
// counter, without requiring the live node to observe every epoch
// boundary exactly once.
type Observer struct {
	threshold int
	suspected []bool
}

// NewObserver builds an observer over the given node count.
func NewObserver(nodes, missThreshold int) (*Observer, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("health: need >= 2 nodes")
	}
	if missThreshold < 1 {
		return nil, fmt.Errorf("health: threshold must be >= 1")
	}
	return &Observer{threshold: missThreshold, suspected: make([]bool, nodes)}, nil
}

// Judge evaluates peer at the given local epoch: lastHeard is the highest
// epoch the observer has received from the peer (-1 for never). It
// returns true exactly once, when the peer first crosses the suspicion
// threshold.
func (o *Observer) Judge(peer, lastHeard, epoch int) (newlySuspected bool) {
	if o.suspected[peer] {
		return false
	}
	if (epoch-1)-lastHeard >= o.threshold {
		o.suspected[peer] = true
		return true
	}
	return false
}

// Suspected reports whether the observer has suspected the peer.
func (o *Observer) Suspected(peer int) bool { return o.suspected[peer] }

// Forgive clears the suspicion state for a peer that has been re-admitted
// to the fabric (a rolling restart or a drained node's re-add). After
// Forgive, Judge can suspect the peer again — the once-only contract is
// per admission, not per process lifetime.
func (o *Observer) Forgive(peer int) { o.suspected[peer] = false }

// MissThreshold returns the configured threshold.
func (o *Observer) MissThreshold() int { return o.threshold }

// SuspectedBy returns how many live observers individually suspect p —
// for grey failures this can be a strict subset of the fabric.
func (d *Detector) SuspectedBy(p int) int {
	n := 0
	for obs := 0; obs < d.cfg.Nodes; obs++ {
		if obs != p && !d.confirmed[obs] && d.suspect[obs][p] {
			n++
		}
	}
	return n
}
