package congestion

import (
	"testing"
	"testing/quick"

	"sirius/internal/rng"
)

// drain runs one epoch of a toy data plane against the controller: sources
// use delivered grants (taking cells out of local queues), intermediates
// forward queued cells at the schedule rate.
type harness struct {
	t     *testing.T
	c     *Controller
	n     int
	local [][]int // per node, FIFO of cell destinations
	fwdq  map[[2]int]int
	done  int
}

func newHarness(t *testing.T, n, q int, seed uint64) *harness {
	c, err := New(n, q, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, c: c, n: n, local: make([][]int, n), fwdq: map[[2]int]int{}}
}

func (h *harness) offer(src, dst, cells int) {
	for i := 0; i < cells; i++ {
		h.local[src] = append(h.local[src], dst)
	}
}

func (h *harness) epoch() {
	grants := h.c.Tick(func(i int) []int {
		d := h.local[i]
		if len(d) > h.n-1 {
			d = d[:h.n-1]
		}
		return d
	})
	// Sources consume grants.
	for src, gs := range grants {
		for _, g := range gs {
			// Find first cell for g.Dst in LOCAL.
			found := -1
			for i, d := range h.local[src] {
				if d == g.Dst {
					found = i
					break
				}
			}
			if found < 0 {
				h.c.OnGrantUnused(g.Via, g.Dst)
				continue
			}
			h.local[src] = append(h.local[src][:found], h.local[src][found+1:]...)
			h.c.OnCellArrived(g.Via, g.Dst)
			if g.Via == g.Dst {
				h.done++ // direct delivery
			} else {
				h.fwdq[[2]int{g.Via, g.Dst}]++
			}
		}
	}
	// Intermediates forward one cell per destination per epoch.
	for key, n := range h.fwdq {
		if n > 0 {
			h.c.OnCellForwarded(key[0], key[1])
			h.fwdq[key] = n - 1
			h.done++
		}
	}
}

func TestGrantLatencyTwoEpochs(t *testing.T) {
	// Piggybacked control: a request issued at epoch e yields a grant
	// usable at e+2, the protocol's startup latency.
	h := newHarness(t, 8, 4, 1)
	h.offer(0, 5, 1)
	h.epoch() // e0: request issued
	if h.done != 0 {
		t.Fatal("cell moved before any grant")
	}
	h.epoch() // e1: intermediate grants
	if h.done != 0 {
		t.Fatal("cell moved before grant delivery")
	}
	h.epoch() // e2: grant delivered, cell moves (direct or via queue)
	h.epoch() // e3: intermediate forwards
	if h.done != 1 {
		t.Fatalf("cell not delivered after grant cycle, done=%d", h.done)
	}
}

func TestHotspotQueueBound(t *testing.T) {
	// 15 sources all flood destination 0: the defining stress. The queue
	// at every intermediate must never exceed Q (enforced by panics in
	// OnCellArrived) and the system must keep delivering.
	const n, q = 16, 4
	h := newHarness(t, n, q, 7)
	for src := 1; src < n; src++ {
		h.offer(src, 0, 50)
	}
	for e := 0; e < 2000; e++ {
		h.epoch()
		perDest, _ := h.c.MaxQueue()
		if perDest > q {
			t.Fatalf("epoch %d: queue %d > Q=%d", e, perDest, q)
		}
	}
	if h.done != 15*50 {
		t.Errorf("delivered %d of %d cells", h.done, 15*50)
	}
}

func TestUniformLoadDelivers(t *testing.T) {
	const n, q = 12, 4
	h := newHarness(t, n, q, 3)
	r := rng.New(99)
	offered := 0
	for src := 0; src < n; src++ {
		for k := 0; k < 30; k++ {
			dst := r.Intn(n)
			if dst == src {
				continue
			}
			h.offer(src, dst, 1)
			offered++
		}
	}
	for e := 0; e < 3000 && h.done < offered; e++ {
		h.epoch()
	}
	if h.done != offered {
		t.Errorf("delivered %d of %d", h.done, offered)
	}
}

func TestGrantPerDestinationPerEpoch(t *testing.T) {
	// An intermediate issues at most perDest grants per destination per
	// epoch.
	c, err := New(8, 16, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// All 7 other nodes request dst 3 via every intermediate.
	demand := func(i int) []int {
		if i == 3 {
			return nil
		}
		return []int{3, 3, 3, 3, 3, 3, 3}
	}
	c.Tick(demand)                                   // requests in flight
	grants := c.Tick(func(int) []int { return nil }) // processed
	// Not delivered yet at this tick (they were just issued)...
	for _, gs := range grants {
		if len(gs) != 0 {
			t.Fatal("grants delivered one epoch early")
		}
	}
	grants = c.Tick(func(int) []int { return nil })
	perVia := map[int]int{}
	for _, gs := range grants {
		for _, g := range gs {
			if g.Dst != 3 {
				t.Errorf("grant for unexpected destination %d", g.Dst)
			}
			perVia[g.Via]++
		}
	}
	for via, n := range perVia {
		if n > 1 {
			t.Errorf("intermediate %d granted %d times for one destination in one epoch", via, n)
		}
	}
	if len(perVia) == 0 {
		t.Error("no grants issued at all")
	}
}

func TestQueueStopsGrants(t *testing.T) {
	c, err := New(4, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill intermediate 1's queue for destination 2 to the bound by
	// simulating grants+arrivals.
	demand := func(i int) []int {
		if i == 0 {
			return []int{2, 2, 2, 2, 2, 2}
		}
		return nil
	}
	granted := 0
	for e := 0; e < 40; e++ {
		for _, gs := range c.Tick(demand) {
			for _, g := range gs {
				c.OnCellArrived(g.Via, g.Dst)
				granted++
			}
		}
		// Never forward: queues only fill.
	}
	// Each of the 3 intermediates (1, 3 as relays, 2 as direct) can hold
	// at most Q=2 for dst 2; direct delivery (via==dst) doesn't queue but
	// also stops granting once outstanding+queued >= Q... via==2 consumes
	// immediately so it keeps granting. Check relays stopped at Q.
	if q := c.Queued(1, 2); q > 2 {
		t.Errorf("relay 1 queued %d > 2", q)
	}
	if q := c.Queued(3, 2); q > 2 {
		t.Errorf("relay 3 queued %d > 2", q)
	}
}

func TestPropertyInvariantUnderRandomLoad(t *testing.T) {
	f := func(seed uint64) bool {
		const n, q = 10, 3
		h := newHarness(t, n, q, seed)
		r := rng.New(seed ^ 0xABCD)
		for e := 0; e < 300; e++ {
			// Random arrivals.
			for k := 0; k < 5; k++ {
				src, dst := r.Intn(n), r.Intn(n)
				if src != dst {
					h.offer(src, dst, 1)
				}
			}
			h.epoch() // panics on invariant violation
			perDest, _ := h.c.MaxQueue()
			if perDest > q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := New(1, 4, 1, 1); err == nil {
		t.Error("1 node accepted")
	}
	if _, err := New(4, 1, 1, 1); err == nil {
		t.Error("Q=1 accepted (§4.3: minimum is 2)")
	}
	if _, err := New(4, 4, 0, 1); err == nil {
		t.Error("perDest=0 accepted")
	}
}

func TestAccountingPanics(t *testing.T) {
	c, _ := New(4, 2, 1, 1)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("arrival without grant", func() { c.OnCellArrived(1, 2) })
	mustPanic("forward from empty", func() { c.OnCellForwarded(1, 2) })
	mustPanic("release non-existent grant", func() { c.OnGrantUnused(1, 2) })
}

func TestNoDirectNeverPicksDestination(t *testing.T) {
	c, err := New(8, 4, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	c.DisallowDirect()
	demand := func(i int) []int {
		if i == 0 {
			return []int{5, 5, 5}
		}
		return nil
	}
	for e := 0; e < 50; e++ {
		for _, gs := range c.Tick(demand) {
			for _, g := range gs {
				if g.Via == g.Dst {
					t.Fatal("direct grant issued under DisallowDirect")
				}
				c.OnCellArrived(g.Via, g.Dst)
				c.OnCellForwarded(g.Via, g.Dst)
			}
		}
	}
}

func TestInstantControlGrantsSameEpoch(t *testing.T) {
	c, err := New(8, 4, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	c.InstantControl()
	demand := func(i int) []int {
		if i == 0 {
			return []int{5}
		}
		return nil
	}
	grants := c.Tick(demand)
	total := 0
	for _, gs := range grants {
		total += len(gs)
	}
	if total != 1 {
		t.Fatalf("instant control issued %d grants in the first epoch, want 1", total)
	}
}

func TestExcludeViasNeverPicked(t *testing.T) {
	c, err := New(8, 4, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	failed := make([]bool, 8)
	failed[3] = true
	if err := c.ExcludeVias(failed); err != nil {
		t.Fatal(err)
	}
	demand := func(i int) []int {
		if i == 0 {
			return []int{5, 5, 5, 5, 5}
		}
		return nil
	}
	for e := 0; e < 50; e++ {
		for _, gs := range c.Tick(demand) {
			for _, g := range gs {
				if g.Via == 3 {
					t.Fatal("failed node used as intermediate")
				}
				c.OnCellArrived(g.Via, g.Dst)
				if g.Via != g.Dst {
					c.OnCellForwarded(g.Via, g.Dst)
				}
			}
		}
	}
}

func TestExcludeViasValidation(t *testing.T) {
	c, _ := New(4, 4, 1, 1)
	if err := c.ExcludeVias([]bool{true}); err == nil {
		t.Error("short mask accepted")
	}
	if err := c.ExcludeVias([]bool{true, true, true, false}); err == nil {
		t.Error("mask with <2 live nodes accepted")
	}
}
