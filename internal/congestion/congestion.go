// Package congestion implements Sirius' request/grant congestion-control
// protocol (§4.3), a distributed relative of DRRM.
//
// Queuing in Sirius happens only when two or more sources route cells for
// the same destination D through the same intermediate I in one epoch: I
// can forward only ConnectionsPerEpoch cells to D per epoch, so the rest
// wait. The protocol bounds that queue at Q cells: a source may send a
// cell for D via I only after I grants it, and I grants only while its
// queue for D plus its outstanding grants for D stay below Q.
//
// Control messages ride piggybacked on the cells of the cyclic schedule,
// so requests issued in epoch e are acted on by the intermediate in epoch
// e+1 and the grant reaches the source in time for transmission in epoch
// e+2 — the "initial epoch-length worth of latency" the paper accepts in
// exchange for bounded queues and a lossless core.
package congestion

import (
	"fmt"

	"sirius/internal/rng"
)

// Grant authorizes Src to forward one cell destined Dst via intermediate
// Via in the coming epoch.
type Grant struct {
	Src, Via, Dst int
}

// Controller runs the protocol for every node of the fabric. It is the
// control plane only: the data plane (cell movement) belongs to the
// caller, which reports arrivals and departures so the controller can
// track queue occupancy.
type Controller struct {
	n       int
	q       int
	perDest int // grants issuable per destination per epoch (= schedule k)

	r *rng.RNG

	// queued and grantsOut are flat n*n arrays indexed via*n+dst: one
	// indirection and one cache line per (via, dst) probe instead of the
	// two a [][]int16 layout costs on the grant-issue hot path.
	queued    []int16 // [via*n+dst] cells held at intermediate for dst
	grantsOut []int16 // [via*n+dst] outstanding (granted, not yet arrived)

	// Requests in flight, arriving at intermediates during this epoch and
	// processed at the next Tick: per intermediate, per destination, the
	// list of requesting sources. Destination insertion order is kept so
	// processing is deterministic (map iteration would not be).
	inflight []reqSet

	// Grants in flight, delivered to sources at the next Tick. Two
	// buffers alternate: the one handed out by the previous Tick is
	// truncated (capacity kept) and becomes the accumulation target, so
	// steady-state Ticks allocate nothing while honoring the "returned
	// slices are valid until the next Tick" contract.
	granted    [][]Grant
	grantedOld [][]Grant

	failed []bool // nodes excluded as intermediates (nil = none)

	noDirect bool // ablation: never route via the destination itself
	instant  bool // ablation: zero-latency oracle control plane

	// Scratch reused across Ticks: per intermediate, the stamp of the
	// source currently issuing requests (high 48 bits) packed with the
	// number of requests that source already sent to the intermediate
	// (low 16 bits). One word instead of two halves the memory traffic
	// of the rejection-sampling loop, the simulator's hottest path.
	used  []uint64
	stamp uint64
}

// reqSet accumulates the requests one intermediate received this epoch,
// indexed by destination, preserving insertion order for determinism.
// Slices are reused across epochs (reset keeps their capacity).
type reqSet struct {
	dsts []int32
	srcs [][]int32 // per destination; sized to the node count
}

func (r *reqSet) add(dst, src int) {
	if len(r.srcs[dst]) == 0 {
		r.dsts = append(r.dsts, int32(dst))
	}
	r.srcs[dst] = append(r.srcs[dst], int32(src))
}

func (r *reqSet) reset() {
	for _, d := range r.dsts {
		r.srcs[d] = r.srcs[d][:0]
	}
	r.dsts = r.dsts[:0]
}

// New returns a controller for n nodes with queue bound q. perDest is the
// number of pair-connections per epoch the schedule provides (grants
// issuable per destination per epoch); the common case is 1.
func New(n, q, perDest int, seed uint64) (*Controller, error) {
	if n < 2 {
		return nil, fmt.Errorf("congestion: need >= 2 nodes")
	}
	if q < 2 {
		// §4.3: the minimum is 2 — within one epoch a node may receive a
		// new cell for D before it had a chance to transmit the previous.
		return nil, fmt.Errorf("congestion: queue bound must be >= 2, have %d", q)
	}
	if perDest < 1 {
		return nil, fmt.Errorf("congestion: perDest must be >= 1")
	}
	c := &Controller{
		n:          n,
		q:          q,
		perDest:    perDest,
		r:          rng.New(seed),
		queued:     make([]int16, n*n),
		grantsOut:  make([]int16, n*n),
		inflight:   make([]reqSet, n),
		granted:    make([][]Grant, n),
		grantedOld: make([][]Grant, n),
		used:       make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		c.inflight[i].srcs = make([][]int32, n)
	}
	return c, nil
}

// QueueBound returns Q.
func (c *Controller) QueueBound() int { return c.q }

// DisallowDirect is an ablation switch: the destination itself is no
// longer a valid intermediate, so every cell detours (pure VLB).
func (c *Controller) DisallowDirect() { c.noDirect = true }

// InstantControl is an ablation switch: requests and grants propagate
// instantaneously instead of riding piggybacked for an epoch each — an
// oracle control plane that prices the piggybacking latency.
func (c *Controller) InstantControl() { c.instant = true }

// ExcludeVias marks nodes that must not be chosen as intermediates
// (failed nodes whose schedule slots are dark). At least two live nodes
// must remain.
func (c *Controller) ExcludeVias(failed []bool) error {
	if len(failed) != c.n {
		return fmt.Errorf("congestion: failed mask has %d entries for %d nodes", len(failed), c.n)
	}
	live := 0
	for _, f := range failed {
		if !f {
			live++
		}
	}
	if live < 2 {
		return fmt.Errorf("congestion: fewer than 2 live nodes")
	}
	c.failed = failed
	return nil
}

// Queued returns the number of cells the controller believes intermediate
// via holds for dst.
func (c *Controller) Queued(via, dst int) int { return int(c.queued[via*c.n+dst]) }

// Tick advances one epoch boundary:
//
//  1. grants issued last epoch are delivered to their sources (returned);
//  2. requests issued last epoch are processed by intermediates, issuing
//     new grants (in flight until the next Tick);
//  3. sources issue new requests from their current LOCAL demand.
//
// demand(i) must return the destinations of the cells in node i's LOCAL
// queue in FIFO order; it may truncate to n-1 entries (no more requests
// than intermediates can be issued). The returned slices are valid until
// the next Tick.
func (c *Controller) Tick(demand func(node int) []int) [][]Grant {
	if c.instant {
		// Oracle ablation: requests issue, process and deliver within
		// the same epoch boundary.
		c.issueRequests(demand, nil)
		c.processRequests()
		return c.swapGranted()
	}
	// 1. Deliver grants issued last epoch.
	delivered := c.swapGranted()
	// 2. Intermediates process last epoch's requests.
	c.processRequests()
	// 3. Sources issue this epoch's requests.
	c.issueRequests(demand, nil)
	return delivered
}

// InstantEnabled reports whether the instant-control ablation is on, so a
// caller driving the phase methods below can match Tick's phase order.
func (c *Controller) InstantEnabled() bool { return c.instant }

// The *Phase methods expose Tick's sub-steps individually so the sharded
// core engine can interleave its own parallel work (demand precompute,
// request scatter, grant delivery) between them. Calling them in Tick's
// documented order performs exactly the same RNG draws and state
// transitions as Tick itself; the serial Tick remains the reference.

// SwapGrantedPhase delivers the grants issued last epoch (Tick step 1).
func (c *Controller) SwapGrantedPhase() [][]Grant { return c.swapGranted() }

// ProcessRequestsPhase runs the intermediates' side (Tick step 2).
func (c *Controller) ProcessRequestsPhase() { c.processRequests() }

// IssueRequestsEmit runs the sources' side like Tick step 3 but hands each
// accepted request to emit instead of registering it, so the caller can
// apply the requests concurrently via ApplyRequest (partitioned by via —
// the register step is a large share of the epoch cost at scale). The RNG
// draw sequence is identical to the inline path.
func (c *Controller) IssueRequestsEmit(demand func(node int) []int, emit func(via, dst, src int32)) {
	c.issueRequests(demand, emit)
}

// ApplyRequest registers one request produced by IssueRequestsEmit. Calls
// for different vias touch disjoint state; within one via they must be
// applied in emission order.
func (c *Controller) ApplyRequest(via, dst, src int32) {
	c.inflight[via].add(int(dst), int(src))
}

// swapGranted returns the accumulated grant buffer and installs the other
// buffer — truncated in place, capacity preserved — as the new
// accumulation target. The returned per-source slices stay untouched
// until the Tick after next, satisfying the documented lifetime.
func (c *Controller) swapGranted() [][]Grant {
	delivered := c.granted
	next := c.grantedOld
	for i := range next {
		next[i] = next[i][:0]
	}
	c.grantedOld = delivered
	c.granted = next
	return delivered
}

// processRequests runs the intermediates' side: one grant per destination
// per pair-connection (perDest), space permitting, against the requests
// accumulated in inflight.
func (c *Controller) processRequests() {
	r := c.r
	for via := 0; via < c.n; via++ {
		reqs := &c.inflight[via]
		if len(reqs.dsts) == 0 {
			continue
		}
		base := via * c.n
		for _, dst32 := range reqs.dsts {
			dst := int(dst32)
			srcs := reqs.srcs[dst]
			for g := 0; g < c.perDest; g++ {
				if len(srcs) == 0 {
					break
				}
				if int(c.queued[base+dst])+int(c.grantsOut[base+dst]) >= c.q {
					break
				}
				pick := r.Intn(len(srcs))
				src := int(srcs[pick])
				srcs[pick] = srcs[len(srcs)-1]
				srcs = srcs[:len(srcs)-1]
				c.grantsOut[base+dst]++
				c.granted[src] = append(c.granted[src], Grant{Src: src, Via: via, Dst: dst})
			}
		}
		reqs.reset()
	}
}

// issueRequests runs the sources' side: one request per queued cell, each
// to a uniformly chosen intermediate that has not exhausted its per-epoch
// request budget; stop when all intermediates have. The budget is perDest
// requests per intermediate per epoch — the paper's "one request per
// intermediate per epoch" generalized to schedules that connect each pair
// perDest times per epoch, so the request plane matches the data plane's
// capacity.
//
// When emit is non-nil each accepted request is handed to it instead of
// being registered in inflight (see IssueRequestsEmit); the RNG sequence
// is unaffected by the choice.
func (c *Controller) issueRequests(demand func(node int) []int, emit func(via, dst, src int32)) {
	liveVias := c.n
	if c.failed != nil {
		liveVias = 0
		for _, f := range c.failed {
			if !f {
				liveVias++
			}
		}
	}
	for src := 0; src < c.n; src++ {
		dsts := demand(src)
		if len(dsts) == 0 {
			continue
		}
		c.stamp++
		used := 0
		budget := c.perDest * (liveVias - 1)
		for _, dst := range dsts {
			if used == budget {
				break // all intermediates exhausted
			}
			if dst < 0 || dst >= c.n || dst == src {
				panic(fmt.Sprintf("congestion: bad destination %d from node %d", dst, src))
			}
			// Uniform choice among intermediates with remaining budget
			// (any node except the source; the destination itself is
			// allowed — that is the direct path — unless the no-direct
			// ablation is on).
			via := c.pickAvailable(src, dst)
			if via < 0 {
				continue // no eligible intermediate left for this cell
			}
			used++
			if emit != nil {
				emit(int32(via), int32(dst), int32(src))
			} else {
				c.inflight[via].add(dst, src)
			}
		}
	}
}

// pickAvailable returns a uniformly random eligible node with request
// budget left this epoch, by rejection sampling with a linear-scan
// fallback. It returns -1 when no eligible intermediate remains (possible
// under the no-direct ablation or with failed nodes).
// The eligibility test is written out inline (twice) rather than behind a
// closure: this is the hottest call site in the whole simulator and the
// closure-call overhead was measurable (~10% of total CPU). The RNG call
// sequence is exactly that of the closure-based version, so fixed-seed
// runs are unchanged.
func (c *Controller) pickAvailable(src, dst int) int {
	n := c.n
	r := c.r
	failed := c.failed
	noDirect := c.noDirect
	used := c.used
	stampBits := c.stamp << 16
	budget := uint64(c.perDest)
	for try := 0; try < 4*n; try++ {
		v := r.Intn(n)
		if v == src || (failed != nil && failed[v]) || (noDirect && v == dst) {
			continue
		}
		u := used[v]
		if u&^uint64(0xffff) != stampBits {
			u = stampBits // stale stamp: reset this source's count to zero
		}
		if u&0xffff < budget {
			used[v] = u + 1
			return v
		}
	}
	// Dense exhaustion: scan from a random offset to stay unbiased.
	off := r.Intn(n)
	for j := 0; j < n; j++ {
		v := off + j
		if v >= n {
			v -= n
		}
		if v == src || (failed != nil && failed[v]) || (noDirect && v == dst) {
			continue
		}
		u := used[v]
		if u&^uint64(0xffff) != stampBits {
			u = stampBits
		}
		if u&0xffff < budget {
			used[v] = u + 1
			return v
		}
	}
	return -1
}

// OnCellArrived records the arrival at via of a granted cell destined dst.
// A cell arriving at its final destination (via == dst) is consumed, not
// queued. It panics if the queue bound would be violated — the protocol's
// central invariant.
func (c *Controller) OnCellArrived(via, dst int) {
	if c.grantsOut[via*c.n+dst] <= 0 {
		panic(fmt.Sprintf("congestion: cell arrived at %d for %d without outstanding grant", via, dst))
	}
	c.grantsOut[via*c.n+dst]--
	if via == dst {
		return
	}
	c.queued[via*c.n+dst]++
	if int(c.queued[via*c.n+dst]) > c.q {
		panic(fmt.Sprintf("congestion: queue bound violated at %d for %d: %d > %d",
			via, dst, c.queued[via*c.n+dst], c.q))
	}
}

// OnCellForwarded records that via transmitted one queued cell to dst.
func (c *Controller) OnCellForwarded(via, dst int) {
	if c.queued[via*c.n+dst] <= 0 {
		panic(fmt.Sprintf("congestion: forward from empty queue at %d for %d", via, dst))
	}
	c.queued[via*c.n+dst]--
}

// OnGrantUnused releases a grant the source could not use (the cell it was
// for left via another grant). In the real system this notification rides
// piggybacked like everything else; the model applies it immediately,
// which only makes the intermediate marginally more conservative.
func (c *Controller) OnGrantUnused(via, dst int) {
	if c.grantsOut[via*c.n+dst] <= 0 {
		panic(fmt.Sprintf("congestion: releasing non-existent grant at %d for %d", via, dst))
	}
	c.grantsOut[via*c.n+dst]--
}

// MaxQueue returns the current largest per-(via,dst) queue and the largest
// aggregate per-node queue, in cells.
func (c *Controller) MaxQueue() (perDest, perNode int) {
	for via := 0; via < c.n; via++ {
		sum := 0
		for dst := 0; dst < c.n; dst++ {
			q := int(c.queued[via*c.n+dst])
			sum += q
			if q > perDest {
				perDest = q
			}
		}
		if sum > perNode {
			perNode = sum
		}
	}
	return perDest, perNode
}
