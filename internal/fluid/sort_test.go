package fluid

import (
	"reflect"
	"testing"

	"sirius/internal/rng"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// TestSortedFastPath covers the sortedness pre-check: sorted input (the
// workload.Generate contract) must be detected as such and used in place
// without a defensive copy; out-of-order input must fall back to the
// copy-and-stable-sort path, leave the caller's slice untouched, and
// produce the same physics as a pre-sorted equivalent.
func TestSortedFastPath(t *testing.T) {
	cfg := Config{Endpoints: 16, EndpointRate: 100 * simtime.Gbps,
		BaseRTT: simtime.Microsecond, Oversub: 1}

	// Build an out-of-order arrival sequence (IDs must stay equal to the
	// slice index — they do not influence the dynamics).
	r := rng.New(99)
	unsorted := make([]workload.Flow, 400)
	for i := range unsorted {
		src := r.Intn(cfg.Endpoints)
		dst := r.Intn(cfg.Endpoints - 1)
		if dst >= src {
			dst++
		}
		unsorted[i] = workload.Flow{ID: i, Src: src, Dst: dst,
			Bytes:   2000 + r.Intn(100_000),
			Arrival: simtime.Time(r.Intn(2_000_000))}
	}
	if sortedByArrival(unsorted) {
		t.Fatal("test workload came out sorted; change the seed")
	}

	// The pre-sorted equivalent: same flows ordered by arrival (stable),
	// IDs rewritten to match their new index.
	sorted := append([]workload.Flow(nil), unsorted...)
	for swapped := true; swapped; { // stable: bubble keeps equal-arrival order
		swapped = false
		for i := 1; i < len(sorted); i++ {
			if sorted[i].Arrival < sorted[i-1].Arrival {
				sorted[i], sorted[i-1] = sorted[i-1], sorted[i]
				swapped = true
			}
		}
	}
	for i := range sorted {
		sorted[i].ID = i
	}
	if !sortedByArrival(sorted) {
		t.Fatal("sort failed")
	}

	keep := append([]workload.Flow(nil), unsorted...)
	ru, err := Run(cfg, unsorted)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(unsorted, keep) {
		t.Error("fallback path mutated the caller's flow slice")
	}
	rs, err := Run(cfg, sorted)
	if err != nil {
		t.Fatal(err)
	}
	if ru.Completed != rs.Completed || ru.DeliveredBytes != rs.DeliveredBytes ||
		ru.SimTime != rs.SimTime || ru.GoodputNorm != rs.GoodputNorm {
		t.Errorf("unsorted input diverged from its sorted equivalent:\n%+v\n%+v", ru, rs)
	}
	if !reflect.DeepEqual(ru.FCTAll.Values(), rs.FCTAll.Values()) {
		t.Error("FCT observations diverge between the sorted and fallback paths")
	}
}

// TestEmptyWorkloadRejected pins the explicit validation of a zero-flow
// input (the pre-rewrite code would have indexed an empty slice).
func TestEmptyWorkloadRejected(t *testing.T) {
	cfg := Config{Endpoints: 4, EndpointRate: simtime.Gbps, Oversub: 1}
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("want an error for an empty workload")
	}
}
