// Package fluid computes the paper's idealized electrically-switched
// baselines, ESN (Ideal) and ESN-OSUB (Ideal) (§7).
//
// The paper defines these baselines as upper bounds: per-flow queues and
// back-pressure at every switch with packet spraying across all paths of a
// folded Clos — "an upper bound on the performance achievable by any rate
// control and routing protocol". The steady state of that idealization is
// exactly max-min fair bandwidth allocation subject to the fabric's
// capacity constraints: each endpoint's NIC in both directions and, for
// the oversubscribed variant, each rack's aggregation capacity. This
// package computes that allocation with progressive filling, re-evaluated
// at every flow arrival and completion, and integrates flow progress
// exactly between events.
//
// # Performance model
//
// The event loop is engineered for throughput and byte-stable output
// (see DESIGN.md §6 for the full discussion):
//
//   - The active set is a dense struct-of-arrays flow table with
//     swap-remove deletion — no maps, no per-flow heap objects. Iteration
//     order is deterministic by construction, so float accumulation
//     (window goodput, FCT sums) is run-to-run identical, which the old
//     map-based loop was not.
//   - Arrivals are consumed from the (already sorted) input by a cursor;
//     the next completion is an exact min-reduction fused with the
//     progress-integration pass over the dense table. Integration MUST
//     touch every positive-rate flow per event anyway — the pre-rewrite
//     solver decremented `remaining` per event, and reproducing its
//     output bit-for-bit (the golden-fixture contract) forbids lazy
//     "virtual finish time" bookkeeping whose float drift, while tiny,
//     would change completions by ulps. Fusing the min into that
//     mandatory pass makes next-event selection free.
//   - The max-min solver keeps per-constraint membership counts AND the
//     per-constraint fair share caps[c]/counts[c] incrementally (at most
//     four integer adds and divisions per event), resets solver state
//     with memcopies, and marks frozen flows with an epoch stamp. Each
//     progressive-filling round selects its bottleneck from the share
//     cache — via an indexed min-heap keyed by (share, index) on large
//     fabrics, a linear compare scan on small ones; both orders are
//     exactly the reference ascending-index strict-< scan — and freezes
//     only the flows crossing it, found through per-constraint member
//     lists (CSR layout) rebuilt per allocation from the exact
//     membership counts. The steady-state event loop performs zero heap
//     allocations (pinned by TestEventLoopZeroAlloc).
//
// Run-to-run determinism note: the pre-rewrite implementation iterated a
// Go map when accumulating the window-goodput integral, so GoodputNorm
// jittered in its last one or two bits between runs. The dense table
// fixes the summation order; output is now fully deterministic.
package fluid

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"sirius/internal/metrics"
	"sirius/internal/simtime"
	"sirius/internal/telemetry"
	"sirius/internal/workload"
)

// Config parameterizes the fabric.
type Config struct {
	// Endpoints is the number of attached endpoints (servers, or racks
	// when comparing at rack granularity).
	Endpoints int
	// EndpointRate is each endpoint's NIC rate in both directions.
	EndpointRate simtime.Rate
	// EndpointsPerRack groups endpoints into racks for the oversubscribed
	// variant; 0 or 1 disables the rack tier.
	EndpointsPerRack int
	// Oversub is the aggregation-tier oversubscription ratio: inter-rack
	// capacity per rack is EndpointsPerRack*EndpointRate/Oversub.
	// 1 = non-blocking (ESN Ideal).
	Oversub int
	// BaseRTT is added to every flow completion time (propagation and
	// switching latency floor).
	BaseRTT simtime.Duration
}

// Results mirrors the core simulator's results for comparison.
type Results struct {
	Flows            int
	Completed        int
	SimTime          simtime.Time
	DeliveredBytes   int64
	GoodputNorm      float64 // over the arrival window (see core.Results)
	MakespanGoodput  float64 // over the full makespan
	FCTAll, FCTShort metrics.Sample
}

// Process-wide observability counters, exposed so cmd/siriussim can print
// a flows/sec summary per experiment without threading state through the
// harness (mirrors core.Counters). Cumulative across every Run in the
// process; updated once per completed run, not per event.
var (
	statFlows  atomic.Int64
	statEvents atomic.Int64
)

// Counters reports the cumulative number of flows completed and events
// (arrivals plus completions) processed by every Run in this process.
// Snapshot before and after a workload to compute its flows/sec.
func Counters() (flows, events int64) {
	return statFlows.Load(), statEvents.Load()
}

// Run simulates the flows to completion.
func Run(cfg Config, flows []workload.Flow) (*Results, error) {
	return RunContext(context.Background(), cfg, flows)
}

// RunContext is Run with cancellation: the event loop polls ctx
// periodically and returns ctx.Err() when it is done, mirroring
// core.RunContext so sweep workers over the ESN baseline abort promptly.
func RunContext(ctx context.Context, cfg Config, flows []workload.Flow) (*Results, error) {
	e, err := newEngine(cfg, flows)
	if err != nil {
		return nil, err
	}
	for !e.done() {
		// Poll for cancellation every so many events; each event does
		// O(active) work, so this bounds the abort latency tightly.
		if e.events++; e.events&0x3ff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := e.step(); err != nil {
			return nil, err
		}
	}
	return e.finish(), nil
}

// sortedByArrival reports whether the flows are already in non-decreasing
// arrival order (workload.Generate guarantees it, so the common case
// skips the defensive copy + stable sort entirely).
func sortedByArrival(flows []workload.Flow) bool {
	for i := 1; i < len(flows); i++ {
		if flows[i].Arrival < flows[i-1].Arrival {
			return false
		}
	}
	return true
}

// engine is the dense event-loop state. One engine runs one workload;
// step() processes a single event (arrival or completion) so tests can
// drive and measure the loop directly.
type engine struct {
	cfg     Config
	ordered []workload.Flow
	next    int   // arrival cursor into ordered
	events  int64 // events processed (cancellation-poll cadence)
	rounds  int64 // bottleneck rounds across every allocate() pass
	freezes int64 // flow freezes across every allocate() pass

	now        float64 // seconds
	windowEnd  float64 // last arrival: goodput window end
	windowBits float64
	deliveredB int64

	res *Results

	// Dense active-flow table (struct of arrays, swap-remove on
	// completion). Backing arrays are sized to len(flows) up front — the
	// peak active count cannot exceed it — so the loop never reallocates.
	nAct      int
	remaining []float64 // bits
	rate      []float64 // bits/s
	cons      [][4]int32
	bytes     []int
	arrival   []simtime.Time
	frozen    []int64 // allocate() epoch stamps, parallel to the table

	// Max-min solver state. Constraint layout: [0,n) endpoint egress,
	// [n,2n) endpoint ingress, then per-rack egress and ingress when
	// oversubscribed.
	//
	// shares0 caches caps0[c]/counts0[c] (the round-0 fair share of every
	// constraint; +Inf when unused) and is maintained incrementally as
	// flows arrive and depart — at most four divisions per event. Inside
	// allocate the scratch copy is updated whenever a freeze changes a
	// constraint, so the per-round bottleneck search is a pure compare
	// scan with no divisions. The cached value is computed by the same
	// expression the reference implementation evaluated inline
	// (caps[c]/float64(counts[c])), so the scan observes bit-identical
	// shares and selects bit-identical bottlenecks.
	nCons    int
	rackBase int
	caps0    []float64 // capacities (bits/s)
	counts0  []int32   // live membership counts, maintained incrementally
	shares0  []float64 // live caps0/counts0 cache (+Inf when counts0 == 0)
	caps     []float64 // allocate() scratch
	counts   []int32   // allocate() scratch
	shares   []float64 // allocate() scratch share cache
	epoch    int64     // allocate() invocation stamp

	// Indexed min-heap over constraints keyed lexicographically by
	// (shares[c], c). The lexicographic order makes the heap minimum
	// exactly the constraint the reference ascending-index scan selects:
	// the lowest-index constraint among those with the strictly smallest
	// share. heap0/pos0 track the live shares0 across events (at most
	// four sift fixes per event); allocate() memcopies them into
	// heap/pos scratch and fixes them as freezes change shares.
	//
	// useHeap gates the structure on fabric size: for small constraint
	// sets a linear compare scan of shares beats the heap's sift
	// constant, so the heap only pays off past heapMinCons constraints.
	// Both selection methods observe the same cached shares and the
	// same (share, lowest-index) order, so they pick bit-identical
	// bottlenecks — the golden fixtures cover both paths.
	useHeap bool
	heap0   []int32 // heap of constraint ids
	pos0    []int32 // constraint id -> heap0 slot
	heap    []int32 // allocate() scratch heap
	pos     []int32 // allocate() scratch positions

	// CSR member lists, rebuilt per allocate() from counts0 (which is
	// exactly the per-constraint membership count): members[offsets[c]:
	// offsets[c+1]] lists the dense-table indices of the flows crossing
	// constraint c, in ascending order — the same order the reference
	// full-table freeze scan visits them.
	offsets []int32 // len nCons+1
	fill    []int32 // len nCons, build cursors
	members []int32 // cap 4*len(flows)
}

func newEngine(cfg Config, flows []workload.Flow) (*engine, error) {
	switch {
	case cfg.Endpoints < 2:
		return nil, fmt.Errorf("fluid: need >= 2 endpoints")
	case cfg.EndpointRate <= 0:
		return nil, fmt.Errorf("fluid: non-positive endpoint rate")
	case cfg.Oversub < 1:
		return nil, fmt.Errorf("fluid: oversub must be >= 1")
	case cfg.Oversub > 1 && cfg.EndpointsPerRack < 1:
		return nil, fmt.Errorf("fluid: oversubscription needs a rack grouping")
	case cfg.EndpointsPerRack > 0 && cfg.Endpoints%cfg.EndpointsPerRack != 0:
		return nil, fmt.Errorf("fluid: endpoints must divide into racks")
	case len(flows) == 0:
		return nil, fmt.Errorf("fluid: no flows")
	}
	for i, f := range flows {
		if f.Src < 0 || f.Src >= cfg.Endpoints || f.Dst < 0 || f.Dst >= cfg.Endpoints ||
			f.Src == f.Dst || f.Bytes < 1 {
			return nil, fmt.Errorf("fluid: invalid flow %+v", f)
		}
		if f.ID != i {
			return nil, fmt.Errorf("fluid: flow IDs must equal their index (flow %d has ID %d)", i, f.ID)
		}
	}
	// Sort by arrival. workload.Generate already emits sorted flows, so
	// the defensive copy + stable sort only runs on unsorted input.
	ordered := flows
	if !sortedByArrival(flows) {
		ordered = make([]workload.Flow, len(flows))
		copy(ordered, flows)
		sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	}

	e := &engine{
		cfg:       cfg,
		ordered:   ordered,
		windowEnd: ordered[len(ordered)-1].Arrival.Seconds(),
		res:       &Results{Flows: len(flows)},
		remaining: make([]float64, len(flows)),
		rate:      make([]float64, len(flows)),
		cons:      make([][4]int32, len(flows)),
		bytes:     make([]int, len(flows)),
		arrival:   make([]simtime.Time, len(flows)),
		frozen:    make([]int64, len(flows)),
	}
	// Every flow completes exactly once: reserving the samples up front
	// keeps the event loop free of append-regrowth allocations.
	e.res.FCTAll.Reserve(len(flows))
	e.res.FCTShort.Reserve(len(flows))

	n := cfg.Endpoints
	e.nCons = 2 * n
	e.rackBase = 2 * n
	rackCap := 0.0
	racks := 0
	if cfg.Oversub > 1 {
		racks = n / cfg.EndpointsPerRack
		e.nCons += 2 * racks
		rackCap = float64(cfg.EndpointRate) * float64(cfg.EndpointsPerRack) / float64(cfg.Oversub)
	}
	e.caps0 = make([]float64, e.nCons)
	for i := 0; i < 2*n; i++ {
		e.caps0[i] = float64(cfg.EndpointRate)
	}
	for i := 0; i < 2*racks; i++ {
		e.caps0[e.rackBase+i] = rackCap
	}
	e.caps = make([]float64, e.nCons)
	e.counts0 = make([]int32, e.nCons)
	e.counts = make([]int32, e.nCons)
	e.shares0 = make([]float64, e.nCons)
	e.shares = make([]float64, e.nCons)
	e.useHeap = e.nCons >= heapMinCons
	e.heap0 = make([]int32, e.nCons)
	e.pos0 = make([]int32, e.nCons)
	e.heap = make([]int32, e.nCons)
	e.pos = make([]int32, e.nCons)
	for i := range e.shares0 {
		e.shares0[i] = math.Inf(1) // no members yet
		// The identity permutation is a valid heap for all-equal keys
		// with the ascending-index tie-break.
		e.heap0[i] = int32(i)
		e.pos0[i] = int32(i)
	}
	e.offsets = make([]int32, e.nCons+1)
	e.fill = make([]int32, e.nCons)
	e.members = make([]int32, 4*len(flows))
	return e, nil
}

// heapMinCons is the constraint-count threshold above which allocate()
// keeps the bottleneck heap; below it a linear compare scan of the share
// cache is faster (smaller constant, perfect locality). Chosen so a
// 64-endpoint non-blocking fabric (128 constraints) is the first to use
// the heap.
const heapMinCons = 128

// cLess orders constraint ids lexicographically by (key[c], c): strictly
// smaller share first, lowest index among equal shares. The heap minimum
// under this order is exactly what the reference ascending-index
// strict-< scan selects.
func cLess(a, b int32, key []float64) bool {
	ka, kb := key[a], key[b]
	return ka < kb || (ka == kb && a < b)
}

func siftUp(h, pos []int32, key []float64, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !cLess(h[i], h[p], key) {
			return
		}
		h[i], h[p] = h[p], h[i]
		pos[h[i]], pos[h[p]] = int32(i), int32(p)
		i = p
	}
}

func siftDown(h, pos []int32, key []float64, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && cLess(h[r], h[l], key) {
			m = r
		}
		if !cLess(h[m], h[i], key) {
			return
		}
		h[i], h[m] = h[m], h[i]
		pos[h[i]], pos[h[m]] = int32(i), int32(m)
		i = m
	}
}

// heapFix restores the heap invariant after key[c] changed.
func heapFix(h, pos []int32, key []float64, c int32) {
	i := int(pos[c])
	siftUp(h, pos, key, i)
	siftDown(h, pos, key, int(pos[c]))
}

// constraintsFor returns the constraint indices of a flow, -1 padded.
func (e *engine) constraintsFor(src, dst int) [4]int32 {
	n := e.cfg.Endpoints
	c := [4]int32{int32(src), int32(n + dst), -1, -1}
	if e.cfg.Oversub > 1 {
		srcRack := src / e.cfg.EndpointsPerRack
		dstRack := dst / e.cfg.EndpointsPerRack
		if srcRack != dstRack { // intra-rack traffic skips the aggregation tier
			racks := n / e.cfg.EndpointsPerRack
			c[2] = int32(e.rackBase + srcRack)
			c[3] = int32(e.rackBase + racks + dstRack)
		}
	}
	return c
}

func (e *engine) done() bool { return e.nAct == 0 && e.next >= len(e.ordered) }

// step advances the simulation by one event (the earlier of the next
// arrival and the next completion), then recomputes max-min rates.
func (e *engine) step() error {
	// Next arrival time, if any.
	arrival := math.Inf(1)
	if e.next < len(e.ordered) {
		arrival = e.ordered[e.next].Arrival.Seconds()
	}
	// Next completion time under current rates: an exact min-reduction
	// over the dense table (ties resolve to the lowest table index).
	completion := math.Inf(1)
	doneIdx := -1
	now := e.now
	for i := 0; i < e.nAct; i++ {
		r := e.rate[i]
		if r <= 0 {
			continue
		}
		if t := now + e.remaining[i]/r; t < completion {
			completion, doneIdx = t, i
		}
	}
	if math.IsInf(arrival, 1) && math.IsInf(completion, 1) {
		return fmt.Errorf("fluid: stalled with %d active flows", e.nAct)
	}

	if arrival <= completion {
		e.integrate(arrival - now)
		e.now = arrival
		fl := e.ordered[e.next]
		e.next++
		i := e.nAct
		e.nAct++
		e.remaining[i] = float64(fl.Bytes) * 8
		e.rate[i] = 0
		e.bytes[i] = fl.Bytes
		e.arrival[i] = fl.Arrival
		cs := e.constraintsFor(fl.Src, fl.Dst)
		e.cons[i] = cs
		for _, c := range cs {
			if c >= 0 {
				e.counts0[c]++
				e.shares0[c] = e.caps0[c] / float64(e.counts0[c])
				if e.useHeap {
					heapFix(e.heap0, e.pos0, e.shares0, c)
				}
			}
		}
	} else {
		e.integrate(completion - now)
		e.now = completion
		e.res.Completed++
		e.deliveredB += int64(e.bytes[doneIdx])
		fct := simtime.Duration((completion-e.arrival[doneIdx].Seconds())*float64(simtime.Second)) + e.cfg.BaseRTT
		ms := fct.Seconds() * 1e3
		e.res.FCTAll.Add(ms)
		if e.bytes[doneIdx] < 100_000 {
			e.res.FCTShort.Add(ms)
		}
		if t := simtime.Time(completion * float64(simtime.Second)); t > e.res.SimTime {
			e.res.SimTime = t
		}
		// Swap-remove from the dense table.
		for _, c := range e.cons[doneIdx] {
			if c >= 0 {
				if e.counts0[c]--; e.counts0[c] > 0 {
					e.shares0[c] = e.caps0[c] / float64(e.counts0[c])
				} else {
					e.shares0[c] = math.Inf(1)
				}
				if e.useHeap {
					heapFix(e.heap0, e.pos0, e.shares0, c)
				}
			}
		}
		last := e.nAct - 1
		if doneIdx != last {
			e.remaining[doneIdx] = e.remaining[last]
			e.rate[doneIdx] = e.rate[last]
			e.cons[doneIdx] = e.cons[last]
			e.bytes[doneIdx] = e.bytes[last]
			e.arrival[doneIdx] = e.arrival[last]
		}
		e.nAct = last
	}
	e.allocate()
	return nil
}

// integrate advances every active flow by dt seconds at its current rate
// and accrues the goodput-window integral. Zero-rate flows are skipped:
// x - 0*dt == x and windowBits + 0 == windowBits exactly, so the skip is
// arithmetically identical to the reference implementation.
func (e *engine) integrate(dt float64) {
	if dt <= 0 {
		return
	}
	overlap := dt
	if e.now+dt > e.windowEnd {
		overlap = e.windowEnd - e.now
	}
	remaining, rate := e.remaining, e.rate
	if overlap > 0 {
		var bits float64
		for i := 0; i < e.nAct; i++ {
			r := rate[i]
			if r == 0 {
				continue
			}
			v := remaining[i] - r*dt
			if v < 0 {
				v = 0
			}
			remaining[i] = v
			bits += r * overlap
		}
		e.windowBits += bits
		return
	}
	for i := 0; i < e.nAct; i++ {
		r := rate[i]
		if r == 0 {
			continue
		}
		v := remaining[i] - r*dt
		if v < 0 {
			v = 0
		}
		remaining[i] = v
	}
}

// allocate computes max-min fair rates for the active flows by
// progressive filling. The resulting rate vector is the unique max-min
// solution and is independent of flow iteration order (within a round
// every frozen flow subtracts the same share, and float subtraction of a
// repeated constant commutes), so the dense-order iteration reproduces
// the reference map-order implementation bit for bit. Constraint
// membership counts are maintained incrementally on arrival/departure;
// here they are restored with two memcopies instead of a full rebuild,
// and frozen flows are marked with an epoch stamp instead of a freshly
// allocated bool slice.
func (e *engine) allocate() {
	copy(e.caps, e.caps0)
	copy(e.counts, e.counts0)
	copy(e.shares, e.shares0)
	useHeap := e.useHeap
	if useHeap {
		copy(e.heap, e.heap0)
		copy(e.pos, e.pos0)
	}
	e.epoch++
	epoch := e.epoch
	nAct := e.nAct
	// Build the CSR member lists: counts0 is exactly the per-constraint
	// membership count, so the offsets are its prefix sum, and a single
	// ascending pass over the table fills each list in ascending
	// dense-table order — the order the reference freeze scan visits.
	off := e.offsets
	off[0] = 0
	for c := 0; c < e.nCons; c++ {
		off[c+1] = off[c] + e.counts0[c]
		e.fill[c] = off[c]
	}
	for i := 0; i < nAct; i++ {
		e.rate[i] = 0
		cs := &e.cons[i]
		for _, c := range cs {
			if c >= 0 {
				e.members[e.fill[c]] = int32(i)
				e.fill[c]++
			}
		}
	}
	shares := e.shares
	heap, pos, members := e.heap, e.pos, e.members
	unfrozen := nAct
	for unfrozen > 0 {
		e.rounds++
		// Pick the tightest constraint: shares[] caches
		// caps[c]/float64(counts[c]) — the identical expression the
		// reference evaluated inline, +Inf for empty constraints. The
		// heap minimum under the (share, index) order and the linear
		// ascending strict-< scan select the same lowest-index minimum.
		var b int32
		var bestShare float64
		if useHeap {
			b = heap[0]
			bestShare = shares[b]
		} else {
			b, bestShare = 0, shares[0]
			for c := 1; c < e.nCons; c++ {
				if s := shares[c]; s < bestShare {
					b, bestShare = int32(c), s
				}
			}
		}
		if math.IsInf(bestShare, 1) {
			break // no constraint has members (defensive, as before)
		}
		// Freeze every unfrozen flow crossing the bottleneck. The member
		// list visits exactly the flows the reference full-table scan
		// would freeze, in the same ascending order. After the loop every
		// member is frozen, so counts[b] is 0, shares[b] is +Inf, and b
		// has sunk in the heap: each bottleneck is selected at most once.
		for k := off[b]; k < off[b+1]; k++ {
			i := int(members[k])
			if e.frozen[i] == epoch {
				continue
			}
			e.frozen[i] = epoch
			unfrozen--
			e.freezes++
			e.rate[i] = bestShare
			cs := &e.cons[i]
			for _, c := range cs {
				if c >= 0 {
					e.caps[c] -= bestShare
					if e.caps[c] < 0 {
						e.caps[c] = 0
					}
					if e.counts[c]--; e.counts[c] > 0 {
						shares[c] = e.caps[c] / float64(e.counts[c])
					} else {
						shares[c] = math.Inf(1)
					}
					if useHeap {
						heapFix(heap, pos, shares, c)
					}
				}
			}
		}
	}
}

// finish assembles the Results and publishes the process-wide counters.
func (e *engine) finish() *Results {
	res := e.res
	res.DeliveredBytes = e.deliveredB
	denom := float64(e.cfg.Endpoints) * float64(e.cfg.EndpointRate)
	if res.SimTime > 0 {
		res.MakespanGoodput = float64(e.deliveredB) * 8 / (res.SimTime.Seconds() * denom)
	}
	if e.windowEnd > 0 {
		res.GoodputNorm = e.windowBits / (e.windowEnd * denom)
	} else {
		res.GoodputNorm = res.MakespanGoodput
	}
	statFlows.Add(int64(res.Completed))
	statEvents.Add(e.events)
	// Telemetry flush: the event loop only bumps plain int64 fields
	// (rounds, freezes, events), keeping TestEventLoopZeroAlloc intact;
	// the registry is touched once per run, here.
	reg := telemetry.Default
	reg.Counter("sirius_fluid_runs_total").Inc()
	reg.Counter("sirius_fluid_events_total").Add(e.events)
	reg.Counter("sirius_fluid_bottleneck_rounds_total").Add(e.rounds)
	reg.Counter("sirius_fluid_freezes_total").Add(e.freezes)
	reg.Counter("sirius_fluid_flows_completed_total").Add(int64(res.Completed))
	return res
}
