// Package fluid computes the paper's idealized electrically-switched
// baselines, ESN (Ideal) and ESN-OSUB (Ideal) (§7).
//
// The paper defines these baselines as upper bounds: per-flow queues and
// back-pressure at every switch with packet spraying across all paths of a
// folded Clos — "an upper bound on the performance achievable by any rate
// control and routing protocol". The steady state of that idealization is
// exactly max-min fair bandwidth allocation subject to the fabric's
// capacity constraints: each endpoint's NIC in both directions and, for
// the oversubscribed variant, each rack's aggregation capacity. This
// package computes that allocation with progressive filling, re-evaluated
// at every flow arrival and completion, and integrates flow progress
// exactly between events.
package fluid

import (
	"context"
	"fmt"
	"math"
	"sort"

	"sirius/internal/metrics"
	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// Config parameterizes the fabric.
type Config struct {
	// Endpoints is the number of attached endpoints (servers, or racks
	// when comparing at rack granularity).
	Endpoints int
	// EndpointRate is each endpoint's NIC rate in both directions.
	EndpointRate simtime.Rate
	// EndpointsPerRack groups endpoints into racks for the oversubscribed
	// variant; 0 or 1 disables the rack tier.
	EndpointsPerRack int
	// Oversub is the aggregation-tier oversubscription ratio: inter-rack
	// capacity per rack is EndpointsPerRack*EndpointRate/Oversub.
	// 1 = non-blocking (ESN Ideal).
	Oversub int
	// BaseRTT is added to every flow completion time (propagation and
	// switching latency floor).
	BaseRTT simtime.Duration
}

// Results mirrors the core simulator's results for comparison.
type Results struct {
	Flows            int
	Completed        int
	SimTime          simtime.Time
	DeliveredBytes   int64
	GoodputNorm      float64 // over the arrival window (see core.Results)
	MakespanGoodput  float64 // over the full makespan
	FCTAll, FCTShort metrics.Sample
}

type flowState struct {
	src, dst  int
	remaining float64 // bits
	rate      float64 // bits/s
	bytes     int
	arrival   simtime.Time
}

// Run simulates the flows to completion.
func Run(cfg Config, flows []workload.Flow) (*Results, error) {
	return RunContext(context.Background(), cfg, flows)
}

// RunContext is Run with cancellation: the event loop polls ctx
// periodically and returns ctx.Err() when it is done, mirroring
// core.RunContext so sweep workers over the ESN baseline abort promptly.
func RunContext(ctx context.Context, cfg Config, flows []workload.Flow) (*Results, error) {
	switch {
	case cfg.Endpoints < 2:
		return nil, fmt.Errorf("fluid: need >= 2 endpoints")
	case cfg.EndpointRate <= 0:
		return nil, fmt.Errorf("fluid: non-positive endpoint rate")
	case cfg.Oversub < 1:
		return nil, fmt.Errorf("fluid: oversub must be >= 1")
	case cfg.Oversub > 1 && cfg.EndpointsPerRack < 1:
		return nil, fmt.Errorf("fluid: oversubscription needs a rack grouping")
	case cfg.EndpointsPerRack > 0 && cfg.Endpoints%cfg.EndpointsPerRack != 0:
		return nil, fmt.Errorf("fluid: endpoints must divide into racks")
	}
	for i, f := range flows {
		if f.Src < 0 || f.Src >= cfg.Endpoints || f.Dst < 0 || f.Dst >= cfg.Endpoints ||
			f.Src == f.Dst || f.Bytes < 1 {
			return nil, fmt.Errorf("fluid: invalid flow %+v", f)
		}
		if f.ID != i {
			return nil, fmt.Errorf("fluid: flow IDs must equal their index (flow %d has ID %d)", i, f.ID)
		}
	}
	// Sort by arrival (workload.Generate already does; be safe).
	ordered := make([]workload.Flow, len(flows))
	copy(ordered, flows)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })

	s := &solver{cfg: cfg}
	s.init()

	res := &Results{Flows: len(flows)}
	active := make(map[int]*flowState)
	now := 0.0 // seconds
	next := 0
	var deliveredB int64
	// Goodput window: bits delivered by the time of the last arrival
	// (see the core simulator's GoodputNorm for the rationale).
	windowEnd := ordered[len(ordered)-1].Arrival.Seconds()
	var windowBits float64
	integrate := func(dt float64) {
		if dt <= 0 {
			return
		}
		overlap := dt
		if now+dt > windowEnd {
			overlap = windowEnd - now
		}
		for _, f := range active {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
			if overlap > 0 {
				windowBits += f.rate * overlap
			}
		}
	}

	events := 0
	for len(active) > 0 || next < len(ordered) {
		// Poll for cancellation every so many events; each event does
		// O(active) work, so this bounds the abort latency tightly.
		if events++; events&0x3ff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Next arrival time, if any.
		arrival := math.Inf(1)
		if next < len(ordered) {
			arrival = ordered[next].Arrival.Seconds()
		}
		// Next completion time under current rates.
		completion := math.Inf(1)
		var doneID int
		for id, f := range active {
			if f.rate <= 0 {
				continue
			}
			t := now + f.remaining/f.rate
			if t < completion {
				completion, doneID = t, id
			}
		}
		if math.IsInf(arrival, 1) && math.IsInf(completion, 1) {
			return nil, fmt.Errorf("fluid: stalled with %d active flows", len(active))
		}

		if arrival <= completion {
			// Advance to the arrival.
			integrate(arrival - now)
			now = arrival
			fl := ordered[next]
			next++
			active[fl.ID] = &flowState{
				src: fl.Src, dst: fl.Dst,
				remaining: float64(fl.Bytes) * 8,
				bytes:     fl.Bytes,
				arrival:   fl.Arrival,
			}
		} else {
			integrate(completion - now)
			now = completion
			f := active[doneID]
			delete(active, doneID)
			res.Completed++
			deliveredB += int64(f.bytes)
			fct := simtime.Duration((now-f.arrival.Seconds())*float64(simtime.Second)) + cfg.BaseRTT
			ms := fct.Seconds() * 1e3
			res.FCTAll.Add(ms)
			if f.bytes < 100_000 {
				res.FCTShort.Add(ms)
			}
			if t := simtime.Time(now * float64(simtime.Second)); t > res.SimTime {
				res.SimTime = t
			}
		}
		s.allocate(active)
	}

	res.DeliveredBytes = deliveredB
	denom := float64(cfg.Endpoints) * float64(cfg.EndpointRate)
	if res.SimTime > 0 {
		res.MakespanGoodput = float64(deliveredB) * 8 / (res.SimTime.Seconds() * denom)
	}
	if windowEnd > 0 {
		res.GoodputNorm = windowBits / (windowEnd * denom)
	} else {
		res.GoodputNorm = res.MakespanGoodput
	}
	return res, nil
}

// solver computes max-min rates by progressive filling.
type solver struct {
	cfg Config

	// Constraint layout: [0,n) endpoint egress, [n,2n) endpoint ingress,
	// then per-rack egress and ingress when oversubscribed.
	nCons    int
	rackBase int
	caps0    []float64 // capacities (bits/s)

	caps   []float64
	counts []int
	cons   [][4]int32 // per active flow (rebuilt): constraint indices, -1 padded
	rates  []*flowState
}

func (s *solver) init() {
	n := s.cfg.Endpoints
	s.nCons = 2 * n
	s.rackBase = 2 * n
	rackCap := 0.0
	racks := 0
	if s.cfg.Oversub > 1 {
		racks = n / s.cfg.EndpointsPerRack
		s.nCons += 2 * racks
		rackCap = float64(s.cfg.EndpointRate) * float64(s.cfg.EndpointsPerRack) / float64(s.cfg.Oversub)
	}
	s.caps0 = make([]float64, s.nCons)
	for i := 0; i < 2*n; i++ {
		s.caps0[i] = float64(s.cfg.EndpointRate)
	}
	for i := 0; i < 2*racks; i++ {
		s.caps0[s.rackBase+i] = rackCap
	}
	s.caps = make([]float64, s.nCons)
	s.counts = make([]int, s.nCons)
}

// constraintsFor returns the constraint indices of a flow.
func (s *solver) constraintsFor(f *flowState) [4]int32 {
	n := s.cfg.Endpoints
	c := [4]int32{int32(f.src), int32(n + f.dst), -1, -1}
	if s.cfg.Oversub > 1 {
		srcRack := f.src / s.cfg.EndpointsPerRack
		dstRack := f.dst / s.cfg.EndpointsPerRack
		if srcRack != dstRack { // intra-rack traffic skips the aggregation tier
			racks := n / s.cfg.EndpointsPerRack
			c[2] = int32(s.rackBase + srcRack)
			c[3] = int32(s.rackBase + racks + dstRack)
		}
	}
	return c
}

// allocate computes max-min fair rates for the active flows.
func (s *solver) allocate(active map[int]*flowState) {
	copy(s.caps, s.caps0)
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.rates = s.rates[:0]
	s.cons = s.cons[:0]
	// Deterministic order (map iteration is not): sort by pointer-free id
	// via collecting and sorting by (src, dst, remaining) is overkill —
	// rates are the unique max-min solution, independent of order.
	for _, f := range active {
		f.rate = 0
		cs := s.constraintsFor(f)
		s.rates = append(s.rates, f)
		s.cons = append(s.cons, cs)
		for _, c := range cs {
			if c >= 0 {
				s.counts[c]++
			}
		}
	}
	unfrozen := len(s.rates)
	frozen := make([]bool, len(s.rates))
	for unfrozen > 0 {
		// Find the tightest constraint.
		best, bestShare := -1, math.Inf(1)
		for c := 0; c < s.nCons; c++ {
			if s.counts[c] == 0 {
				continue
			}
			share := s.caps[c] / float64(s.counts[c])
			if share < bestShare {
				best, bestShare = c, share
			}
		}
		if best < 0 {
			break
		}
		// Freeze every unfrozen flow crossing the bottleneck.
		for i, cs := range s.cons {
			if frozen[i] {
				continue
			}
			hit := false
			for _, c := range cs {
				if int(c) == best {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			frozen[i] = true
			unfrozen--
			s.rates[i].rate = bestShare
			for _, c := range cs {
				if c >= 0 {
					s.caps[c] -= bestShare
					if s.caps[c] < 0 {
						s.caps[c] = 0
					}
					s.counts[c]--
				}
			}
		}
	}
}
