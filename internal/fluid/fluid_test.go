package fluid

import (
	"math"
	"testing"

	"sirius/internal/simtime"
	"sirius/internal/workload"
)

func cfg(n int) Config {
	return Config{Endpoints: n, EndpointRate: 400 * simtime.Gbps, Oversub: 1}
}

func TestSingleFlowFullRate(t *testing.T) {
	// One flow gets the whole NIC: 400 KB at 400 Gbps = 8 us.
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: 1, Bytes: 400_000}}
	res, err := Run(cfg(4), flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatal("flow not completed")
	}
	wantMS := 400_000.0 * 8 / 400e9 * 1e3
	if got := res.FCTAll.Max(); math.Abs(got-wantMS) > wantMS*0.01 {
		t.Errorf("FCT = %v ms, want %v", got, wantMS)
	}
}

func TestFairSharingAtDestination(t *testing.T) {
	// Two flows into one destination share its NIC: each runs at half
	// rate, so both take twice the solo time.
	flows := []workload.Flow{
		{ID: 0, Src: 0, Dst: 2, Bytes: 400_000},
		{ID: 1, Src: 1, Dst: 2, Bytes: 400_000},
	}
	res, err := Run(cfg(4), flows)
	if err != nil {
		t.Fatal(err)
	}
	wantMS := 2 * 400_000.0 * 8 / 400e9 * 1e3
	if got := res.FCTAll.Max(); math.Abs(got-wantMS) > wantMS*0.01 {
		t.Errorf("FCT = %v ms, want %v", got, wantMS)
	}
}

func TestMaxMinNotEqualShare(t *testing.T) {
	// Flows: A: 0->1, B: 0->2, C: 3->2. Source 0 splits between A and B;
	// max-min gives A the leftover of dst 1. With unit NIC: bottleneck at
	// src 0 (2 flows) and dst 2 (2 flows): all at 1/2... then A could
	// take more of dst1? No: A is limited by src 0 shared with B, and B
	// by dst 2 shared with C; max-min: first bottleneck share 1/2
	// everywhere; A ends at 1/2, C gets dst2 leftover 1/2. Verify via
	// completion times: all equal at half rate.
	r := 400e9
	bytes := 400_000
	flows := []workload.Flow{
		{ID: 0, Src: 0, Dst: 1, Bytes: bytes},
		{ID: 1, Src: 0, Dst: 2, Bytes: bytes},
		{ID: 2, Src: 3, Dst: 2, Bytes: bytes},
	}
	res, err := Run(cfg(4), flows)
	if err != nil {
		t.Fatal(err)
	}
	wantMS := float64(bytes) * 8 / (r / 2) * 1e3
	if got := res.FCTAll.Min(); got < wantMS*0.99 {
		t.Errorf("fastest FCT = %v ms, faster than half-rate %v", got, wantMS)
	}
}

func TestRatesRecomputeOnDeparture(t *testing.T) {
	// Short and long flow share a destination; when the short one leaves,
	// the long one speeds up: its FCT is less than 2x solo.
	flows := []workload.Flow{
		{ID: 0, Src: 0, Dst: 2, Bytes: 4_000_000},
		{ID: 1, Src: 1, Dst: 2, Bytes: 400_000},
	}
	res, err := Run(cfg(4), flows)
	if err != nil {
		t.Fatal(err)
	}
	soloMS := 4_000_000.0 * 8 / 400e9 * 1e3
	long := res.FCTAll.Max()
	if long >= 2*soloMS*0.99 || long <= soloMS {
		t.Errorf("long FCT = %v ms, want between solo (%v) and 2x solo", long, soloMS)
	}
}

func TestOversubscriptionCapsInterRack(t *testing.T) {
	// 8 endpoints in 2 racks of 4, 3:1 oversubscribed: a single
	// inter-rack flow is capped by... nothing (rack cap 4*R/3 > R). But
	// four parallel inter-rack flows from rack 0 share 4R/3 instead of
	// 4R: each gets R/3.
	c := Config{Endpoints: 8, EndpointRate: 300 * simtime.Gbps,
		EndpointsPerRack: 4, Oversub: 3}
	var flows []workload.Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, workload.Flow{ID: i, Src: i, Dst: 4 + i, Bytes: 300_000})
	}
	res, err := Run(c, flows)
	if err != nil {
		t.Fatal(err)
	}
	// Each flow should run at 4*300G/3/4 = 100G: FCT = 300KB*8/100G.
	wantMS := 300_000.0 * 8 / 100e9 * 1e3
	if got := res.FCTAll.Max(); math.Abs(got-wantMS) > wantMS*0.02 {
		t.Errorf("oversubscribed FCT = %v ms, want %v", got, wantMS)
	}
}

func TestIntraRackBypassesOversubscription(t *testing.T) {
	c := Config{Endpoints: 8, EndpointRate: 300 * simtime.Gbps,
		EndpointsPerRack: 4, Oversub: 3}
	// Intra-rack flows are unaffected by the aggregation cap.
	var flows []workload.Flow
	for i := 0; i < 2; i++ {
		flows = append(flows, workload.Flow{ID: i, Src: 2 * i, Dst: 2*i + 1, Bytes: 300_000})
	}
	res, err := Run(c, flows)
	if err != nil {
		t.Fatal(err)
	}
	wantMS := 300_000.0 * 8 / 300e9 * 1e3
	if got := res.FCTAll.Max(); math.Abs(got-wantMS) > wantMS*0.02 {
		t.Errorf("intra-rack FCT = %v ms, want full rate %v", got, wantMS)
	}
}

func TestPoissonWorkloadCompletes(t *testing.T) {
	wcfg := workload.DefaultConfig(16, 400*simtime.Gbps, 0.6, 2000)
	flows, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg(16), flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d of %d", res.Completed, len(flows))
	}
	if res.DeliveredBytes != workload.TotalBytes(flows) {
		t.Error("byte conservation violated")
	}
	if res.GoodputNorm <= 0 || res.GoodputNorm > 1.01 {
		t.Errorf("goodput = %v, out of range", res.GoodputNorm)
	}
}

func TestOversubWorseThanIdeal(t *testing.T) {
	// The Fig. 9 headline: at meaningful load, ESN-OSUB's short-flow FCT
	// and goodput are strictly worse than non-blocking ESN.
	wcfg := workload.DefaultConfig(24, 400*simtime.Gbps, 0.8, 3000)
	flows, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Run(cfg(24), flows)
	if err != nil {
		t.Fatal(err)
	}
	osub, err := Run(Config{Endpoints: 24, EndpointRate: 400 * simtime.Gbps,
		EndpointsPerRack: 4, Oversub: 3}, flows)
	if err != nil {
		t.Fatal(err)
	}
	if osub.FCTShort.Percentile(99) <= ideal.FCTShort.Percentile(99) {
		t.Errorf("OSUB p99 (%v) should exceed ideal p99 (%v)",
			osub.FCTShort.Percentile(99), ideal.FCTShort.Percentile(99))
	}
	if osub.GoodputNorm >= ideal.GoodputNorm {
		t.Errorf("OSUB goodput (%v) should be below ideal (%v)",
			osub.GoodputNorm, ideal.GoodputNorm)
	}
}

func TestBaseRTTAdded(t *testing.T) {
	c := cfg(4)
	c.BaseRTT = 10 * simtime.Microsecond
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: 1, Bytes: 400}}
	res, err := Run(c, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.FCTAll.Max() < 0.01 { // 10 us = 0.01 ms
		t.Errorf("FCT = %v ms, BaseRTT not included", res.FCTAll.Max())
	}
}

func TestValidation(t *testing.T) {
	flows := []workload.Flow{{Src: 0, Dst: 1, Bytes: 1}}
	if _, err := Run(Config{Endpoints: 1, EndpointRate: 1, Oversub: 1}, flows); err == nil {
		t.Error("1 endpoint accepted")
	}
	if _, err := Run(Config{Endpoints: 4, EndpointRate: 0, Oversub: 1}, flows); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Run(Config{Endpoints: 4, EndpointRate: 1, Oversub: 3}, flows); err == nil {
		t.Error("oversub without racks accepted")
	}
	if _, err := Run(Config{Endpoints: 4, EndpointRate: 1, Oversub: 1},
		[]workload.Flow{{Src: 0, Dst: 0, Bytes: 1}}); err == nil {
		t.Error("self flow accepted")
	}
}

func TestMakespanGoodput(t *testing.T) {
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: 1, Bytes: 400_000}}
	res, err := Run(cfg(4), flows)
	if err != nil {
		t.Fatal(err)
	}
	// Single flow at full NIC rate: makespan goodput = 1/Endpoints.
	want := 1.0 / 4
	if res.MakespanGoodput < want*0.99 || res.MakespanGoodput > want*1.01 {
		t.Errorf("makespan goodput = %v, want %v", res.MakespanGoodput, want)
	}
	// Degenerate window (single arrival): GoodputNorm falls back to it.
	if res.GoodputNorm != res.MakespanGoodput {
		t.Errorf("window fallback broken: %v vs %v", res.GoodputNorm, res.MakespanGoodput)
	}
}

func TestFlowIDValidation(t *testing.T) {
	flows := []workload.Flow{{ID: 7, Src: 0, Dst: 1, Bytes: 10}}
	if _, err := Run(cfg(4), flows); err == nil {
		t.Error("mis-IDed flow accepted")
	}
}
