//go:build !race

// The steady-state allocation test is skipped under the race detector:
// its instrumentation changes the allocation behavior testing.AllocsPerRun
// observes. The CI benchmark-smoke job runs it without -race.

package fluid

import (
	"testing"

	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// stepDriver builds a warmed engine and returns a closure advancing one
// event, mirroring the loop in RunContext.
func stepDriver(t *testing.T, cfg Config, nflows int, seed uint64) (e *engine, stepOnce func()) {
	t.Helper()
	wcfg := workload.DefaultConfig(cfg.Endpoints, cfg.EndpointRate, 0.85, nflows)
	wcfg.Seed = seed
	flows, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err = newEngine(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	return e, func() {
		if err := e.step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEventLoopZeroAlloc pins the zero-allocation contract of the fluid
// event loop: with the dense flow table, FCT samples and solver scratch
// all preallocated by newEngine, processing an event (arrival or
// completion, including the full max-min reallocation) performs no heap
// allocations — on the linear-scan path and the heap path alike.
func TestEventLoopZeroAlloc(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"scan_ideal", Config{Endpoints: 32, EndpointRate: 400 * simtime.Gbps,
			Oversub: 1, BaseRTT: simtime.Microsecond}},
		{"scan_osub3", Config{Endpoints: 32, EndpointRate: 400 * simtime.Gbps,
			EndpointsPerRack: 8, Oversub: 3, BaseRTT: simtime.Microsecond}},
		{"heap_ideal", Config{Endpoints: 128, EndpointRate: 400 * simtime.Gbps,
			Oversub: 1, BaseRTT: simtime.Microsecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, stepOnce := stepDriver(t, tc.cfg, 3000, 11)
			if tc.cfg.Endpoints >= 64 != e.useHeap {
				t.Fatalf("unexpected bottleneck-selection path (useHeap=%v)", e.useHeap)
			}
			// Warm up into the steady state: plenty of arrivals consumed
			// and completions recorded, far from draining.
			for i := 0; i < 2000 && !e.done(); i++ {
				stepOnce()
			}
			if e.done() {
				t.Fatal("workload drained during warm-up; enlarge it")
			}
			if avg := testing.AllocsPerRun(300, stepOnce); avg != 0 {
				t.Errorf("steady-state event allocates %.2f objects, want 0", avg)
			}
			if e.done() {
				t.Fatal("workload drained during measurement; enlarge it")
			}
		})
	}
}
