package fluid

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"sirius/internal/simtime"
	"sirius/internal/workload"
)

// The golden determinism tests pin the fluid solver's observable output at
// fixed seeds. The fixtures under testdata/ were generated BEFORE the
// heap-driven dense-active-list rewrite of the event loop, so a passing
// run proves the optimized solver is output-preserving against the
// reference progressive-filling implementation — the PR's hard constraint.
//
// One field is canonicalized rather than exact: GoodputNorm. The
// pre-change code accumulated the window-goodput integral by iterating a
// Go map (`for _, f := range active { windowBits += ... }`), so its last
// one or two bits were run-dependent even at a fixed seed (measured:
// ~2e-16 relative jitter). The fixture therefore stores GoodputNorm
// formatted to 12 significant digits — far beyond any physical meaning,
// tight enough to catch real regressions — while every other field is the
// full-precision value, which the reference implementation reproduces
// bit-for-bit. The rewritten solver integrates in flow order, so its
// output is fully deterministic by construction.
//
// Regenerate (only on an intentional semantic change) with:
//
//	go test ./internal/fluid -run TestGolden -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden determinism fixtures")

// goldenSummary is the canonical JSON-stable projection of Results.
type goldenSummary struct {
	Flows           int
	Completed       int
	SimTimeNS       int64
	DeliveredBytes  int64
	GoodputNorm12   string // 12 significant digits; see the package comment above
	MakespanGoodput float64
	FCTAllCount     int
	FCTAllMean      float64
	FCTAllMin       float64
	FCTAllP50       float64
	FCTAllP99       float64
	FCTAllMax       float64
	FCTShortCount   int
	FCTShortP99     float64
}

func summarize(res *Results) goldenSummary {
	g := goldenSummary{
		Flows:           res.Flows,
		Completed:       res.Completed,
		SimTimeNS:       int64(res.SimTime),
		DeliveredBytes:  res.DeliveredBytes,
		GoodputNorm12:   strconv.FormatFloat(res.GoodputNorm, 'g', 12, 64),
		MakespanGoodput: res.MakespanGoodput,
		FCTAllCount:     res.FCTAll.Count(),
		FCTShortCount:   res.FCTShort.Count(),
	}
	if g.FCTAllCount > 0 {
		g.FCTAllMean = res.FCTAll.Mean()
		g.FCTAllMin = res.FCTAll.Min()
		g.FCTAllP50 = res.FCTAll.Percentile(50)
		g.FCTAllP99 = res.FCTAll.Percentile(99)
		g.FCTAllMax = res.FCTAll.Max()
	}
	if g.FCTShortCount > 0 {
		g.FCTShortP99 = res.FCTShort.Percentile(99)
	}
	return g
}

// goldenCases covers both fabric variants (non-blocking and 3:1
// oversubscribed), a short-flow-dominated workload and a large
// high-load run. Everything is derived from constants so the only
// degree of freedom is the code.
func goldenCases(t *testing.T) map[string]func() (Config, []workload.Flow) {
	t.Helper()
	gen := func(nodes int, load, mean float64, flows int, seed uint64) []workload.Flow {
		wcfg := workload.DefaultConfig(nodes, 400*simtime.Gbps, load, flows)
		wcfg.MeanFlowBytes = mean
		wcfg.Seed = seed
		fl, err := workload.Generate(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		return fl
	}
	return map[string]func() (Config, []workload.Flow){
		"ideal": func() (Config, []workload.Flow) {
			return Config{Endpoints: 32, EndpointRate: 400 * simtime.Gbps, Oversub: 1,
				BaseRTT: simtime.Microsecond}, gen(32, 0.8, 100e3, 1500, 11)
		},
		"osub3": func() (Config, []workload.Flow) {
			return Config{Endpoints: 32, EndpointRate: 400 * simtime.Gbps,
				EndpointsPerRack: 8, Oversub: 3,
				BaseRTT: simtime.Microsecond}, gen(32, 0.8, 100e3, 1500, 13)
		},
		"shortflows": func() (Config, []workload.Flow) {
			return Config{Endpoints: 16, EndpointRate: 400 * simtime.Gbps,
				Oversub: 1}, gen(16, 0.6, 2e3, 1000, 5)
		},
		"heavyload": func() (Config, []workload.Flow) {
			return Config{Endpoints: 64, EndpointRate: 400 * simtime.Gbps,
				Oversub: 1, BaseRTT: simtime.Microsecond}, gen(64, 0.95, 100e3, 2500, 7)
		},
	}
}

func TestGoldenDeterminism(t *testing.T) {
	for name, build := range goldenCases(t) {
		t.Run(name, func(t *testing.T) {
			cfg, flows := build()
			res, err := Run(cfg, flows)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(summarize(res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden_"+name+".json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden fixture missing (run with -update-golden): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("results diverge from the golden fixture %s\n got: %s\nwant: %s",
					path, got, want)
			}
			// A second run in the same process must match too (no hidden
			// global state).
			res2, err := Run(cfg, flows)
			if err != nil {
				t.Fatal(err)
			}
			got2, err := json.MarshalIndent(summarize(res2), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if string(append(got2, '\n')) != string(got) {
				t.Error("re-run in the same process diverged")
			}
		})
	}
}
