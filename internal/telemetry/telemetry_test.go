package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	// Same name+labels -> same series.
	if r.Counter("test_total") != c {
		t.Fatal("GetOrCreate returned a different counter for the same key")
	}
	// Different labels -> different series.
	c2 := r.Counter("test_total", "node", "1")
	if c2 == c {
		t.Fatal("labelled series aliased the unlabelled one")
	}
	c2.Add(7)
	if c.Value() != 42 || c2.Value() != 7 {
		t.Fatalf("series not independent: %d %d", c.Value(), c2.Value())
	}
}

func TestCounterShards(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sharded_total")
	// Grab more handles than shards; all must still sum correctly.
	for i := 0; i < shardCount*3; i++ {
		c.Shard().Add(1)
	}
	if got := c.Value(); got != int64(shardCount*3) {
		t.Fatalf("Value = %d, want %d", got, shardCount*3)
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lbl_total", "b", "2", "a", "1")
	b := r.Counter("lbl_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed series identity")
	}
	if a.labels != `{a="1",b="2"}` {
		t.Fatalf("labels rendered %q", a.labels)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(1.5)
	if g.Value() != 1.5 {
		t.Fatalf("Value = %g", g.Value())
	}
	g.Add(-0.5)
	if g.Value() != 1.0 {
		t.Fatalf("after Add, Value = %g", g.Value())
	}
	g.SetInt(9)
	if g.Value() != 9 {
		t.Fatalf("after SetInt, Value = %g", g.Value())
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	// Satellite: bucket-boundary edge cases — 0, max, +Inf overflow.
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{math.Ldexp(1, histMinExp-3), 0},       // below range -> underflow
		{math.SmallestNonzeroFloat64, 0},       // subnormal -> underflow
		{math.Ldexp(1, histMinExp), 1},         // exactly 2^min -> first real bucket
		{1.0, 1 - histMinExp},                  // 1.0 = 2^0: Frexp exp=1 -> bucket [1,2)
		{1.5, 1 - histMinExp},                  // same bucket [1,2)
		{math.Ldexp(1, histMaxExp - 1), histBuckets - 2}, // top finite bucket
		{math.Ldexp(1, histMaxExp), histBuckets - 1},     // 2^max -> overflow
		{math.MaxFloat64, histBuckets - 1},
		{math.Inf(1), histBuckets - 1},
		{math.NaN(), histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in a bucket whose le bound >= value
	// (half-open lower, inclusive upper at exact powers of two).
	for _, v := range []float64{1e-6, 0.1, 0.5, 1, 2, 3, 1024, 1e9, 1e18} {
		i := bucketIndex(v)
		if ub := BucketBound(i); v > ub {
			t.Errorf("value %g above its bucket bound %g (bucket %d)", v, ub, i)
		}
		// Buckets are half-open [2^(e-1), 2^e): a value strictly below
		// the previous bound would be misbucketed. Exact powers of two
		// sit ON the previous bound by design (documented
		// approximation of Prometheus' inclusive le).
		if i > 0 {
			if lb := BucketBound(i - 1); v < lb {
				t.Errorf("value %g below previous bound %g (bucket %d)", v, lb, i)
			}
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds")
	for _, v := range []float64{0.5, 0.5, 2, 1e30} {
		h.Observe(v)
	}
	h.Shard().Observe(4)
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms", len(s.Histograms))
	}
	hp := s.Histograms[0]
	if hp.Count != 5 {
		t.Fatalf("Count = %d, want 5", hp.Count)
	}
	wantSum := 0.5 + 0.5 + 2 + 1e30 + 4
	if math.Abs(hp.Sum-wantSum) > 1e15 { // 1e30 dominates; allow fp slack
		t.Fatalf("Sum = %g, want %g", hp.Sum, wantSum)
	}
	if hp.Buckets[histBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", hp.Buckets[histBuckets-1])
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Inc()
	r.Counter("a_total").Inc()
	r.Counter("a_total", "x", "2").Inc()
	r.Counter("a_total", "x", "1").Inc()
	s := r.Snapshot()
	var keys []string
	for _, c := range s.Counters {
		keys = append(keys, c.Name+c.Labels)
	}
	want := []string{`a_total`, `a_total{x="1"}`, `a_total{x="2"}`, `z_total`}
	if len(keys) != len(want) {
		t.Fatalf("got %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("order %v, want %v", keys, want)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("cells_total", "uplink", "0").Add(10)
	r.Gauge("occupancy").Set(0.25)
	h := r.Histogram("fct_seconds")
	h.Observe(0.75)
	h.Observe(3)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE cells_total counter",
		`cells_total{uplink="0"} 10`,
		"# TYPE occupancy gauge",
		"occupancy 0.25",
		"# TYPE fct_seconds histogram",
		`fct_seconds_bucket{le="+Inf"} 2`,
		"fct_seconds_sum 3.75",
		"fct_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Cumulative le buckets must be non-decreasing.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "fct_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmtSscan(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
}

// fmtSscan pulls the trailing integer off a metric line.
func fmtSscan(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return 0, nil
	}
	var n int64
	_, err := parseInt(line[i+1:], &n)
	*v = n
	return 1, err
}

func parseInt(s string, out *int64) (int, error) {
	var n int64
	neg := false
	for i, c := range s {
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		if c < '0' || c > '9' {
			return 0, errBadInt
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	*out = n
	return 1, nil
}

var errBadInt = errString("bad int")

type errString string

func (e errString) Error() string { return string(e) }

func TestSnapshotMerge(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Counter("c_total").Add(3)
	rb.Counter("c_total").Add(4)
	rb.Counter("only_b_total").Add(1)
	ra.Histogram("h").Observe(1)
	rb.Histogram("h").Observe(2)
	rb.Gauge("g").Set(5)

	s := ra.Snapshot()
	s.Merge(rb.Snapshot())
	if got := s.Counter("c_total", ""); got != 7 {
		t.Fatalf("merged c_total = %d, want 7", got)
	}
	if got := s.Counter("only_b_total", ""); got != 1 {
		t.Fatalf("merged only_b_total = %d, want 1", got)
	}
	var h *HistogramPoint
	for i := range s.Histograms {
		if s.Histograms[i].Name == "h" {
			h = &s.Histograms[i]
		}
	}
	if h == nil || h.Count != 2 || h.Sum != 3 {
		t.Fatalf("merged histogram %+v", h)
	}
	found := false
	for _, g := range s.Gauges {
		if g.Name == "g" && g.Value == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("merged gauges %+v", s.Gauges)
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "with space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
	// Cross-kind collision must panic too.
	r.Counter("kinded")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-kind reuse did not panic")
			}
		}()
		r.Gauge("kinded")
	}()
}

func TestHealthTransitions(t *testing.T) {
	h := NewHealth(8)
	if !h.Healthy() {
		t.Fatal("fresh health not healthy")
	}
	h.SetCondition("node0/link", "reconnecting")
	if h.Healthy() {
		t.Fatal("healthy with a condition set")
	}
	h.SetCondition("node1/peer2", "suspected")
	h.ClearCondition("node0/link")
	if h.Healthy() {
		t.Fatal("healthy with one condition remaining")
	}
	h.ClearCondition("node1/peer2")
	if !h.Healthy() {
		t.Fatal("not healthy after all conditions cleared")
	}
	if !h.SawFlap() {
		t.Fatal("SawFlap false after degraded->healthy")
	}
	st := h.Status()
	if st.Status != "healthy" || len(st.Conditions) != 0 {
		t.Fatalf("status %+v", st)
	}
	// Exactly two transitions: one flip down, one flip up.
	if n := len(st.Transitions); n != 2 {
		t.Fatalf("%d transitions, want 2: %+v", n, st.Transitions)
	}
	if st.Transitions[0].Healthy || !st.Transitions[1].Healthy {
		t.Fatalf("transition order wrong: %+v", st.Transitions)
	}
}

func TestHealthHistoryBounded(t *testing.T) {
	h := NewHealth(4)
	for i := 0; i < 20; i++ {
		h.SetCondition("k", "x")
		h.ClearCondition("k")
	}
	if n := len(h.History()); n != 4 {
		t.Fatalf("history length %d, want 4", n)
	}
}

func TestNilSafety(t *testing.T) {
	var h *Health
	h.SetCondition("a", "b")
	h.ClearCondition("a")
	if !h.Healthy() || h.SawFlap() || h.History() != nil {
		t.Fatal("nil Health misbehaved")
	}
	if h.Status().Status != "healthy" {
		t.Fatal("nil Health status")
	}
	var tr *Tracer
	tr.Complete("x", "c", 0, time.Now(), 0, nil)
	tr.Instant("y", "c", 0, nil)
	tr.Span("z", "c", 0, time.Now(), nil)
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil Tracer misbehaved")
	}
}
