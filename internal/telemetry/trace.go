package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// TraceEvent is one Chrome trace_event record. The subset emitted here
// (ph "X" complete spans and ph "i" instants) renders directly in
// chrome://tracing and Perfetto.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`            // microseconds since trace start
	Dur  int64             `json:"dur,omitempty"` // microseconds, ph=="X" only
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
	S    string            `json:"s,omitempty"` // instant scope, ph=="i"
}

// traceFile is the top-level Chrome trace JSON object.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	Dropped         int64        `json:"dropped,omitempty"`
}

// Tracer records trace events into a fixed-capacity ring buffer,
// dropping the oldest events when full so a long run keeps the most
// recent window. All methods are nil-safe: a nil *Tracer is a no-op,
// so instrumented code never branches on "is tracing enabled".
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	buf     []TraceEvent
	head    int // next write position
	n       int // events currently buffered (<= cap)
	dropped int64
}

// NewTracer returns a tracer buffering at most capacity events
// (drop-oldest past that). Capacity <= 0 defaults to 64k events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Tracer{start: time.Now(), buf: make([]TraceEvent, capacity)}
}

// Start returns the tracer's epoch: the wall time corresponding to
// ts == 0.
func (t *Tracer) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

func (t *Tracer) push(ev TraceEvent) {
	t.mu.Lock()
	t.buf[t.head] = ev
	t.head = (t.head + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Complete records a ph="X" span covering [begin, begin+dur).
// args may be nil.
func (t *Tracer) Complete(name, cat string, tid int, begin time.Time, dur time.Duration, args map[string]string) {
	if t == nil {
		return
	}
	ts := begin.Sub(t.start).Microseconds()
	us := dur.Microseconds()
	if us < 1 {
		us = 1 // chrome://tracing hides zero-width spans
	}
	t.push(TraceEvent{Name: name, Cat: cat, Ph: "X", TS: ts, Dur: us, TID: tid, Args: args})
}

// Span records a ph="X" span from begin to now. Returns the duration
// for convenience.
func (t *Tracer) Span(name, cat string, tid int, begin time.Time, args map[string]string) time.Duration {
	if t == nil {
		return 0
	}
	d := time.Since(begin)
	t.Complete(name, cat, tid, begin, d, args)
	return d
}

// Instant records a ph="i" instant event at now, thread scope.
func (t *Tracer) Instant(name, cat string, tid int, args map[string]string) {
	if t == nil {
		return
	}
	ts := time.Since(t.start).Microseconds()
	t.push(TraceEvent{Name: name, Cat: cat, Ph: "i", TS: ts, TID: tid, Args: args, S: "t"})
}

// Dropped reports how many events were evicted by the ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the buffered events oldest-first.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, t.n)
	if t.n < len(t.buf) {
		out = append(out, t.buf[:t.n]...)
	} else {
		out = append(out, t.buf[t.head:]...)
		out = append(out, t.buf[:t.head]...)
	}
	return out
}

// WriteJSON writes the buffered events as a Chrome trace JSON object
// ({"traceEvents": [...], "displayTimeUnit": "ms"}).
func (t *Tracer) WriteJSON(w io.Writer) error {
	tf := traceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms", Dropped: t.Dropped()}
	if tf.TraceEvents == nil {
		tf.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// ValidateTrace checks that data is well-formed Chrome trace-event
// JSON of the subset this package emits: a top-level traceEvents
// array whose events all carry a name, a known phase ("X" or "i"),
// non-negative ts, and — for complete spans — a positive dur. Used by
// schema tests here and in cmd/siriussim.
func ValidateTrace(data []byte) error {
	var tf struct {
		TraceEvents     *[]TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		Dropped         int64         `json:"dropped"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields() // catches schema drift in traceFile
	if err := dec.Decode(&tf); err != nil {
		return fmt.Errorf("trace JSON: %w", err)
	}
	if tf.TraceEvents == nil {
		return errors.New("trace JSON: missing traceEvents array")
	}
	for i, ev := range *tf.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("event %d: empty name", i)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur <= 0 {
				return fmt.Errorf("event %d (%s): complete span with dur %d", i, ev.Name, ev.Dur)
			}
		case "i":
			// ok
		default:
			return fmt.Errorf("event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.TS < 0 {
			return fmt.Errorf("event %d (%s): negative ts %d", i, ev.Name, ev.TS)
		}
	}
	return nil
}

// WriteJSONFile writes the trace to path (atomic: temp file + rename).
func (t *Tracer) WriteJSONFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
