package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server is the live telemetry HTTP plane: /metrics (Prometheus text
// exposition of a Registry snapshot), /healthz (200 healthy / 503
// degraded, JSON body with conditions and transition history) and
// /debug/vars (expvar).
type Server struct {
	reg    *Registry
	health *Health
	ln     net.Listener
	srv    *http.Server
}

// NewServer starts serving on addr (e.g. ":9090" or "127.0.0.1:0").
// A nil reg falls back to Default; a nil health serves always-healthy.
// The server runs until Close.
func NewServer(addr string, reg *Registry, health *Health) (*Server, error) {
	if reg == nil {
		reg = Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, health: health, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "sirius telemetry\n\n/metrics\n/healthz\n/debug/vars\n")
	})
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.reg.Snapshot()
	_ = snap.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.health.Status()
	w.Header().Set("Content-Type", "application/json")
	if st.Status != "healthy" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}
