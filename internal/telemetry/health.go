package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Health tracks fabric health as a set of named degraded conditions:
// the system is healthy iff no condition is set. Components set a
// condition when they enter a degraded state (link down, peer
// suspected, port failed) and clear it on recovery, so /healthz flips
// healthy -> degraded -> healthy across a fault-and-reconnect cycle.
// A bounded transition history records every flip for post-hoc
// inspection and tests.
//
// All methods are nil-safe no-ops on a nil *Health, so instrumented
// code never branches on "is health tracking enabled".
type Health struct {
	mu         sync.Mutex
	conditions map[string]string // key -> human reason
	history    []Transition
	maxHistory int
}

// Transition is one healthy/degraded flip in the history.
type Transition struct {
	At       time.Time `json:"at"`
	Healthy  bool      `json:"healthy"`
	Key      string    `json:"key"`    // condition that caused the flip
	Reason   string    `json:"reason"` // its reason ("" on clear)
	Degraded int       `json:"degraded_conditions"`
}

// NewHealth returns a Health tracker keeping at most maxHistory
// transitions (<= 0 defaults to 256).
func NewHealth(maxHistory int) *Health {
	if maxHistory <= 0 {
		maxHistory = 256
	}
	return &Health{conditions: make(map[string]string), maxHistory: maxHistory}
}

func (h *Health) record(healthy bool, key, reason string) {
	t := Transition{At: time.Now(), Healthy: healthy, Key: key, Reason: reason, Degraded: len(h.conditions)}
	if len(h.history) >= h.maxHistory {
		copy(h.history, h.history[1:])
		h.history[len(h.history)-1] = t
	} else {
		h.history = append(h.history, t)
	}
}

// SetCondition marks condition key degraded with a human-readable
// reason. Setting an already-set key updates the reason without
// recording a transition.
func (h *Health) SetCondition(key, reason string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	_, existed := h.conditions[key]
	wasHealthy := len(h.conditions) == 0
	h.conditions[key] = reason
	if !existed && wasHealthy {
		h.record(false, key, reason)
	}
}

// ClearCondition clears condition key. Clearing the last condition
// records a transition back to healthy.
func (h *Health) ClearCondition(key string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.conditions[key]; !ok {
		return
	}
	delete(h.conditions, key)
	if len(h.conditions) == 0 {
		h.record(true, key, "")
	}
}

// Healthy reports whether no degraded condition is set.
func (h *Health) Healthy() bool {
	if h == nil {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.conditions) == 0
}

// Condition is one currently-set degraded condition.
type Condition struct {
	Key    string `json:"key"`
	Reason string `json:"reason"`
}

// Status is the serializable health state served by /healthz.
type Status struct {
	Status      string       `json:"status"` // "healthy" | "degraded"
	Conditions  []Condition  `json:"conditions,omitempty"`
	Transitions []Transition `json:"transitions,omitempty"`
}

// Status returns the current status with conditions sorted by key and
// the transition history oldest-first.
func (h *Health) Status() Status {
	if h == nil {
		return Status{Status: "healthy"}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Status{Status: "healthy"}
	if len(h.conditions) > 0 {
		st.Status = "degraded"
		for k, v := range h.conditions {
			st.Conditions = append(st.Conditions, Condition{k, v})
		}
		sort.Slice(st.Conditions, func(i, j int) bool { return st.Conditions[i].Key < st.Conditions[j].Key })
	}
	st.Transitions = append(st.Transitions, h.history...)
	return st
}

// History returns the transition history oldest-first.
func (h *Health) History() []Transition {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Transition(nil), h.history...)
}

// SawFlap reports whether the history contains, in order, a flip to
// degraded followed by a flip back to healthy — the signature of a
// fault that was detected and then recovered from.
func (h *Health) SawFlap() bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sawDegraded := false
	for _, t := range h.history {
		if !t.Healthy {
			sawDegraded = true
		} else if sawDegraded {
			return true
		}
	}
	return false
}
