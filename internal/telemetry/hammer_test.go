package telemetry

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHammerCountersAndSnapshots runs GOMAXPROCS writer goroutines
// against concurrent snapshot readers. Under -race this is the data
// race oracle; the final sum check is the correctness oracle (no lost
// updates).
func TestHammerCountersAndSnapshots(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total")
	g := r.Gauge("hammer_gauge")
	h := r.Histogram("hammer_hist")

	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	const perWriter = 20000

	var stop atomic.Bool
	var snaps sync.WaitGroup
	for i := 0; i < 2; i++ {
		snaps.Add(1)
		go func() {
			defer snaps.Done()
			for !stop.Load() {
				s := r.Snapshot()
				// Monotone sanity: a snapshot may lag concurrent
				// writes but can never exceed the final total.
				if v := s.Counter("hammer_total", ""); v < 0 || v > int64(writers*perWriter) {
					t.Errorf("snapshot counter out of range: %d", v)
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := c.Shard()
			hs := h.Shard()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				sh.Inc()
				hs.Observe(rng.Float64() * 4)
				g.Set(float64(i))
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	snaps.Wait()

	want := int64(writers * perWriter)
	if got := c.Value(); got != want {
		t.Fatalf("lost updates: counter = %d, want %d", got, want)
	}
	s := r.Snapshot()
	var hp *HistogramPoint
	for i := range s.Histograms {
		if s.Histograms[i].Name == "hammer_hist" {
			hp = &s.Histograms[i]
		}
	}
	if hp == nil || hp.Count != want {
		t.Fatalf("histogram count = %+v, want %d", hp, want)
	}
}

// TestMergeEqualsSerialReference is the property test: splitting a
// deterministic op stream across W per-worker registries and merging
// their snapshots must equal applying the same stream to a single
// registry serially — for counters, histogram buckets, counts and sums.
func TestMergeEqualsSerialReference(t *testing.T) {
	const ops = 50000
	const workers = 7
	rng := rand.New(rand.NewSource(99))

	serial := NewRegistry()
	parts := make([]*Registry, workers)
	for i := range parts {
		parts[i] = NewRegistry()
	}
	get := func(r *Registry, kind, which int) {
		switch kind {
		case 0:
			r.Counter("p_total", "k", string(rune('a'+which))).Add(int64(which + 1))
		case 1:
			r.Histogram("p_hist").Observe(float64(int(1) << (which * 3))) // exact powers: fp-sum exact
		default:
			r.Histogram("p_hist", "k", string(rune('a'+which))).Observe(float64(which))
		}
	}
	for i := 0; i < ops; i++ {
		kind := rng.Intn(3)
		which := rng.Intn(5)
		w := rng.Intn(workers)
		get(serial, kind, which)
		get(parts[w], kind, which)
	}

	merged := parts[0].Snapshot()
	for _, p := range parts[1:] {
		merged.Merge(p.Snapshot())
	}
	ref := serial.Snapshot()

	if len(merged.Counters) != len(ref.Counters) {
		t.Fatalf("counter series: merged %d, serial %d", len(merged.Counters), len(ref.Counters))
	}
	for i := range ref.Counters {
		a, b := merged.Counters[i], ref.Counters[i]
		if a.Name != b.Name || a.Labels != b.Labels || a.Value != b.Value {
			t.Fatalf("counter %d: merged %+v, serial %+v", i, a, b)
		}
	}
	if len(merged.Histograms) != len(ref.Histograms) {
		t.Fatalf("histogram series: merged %d, serial %d", len(merged.Histograms), len(ref.Histograms))
	}
	for i := range ref.Histograms {
		a, b := merged.Histograms[i], ref.Histograms[i]
		if a.Name != b.Name || a.Labels != b.Labels || a.Count != b.Count {
			t.Fatalf("histogram %d: merged %+v, serial %+v", i, a, b)
		}
		for bkt := range b.Buckets {
			if a.Buckets[bkt] != b.Buckets[bkt] {
				t.Fatalf("histogram %s bucket %d: merged %d, serial %d", a.Name, bkt, a.Buckets[bkt], b.Buckets[bkt])
			}
		}
		if a.Sum != b.Sum { // exact: all observed values are small integers / powers of two
			t.Fatalf("histogram %s sum: merged %g, serial %g", a.Name, a.Sum, b.Sum)
		}
	}
}

// TestHealthHammer races condition setters/clearers against Status
// readers; -race is the oracle.
func TestHealthHammer(t *testing.T) {
	h := NewHealth(64)
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			key := string(rune('a' + w))
			for i := 0; i < 5000; i++ {
				h.SetCondition(key, "busy")
				_ = h.Healthy()
				h.ClearCondition(key)
			}
		}(w)
	}
	var stop atomic.Bool
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for !stop.Load() {
			_ = h.Status()
			_ = h.SawFlap()
		}
	}()
	writers.Wait()
	stop.Store(true)
	reader.Wait()
	if !h.Healthy() {
		t.Fatal("conditions left set after hammer")
	}
}
