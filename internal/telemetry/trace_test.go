package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// checkTraceJSON decodes Chrome trace-event JSON and validates the
// schema subset we emit: top-level traceEvents array; every event has
// a name, a known phase, non-negative ts, and ph=="X" events carry a
// positive dur. Shared with the cmd/siriussim schema test via the
// exported ValidateTrace.
func TestTraceEventSchema(t *testing.T) {
	tr := NewTracer(16)
	begin := time.Now()
	time.Sleep(time.Millisecond)
	tr.Complete("epoch", "core", 1, begin, 2*time.Millisecond, map[string]string{"n": "64"})
	tr.Instant("kill", "fault", 2, nil)
	tr.Span("point", "sweep", 3, begin, nil)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("schema: %v\n%s", err, buf.String())
	}
	var tf struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	if len(tf.TraceEvents) != 3 {
		t.Fatalf("%d events, want 3", len(tf.TraceEvents))
	}
	if tf.TraceEvents[0].Args["n"] != "64" {
		t.Fatalf("args lost: %+v", tf.TraceEvents[0])
	}
}

func TestTracerDropOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Instant("ev", "t", i, nil)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("%d buffered, want 4", len(evs))
	}
	// Oldest-first: surviving events are tids 6..9.
	for i, ev := range evs {
		if ev.TID != 6+i {
			t.Fatalf("event %d has tid %d, want %d (drop-oldest order)", i, ev.TID, 6+i)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerEmptyIsValid(t *testing.T) {
	tr := NewTracer(4)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}
