package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"time"
)

// CounterPoint is one counter series in a snapshot.
type CounterPoint struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// GaugePoint is one gauge series in a snapshot.
type GaugePoint struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramPoint is one histogram series in a snapshot: cumulative
// counts are derived at export time; Buckets here are per-bucket
// (non-cumulative) counts indexed as in bucketIndex.
type HistogramPoint struct {
	Name    string  `json:"name"`
	Labels  string  `json:"labels,omitempty"`
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry, cheap to take
// (one pass summing shards) and safe to read concurrently with
// ongoing writes. Series are sorted by name then labels, so encoding
// a snapshot is deterministic.
type Snapshot struct {
	TakenAt    time.Time        `json:"taken_at"`
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Snapshot sums every series' shards into a Snapshot. Point-in-time:
// writes racing the snapshot land in either this snapshot or the next.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	ctrs := make([]*Counter, 0, len(r.ctrs))
	for _, c := range r.ctrs {
		ctrs = append(ctrs, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	s := &Snapshot{TakenAt: time.Now()}
	for _, c := range ctrs {
		s.Counters = append(s.Counters, CounterPoint{c.name, c.labels, c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugePoint{g.name, g.labels, g.Value()})
	}
	for _, h := range hists {
		hp := HistogramPoint{Name: h.name, Labels: h.labels, Buckets: make([]int64, histBuckets)}
		for si := range h.shards {
			sh := &h.shards[si]
			for b := 0; b < histBuckets; b++ {
				hp.Buckets[b] += sh.buckets[b].Load()
			}
			hp.Sum += math.Float64frombits(sh.sumBits.Load())
		}
		for _, n := range hp.Buckets {
			hp.Count += n
		}
		s.Histograms = append(s.Histograms, hp)
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		a, b := s.Counters[i], s.Counters[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		a, b := s.Gauges[i], s.Gauges[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		a, b := s.Histograms[i], s.Histograms[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	return s
}

// Merge folds other into s: matching series (same name+labels) sum
// their values/buckets; series only in other are appended. The result
// stays sorted. Merging N per-worker snapshots equals one snapshot of
// a registry all workers wrote to (pinned by a property test).
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	ci := make(map[string]int, len(s.Counters))
	for i, c := range s.Counters {
		ci[c.Name+c.Labels] = i
	}
	for _, c := range other.Counters {
		if i, ok := ci[c.Name+c.Labels]; ok {
			s.Counters[i].Value += c.Value
		} else {
			s.Counters = append(s.Counters, c)
		}
	}
	gi := make(map[string]int, len(s.Gauges))
	for i, g := range s.Gauges {
		gi[g.Name+g.Labels] = i
	}
	for _, g := range other.Gauges {
		if i, ok := gi[g.Name+g.Labels]; ok {
			// Gauges are last-writer-wins on merge: other is assumed
			// newer. (Summing gauges is rarely meaningful.)
			s.Gauges[i].Value = g.Value
		} else {
			s.Gauges = append(s.Gauges, g)
		}
	}
	hi := make(map[string]int, len(s.Histograms))
	for i, h := range s.Histograms {
		hi[h.Name+h.Labels] = i
	}
	for _, h := range other.Histograms {
		if i, ok := hi[h.Name+h.Labels]; ok {
			dst := &s.Histograms[i]
			for b := range dst.Buckets {
				if b < len(h.Buckets) {
					dst.Buckets[b] += h.Buckets[b]
				}
			}
			dst.Count += h.Count
			dst.Sum += h.Sum
		} else {
			hc := h
			hc.Buckets = append([]int64(nil), h.Buckets...)
			s.Histograms = append(s.Histograms, hc)
		}
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		a, b := s.Counters[i], s.Counters[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		a, b := s.Gauges[i], s.Gauges[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		a, b := s.Histograms[i], s.Histograms[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format (version 0.0.4): `# TYPE` lines, histogram `_bucket{le=...}`
// series with cumulative counts, `_sum` and `_count`.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var lastType string
	typeLine := func(name, kind string) error {
		if name == lastType {
			return nil
		}
		lastType = name
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		return err
	}
	for _, c := range s.Counters {
		if err := typeLine(c.Name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", c.Name, c.Labels, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := typeLine(g.Name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", g.Name, g.Labels, formatFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := typeLine(h.Name, "histogram"); err != nil {
			return err
		}
		var cum int64
		for b, n := range h.Buckets {
			cum += n
			le := formatLe(BucketBound(b))
			lbl := h.Labels
			if lbl == "" {
				lbl = fmt.Sprintf(`{le="%s"}`, le)
			} else {
				lbl = lbl[:len(lbl)-1] + fmt.Sprintf(`,le="%s"}`, le)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, lbl, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.Name, h.Labels, formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", h.Name, h.Labels, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v != v:
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSONFile writes the snapshot as JSON to path (atomic: temp file
// + rename).
func (s *Snapshot) WriteJSONFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Counter returns the value of the named counter series ("" labels
// means the rendered label string must match exactly), or 0.
func (s *Snapshot) Counter(name, labels string) int64 {
	for _, c := range s.Counters {
		if c.Name == name && c.Labels == labels {
			return c.Value
		}
	}
	return 0
}

// CounterTotal sums all series of the named counter across label sets.
func (s *Snapshot) CounterTotal(name string) int64 {
	var t int64
	for _, c := range s.Counters {
		if c.Name == name {
			t += c.Value
		}
	}
	return t
}
