// Package telemetry is the runtime observability plane: a registry of
// lock-free counters, gauges and log-bucketed histograms with cheap
// point-in-time snapshots, exporters (Prometheus text exposition, JSON
// snapshots, Chrome trace_event timelines), a health tracker with a
// bounded transition history, and an HTTP server exposing /metrics,
// /healthz and /debug/vars.
//
// Unlike internal/metrics — which computes *result* statistics (FCT
// percentiles, CDFs) after a run — this package answers "what is the
// system doing right now": how many cells the slot loop moved, how many
// frames each AWGR port routed, whether the live fabric is degraded.
//
// # Zero-alloc discipline
//
// Instrumentation sits inside the core slot loop and the fluid event
// loop, both of which carry AllocsPerRun == 0 contracts. Every hot-path
// operation here — Shard.Add, Gauge.Set, Histogram.Observe and the
// HistShard variants — is a plain atomic op on pre-allocated memory:
// no maps, no interfaces, no boxing. Series creation (GetOrCreate*)
// allocates and takes a mutex, so callers resolve series once at setup
// time and keep the returned handle.
//
// # Sharding
//
// A Counter is a small array of cache-line-padded atomic shards.
// Counter.Add folds into shard 0 (fine for uncontended call sites);
// goroutine-heavy writers call Counter.Shard() once to receive a
// round-robin *Shard handle and increment that without contention.
// Snapshots sum the shards; Snapshot.Merge sums matching series across
// snapshots, and a property test pins merge == serial reference.
package telemetry

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// shardCount is the number of independent cache lines each sharded
// series spreads its writers over. Power of two so Shard() can mask.
var shardCount = func() int {
	n := runtime.GOMAXPROCS(0)
	p := 1
	for p < n && p < 64 {
		p <<= 1
	}
	return p
}()

// Shard is one cache-line-padded cell of a sharded Counter. Writers
// that obtained a Shard via Counter.Shard call Add on it directly:
// a single uncontended atomic add, zero allocations.
type Shard struct {
	v atomic.Int64
	_ [56]byte // pad to a typical cache line; avoid false sharing
}

// Add increments the shard by n.
func (s *Shard) Add(n int64) { s.v.Add(n) }

// Inc increments the shard by one.
func (s *Shard) Inc() { s.v.Add(1) }

// Counter is a monotonically increasing sharded counter.
type Counter struct {
	name   string
	labels string // canonical rendered label set, "" if none
	shards []Shard
	next   atomic.Uint32 // round-robin shard assignment
}

// Add increments the counter by n using shard 0. Fine for call sites
// without goroutine contention; hot concurrent writers should hold a
// Shard handle instead.
func (c *Counter) Add(n int64) { c.shards[0].v.Add(n) }

// Inc increments the counter by one (shard 0).
func (c *Counter) Inc() { c.shards[0].v.Add(1) }

// Shard hands out a per-caller shard handle, assigned round-robin.
// Call once per goroutine at setup; the returned handle is valid for
// the life of the process.
func (c *Counter) Shard() *Shard {
	i := c.next.Add(1) - 1
	return &c.shards[int(i)%len(c.shards)]
}

// Value sums the shards. A point-in-time read; concurrent adds may or
// may not be included.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Name returns the series name (without labels).
func (c *Counter) Name() string { return c.name }

// Gauge is a float64 gauge: a value that can go up and down.
type Gauge struct {
	name   string
	labels string
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds d to the gauge (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket layout: log base-2 buckets spanning [2^histMinExp,
// 2^histMaxExp), plus an underflow bucket (index 0) for values below
// 2^histMinExp (including zero and negatives) and an overflow (+Inf)
// bucket for everything at or above 2^histMaxExp, NaN included.
//
// With histMinExp = -20 (~1e-6) and histMaxExp = 63 (~9.2e18) the
// layout covers sub-microsecond spans through int64 nanosecond ranges
// at ~2x resolution in 85 buckets.
const (
	histMinExp = -20
	histMaxExp = 63
	// histBuckets = underflow + one bucket per exponent + overflow.
	histBuckets = 1 + (histMaxExp - histMinExp) + 1
)

// histShardData is one shard of a histogram: bucket counts plus the
// running sum (float64 bits, CAS-updated).
type histShardData struct {
	buckets [histBuckets]atomic.Int64
	sumBits atomic.Uint64
	_       [48]byte
}

// HistShard is a per-caller histogram shard handle, analogous to Shard.
type HistShard struct{ d *histShardData }

// Observe records v into this shard: one atomic add on the bucket and
// a CAS on the sum. Zero allocations.
func (h HistShard) Observe(v float64) {
	h.d.buckets[bucketIndex(v)].Add(1)
	addFloat(&h.d.sumBits, v)
}

// Histogram is a sharded log-base-2 histogram.
type Histogram struct {
	name   string
	labels string
	shards []histShardData
	next   atomic.Uint32
}

// bucketIndex maps a value to its bucket. Values land in the bucket
// whose half-open range [2^(e-1), 2^e) contains them, indexed so that
// bucket i (1 <= i <= histMaxExp-histMinExp) has upper bound
// 2^(histMinExp+i). Exact powers of two land in the bucket whose upper
// bound is the next power (Frexp(2^k) = (0.5, k+1)).
func bucketIndex(v float64) int {
	if v != v || v >= math.MaxFloat64 { // NaN or huge -> overflow
		return histBuckets - 1
	}
	_, exp := math.Frexp(v) // v = f * 2^exp, f in [0.5, 1)
	// v < 2^exp and v >= 2^(exp-1): upper bound is 2^exp.
	i := exp - histMinExp
	if i < 1 || v <= 0 {
		return 0 // underflow bucket (also zero, negatives, subnormals)
	}
	if i >= histBuckets-1 {
		return histBuckets - 1
	}
	return i
}

// addFloat CAS-adds v into the float64 bit pattern at bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Observe records v into shard 0.
func (h *Histogram) Observe(v float64) {
	h.shards[0].buckets[bucketIndex(v)].Add(1)
	addFloat(&h.shards[0].sumBits, v)
}

// Shard hands out a per-caller shard handle, round-robin.
func (h *Histogram) Shard() HistShard {
	i := h.next.Add(1) - 1
	return HistShard{&h.shards[int(i)%len(h.shards)]}
}

// BucketBound returns the inclusive upper bound of bucket i as used in
// Prometheus `le` labels: 2^histMinExp for the underflow bucket,
// +Inf for the last.
func BucketBound(i int) float64 {
	switch {
	case i <= 0:
		return math.Ldexp(1, histMinExp)
	case i >= histBuckets-1:
		return math.Inf(1)
	default:
		return math.Ldexp(1, histMinExp+i)
	}
}

// NumBuckets is the number of histogram buckets including underflow
// and +Inf overflow.
func NumBuckets() int { return histBuckets }

// Registry holds named series. GetOrCreate* are mutex-guarded and may
// allocate; all returned handles are lock-free afterwards.
type Registry struct {
	mu     sync.Mutex
	names  map[string]seriesKind // name -> kind, for cross-kind collision checks
	ctrs   map[string]*Counter   // key = name + rendered labels
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

type seriesKind uint8

const (
	kindCounter seriesKind = iota + 1
	kindGauge
	kindHistogram
)

// Default is the process-wide registry used by package-level
// instrumentation in core, fluid, dc and wire.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		names:  make(map[string]seriesKind),
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// renderLabels canonicalizes a k1,v1,k2,v2,... list into a sorted
// `{k1="v1",k2="v2"}` string. Panics on odd-length lists or invalid
// label names: series are created at setup time, so misuse is a
// programming error, not a runtime condition.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: odd label list")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validName(labels[i]) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// validName reports whether s is a valid Prometheus metric/label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) checkName(name string, kind seriesKind) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if k, ok := r.names[name]; ok && k != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered with two kinds", name))
	}
	r.names[name] = kind
}

// Counter returns the counter with the given name and label pairs
// (k1, v1, k2, v2, ...), creating it if needed.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	ls := renderLabels(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.ctrs[key]; ok {
		return c
	}
	r.checkName(name, kindCounter)
	c := &Counter{name: name, labels: ls, shards: make([]Shard, shardCount)}
	r.ctrs[key] = c
	return c
}

// Gauge returns the gauge with the given name and label pairs,
// creating it if needed.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	ls := renderLabels(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	r.checkName(name, kindGauge)
	g := &Gauge{name: name, labels: ls}
	r.gauges[key] = g
	return g
}

// Histogram returns the histogram with the given name and label pairs,
// creating it if needed.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	ls := renderLabels(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h
	}
	r.checkName(name, kindHistogram)
	h := &Histogram{name: name, labels: ls, shards: make([]histShardData, shardCount)}
	r.hists[key] = h
	return h
}
