//go:build !race

package telemetry

import "testing"

// The hot-path telemetry operations sit inside the core slot loop and
// the fluid event loop, both of which carry AllocsPerRun == 0
// contracts (internal/core/alloc_test.go, fluid.TestEventLoopZeroAlloc).
// This pins the telemetry side of that bargain: counter increments,
// sharded increments, gauge sets and histogram observes must never
// allocate. (Build-tagged !race because race instrumentation changes
// allocation behavior, same as the other contracts.)
func TestTelemetryZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("za_total", "uplink", "0")
	sh := c.Shard()
	g := r.Gauge("za_gauge")
	h := r.Histogram("za_hist")
	hs := h.Shard()

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(3) }},
		{"Counter.Inc", func() { c.Inc() }},
		{"Shard.Add", func() { sh.Add(3) }},
		{"Shard.Inc", func() { sh.Inc() }},
		{"Gauge.Set", func() { g.Set(1.25) }},
		{"Gauge.Add", func() { g.Add(0.5) }},
		{"Histogram.Observe", func() { h.Observe(2.5) }},
		{"HistShard.Observe", func() { hs.Observe(1e-3) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(300, tc.fn); n != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", tc.name, n)
		}
	}
}
