package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestHTTPServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_cells_total").Add(5)
	h := NewHealth(16)
	srv, err := NewServer("127.0.0.1:0", r, h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}

	// /metrics serves Prometheus text.
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "http_cells_total 5") {
		t.Fatalf("/metrics missing series:\n%s", body)
	}

	// /healthz: 200 while healthy, 503 while degraded, 200 again.
	code, body = get("/healthz")
	if code != 200 || !strings.Contains(body, `"healthy"`) {
		t.Fatalf("healthy /healthz: %d %s", code, body)
	}
	h.SetCondition("node0/link", "reconnecting")
	code, body = get("/healthz")
	if code != 503 || !strings.Contains(body, `"degraded"`) || !strings.Contains(body, "node0/link") {
		t.Fatalf("degraded /healthz: %d %s", code, body)
	}
	h.ClearCondition("node0/link")
	code, body = get("/healthz")
	if code != 200 {
		t.Fatalf("recovered /healthz: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if len(st.Transitions) != 2 {
		t.Fatalf("healthz transitions %+v", st.Transitions)
	}

	// /debug/vars is live expvar JSON.
	code, body = get("/debug/vars")
	if code != 200 || !strings.Contains(body, "cmdline") {
		t.Fatalf("/debug/vars: %d", code)
	}

	// Unknown paths 404.
	code, _ = get("/nope")
	if code != 404 {
		t.Fatalf("/nope status %d", code)
	}
}
