package phy

import (
	"bytes"
	"testing"
	"testing/quick"

	"sirius/internal/simtime"
)

func TestGuardbandBudgets(t *testing.T) {
	v1 := SiriusV1Budget()
	// §6: Sirius v1 uses a 100 ns guardband for the 92 ns laser plus
	// preamble.
	if got := v1.Total(); got != 100*simtime.Nanosecond {
		t.Errorf("v1 guardband = %v, want 100ns", got)
	}
	v2 := SiriusV2Budget()
	// §6: Sirius v2 achieves 3.84 ns end-to-end reconfiguration.
	if got := v2.Total(); got != 3840*simtime.Picosecond {
		t.Errorf("v2 guardband = %v, want 3.84ns", got)
	}
	// Both meet the paper's 10 ns target only for v2.
	if v2.Total() >= 10*simtime.Nanosecond {
		t.Error("v2 should beat the 10ns target")
	}
	if v1.Total() < 10*simtime.Nanosecond {
		t.Error("v1 should not meet the 10ns target")
	}
}

func TestDefaultSlot(t *testing.T) {
	s := DefaultSlot()
	// 562 B at 50 Gb/s ≈ 89.92 ns data; +10 ns guard ≈ 100 ns slot.
	if d := s.DataTime(); d < 89*simtime.Nanosecond || d > 91*simtime.Nanosecond {
		t.Errorf("data time = %v, want ~90ns", d)
	}
	if d := s.Duration(); d < 99*simtime.Nanosecond || d > 101*simtime.Nanosecond {
		t.Errorf("slot = %v, want ~100ns", d)
	}
	if o := s.Overhead(); o < 0.09 || o > 0.11 {
		t.Errorf("overhead = %v, want ~0.10", o)
	}
}

func TestSlotForGuardband(t *testing.T) {
	// Fig. 11 methodology: guardband always 10% of the slot.
	for _, g := range []simtime.Duration{
		1 * simtime.Nanosecond, 5 * simtime.Nanosecond, 10 * simtime.Nanosecond,
		20 * simtime.Nanosecond, 40 * simtime.Nanosecond,
	} {
		s := SlotForGuardband(50*simtime.Gbps, g, 0.10)
		if o := s.Overhead(); o < 0.08 || o > 0.12 {
			t.Errorf("guard %v: overhead = %v, want ~0.10", g, o)
		}
		if s.Guardband != g {
			t.Errorf("guard %v: got %v", g, s.Guardband)
		}
	}
	// 10 ns at 10% reproduces the default 562-byte cell.
	s := SlotForGuardband(50*simtime.Gbps, 10*simtime.Nanosecond, 0.10)
	if s.CellBytes < 555 || s.CellBytes > 565 {
		t.Errorf("cell = %dB, want ~562", s.CellBytes)
	}
}

func TestSlotForGuardbandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad fraction did not panic")
		}
	}()
	SlotForGuardband(50*simtime.Gbps, simtime.Nanosecond, 1.5)
}

func TestMaxGuardbandForOverhead(t *testing.T) {
	// §2.2: 576 B packets at 50 Gb/s with <10% switching overhead need a
	// guardband under ~10.24 ns (the paper quotes the 92 ns data time and
	// a 9.2 ns bound using guard/data rather than guard/total; both land
	// at the same ~10 ns design target).
	g := MaxGuardbandForOverhead(50*simtime.Gbps, 576, 0.10)
	if g < 9*simtime.Nanosecond || g > 11*simtime.Nanosecond {
		t.Errorf("max guardband = %v, want ~10ns", g)
	}
}

func TestCDRPhaseCaching(t *testing.T) {
	c := NewCDR()
	// First contact: cold lock (microseconds).
	if got := c.LockTime(7, 0); got != c.ColdLock {
		t.Errorf("first lock = %v, want cold %v", got, c.ColdLock)
	}
	// Reconnection one epoch (1.6 us) later: cached, sub-ns.
	now := simtime.Time(0).Add(1600 * simtime.Nanosecond)
	if got := c.LockTime(7, now); got != c.CachedLock {
		t.Errorf("epoch relock = %v, want cached %v", got, c.CachedLock)
	}
	if c.CachedLock >= simtime.Nanosecond {
		t.Error("cached lock should be sub-nanosecond")
	}
}

func TestCDRStaleness(t *testing.T) {
	c := NewCDR()
	c.LockTime(3, 0)
	stale := simtime.Time(0).Add(c.StaleAfter + simtime.Nanosecond)
	if got := c.LockTime(3, stale); got != c.ColdLock {
		t.Errorf("stale relock = %v, want cold", got)
	}
	if c.Cached(99, 0) {
		t.Error("unknown source reported cached")
	}
}

func TestPRBSProperties(t *testing.T) {
	p := NewPRBS(0xBEEF)
	// Roughly balanced ones/zeros.
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		ones += int(p.NextBit())
	}
	if ones < n*45/100 || ones > n*55/100 {
		t.Errorf("ones = %d/%d, want ~50%%", ones, n)
	}
}

func TestPRBSZeroSeed(t *testing.T) {
	p := NewPRBS(0)
	// Must not get stuck at zero.
	sum := uint32(0)
	for i := 0; i < 1000; i++ {
		sum += p.NextBit()
	}
	if sum == 0 {
		t.Error("zero-seed PRBS produced all zeros")
	}
}

func TestPRBSErrorCounting(t *testing.T) {
	tx := NewPRBS(1)
	rx := NewPRBS(1)
	buf := make([]byte, 256)
	tx.Fill(buf)
	if errs := rx.CountErrors(buf); errs != 0 {
		t.Errorf("clean channel shows %d errors", errs)
	}
	// Flip 3 bits.
	tx2 := NewPRBS(1)
	rx2 := NewPRBS(1)
	buf2 := make([]byte, 256)
	tx2.Fill(buf2)
	buf2[0] ^= 0x01
	buf2[100] ^= 0x80
	buf2[200] ^= 0x10
	if errs := rx2.CountErrors(buf2); errs != 3 {
		t.Errorf("3 flipped bits counted as %d", errs)
	}
}

func TestPRBSFillMatchesBitwise(t *testing.T) {
	// Fill/CountErrors use the 8-steps-at-once LFSR fast path; pin it
	// bit-identical to the reference NextBit recurrence across seeds
	// (including the degenerate all-zero / all-one states) and lengths.
	seeds := []uint32{0, 1, 0xBEEF, 0x7fffffff, 0x40000000, 0x12345678}
	for _, seed := range seeds {
		fast := NewPRBS(seed)
		ref := NewPRBS(seed)
		for _, n := range []int{1, 7, 64, 562} {
			got := make([]byte, n)
			fast.Fill(got)
			want := make([]byte, n)
			for i := range want {
				var b byte
				for j := 0; j < 8; j++ {
					b = b<<1 | byte(ref.NextBit())
				}
				want[i] = b
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %#x len %d: Fill diverges from NextBit reference", seed, n)
			}
			if fast.state != ref.state {
				t.Fatalf("seed %#x len %d: state diverges (%#x vs %#x)", seed, n, fast.state, ref.state)
			}
		}
	}
}

func TestPRBSCountErrorsAllocFree(t *testing.T) {
	p := NewPRBS(7)
	buf := make([]byte, 562)
	p.Fill(buf)
	allocs := testing.AllocsPerRun(100, func() {
		p.CountErrors(buf)
	})
	if allocs != 0 {
		t.Errorf("CountErrors allocates %.1f times per call, want 0", allocs)
	}
}

func TestPRBSReset(t *testing.T) {
	a := NewPRBS(0x1234)
	b := NewPRBS(0x9999)
	buf := make([]byte, 64)
	b.Fill(buf) // advance b arbitrarily
	b.Reset(0x1234)
	want := make([]byte, 64)
	a.Fill(want)
	got := make([]byte, 64)
	b.Fill(got)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("Reset stream diverges at byte %d", i)
		}
	}
	b.Reset(0)
	sum := uint32(0)
	for i := 0; i < 100; i++ {
		sum += b.NextBit()
	}
	if sum == 0 {
		t.Error("Reset(0) stuck at zero state")
	}
}

func TestPRBSStreamsIndependent(t *testing.T) {
	f := func(seed uint32, flips uint8) bool {
		tx := NewPRBS(seed)
		rx := NewPRBS(seed)
		buf := make([]byte, 64)
		tx.Fill(buf)
		// Flip `flips` distinct bits.
		n := int(flips) % 64
		for i := 0; i < n; i++ {
			buf[i] ^= 1
		}
		return rx.CountErrors(buf) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwitchWaveform(t *testing.T) {
	old, newer := SwitchWaveform(912*simtime.Picosecond, 527*simtime.Picosecond,
		4*simtime.Nanosecond, 100*simtime.Picosecond)
	if len(old) != len(newer) || len(old) == 0 {
		t.Fatal("trace lengths mismatch")
	}
	// Starts: old on, new off. Ends: old off, new on.
	if old[0].Intensity != 1 || newer[0].Intensity != 0 {
		t.Error("wrong initial intensities")
	}
	last := len(old) - 1
	if old[last].Intensity != 0 || newer[last].Intensity != 1 {
		t.Error("wrong final intensities")
	}
	// Monotone transitions.
	for i := 1; i < len(old); i++ {
		if old[i].Intensity > old[i-1].Intensity {
			t.Fatal("old channel intensity rose during switch-off")
		}
		if newer[i].Intensity < newer[i-1].Intensity {
			t.Fatal("new channel intensity fell during switch-on")
		}
	}
}

func TestBurstWaveform(t *testing.T) {
	s := DefaultSlot()
	trace := BurstWaveform(s, 3, simtime.Nanosecond)
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// Fraction of low samples ≈ guardband overhead.
	low := 0
	for _, w := range trace {
		if w.Intensity == 0 {
			low++
		}
	}
	frac := float64(low) / float64(len(trace))
	if frac < 0.05 || frac > 0.15 {
		t.Errorf("low fraction = %v, want ~0.10", frac)
	}
}

func TestBurstWaveformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero slots did not panic")
		}
	}()
	BurstWaveform(DefaultSlot(), 0, simtime.Nanosecond)
}

func TestAGCAmplitudeCaching(t *testing.T) {
	a := NewAGC()
	// First burst from a source: cold acquisition.
	if got := a.Settle(4, -6.0); got != a.SettleCold {
		t.Errorf("first burst settled in %v, want cold %v", got, a.SettleCold)
	}
	// Same source, same power: cached, effectively instant.
	if got := a.Settle(4, -6.0); got != a.SettleCached {
		t.Errorf("repeat burst settled in %v, want cached %v", got, a.SettleCached)
	}
	// Small drift within tolerance stays cached.
	if got := a.Settle(4, -6.3); got != a.SettleCached {
		t.Errorf("small drift settled in %v, want cached", got)
	}
	// A big power change (re-spliced fiber) forces re-acquisition.
	if got := a.Settle(4, -2.0); got != a.SettleCold {
		t.Errorf("large drift settled in %v, want cold", got)
	}
	// Distinct sources have distinct caches.
	if got := a.Settle(5, -6.0); got != a.SettleCold {
		t.Errorf("new source settled in %v, want cold", got)
	}
}

func TestGuardbandCoversCachedPath(t *testing.T) {
	// Integration: with phase and amplitude caching warm, the end-to-end
	// reconfiguration (laser + sync + CDR + AGC) fits the v2 guardband.
	budget := SiriusV2Budget()
	agc := NewAGC()
	agc.Settle(1, -6)
	total := budget.LaserTuning + budget.SyncError + budget.CDRLock +
		agc.Settle(1, -6)
	if total > budget.Total() {
		t.Errorf("cached reconfiguration %v exceeds guardband %v", total, budget.Total())
	}
}
