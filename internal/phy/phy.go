// Package phy models the physical-layer mechanisms that turn fast laser
// tuning into fast *end-to-end* reconfiguration (§4.5, §6, §A.1):
//
//   - the guardband budget: laser tuning + time-synchronization error +
//     clock-and-data-recovery (CDR) lock + cell preamble;
//   - phase-caching CDR: sub-nanosecond relocking by caching per-source
//     clock phase, refreshed every epoch by the cyclic schedule;
//   - amplitude caching: per-source receive gain, replacing slow AGC;
//   - PRBS generation and checking, used by the prototype emulation to
//     measure bit error rates;
//   - synthetic intensity waveforms for the Fig. 8b/8c reproductions.
package phy

import (
	"fmt"
	"math/bits"

	"sirius/internal/simtime"
)

// GuardbandBudget itemizes the dead time between timeslots during which the
// end-to-end path reconfigures and no data can be transferred.
type GuardbandBudget struct {
	LaserTuning simtime.Duration // worst-case tuning latency of the TX laser
	SyncError   simtime.Duration // worst-case time-sync inaccuracy across nodes
	CDRLock     simtime.Duration // receiver clock/data recovery lock time
	Preamble    simtime.Duration // cell preamble/framing overhead
}

// Total returns the required guardband.
func (g GuardbandBudget) Total() simtime.Duration {
	return g.LaserTuning + g.SyncError + g.CDRLock + g.Preamble
}

// SiriusV1Budget reproduces the first-generation prototype: a damped
// off-the-shelf DSDBR (92 ns worst case) with a 100 ns guardband.
func SiriusV1Budget() GuardbandBudget {
	return GuardbandBudget{
		LaserTuning: 92 * simtime.Nanosecond,
		SyncError:   100 * simtime.Picosecond,
		CDRLock:     900 * simtime.Picosecond,
		Preamble:    7 * simtime.Nanosecond,
	}
}

// SiriusV2Budget reproduces the second-generation prototype: the custom
// SOA-gated chip (912 ps worst case), sub-ns CDR via phase caching, and a
// 3.84 ns total guardband.
func SiriusV2Budget() GuardbandBudget {
	return GuardbandBudget{
		LaserTuning: 912 * simtime.Picosecond,
		SyncError:   10 * simtime.Picosecond, // ±5 ps measured
		CDRLock:     625 * simtime.Picosecond,
		Preamble:    2293 * simtime.Picosecond,
	}
}

// Slot describes the fixed-size timeslot structure: data time plus
// guardband. The paper's default simulation uses a 90 ns transmission slot
// (562-byte cells at 50 Gb/s) plus a 10 ns guardband.
type Slot struct {
	LineRate  simtime.Rate     // per-channel rate (50 Gb/s)
	CellBytes int              // cell size incl. headers
	Guardband simtime.Duration // reconfiguration dead time
}

// DefaultSlot returns the paper's simulation default.
func DefaultSlot() Slot {
	return Slot{LineRate: 50 * simtime.Gbps, CellBytes: 562, Guardband: 10 * simtime.Nanosecond}
}

// DataTime returns the cell serialization time.
func (s Slot) DataTime() simtime.Duration { return s.LineRate.TimeToSend(s.CellBytes) }

// Duration returns the total slot length.
func (s Slot) Duration() simtime.Duration { return s.DataTime() + s.Guardband }

// Overhead returns the fraction of the slot lost to the guardband.
func (s Slot) Overhead() float64 {
	return s.Guardband.Seconds() / s.Duration().Seconds()
}

// SlotForGuardband builds a slot in which the guardband is the given value
// and occupies the given fraction of the total slot, with the cell size
// derived from the remaining data time (the Fig. 11 methodology: "as we
// vary the guardband we proportionally adjust the slot length so the
// guardband always accounts for 10% of the total slot").
func SlotForGuardband(rate simtime.Rate, guard simtime.Duration, fraction float64) Slot {
	if fraction <= 0 || fraction >= 1 {
		panic("phy: guardband fraction must be in (0,1)")
	}
	total := simtime.Duration(float64(guard) / fraction)
	data := total - guard
	cell := rate.BytesIn(data)
	if cell < 1 {
		cell = 1
	}
	return Slot{LineRate: rate, CellBytes: cell, Guardband: guard}
}

// MaxGuardbandForOverhead returns the largest guardband that keeps
// switching overhead below the given fraction for packets of size bytes:
// the §2.2 analysis (576 B at 50 Gb/s with <10% overhead → 9.2 ns target,
// rounded to the 10 ns design point).
func MaxGuardbandForOverhead(rate simtime.Rate, bytes int, overhead float64) simtime.Duration {
	dataTime := rate.TimeToSend(bytes)
	return simtime.Duration(float64(dataTime) * overhead / (1 - overhead))
}

// CDR models receiver clock/data recovery with phase caching (§A.1).
// On every reconnection the receiver must align its sampling phase to the
// incoming bit stream; learning it from scratch takes microseconds
// (standard transceivers), but the cyclic schedule reconnects every node
// pair each epoch, so the phase learned last time remains valid and is
// simply reloaded.
type CDR struct {
	ColdLock   simtime.Duration // full training from scratch
	CachedLock simtime.Duration // reload of a cached phase
	// StaleAfter bounds how long a cached phase stays valid: beyond it the
	// oscillators have drifted too far and a cold lock is needed.
	StaleAfter simtime.Duration

	phase map[int]simtime.Time // source -> last refresh time
}

// NewCDR returns a phase-caching CDR calibrated to the paper: microsecond
// cold lock, sub-nanosecond cached lock.
func NewCDR() *CDR {
	return &CDR{
		ColdLock:   2 * simtime.Microsecond,
		CachedLock: 625 * simtime.Picosecond,
		StaleAfter: 100 * simtime.Microsecond,
		phase:      make(map[int]simtime.Time),
	}
}

// LockTime returns the lock latency for a transmission from src arriving at
// time now, and records the refresh.
func (c *CDR) LockTime(src int, now simtime.Time) simtime.Duration {
	last, ok := c.phase[src]
	c.phase[src] = now
	if !ok || now.Sub(last) > c.StaleAfter {
		return c.ColdLock
	}
	return c.CachedLock
}

// Cached reports whether a fresh phase is cached for src at time now.
func (c *CDR) Cached(src int, now simtime.Time) bool {
	last, ok := c.phase[src]
	return ok && now.Sub(last) <= c.StaleAfter
}

// AGC models receive-side gain control with amplitude caching (§4.5):
// the optical power arriving from different sources differs (fiber
// lengths, couplings), and a conventional automatic gain control loop is
// far too slow for nanosecond slots. Sirius caches the per-source gain,
// refreshed every epoch by the cyclic schedule, exactly like the CDR's
// phase cache.
type AGC struct {
	// SettleCold is a full gain-acquisition from scratch.
	SettleCold simtime.Duration
	// SettleCached applies a cached gain value.
	SettleCached simtime.Duration
	// Tolerance is the acceptable gain error (dB) before re-acquisition.
	Tolerance float64

	gain map[int]float64 // source -> cached gain (dB)
}

// NewAGC returns an amplitude-caching gain control calibrated to the
// prototype: microsecond-scale cold acquisition, effectively free cached
// application.
func NewAGC() *AGC {
	return &AGC{
		SettleCold:   5 * simtime.Microsecond,
		SettleCached: 100 * simtime.Picosecond,
		Tolerance:    0.5,
		gain:         make(map[int]float64),
	}
}

// Settle returns the settling time for a burst from src arriving with
// the given received power, updating the cache. A cached gain within
// Tolerance applies instantly; drifted or unknown sources pay the cold
// acquisition.
func (a *AGC) Settle(src int, receivedDBm float64) simtime.Duration {
	want := -receivedDBm // gain that normalizes the burst amplitude
	got, ok := a.gain[src]
	a.gain[src] = want
	if ok && abs(got-want) <= a.Tolerance {
		return a.SettleCached
	}
	return a.SettleCold
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// PRBS is a pseudo-random binary sequence generator (PRBS31,
// x^31 + x^28 + 1), the standard test pattern the prototype FPGAs exchange
// to measure bit error rate.
type PRBS struct {
	state uint32
}

// NewPRBS returns a generator with the given non-zero seed.
func NewPRBS(seed uint32) *PRBS {
	if seed == 0 {
		seed = 1
	}
	return &PRBS{state: seed & 0x7fffffff}
}

// Reset re-seeds the generator in place, allowing one PRBS to be reused
// across independently seeded bursts (the wire testbed seeds each cell's
// pattern from (src, dst, seq) so that a lost cell never desynchronizes
// the checker) without allocating per burst.
func (p *PRBS) Reset(seed uint32) {
	if seed == 0 {
		seed = 1
	}
	p.state = seed & 0x7fffffff
}

// NextBit returns the next bit of the sequence.
func (p *PRBS) NextBit() uint32 {
	bit := ((p.state >> 30) ^ (p.state >> 27)) & 1
	p.state = ((p.state << 1) | bit) & 0x7fffffff
	return bit
}

// nextByte advances the LFSR eight steps at once. The register is
// linear and the feedback taps sit at bits 30 and 27, so for up to 27
// consecutive steps every feedback bit is a function of the *original*
// state alone: bit k (k < 28) is s[30-k] ^ s[27-k]. Packing k = 0..7
// MSB-first gives the byte ((s>>23) ^ (s>>20)) & 0xff, and because each
// generated bit is also the bit shifted into the register, the new
// state is simply (s<<8 | byte) masked to 31 bits. Bit-identical to
// eight NextBit calls (pinned by TestPRBSFillMatchesBitwise).
func nextByte(s uint32) (byte, uint32) {
	b := byte((s >> 23) ^ (s >> 20))
	return b, ((s << 8) | uint32(b)) & 0x7fffffff
}

// Fill fills buf with sequence bytes.
func (p *PRBS) Fill(buf []byte) {
	s := p.state
	for i := range buf {
		buf[i], s = nextByte(s)
	}
	p.state = s
}

// CountErrors compares received data against the expected sequence
// continuation and returns the number of differing bits. It generates
// the expected bytes on the fly — no scratch buffer, no allocation —
// so the receive hot path of the wire testbed can call it per cell.
func (p *PRBS) CountErrors(got []byte) int {
	s := p.state
	errs := 0
	for i := range got {
		var want byte
		want, s = nextByte(s)
		errs += bits.OnesCount8(got[i] ^ want)
	}
	p.state = s
	return errs
}

// WaveformSample is one point of a synthesized intensity trace.
type WaveformSample struct {
	T         simtime.Duration // time since trace start
	Intensity float64          // normalized 0..1
}

// SwitchWaveform synthesizes the intensity trace of a wavelength switch for
// the Fig. 8b reproduction: the old channel's intensity falls with the
// source SOA's fall time while the new channel's rises with the destination
// SOA's rise time. It returns the two channels' traces sampled every step.
func SwitchWaveform(fall, rise simtime.Duration, span, step simtime.Duration) (oldCh, newCh []WaveformSample) {
	if step <= 0 {
		panic("phy: non-positive step")
	}
	switchAt := span / 2
	for t := simtime.Duration(0); t <= span; t += step {
		oldCh = append(oldCh, WaveformSample{T: t, Intensity: edge(t, switchAt, fall, 1, 0)})
		newCh = append(newCh, WaveformSample{T: t, Intensity: edge(t, switchAt, rise, 0, 1)})
	}
	return oldCh, newCh
}

// edge interpolates a linear transition from before to after starting at
// at, lasting width.
func edge(t, at, width simtime.Duration, before, after float64) float64 {
	switch {
	case t <= at:
		return before
	case width <= 0 || t >= at+width:
		return after
	default:
		f := float64(t-at) / float64(width)
		return before + (after-before)*f
	}
}

// BurstWaveform synthesizes the Fig. 8c trace: consecutive cell slots with
// intensity high during data and low during the guardband.
func BurstWaveform(s Slot, slots int, step simtime.Duration) []WaveformSample {
	if slots <= 0 {
		panic("phy: need at least one slot")
	}
	var out []WaveformSample
	slotLen := s.Duration()
	for t := simtime.Duration(0); t < simtime.Duration(slots)*slotLen; t += step {
		within := t % slotLen
		inten := 1.0
		if within >= s.DataTime() {
			inten = 0.0
		}
		out = append(out, WaveformSample{T: t, Intensity: inten})
	}
	return out
}

// String implements fmt.Stringer for debugging traces.
func (w WaveformSample) String() string {
	return fmt.Sprintf("%v:%.2f", w.T, w.Intensity)
}
