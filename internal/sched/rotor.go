package sched

import "fmt"

// RotorRR is a RotorNet-style round-robin scheduler: each uplink is a
// rotor switch cycling blindly through the cyclic-shift decomposition
// of the directed complete graph K_n (the n-1 matchings i → i+m mod n,
// m = 1..n-1). A switch holds one matching for a whole epoch and
// advances to the next at the boundary, paying Reconfig dark slots on
// every link while the rotor swings — the duty-cycle cost the Sirius
// paper charges rotor fabrics. Switches are staggered so the fabric's
// uplinks sample different shifts in any one epoch; over n-1 epochs
// every uplink visits every shift, so coverage is uniform without ever
// looking at demand (demand is ignored entirely, like RotorNet).
type RotorRR struct {
	nodes   int
	uplinks int
	slots   int // hold time per matching, in slots (incl. reconfig)
	recfg   int // leading dark slots per epoch
}

// NewRotorRR builds a rotor scheduler holding each matching for
// slotsPerEpoch slots, the first reconfigSlots of which are dark.
func NewRotorRR(nodes, uplinks, slotsPerEpoch, reconfigSlots int) (*RotorRR, error) {
	switch {
	case nodes < 2:
		return nil, fmt.Errorf("sched: need >= 2 nodes")
	case uplinks < 1:
		return nil, fmt.Errorf("sched: need >= 1 uplink")
	case slotsPerEpoch < 1:
		return nil, fmt.Errorf("sched: need >= 1 slot per epoch")
	case reconfigSlots < 0 || reconfigSlots >= slotsPerEpoch:
		return nil, fmt.Errorf("sched: reconfig slots (%d) must be in [0, slots per epoch)", reconfigSlots)
	}
	return &RotorRR{nodes: nodes, uplinks: uplinks, slots: slotsPerEpoch, recfg: reconfigSlots}, nil
}

// Nodes implements Scheduler.
func (r *RotorRR) Nodes() int { return r.nodes }

// Uplinks implements Scheduler.
func (r *RotorRR) Uplinks() int { return r.uplinks }

// SlotsPerEpoch implements Scheduler.
func (r *RotorRR) SlotsPerEpoch() int { return r.slots }

// ConnectionsPerEpoch implements Scheduler: a pair connected this epoch
// owns the uplink for the whole hold, so the nominal pair bandwidth is
// the serving slots of one hold.
func (r *RotorRR) ConnectionsPerEpoch() int { return r.slots - r.recfg }

// shift returns the cyclic shift (1..n-1) uplink u holds during epoch t.
// Switch start points are staggered by (n-1)/uplinks so concurrent
// uplinks sample spread-out shifts.
func (r *RotorRR) shift(epoch int64, u int) int {
	period := int64(r.nodes - 1)
	stride := int64((r.nodes - 1) / r.uplinks)
	if stride == 0 {
		stride = 1
	}
	return 1 + int((epoch+int64(u)*stride)%period)
}

// Plan implements Scheduler: matching i → i+shift on every uplink, all
// slots, with the leading reconfig slots dark.
func (r *RotorRR) Plan(epoch int64, demand []int32, dst []int32) int {
	n, up := r.nodes, r.uplinks
	for u := 0; u < up; u++ {
		m := r.shift(epoch, u)
		for slot := 0; slot < r.slots; slot++ {
			base := slot * n * up
			if slot < r.recfg {
				for node := 0; node < n; node++ {
					dst[base+node*up+u] = -1
				}
				continue
			}
			for node := 0; node < n; node++ {
				dst[base+node*up+u] = int32((node + m) % n)
			}
		}
	}
	return r.recfg * n * up
}

// Reset implements Scheduler: the rotor position is a pure function of
// the epoch index, so there is no state to clear.
func (r *RotorRR) Reset() {}
