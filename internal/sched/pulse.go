package sched

import "fmt"

// candSet holds per-source candidate destination lists for one planning
// epoch: each source's destinations with positive remaining demand,
// ordered by demand descending (ties broken by lower index, so the
// order — and every plan built from it — is deterministic). Lists are
// capped at a fixed depth: demand-aware solvers probe a bounded number
// of candidates rather than scanning all n destinations per slot.
type candSet struct {
	lists [][]int32 // per src, dst indices, demand-descending
	buf   []int32   // backing storage, reused across epochs
}

// build fills the candidate lists from demand (n×n row-major), keeping
// at most depth entries per source. Selection is a capped insertion
// sort: O(n·depth) per source worst case, cheap on sparse rows.
func (c *candSet) build(n, depth int, demand []int32) {
	if cap(c.buf) < n*depth {
		c.buf = make([]int32, n*depth)
	}
	if c.lists == nil {
		c.lists = make([][]int32, n)
	}
	for src := 0; src < n; src++ {
		list := c.buf[src*depth : src*depth : (src+1)*depth]
		row := demand[src*n : (src+1)*n]
		for dst, d := range row {
			if d <= 0 {
				continue
			}
			// Insert dst keeping the list demand-descending, dropping
			// the tail beyond depth.
			i := len(list)
			if i < depth {
				list = list[:i+1]
			} else if row[list[i-1]] >= d {
				continue
			} else {
				i--
			}
			for i > 0 && row[list[i-1]] < d {
				list[i] = list[i-1]
				i--
			}
			list[i] = int32(dst)
		}
		c.lists[src] = list
	}
}

// PULSE is a per-epoch demand-aware scheduler modeled on PULSE's
// distributed wavelength assignment: at every epoch boundary it reads
// the sampled VOQ demand matrix and builds one matching per
// (slot, uplink) plane with a bounded-iteration greedy heuristic —
// sources probe their top-demand candidates in a rotating order and
// claim the first free receiver, so each plane is maximal with respect
// to the probed candidates without any global optimization. Links with
// no demand stay dark (demand-aware fabrics light only requested
// wavelengths). The leading Reconfig slots of each epoch are dark,
// charging the scheduling/tuning latency of acting on fresh demand.
type PULSE struct {
	nodes   int
	uplinks int
	slots   int
	recfg   int
	probes  int // candidate probe bound per (src, slot, uplink)

	rem   []int32 // remaining unserved demand, consumed as slots are planned
	cand  candSet
	owner []int32 // (dst*uplinks+u) → claiming src for the current slot
	stamp []int32 // claim validity stamp, avoids clearing owner per slot
	cur   int32   // current stamp
}

// NewPULSE builds a PULSE scheduler. probeBound caps how many of its
// top-demand destinations a source probes per (slot, uplink); 0 means
// the default of 2×uplinks.
func NewPULSE(nodes, uplinks, slotsPerEpoch, reconfigSlots, probeBound int) (*PULSE, error) {
	switch {
	case nodes < 2:
		return nil, fmt.Errorf("sched: need >= 2 nodes")
	case uplinks < 1:
		return nil, fmt.Errorf("sched: need >= 1 uplink")
	case slotsPerEpoch < 1:
		return nil, fmt.Errorf("sched: need >= 1 slot per epoch")
	case reconfigSlots < 0 || reconfigSlots >= slotsPerEpoch:
		return nil, fmt.Errorf("sched: reconfig slots (%d) must be in [0, slots per epoch)", reconfigSlots)
	case probeBound < 0:
		return nil, fmt.Errorf("sched: probe bound must be >= 0")
	}
	if probeBound == 0 {
		probeBound = 2 * uplinks
	}
	return &PULSE{
		nodes: nodes, uplinks: uplinks, slots: slotsPerEpoch,
		recfg: reconfigSlots, probes: probeBound,
		rem:   make([]int32, nodes*nodes),
		owner: make([]int32, nodes*uplinks),
		stamp: make([]int32, nodes*uplinks),
	}, nil
}

// Nodes implements Scheduler.
func (p *PULSE) Nodes() int { return p.nodes }

// Uplinks implements Scheduler.
func (p *PULSE) Uplinks() int { return p.uplinks }

// SlotsPerEpoch implements Scheduler.
func (p *PULSE) SlotsPerEpoch() int { return p.slots }

// ConnectionsPerEpoch implements Scheduler: demand-aware assignment can
// in principle give a hot pair every serving slot of the epoch.
func (p *PULSE) ConnectionsPerEpoch() int { return p.slots - p.recfg }

// Plan implements Scheduler.
func (p *PULSE) Plan(epoch int64, demand []int32, dst []int32) int {
	n, up := p.nodes, p.uplinks
	copy(p.rem, demand)
	p.cand.build(n, p.probes, demand)
	reconfig := 0
	for slot := 0; slot < p.slots; slot++ {
		base := slot * n * up
		dark := slot < p.recfg
		for u := 0; u < up; u++ {
			p.cur++
			// Rotate the source start so no node is systematically
			// first in line; the offset is a pure function of
			// (epoch, slot, uplink) for replayability.
			start := int((epoch*int64(p.slots)+int64(slot))+int64(u)*7) % n
			if start < 0 {
				start += n
			}
			for i := 0; i < n; i++ {
				src := start + i
				if src >= n {
					src -= n
				}
				e := base + src*up + u
				dst[e] = -1
				for _, d := range p.cand.lists[src] {
					if p.rem[src*n+int(d)] <= 0 {
						continue
					}
					port := int(d)*up + u
					if p.stamp[port] == p.cur {
						continue
					}
					p.stamp[port] = p.cur
					p.owner[port] = int32(src)
					if dark {
						// The assignment exists but the plane is
						// still reconfiguring: a lost serving
						// opportunity, charged as overhead. Demand
						// stays unserved.
						reconfig++
					} else {
						dst[e] = d
						p.rem[src*n+int(d)]--
					}
					break
				}
			}
		}
	}
	return reconfig
}

// Reset implements Scheduler: all per-epoch scratch is rebuilt by every
// Plan call, so only the claim stamp needs clearing.
func (p *PULSE) Reset() {
	p.cur = 0
	for i := range p.stamp {
		p.stamp[i] = 0
	}
}
